#include "dispatch/backend_variant.hpp"
#include "tiling/lcs_wavefront.hpp"

#include <algorithm>
#include <vector>

#include "simd/vec.hpp"
#include "tv/tv_lcs_impl.hpp"
#include "util/checked_idx.hpp"

namespace tvs::tiling {
namespace {

std::int32_t lcs_wavefront_tiled(std::span<const std::int32_t> a,
                           std::span<const std::int32_t> b,
                           const LcsWavefrontOptions& opt) {
  using V = dispatch::BackendVec<std::int32_t>;
  // checked_int, not static_cast: a 2^31-element span would otherwise
  // truncate silently and compute the LCS of a prefix (tvsrace C3).
  const int na = util::checked_int(a.size());
  const int nb = util::checked_int(b.size());
  if (na == 0 || nb == 0) return 0;

  const int Wb = std::max(16, opt.block);
  const int Hb = std::max(16, opt.band);
  const int nbj = (nb + Wb - 1) / Wb;
  const int nbi = (na + Hb - 1) / Hb;

  // Global DP row (+ load padding) and one boundary column per block seam;
  // col[0] is the zero left edge, col[j] holds lcs[x][j*Wb].
  std::vector<std::int32_t> row(
      static_cast<std::size_t>(nb) + 1 + tv::kLcsRowPad, 0);
  std::vector<std::vector<std::int32_t>> col(
      static_cast<std::size_t>(nbj) + 1,
      std::vector<std::int32_t>(static_cast<std::size_t>(na) + 1, 0));

  for (int d = 0; d <= (nbi - 1) + (nbj - 1); ++d) {
    // Anti-diagonal wavefront: block (bi, bj = d - bi) owns row segment
    // [bj*Wb, bj*Wb + wseg] and column bj+1 rows [bi*Hb, bi*Hb + h] — both
    // are injective in bi for fixed d, so row/col writes are disjoint.
    const int bi_lo = std::max(0, d - (nbj - 1));
    const int bi_hi = std::min(d, nbi - 1);
    const auto block = [&](int bi, int /*slot*/) {
      const int bj = d - bi;
      const int t0 = bi * Hb;
      const int h = std::min(Hb, na - t0);
      const int y0 = bj * Wb;  // global column before this block's segment
      const int wseg = std::min(Wb, nb - y0);
      // Segment views: local column y (1-based) = global y0 + y.
      std::int32_t* rseg = row.data() + y0;
      const std::int32_t* lcol = col[static_cast<std::size_t>(bj)].data() + t0;
      std::int32_t* rcol = col[static_cast<std::size_t>(bj) + 1].data() + t0;
      if (opt.use_vector) {
        tv::tv_lcs_rows_impl<V>(
            a.subspan(static_cast<std::size_t>(t0),
                      static_cast<std::size_t>(h)),
            b.subspan(static_cast<std::size_t>(y0),
                      static_cast<std::size_t>(wseg)),
            rseg, lcol, rcol);
      } else {
        const std::int32_t* bb = b.data() + y0 - 1;
        for (int t = 0; t < h; ++t) {
          tv::detail::lcs_scalar_row(a[static_cast<std::size_t>(t0 + t)], bb,
                                     rseg, wseg, lcol[t], lcol[t + 1]);
          rcol[t + 1] = rseg[wseg];
        }
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, bi_hi - bi_lo + 1,
                [&](int i, int slot) { block(bi_lo + i, slot); });
    } else {
      // tvsrace: partitioned(bi)
#pragma omp parallel for schedule(dynamic, 1)
      for (int bi = bi_lo; bi <= bi_hi; ++bi) block(bi, 0);
    }
  }
  return row[static_cast<std::size_t>(nb)];
}

}  // namespace

TVS_BACKEND_REGISTRAR(lcs_wavefront) {
  TVS_REGISTER_DT(kLcsWavefront, LcsWavefrontFn, lcs_wavefront_tiled,
                  dispatch::DType::kI32);
}

}  // namespace tvs::tiling
