// Parallelogram-tiled, wavefront-parallel driver for the 1D Gauss-Seidel
// stencil (Figure 5b; Table 1's GS-1D blocking 2048 x 64).
// See parallelogram_impl.hpp for the tile kernel and legality argument.
#pragma once

#include "grid/grid1d.hpp"
#include "stencil/coefficients.hpp"
#include "tiling/stage_exec.hpp"

namespace tvs::tiling {

struct Parallelogram1DOptions {
  int width = 2048;  // tile width W (paper Table 1)
  int height = 64;   // band height (sweeps per band)
  int stride = 3;    // temporal-vectorization stride s (>= 2)
  bool use_vector = true;  // false: identical tiling, scalar tiles
  // External stage executor (serving pool); nullptr = the driver's own
  // OpenMP loops.  Same tiles either way, bit-identical results.
  const StageExec* exec = nullptr;
};

// Advance u by `sweeps` Gauss-Seidel sweeps, in place.
void parallelogram_gs1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                             long sweeps,
                             const Parallelogram1DOptions& opt = {});

}  // namespace tvs::tiling
