// Rectangle tiling + anti-diagonal wavefront parallelization of the LCS
// dynamic program (Figure 5h; Table 1: 4096 x 4096 blocks).
//
// The DP matrix is split into row bands (over A) x column blocks (over B).
// Tile (bi, bj) depends on (bi-1, bj) and (bi, bj-1); all tiles on one
// anti-diagonal bi+bj run in parallel.  Following the paper, only the
// wavefront is stored: a global DP row (`lcsA`) plus one boundary column
// per block seam (`lcsB`), which feed the temporally vectorized 8-row strip
// kernel through its left-column/right-column hooks.
#pragma once

#include <cstdint>
#include <span>

#include "tiling/stage_exec.hpp"

namespace tvs::tiling {

struct LcsWavefrontOptions {
  int block = 4096;        // column-block width (Table 1)
  int band = 4096;         // row-band height
  bool use_vector = true;  // false: identical tiling, scalar DP rows
  // External stage executor (serving pool); nullptr = the driver's own
  // OpenMP loops.  Same tiles either way, bit-identical results.
  const StageExec* exec = nullptr;
};

std::int32_t lcs_wavefront(std::span<const std::int32_t> a,
                           std::span<const std::int32_t> b,
                           const LcsWavefrontOptions& opt = {});

}  // namespace tvs::tiling
