// Parallelogram tiles for GS-2D/3D: the flat Gauss-Seidel engines
// (tv_gs2d_impl.hpp / tv_gs3d_impl.hpp) restricted to a row-parallelogram,
// with every wedge/flush value read from and written to the single array —
// the slope -1 interface ladder guarantees each slot holds exactly the
// level its reader needs (see parallelogram_impl.hpp for the 1D proof,
// which lifts row-wise / plane-wise verbatim).
#include "dispatch/backend_variant.hpp"
#include "tiling/parallelogram2d.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <vector>

#include "grid/aligned.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/kernels.hpp"
#include "tv/ring.hpp"

namespace tvs::tiling {
namespace {

using V = simd::NativeVec<double, 4>;

// ---------------------------------------------------------------------------
// 2D tile
// ---------------------------------------------------------------------------
struct GsWs2D {
  grid::AlignedBuffer<V> ring, wrow;
  int s = 0;
  std::ptrdiff_t rstride = 0;
  void prepare(int stride, int ny) {
    const std::ptrdiff_t need = ((ny + 4 + 15) / 16) * 16;
    if (stride != s || need != rstride) {
      s = stride;
      rstride = need;
      ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 1) *
                                    static_cast<std::size_t>(rstride));
      wrow = grid::AlignedBuffer<V>(static_cast<std::size_t>(rstride));
    }
  }
  V* row(int p) {
    const int M = s + 1;
    const int slot = tv::RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(rstride) +
           1;
  }
  V* wr() { return wrow.data() + 1; }
};

void gs2d_trap(const stencil::C2D5& c, grid::Grid2D<double>& g, int s,
               int xl0, int xr0, GsWs2D& ws, bool force_scalar) {
  const int nx = g.nx(), ny = g.ny();
  int XL[5], XR[5];
  for (int l = 1; l <= 4; ++l) {
    XL[l] = std::max(1, xl0 - (l - 1));
    XR[l] = std::min(nx, xr0 - (l - 1));
  }

  // Scalar Gauss-Seidel rows of level l over [r0, r1], in place.
  const auto scalar_rows = [&](int l, int r0, int r1) {
    (void)l;
    for (int r = r0; r <= r1; ++r) {
      double west = g.at(r, 0);
      for (int y = 1; y <= ny; ++y) {
        const double v =
            stencil::gs2d5(c.c, c.w, c.e, c.s, c.n, g.at(r, y), west,
                           g.at(r, y + 1), g.at(r - 1, y), g.at(r + 1, y));
        g.at(r, y) = v;
        west = v;
      }
    }
  };

  int x_begin = XL[1] - 3 * s, x_end = XR[1] - 3 * s;
  for (int l = 2; l <= 4; ++l) {
    x_begin = std::max(x_begin, XL[l] - (4 - l) * s);
    x_end = std::min(x_end, XR[l] - (4 - l) * s);
  }
  if (force_scalar || x_end - x_begin < 4) {
    for (int l = 1; l <= 4; ++l) scalar_rows(l, XL[l], XR[l]);
    return;
  }

  for (int l = 1; l <= 3; ++l)
    scalar_rows(l, XL[l], std::min(XR[l], x_begin + (4 - l) * s - 1));
  scalar_rows(4, XL[4], x_begin - 1);

  // Gather (ladder: slot (r, y) holds exactly the level the lane wants).
  alignas(64) double lanes[4];
  for (int p = x_begin; p <= x_begin + s - 1; ++p) {
    V* row = ws.row(p);
    for (int y = 0; y <= ny + 1; ++y) {
      lanes[0] = g.at(std::min(p + 3 * s, nx + 1), y);
      lanes[1] = g.at(p + 2 * s, y);
      lanes[2] = g.at(p + s, y);
      lanes[3] = g.at(p, y);
      row[y] = V::load(lanes);
    }
  }
  {
    V* wr = ws.wr();
    for (int y = 0; y <= ny + 1; ++y) {
      lanes[0] = g.at(x_begin - 1 + 3 * s, y);
      lanes[1] = g.at(x_begin - 1 + 2 * s, y);
      lanes[2] = g.at(x_begin - 1 + s, y);
      lanes[3] = g.at(x_begin - 1, y);
      wr[y] = V::load(lanes);
    }
  }

  const V cc = V::set1(c.c), cw = V::set1(c.w), ce = V::set1(c.e),
          cs = V::set1(c.s), cn = V::set1(c.n);
  const int read_cap = std::min(XR[1] + 1, nx + 1);

  V* wr = ws.wr();
  for (int x = x_begin; x <= x_end; ++x) {
    const V* r0v = ws.row(x);
    const V* rp1 = ws.row(x + 1);
    V* rout = ws.row(x + s);
    double* trow = g.row(x);
    const double* brow = g.row(std::min(x + 4 * s, read_cap));

    {
      const int p = x + s;
      for (const int y : {0, ny + 1}) {
        lanes[0] = g.at(std::min(p + 3 * s, nx + 1), y);
        lanes[1] = g.at(p + 2 * s, y);
        lanes[2] = g.at(p + s, y);
        lanes[3] = g.at(p, y);
        rout[y] = V::load(lanes);
      }
    }
    V wprev;
    {
      lanes[0] = g.at(x + 3 * s, 0);
      lanes[1] = g.at(x + 2 * s, 0);
      lanes[2] = g.at(x + s, 0);
      lanes[3] = g.at(x, 0);
      wprev = V::load(lanes);
    }

    int y = 1;
    V wbuf[4];
    for (; y + 3 <= ny; y += 4) {
      V bot = V::loadu(brow + y);
      for (int j = 0; j < 4; ++j) {
        const int yy = y + j;
        const V w = stencil::gs2d5(cc, cw, ce, cs, cn, r0v[yy], wprev,
                                   r0v[yy + 1], wr[yy], rp1[yy]);
        wbuf[j] = w;
        wr[yy] = w;
        rout[yy] = simd::shift_in_low_v(w, bot);
        if (j != 3) bot = simd::rotate_down(bot);
        wprev = w;
      }
      simd::collect_tops_arr(wbuf).storeu(trow + y);
    }
    for (; y <= ny; ++y) {
      const V w = stencil::gs2d5(cc, cw, ce, cs, cn, r0v[y], wprev, r0v[y + 1],
                                 wr[y], rp1[y]);
      wr[y] = w;
      rout[y] = simd::shift_in_low(w, brow[y]);
      trow[y] = simd::top_lane(w);
      wprev = w;
    }
  }

  // Flush surviving lanes into the array (level order; ranges guard).
  for (int p = x_end + 1; p <= x_end + s; ++p) {
    const V* row = ws.row(p);
    const int rr[3] = {p + 2 * s, p + s, p};
    for (int k = 1; k <= 3; ++k) {
      const int r = rr[k - 1];
      if (r < XL[k] || r > XR[k]) continue;
      for (int y = 1; y <= ny; ++y) g.at(r, y) = row[y][k];
    }
  }

  for (int l = 1; l <= 4; ++l)
    scalar_rows(l, std::max(XL[l], x_end + (4 - l) * s + 1), XR[l]);
}

// ---------------------------------------------------------------------------
// 3D tile
// ---------------------------------------------------------------------------
struct GsWs3D {
  grid::AlignedBuffer<V> ring, wslab;
  int s = 0, ny = 0;
  std::ptrdiff_t zstride = 0, ystride = 0;
  void prepare(int stride, int ny_, int nz) {
    const std::ptrdiff_t zs = ((nz + 4 + 15) / 16) * 16;
    if (stride != s || ny_ != ny || zs != zstride) {
      s = stride;
      ny = ny_;
      zstride = zs;
      ystride = static_cast<std::ptrdiff_t>(ny + 2) * zstride;
      ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 1) *
                                    static_cast<std::size_t>(ystride));
      wslab = grid::AlignedBuffer<V>(static_cast<std::size_t>(ystride));
    }
  }
  V* line(int p, int y) {
    const int M = s + 1;
    const int slot = tv::RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(ystride) +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) + 1;
  }
  V* wline(int y) {
    return wslab.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) + 1;
  }
};

void gs3d_trap(const stencil::C3D7& c, grid::Grid3D<double>& g, int s,
               int xl0, int xr0, GsWs3D& ws, bool force_scalar) {
  const int nx = g.nx(), ny = g.ny(), nz = g.nz();
  int XL[5], XR[5];
  for (int l = 1; l <= 4; ++l) {
    XL[l] = std::max(1, xl0 - (l - 1));
    XR[l] = std::min(nx, xr0 - (l - 1));
  }

  const auto scalar_planes = [&](int l, int r0, int r1) {
    (void)l;
    for (int r = r0; r <= r1; ++r)
      for (int y = 1; y <= ny; ++y) {
        double west = g.at(r, y, 0);
        for (int z = 1; z <= nz; ++z) {
          const double v = stencil::gs3d7(
              c.c, c.w, c.e, c.s, c.n, c.b, c.f, g.at(r, y, z), west,
              g.at(r, y, z + 1), g.at(r, y - 1, z), g.at(r, y + 1, z),
              g.at(r - 1, y, z), g.at(r + 1, y, z));
          g.at(r, y, z) = v;
          west = v;
        }
      }
  };

  int x_begin = XL[1] - 3 * s, x_end = XR[1] - 3 * s;
  for (int l = 2; l <= 4; ++l) {
    x_begin = std::max(x_begin, XL[l] - (4 - l) * s);
    x_end = std::min(x_end, XR[l] - (4 - l) * s);
  }
  if (force_scalar || x_end - x_begin < 4) {
    for (int l = 1; l <= 4; ++l) scalar_planes(l, XL[l], XR[l]);
    return;
  }

  for (int l = 1; l <= 3; ++l)
    scalar_planes(l, XL[l], std::min(XR[l], x_begin + (4 - l) * s - 1));
  scalar_planes(4, XL[4], x_begin - 1);

  alignas(64) double lanes[4];
  for (int p = x_begin; p <= x_begin + s - 1; ++p)
    for (int y = 0; y <= ny + 1; ++y) {
      V* line = ws.line(p, y);
      for (int z = 0; z <= nz + 1; ++z) {
        lanes[0] = g.at(std::min(p + 3 * s, nx + 1), y, z);
        lanes[1] = g.at(p + 2 * s, y, z);
        lanes[2] = g.at(p + s, y, z);
        lanes[3] = g.at(p, y, z);
        line[z] = V::load(lanes);
      }
    }
  for (int y = 0; y <= ny + 1; ++y) {
    V* line = ws.wline(y);
    for (int z = 0; z <= nz + 1; ++z) {
      lanes[0] = g.at(x_begin - 1 + 3 * s, y, z);
      lanes[1] = g.at(x_begin - 1 + 2 * s, y, z);
      lanes[2] = g.at(x_begin - 1 + s, y, z);
      lanes[3] = g.at(x_begin - 1, y, z);
      line[z] = V::load(lanes);
    }
  }

  const V cc = V::set1(c.c), cw = V::set1(c.w), ce = V::set1(c.e),
          cs = V::set1(c.s), cn = V::set1(c.n), cb = V::set1(c.b),
          cf = V::set1(c.f);
  const int read_cap = std::min(XR[1] + 1, nx + 1);

  for (int x = x_begin; x <= x_end; ++x) {
    {
      const int p = x + s;
      const auto fill = [&](int y, int z) {
        lanes[0] = g.at(std::min(p + 3 * s, nx + 1), y, z);
        lanes[1] = g.at(p + 2 * s, y, z);
        lanes[2] = g.at(p + s, y, z);
        lanes[3] = g.at(p, y, z);
        ws.line(p, y)[z] = V::load(lanes);
      };
      for (int z = 0; z <= nz + 1; ++z) {
        fill(0, z);
        fill(ny + 1, z);
      }
      for (int y = 1; y <= ny; ++y) {
        fill(y, 0);
        fill(y, nz + 1);
      }
    }
    {
      V* line = ws.wline(0);
      for (int z = 0; z <= nz + 1; ++z) {
        lanes[0] = g.at(x + 3 * s, 0, z);
        lanes[1] = g.at(x + 2 * s, 0, z);
        lanes[2] = g.at(x + s, 0, z);
        lanes[3] = g.at(x, 0, z);
        line[z] = V::load(lanes);
      }
    }
    const int brow_x = std::min(x + 4 * s, read_cap);
    for (int y = 1; y <= ny; ++y) {
      const V* b0c = ws.line(x, y);
      const V* b0p = ws.line(x, y + 1);
      const V* bp1 = ws.line(x + 1, y);
      V* lout = ws.line(x + s, y);
      V* wsl = ws.wline(y);
      const V* wsm = ws.wline(y - 1);
      double* tline = g.line(x, y);
      const double* bline = g.line(brow_x, y);

      V wprev;
      {
        lanes[0] = g.at(x + 3 * s, y, 0);
        lanes[1] = g.at(x + 2 * s, y, 0);
        lanes[2] = g.at(x + s, y, 0);
        lanes[3] = g.at(x, y, 0);
        wprev = V::load(lanes);
      }
      int z = 1;
      V wbuf[4];
      for (; z + 3 <= nz; z += 4) {
        V bot = V::loadu(bline + z);
        for (int j = 0; j < 4; ++j) {
          const int zz = z + j;
          const V w = stencil::gs3d7(cc, cw, ce, cs, cn, cb, cf, b0c[zz],
                                     wprev, b0c[zz + 1], wsm[zz], b0p[zz],
                                     wsl[zz], bp1[zz]);
          wbuf[j] = w;
          wsl[zz] = w;
          lout[zz] = simd::shift_in_low_v(w, bot);
          if (j != 3) bot = simd::rotate_down(bot);
          wprev = w;
        }
        simd::collect_tops_arr(wbuf).storeu(tline + z);
      }
      for (; z <= nz; ++z) {
        const V w = stencil::gs3d7(cc, cw, ce, cs, cn, cb, cf, b0c[z], wprev,
                                   b0c[z + 1], wsm[z], b0p[z], wsl[z], bp1[z]);
        wsl[z] = w;
        lout[z] = simd::shift_in_low(w, bline[z]);
        tline[z] = simd::top_lane(w);
        wprev = w;
      }
    }
  }

  for (int p = x_end + 1; p <= x_end + s; ++p) {
    const int rr[3] = {p + 2 * s, p + s, p};
    for (int k = 1; k <= 3; ++k) {
      const int r = rr[k - 1];
      if (r < XL[k] || r > XR[k]) continue;
      for (int y = 1; y <= ny; ++y) {
        const V* line = ws.line(p, y);
        for (int z = 1; z <= nz; ++z) g.at(r, y, z) = line[z][k];
      }
    }
  }

  for (int l = 1; l <= 4; ++l)
    scalar_planes(l, std::max(XL[l], x_end + (4 - l) * s + 1), XR[l]);
}

// ---------------------------------------------------------------------------
// Shared wavefront driver
// ---------------------------------------------------------------------------
template <class Tile, class Residual>
void wavefront_run(int nx, long sweeps, ParallelogramNDOptions opt, int min_s,
                   Tile tile, Residual residual) {
  const int s = std::clamp(opt.stride, min_s, 12);
  int H = std::max(((s + 4 + 3) / 4) * 4, opt.height - opt.height % 4);
  const int W = std::max(opt.width, 4 * s + 8);
  const long t_vec = sweeps - sweeps % 4;
  const int nbt = static_cast<int>((t_vec + H - 1) / H);

  if (nbt > 0) {
    const auto div_floor = [](long a, long b) {
      return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    const auto div_ceil = [&](long a, long b) { return -div_floor(-a, b); };
    const auto band_h = [&](int bt) {
      return static_cast<int>(std::min<long>(H, t_vec - static_cast<long>(bt) * H));
    };
    const auto lo = [&](int bt) {
      return static_cast<int>(div_ceil(static_cast<long>(bt) * H - W + 1, W));
    };
    const auto hi = [&](int bt) {
      return static_cast<int>(
          div_floor(nx - 2 + static_cast<long>(bt) * H + band_h(bt), W));
    };
    const int bx_min_all = std::min(lo(0), lo(nbt - 1));
    const int bx_max_all = std::max(hi(0), hi(nbt - 1));
    const int wmax = 2 * (nbt - 1) + (bx_max_all - bx_min_all);
    for (int w = 0; w <= wmax; ++w) {
      // Same wavefront argument as the 1D driver: tiles on one anti-diagonal
      // are disjoint in x, so the tile callback touches non-overlapping
      // regions per bt (its scratch is per-runner, indexed by slot).
      const auto diag = [&](int bt, int slot) {
        const int bx = w - 2 * bt + bx_min_all;
        if (bx < lo(bt) || bx > hi(bt)) return;
        const long tb = static_cast<long>(bt) * H;
        const int hb = band_h(bt);
        const int xl0 = static_cast<int>(1 + static_cast<long>(bx) * W - tb);
        for (int j = 0; j < hb / 4; ++j)
          tile(s, xl0 - 4 * j, xl0 + W - 1 - 4 * j, slot);
      };
      if (opt.exec != nullptr) {
        stage_run(opt.exec, nbt, diag);
      } else {
        // tvsrace: partitioned(bt)
#pragma omp parallel for schedule(dynamic, 1)
        for (int bt = 0; bt < nbt; ++bt) diag(bt, omp_get_thread_num());
      }
    }
  }
  for (long t = t_vec; t < sweeps; ++t) residual();
}


void gs2d5_tiled(const stencil::C2D5& c, grid::Grid2D<double>& u,
                             long sweeps, const ParallelogramNDOptions& opt) {
  const int nslots = std::max(
      omp_get_max_threads(), opt.exec != nullptr ? opt.exec->slots : 0);
  std::vector<GsWs2D> tls(static_cast<std::size_t>(nslots));
  wavefront_run(
      u.nx(), sweeps, opt, 2,
      [&](int s, int xl0, int xr0, int slot) {
        GsWs2D& ws = tls[static_cast<std::size_t>(slot)];
        ws.prepare(s, u.ny());
        gs2d_trap(c, u, s, xl0, xr0, ws, !opt.use_vector);
      },
      [&] {
        for (int r = 1; r <= u.nx(); ++r) {
          double west;
          for (int y = 1; y <= u.ny(); ++y) {
            west = y == 1 ? u.at(r, 0) : u.at(r, y - 1);
            u.at(r, y) = stencil::gs2d5(c.c, c.w, c.e, c.s, c.n, u.at(r, y),
                                        west, u.at(r, y + 1), u.at(r - 1, y),
                                        u.at(r + 1, y));
          }
        }
      });
}

void gs3d7_tiled(const stencil::C3D7& c, grid::Grid3D<double>& u,
                             long sweeps, const ParallelogramNDOptions& opt) {
  const int nslots = std::max(
      omp_get_max_threads(), opt.exec != nullptr ? opt.exec->slots : 0);
  std::vector<GsWs3D> tls(static_cast<std::size_t>(nslots));
  wavefront_run(
      u.nx(), sweeps, opt, 2,
      [&](int s, int xl0, int xr0, int slot) {
        GsWs3D& ws = tls[static_cast<std::size_t>(slot)];
        ws.prepare(s, u.ny(), u.nz());
        gs3d_trap(c, u, s, xl0, xr0, ws, !opt.use_vector);
      },
      [&] {
        for (int r = 1; r <= u.nx(); ++r)
          for (int y = 1; y <= u.ny(); ++y)
            for (int z = 1; z <= u.nz(); ++z)
              u.at(r, y, z) = stencil::gs3d7(
                  c.c, c.w, c.e, c.s, c.n, c.b, c.f, u.at(r, y, z),
                  u.at(r, y, z - 1), u.at(r, y, z + 1), u.at(r, y - 1, z),
                  u.at(r, y + 1, z), u.at(r - 1, y, z), u.at(r + 1, y, z));
  });
}

}  // namespace

TVS_BACKEND_REGISTRAR(parallelogram2d) {
  TVS_REGISTER(kParallelogramGs2D5, ParallelogramGs2D5Fn, gs2d5_tiled);
  TVS_REGISTER(kParallelogramGs3D7, ParallelogramGs3D7Fn, gs3d7_tiled);
}

}  // namespace tvs::tiling
