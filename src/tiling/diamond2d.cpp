// 2D trapezoid engine + diamond driver; see diamond2d.hpp.
//
// A trapezoid advances rows [xl0+dl*l, xr0+dr*l] (clamped) from the band
// level l = 0 to l = VL, slopes dl, dr = +-1 per level (radius-1 stencils).
// All values any other tile may read live in the parity grids; the sloped
// scalar wedge rows read/write them directly (the slot a wedge reads always
// holds the right level by the diamond discipline), while the steady loop
// keeps intermediates in a per-thread ring of input-vector rows, exactly as
// in the flat 2D engine (tv2d_impl.hpp).  Grouped bottom-row loads are
// clamped at row XR[1]+1: rows past it may be rewritten concurrently by the
// phase neighbour, and lanes read from there are provably never consumed.
#include "dispatch/backend_variant.hpp"
#include "tiling/diamond2d.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <vector>

#include "grid/aligned.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "tv/functors2d.hpp"
#include "tv/ring.hpp"

namespace tvs::tiling {

namespace {

template <class V>
struct TrapWs2D {
  grid::AlignedBuffer<V> ring;
  int s = 0;
  std::ptrdiff_t rstride = 0;
  void prepare(int stride, int ny) {
    const std::ptrdiff_t need = ((ny + 4 + 15) / 16) * 16;
    if (stride != s || need != rstride) {
      s = stride;
      rstride = need;
      ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 2) *
                                    static_cast<std::size_t>(rstride));
    }
  }
  V* row(int p) {
    const int M = s + 2;
    const int slot = tv::RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(rstride) +
           1;
  }
};

template <class V, class F, class T>
void trapezoid2d(const F& f, grid::Grid2D<T>& g0, grid::Grid2D<T>& g1, int s,
                 int xl0, int xr0, int dl, int dr, TrapWs2D<V>& ws,
                 bool force_scalar) {
  constexpr int VL = V::lanes;
  const int nx = g0.nx(), ny = g0.ny();
  grid::Grid2D<T>* const arr[2] = {&g0, &g1};
  const auto lev_g = [&](int l) -> grid::Grid2D<T>& { return *arr[l & 1]; };

  int XL[VL + 1], XR[VL + 1];
  for (int l = 0; l <= VL; ++l) {
    XL[l] = std::max(1, xl0 + dl * l);
    XR[l] = std::min(nx, xr0 + dr * l);
  }

  // Scalar rows of level l over [r0, r1]; parity slots already hold the
  // right level-(l-1) values everywhere the stencil reads.
  const auto scalar_rows = [&](int l, int r0, int r1) {
    grid::Grid2D<T>& dst = lev_g(l);
    const grid::Grid2D<T>& src = lev_g(l - 1);
    const auto at = [&](int r, int y) -> T { return src.at(r, y); };
    for (int r = r0; r <= r1; ++r)
      for (int y = 1; y <= ny; ++y) dst.at(r, y) = f.apply_scalar(at, r, y);
  };

  int x_begin = XL[1] - (VL - 1) * s, x_end = XR[1] - (VL - 1) * s;
  for (int l = 2; l <= VL; ++l) {
    x_begin = std::max(x_begin, XL[l] - (VL - l) * s);
    x_end = std::min(x_end, XR[l] - (VL - l) * s);
  }

  if (force_scalar || x_end - x_begin < VL) {
    for (int l = 1; l <= VL; ++l) scalar_rows(l, XL[l], XR[l]);
    return;
  }

  // ---- left wedges (levels ascending, final level last) --------------------
  for (int l = 1; l <= VL - 1; ++l)
    scalar_rows(l, XL[l], std::min(XR[l], x_begin + (VL - l) * s - 1));
  scalar_rows(VL, XL[VL], x_begin - 1);

  // ---- gather ring rows ------------------------------------------------------
  for (int p = x_begin - 1; p <= x_begin + s - 1; ++p) {
    V* row = ws.row(p);
    alignas(64) T lanes[VL];
    for (int y = 0; y <= ny + 1; ++y) {
      for (int k = 0; k < VL; ++k)
        lanes[k] = lev_g(k).at(std::min(p + (VL - 1 - k) * s, nx + 1), y);
      row[y] = V::load(lanes);
    }
  }

  // ---- steady loop --------------------------------------------------------------
  const int read_cap = std::min(XR[1] + 1, nx + 1);
  for (int x = x_begin; x <= x_end; ++x) {
    const V* rm1 = ws.row(x - 1);
    const V* r0v = ws.row(x);
    const V* rp1 = ws.row(x + 1);
    V* rout = ws.row(x + s);
    T* trow = g0.row(x);
    const T* brow = g0.row(std::min(x + VL * s, read_cap));

    {
      alignas(64) T lanes[VL];
      const int p = x + s;
      for (const int y : {0, ny + 1}) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g0.at(std::min(p + (VL - 1 - k) * s, nx + 1), y);
        rout[y] = V::load(lanes);
      }
    }

    int y = 1;
    V wbuf[VL];
    for (; y + VL - 1 <= ny; y += VL) {
      V bot = V::loadu(brow + y);
      for (int j = 0; j < VL - 1; ++j) {
        wbuf[j] = f.apply(rm1, r0v, rp1, y + j);
        rout[y + j] = simd::shift_in_low_v(wbuf[j], bot);
        bot = simd::rotate_down(bot);
      }
      wbuf[VL - 1] = f.apply(rm1, r0v, rp1, y + VL - 1);
      rout[y + VL - 1] = simd::shift_in_low_v(wbuf[VL - 1], bot);
      simd::collect_tops_arr(wbuf).storeu(trow + y);
    }
    for (; y <= ny; ++y) {
      const V w = f.apply(rm1, r0v, rp1, y);
      rout[y] = simd::shift_in_low(w, brow[y]);
      trow[y] = simd::top_lane(w);
    }
  }

  // ---- flush surviving ring lanes into the parity grids -----------------------
  for (int p = x_end; p <= x_end + s; ++p) {
    const V* row = ws.row(p);
    for (int k = 1; k <= VL - 1; ++k) {
      const int r = p + (VL - 1 - k) * s;
      if (r < XL[k] || r > XR[k]) continue;
      grid::Grid2D<T>& dst = lev_g(k);
      for (int y = 1; y <= ny; ++y) dst.at(r, y) = row[y][k];
    }
  }

  // ---- right wedges (levels ascending) -------------------------------------------
  for (int l = 1; l <= VL; ++l)
    scalar_rows(l, std::max(XL[l], x_end + (VL - l) * s + 1), XR[l]);
}

// Band/phase diamond driver shared by every 2D kernel.
template <class V, class F, class T>
void diamond2d_run(const F& f, grid::PingPong<grid::Grid2D<T>>& pp, long steps,
                   Diamond2DOptions opt) {
  constexpr int VL = V::lanes;
  const int nx = pp.even().nx(), ny = pp.even().ny();
  const int s = std::max(2, opt.stride);
  int H = std::max(VL, opt.height - opt.height % VL);
  int W = std::max(opt.width, 2 * H + VL * s + 8);
  if (W >= nx) {
    W = nx;
    H = std::max(VL, std::min(H, (W / 2 / VL) * VL));
    W = std::max(W, 2 * H + VL * s + 8);
  }

  // One ring workspace per concurrent runner: OpenMP threads on the
  // driver's own loops, executor slots under an external StageExec (the
  // slot is unique among running bodies, and each lazy prepare() below
  // first-touches the ring on the worker that sweeps it).
  const int nslots = std::max(
      omp_get_max_threads(), opt.exec != nullptr ? opt.exec->slots : 0);
  std::vector<TrapWs2D<V>> tls(static_cast<std::size_t>(nslots));

  const long t_vec = steps - steps % VL;
  long t0 = 0;
  while (t0 < t_vec) {
    const int h = static_cast<int>(std::min<long>(H, t_vec - t0));
    const int nb = (nx + W - 1) / W;
    // Phase-1 trapezoids write rows [1 + k*W, (k+1)*W] only (shrinking
    // edges); the parity grids are partitioned by tile index, and the ws
    // scratch is per-runner (tls[slot]).
    const auto phase1 = [&](int k, int slot) {
      TrapWs2D<V>& ws = tls[static_cast<std::size_t>(slot)];
      ws.prepare(s, ny);
      for (int j = 0; j < h / VL; ++j) {
        const long tt = t0 + static_cast<long>(VL) * j;
        grid::Grid2D<T>& a0 = pp.by_parity(tt);
        grid::Grid2D<T>& a1 = pp.by_parity(tt + 1);
        trapezoid2d<V>(f, a0, a1, s, 1 + k * W + VL * j, (k + 1) * W - VL * j,
                       +1, -1, ws, !opt.use_vector);
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, nb, phase1);
    } else {
      // tvsrace: partitioned(k)
#pragma omp parallel for schedule(dynamic, 1)
      for (int k = 0; k < nb; ++k) phase1(k, omp_get_thread_num());
    }
    // Phase-2 seam tiles: disjoint row ranges around each seam k*W, same
    // partition argument as phase 1.
    const auto phase2 = [&](int k, int slot) {
      TrapWs2D<V>& ws = tls[static_cast<std::size_t>(slot)];
      ws.prepare(s, ny);
      for (int j = 0; j < h / VL; ++j) {
        const long tt = t0 + static_cast<long>(VL) * j;
        grid::Grid2D<T>& a0 = pp.by_parity(tt);
        grid::Grid2D<T>& a1 = pp.by_parity(tt + 1);
        trapezoid2d<V>(f, a0, a1, s, k * W + 1 - VL * j, k * W + VL * j, -1,
                       +1, ws, !opt.use_vector);
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, nb + 1, phase2);
    } else {
      // tvsrace: partitioned(k)
#pragma omp parallel for schedule(dynamic, 1)
      for (int k = 0; k <= nb; ++k) phase2(k, omp_get_thread_num());
    }
    t0 += h;
  }
  // Residual scalar steps, row-parallel.
  for (; t0 < steps; ++t0) {
    const grid::Grid2D<T>& src = pp.by_parity(t0);
    grid::Grid2D<T>& dst = pp.by_parity(t0 + 1);
    const auto at = [&](int r, int y) -> T { return src.at(r, y); };
#pragma omp parallel for schedule(static)
    for (int r = 1; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y) dst.at(r, y) = f.apply_scalar(at, r, y);
  }
}

using VD = simd::NativeVec<double, 4>;
using VI = simd::NativeVec<std::int32_t, 8>;

void jacobi2d5(const stencil::C2D5& c, grid::PingPong<grid::Grid2D<double>>& pp,
               long steps, const Diamond2DOptions& opt) {
  diamond2d_run<VD>(tv::J2D5F<VD>(c), pp, steps, opt);
}
void jacobi2d9(const stencil::C2D9& c, grid::PingPong<grid::Grid2D<double>>& pp,
               long steps, const Diamond2DOptions& opt) {
  diamond2d_run<VD>(tv::J2D9F<VD>(c), pp, steps, opt);
}
void life(const stencil::LifeRule& r,
          grid::PingPong<grid::Grid2D<std::int32_t>>& pp, long steps,
          const Diamond2DOptions& opt) {
  diamond2d_run<VI>(tv::LifeF<VI>(r), pp, steps, opt);
}

}  // namespace

TVS_BACKEND_REGISTRAR(diamond2d) {
  TVS_REGISTER(kDiamondJacobi2D5, DiamondJacobi2D5Fn, jacobi2d5);
  TVS_REGISTER(kDiamondJacobi2D9, DiamondJacobi2D9Fn, jacobi2d9);
  TVS_REGISTER_DT(kDiamondLife, DiamondLifeFn, life, dispatch::DType::kI32);
}

}  // namespace tvs::tiling
