// Parallelogram + wavefront tiling for the 2D and 3D Gauss-Seidel stencils
// (Figures 5d/5f; Table 1: GS-2D 128^2 x 32, GS-3D 32^3 x 32).  The tiling
// acts on (t, x-rows) — level l of a tile covers rows
// [xl0-(l-1), xr0-(l-1)] x the full inner dimensions — with the same
// single-array interface-ladder discipline as the 1D driver
// (parallelogram_impl.hpp) and anti-diagonal wavefronts w = 2*bt + bx.
#pragma once

#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"
#include "tiling/stage_exec.hpp"

namespace tvs::tiling {

struct ParallelogramNDOptions {
  int width = 128;  // tile width in rows
  int height = 32;  // band height in sweeps
  int stride = 2;
  bool use_vector = true;  // false: identical tiling, scalar tiles
  // External stage executor (serving pool); nullptr = the driver's own
  // OpenMP loops.  Same tiles either way, bit-identical results.
  const StageExec* exec = nullptr;
};

void parallelogram_gs2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                             long sweeps,
                             const ParallelogramNDOptions& opt = {});
void parallelogram_gs3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                             long sweeps,
                             const ParallelogramNDOptions& opt = {});

}  // namespace tvs::tiling
