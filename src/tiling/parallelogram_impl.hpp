// Parallelogram tiling for Gauss-Seidel stencils (§3.4): diamond tiling is
// illegal (the newest-west dependence kills the growing phase), so the
// paper uses parallelogram tiles executed in wavefront order.
//
// A tile of the (t, x) plane covers, at level l = 1..4 (one vl=4 time
// tile), the interval [xl0-(l-1), xr0-(l-1)] — both edges slide left one
// point per sweep, matching the a^{t}_{x+1} dependence.  Everything lives
// in the *single* Gauss-Seidel array: because the edges slope exactly -1,
// the last write to an interface slot xl0-l is always the level-l value,
// which is precisely the newest-west operand the right-hand neighbour tile
// needs — no interface buffers at all.
//
// Tile dependences: (bt, bx) needs (bt, bx-1) [west interface] and
// (bt-1, bx), (bt-1, bx+1) [base row]; all are satisfied by executing
// anti-diagonal wavefronts w = 2*bt + bx, with every tile inside one
// wavefront independent (they are >= 2W+H points apart).  Parallelism
// therefore grows with the number of *bands* in flight, T/H.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>

#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tv/ring.hpp"       // kRingCapacity, RingIndex
#include "tv/tv1d_impl.hpp"  // Workspace1D (scalar fallbacks)

namespace tvs::tv {

// One 4-sweep parallelogram tile of the 1D3P Gauss-Seidel stencil, in place
// on `a`.  Level-l (l = 1..4) range: [xl0-(l-1), xr0-(l-1)] clamped to
// [1, nx].  Boundary cells a[x <= 0], a[x >= nx+1] are fixed.
template <class V>
void tv_gs1d_parallelogram(const stencil::C1D3& c, double* a, int nx, int s,
                           int xl0, int xr0, bool force_scalar = false) {
  assert(s >= 2 && s <= 12);
  std::array<int, 5> XL{}, XR{};
  for (int l = 1; l <= 4; ++l) {
    XL[static_cast<std::size_t>(l)] = std::max(1, xl0 - (l - 1));
    XR[static_cast<std::size_t>(l)] = std::min(nx, xr0 - (l - 1));
  }

  // Scalar update of level l over [x0, x1], newest-west chained from the
  // array slot west of x0 (the left tile's final interface value).
  const auto scalar_range = [&](int l, int x0, int x1) {
    (void)l;
    // Right-edge tiles can clamp a level to an empty range with x0 far
    // beyond nx (XL is only clamped from below); bail before touching
    // a[x0 - 1], which may lie past the padded allocation.
    if (x0 > x1) return;
    double west = a[x0 - 1];
    for (int x = x0; x <= x1; ++x) {
      const double v = stencil::gs1d3(c.w, c.c, c.e, west, a[x], a[x + 1]);
      a[x] = v;
      west = v;
    }
  };

  int x_begin = XL[1] - 3 * s, x_end = XR[1] - 3 * s;
  for (int l = 2; l <= 4; ++l) {
    x_begin = std::max(x_begin, XL[static_cast<std::size_t>(l)] - (4 - l) * s);
    x_end = std::min(x_end, XR[static_cast<std::size_t>(l)] - (4 - l) * s);
  }

  if (force_scalar || x_end - x_begin < 4) {
    for (int l = 1; l <= 4; ++l)
      scalar_range(l, XL[static_cast<std::size_t>(l)],
                   XR[static_cast<std::size_t>(l)]);
    return;
  }

  // ---- left wedges, levels ascending ---------------------------------------
  for (int l = 1; l <= 3; ++l)
    scalar_range(l, XL[static_cast<std::size_t>(l)],
                 std::min(XR[static_cast<std::size_t>(l)],
                          x_begin + (4 - l) * s - 1));
  scalar_range(4, XL[4], x_begin - 1);

  // ---- gather ring (positions x_begin .. x_begin+s-1) and initial w --------
  const int M = s;
  std::array<V, kRingCapacity> ring;
  const RingIndex rix(M);
  for (int p = x_begin; p <= x_begin + s - 1; ++p) {
    alignas(64) double lanes[4];
    lanes[0] = a[p + 3 * s];
    lanes[1] = a[p + 2 * s];
    lanes[2] = a[p + s];
    lanes[3] = a[p];
    ring[static_cast<std::size_t>(rix.slot(p))] = V::load(lanes);
  }
  V w;
  {
    alignas(64) double lanes[4];
    lanes[0] = a[x_begin - 1 + 3 * s];
    lanes[1] = a[x_begin - 1 + 2 * s];
    lanes[2] = a[x_begin - 1 + s];
    lanes[3] = a[x_begin - 1];
    w = V::load(lanes);
  }

  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);

  // ---- steady loop -----------------------------------------------------------
  int ic = rix.slot(x_begin);
  int x = x_begin;
  for (; x + 3 <= x_end; x += 4) {
    V bot = V::loadu(a + x + 4 * s);
    V w0, w1, w2, w3;
    {
      const int ie = rix.inc(ic);
      w0 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w0, bot);
      bot = simd::rotate_down(bot);
      w = w0;
      ic = ie;
    }
    {
      const int ie = rix.inc(ic);
      w1 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w1, bot);
      bot = simd::rotate_down(bot);
      w = w1;
      ic = ie;
    }
    {
      const int ie = rix.inc(ic);
      w2 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w2, bot);
      bot = simd::rotate_down(bot);
      w = w2;
      ic = ie;
    }
    {
      const int ie = rix.inc(ic);
      w3 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w3, bot);
      w = w3;
      ic = ie;
    }
    simd::collect_tops(w0, w1, w2, w3).storeu(a + x);
  }
  for (; x <= x_end; ++x) {
    const int ie = rix.inc(ic);
    const V wv = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
    ring[ic] = simd::shift_in_low(wv, a[x + 4 * s]);
    a[x] = simd::top_lane(wv);
    w = wv;
    ic = ie;
  }

  // ---- flush: write surviving lanes straight into the array -----------------
  for (int p = x_end + 1; p <= x_end + s; ++p) {
    const V& u = ring[static_cast<std::size_t>(rix.slot(p))];
    const auto put = [&](int l, int q, double v) {
      if (q >= XL[static_cast<std::size_t>(l)] &&
          q <= XR[static_cast<std::size_t>(l)])
        a[q] = v;
    };
    put(1, p + 2 * s, u[1]);
    put(2, p + s, u[2]);
    put(3, p, u[3]);
  }

  // ---- right wedges, levels ascending -----------------------------------------
  for (int l = 1; l <= 4; ++l)
    scalar_range(l,
                 std::max(XL[static_cast<std::size_t>(l)],
                          x_end + (4 - l) * s + 1),
                 XR[static_cast<std::size_t>(l)]);
}

}  // namespace tvs::tv
