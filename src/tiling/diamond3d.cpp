// 3D trapezoid engine + diamond driver; the slab analogue of diamond2d.cpp.
#include "dispatch/backend_variant.hpp"
#include "tiling/diamond3d.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <vector>

#include "grid/aligned.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "tv/functors3d.hpp"
#include "tv/ring.hpp"

namespace tvs::tiling {

namespace {

using V = simd::NativeVec<double, 4>;
constexpr int VL = 4;

struct TrapWs3D {
  grid::AlignedBuffer<V> ring;
  int s = 0, ny = 0;
  std::ptrdiff_t zstride = 0, ystride = 0;
  void prepare(int stride, int ny_, int nz) {
    const std::ptrdiff_t zs = ((nz + 4 + 15) / 16) * 16;
    if (stride != s || ny_ != ny || zs != zstride) {
      s = stride;
      ny = ny_;
      zstride = zs;
      ystride = static_cast<std::ptrdiff_t>(ny + 2) * zstride;
      ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 2) *
                                    static_cast<std::size_t>(ystride));
    }
  }
  V* line(int p, int y) {
    const int M = s + 2;
    const int slot = tv::RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(ystride) +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) + 1;
  }
};

void trapezoid3d(const tv::J3D7F<V>& f, grid::Grid3D<double>& g0,
                 grid::Grid3D<double>& g1, int s, int xl0, int xr0, int dl,
                 int dr, TrapWs3D& ws, bool force_scalar) {
  const int nx = g0.nx(), ny = g0.ny(), nz = g0.nz();
  grid::Grid3D<double>* const arr[2] = {&g0, &g1};
  const auto lev_g = [&](int l) -> grid::Grid3D<double>& { return *arr[l & 1]; };

  int XL[VL + 1], XR[VL + 1];
  for (int l = 0; l <= VL; ++l) {
    XL[l] = std::max(1, xl0 + dl * l);
    XR[l] = std::min(nx, xr0 + dr * l);
  }

  const auto scalar_slabs = [&](int l, int r0, int r1) {
    grid::Grid3D<double>& dst = lev_g(l);
    const grid::Grid3D<double>& src = lev_g(l - 1);
    const auto at = [&](int r, int y, int z) { return src.at(r, y, z); };
    for (int r = r0; r <= r1; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z)
          dst.at(r, y, z) = f.apply_scalar(at, r, y, z);
  };

  int x_begin = XL[1] - (VL - 1) * s, x_end = XR[1] - (VL - 1) * s;
  for (int l = 2; l <= VL; ++l) {
    x_begin = std::max(x_begin, XL[l] - (VL - l) * s);
    x_end = std::min(x_end, XR[l] - (VL - l) * s);
  }
  if (force_scalar || x_end - x_begin < VL) {
    for (int l = 1; l <= VL; ++l) scalar_slabs(l, XL[l], XR[l]);
    return;
  }

  for (int l = 1; l <= VL - 1; ++l)
    scalar_slabs(l, XL[l], std::min(XR[l], x_begin + (VL - l) * s - 1));
  scalar_slabs(VL, XL[VL], x_begin - 1);

  alignas(64) double lanes[VL];
  for (int p = x_begin - 1; p <= x_begin + s - 1; ++p)
    for (int y = 0; y <= ny + 1; ++y) {
      V* line = ws.line(p, y);
      for (int z = 0; z <= nz + 1; ++z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = lev_g(k).at(std::min(p + (VL - 1 - k) * s, nx + 1), y, z);
        line[z] = V::load(lanes);
      }
    }

  const int read_cap = std::min(XR[1] + 1, nx + 1);
  for (int x = x_begin; x <= x_end; ++x) {
    {
      const int p = x + s;
      const auto fill = [&](int y, int z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g0.at(std::min(p + (VL - 1 - k) * s, nx + 1), y, z);
        ws.line(p, y)[z] = V::load(lanes);
      };
      for (int z = 0; z <= nz + 1; ++z) {
        fill(0, z);
        fill(ny + 1, z);
      }
      for (int y = 1; y <= ny; ++y) {
        fill(y, 0);
        fill(y, nz + 1);
      }
    }
    const int bx = std::min(x + VL * s, read_cap);
    for (int y = 1; y <= ny; ++y) {
      const V* bm1 = ws.line(x - 1, y);
      const V* b0c = ws.line(x, y);
      const V* b0m = ws.line(x, y - 1);
      const V* b0p = ws.line(x, y + 1);
      const V* bp1 = ws.line(x + 1, y);
      V* lout = ws.line(x + s, y);
      double* tline = g0.line(x, y);
      const double* bline = g0.line(bx, y);

      int z = 1;
      V wbuf[VL];
      for (; z + VL - 1 <= nz; z += VL) {
        V bot = V::loadu(bline + z);
        for (int j = 0; j < VL - 1; ++j) {
          wbuf[j] = f.apply(bm1, b0c, b0m, b0p, bp1, z + j);
          lout[z + j] = simd::shift_in_low_v(wbuf[j], bot);
          bot = simd::rotate_down(bot);
        }
        wbuf[VL - 1] = f.apply(bm1, b0c, b0m, b0p, bp1, z + VL - 1);
        lout[z + VL - 1] = simd::shift_in_low_v(wbuf[VL - 1], bot);
        simd::collect_tops_arr(wbuf).storeu(tline + z);
      }
      for (; z <= nz; ++z) {
        const V w = f.apply(bm1, b0c, b0m, b0p, bp1, z);
        lout[z] = simd::shift_in_low(w, bline[z]);
        tline[z] = simd::top_lane(w);
      }
    }
  }

  for (int p = x_end; p <= x_end + s; ++p) {
    for (int k = 1; k <= VL - 1; ++k) {
      const int r = p + (VL - 1 - k) * s;
      if (r < XL[k] || r > XR[k]) continue;
      grid::Grid3D<double>& dst = lev_g(k);
      for (int y = 1; y <= ny; ++y) {
        const V* line = ws.line(p, y);
        for (int z = 1; z <= nz; ++z) dst.at(r, y, z) = line[z][k];
      }
    }
  }

  for (int l = 1; l <= VL; ++l)
    scalar_slabs(l, std::max(XL[l], x_end + (VL - l) * s + 1), XR[l]);
}

void jacobi3d7(const stencil::C3D7& c,
               grid::PingPong<grid::Grid3D<double>>& pp, long steps,
               const Diamond3DOptions& opt) {
  const tv::J3D7F<V> f(c);
  const int nx = pp.even().nx(), ny = pp.even().ny(), nz = pp.even().nz();
  const int s = std::max(2, opt.stride);
  int H = std::max(VL, opt.height - opt.height % VL);
  int W = std::max(opt.width, 2 * H + VL * s + 8);
  if (W >= nx) {
    W = nx;
    H = std::max(VL, std::min(H, (W / 2 / VL) * VL));
    W = std::max(W, 2 * H + VL * s + 8);
  }
  // One ring workspace per concurrent runner (OpenMP threads or external
  // executor slots); lazy prepare() first-touches it on the sweeping
  // worker.
  const int nslots = std::max(
      omp_get_max_threads(), opt.exec != nullptr ? opt.exec->slots : 0);
  std::vector<TrapWs3D> tls(static_cast<std::size_t>(nslots));

  const long t_vec = steps - steps % VL;
  long t0 = 0;
  while (t0 < t_vec) {
    const int h = static_cast<int>(std::min<long>(H, t_vec - t0));
    const int nb = (nx + W - 1) / W;
    // Phase-1 trapezoids write planes [1 + k*W, (k+1)*W] only (shrinking
    // edges); parity grids partitioned by tile index, ws is per-runner.
    const auto phase1 = [&](int k, int slot) {
      TrapWs3D& ws = tls[static_cast<std::size_t>(slot)];
      ws.prepare(s, ny, nz);
      for (int j = 0; j < h / VL; ++j) {
        const long tt = t0 + static_cast<long>(VL) * j;
        trapezoid3d(f, pp.by_parity(tt), pp.by_parity(tt + 1), s,
                    1 + k * W + VL * j, (k + 1) * W - VL * j, +1, -1, ws,
                    !opt.use_vector);
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, nb, phase1);
    } else {
      // tvsrace: partitioned(k)
#pragma omp parallel for schedule(dynamic, 1)
      for (int k = 0; k < nb; ++k) phase1(k, omp_get_thread_num());
    }
    // Phase-2 seam tiles: disjoint plane ranges around each seam k*W.
    const auto phase2 = [&](int k, int slot) {
      TrapWs3D& ws = tls[static_cast<std::size_t>(slot)];
      ws.prepare(s, ny, nz);
      for (int j = 0; j < h / VL; ++j) {
        const long tt = t0 + static_cast<long>(VL) * j;
        trapezoid3d(f, pp.by_parity(tt), pp.by_parity(tt + 1), s,
                    k * W + 1 - VL * j, k * W + VL * j, -1, +1, ws,
                    !opt.use_vector);
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, nb + 1, phase2);
    } else {
      // tvsrace: partitioned(k)
#pragma omp parallel for schedule(dynamic, 1)
      for (int k = 0; k <= nb; ++k) phase2(k, omp_get_thread_num());
    }
    t0 += h;
  }
  for (; t0 < steps; ++t0) {
    const grid::Grid3D<double>& src = pp.by_parity(t0);
    grid::Grid3D<double>& dst = pp.by_parity(t0 + 1);
    const auto at = [&](int r, int y, int z) { return src.at(r, y, z); };
#pragma omp parallel for schedule(static)
    for (int r = 1; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z) dst.at(r, y, z) = f.apply_scalar(at, r, y, z);
  }
}

}  // namespace

TVS_BACKEND_REGISTRAR(diamond3d) {
  TVS_REGISTER(kDiamondJacobi3D7, DiamondJacobi3D7Fn, jacobi3d7);
}

}  // namespace tvs::tiling
