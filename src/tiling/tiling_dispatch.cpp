// Public tiling/ entry points: registry dispatch plus the Grid-based
// convenience wrappers (PingPong setup / result copy-back), which are plain
// memory management and therefore common code.
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "tiling/diamond.hpp"
#include "tiling/diamond2d.hpp"
#include "tiling/diamond3d.hpp"
#include "tiling/lcs_wavefront.hpp"
#include "tiling/parallelogram.hpp"
#include "tiling/parallelogram2d.hpp"
#include "tiling/pingpong_convert.hpp"

namespace tvs::tiling {

namespace {

template <class Fn>
Fn* lookup(std::string_view id) {
  return dispatch::KernelRegistry::instance().get<Fn>(id);
}

}  // namespace

// ---- 1D diamond ------------------------------------------------------------

void fix_boundaries(grid::PingPong<grid::Grid1D<double>>& pp) {
  const int nx = pp.even().nx();
  for (int x = -grid::kPad; x <= 0; ++x) pp.odd().at(x) = pp.even().at(x);
  for (int x = nx + 1; x <= nx + 1 + grid::kPad; ++x)
    pp.odd().at(x) = pp.even().at(x);
}

void diamond_jacobi1d3_run(const stencil::C1D3& c,
                           grid::PingPong<grid::Grid1D<double>>& pp,
                           long steps, const Diamond1DOptions& opt) {
  static const auto fn =
      lookup<dispatch::DiamondJacobi1D3Fn>(dispatch::kDiamondJacobi1D3);
  fn(c, pp, steps, opt);
}

void diamond_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                           long steps, const Diamond1DOptions& opt) {
  with_pingpong1d(u, steps,
                  [&](auto& pp) { diamond_jacobi1d3_run(c, pp, steps, opt); });
}

// ---- 2D diamond ------------------------------------------------------------

void diamond_jacobi2d5_run(const stencil::C2D5& c,
                           grid::PingPong<grid::Grid2D<double>>& pp,
                           long steps, const Diamond2DOptions& opt) {
  static const auto fn =
      lookup<dispatch::DiamondJacobi2D5Fn>(dispatch::kDiamondJacobi2D5);
  fn(c, pp, steps, opt);
}

void diamond_jacobi2d9_run(const stencil::C2D9& c,
                           grid::PingPong<grid::Grid2D<double>>& pp,
                           long steps, const Diamond2DOptions& opt) {
  static const auto fn =
      lookup<dispatch::DiamondJacobi2D9Fn>(dispatch::kDiamondJacobi2D9);
  fn(c, pp, steps, opt);
}

void diamond_life_run(const stencil::LifeRule& r,
                      grid::PingPong<grid::Grid2D<std::int32_t>>& pp,
                      long steps, const Diamond2DOptions& opt) {
  static const auto fn = lookup<dispatch::DiamondLifeFn>(dispatch::kDiamondLife);
  fn(r, pp, steps, opt);
}

void diamond_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                           long steps, const Diamond2DOptions& opt) {
  with_pingpong2d(u, steps,
                  [&](auto& pp) { diamond_jacobi2d5_run(c, pp, steps, opt); });
}

void diamond_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                           long steps, const Diamond2DOptions& opt) {
  with_pingpong2d(u, steps,
                  [&](auto& pp) { diamond_jacobi2d9_run(c, pp, steps, opt); });
}

void diamond_life_run(const stencil::LifeRule& r,
                      grid::Grid2D<std::int32_t>& u, long steps,
                      const Diamond2DOptions& opt) {
  with_pingpong2d(u, steps,
                  [&](auto& pp) { diamond_life_run(r, pp, steps, opt); });
}

// ---- 3D diamond ------------------------------------------------------------

void diamond_jacobi3d7_run(const stencil::C3D7& c,
                           grid::PingPong<grid::Grid3D<double>>& pp,
                           long steps, const Diamond3DOptions& opt) {
  static const auto fn =
      lookup<dispatch::DiamondJacobi3D7Fn>(dispatch::kDiamondJacobi3D7);
  fn(c, pp, steps, opt);
}

void diamond_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                           long steps, const Diamond3DOptions& opt) {
  with_pingpong3d(u, steps,
                  [&](auto& pp) { diamond_jacobi3d7_run(c, pp, steps, opt); });
}

// ---- Gauss-Seidel parallelograms -------------------------------------------

void parallelogram_gs1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                             long sweeps, const Parallelogram1DOptions& opt) {
  static const auto fn =
      lookup<dispatch::ParallelogramGs1D3Fn>(dispatch::kParallelogramGs1D3);
  fn(c, u, sweeps, opt);
}

void parallelogram_gs2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                             long sweeps, const ParallelogramNDOptions& opt) {
  static const auto fn =
      lookup<dispatch::ParallelogramGs2D5Fn>(dispatch::kParallelogramGs2D5);
  fn(c, u, sweeps, opt);
}

void parallelogram_gs3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                             long sweeps, const ParallelogramNDOptions& opt) {
  static const auto fn =
      lookup<dispatch::ParallelogramGs3D7Fn>(dispatch::kParallelogramGs3D7);
  fn(c, u, sweeps, opt);
}

// ---- LCS wavefront ---------------------------------------------------------

std::int32_t lcs_wavefront(std::span<const std::int32_t> a,
                           std::span<const std::int32_t> b,
                           const LcsWavefrontOptions& opt) {
  static const auto fn = lookup<dispatch::LcsWavefrontFn>(dispatch::kLcsWavefront);
  return fn(a, b, opt);
}

}  // namespace tvs::tiling
