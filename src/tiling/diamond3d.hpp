// Diamond tiling on (t, x-slabs) for the 3D7P Jacobi stencil (Figure 4f;
// Table 1: 32^3 x 8 blocking).  3D analogue of diamond2d.hpp.
#pragma once

#include "grid/grid3d.hpp"
#include "grid/pingpong.hpp"
#include "stencil/coefficients.hpp"
#include "tiling/stage_exec.hpp"

namespace tvs::tiling {

struct Diamond3DOptions {
  int width = 32;   // tile base width in x-slabs
  int height = 8;   // band height in time steps (multiple of 4)
  int stride = 2;
  bool use_vector = true;  // false: identical tiling, scalar tiles
  // External stage executor (serving pool); nullptr = the driver's own
  // OpenMP loops.  Same tiles either way, bit-identical results.
  const StageExec* exec = nullptr;
};

void diamond_jacobi3d7_run(const stencil::C3D7& c,
                           grid::PingPong<grid::Grid3D<double>>& pp,
                           long steps, const Diamond3DOptions& opt = {});
void diamond_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                           long steps, const Diamond3DOptions& opt = {});

template <class T>
void fix_boundaries3d(grid::PingPong<grid::Grid3D<T>>& pp) {
  const int nx = pp.even().nx(), ny = pp.even().ny(), nz = pp.even().nz();
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y)
      for (int z = -grid::kPad; z <= nz + 1 + grid::kPad; ++z)
        if (x == 0 || x == nx + 1 || y == 0 || y == ny + 1 || z <= 0 ||
            z >= nz + 1)
          pp.odd().at(x, y, z) = pp.even().at(x, y, z);
}

}  // namespace tvs::tiling
