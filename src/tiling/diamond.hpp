// Diamond-tiled, OpenMP-parallel drivers for the 1D Jacobi kernels
// (Figure 4b; Table 1's Heat-1D blocking 16384 x 128).
//
// Decomposition per band of height `height` (a multiple of 4):
//   phase 1: shrinking trapezoids based at [1+kW, (k+1)W], mutually
//            independent — parallel for;
//   phase 2: growing trapezoids from the seams kW (empty base), mutually
//            independent once phase 1 finished — parallel for.
// The union of a phase-2 tile and the next band's phase-1 tile above it is
// the classic diamond.  Data lives in two parity arrays (see
// diamond_impl.hpp); the result of step T is in parity(T).
#pragma once

#include "grid/grid1d.hpp"
#include "grid/pingpong.hpp"
#include "stencil/coefficients.hpp"
#include "tiling/stage_exec.hpp"

namespace tvs::tiling {

struct Diamond1DOptions {
  int width = 16384;   // tile base width W (paper Table 1)
  int height = 128;    // band height (time steps per band)
  int stride = 7;      // temporal-vectorization stride s
  bool use_vector = true;  // false: identical tiling, scalar tiles (bench baseline)
  // External stage executor (serving pool); nullptr = the driver's own
  // OpenMP loops.  Same tiles either way, bit-identical results.
  const StageExec* exec = nullptr;
};

// Input: pp.by_parity(0) holds the t = 0 data; boundary cells (x <= 0,
// x >= nx+1) must be identical in both arrays (fix_boundaries does that).
// Output: pp.by_parity(steps) holds the result.
void diamond_jacobi1d3_run(const stencil::C1D3& c,
                           grid::PingPong<grid::Grid1D<double>>& pp,
                           long steps, const Diamond1DOptions& opt = {});

// Convenience wrapper: result copied back into u (allocates the partner
// array internally — prefer the PingPong overload in benchmarks).
void diamond_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                           long steps, const Diamond1DOptions& opt = {});

// Copies boundary cells of the even array into the odd array.
void fix_boundaries(grid::PingPong<grid::Grid1D<double>>& pp);

}  // namespace tvs::tiling
