// Grid <-> parity-pair conversion for the diamond drivers' convenience
// overloads: copy the grid (boundary cells and vector-overrun padding
// included) into the even array, mirror the boundaries into the odd one,
// run the tiled kernel, and copy the result parity back.  Shared by the
// public tiling dispatchers (tiling_dispatch.cpp) and the Solver facade
// (solver/solver.cpp), so the pad-sensitive copy ranges live in exactly
// one place.
#pragma once

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "grid/pingpong.hpp"
#include "tiling/diamond.hpp"
#include "tiling/diamond2d.hpp"
#include "tiling/diamond3d.hpp"

namespace tvs::tiling {

template <class T, class Run>
void with_pingpong1d(grid::Grid1D<T>& u, long steps, Run run) {
  grid::PingPong<grid::Grid1D<T>> pp(u.nx());
  for (int x = -grid::kPad; x <= u.nx() + 1 + grid::kPad; ++x)
    pp.even().at(x) = u.at(x);
  fix_boundaries(pp);
  run(pp);
  grid::Grid1D<T>& res = pp.by_parity(steps);
  for (int x = 0; x <= u.nx() + 1; ++x) u.at(x) = res.at(x);
}

template <class T, class Run>
void with_pingpong2d(grid::Grid2D<T>& u, long steps, Run run) {
  grid::PingPong<grid::Grid2D<T>> pp(u.nx(), u.ny());
  for (int x = 0; x <= u.nx() + 1; ++x)
    for (int y = -grid::kPad; y <= u.ny() + 1 + grid::kPad; ++y)
      pp.even().at(x, y) = u.at(x, y);
  fix_boundaries2d(pp);
  run(pp);
  const grid::Grid2D<T>& res = pp.by_parity(steps);
  for (int x = 0; x <= u.nx() + 1; ++x)
    for (int y = 0; y <= u.ny() + 1; ++y) u.at(x, y) = res.at(x, y);
}

template <class T, class Run>
void with_pingpong3d(grid::Grid3D<T>& u, long steps, Run run) {
  grid::PingPong<grid::Grid3D<T>> pp(u.nx(), u.ny(), u.nz());
  for (int x = 0; x <= u.nx() + 1; ++x)
    for (int y = 0; y <= u.ny() + 1; ++y)
      for (int z = -grid::kPad; z <= u.nz() + 1 + grid::kPad; ++z)
        pp.even().at(x, y, z) = u.at(x, y, z);
  fix_boundaries3d(pp);
  run(pp);
  const grid::Grid3D<T>& res = pp.by_parity(steps);
  for (int x = 0; x <= u.nx() + 1; ++x)
    for (int y = 0; y <= u.ny() + 1; ++y)
      for (int z = 0; z <= u.nz() + 1; ++z) u.at(x, y, z) = res.at(x, y, z);
}

}  // namespace tvs::tiling
