// Diamond tiling on (t, x-rows) for 2D stencils — the paper's parallel
// scheme: "the diamond tiling always applies to the outermost space loop
// and co-works with the temporal vectorization" (§3.4).  Tiles are
// trapezoids of rows x full-width y; data lives in two parity grids; each
// thread owns a private ring of input-vector rows.
#pragma once

#include <cstdint>

#include "grid/grid2d.hpp"
#include "grid/pingpong.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tiling/stage_exec.hpp"

namespace tvs::tiling {

struct Diamond2DOptions {
  int width = 256;  // tile base width in rows (Table 1: 256^2 x 64 blocks)
  int height = 32;  // band height in time steps (multiple of the lane count)
  int stride = 2;   // temporal-vectorization stride s (paper default for 2D)
  bool use_vector = true;  // false: identical tiling, scalar tiles
  // External stage executor (serving pool); nullptr = the driver's own
  // OpenMP loops.  Same tiles either way, bit-identical results.
  const StageExec* exec = nullptr;
};

// Jacobi 2D5P / 2D9P on a parity pair: pp.by_parity(0) holds t = 0,
// boundary cells must be identical in both grids; result in
// pp.by_parity(steps).
void diamond_jacobi2d5_run(const stencil::C2D5& c,
                           grid::PingPong<grid::Grid2D<double>>& pp,
                           long steps, const Diamond2DOptions& opt = {});
void diamond_jacobi2d9_run(const stencil::C2D9& c,
                           grid::PingPong<grid::Grid2D<double>>& pp,
                           long steps, const Diamond2DOptions& opt = {});
void diamond_life_run(const stencil::LifeRule& r,
                      grid::PingPong<grid::Grid2D<std::int32_t>>& pp,
                      long steps, const Diamond2DOptions& opt = {});

// Convenience wrappers (allocate the partner grid; result back in u).
void diamond_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                           long steps, const Diamond2DOptions& opt = {});
void diamond_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                           long steps, const Diamond2DOptions& opt = {});
void diamond_life_run(const stencil::LifeRule& r,
                      grid::Grid2D<std::int32_t>& u, long steps,
                      const Diamond2DOptions& opt = {});

template <class T>
void fix_boundaries2d(grid::PingPong<grid::Grid2D<T>>& pp) {
  const int nx = pp.even().nx(), ny = pp.even().ny();
  for (int y = -grid::kPad; y <= ny + 1 + grid::kPad; ++y) {
    pp.odd().at(0, y) = pp.even().at(0, y);
    pp.odd().at(nx + 1, y) = pp.even().at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    for (int y = -grid::kPad; y <= 0; ++y) pp.odd().at(x, y) = pp.even().at(x, y);
    for (int y = ny + 1; y <= ny + 1 + grid::kPad; ++y)
      pp.odd().at(x, y) = pp.even().at(x, y);
  }
}

}  // namespace tvs::tiling
