// External stage executor for the tiled drivers.
//
// Every tiled driver in this directory is a sequence of STAGES — a diamond
// phase over bands, a parallelogram anti-diagonal, an LCS wavefront — where
// the iterations inside one stage are independent and a barrier separates
// consecutive stages.  By default each driver runs its stages with its own
// `#pragma omp parallel for`; when an Options struct carries a non-null
// StageExec the driver hands every stage to it instead, so an external
// scheduler (the serving pool, see serve/sched.hpp) can interleave the
// tiles of several problems on shared workers.  Because the stage
// decomposition and per-tile bodies are identical on both paths, results
// are bit-identical regardless of which executor runs them.
//
// Deliberately a POD of function pointers, not a virtual interface: these
// headers are included by the per-backend kernel TUs, and a vtable's weak
// symbols would leak past the backends' hidden-visibility discipline
// (tvslint R3).
#pragma once

#include <type_traits>

namespace tvs::tiling {

struct StageExec {
  void* ctx = nullptr;
  // Upper bound on concurrently running stage bodies; drivers size their
  // per-slot ring workspaces as max(omp_get_max_threads(), slots).
  int slots = 1;
  // Runs body(body_ctx, i, slot) for every i in [0, n) and returns only
  // after all n iterations completed.  The slot passed to a body is unique
  // among the bodies running at that moment (it indexes scratch), in
  // [0, slots).
  void (*run)(void* ctx, int n, void (*body)(void* body_ctx, int i, int slot),
              void* body_ctx) = nullptr;
};

// Fans one stage of n independent iterations over ex; body is any callable
// (i, slot).  The callable stays on the caller's stack — ex->run blocks
// until every iteration is done, so the reference outlives all uses.
template <class Body>
void stage_run(const StageExec* ex, int n, Body&& body) {
  using Fn = std::remove_reference_t<Body>;
  // const_cast for the void* handoff only — the trampoline restores the
  // original (possibly const) callable type before invoking it.
  ex->run(
      ex->ctx, n,
      [](void* c, int i, int slot) { (*static_cast<Fn*>(c))(i, slot); },
      const_cast<void*>(static_cast<const void*>(&body)));
}

}  // namespace tvs::tiling
