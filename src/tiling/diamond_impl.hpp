// Diamond tiling on the (t, x) plane combined with temporal vectorization —
// the paper's parallel scheme for 1D Jacobi stencils (§3.4, Table 1's
// 16384 x 128 blocking).
//
// Storage discipline: two global arrays addressed by time parity.  Every
// value a^t_x that any *other* tile may read is written to parity(t)[x];
// slope-R tile edges guarantee a slot is only overwritten after its last
// reader ran (the classic two-array sufficiency of diamond tiling).  Inside
// a tile, intermediate levels live in registers exactly as in the flat
// kernel; only the sloped scalar wedges and the ring flush materialize.
//
// One *trapezoid* is a 4-level (vl) tile with base interval [xl0, xr0] at
// time t0 and edge slopes ±R per level: phase-1 tiles shrink (dl=+R,
// dr=-R), phase-2 tiles grow (dl=-R, dr=+R) from an empty base at the
// seams.  A band of height H = 4K runs K stacked trapezoids per tile;
// bands are separated by barriers, and within a band phase-1 tiles are
// mutually independent (OpenMP parallel for), then phase-2 seam tiles are.
//
// The steady vector loop is the flat kernel's, with two generalizations:
//   * per-level ranges XL[l], XR[l] (clamped to the domain) define the
//     steady interval  x in [max_l(XL[l]-(4-l)s), min_l(XR[l]-(4-l)s)];
//   * grouped bottom loads are capped at read_cap = XR[1]+R — reads past it
//     would touch slots a concurrent phase-1 neighbour may be rewriting
//     (their lanes are provably never consumed, so a clamped re-read of a
//     safe slot is used instead).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>

#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "tv/ring.hpp"       // kRingCapacity, RingIndex
#include "tv/tv1d_impl.hpp"  // Workspace1D (scalar fallbacks)

namespace tvs::tv {

// One 4-level trapezoid on the parity arrays.
//   a0: parity(t0) array (base + levels 2, 4)     a1: parity(t0+1) array
//   xl0/xr0: unclamped base interval; dl/dr: per-level edge motion (+R/-R)
//   nx: domain; s: stride.  Boundary cells (x <= 0, x >= nx+1) must hold the
//   fixed Dirichlet values in *both* arrays.
template <class V, class F>
void tv1d_trapezoid(const F& f, double* a0, double* a1, int nx, int s,
                    int xl0, int xr0, int dl, int dr,
                    bool force_scalar = false) {
  constexpr int R = F::radius;
  assert(dl == R || dl == -R);
  assert(dr == R || dr == -R);

  const std::array<double*, 5> arr = {a0, a1, a0, a1, a0};
  std::array<int, 5> XL{}, XR{};
  for (int l = 0; l <= 4; ++l) {
    XL[static_cast<std::size_t>(l)] = std::max(1, xl0 + dl * l);
    XR[static_cast<std::size_t>(l)] = std::min(nx, xr0 + dr * l);
  }

  double win[2 * R + 1];
  // Scalar update of level l over [x0, x1] reading level l-1.
  const auto scalar_range = [&](int l, int x0, int x1) {
    const double* src = arr[static_cast<std::size_t>(l - 1)];
    double* dst = arr[static_cast<std::size_t>(l)];
    for (int x = x0; x <= x1; ++x) {
      for (int k = 0; k <= 2 * R; ++k) win[k] = src[x - R + k];
      dst[x] = f.apply_scalar(win);
    }
  };

  int x_begin = XL[1] - 3 * s, x_end = XR[1] - 3 * s;
  for (int l = 2; l <= 4; ++l) {
    x_begin = std::max(x_begin, XL[static_cast<std::size_t>(l)] - (4 - l) * s);
    x_end = std::min(x_end, XR[static_cast<std::size_t>(l)] - (4 - l) * s);
  }

  if (force_scalar || x_end - x_begin < 4) {
    // Too narrow for the pipeline: plain scalar trapezoid, levels ascending.
    for (int l = 1; l <= 4; ++l)
      scalar_range(l, XL[static_cast<std::size_t>(l)],
                   XR[static_cast<std::size_t>(l)]);
    return;
  }

  // ---- left wedges (levels ascending; lvl4's wedge is last so its parity-
  // array writes cannot disturb lvl2 values still being read) --------------
  for (int l = 1; l <= 3; ++l)
    scalar_range(l, XL[static_cast<std::size_t>(l)],
                 std::min(XR[static_cast<std::size_t>(l)],
                          x_begin + (4 - l) * s - 1));
  scalar_range(4, XL[4], x_begin - 1);

  // ---- gather the ring from the parity arrays ------------------------------
  const int M = s + R;
  std::array<V, kRingCapacity> ring;
  const RingIndex rix(M);
  for (int p = x_begin - R; p <= x_begin + s - 1; ++p) {
    alignas(64) double lanes[4];
    lanes[0] = a0[p + 3 * s];
    lanes[1] = arr[1][p + 2 * s];
    lanes[2] = arr[2][p + s];
    lanes[3] = arr[3][p];
    ring[static_cast<std::size_t>(rix.slot(p))] = V::load(lanes);
  }

  // ---- steady loop ----------------------------------------------------------
  const int read_cap = XR[1] + R;  // never read a0 beyond this (see header)
  int ib = rix.slot(x_begin - R);
  V winv[2 * R + 1];
  int x = x_begin;
  for (; x + 3 <= x_end && x + 4 * s + 3 <= read_cap; x += 4) {
    V bot = V::loadu(a0 + x + 4 * s);
    V w0, w1, w2, w3;
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = rix.inc(iw); }
      w0 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w0, bot);
      bot = simd::rotate_down(bot);
      ib = rix.inc(ib);
    }
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = rix.inc(iw); }
      w1 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w1, bot);
      bot = simd::rotate_down(bot);
      ib = rix.inc(ib);
    }
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = rix.inc(iw); }
      w2 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w2, bot);
      bot = simd::rotate_down(bot);
      ib = rix.inc(ib);
    }
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = rix.inc(iw); }
      w3 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w3, bot);
      ib = rix.inc(ib);
    }
    simd::collect_tops(w0, w1, w2, w3).storeu(a0 + x);
  }
  for (; x <= x_end; ++x) {
    int iw = ib;
    for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = rix.inc(iw); }
    const V w = f.apply(winv);
    // Reads past read_cap are never consumed (their output lanes fall
    // outside every level range); clamp to a slot that is safe to touch.
    ring[ib] = simd::shift_in_low(w, a0[std::min(x + 4 * s, read_cap)]);
    ib = rix.inc(ib);
    a0[x] = simd::top_lane(w);
  }

  // ---- flush surviving ring lanes into the parity arrays --------------------
  for (int p = x_end + 1 - R; p <= x_end + s; ++p) {
    const V& u = ring[static_cast<std::size_t>(rix.slot(p))];
    const auto put = [&](int l, int q, double v) {
      if (q >= XL[static_cast<std::size_t>(l)] &&
          q <= XR[static_cast<std::size_t>(l)])
        arr[static_cast<std::size_t>(l)][q] = v;
    };
    put(1, p + 2 * s, u[1]);
    put(2, p + s, u[2]);
    put(3, p, u[3]);
  }

  // ---- right wedges (levels ascending) ---------------------------------------
  for (int l = 1; l <= 4; ++l)
    scalar_range(l,
                 std::max(XL[static_cast<std::size_t>(l)],
                          x_end + (4 - l) * s + 1),
                 XR[static_cast<std::size_t>(l)]);
}

}  // namespace tvs::tv
