#include "dispatch/backend_variant.hpp"
#include "tiling/parallelogram.hpp"

#include <algorithm>

#include "tiling/parallelogram_impl.hpp"

namespace tvs::tiling {
namespace {

using V = simd::NativeVec<double, 4>;

void gs1d3_tiled(const stencil::C1D3& c, grid::Grid1D<double>& u,
                             long sweeps, const Parallelogram1DOptions& opt) {
  const int nx = u.nx();
  double* a = u.p();
  const int s = std::clamp(opt.stride, 2, 12);
  // Band height: multiple of 4, at least s+4 so a tile's base-row footprint
  // stays within the two band-(bt-1) tiles it depends on.
  int H = std::max(((s + 4 + 3) / 4) * 4, opt.height - opt.height % 4);
  const int W = std::max(opt.width, 4 * s + 8);

  const long t_vec = sweeps - sweeps % 4;
  const int nbt = static_cast<int>((t_vec + H - 1) / H);

  if (nbt > 0) {
    // Tile (bt, bx): band base tb = bt*H, height hb; anchor (level-1 range
    // at the band base) [1 + bx*W - tb, bx*W + W - tb].  The skew makes bx
    // negative on the left; valid bx per band:
    //   xr0 >= 1            ->  bx >= ceil((tb - W + 1)/W)
    //   xl0 - (hb-1) <= nx  ->  bx <= floor((nx - 2 + tb + hb)/W)
    const auto div_floor = [](long a_, long b_) {
      return a_ >= 0 ? a_ / b_ : -((-a_ + b_ - 1) / b_);
    };
    const auto div_ceil = [&](long a_, long b_) { return -div_floor(-a_, b_); };

    const auto band_h = [&](int bt) {
      const long tb = static_cast<long>(bt) * H;
      return static_cast<int>(std::min<long>(H, t_vec - tb));
    };
    const auto lo = [&](int bt) {
      const long tb = static_cast<long>(bt) * H;
      return static_cast<int>(div_ceil(tb - W + 1, W));
    };
    const auto hi = [&](int bt) {
      const long tb = static_cast<long>(bt) * H;
      return static_cast<int>(div_floor(nx - 2 + tb + band_h(bt), W));
    };

    // The skew moves tiles left as bt grows; take the union over bands.
    const int bx_min_all = std::min(lo(0), lo(nbt - 1));
    const int bx_max_all = std::max(hi(0), hi(nbt - 1));
    const int wmax = 2 * (nbt - 1) + (bx_max_all - bx_min_all);
    for (int w = 0; w <= wmax; ++w) {
      // Tiles on one anti-diagonal w = 2*bt + bx are >= 2W+H points apart
      // (file comment): each writes only its own sloped interval of `a`, so
      // the array is partitioned by the band index.
      const auto tile = [&](int bt, int /*slot*/) {
        const int bx = w - 2 * bt + bx_min_all;
        if (bx < lo(bt) || bx > hi(bt)) return;
        const long tb = static_cast<long>(bt) * H;
        const int hb = band_h(bt);
        const int xl0 = static_cast<int>(1 + static_cast<long>(bx) * W - tb);
        const int xr0 = xl0 + W - 1;
        for (int j = 0; j < hb / 4; ++j)
          tv::tv_gs1d_parallelogram<V>(c, a, nx, s, xl0 - 4 * j, xr0 - 4 * j,
                                       !opt.use_vector);
      };
      if (opt.exec != nullptr) {
        stage_run(opt.exec, nbt, tile);
      } else {
        // tvsrace: partitioned(bt)
#pragma omp parallel for schedule(dynamic, 1)
        for (int bt = 0; bt < nbt; ++bt) tile(bt, 0);
      }
    }
  }

  // Residual scalar sweeps.
  for (long t = t_vec; t < sweeps; ++t) {
    double west = a[0];
    for (int x = 1; x <= nx; ++x) {
      const double v = stencil::gs1d3(c.w, c.c, c.e, west, a[x], a[x + 1]);
      a[x] = v;
      west = v;
    }
  }
}

}  // namespace

TVS_BACKEND_REGISTRAR(parallelogram1d) {
  TVS_REGISTER(kParallelogramGs1D3, ParallelogramGs1D3Fn, gs1d3_tiled);
}

}  // namespace tvs::tiling
