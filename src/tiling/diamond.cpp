// Diamond-tiled 1D Jacobi engine variant — compiled once per SIMD backend.
// The Grid1D convenience wrapper and fix_boundaries live in
// tiling_dispatch.cpp (common code).
#include <algorithm>

#include "dispatch/backend_variant.hpp"
#include "tiling/diamond.hpp"
#include "tiling/diamond_impl.hpp"
#include "tv/functors1d.hpp"
#include "tv/tv1d_impl.hpp"

namespace tvs::tiling {

namespace {

using V = simd::NativeVec<double, 4>;

// Generic band-driver over parity arrays.
template <class F>
void diamond_run(const F& f, double* even, double* odd, int nx, long steps,
                 Diamond1DOptions opt) {
  constexpr int R = F::radius;
  const int s = opt.stride;
  // Sanitize: band height a positive multiple of 4; width wide enough that
  // concurrent tiles never touch each other's working set (see
  // diamond_impl.hpp) and phase-1 tiles stay non-empty at the band top.
  int H = std::max(4, opt.height - opt.height % 4);
  int W = std::max(opt.width, 2 * H * R + 4 * s + 8);
  if (W >= nx) {  // single tile column: degenerate but still correct
    W = nx;
    H = std::min(H, std::max(4, (W / (2 * R) / 4) * 4));
    W = std::max(W, 2 * H * R + 4 * s + 8);
  }

  const long t_vec = steps - steps % 4;
  long t0 = 0;
  while (t0 < t_vec) {
    const int h = static_cast<int>(std::min<long>(H, t_vec - t0));
    const int nb = (nx + W - 1) / W;
    // Phase 1: shrinking trapezoids.
    // Each phase-1 trapezoid writes only its own base interval
    // [1 + k*W, (k+1)*W] (edges shrink inward), so the parity arrays are
    // partitioned by the tile index.
    const auto phase1 = [&](int k, int /*slot*/) {
      for (int j = 0; j < h / 4; ++j) {
        const long tt = t0 + 4 * j;
        double* a0 = (tt % 2 == 0) ? even : odd;
        double* a1 = (tt % 2 == 0) ? odd : even;
        tv::tv1d_trapezoid<V>(f, a0, a1, nx, s, 1 + k * W + 4 * j * R,
                              (k + 1) * W - 4 * j * R, +R, -R,
                              !opt.use_vector);
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, nb, phase1);
    } else {
      // tvsrace: partitioned(k)
#pragma omp parallel for schedule(dynamic, 1)
      for (int k = 0; k < nb; ++k) phase1(k, 0);
    }
    // Phase 2: growing trapezoids at the seams (including the domain edges).
    // Phase-2 seam tiles grow from empty bases at the k*W seams; their
    // widest level still ends left of where tile k+1's level starts, so
    // writes stay disjoint per k.
    const auto phase2 = [&](int k, int /*slot*/) {
      for (int j = 0; j < h / 4; ++j) {
        const long tt = t0 + 4 * j;
        double* a0 = (tt % 2 == 0) ? even : odd;
        double* a1 = (tt % 2 == 0) ? odd : even;
        tv::tv1d_trapezoid<V>(f, a0, a1, nx, s, k * W + 1 - 4 * j * R,
                              k * W + 4 * j * R, -R, +R, !opt.use_vector);
      }
    };
    if (opt.exec != nullptr) {
      stage_run(opt.exec, nb + 1, phase2);
    } else {
      // tvsrace: partitioned(k)
#pragma omp parallel for schedule(dynamic, 1)
      for (int k = 0; k <= nb; ++k) phase2(k, 0);
    }
    t0 += h;
  }
  // Scalar residual steps (steps % 4) on the parity arrays.
  double win[2 * R + 1];
  for (; t0 < steps; ++t0) {
    const double* src = (t0 % 2 == 0) ? even : odd;
    double* dst = (t0 % 2 == 0) ? odd : even;
    for (int x = 1; x <= nx; ++x) {
      for (int k = 0; k <= 2 * R; ++k) win[k] = src[x - R + k];
      dst[x] = f.apply_scalar(win);
    }
  }
}

void diamond_jacobi1d3(const stencil::C1D3& c,
                       grid::PingPong<grid::Grid1D<double>>& pp, long steps,
                       const Diamond1DOptions& opt) {
  const int nx = pp.even().nx();
  const tv::J1D3F<V> f(c);
  const int s = std::min(opt.stride, 3 * tv::J1D3F<V>::radius + 5);
  Diamond1DOptions o = opt;
  o.stride = std::max(2, s);
  diamond_run(f, pp.even().p(), pp.odd().p(), nx, steps, o);
}

}  // namespace

TVS_BACKEND_REGISTRAR(diamond1d) {
  TVS_REGISTER(kDiamondJacobi1D3, DiamondJacobi1D3Fn, diamond_jacobi1d3);
}

}  // namespace tvs::tiling
