#include "bench_util/bench.hpp"

#include "util/omp_compat.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/env.hpp"

namespace tvs::bench {

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

double measure_gstencils(double points_per_call,
                         const std::function<void()>& fn, double min_seconds) {
  double best = 0.0;
  double elapsed_total = 0.0;
  int reps = 0;
  do {
    const double t0 = now_sec();
    fn();
    const double dt = now_sec() - t0;
    elapsed_total += dt;
    ++reps;
    const double rate = points_per_call / (dt > 1e-9 ? dt : 1e-9) * 1e-9;
    if (rate > best) best = rate;
  } while (elapsed_total < min_seconds || reps < 2);
  return best;
}

bool full_mode() {
  const char* e = util::env_cstr("TVS_BENCH_FULL");
  return e != nullptr && e[0] == '1';
}

std::vector<int> thread_sweep() {
  int maxt = omp_get_max_threads();
  if (const char* e = util::env_cstr("TVS_BENCH_MAXTHREADS")) {
    const int cap = std::atoi(e);
    if (cap > 0 && cap < maxt) maxt = cap;
  }
  std::vector<int> ts;
  for (int t = 1; t <= maxt; t *= 2) ts.push_back(t);
  if (ts.back() != maxt) ts.push_back(maxt);
  return ts;
}

namespace {
constexpr int kColWidth = 12;

// Right-aligned cells, but never glued together: a cell wider than the
// column still gets one separating space, so whitespace-splitting parsers
// (bench/parse_tables.py) recover the correct cell count.
void print_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i == 0 ? kColWidth : kColWidth - 1;
    std::printf(i == 0 ? "%*s" : " %*s", width, cells[i].c_str());
  }
  std::printf("\n");
}
}  // namespace

void print_title(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_header(const std::vector<std::string>& cols) {
  print_cells(cols);
  print_cells(std::vector<std::string>(cols.size(), "--------"));
}

void print_row(const std::vector<std::string>& cells) {
  print_cells(cells);
  std::fflush(stdout);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace tvs::bench
