// Minimal benchmark harness used by the figure-regeneration binaries in
// bench/: wall-clock timing, Gstencils/s (points updated per second, the
// paper's metric), and aligned table printing.
//
// Every bench binary runs with scaled-down problem sizes by default so the
// whole suite finishes in minutes; set TVS_BENCH_FULL=1 to rerun at the
// paper's sizes (Table 1).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace tvs::bench {

double now_sec();

// Calls fn() repeatedly until at least `min_seconds` have elapsed (at least
// once) and returns the best observed rate in Gstencils/s, where one call
// updates `points_per_call` grid points.
double measure_gstencils(double points_per_call,
                         const std::function<void()>& fn,
                         double min_seconds = 0.25);

// True when TVS_BENCH_FULL=1: run the paper-scale problem sizes.
bool full_mode();

// Number of threads to sweep for the parallel figures (1..hardware or the
// TVS_BENCH_MAXTHREADS cap).
std::vector<int> thread_sweep();

// ---- table printing -------------------------------------------------------
void print_title(const std::string& title);
void print_header(const std::vector<std::string>& cols);
void print_row(const std::vector<std::string>& cells);
std::string fmt(double v, int prec = 3);

}  // namespace tvs::bench
