// serve::Stats: one snapshot of every counter the serving layer touches —
// the plan cache (hits/misses/pinned), the persistent plan store
// (loads/saves/rejects), and the executor (tasks/steals/workers).  Used by
// bench/serve_throughput's stats table and by the tests that assert the
// store actually eliminated re-tuning.
#pragma once

#include <string>

#include "serve/executor.hpp"
#include "serve/plan_store.hpp"
#include "solver/plan_cache.hpp"

namespace tvs::serve {

struct Stats {
  solver::PlanCacheStats plan_cache;
  PlanStoreStats plan_store;
  ExecutorStats executor;
};

// Snapshots all three sources (each internally consistent; the triple is
// not atomic across sources).  Never instantiates the default pool.
Stats stats();

// "plan_cache hits=8 misses=2 ... executor tasks=10 steals=3 workers=4".
std::string to_string(const Stats& s);

}  // namespace tvs::serve
