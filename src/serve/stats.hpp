// serve::Stats: one snapshot of every counter the serving layer touches —
// the plan cache (hits/misses/pinned), the persistent plan store
// (loads/saves/rejects), the executor (tasks/steals/bands/placement), and
// the decomposed-run scheduler (runs/stages/tiles).  Used by
// bench/serve_throughput's stats table and by the tests that assert the
// store actually eliminated re-tuning.
#pragma once

#include <string>

#include "serve/executor.hpp"
#include "serve/plan_store.hpp"
#include "serve/sched.hpp"
#include "solver/plan_cache.hpp"

namespace tvs::serve {

struct Stats {
  solver::PlanCacheStats plan_cache;
  PlanStoreStats plan_store;
  ExecutorStats executor;
  SchedStats sched;
};

// Snapshots all four sources (each internally consistent; the tuple is
// not atomic across sources).  Never instantiates the default pool.
Stats stats();

// "plan_cache hits=8 misses=2 ... executor tasks=10 steals=3 workers=4
//  nodes=2 per_node=2,2 ... | sched runs=1 stages=12 tiles=96 helpers=33".
std::string to_string(const Stats& s);

}  // namespace tvs::serve
