#include "serve/stats.hpp"

#include <string>

namespace tvs::serve {

Stats stats() {
  Stats s;
  s.plan_cache = solver::plan_cache_stats();
  s.plan_store = plan_store_stats();
  s.executor = default_pool_stats();
  return s;
}

std::string to_string(const Stats& s) {
  std::string out = "plan_cache hits=" + std::to_string(s.plan_cache.hits) +
                    " misses=" + std::to_string(s.plan_cache.misses) +
                    " pinned=" + std::to_string(s.plan_cache.pinned);
  out += " | plan_store loads=" + std::to_string(s.plan_store.loads) +
         " saves=" + std::to_string(s.plan_store.saves) +
         " rejects=" + std::to_string(s.plan_store.rejects);
  out += " | executor tasks=" + std::to_string(s.executor.tasks_run) +
         " steals=" + std::to_string(s.executor.steals) +
         " workers=" + std::to_string(s.executor.workers);
  return out;
}

}  // namespace tvs::serve
