#include "serve/stats.hpp"

#include <cstddef>
#include <string>

namespace tvs::serve {

Stats stats() {
  Stats s;
  s.plan_cache = solver::plan_cache_stats();
  s.plan_store = plan_store_stats();
  s.executor = default_pool_stats();
  s.sched = sched_stats();
  return s;
}

std::string to_string(const Stats& s) {
  std::string out = "plan_cache hits=" + std::to_string(s.plan_cache.hits) +
                    " misses=" + std::to_string(s.plan_cache.misses) +
                    " pinned=" + std::to_string(s.plan_cache.pinned);
  out += " | plan_store loads=" + std::to_string(s.plan_store.loads) +
         " saves=" + std::to_string(s.plan_store.saves) +
         " rejects=" + std::to_string(s.plan_store.rejects);
  out += " | executor tasks=" + std::to_string(s.executor.tasks_run) +
         " steals=" + std::to_string(s.executor.steals) +
         " interactive=" + std::to_string(s.executor.interactive_run) + "/" +
         std::to_string(s.executor.interactive_submitted) +
         " workers=" + std::to_string(s.executor.workers) +
         " nodes=" + std::to_string(s.executor.nodes);
  out += " per_node=";
  for (std::size_t i = 0; i < s.executor.workers_per_node.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(s.executor.workers_per_node[i]);
  }
  out += " | sched runs=" + std::to_string(s.sched.decomposed_runs) +
         " stages=" + std::to_string(s.sched.stages) +
         " tiles=" + std::to_string(s.sched.tile_tasks) +
         " helpers=" + std::to_string(s.sched.helper_tasks);
  return out;
}

}  // namespace tvs::serve
