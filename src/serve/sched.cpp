#include "serve/sched.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string_view>

#include "serve/executor.hpp"
#include "util/env.hpp"

namespace tvs::serve {

// Per-problem scheduler state: the pool the stages fan out on, and the
// epoch counter stamping each stage in wavefront order.
struct StagePoolState {
  ThreadPool* pool = nullptr;
  std::atomic<long> epoch{0};
};

namespace {

std::atomic<long> g_decomposed_runs{0};
std::atomic<long> g_stages{0};
std::atomic<long> g_tile_tasks{0};
std::atomic<long> g_helper_tasks{0};

// Completion latch of one stage; finished flips once, under mu, when the
// last tile retires.
struct StageLatch {
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
};

// One wavefront stage in flight: a claim counter over its n tiles, the
// tile body, and the latch the orchestrator blocks on.  Shared with the
// pool helpers, which may outlive the stage — a helper arriving after the
// counter drained retires without touching anything.
struct Stage {
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  int n = 0;
  long epoch = 0;
  void (*body)(void*, int, int) = nullptr;
  void* body_ctx = nullptr;
  StageLatch latch;
};

// Claims tile indexes until the stage runs dry; the last finisher opens
// the latch.  Runs identically on the orchestrator and on pool helpers.
void drain(const std::shared_ptr<Stage>& st, int slot) {
  for (;;) {
    const int i = st->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st->n) return;
    st->body(st->body_ctx, i, slot);
    g_tile_tasks.fetch_add(1, std::memory_order_relaxed);
    // acq_rel chains every finisher's tile writes into the final
    // increment, so the orchestrator's latch acquisition below sees the
    // whole stage's work before the next stage starts.
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->n) {
      const std::lock_guard<std::mutex> lock(st->latch.mu);
      st->latch.finished = true;
      st->latch.cv.notify_all();
    }
  }
}

// StageExec::run bound to a StagePoolState: fans one stage over the pool
// and blocks until every tile completed.  Self-scheduling — the caller
// drains the claim counter inline alongside the helpers it spawned — so a
// stage finishes even when every other worker is busy with other
// problems.
void run_stage(StagePoolState& ps, int n, void (*body)(void*, int, int),
               void* body_ctx) {
  if (n <= 0) return;
  ThreadPool& pool = *ps.pool;
  auto st = std::make_shared<Stage>();
  st->n = n;
  st->epoch = ps.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  st->body = body;
  st->body_ctx = body_ctx;
  g_stages.fetch_add(1, std::memory_order_relaxed);

  // The orchestrator's workspace slot: its own worker slot when it is a
  // pool worker (then no helper can run on that worker concurrently), the
  // extra slot past the pool otherwise.
  const int self = ThreadPool::current_worker();
  const int self_slot = self >= 0 ? self : pool.workers();

  // Helpers ride the batch band: a large problem's tiles must never
  // preempt interactive submits.
  const int helpers = std::min(n - 1, pool.workers());
  for (int h = 0; h < helpers; ++h) {
    g_helper_tasks.fetch_add(1, std::memory_order_relaxed);
    pool.submit(
        [st] {
          const int w = ThreadPool::current_worker();
          drain(st, w >= 0 ? w : 0);
        },
        Band::kBatch);
  }
  drain(st, self_slot);

  std::unique_lock<std::mutex> lock(st->latch.mu);
  st->latch.cv.wait(lock, [&st] { return st->latch.finished; });
  // Stages of one problem are issued strictly in order; anything else
  // would break the wavefront dependence chain.
  assert(st->epoch == ps.epoch.load(std::memory_order_relaxed));
}

}  // namespace

SchedStats sched_stats() {
  SchedStats s;
  s.decomposed_runs = g_decomposed_runs.load(std::memory_order_relaxed);
  s.stages = g_stages.load(std::memory_order_relaxed);
  s.tile_tasks = g_tile_tasks.load(std::memory_order_relaxed);
  s.helper_tasks = g_helper_tasks.load(std::memory_order_relaxed);
  return s;
}

bool decompose_enabled() {
  static const bool enabled = [] {
    const char* env = util::env_cstr("TVS_SERVE_DECOMPOSE");
    if (env == nullptr || env[0] == '\0') return true;
    const std::string_view v(env);
    return v != "0" && v != "off";
  }();
  return enabled;
}

StagePool::StagePool(ThreadPool& pool)
    : state_(std::make_shared<StagePoolState>()) {
  state_->pool = &pool;
  g_decomposed_runs.fetch_add(1, std::memory_order_relaxed);
  exec_.ctx = state_.get();
  exec_.slots = pool.workers() + 1;
  exec_.run = [](void* ctx, int n, void (*body)(void*, int, int),
                 void* body_ctx) {
    run_stage(*static_cast<StagePoolState*>(ctx), n, body, body_ctx);
  };
}

}  // namespace tvs::serve
