#include "serve/plan_store.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "dispatch/backend.hpp"
#include "util/env.hpp"

namespace tvs::serve {

namespace {

constexpr std::string_view kFormatVersion = "tvs-plan-v1";

// TVS_PLAN_STORE, read once when the store state is first constructed.
std::string initial_dir() {
  const char* env = util::env_cstr("TVS_PLAN_STORE");
  return (env != nullptr && env[0] != '\0') ? std::string(env)
                                            : std::string();
}

// All store state — the resolved directory and the counters — lives behind
// one mutex; the store is consulted once per plan cache miss, so
// serializing the file I/O under it costs nothing.  The env read happens
// in the member initializer of the function-local static (thread-safe by
// the magic-static guarantee, so no lock is needed for the init itself).
struct StoreState {
  std::mutex mu;
  std::string dir = initial_dir();
  PlanStoreStats stats;
};

StoreState& store() {
  static StoreState s;
  return s;
}

// FNV-1a, the tree's stable non-cryptographic hash of choice for file
// names: the full key is also stored inside the entry and verified on
// load, so a collision degrades to a reject, never a wrong plan.
std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string entry_filename(const std::string& features,
                           const std::string& signature,
                           std::string_view mode) {
  const std::string key =
      features + "|" + signature + "|" + std::string(mode);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return std::string(hex) + ".plan";
}

// Disambiguates concurrent writers from different processes sharing one
// store directory (the in-process axis is a sequence counter).
long save_process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

// One "key value-to-end-of-line" line of the entry format; empty when the
// line is missing or keyed differently.
std::string read_field(std::istream& in, std::string_view key) {
  std::string line;
  if (!std::getline(in, line)) return {};
  const std::string prefix = std::string(key) + " ";
  if (line.rfind(prefix, 0) != 0) return {};
  return line.substr(prefix.size());
}

}  // namespace

std::string host_feature_string() {
  std::string features;
  for (int b = 0; b < dispatch::kBackendCount; ++b) {
    const auto backend = static_cast<dispatch::Backend>(b);
    if (!dispatch::cpu_supports(backend)) continue;
    if (!features.empty()) features += "+";
    features += std::string(dispatch::backend_name(backend));
  }
  return features;
}

bool plan_store_enabled() {
  StoreState& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  return !s.dir.empty();
}

std::optional<solver::ExecutionPlan> plan_store_lookup(
    const solver::StencilProblem& p, std::string_view mode) {
  StoreState& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.dir.empty()) return std::nullopt;

  const std::string features = host_feature_string();
  const std::string signature = p.signature();
  const std::filesystem::path path =
      std::filesystem::path(s.dir) / entry_filename(features, signature, mode);

  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;  // cold, not a reject

  // Header, key echo, and payload — any disagreement refuses the entry.
  std::string line;
  if (!std::getline(in, line) || line != kFormatVersion) {
    ++s.stats.rejects;
    return std::nullopt;
  }
  if (read_field(in, "features") != features ||
      read_field(in, "problem") != signature + "|" + std::string(mode)) {
    ++s.stats.rejects;
    return std::nullopt;
  }
  const std::string spec = read_field(in, "plan");
  if (spec.empty()) {
    ++s.stats.rejects;
    return std::nullopt;
  }
  try {
    solver::ExecutionPlan plan =
        solver::apply_plan_spec(solver::heuristic_plan(p), spec);
    solver::validate_plan(p, plan);
    ++s.stats.loads;
    return plan;
  } catch (const std::exception&) {
    // Parseable text, unusable plan (e.g. written by a build with
    // different kernel registrations) — same treatment as a bad header.
    ++s.stats.rejects;
    return std::nullopt;
  }
}

void plan_store_save(const solver::StencilProblem& p, std::string_view mode,
                     const solver::ExecutionPlan& plan) {
  StoreState& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.dir.empty()) return;

  const std::string features = host_feature_string();
  const std::string signature = p.signature();
  const std::filesystem::path dir(s.dir);
  const std::filesystem::path path =
      dir / entry_filename(features, signature, mode);
  // The temp name must be unique per writer: two processes (or two pools
  // in one process) tuning the same problem and sharing a store directory
  // would otherwise interleave writes into ONE ".tmp" file and rename a
  // torn entry into place.  pid + a process-local counter disambiguates
  // both axes; the rename target stays the single canonical entry.
  static std::atomic<unsigned long> g_tmp_seq{0};
  const unsigned long seq =
      g_tmp_seq.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path tmp = path.string() + "." +
                                    std::to_string(save_process_id()) + "." +
                                    std::to_string(seq) + ".tmp";

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;

  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return;
    out << kFormatVersion << "\n";
    out << "features " << features << "\n";
    out << "problem " << signature << "|" << mode << "\n";
    out << "plan " << plan.to_string() << "\n";
    if (!out.good()) return;
  }
  // rename is atomic within the directory: a concurrent reader sees either
  // the previous complete entry or this one, never a torn write.
  std::filesystem::rename(tmp, path, ec);
  if (ec) return;
  ++s.stats.saves;
}

PlanStoreStats plan_store_stats() {
  StoreState& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

void plan_store_set_dir(std::string dir) {
  StoreState& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.dir = std::move(dir);
  s.stats = PlanStoreStats{};
}

}  // namespace tvs::serve
