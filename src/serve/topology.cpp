#include "serve/topology.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "util/env.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace tvs::serve {

namespace {

// Parses the decimal integer at the front of `text`; returns the value and
// advances `pos` past it, or returns -1 on no digits.
int parse_int_at(std::string_view text, std::size_t& pos) {
  int value = 0;
  const char* first = text.data() + pos;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr == first || value < 0) return -1;
  pos += static_cast<std::size_t>(ptr - first);
  return value;
}

std::vector<int> all_host_cpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int n = hw > 0 ? static_cast<int>(hw) : 1;
  std::vector<int> cpus(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) cpus[static_cast<std::size_t>(i)] = i;
  return cpus;
}

}  // namespace

NumaPolicy numa_policy_from_string(std::string_view text) {
  if (text == "off") return NumaPolicy::kOff;
  if (text == "compact") return NumaPolicy::kCompact;
  return NumaPolicy::kSpread;
}

NumaPolicy numa_policy_from_env() {
  const char* env = util::env_cstr("TVS_SERVE_NUMA");
  if (env == nullptr || env[0] == '\0') return NumaPolicy::kSpread;
  return numa_policy_from_string(env);
}

std::string_view numa_policy_name(NumaPolicy policy) {
  switch (policy) {
    case NumaPolicy::kOff:
      return "off";
    case NumaPolicy::kCompact:
      return "compact";
    case NumaPolicy::kSpread:
      return "spread";
  }
  return "spread";
}

std::vector<int> parse_cpulist(std::string_view text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const char ch = text[pos];
    if (ch == ',' || ch == ' ' || ch == '\n' || ch == '\t' || ch == '\r') {
      ++pos;
      continue;
    }
    const int lo = parse_int_at(text, pos);
    if (lo < 0) break;  // malformed tail — keep what parsed cleanly
    int hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      hi = parse_int_at(text, pos);
      if (hi < lo) break;
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

int Topology::node_of_worker(int worker) const {
  const int n = nodes();
  if (!active() || n <= 1 || worker < 0) return 0;
  if (policy == NumaPolicy::kCompact) {
    // Fill nodes in cpulist order, one worker per CPU, wrapping when the
    // pool outgrows the machine.
    long total = 0;
    for (const std::vector<int>& node : cpus) {
      total += static_cast<long>(node.size());
    }
    if (total <= 0) return 0;
    long slot = worker % total;
    for (int nd = 0; nd < n; ++nd) {
      slot -= static_cast<long>(cpus[static_cast<std::size_t>(nd)].size());
      if (slot < 0) return nd;
    }
    return n - 1;
  }
  return worker % n;  // spread
}

bool Topology::pin_current_thread(int node) const {
  if (!active()) return true;
  if (node < 0 || node >= nodes() ||
      cpus[static_cast<std::size_t>(node)].empty()) {
    return false;
  }
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus[static_cast<std::size_t>(node)]) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

Topology Topology::from_sysfs(const std::string& root, NumaPolicy policy) {
  Topology t;
  t.policy = policy;

  // Collect node<N> directories by number — sysfs node ids can be sparse
  // (node0, node2 on a partially populated board), so scan rather than
  // count upward.
  std::vector<std::pair<int, std::filesystem::path>> dirs;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    std::size_t pos = 4;
    const int id = parse_int_at(name, pos);
    if (id < 0 || pos != name.size()) continue;
    if (!it->is_directory(ec)) continue;
    dirs.emplace_back(id, it->path());
  }
  std::sort(dirs.begin(), dirs.end());

  for (const auto& [id, dir] : dirs) {
    std::ifstream in(dir / "cpulist");
    std::string line;
    if (!in.is_open() || !std::getline(in, line)) continue;
    std::vector<int> cpus = parse_cpulist(line);
    if (!cpus.empty()) t.cpus.push_back(std::move(cpus));
  }

  if (t.cpus.empty()) t.cpus.push_back(all_host_cpus());
  return t;
}

Topology Topology::detect() {
  return from_sysfs("/sys/devices/system/node", numa_policy_from_env());
}

}  // namespace tvs::serve
