#include "serve/executor.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/env.hpp"

namespace tvs::serve {

namespace {

// One worker's task deque.  The owner pops from the back, thieves take
// half from the front; both sides serialize on mu (the deques are short —
// whole problems, not tiles — so a plain mutex beats a lock-free deque's
// complexity here).
struct TaskQueue {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;
};

// Sleep/wake state shared by the workers.  queued is the number of tasks
// submitted but not yet claimed — an upper bound that tells idle workers
// whether parking is safe; stop flips once, in the destructor.
struct Signal {
  std::mutex mu;
  std::condition_variable cv;
  long queued = 0;
  bool stop = false;
};

int configured_workers(int requested) {
  if (requested > 0) return requested;
  if (const char* env = util::env_cstr("TVS_SERVE_WORKERS");
      env != nullptr && env[0] != '\0') {
    int v = 0;
    const char* last = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, last, v);
    if (ec == std::errc() && ptr == last && v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::unique_ptr<TaskQueue>> queues;
  Signal sig;
  std::atomic<long> tasks_run{0};
  std::atomic<long> steals{0};
  std::atomic<unsigned> next_queue{0};
  std::vector<std::thread> threads;

  // Pops the back of the worker's own deque; empty function when dry.
  std::function<void()> take_own(std::size_t self) {
    TaskQueue& q = *queues[self];
    const std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) return {};
    std::function<void()> task = std::move(q.tasks.back());
    q.tasks.pop_back();
    return task;
  }

  // Steals ceil(half) of one victim's deque from the front: the first
  // stolen task is returned for immediate execution, the rest move to the
  // thief's own deque.
  std::function<void()> steal(std::size_t self) {
    const std::size_t n = queues.size();
    for (std::size_t off = 1; off < n; ++off) {
      TaskQueue& victim = *queues[(self + off) % n];
      std::deque<std::function<void()>> grabbed;
      {
        const std::lock_guard<std::mutex> lock(victim.mu);
        const std::size_t have = victim.tasks.size();
        if (have == 0) continue;
        const std::size_t take = (have + 1) / 2;
        for (std::size_t i = 0; i < take; ++i) {
          grabbed.push_back(std::move(victim.tasks.front()));
          victim.tasks.pop_front();
        }
      }
      steals.fetch_add(1, std::memory_order_relaxed);
      std::function<void()> task = std::move(grabbed.front());
      grabbed.pop_front();
      if (!grabbed.empty()) {
        TaskQueue& own = *queues[self];
        const std::lock_guard<std::mutex> lock(own.mu);
        for (std::function<void()>& t : grabbed) {
          own.tasks.push_back(std::move(t));
        }
      }
      return task;
    }
    return {};
  }

  void worker(std::size_t self) {
    for (;;) {
      std::function<void()> task = take_own(self);
      long claimed = task ? 1 : 0;
      if (!task) {
        task = steal(self);
        // A successful steal moved (take - 1) extra tasks into our own
        // deque; they are still claimed against sig.queued only when
        // popped, so one claim per executed task keeps the books exact.
        claimed = task ? 1 : 0;
      }
      if (task) {
        {
          const std::lock_guard<std::mutex> lock(sig.mu);
          sig.queued -= claimed;
        }
        task();
        tasks_run.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::unique_lock<std::mutex> lock(sig.mu);
      if (sig.stop && sig.queued == 0) return;
      if (sig.queued == 0) {
        // Bounded wait, not wait(): a task can sit in a deque for a short
        // window while sig.queued already counts it (the submitter signals
        // under the lock, but a worker may race the notify) — the timeout
        // backstops any such lost-wakeup interleaving.
        sig.cv.wait_for(lock, std::chrono::milliseconds(50));
      }
      // sig.queued > 0 with dry deques means another worker claimed tasks
      // it has not finished booking yet; loop and re-scan.
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(std::make_unique<Impl>()) {
  const int n = configured_workers(workers);
  impl_->queues.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->queues.push_back(std::make_unique<TaskQueue>());
  }
  impl_->threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->threads.emplace_back(
        [impl = impl_.get(), i] { impl->worker(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->sig.mu);
    impl_->sig.stop = true;
    impl_->sig.cv.notify_all();
  }
  for (std::thread& t : impl_->threads) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t i =
      impl_->next_queue.fetch_add(1, std::memory_order_relaxed) %
      impl_->queues.size();
  {
    TaskQueue& q = *impl_->queues[i];
    const std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->sig.mu);
    ++impl_->sig.queued;
    impl_->sig.cv.notify_one();
  }
}

int ThreadPool::workers() const {
  return static_cast<int>(impl_->queues.size());
}

ExecutorStats ThreadPool::stats() const {
  ExecutorStats s;
  s.tasks_run = impl_->tasks_run.load(std::memory_order_relaxed);
  s.steals = impl_->steals.load(std::memory_order_relaxed);
  s.workers = workers();
  return s;
}

namespace {

// Set once when default_pool() first constructs the singleton, so
// default_pool_stats() can answer without forcing the pool into existence.
std::atomic<ThreadPool*> g_default_pool{nullptr};

}  // namespace

ThreadPool& default_pool() {
  static ThreadPool pool(0);
  g_default_pool.store(&pool, std::memory_order_release);
  return pool;
}

ExecutorStats default_pool_stats() {
  ThreadPool* pool = g_default_pool.load(std::memory_order_acquire);
  return pool != nullptr ? pool->stats() : ExecutorStats{};
}

}  // namespace tvs::serve
