#include "serve/executor.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/topology.hpp"
#include "util/env.hpp"

namespace tvs::serve {

namespace {

// One worker's two-band task deque.  The owner pops from the back, thieves
// take half from the front; interactive tasks always go before batch ones
// on both sides.  Both sides serialize on mu (the deques are short, so a
// plain mutex beats a lock-free deque's complexity here).
struct TaskQueue {
  std::mutex mu;
  std::deque<std::function<void()>> q_hi;  // Band::kInteractive
  std::deque<std::function<void()>> q_lo;  // Band::kBatch
};

// Sleep/wake state shared by the workers.  queued is the number of tasks
// submitted but not yet claimed, parked the number of workers inside the
// cv wait; stop flips once, in the destructor.  The invariant that kills
// the lost-wakeup window: every 0 -> 1 transition of queued notifies under
// mu, and every claimer that still sees queued > 0 with parked > 0
// re-notifies — so as long as work is pending and anyone is parked, a
// wakeup is always in flight and the wait_for timeout below is a pure
// safety net.
struct Signal {
  std::mutex mu;
  std::condition_variable cv;
  long queued = 0;
  int parked = 0;
  bool stop = false;
};

// A popped/stolen task plus the band it came from (for the counters).
struct Taken {
  std::function<void()> task;
  bool interactive = false;
};

int configured_workers(int requested) {
  if (requested > 0) return requested;
  if (const char* env = util::env_cstr("TVS_SERVE_WORKERS");
      env != nullptr && env[0] != '\0') {
    int v = 0;
    const char* last = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, last, v);
    if (ec == std::errc() && ptr == last && v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::size_t configured_scratch_bytes() {
  long kb = 64;
  if (const char* env = util::env_cstr("TVS_SERVE_SCRATCH_KB");
      env != nullptr && env[0] != '\0') {
    long v = 0;
    const char* last = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, last, v);
    if (ec == std::errc() && ptr == last && v >= 0) kb = v;
  }
  return static_cast<std::size_t>(kb) * 1024;
}

thread_local int t_worker_index = -1;
thread_local std::span<unsigned char> t_scratch{};

}  // namespace

struct ThreadPool::Impl {
  Topology topo = Topology::detect();
  std::vector<std::unique_ptr<TaskQueue>> queues;
  std::vector<int> node_of;  // worker index -> home node
  Signal sig;
  std::atomic<long> tasks_run{0};
  std::atomic<long> steals{0};
  std::atomic<long> interactive_run{0};
  std::atomic<long> interactive_submitted{0};
  std::atomic<unsigned> next_queue{0};
  std::vector<std::thread> threads;

  // Pops the back of the worker's own deque, interactive band first.
  Taken take_own(std::size_t self) {
    TaskQueue& q = *queues[self];
    const std::lock_guard<std::mutex> lock(q.mu);
    if (!q.q_hi.empty()) {
      Taken t{std::move(q.q_hi.back()), true};
      q.q_hi.pop_back();
      return t;
    }
    if (!q.q_lo.empty()) {
      Taken t{std::move(q.q_lo.back()), false};
      q.q_lo.pop_back();
      return t;
    }
    return {};
  }

  // Steals ceil(half) of one victim band from the front — the interactive
  // band of any victim before any batch band, so thieves also respect
  // priority.  The first stolen task is returned for immediate execution,
  // the rest move to the same band of the thief's own deque.
  Taken steal(std::size_t self) {
    const std::size_t n = queues.size();
    for (const bool interactive : {true, false}) {
      for (std::size_t off = 1; off < n; ++off) {
        TaskQueue& victim = *queues[(self + off) % n];
        std::deque<std::function<void()>> grabbed;
        {
          const std::lock_guard<std::mutex> lock(victim.mu);
          std::deque<std::function<void()>>& src =
              interactive ? victim.q_hi : victim.q_lo;
          const std::size_t have = src.size();
          if (have == 0) continue;
          const std::size_t take = (have + 1) / 2;
          for (std::size_t i = 0; i < take; ++i) {
            grabbed.push_back(std::move(src.front()));
            src.pop_front();
          }
        }
        steals.fetch_add(1, std::memory_order_relaxed);
        Taken t{std::move(grabbed.front()), interactive};
        grabbed.pop_front();
        if (!grabbed.empty()) {
          TaskQueue& own = *queues[self];
          const std::lock_guard<std::mutex> lock(own.mu);
          std::deque<std::function<void()>>& dst =
              interactive ? own.q_hi : own.q_lo;
          for (std::function<void()>& task : grabbed) {
            dst.push_back(std::move(task));
          }
        }
        return t;
      }
    }
    return {};
  }

  void worker(std::size_t self) {
    t_worker_index = static_cast<int>(self);
    // Pin first, then allocate: the zero-fill below is the first touch, so
    // under a first-touch policy the scratch pages land on the home node.
    if (topo.active()) topo.pin_current_thread(node_of[self]);
    std::vector<unsigned char> scratch(configured_scratch_bytes(), 0);
    t_scratch = {scratch.data(), scratch.size()};

    for (;;) {
      Taken taken = take_own(self);
      if (!taken.task) {
        // A successful steal moved (take - 1) extra tasks into our own
        // deque; they are still claimed against sig.queued only when
        // popped, so one claim per executed task keeps the books exact.
        taken = steal(self);
      }
      if (taken.task) {
        {
          const std::lock_guard<std::mutex> lock(sig.mu);
          --sig.queued;
          // Cascade: we claimed one task but observe others still pending
          // with workers parked — pass the wakeup on so a notify consumed
          // by an already-waking worker can never strand queued work.
          if (sig.queued > 0 && sig.parked > 0) sig.cv.notify_one();
        }
        taken.task();
        tasks_run.fetch_add(1, std::memory_order_relaxed);
        if (taken.interactive) {
          interactive_run.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(sig.mu);
      if (sig.stop && sig.queued == 0) return;
      if (sig.queued == 0 && !sig.stop) {
        ++sig.parked;
        // The predicate makes the submit-side notify sufficient; the long
        // timeout is defense in depth against an unknown accounting bug,
        // not part of the latency story.
        sig.cv.wait_for(lock, std::chrono::seconds(5),
                        [this] { return sig.queued > 0 || sig.stop; });
        --sig.parked;
      }
      // sig.queued > 0 with dry deques means another worker claimed tasks
      // it has not finished booking yet; loop and re-scan.
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(std::make_unique<Impl>()) {
  const int n = configured_workers(workers);
  impl_->queues.reserve(static_cast<std::size_t>(n));
  impl_->node_of.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->queues.push_back(std::make_unique<TaskQueue>());
    impl_->node_of.push_back(impl_->topo.node_of_worker(i));
  }
  impl_->threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->threads.emplace_back(
        [impl = impl_.get(), i] { impl->worker(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->sig.mu);
    impl_->sig.stop = true;
    impl_->sig.cv.notify_all();
  }
  for (std::thread& t : impl_->threads) t.join();
}

void ThreadPool::submit(std::function<void()> task, Band band) {
  const std::size_t i =
      impl_->next_queue.fetch_add(1, std::memory_order_relaxed) %
      impl_->queues.size();
  if (band == Band::kInteractive) {
    impl_->interactive_submitted.fetch_add(1, std::memory_order_relaxed);
  }
  {
    TaskQueue& q = *impl_->queues[i];
    const std::lock_guard<std::mutex> lock(q.mu);
    if (band == Band::kInteractive) {
      q.q_hi.push_back(std::move(task));
    } else {
      q.q_lo.push_back(std::move(task));
    }
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->sig.mu);
    ++impl_->sig.queued;
    impl_->sig.cv.notify_one();
  }
}

int ThreadPool::workers() const {
  return static_cast<int>(impl_->queues.size());
}

int ThreadPool::current_worker() noexcept { return t_worker_index; }

std::span<unsigned char> worker_scratch() noexcept { return t_scratch; }

ExecutorStats ThreadPool::stats() const {
  ExecutorStats s;
  s.tasks_run = impl_->tasks_run.load(std::memory_order_relaxed);
  s.steals = impl_->steals.load(std::memory_order_relaxed);
  s.interactive_run = impl_->interactive_run.load(std::memory_order_relaxed);
  s.interactive_submitted =
      impl_->interactive_submitted.load(std::memory_order_relaxed);
  s.workers = workers();
  s.nodes = impl_->topo.active() ? impl_->topo.nodes() : 1;
  s.workers_per_node.assign(static_cast<std::size_t>(s.nodes), 0);
  for (const int node : impl_->node_of) {
    ++s.workers_per_node[static_cast<std::size_t>(node)];
  }
  return s;
}

namespace {

// Set once when default_pool() first constructs the singleton, so
// default_pool_stats() can answer without forcing the pool into existence.
std::atomic<ThreadPool*> g_default_pool{nullptr};

}  // namespace

ThreadPool& default_pool() {
  static ThreadPool pool(0);
  g_default_pool.store(&pool, std::memory_order_release);
  return pool;
}

ExecutorStats default_pool_stats() {
  ThreadPool* pool = g_default_pool.load(std::memory_order_acquire);
  return pool != nullptr ? pool->stats() : ExecutorStats{};
}

}  // namespace tvs::serve
