// The serving executor: a work-stealing thread pool sized for many small
// independent problems.
//
// Each worker owns a two-band deque (interactive over batch); submit()
// distributes tasks round-robin across the deques, an owner pops from the
// back of its own — always draining the interactive band first — and a
// worker that runs dry steals HALF of a victim's fuller band from the
// front (one steal amortizes over several tasks, so a burst submitted to
// one queue spreads across the pool in O(log n) steals).  Idle workers
// park on a condition variable whose queued/parked accounting makes the
// submit-side notify sufficient — the remaining wait_for timeout is a long
// safety net, not a latency backstop — so an idle-pool submit starts
// running in microseconds, not poll periods.
//
// Workers pin to NUMA nodes under serve::Topology (TVS_SERVE_NUMA) and
// first-touch a per-worker scratch arena on their home node; the tiled
// drivers' ring workspaces are allocated lazily on the executing worker,
// so decomposed tile tasks place their working sets the same way.
//
// Destruction drains: every task submitted before ~ThreadPool() runs to
// completion before the workers join.  Tasks must not throw — the serving
// layer (Solver::submit / Batch) routes exceptions through the returned
// Future, so the closures it enqueues never do.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace tvs::serve {

// Scheduling band of a submitted task.  kInteractive tasks run before any
// kBatch task a worker could otherwise pick, both on the owner's pop and
// on a thief's steal, so small latency-sensitive problems are not starved
// behind large batch jobs (the decomposed tile helpers of large problems
// always ride the batch band).
enum class Band { kBatch = 0, kInteractive = 1 };

// Snapshot of the executor's lifetime counters (serve::stats()).
struct ExecutorStats {
  long tasks_run = 0;  // closures executed to completion
  long steals = 0;     // steal-half operations that took at least one task
  long interactive_run = 0;  // closures executed from the interactive band
  long interactive_submitted = 0;  // submits admitted to the interactive band
  int workers = 0;     // pool size (0 when no pool exists yet)
  int nodes = 0;       // NUMA nodes the workers are placed across
  std::vector<int> workers_per_node;  // placement under the NUMA policy
};

class ThreadPool {
 public:
  // workers = 0 sizes from TVS_SERVE_WORKERS, else the hardware
  // concurrency (min 1).
  explicit ThreadPool(int workers = 0);
  // Drains the queues (all submitted tasks run), then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs on some worker, FIFO per queue and band but
  // unordered across the pool.  The task must not throw.
  void submit(std::function<void()> task, Band band = Band::kBatch);

  int workers() const;
  ExecutorStats stats() const;

  // Index of the calling pool worker in [0, workers), or -1 when the
  // caller is not a pool worker.  Thread-local: a thread belongs to at
  // most one pool.
  static int current_worker() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The calling worker's NUMA-local scratch arena (first-touched on its home
// node at startup; TVS_SERVE_SCRATCH_KB sizes it, default 64).  Empty on
// non-pool threads.
std::span<unsigned char> worker_scratch() noexcept;

// The process-wide pool Solver::submit and Batch use, created on first
// touch (sized by TVS_SERVE_WORKERS / hardware concurrency).
ThreadPool& default_pool();

// Stats of the default pool WITHOUT creating it: all-zero until the first
// default_pool() call.  (serve::stats() must not spin up workers just to
// report that none exist.)
ExecutorStats default_pool_stats();

}  // namespace tvs::serve
