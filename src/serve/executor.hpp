// The serving executor: a work-stealing thread pool sized for many small
// independent problems.
//
// Each worker owns a deque; submit() distributes tasks round-robin across
// the deques, an owner pops from the back of its own, and a worker that
// runs dry steals HALF of a victim's queue from the front (one steal
// amortizes over several tasks, so a burst submitted to one queue spreads
// across the pool in O(log n) steals).  Idle workers park on a condition
// variable with a bounded backoff, so an empty pool costs no CPU.
//
// Destruction drains: every task submitted before ~ThreadPool() runs to
// completion before the workers join.  Tasks must not throw — the serving
// layer (Solver::submit / Batch) routes exceptions through the returned
// Future, so the closures it enqueues never do.
#pragma once

#include <functional>
#include <memory>

namespace tvs::serve {

// Snapshot of the executor's lifetime counters (serve::stats()).
struct ExecutorStats {
  long tasks_run = 0;  // closures executed to completion
  long steals = 0;     // steal-half operations that took at least one task
  int workers = 0;     // pool size (0 when no pool exists yet)
};

class ThreadPool {
 public:
  // workers = 0 sizes from TVS_SERVE_WORKERS, else the hardware
  // concurrency (min 1).
  explicit ThreadPool(int workers = 0);
  // Drains the queues (all submitted tasks run), then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs on some worker, FIFO per queue but unordered
  // across the pool.  The task must not throw.
  void submit(std::function<void()> task);

  int workers() const;
  ExecutorStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The process-wide pool Solver::submit and Batch use, created on first
// touch (sized by TVS_SERVE_WORKERS / hardware concurrency).
ThreadPool& default_pool();

// Stats of the default pool WITHOUT creating it: all-zero until the first
// default_pool() call.  (serve::stats() must not spin up workers just to
// report that none exist.)
ExecutorStats default_pool_stats();

}  // namespace tvs::serve
