// NUMA topology for the serving executor.
//
// Parsed once from /sys/devices/system/node (Linux); every other platform
// and every parse failure degrades to a single node holding all CPUs, in
// which case pinning is a no-op.  The policy comes from TVS_SERVE_NUMA:
//
//   off      ignore the topology entirely (no pinning)
//   compact  fill node 0's CPUs before spilling to node 1, ...
//   spread   round-robin workers across nodes (the default)
//
// Workers pin to their node's CPU set at startup and then first-touch
// their scratch and (lazily, inside the tiled drivers) their ring
// workspaces, so under a first-touch allocation policy the wavefront
// working sets land on the socket whose threads sweep them — the placement
// half of Wittmann/Hager/Wellein-style multicore-aware temporal blocking.
//
// No OpenMP anywhere in this layer: the serving pool is plain
// std::thread, and topology detection must work in the no-OpenMP build.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tvs::serve {

enum class NumaPolicy { kOff, kCompact, kSpread };

// "off" / "compact" / "spread"; anything else falls back to spread (the
// default when TVS_SERVE_NUMA is unset).
NumaPolicy numa_policy_from_string(std::string_view text);
NumaPolicy numa_policy_from_env();
std::string_view numa_policy_name(NumaPolicy policy);

// Parses a sysfs cpulist ("0-3,8,10-11") into sorted CPU ids; malformed
// tokens are skipped, never fatal.
std::vector<int> parse_cpulist(std::string_view text);

struct Topology {
  NumaPolicy policy = NumaPolicy::kOff;
  // cpus[n] = CPU ids of node n; always at least one node (the fallback
  // node holds every CPU the host advertises).
  std::vector<std::vector<int>> cpus;

  int nodes() const { return static_cast<int>(cpus.size()); }
  // Pinning only does anything on a multi-node host with the policy on.
  bool active() const { return policy != NumaPolicy::kOff && nodes() > 1; }

  // Home node of pool worker `worker` under the policy; 0 when inactive.
  int node_of_worker(int worker) const;

  // Pins the calling thread to its node's CPU set.  Returns true on
  // success or no-op (inactive topology); false when the affinity call
  // failed — callers treat that as advisory, never fatal.
  bool pin_current_thread(int node) const;

  // Reads node<N>/cpulist files under `root`; falls back to one node with
  // all CPUs when the directory is missing or yields nothing usable.
  static Topology from_sysfs(const std::string& root, NumaPolicy policy);
  // from_sysfs("/sys/devices/system/node", numa_policy_from_env()).
  static Topology detect();
};

}  // namespace tvs::serve
