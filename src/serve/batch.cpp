#include "serve/batch.hpp"

#include <future>
#include <memory>
#include <utility>

#include "serve/sched.hpp"

namespace tvs::serve {

solver::Future<solver::RunResult> submit_on(ThreadPool& pool,
                                            solver::Solver s,
                                            solver::Workload w) {
  // Admission: interactive workloads (and any workload with a deadline)
  // go to the interactive band, drained before batch work on both pop
  // and steal.  A hint only — results never depend on it.
  const Band band = (w.priority() == solver::Priority::kInteractive ||
                     w.deadline_micros() > 0)
                        ? Band::kInteractive
                        : Band::kBatch;
  // A tiled-parallel plan is decomposed into per-tile tasks on the shared
  // pool (serve/sched.hpp) so one large problem does not monopolize a
  // single worker; each wavefront stage still completes before the next
  // starts, so the results stay bit-identical to the synchronous run.
  const bool decompose =
      decompose_enabled() && s.plan().path == solver::Path::kTiledParallel;
  // shared_ptr, not move-capture: std::function requires copyable
  // closures, and the promise itself is move-only.
  auto promise = std::make_shared<std::promise<solver::RunResult>>();
  solver::Future<solver::RunResult> future = promise->get_future();
  pool.submit(
      [s = std::move(s), w = std::move(w), promise, &pool, decompose] {
        try {
          if (decompose) {
            const StagePool sp(pool);
            promise->set_value(s.with_stage_exec(sp.exec()).run(w));
          } else {
            promise->set_value(s.run(w));
          }
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
      },
      band);
  return future;
}

void Batch::add(const solver::StencilProblem& p, solver::Workload w,
                solver::PlanMode mode) {
  solver::Solver s(p, mode);  // plans through the cache (+ plan store)
  solver::validate_workload(p, w);  // fail at add(), not inside a future
  items_.push_back(Item{std::move(s), std::move(w)});
}

std::vector<solver::Future<solver::RunResult>> Batch::submit() {
  ThreadPool& pool = pool_ != nullptr ? *pool_ : default_pool();
  std::vector<solver::Future<solver::RunResult>> futures;
  futures.reserve(items_.size());
  for (Item& item : items_) {
    futures.push_back(
        submit_on(pool, std::move(item.solver), std::move(item.workload)));
  }
  items_.clear();
  return futures;
}

std::vector<solver::RunResult> Batch::run() {
  std::vector<solver::Future<solver::RunResult>> futures = submit();
  std::vector<solver::RunResult> results;
  results.reserve(futures.size());
  for (solver::Future<solver::RunResult>& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

}  // namespace tvs::serve
