#include "serve/batch.hpp"

#include <future>
#include <memory>
#include <utility>

namespace tvs::serve {

solver::Future<solver::RunResult> submit_on(ThreadPool& pool,
                                            solver::Solver s,
                                            solver::Workload w) {
  // shared_ptr, not move-capture: std::function requires copyable
  // closures, and the promise itself is move-only.
  auto promise = std::make_shared<std::promise<solver::RunResult>>();
  solver::Future<solver::RunResult> future = promise->get_future();
  pool.submit([s = std::move(s), w = std::move(w), promise] {
    try {
      promise->set_value(s.run(w));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

void Batch::add(const solver::StencilProblem& p, solver::Workload w,
                solver::PlanMode mode) {
  solver::Solver s(p, mode);  // plans through the cache (+ plan store)
  solver::validate_workload(p, w);  // fail at add(), not inside a future
  items_.push_back(Item{std::move(s), std::move(w)});
}

std::vector<solver::Future<solver::RunResult>> Batch::submit() {
  ThreadPool& pool = pool_ != nullptr ? *pool_ : default_pool();
  std::vector<solver::Future<solver::RunResult>> futures;
  futures.reserve(items_.size());
  for (Item& item : items_) {
    futures.push_back(
        submit_on(pool, std::move(item.solver), std::move(item.workload)));
  }
  items_.clear();
  return futures;
}

std::vector<solver::RunResult> Batch::run() {
  std::vector<solver::Future<solver::RunResult>> futures = submit();
  std::vector<solver::RunResult> results;
  results.reserve(futures.size());
  for (solver::Future<solver::RunResult>& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

}  // namespace tvs::serve
