// Batch: many problems, one planning pass, whole problems fanned across
// the serving executor.
//
//   serve::Batch batch;
//   for (auto& [p, grid] : work)
//     batch.add(p, solver::Workload(coeffs, grid));
//   for (solver::RunResult& r : batch.run()) ...
//
// add() plans immediately on the calling thread through the process-wide
// plan cache, so N problems with the same signature plan once (and, in
// tuned mode, warm-start from the TVS_PLAN_STORE directory when an entry
// exists).  submit()/run() then enqueue each problem as one task — the
// serving layer schedules whole small problems across workers and never
// splits one problem; intra-problem parallelism stays the ExecutionPlan's
// business (the tiled path), exactly as in the synchronous API.  Results
// are bit-identical to calling Solver::run per problem.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/executor.hpp"
#include "solver/solver.hpp"

namespace tvs::serve {

// Enqueues one validated workload on `pool`; the shared funnel behind
// Solver::submit and Batch.  The run's exception, if any, arrives through
// the Future.
solver::Future<solver::RunResult> submit_on(ThreadPool& pool,
                                            solver::Solver s,
                                            solver::Workload w);

class Batch {
 public:
  // pool = nullptr uses default_pool() (resolved at submit time, so an
  // empty Batch never spins up workers).
  explicit Batch(ThreadPool* pool = nullptr) : pool_(pool) {}

  // Plans p now (cache-amortized) and validates w against it; throws
  // solver::Error on a payload the problem cannot run, before anything is
  // enqueued.  The workload's grid/span storage must outlive the futures.
  void add(const solver::StencilProblem& p, solver::Workload w,
           solver::PlanMode mode = solver::PlanMode::kAuto);

  std::size_t size() const { return items_.size(); }

  // Enqueues every added problem; one future per add(), in add() order.
  // The batch is emptied and can be refilled.
  std::vector<solver::Future<solver::RunResult>> submit();

  // submit() + wait: results in add() order; rethrows the first failure.
  std::vector<solver::RunResult> run();

 private:
  struct Item {
    solver::Solver solver;
    solver::Workload workload;
  };

  ThreadPool* pool_;
  std::vector<Item> items_;
};

}  // namespace tvs::serve
