// Persistent tuned-plan store: TVS_PLAN_STORE=<dir> makes measured
// auto-tune results outlive the process.
//
// Each entry is one small text file keyed by (host feature string, problem
// signature, plan mode), serialized through the ExecutionPlan
// to_string()/apply_plan_spec round-trip the TVS_PLAN pin already
// exercises.  plan_for() consults the store only on a tuned-mode cache
// miss — a hit skips the tuner entirely (a warm start), a miss tunes and
// saves.  Heuristic plans are never stored: they are free to recompute and
// pinning them would mask heuristic improvements across versions.
//
// Entries are rejected (never adopted) when the format version, the host
// feature string, or the problem signature disagrees with the requester —
// a store directory carried to a different CPU silently degrades to cold
// tuning instead of executing a plan this host cannot run.  Writes go to a
// temp file in the same directory followed by std::rename, so concurrent
// writers and crashed processes never leave a torn entry.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "solver/plan.hpp"
#include "solver/problem.hpp"

namespace tvs::serve {

struct PlanStoreStats {
  long loads = 0;    // entries adopted from disk (tuner runs avoided)
  long saves = 0;    // entries written
  long rejects = 0;  // unreadable / version / feature / signature mismatch
};

// True when a store directory is configured (TVS_PLAN_STORE or
// plan_store_set_dir); lookups and saves are no-ops otherwise.
bool plan_store_enabled();

// The stored plan for (p, mode) when present, readable, and valid for this
// host and problem; nullopt otherwise (counting a reject if an entry
// existed but was refused).  mode is the plan-cache key suffix ("tuned").
std::optional<solver::ExecutionPlan> plan_store_lookup(
    const solver::StencilProblem& p, std::string_view mode);

// Persists the plan for (p, mode); creates the store directory on first
// save.  I/O failures are swallowed (the store is an accelerator, not a
// durability contract) — a failed save simply re-tunes next process.
void plan_store_save(const solver::StencilProblem& p, std::string_view mode,
                     const solver::ExecutionPlan& plan);

PlanStoreStats plan_store_stats();

// Test hook: points the store at `dir` ("" disables) and zeroes the
// counters, overriding TVS_PLAN_STORE for the rest of the process.
void plan_store_set_dir(std::string dir);

// "scalar+avx2+avx512"-style description of what this CPU can execute;
// part of every entry's key and rejected on mismatch.
std::string host_feature_string();

}  // namespace tvs::serve
