// Cross-problem tile scheduling for the serving layer.
//
// A submitted problem whose plan chose the tiled-parallel path would, run
// as one closure, monopolize a single pool worker while the others idle —
// the opposite of what the work-stealing pool is for.  StagePool adapts
// the pool to the tiled drivers' StageExec hook (tiling/stage_exec.hpp):
// each wavefront stage of the tiled run fans out as per-tile tasks on the
// SHARED pool, so several large problems interleave their tiles across all
// workers and small interactive problems slot in between stages.
//
// Dependence order: the tiled drivers only hand a stage to the executor
// when everything it depends on has completed (the stage decomposition IS
// the wavefront order), and StagePool runs stages strictly one at a time —
// a per-problem epoch counter stamps each stage and stale helpers
// observing an older epoch retire without touching tiles.  Within a stage
// every tile is independent, so any interleaving across workers yields
// bit-identical results to the synchronous omp run of the same driver.
//
// Deadlock-free by self-scheduling: the orchestrating thread (the pool
// worker running the submitted problem) drains its own stage's tile
// counter inline alongside the helper tasks it spawned, so a stage always
// completes even when every other worker is busy; helpers arriving late
// find the counter exhausted and exit.  Helpers ride the batch band —
// tiles of large jobs must never preempt interactive submits.
#pragma once

#include <memory>

#include "tiling/stage_exec.hpp"

namespace tvs::serve {

class ThreadPool;
struct StagePoolState;

// Lifetime counters of the decomposed-run scheduler (serve::stats()).
struct SchedStats {
  long decomposed_runs = 0;  // problems served via tile decomposition
  long stages = 0;           // wavefront stages (barriers) executed
  long tile_tasks = 0;       // stage bodies (tiles) run through the pool
  long helper_tasks = 0;     // pool helper closures spawned for stages
};

SchedStats sched_stats();

// TVS_SERVE_DECOMPOSE gate (default on; "0"/"off" disable): whether
// submit() decomposes tiled-path plans into per-tile pool tasks.
bool decompose_enabled();

// One problem's stage executor, bound to a pool for the duration of a
// decomposed run.  Construct next to the Solver::run call and pass exec()
// via Solver::with_stage_exec; the referenced pool must outlive the run.
class StagePool {
 public:
  explicit StagePool(ThreadPool& pool);
  StagePool(const StagePool&) = delete;
  StagePool& operator=(const StagePool&) = delete;

  const tiling::StageExec* exec() const { return &exec_; }

 private:
  std::shared_ptr<StagePoolState> state_;
  tiling::StageExec exec_;
};

}  // namespace tvs::serve
