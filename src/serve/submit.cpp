// Solver::submit lives in serve/ (not solver.cpp) so the solver's core
// translation unit never depends on the executor; linking the serving
// layer is what activates the async half of the unified API.
#include "serve/batch.hpp"
#include "serve/executor.hpp"
#include "solver/solver.hpp"

namespace tvs::solver {

Future<RunResult> Solver::submit(Workload w) const {
  // Validate on the submitting thread: misuse (wrong payload for the
  // family, extent mismatch) is a programming error that should surface
  // at the call site, not be deferred into the future.
  validate_workload(prob_, w);
  return serve::submit_on(serve::default_pool(), *this, std::move(w));
}

}  // namespace tvs::solver
