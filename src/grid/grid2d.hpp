// Two-dimensional grid: rows x = 0..NX+1, columns y = 0..NY+1 (interior
// 1..NX x 1..NY), row-major with the y (unit-stride) dimension padded for
// aligned vector access and overrun-safe grouped loads/stores.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>
#include <type_traits>

#include "grid/aligned.hpp"
#include "grid/grid1d.hpp"  // kPad

namespace tvs::grid {

template <class T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int nx, int ny)
      : nx_(nx),
        ny_(ny),
        stride_(round_up(ny + 2 + 2 * kPad)),
        buf_(static_cast<std::size_t>(nx + 2) * static_cast<std::size_t>(stride_)) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::ptrdiff_t stride() const { return stride_; }

  // Linear offset of (x, y) from the buffer base.  All offset arithmetic is
  // std::ptrdiff_t: with `int` math a grid of nx * ny >= 2^31 elements
  // (e.g. 46341 x 46341 doubles) would overflow and index garbage.
  static std::ptrdiff_t linear_offset(int x, int y, std::ptrdiff_t stride) {
    return static_cast<std::ptrdiff_t>(x) * stride + y +
           static_cast<std::ptrdiff_t>(kPad);
  }
  std::ptrdiff_t offset(int x, int y) const {
    return linear_offset(x, y, stride_);
  }

  // Valid: x in [0, nx+1], y in [-kPad, ny+1+kPad].
  T& at(int x, int y) { return buf_[idx(x, y)]; }
  const T& at(int x, int y) const { return buf_[idx(x, y)]; }

  // Pointer to (x, 0) — the row's left boundary cell.
  T* row(int x) { return buf_.data() + idx(x, 0); }
  const T* row(int x) const { return buf_.data() + idx(x, 0); }

  template <class Rng>
  void fill_random(Rng& rng, T lo, T hi) {
    if constexpr (std::is_floating_point_v<T>) {
      std::uniform_real_distribution<T> d(lo, hi);
      for (int x = 0; x <= nx_ + 1; ++x)
        for (int y = 0; y <= ny_ + 1; ++y) at(x, y) = d(rng);
    } else {
      std::uniform_int_distribution<T> d(lo, hi);
      for (int x = 0; x <= nx_ + 1; ++x)
        for (int y = 0; y <= ny_ + 1; ++y) at(x, y) = d(rng);
    }
  }

  void fill(T v) {
    for (int x = 0; x <= nx_ + 1; ++x)
      for (int y = 0; y <= ny_ + 1; ++y) at(x, y) = v;
  }

 private:
  static std::ptrdiff_t round_up(int n) {
    constexpr std::ptrdiff_t q =
        static_cast<std::ptrdiff_t>(kAlignment / sizeof(T));
    return (n + q - 1) / q * q;
  }
  std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(offset(x, y));
  }

  int nx_ = 0;
  int ny_ = 0;
  std::ptrdiff_t stride_ = 0;
  AlignedBuffer<T> buf_;
};

template <class T>
double max_abs_diff(const Grid2D<T>& a, const Grid2D<T>& b) {
  double m = 0;
  for (int x = 0; x <= a.nx() + 1; ++x)
    for (int y = 0; y <= a.ny() + 1; ++y)
      m = std::max(m, std::abs(static_cast<double>(a.at(x, y)) -
                               static_cast<double>(b.at(x, y))));
  return m;
}

}  // namespace tvs::grid
