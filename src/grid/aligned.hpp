// 64-byte-aligned, value-initialized heap buffer (RAII).
//
// Every grid in the library over-aligns its storage so vector loads/stores
// never split cache lines, and pads both ends so the kernels' grouped
// bottom-vector loads may harmlessly read a few elements past the logical
// domain (see grid1d.hpp).
#pragma once

#include <cstddef>
#include <memory>
#include <new>

namespace tvs::grid {

inline constexpr std::size_t kAlignment = 64;

template <class T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n)
      : n_(n),
        p_(static_cast<T*>(::operator new[](
               n * sizeof(T), std::align_val_t{kAlignment}))) {
    for (std::size_t i = 0; i < n_; ++i) new (p_ + i) T{};
  }
  ~AlignedBuffer() { reset(); }

  AlignedBuffer(AlignedBuffer&& o) noexcept : n_(o.n_), p_(o.p_) {
    o.p_ = nullptr;
    o.n_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      n_ = o.n_;
      p_ = o.p_;
      o.p_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  T* data() { return p_; }
  const T* data() const { return p_; }
  std::size_t size() const { return n_; }
  T& operator[](std::size_t i) { return p_[i]; }
  const T& operator[](std::size_t i) const { return p_[i]; }

 private:
  void reset() {
    if (p_ != nullptr) {
      ::operator delete[](p_, std::align_val_t{kAlignment});
      p_ = nullptr;
    }
  }
  std::size_t n_ = 0;
  T* p_ = nullptr;
};

}  // namespace tvs::grid
