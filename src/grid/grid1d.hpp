// One-dimensional grid with boundary cells and vector-overrun padding.
//
// Index convention (the paper's): interior points are x = 1..NX; x = 0 and
// x = NX+1 are Dirichlet boundary cells that the kernels read but never
// write.  `kPad` extra elements sit beyond both boundary cells so grouped
// bottom-vector loads (up to vl-1 elements past the last consumed index) and
// top-vector stores stay inside the allocation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>

#include "grid/aligned.hpp"

namespace tvs::grid {

inline constexpr int kPad = 16;

template <class T>
class Grid1D {
 public:
  Grid1D() = default;
  explicit Grid1D(int nx) : nx_(nx), buf_(static_cast<std::size_t>(nx + 2 + 2 * kPad)) {}

  int nx() const { return nx_; }

  // Linear offset of x from the buffer base, in std::ptrdiff_t so the math
  // cannot overflow `int` on large grids (the 2D/3D grids share this rule).
  static std::ptrdiff_t linear_offset(int x) {
    return static_cast<std::ptrdiff_t>(x) + kPad;
  }
  std::ptrdiff_t offset(int x) const { return linear_offset(x); }

  // Valid x range: [-kPad, nx()+1+kPad].
  T& at(int x) { return buf_[static_cast<std::size_t>(linear_offset(x))]; }
  const T& at(int x) const {
    return buf_[static_cast<std::size_t>(linear_offset(x))];
  }

  // Raw pointer anchored at x = 0 (the left boundary cell).
  T* p() { return buf_.data() + kPad; }
  const T* p() const { return buf_.data() + kPad; }

  // Interior + boundary, i.e. x = 0..nx()+1.
  int extent() const { return nx_ + 2; }

  template <class Rng>
  void fill_random(Rng& rng, T lo, T hi) {
    if constexpr (std::is_floating_point_v<T>) {
      std::uniform_real_distribution<T> d(lo, hi);
      for (int x = 0; x <= nx_ + 1; ++x) at(x) = d(rng);
    } else {
      std::uniform_int_distribution<T> d(lo, hi);
      for (int x = 0; x <= nx_ + 1; ++x) at(x) = d(rng);
    }
  }

  void fill(T v) {
    for (int x = 0; x <= nx_ + 1; ++x) at(x) = v;
  }

 private:
  int nx_ = 0;
  AlignedBuffer<T> buf_;
};

template <class T>
double max_abs_diff(const Grid1D<T>& a, const Grid1D<T>& b) {
  double m = 0;
  for (int x = 0; x <= a.nx() + 1; ++x)
    m = std::max(m, std::abs(static_cast<double>(a.at(x)) - static_cast<double>(b.at(x))));
  return m;
}

}  // namespace tvs::grid
