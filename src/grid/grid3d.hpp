// Three-dimensional grid: x = 0..NX+1 (outermost), y = 0..NY+1,
// z = 0..NZ+1 (unit stride), interior 1..N* in every dimension.  The z
// dimension is padded exactly like Grid2D's y.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>
#include <type_traits>

#include "grid/aligned.hpp"
#include "grid/grid1d.hpp"  // kPad

namespace tvs::grid {

template <class T>
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(int nx, int ny, int nz)
      : nx_(nx),
        ny_(ny),
        nz_(nz),
        zstride_(round_up(nz + 2 + 2 * kPad)),
        ystride_(static_cast<std::ptrdiff_t>(ny + 2) * zstride_),
        buf_(static_cast<std::size_t>(nx + 2) * static_cast<std::size_t>(ystride_)) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::ptrdiff_t zstride() const { return zstride_; }

  // Linear offset of (x, y, z) from the buffer base, in std::ptrdiff_t so
  // grids beyond 2^31 elements index correctly (see grid2d.hpp).
  static std::ptrdiff_t linear_offset(int x, int y, int z,
                                      std::ptrdiff_t ystride,
                                      std::ptrdiff_t zstride) {
    return static_cast<std::ptrdiff_t>(x) * ystride +
           static_cast<std::ptrdiff_t>(y) * zstride + z +
           static_cast<std::ptrdiff_t>(kPad);
  }
  std::ptrdiff_t offset(int x, int y, int z) const {
    return linear_offset(x, y, z, ystride_, zstride_);
  }

  // Valid: x in [0, nx+1], y in [0, ny+1], z in [-kPad, nz+1+kPad].
  T& at(int x, int y, int z) { return buf_[idx(x, y, z)]; }
  const T& at(int x, int y, int z) const { return buf_[idx(x, y, z)]; }

  // Pointer to (x, y, 0).
  T* line(int x, int y) { return buf_.data() + idx(x, y, 0); }
  const T* line(int x, int y) const { return buf_.data() + idx(x, y, 0); }

  template <class Rng>
  void fill_random(Rng& rng, T lo, T hi) {
    std::uniform_real_distribution<double> d(static_cast<double>(lo),
                                             static_cast<double>(hi));
    for (int x = 0; x <= nx_ + 1; ++x)
      for (int y = 0; y <= ny_ + 1; ++y)
        for (int z = 0; z <= nz_ + 1; ++z) at(x, y, z) = static_cast<T>(d(rng));
  }

  void fill(T v) {
    for (int x = 0; x <= nx_ + 1; ++x)
      for (int y = 0; y <= ny_ + 1; ++y)
        for (int z = 0; z <= nz_ + 1; ++z) at(x, y, z) = v;
  }

 private:
  static std::ptrdiff_t round_up(int n) {
    constexpr std::ptrdiff_t q =
        static_cast<std::ptrdiff_t>(kAlignment / sizeof(T));
    return (n + q - 1) / q * q;
  }
  std::size_t idx(int x, int y, int z) const {
    return static_cast<std::size_t>(offset(x, y, z));
  }

  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::ptrdiff_t zstride_ = 0, ystride_ = 0;
  AlignedBuffer<T> buf_;
};

template <class T>
double max_abs_diff(const Grid3D<T>& a, const Grid3D<T>& b) {
  double m = 0;
  for (int x = 0; x <= a.nx() + 1; ++x)
    for (int y = 0; y <= a.ny() + 1; ++y)
      for (int z = 0; z <= a.nz() + 1; ++z)
        m = std::max(m, std::abs(static_cast<double>(a.at(x, y, z)) -
                                 static_cast<double>(b.at(x, y, z))));
  return m;
}

}  // namespace tvs::grid
