// Ping-pong pair of grids for time-stepped Jacobi updates: `cur()` holds
// time step t, `next()` receives t+1, `swap()` advances.  The tiled kernels
// address the pair by time parity instead (`by_parity(t)`), which is the
// storage discipline that makes diamond tiling with in-register
// intermediates correct (see tiling/diamond.hpp).
#pragma once

#include <utility>

namespace tvs::grid {

template <class GridT>
class PingPong {
 public:
  PingPong() = default;
  template <class... Args>
  explicit PingPong(Args&&... args) : a_(args...), b_(args...) {}

  GridT& cur() { return flipped_ ? b_ : a_; }
  GridT& next() { return flipped_ ? a_ : b_; }
  const GridT& cur() const { return flipped_ ? b_ : a_; }
  void swap() { flipped_ = !flipped_; }

  // Array holding values whose time coordinate has parity (t % 2).
  GridT& by_parity(long t) { return (t % 2 == 0) ? a_ : b_; }
  const GridT& by_parity(long t) const { return (t % 2 == 0) ? a_ : b_; }

  GridT& even() { return a_; }
  GridT& odd() { return b_; }

 private:
  GridT a_, b_;
  bool flipped_ = false;
};

}  // namespace tvs::grid
