// Scalar reference engines, 3D (oracle + `scalar` benchmark curves).
#pragma once

#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::stencil {

void jacobi3d7_step(const C3D7& c, const grid::Grid3D<double>& in,
                    grid::Grid3D<double>& out);
void jacobi3d7_run(const C3D7& c, grid::Grid3D<double>& u, long steps);

// In-place ascending (x, y, z) Gauss-Seidel sweeps.
void gs3d7_sweep(const C3D7& c, grid::Grid3D<double>& u);
void gs3d7_run(const C3D7& c, grid::Grid3D<double>& u, long sweeps);

}  // namespace tvs::stencil
