// Scalar reference engines, 3D (oracle + `scalar` benchmark curves).
// Templated on the element type; instantiated for double and float in
// reference3d.cpp (see reference1d.hpp for the contract).
#pragma once

#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::stencil {

template <class T>
void jacobi3d7_step(const C3D7T<T>& c, const grid::Grid3D<T>& in,
                    grid::Grid3D<T>& out);
template <class T>
void jacobi3d7_run(const C3D7T<T>& c, grid::Grid3D<T>& u, long steps);

// In-place ascending (x, y, z) Gauss-Seidel sweeps.
template <class T>
void gs3d7_sweep(const C3D7T<T>& c, grid::Grid3D<T>& u);
template <class T>
void gs3d7_run(const C3D7T<T>& c, grid::Grid3D<T>& u, long sweeps);

}  // namespace tvs::stencil
