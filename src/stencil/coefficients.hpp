// Coefficient descriptors for the stencils evaluated in the paper
// (§3.4: Heat-1D/2D/3D, 2D9P box, Life, Gauss-Seidel 1D/2D/3D, LCS).
//
// Naming of neighbours: within the unit-stride dimension `w`/`e` (west/east
// = index-1/index+1); the next dimension uses `s`/`n` (south/north) and the
// outermost 3D dimension `b`/`f` (back/front).  For 1D, `w`/`e` are x-1/x+1;
// for 2D, `w`/`e` are y±1 and `s`/`n` are x±1; for 3D, `w`/`e` are z±1,
// `s`/`n` are y±1 and `b`/`f` are x±1.
#pragma once

namespace tvs::stencil {

// a'[x] = w*a[x-1] + c*a[x] + e*a[x+1]
struct C1D3 {
  double w, c, e;
};

// a'[x] = w2*a[x-2] + w1*a[x-1] + c*a[x] + e1*a[x+1] + e2*a[x+2]
struct C1D5 {
  double w2, w1, c, e1, e2;
};

// a'[x][y] = c*a[x][y] + w*a[x][y-1] + e*a[x][y+1] + s*a[x-1][y] + n*a[x+1][y]
struct C2D5 {
  double c, w, e, s, n;
};

// 2D box: adds the four diagonals.
struct C2D9 {
  double c, w, e, s, n, sw, se, nw, ne;
};

// a'[x][y][z] = c*a + w*a[z-1] + e*a[z+1] + s*a[y-1] + n*a[y+1]
//             + b*a[x-1] + f*a[x+1]
struct C3D7 {
  double c, w, e, s, n, b, f;
};

// ---- Factories for the heat-equation kernels used in the evaluation -----

inline constexpr C1D3 heat1d(double alpha) {
  return {alpha, 1.0 - 2.0 * alpha, alpha};
}
inline constexpr C1D5 heat1d5(double alpha) {
  // 4th-order central difference for u_xx.
  return {-alpha / 12, 4 * alpha / 3, 1.0 - 2.5 * alpha, 4 * alpha / 3,
          -alpha / 12};
}
inline constexpr C2D5 heat2d(double alpha) {
  return {1.0 - 4.0 * alpha, alpha, alpha, alpha, alpha};
}
inline constexpr C2D9 box2d9(double alpha) {
  return {1.0 - 8.0 * alpha, alpha, alpha, alpha, alpha,
          alpha,             alpha, alpha, alpha};
}
inline constexpr C3D7 heat3d(double alpha) {
  return {1.0 - 6.0 * alpha, alpha, alpha, alpha, alpha, alpha, alpha};
}

}  // namespace tvs::stencil
