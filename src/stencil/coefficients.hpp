// Coefficient descriptors for the stencils evaluated in the paper
// (§3.4: Heat-1D/2D/3D, 2D9P box, Life, Gauss-Seidel 1D/2D/3D, LCS).
//
// Every descriptor is templated on the element type T: the double aliases
// (`C1D3`, ...) are the paper's configuration, the float aliases (`C1D3f`,
// ...) feed the single-precision engines.  The factories compute in T so a
// float kernel and the float scalar reference share bit-identical
// coefficients (computing in double and narrowing afterwards would round
// differently).
//
// Naming of neighbours: within the unit-stride dimension `w`/`e` (west/east
// = index-1/index+1); the next dimension uses `s`/`n` (south/north) and the
// outermost 3D dimension `b`/`f` (back/front).  For 1D, `w`/`e` are x-1/x+1;
// for 2D, `w`/`e` are y±1 and `s`/`n` are x±1; for 3D, `w`/`e` are z±1,
// `s`/`n` are y±1 and `b`/`f` are x±1.
#pragma once

namespace tvs::stencil {

// a'[x] = w*a[x-1] + c*a[x] + e*a[x+1]
template <class T>
struct C1D3T {
  T w, c, e;
};
using C1D3 = C1D3T<double>;
using C1D3f = C1D3T<float>;

// a'[x] = w2*a[x-2] + w1*a[x-1] + c*a[x] + e1*a[x+1] + e2*a[x+2]
template <class T>
struct C1D5T {
  T w2, w1, c, e1, e2;
};
using C1D5 = C1D5T<double>;
using C1D5f = C1D5T<float>;

// a'[x][y] = c*a[x][y] + w*a[x][y-1] + e*a[x][y+1] + s*a[x-1][y] + n*a[x+1][y]
template <class T>
struct C2D5T {
  T c, w, e, s, n;
};
using C2D5 = C2D5T<double>;
using C2D5f = C2D5T<float>;

// 2D box: adds the four diagonals.
template <class T>
struct C2D9T {
  T c, w, e, s, n, sw, se, nw, ne;
};
using C2D9 = C2D9T<double>;
using C2D9f = C2D9T<float>;

// a'[x][y][z] = c*a + w*a[z-1] + e*a[z+1] + s*a[y-1] + n*a[y+1]
//             + b*a[x-1] + f*a[x+1]
template <class T>
struct C3D7T {
  T c, w, e, s, n, b, f;
};
using C3D7 = C3D7T<double>;
using C3D7f = C3D7T<float>;

// ---- Factories for the heat-equation kernels used in the evaluation -----
// Call without a template argument for the paper's double configuration
// (`heat1d(0.25)`), with one for reduced precision (`heat1d<float>(0.25)`).

template <class T = double>
inline constexpr C1D3T<T> heat1d(double alpha) {
  const T a = static_cast<T>(alpha);
  return {a, T{1} - T{2} * a, a};
}
template <class T = double>
inline constexpr C1D5T<T> heat1d5(double alpha) {
  // 4th-order central difference for u_xx.
  const T a = static_cast<T>(alpha);
  return {-a / T{12}, T{4} * a / T{3}, T{1} - T{2.5} * a, T{4} * a / T{3},
          -a / T{12}};
}
template <class T = double>
inline constexpr C2D5T<T> heat2d(double alpha) {
  const T a = static_cast<T>(alpha);
  return {T{1} - T{4} * a, a, a, a, a};
}
template <class T = double>
inline constexpr C2D9T<T> box2d9(double alpha) {
  const T a = static_cast<T>(alpha);
  return {T{1} - T{8} * a, a, a, a, a, a, a, a, a};
}
template <class T = double>
inline constexpr C3D7T<T> heat3d(double alpha) {
  const T a = static_cast<T>(alpha);
  return {T{1} - T{6} * a, a, a, a, a, a, a};
}

}  // namespace tvs::stencil
