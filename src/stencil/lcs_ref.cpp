#include "stencil/lcs_ref.hpp"

#include "stencil/kernels.hpp"

namespace tvs::stencil {

std::vector<std::int32_t> lcs_ref_row(std::span<const std::int32_t> a,
                                      std::span<const std::int32_t> b) {
  const std::size_t nb = b.size();
  std::vector<std::int32_t> prev(nb + 1, 0), cur(nb + 1, 0);
  for (std::size_t x = 1; x <= a.size(); ++x) {
    cur[0] = 0;
    for (std::size_t y = 1; y <= nb; ++y)
      cur[y] = lcs_rule(a[x - 1], b[y - 1], prev[y - 1], prev[y], cur[y - 1]);
    prev.swap(cur);
  }
  return prev;
}

std::int32_t lcs_ref(std::span<const std::int32_t> a,
                     std::span<const std::int32_t> b) {
  return lcs_ref_row(a, b).back();
}

}  // namespace tvs::stencil
