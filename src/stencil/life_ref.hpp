// Scalar Game-of-Life reference engine (oracle + `scalar` curve).
// Cells are int32 0/1 on a Grid2D with fixed (dead) boundary cells, matching
// the paper's non-periodic setup.
#pragma once

#include <cstdint>

#include "grid/grid2d.hpp"
#include "stencil/kernels.hpp"

namespace tvs::stencil {

void life_step(const LifeRule& r, const grid::Grid2D<std::int32_t>& in,
               grid::Grid2D<std::int32_t>& out);
void life_run(const LifeRule& r, grid::Grid2D<std::int32_t>& u, long steps);

}  // namespace tvs::stencil
