#include "stencil/reference2d.hpp"

#include <utility>

#include "stencil/kernels.hpp"

namespace tvs::stencil {

template <class T>
void jacobi2d5_step(const C2D5T<T>& c, const grid::Grid2D<T>& in,
                    grid::Grid2D<T>& out) {
  const int nx = in.nx(), ny = in.ny();
  for (int y = 0; y <= ny + 1; ++y) {
    out.at(0, y) = in.at(0, y);
    out.at(nx + 1, y) = in.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    out.at(x, 0) = in.at(x, 0);
    out.at(x, ny + 1) = in.at(x, ny + 1);
    for (int y = 1; y <= ny; ++y)
      out.at(x, y) = j2d5(c.c, c.w, c.e, c.s, c.n, in.at(x, y), in.at(x, y - 1),
                          in.at(x, y + 1), in.at(x - 1, y), in.at(x + 1, y));
  }
}

template <class T>
void jacobi2d9_step(const C2D9T<T>& c, const grid::Grid2D<T>& in,
                    grid::Grid2D<T>& out) {
  const int nx = in.nx(), ny = in.ny();
  for (int y = 0; y <= ny + 1; ++y) {
    out.at(0, y) = in.at(0, y);
    out.at(nx + 1, y) = in.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    out.at(x, 0) = in.at(x, 0);
    out.at(x, ny + 1) = in.at(x, ny + 1);
    for (int y = 1; y <= ny; ++y)
      out.at(x, y) =
          j2d9(c.c, c.w, c.e, c.s, c.n, c.sw, c.se, c.nw, c.ne, in.at(x, y),
               in.at(x, y - 1), in.at(x, y + 1), in.at(x - 1, y),
               in.at(x + 1, y), in.at(x - 1, y - 1), in.at(x - 1, y + 1),
               in.at(x + 1, y - 1), in.at(x + 1, y + 1));
  }
}

namespace {
template <class T, class StepFn>
void run_pingpong(grid::Grid2D<T>& u, long steps, StepFn step) {
  grid::Grid2D<T> tmp(u.nx(), u.ny());
  grid::Grid2D<T>* cur = &u;
  grid::Grid2D<T>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    step(*cur, *nxt);
    std::swap(cur, nxt);
  }
  if (cur != &u) {
    for (int x = 0; x <= u.nx() + 1; ++x)
      for (int y = 0; y <= u.ny() + 1; ++y) u.at(x, y) = cur->at(x, y);
  }
}
}  // namespace

template <class T>
void jacobi2d5_run(const C2D5T<T>& c, grid::Grid2D<T>& u, long steps) {
  run_pingpong(u, steps,
               [&](const grid::Grid2D<T>& in, grid::Grid2D<T>& out) {
                 jacobi2d5_step(c, in, out);
               });
}

template <class T>
void jacobi2d9_run(const C2D9T<T>& c, grid::Grid2D<T>& u, long steps) {
  run_pingpong(u, steps,
               [&](const grid::Grid2D<T>& in, grid::Grid2D<T>& out) {
                 jacobi2d9_step(c, in, out);
               });
}

template <class T>
void gs2d5_sweep(const C2D5T<T>& c, grid::Grid2D<T>& u) {
  const int nx = u.nx(), ny = u.ny();
  for (int x = 1; x <= nx; ++x)
    for (int y = 1; y <= ny; ++y)
      u.at(x, y) = gs2d5(c.c, c.w, c.e, c.s, c.n, u.at(x, y), u.at(x, y - 1),
                         u.at(x, y + 1), u.at(x - 1, y), u.at(x + 1, y));
}

template <class T>
void gs2d5_run(const C2D5T<T>& c, grid::Grid2D<T>& u, long sweeps) {
  for (long t = 0; t < sweeps; ++t) gs2d5_sweep(c, u);
}

// ---- Explicit instantiations --------------------------------------------
template void jacobi2d5_step<double>(const C2D5&, const grid::Grid2D<double>&,
                                     grid::Grid2D<double>&);
template void jacobi2d9_step<double>(const C2D9&, const grid::Grid2D<double>&,
                                     grid::Grid2D<double>&);
template void jacobi2d5_run<double>(const C2D5&, grid::Grid2D<double>&, long);
template void jacobi2d9_run<double>(const C2D9&, grid::Grid2D<double>&, long);
template void gs2d5_sweep<double>(const C2D5&, grid::Grid2D<double>&);
template void gs2d5_run<double>(const C2D5&, grid::Grid2D<double>&, long);

template void jacobi2d5_step<float>(const C2D5f&, const grid::Grid2D<float>&,
                                    grid::Grid2D<float>&);
template void jacobi2d9_step<float>(const C2D9f&, const grid::Grid2D<float>&,
                                    grid::Grid2D<float>&);
template void jacobi2d5_run<float>(const C2D5f&, grid::Grid2D<float>&, long);
template void jacobi2d9_run<float>(const C2D9f&, grid::Grid2D<float>&, long);
template void gs2d5_sweep<float>(const C2D5f&, grid::Grid2D<float>&);
template void gs2d5_run<float>(const C2D5f&, grid::Grid2D<float>&, long);

}  // namespace tvs::stencil
