#include "stencil/reference2d.hpp"

#include <utility>

#include "stencil/kernels.hpp"

namespace tvs::stencil {

void jacobi2d5_step(const C2D5& c, const grid::Grid2D<double>& in,
                    grid::Grid2D<double>& out) {
  const int nx = in.nx(), ny = in.ny();
  for (int y = 0; y <= ny + 1; ++y) {
    out.at(0, y) = in.at(0, y);
    out.at(nx + 1, y) = in.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    out.at(x, 0) = in.at(x, 0);
    out.at(x, ny + 1) = in.at(x, ny + 1);
    for (int y = 1; y <= ny; ++y)
      out.at(x, y) = j2d5(c.c, c.w, c.e, c.s, c.n, in.at(x, y), in.at(x, y - 1),
                          in.at(x, y + 1), in.at(x - 1, y), in.at(x + 1, y));
  }
}

void jacobi2d9_step(const C2D9& c, const grid::Grid2D<double>& in,
                    grid::Grid2D<double>& out) {
  const int nx = in.nx(), ny = in.ny();
  for (int y = 0; y <= ny + 1; ++y) {
    out.at(0, y) = in.at(0, y);
    out.at(nx + 1, y) = in.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    out.at(x, 0) = in.at(x, 0);
    out.at(x, ny + 1) = in.at(x, ny + 1);
    for (int y = 1; y <= ny; ++y)
      out.at(x, y) =
          j2d9(c.c, c.w, c.e, c.s, c.n, c.sw, c.se, c.nw, c.ne, in.at(x, y),
               in.at(x, y - 1), in.at(x, y + 1), in.at(x - 1, y),
               in.at(x + 1, y), in.at(x - 1, y - 1), in.at(x - 1, y + 1),
               in.at(x + 1, y - 1), in.at(x + 1, y + 1));
  }
}

namespace {
template <class StepFn>
void run_pingpong(grid::Grid2D<double>& u, long steps, StepFn step) {
  grid::Grid2D<double> tmp(u.nx(), u.ny());
  grid::Grid2D<double>* cur = &u;
  grid::Grid2D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    step(*cur, *nxt);
    std::swap(cur, nxt);
  }
  if (cur != &u) {
    for (int x = 0; x <= u.nx() + 1; ++x)
      for (int y = 0; y <= u.ny() + 1; ++y) u.at(x, y) = cur->at(x, y);
  }
}
}  // namespace

void jacobi2d5_run(const C2D5& c, grid::Grid2D<double>& u, long steps) {
  run_pingpong(u, steps, [&](const grid::Grid2D<double>& in,
                             grid::Grid2D<double>& out) {
    jacobi2d5_step(c, in, out);
  });
}

void jacobi2d9_run(const C2D9& c, grid::Grid2D<double>& u, long steps) {
  run_pingpong(u, steps, [&](const grid::Grid2D<double>& in,
                             grid::Grid2D<double>& out) {
    jacobi2d9_step(c, in, out);
  });
}

void gs2d5_sweep(const C2D5& c, grid::Grid2D<double>& u) {
  const int nx = u.nx(), ny = u.ny();
  for (int x = 1; x <= nx; ++x)
    for (int y = 1; y <= ny; ++y)
      u.at(x, y) = gs2d5(c.c, c.w, c.e, c.s, c.n, u.at(x, y), u.at(x, y - 1),
                         u.at(x, y + 1), u.at(x - 1, y), u.at(x + 1, y));
}

void gs2d5_run(const C2D5& c, grid::Grid2D<double>& u, long sweeps) {
  for (long t = 0; t < sweeps; ++t) gs2d5_sweep(c, u);
}

}  // namespace tvs::stencil
