// Scalar reference engines, 1D.
//
// These are (a) the correctness oracle for every vector kernel and (b) the
// paper's `scalar` benchmark curves.  Their translation units are compiled
// with -fno-tree-vectorize -fno-tree-slp-vectorize so they stay scalar under
// -O3, and they evaluate the canonical formulas of stencil/kernels.hpp, so
// vector kernels match them bit for bit.
#pragma once

#include "grid/grid1d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::stencil {

// One Jacobi step over the interior x = 1..NX; boundary cells copied.
void jacobi1d3_step(const C1D3& c, const grid::Grid1D<double>& in,
                    grid::Grid1D<double>& out);
void jacobi1d5_step(const C1D5& c, const grid::Grid1D<double>& in,
                    grid::Grid1D<double>& out);

// T steps; result lands back in `u` (internal ping-pong).
void jacobi1d3_run(const C1D3& c, grid::Grid1D<double>& u, long steps);
void jacobi1d5_run(const C1D5& c, grid::Grid1D<double>& u, long steps);

// One in-place ascending Gauss-Seidel sweep / `sweeps` of them.
void gs1d3_sweep(const C1D3& c, grid::Grid1D<double>& u);
void gs1d3_run(const C1D3& c, grid::Grid1D<double>& u, long sweeps);

}  // namespace tvs::stencil
