// Scalar reference engines, 1D.
//
// These are (a) the correctness oracle for every vector kernel and (b) the
// paper's `scalar` benchmark curves.  They evaluate the canonical formulas
// of stencil/kernels.hpp in one fixed order, so vector kernels of the same
// element type match them bit for bit.
//
// Every engine is templated on the element type T and explicitly
// instantiated for double and float in reference1d.cpp — the double
// instantiations are the paper's oracles, the float ones anchor the
// single-precision engines.
#pragma once

#include "grid/grid1d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::stencil {

// One Jacobi step over the interior x = 1..NX; boundary cells copied.
template <class T>
void jacobi1d3_step(const C1D3T<T>& c, const grid::Grid1D<T>& in,
                    grid::Grid1D<T>& out);
template <class T>
void jacobi1d5_step(const C1D5T<T>& c, const grid::Grid1D<T>& in,
                    grid::Grid1D<T>& out);

// T steps; result lands back in `u` (internal ping-pong).
template <class T>
void jacobi1d3_run(const C1D3T<T>& c, grid::Grid1D<T>& u, long steps);
template <class T>
void jacobi1d5_run(const C1D5T<T>& c, grid::Grid1D<T>& u, long steps);

// One in-place ascending Gauss-Seidel sweep / `sweeps` of them.
template <class T>
void gs1d3_sweep(const C1D3T<T>& c, grid::Grid1D<T>& u);
template <class T>
void gs1d3_run(const C1D3T<T>& c, grid::Grid1D<T>& u, long sweeps);

}  // namespace tvs::stencil
