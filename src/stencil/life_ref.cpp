#include "stencil/life_ref.hpp"

#include <utility>

namespace tvs::stencil {

void life_step(const LifeRule& r, const grid::Grid2D<std::int32_t>& in,
               grid::Grid2D<std::int32_t>& out) {
  const int nx = in.nx(), ny = in.ny();
  for (int y = 0; y <= ny + 1; ++y) {
    out.at(0, y) = in.at(0, y);
    out.at(nx + 1, y) = in.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    out.at(x, 0) = in.at(x, 0);
    out.at(x, ny + 1) = in.at(x, ny + 1);
    for (int y = 1; y <= ny; ++y) {
      const std::int32_t sum = in.at(x, y - 1) + in.at(x, y + 1) +
                               in.at(x - 1, y) + in.at(x + 1, y) +
                               in.at(x - 1, y - 1) + in.at(x - 1, y + 1) +
                               in.at(x + 1, y - 1) + in.at(x + 1, y + 1);
      out.at(x, y) = life_rule(r, in.at(x, y), sum);
    }
  }
}

void life_run(const LifeRule& r, grid::Grid2D<std::int32_t>& u, long steps) {
  grid::Grid2D<std::int32_t> tmp(u.nx(), u.ny());
  grid::Grid2D<std::int32_t>* cur = &u;
  grid::Grid2D<std::int32_t>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    life_step(r, *cur, *nxt);
    std::swap(cur, nxt);
  }
  if (cur != &u) {
    for (int x = 0; x <= u.nx() + 1; ++x)
      for (int y = 0; y <= u.ny() + 1; ++y) u.at(x, y) = cur->at(x, y);
  }
}

}  // namespace tvs::stencil
