#include "stencil/dependence.hpp"

#include <stdexcept>
#include <string>

namespace tvs::stencil {

int min_stride(std::span<const Dep> deps) {
  int s = 1;  // a stride of at least 1 is always required
  for (const Dep& d : deps) {
    if (d.dx <= 0) continue;  // backward/self: no constraint on s
    if (d.dt == 0) return -1;  // same-time forward dependence: illegal
    // need s*dt > dx  =>  s >= floor(dx/dt) + 1
    const int need = d.dx / d.dt + 1;
    if (need > s) s = need;
  }
  return s;
}

void require_legal_stride(std::string_view kernel, std::span<const Dep> deps,
                          int stride, int max_stride) {
  const int need = min_stride(deps);
  if (need < 0) {
    throw std::invalid_argument(
        std::string(kernel) +
        ": this dependence set has a same-time forward dependence; no space "
        "stride makes temporal vectorization legal");
  }
  if (stride < need) {
    throw std::invalid_argument(
        std::string(kernel) + ": stride " + std::to_string(stride) +
        " violates the temporal-vectorization legality condition (§3.2 "
        "requires s * dt > dx for every forward dependence): the smallest "
        "legal stride here is " + std::to_string(need));
  }
  if (max_stride > 0 && stride > max_stride) {
    throw std::invalid_argument(std::string(kernel) + ": stride " +
                                std::to_string(stride) +
                                " exceeds this engine's ring capacity (max " +
                                std::to_string(max_stride) + ")");
  }
}

std::vector<Dep> jacobi1d_deps(int radius) {
  std::vector<Dep> d;
  for (int r = -radius; r <= radius; ++r) d.push_back({1, r});
  return d;
}

std::vector<Dep> jacobi2d_deps(int radius) { return jacobi1d_deps(radius); }
std::vector<Dep> jacobi3d_deps(int radius) { return jacobi1d_deps(radius); }

std::vector<Dep> gauss_seidel_deps(int radius) {
  // Old values of self and forward neighbours; newest values of backward
  // neighbours (same sweep) appear as dt == 0, dx < 0.
  std::vector<Dep> d;
  for (int r = 0; r <= radius; ++r) d.push_back({1, r});
  for (int r = 1; r <= radius; ++r) d.push_back({0, -r});
  return d;
}

std::vector<Dep> lcs_deps() {
  // lcs[x][y] <- lcs[x-1][y] (1,0), lcs[x-1][y-1] (1,-1), lcs[x][y-1] (0,-1)
  return {{1, 0}, {1, -1}, {0, -1}};
}

}  // namespace tvs::stencil
