// Dependence sets and the temporal-vectorization legality rule (§3.2).
//
// A dependence (dt, dx) means the point (t, x) requires the value at
// (t - dt, x + dx) along the vectorized (outermost) space dimension.
// Temporal vectorization with space stride `s` is legal iff
//
//     s * dt > dx        for every dependence with dx > 0,
//
// i.e. the older lanes sit far enough ahead in space that nothing a lane
// needs is still in flight.  Dependences with dt == 0 and dx < 0
// (Gauss-Seidel / LCS "newest west neighbour") are satisfied by forwarding
// the previous output vector; dt == 0 with dx > 0 has no legal stride.
#pragma once

#include <span>
#include <string_view>
#include <vector>

namespace tvs::stencil {

struct Dep {
  int dt;  // time distance, >= 0
  int dx;  // forward space distance of the required neighbour
};

// Smallest legal space stride, or -1 if no stride makes the scheme legal
// (a same-time forward dependence).  Defined in legality.cpp.
int min_stride(std::span<const Dep> deps);

// API-boundary guard for the public tv_*_run entry points: throws
// std::invalid_argument (naming `kernel`, the offending stride, and the
// smallest legal one) unless `stride >= min_stride(deps)` — the §3.2
// condition `s * dt > dx` for every forward dependence.  When
// `max_stride > 0` the engine's capacity bound `stride <= max_stride` is
// enforced too.  An illegal stride used to corrupt results silently.
void require_legal_stride(std::string_view kernel, std::span<const Dep> deps,
                          int stride, int max_stride = 0);

// Standard dependence sets for the kernels in this library, projected on
// (t, outermost-space-dim).
std::vector<Dep> jacobi1d_deps(int radius);
std::vector<Dep> jacobi2d_deps(int radius);   // same projection as 1D
std::vector<Dep> jacobi3d_deps(int radius);
std::vector<Dep> gauss_seidel_deps(int radius);
std::vector<Dep> lcs_deps();

}  // namespace tvs::stencil
