// Scalar longest-common-subsequence DP (oracle + `scalar` curve).
//
// The paper treats LCS as a 1D Gauss-Seidel stencil: the x loop (over A) is
// the time dimension, the y loop (over B) the space dimension, with
// wavefront storage of one DP row.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tvs::stencil {

// Full DP; returns the length of the LCS of A and B.
std::int32_t lcs_ref(std::span<const std::int32_t> a,
                     std::span<const std::int32_t> b);

// Same DP, but returns the final DP row lcs[|A|][0..|B|] so vector kernels
// can be checked cell for cell.
std::vector<std::int32_t> lcs_ref_row(std::span<const std::int32_t> a,
                                      std::span<const std::int32_t> b);

}  // namespace tvs::stencil
