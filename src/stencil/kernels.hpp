// Canonical stencil formulas, shared by the scalar reference engines and
// every vector kernel.
//
// All floating-point stencils are evaluated through `vfma` in the exact
// operand order written here.  Because scalar `std::fma` and the AVX2
// `vfmadd` instruction round identically, a vector kernel that applies the
// same formula lane-wise produces results bit-identical to the scalar
// oracle — the test suite compares with exact equality.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stencil/coefficients.hpp"

namespace tvs::stencil {

inline double vfma(double a, double b, double c) { return std::fma(a, b, c); }
// Single-precision scalar: std::fma's float overload is correctly rounded,
// so it matches the vfmadd-ps lanes bit for bit, exactly like the double
// case.  (The non-template overloads win resolution over the vector
// template for arithmetic scalars.)
inline float vfma(float a, float b, float c) { return std::fma(a, b, c); }
template <class V>
inline V vfma(V a, V b, V c) {
  return fma(a, b, c);  // ADL: tvs::simd overloads
}

// ---- Jacobi -------------------------------------------------------------

// V is either `double` (with C broadcast = plain double) or a simd vector
// (with pre-broadcast coefficient vectors).
template <class V>
inline V j1d3(V cw, V cc, V ce, V w, V c, V e) {
  V acc = cc * c;
  acc = vfma(cw, w, acc);
  acc = vfma(ce, e, acc);
  return acc;
}

template <class V>
inline V j1d5(V cw2, V cw1, V cc, V ce1, V ce2, V w2, V w1, V c, V e1, V e2) {
  V acc = cc * c;
  acc = vfma(cw1, w1, acc);
  acc = vfma(ce1, e1, acc);
  acc = vfma(cw2, w2, acc);
  acc = vfma(ce2, e2, acc);
  return acc;
}

template <class V>
inline V j2d5(V cc, V cw, V ce, V cs, V cn, V c, V w, V e, V s, V n) {
  V acc = cc * c;
  acc = vfma(cw, w, acc);
  acc = vfma(ce, e, acc);
  acc = vfma(cs, s, acc);
  acc = vfma(cn, n, acc);
  return acc;
}

template <class V>
inline V j2d9(V cc, V cw, V ce, V cs, V cn, V csw, V cse, V cnw, V cne,
              V c, V w, V e, V s, V n, V sw, V se, V nw, V ne) {
  V acc = cc * c;
  acc = vfma(cw, w, acc);
  acc = vfma(ce, e, acc);
  acc = vfma(cs, s, acc);
  acc = vfma(cn, n, acc);
  acc = vfma(csw, sw, acc);
  acc = vfma(cse, se, acc);
  acc = vfma(cnw, nw, acc);
  acc = vfma(cne, ne, acc);
  return acc;
}

template <class V>
inline V j3d7(V cc, V cw, V ce, V cs, V cn, V cb, V cf,
              V c, V w, V e, V s, V n, V b, V f) {
  V acc = cc * c;
  acc = vfma(cw, w, acc);
  acc = vfma(ce, e, acc);
  acc = vfma(cs, s, acc);
  acc = vfma(cn, n, acc);
  acc = vfma(cb, b, acc);
  acc = vfma(cf, f, acc);
  return acc;
}

// ---- Gauss-Seidel -------------------------------------------------------
// Identical formulas; the *arguments* differ (west/south/back neighbours are
// the newest values).  Kept separate for documentation value only.

template <class V>
inline V gs1d3(V cw, V cc, V ce, V w_new, V c, V e) {
  return j1d3(cw, cc, ce, w_new, c, e);
}
template <class V>
inline V gs2d5(V cc, V cw, V ce, V cs, V cn, V c, V w_new, V e, V s_new, V n) {
  return j2d5(cc, cw, ce, cs, cn, c, w_new, e, s_new, n);
}
template <class V>
inline V gs3d7(V cc, V cw, V ce, V cs, V cn, V cb, V cf,
               V c, V w_new, V e, V s_new, V n, V b_new, V f) {
  return j3d7(cc, cw, ce, cs, cn, cb, cf, c, w_new, e, s_new, n, b_new, f);
}

// ---- Game of Life, integer cells -----------------------------------------
// Rule BbSs1s2: a dead cell is born with exactly `b` live neighbours, a live
// cell survives with `s1` or `s2`.  The paper uses Pluto's B2S23 variant
// (b=2); classic Conway is B3S23 (b=3).

struct LifeRule {
  std::int32_t b = 2, s1 = 2, s2 = 3;  // B2S23 default
};

inline std::int32_t life_rule(const LifeRule& r, std::int32_t alive,
                              std::int32_t sum) {
  if (alive != 0) return static_cast<std::int32_t>(sum == r.s1 || sum == r.s2);
  return static_cast<std::int32_t>(sum == r.b);
}

// Vector form via cmpeq/blendv masks.  V must be an int32 vector.
template <class V>
inline V life_rule_v(const LifeRule& r, V alive, V sum) {
  const V one = V::set1(1);
  const V born = blendv(V::zero(), one, cmpeq(sum, V::set1(r.b)));
  V surv = blendv(V::zero(), one, cmpeq(sum, V::set1(r.s1)));
  surv = blendv(surv, one, cmpeq(sum, V::set1(r.s2)));
  // alive is 0/1: select survive for live cells, born for dead ones.
  const V is_alive = cmpeq(alive, one);
  return blendv(born, surv, is_alive);
}

// ---- LCS ----------------------------------------------------------------
// lcs[x][y] = A[x]==B[y] ? lcs[x-1][y-1]+1 : max(lcs[x-1][y], lcs[x][y-1])

inline std::int32_t lcs_rule(std::int32_t a, std::int32_t b, std::int32_t diag,
                             std::int32_t up, std::int32_t left) {
  return a == b ? diag + 1 : std::max(up, left);
}

template <class V>
inline V lcs_rule_v(V a, V b, V diag, V up, V left) {
  const V m = max(up, left);
  const V d = diag + V::set1(1);
  return blendv(m, d, cmpeq(a, b));
}

}  // namespace tvs::stencil
