#include "stencil/reference1d.hpp"

#include <utility>

#include "grid/pingpong.hpp"
#include "stencil/kernels.hpp"

namespace tvs::stencil {

template <class T>
void jacobi1d3_step(const C1D3T<T>& c, const grid::Grid1D<T>& in,
                    grid::Grid1D<T>& out) {
  const int nx = in.nx();
  out.at(0) = in.at(0);
  out.at(nx + 1) = in.at(nx + 1);
  for (int x = 1; x <= nx; ++x)
    out.at(x) = j1d3(c.w, c.c, c.e, in.at(x - 1), in.at(x), in.at(x + 1));
}

template <class T>
void jacobi1d5_step(const C1D5T<T>& c, const grid::Grid1D<T>& in,
                    grid::Grid1D<T>& out) {
  const int nx = in.nx();
  // Radius-2 stencil: interior stays 1..nx; x in {-1, 0, nx+1, nx+2} are
  // fixed boundary cells (they live in the grid's padding).
  for (int x = -1; x <= 0; ++x) out.at(x) = in.at(x);
  for (int x = nx + 1; x <= nx + 2; ++x) out.at(x) = in.at(x);
  for (int x = 1; x <= nx; ++x)
    out.at(x) = j1d5(c.w2, c.w1, c.c, c.e1, c.e2, in.at(x - 2), in.at(x - 1),
                     in.at(x), in.at(x + 1), in.at(x + 2));
}

namespace {
template <class T, class StepFn>
void run_pingpong(grid::Grid1D<T>& u, long steps, StepFn step) {
  grid::Grid1D<T> tmp(u.nx());
  grid::Grid1D<T>* cur = &u;
  grid::Grid1D<T>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    step(*cur, *nxt);
    std::swap(cur, nxt);
  }
  if (cur != &u) {
    for (int x = 0; x <= u.nx() + 1; ++x) u.at(x) = cur->at(x);
  }
}
}  // namespace

template <class T>
void jacobi1d3_run(const C1D3T<T>& c, grid::Grid1D<T>& u, long steps) {
  run_pingpong(u, steps,
               [&](const grid::Grid1D<T>& in, grid::Grid1D<T>& out) {
                 jacobi1d3_step(c, in, out);
               });
}

template <class T>
void jacobi1d5_run(const C1D5T<T>& c, grid::Grid1D<T>& u, long steps) {
  run_pingpong(u, steps,
               [&](const grid::Grid1D<T>& in, grid::Grid1D<T>& out) {
                 jacobi1d5_step(c, in, out);
               });
}

template <class T>
void gs1d3_sweep(const C1D3T<T>& c, grid::Grid1D<T>& u) {
  const int nx = u.nx();
  for (int x = 1; x <= nx; ++x)
    u.at(x) = gs1d3(c.w, c.c, c.e, u.at(x - 1), u.at(x), u.at(x + 1));
}

template <class T>
void gs1d3_run(const C1D3T<T>& c, grid::Grid1D<T>& u, long sweeps) {
  for (long t = 0; t < sweeps; ++t) gs1d3_sweep(c, u);
}

// ---- Explicit instantiations: the double oracles + their float twins ----
template void jacobi1d3_step<double>(const C1D3&, const grid::Grid1D<double>&,
                                     grid::Grid1D<double>&);
template void jacobi1d5_step<double>(const C1D5&, const grid::Grid1D<double>&,
                                     grid::Grid1D<double>&);
template void jacobi1d3_run<double>(const C1D3&, grid::Grid1D<double>&, long);
template void jacobi1d5_run<double>(const C1D5&, grid::Grid1D<double>&, long);
template void gs1d3_sweep<double>(const C1D3&, grid::Grid1D<double>&);
template void gs1d3_run<double>(const C1D3&, grid::Grid1D<double>&, long);

template void jacobi1d3_step<float>(const C1D3f&, const grid::Grid1D<float>&,
                                    grid::Grid1D<float>&);
template void jacobi1d5_step<float>(const C1D5f&, const grid::Grid1D<float>&,
                                    grid::Grid1D<float>&);
template void jacobi1d3_run<float>(const C1D3f&, grid::Grid1D<float>&, long);
template void jacobi1d5_run<float>(const C1D5f&, grid::Grid1D<float>&, long);
template void gs1d3_sweep<float>(const C1D3f&, grid::Grid1D<float>&);
template void gs1d3_run<float>(const C1D3f&, grid::Grid1D<float>&, long);

}  // namespace tvs::stencil
