#include "stencil/reference3d.hpp"

#include <utility>

#include "stencil/kernels.hpp"

namespace tvs::stencil {

template <class T>
void jacobi3d7_step(const C3D7T<T>& c, const grid::Grid3D<T>& in,
                    grid::Grid3D<T>& out) {
  const int nx = in.nx(), ny = in.ny(), nz = in.nz();
  // Copy all boundary faces.
  for (int y = 0; y <= ny + 1; ++y)
    for (int z = 0; z <= nz + 1; ++z) {
      out.at(0, y, z) = in.at(0, y, z);
      out.at(nx + 1, y, z) = in.at(nx + 1, y, z);
    }
  for (int x = 1; x <= nx; ++x) {
    for (int z = 0; z <= nz + 1; ++z) {
      out.at(x, 0, z) = in.at(x, 0, z);
      out.at(x, ny + 1, z) = in.at(x, ny + 1, z);
    }
    for (int y = 1; y <= ny; ++y) {
      out.at(x, y, 0) = in.at(x, y, 0);
      out.at(x, y, nz + 1) = in.at(x, y, nz + 1);
      for (int z = 1; z <= nz; ++z)
        out.at(x, y, z) =
            j3d7(c.c, c.w, c.e, c.s, c.n, c.b, c.f, in.at(x, y, z),
                 in.at(x, y, z - 1), in.at(x, y, z + 1), in.at(x, y - 1, z),
                 in.at(x, y + 1, z), in.at(x - 1, y, z), in.at(x + 1, y, z));
    }
  }
}

template <class T>
void jacobi3d7_run(const C3D7T<T>& c, grid::Grid3D<T>& u, long steps) {
  grid::Grid3D<T> tmp(u.nx(), u.ny(), u.nz());
  grid::Grid3D<T>* cur = &u;
  grid::Grid3D<T>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    jacobi3d7_step(c, *cur, *nxt);
    std::swap(cur, nxt);
  }
  if (cur != &u) {
    for (int x = 0; x <= u.nx() + 1; ++x)
      for (int y = 0; y <= u.ny() + 1; ++y)
        for (int z = 0; z <= u.nz() + 1; ++z) u.at(x, y, z) = cur->at(x, y, z);
  }
}

template <class T>
void gs3d7_sweep(const C3D7T<T>& c, grid::Grid3D<T>& u) {
  const int nx = u.nx(), ny = u.ny(), nz = u.nz();
  for (int x = 1; x <= nx; ++x)
    for (int y = 1; y <= ny; ++y)
      for (int z = 1; z <= nz; ++z)
        u.at(x, y, z) =
            gs3d7(c.c, c.w, c.e, c.s, c.n, c.b, c.f, u.at(x, y, z),
                  u.at(x, y, z - 1), u.at(x, y, z + 1), u.at(x, y - 1, z),
                  u.at(x, y + 1, z), u.at(x - 1, y, z), u.at(x + 1, y, z));
}

template <class T>
void gs3d7_run(const C3D7T<T>& c, grid::Grid3D<T>& u, long sweeps) {
  for (long t = 0; t < sweeps; ++t) gs3d7_sweep(c, u);
}

// ---- Explicit instantiations --------------------------------------------
template void jacobi3d7_step<double>(const C3D7&, const grid::Grid3D<double>&,
                                     grid::Grid3D<double>&);
template void jacobi3d7_run<double>(const C3D7&, grid::Grid3D<double>&, long);
template void gs3d7_sweep<double>(const C3D7&, grid::Grid3D<double>&);
template void gs3d7_run<double>(const C3D7&, grid::Grid3D<double>&, long);

template void jacobi3d7_step<float>(const C3D7f&, const grid::Grid3D<float>&,
                                    grid::Grid3D<float>&);
template void jacobi3d7_run<float>(const C3D7f&, grid::Grid3D<float>&, long);
template void gs3d7_sweep<float>(const C3D7f&, grid::Grid3D<float>&);
template void gs3d7_run<float>(const C3D7f&, grid::Grid3D<float>&, long);

}  // namespace tvs::stencil
