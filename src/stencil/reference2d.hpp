// Scalar reference engines, 2D (oracle + `scalar` benchmark curves).
// Templated on the element type; instantiated for double and float in
// reference2d.cpp (see reference1d.hpp for the contract).
#pragma once

#include "grid/grid2d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::stencil {

template <class T>
void jacobi2d5_step(const C2D5T<T>& c, const grid::Grid2D<T>& in,
                    grid::Grid2D<T>& out);
template <class T>
void jacobi2d9_step(const C2D9T<T>& c, const grid::Grid2D<T>& in,
                    grid::Grid2D<T>& out);

template <class T>
void jacobi2d5_run(const C2D5T<T>& c, grid::Grid2D<T>& u, long steps);
template <class T>
void jacobi2d9_run(const C2D9T<T>& c, grid::Grid2D<T>& u, long steps);

// In-place ascending (x, then y) Gauss-Seidel sweeps.
template <class T>
void gs2d5_sweep(const C2D5T<T>& c, grid::Grid2D<T>& u);
template <class T>
void gs2d5_run(const C2D5T<T>& c, grid::Grid2D<T>& u, long sweeps);

}  // namespace tvs::stencil
