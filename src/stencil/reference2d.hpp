// Scalar reference engines, 2D (oracle + `scalar` benchmark curves).
#pragma once

#include "grid/grid2d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::stencil {

void jacobi2d5_step(const C2D5& c, const grid::Grid2D<double>& in,
                    grid::Grid2D<double>& out);
void jacobi2d9_step(const C2D9& c, const grid::Grid2D<double>& in,
                    grid::Grid2D<double>& out);

void jacobi2d5_run(const C2D5& c, grid::Grid2D<double>& u, long steps);
void jacobi2d9_run(const C2D9& c, grid::Grid2D<double>& u, long steps);

// In-place ascending (x, then y) Gauss-Seidel sweeps.
void gs2d5_sweep(const C2D5& c, grid::Grid2D<double>& u);
void gs2d5_run(const C2D5& c, grid::Grid2D<double>& u, long sweeps);

}  // namespace tvs::stencil
