// The tree's single sanctioned std::getenv call site.
//
// Every TVS_* knob (TVS_FORCE_BACKEND, TVS_PLAN, TVS_TUNE, TVS_BENCH_*) is
// read before any worker thread exists: backend selection happens inside a
// function-local static initializer, plan knobs are read before the plan
// cache spawns tiled work, and the bench knobs are read from main().
// getenv itself is only racy against concurrent setenv/putenv, which the
// tree never calls.  Routing every read through this one wrapper keeps that
// argument auditable and scopes the clang-tidy concurrency-mt-unsafe
// exemption to a single line (see .clang-tidy).
#pragma once

#include <cstdlib>

namespace tvs::util {

inline const char* env_cstr(const char* name) noexcept {
  // Reads only; no setenv/putenv anywhere in the tree (see file comment).
  return std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace tvs::util
