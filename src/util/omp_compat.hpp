// OpenMP runtime-API shim: includes <omp.h> when compiled with OpenMP and
// provides serial fallbacks otherwise, so every translation unit — including
// the sequential figure benches — builds on a toolchain without OpenMP.
//
// Only the query/control functions the codebase actually uses are stubbed;
// `#pragma omp` directives are ignored by non-OpenMP compilers on their own.
#pragma once

#if defined(_OPENMP)

#include <omp.h>

#else

inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
inline void omp_set_num_threads(int) {}

#endif
