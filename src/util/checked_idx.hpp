// Checked index arithmetic, usable at compile time.
//
// CheckedIdx<Lo, Hi> is an interval-checked index: constructing one from a
// value outside [Lo, Hi] throws.  In a constant-evaluated context a throw
// makes the expression non-constant, so `static_assert(trace())` turns an
// out-of-bounds index into a *build failure* — tests/ring_bounds_static.cpp
// uses this to prove the §3 ring invariants for every registered
// (dtype, vl, stride) combo.  At runtime the same type is an assert-like
// guard with a real exception.
//
// checked_int is the sanctioned narrowing conversion for the tvsrace C3
// rule (tools/tvsrace/): converting a size()/ptrdiff quantity to the
// engines' int extents must go through it so overflow raises instead of
// silently truncating.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace tvs::util {

template <std::ptrdiff_t Lo, std::ptrdiff_t Hi>
class CheckedIdx {
  static_assert(Lo <= Hi, "CheckedIdx: empty interval");

 public:
  // Implicit on purpose: `CheckedIdx<0, N - 1> i = expr;` reads as an
  // annotated declaration, and the check is the whole point of the type.
  constexpr CheckedIdx(std::ptrdiff_t v) : v_(v) {
    if (v < Lo || v > Hi)
      throw std::out_of_range("CheckedIdx: index outside interval");
  }
  constexpr std::ptrdiff_t get() const { return v_; }
  constexpr operator std::ptrdiff_t() const { return v_; }

 private:
  std::ptrdiff_t v_;
};

// Interval check against runtime bounds (e.g. a ring period that is only
// known per stride).  Same throw-in-constexpr behaviour as CheckedIdx.
constexpr std::ptrdiff_t checked_index(std::ptrdiff_t v, std::ptrdiff_t lo,
                                       std::ptrdiff_t hi) {
  if (v < lo || v > hi)
    throw std::out_of_range("checked_index: index outside interval");
  return v;
}

// Narrowing to int that throws on overflow instead of truncating.  This is
// how span/grid extents (size_t, ptrdiff_t) enter the int-extent engine
// APIs; tvsrace C3 whitelists it where a static_cast would be flagged.
template <class From>
constexpr int checked_int(From v) {
  static_assert(std::is_integral_v<From>,
                "checked_int converts integral values only");
  if (!std::in_range<int>(v))
    throw std::overflow_error("checked_int: value does not fit in int");
  return static_cast<int>(v);
}

}  // namespace tvs::util
