// The paper's `auto` comparator: straightforward nested loops in their own
// translation units, compiled with the compiler's vectorizer enabled (the
// paper used `icc -O3 -xHost`; we use GCC with -ftree-vectorize, which
// vectorizes these loops with the multi-load scheme of §2.2).
//
// Note: the compiler is free to contract multiplies and adds differently
// from the canonical fma order, so tests compare these against the oracle
// with a small tolerance rather than exactly.
#pragma once

#include <cstdint>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::baseline {

void autovec_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                           long steps);
void autovec_jacobi1d5_run(const stencil::C1D5& c, grid::Grid1D<double>& u,
                           long steps);
void autovec_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                           long steps);
void autovec_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                           long steps);
void autovec_life_run(const stencil::LifeRule& r,
                      grid::Grid2D<std::int32_t>& u, long steps);
void autovec_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                           long steps);

// Per-step OpenMP-parallel variants (the conventional parallelization of
// the compiler-vectorized loops: space split across threads, barrier per
// time step).  Used as the parallel `auto` curves of Figures 4b-4j.
void par_autovec_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                               long steps);
void par_autovec_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                               long steps);
void par_autovec_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                               long steps);
void par_autovec_life_run(const stencil::LifeRule& r,
                          grid::Grid2D<std::int32_t>& u, long steps);
void par_autovec_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                               long steps);

}  // namespace tvs::baseline
