// Public baseline/ entry points: registry dispatch (common code, no SIMD
// flags).  The baselines take no stride, so there is nothing to validate.
#include "baseline/autovec.hpp"
#include "baseline/spatial.hpp"
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"

namespace tvs::baseline {

namespace {

template <class Fn>
Fn* lookup(std::string_view id) {
  return dispatch::KernelRegistry::instance().get<Fn>(id);
}

}  // namespace

// ---- compiler-vectorized ("auto") ------------------------------------------

void autovec_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                           long steps) {
  static const auto fn = lookup<dispatch::BlJacobi1DFn>(dispatch::kAutovecJacobi1D3);
  fn(c, u, steps);
}

void autovec_jacobi1d5_run(const stencil::C1D5& c, grid::Grid1D<double>& u,
                           long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi1D5Fn>(dispatch::kAutovecJacobi1D5);
  fn(c, u, steps);
}

void autovec_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                           long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi2D5Fn>(dispatch::kAutovecJacobi2D5);
  fn(c, u, steps);
}

void autovec_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                           long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi2D9Fn>(dispatch::kAutovecJacobi2D9);
  fn(c, u, steps);
}

void autovec_life_run(const stencil::LifeRule& r,
                      grid::Grid2D<std::int32_t>& u, long steps) {
  static const auto fn = lookup<dispatch::BlLifeFn>(dispatch::kAutovecLife);
  fn(r, u, steps);
}

void autovec_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                           long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi3D7Fn>(dispatch::kAutovecJacobi3D7);
  fn(c, u, steps);
}

void par_autovec_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                               long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi1DFn>(dispatch::kParAutovecJacobi1D3);
  fn(c, u, steps);
}

void par_autovec_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                               long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi2D5Fn>(dispatch::kParAutovecJacobi2D5);
  fn(c, u, steps);
}

void par_autovec_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                               long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi2D9Fn>(dispatch::kParAutovecJacobi2D9);
  fn(c, u, steps);
}

void par_autovec_life_run(const stencil::LifeRule& r,
                          grid::Grid2D<std::int32_t>& u, long steps) {
  static const auto fn = lookup<dispatch::BlLifeFn>(dispatch::kParAutovecLife);
  fn(r, u, steps);
}

void par_autovec_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                               long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi3D7Fn>(dispatch::kParAutovecJacobi3D7);
  fn(c, u, steps);
}

// ---- explicit spatial vectorization ----------------------------------------

void multiload_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                             long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi1DFn>(dispatch::kMultiloadJacobi1D3);
  fn(c, u, steps);
}

void reorg_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                         long steps) {
  static const auto fn = lookup<dispatch::BlJacobi1DFn>(dispatch::kReorgJacobi1D3);
  fn(c, u, steps);
}

void dlt_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                       long steps) {
  static const auto fn = lookup<dispatch::BlJacobi1DFn>(dispatch::kDltJacobi1D3);
  fn(c, u, steps);
}

void multiload_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                             long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi2D5Fn>(dispatch::kMultiloadJacobi2D5);
  fn(c, u, steps);
}

void multiload_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                             long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi2D9Fn>(dispatch::kMultiloadJacobi2D9);
  fn(c, u, steps);
}

void multiload_life_run(const stencil::LifeRule& r,
                        grid::Grid2D<std::int32_t>& u, long steps) {
  static const auto fn = lookup<dispatch::BlLifeFn>(dispatch::kMultiloadLife);
  fn(r, u, steps);
}

void multiload_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                             long steps) {
  static const auto fn =
      lookup<dispatch::BlJacobi3D7Fn>(dispatch::kMultiloadJacobi3D7);
  fn(c, u, steps);
}

}  // namespace tvs::baseline
