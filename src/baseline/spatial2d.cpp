// Multi-load spatial vectorization, 2D kernels (Jacobi 2D5P/2D9P and Life).
// Unaligned overlapping loads along the unit-stride y dimension; the
// canonical fma order keeps results bit-identical to the scalar oracle.
#include "dispatch/backend_variant.hpp"
#include <utility>

#include "baseline/spatial.hpp"
#include "simd/vec.hpp"

namespace tvs::baseline {
namespace {

using VD = simd::NativeVec<double, 4>;
using VI = simd::NativeVec<std::int32_t, 8>;

template <class T>
void copy_frame(const grid::Grid2D<T>& src, grid::Grid2D<T>& dst) {
  const int nx = src.nx(), ny = src.ny();
  for (int y = 0; y <= ny + 1; ++y) {
    dst.at(0, y) = src.at(0, y);
    dst.at(nx + 1, y) = src.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    dst.at(x, 0) = src.at(x, 0);
    dst.at(x, ny + 1) = src.at(x, ny + 1);
  }
}

void multiload_jacobi2d5(const stencil::C2D5& c, grid::Grid2D<double>& u,
                             long steps) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<double> tmp(nx, ny);
  copy_frame(u, tmp);
  grid::Grid2D<double>* cur = &u;
  grid::Grid2D<double>* nxt = &tmp;
  const VD cc = VD::set1(c.c), cw = VD::set1(c.w), ce = VD::set1(c.e),
           cs = VD::set1(c.s), cn = VD::set1(c.n);
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x) {
      const double* ic = cur->row(x);
      const double* is = cur->row(x - 1);
      const double* in = cur->row(x + 1);
      double* o = nxt->row(x);
      int y = 1;
      for (; y + 3 <= ny; y += 4) {
        const VD r = stencil::j2d5(cc, cw, ce, cs, cn, VD::loadu(ic + y),
                                   VD::loadu(ic + y - 1), VD::loadu(ic + y + 1),
                                   VD::loadu(is + y), VD::loadu(in + y));
        r.storeu(o + y);
      }
      for (; y <= ny; ++y)
        o[y] = stencil::j2d5(c.c, c.w, c.e, c.s, c.n, ic[y], ic[y - 1],
                             ic[y + 1], is[y], in[y]);
    }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

void multiload_jacobi2d9(const stencil::C2D9& c, grid::Grid2D<double>& u,
                             long steps) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<double> tmp(nx, ny);
  copy_frame(u, tmp);
  grid::Grid2D<double>* cur = &u;
  grid::Grid2D<double>* nxt = &tmp;
  const VD cc = VD::set1(c.c), cw = VD::set1(c.w), ce = VD::set1(c.e),
           cs = VD::set1(c.s), cn = VD::set1(c.n), csw = VD::set1(c.sw),
           cse = VD::set1(c.se), cnw = VD::set1(c.nw), cne = VD::set1(c.ne);
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x) {
      const double* ic = cur->row(x);
      const double* is = cur->row(x - 1);
      const double* in = cur->row(x + 1);
      double* o = nxt->row(x);
      int y = 1;
      for (; y + 3 <= ny; y += 4) {
        const VD r = stencil::j2d9(
            cc, cw, ce, cs, cn, csw, cse, cnw, cne, VD::loadu(ic + y),
            VD::loadu(ic + y - 1), VD::loadu(ic + y + 1), VD::loadu(is + y),
            VD::loadu(in + y), VD::loadu(is + y - 1), VD::loadu(is + y + 1),
            VD::loadu(in + y - 1), VD::loadu(in + y + 1));
        r.storeu(o + y);
      }
      for (; y <= ny; ++y)
        o[y] = stencil::j2d9(c.c, c.w, c.e, c.s, c.n, c.sw, c.se, c.nw, c.ne,
                             ic[y], ic[y - 1], ic[y + 1], is[y], in[y],
                             is[y - 1], is[y + 1], in[y - 1], in[y + 1]);
    }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

void multiload_life(const stencil::LifeRule& r,
                        grid::Grid2D<std::int32_t>& u, long steps) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<std::int32_t> tmp(nx, ny);
  copy_frame(u, tmp);
  grid::Grid2D<std::int32_t>* cur = &u;
  grid::Grid2D<std::int32_t>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x) {
      const std::int32_t* ic = cur->row(x);
      const std::int32_t* is = cur->row(x - 1);
      const std::int32_t* in = cur->row(x + 1);
      std::int32_t* o = nxt->row(x);
      int y = 1;
      for (; y + 7 <= ny; y += 8) {
        const VI sum = VI::loadu(ic + y - 1) + VI::loadu(ic + y + 1) +
                       VI::loadu(is + y - 1) + VI::loadu(is + y) +
                       VI::loadu(is + y + 1) + VI::loadu(in + y - 1) +
                       VI::loadu(in + y) + VI::loadu(in + y + 1);
        stencil::life_rule_v(r, VI::loadu(ic + y), sum).storeu(o + y);
      }
      for (; y <= ny; ++y) {
        const std::int32_t sum = ic[y - 1] + ic[y + 1] + is[y - 1] + is[y] +
                                 is[y + 1] + in[y - 1] + in[y] + in[y + 1];
        o[y] = stencil::life_rule(r, ic[y], sum);
      }
    }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

}  // namespace

TVS_BACKEND_REGISTRAR(spatial2d) {
  TVS_REGISTER(kMultiloadJacobi2D5, BlJacobi2D5Fn, multiload_jacobi2d5);
  TVS_REGISTER(kMultiloadJacobi2D9, BlJacobi2D9Fn, multiload_jacobi2d9);
  TVS_REGISTER_DT(kMultiloadLife, BlLifeFn, multiload_life,
                  dispatch::DType::kI32);
}

}  // namespace tvs::baseline
