#include "dispatch/backend_variant.hpp"
#include "util/omp_compat.hpp"

#include <utility>

#include "baseline/autovec.hpp"

namespace tvs::baseline {
namespace {

void autovec_jacobi2d5(const stencil::C2D5& c, grid::Grid2D<double>& u,
                           long steps) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<double> tmp(nx, ny);
  for (int y = 0; y <= ny + 1; ++y) {
    tmp.at(0, y) = u.at(0, y);
    tmp.at(nx + 1, y) = u.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    tmp.at(x, 0) = u.at(x, 0);
    tmp.at(x, ny + 1) = u.at(x, ny + 1);
  }
  grid::Grid2D<double>* cur = &u;
  grid::Grid2D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x) {
      const double* __restrict ic = cur->row(x);
      const double* __restrict is = cur->row(x - 1);
      const double* __restrict in = cur->row(x + 1);
      double* __restrict o = nxt->row(x);
      for (int y = 1; y <= ny; ++y)
        o[y] = c.c * ic[y] + c.w * ic[y - 1] + c.e * ic[y + 1] + c.s * is[y] +
               c.n * in[y];
    }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

void autovec_jacobi2d9(const stencil::C2D9& c, grid::Grid2D<double>& u,
                           long steps) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<double> tmp(nx, ny);
  for (int y = 0; y <= ny + 1; ++y) {
    tmp.at(0, y) = u.at(0, y);
    tmp.at(nx + 1, y) = u.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    tmp.at(x, 0) = u.at(x, 0);
    tmp.at(x, ny + 1) = u.at(x, ny + 1);
  }
  grid::Grid2D<double>* cur = &u;
  grid::Grid2D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x) {
      const double* __restrict ic = cur->row(x);
      const double* __restrict is = cur->row(x - 1);
      const double* __restrict in = cur->row(x + 1);
      double* __restrict o = nxt->row(x);
      for (int y = 1; y <= ny; ++y)
        o[y] = c.c * ic[y] + c.w * ic[y - 1] + c.e * ic[y + 1] + c.s * is[y] +
               c.n * in[y] + c.sw * is[y - 1] + c.se * is[y + 1] +
               c.nw * in[y - 1] + c.ne * in[y + 1];
    }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

void autovec_life(const stencil::LifeRule& r,
                      grid::Grid2D<std::int32_t>& u, long steps) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<std::int32_t> tmp(nx, ny);
  for (int y = 0; y <= ny + 1; ++y) {
    tmp.at(0, y) = u.at(0, y);
    tmp.at(nx + 1, y) = u.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    tmp.at(x, 0) = u.at(x, 0);
    tmp.at(x, ny + 1) = u.at(x, ny + 1);
  }
  grid::Grid2D<std::int32_t>* cur = &u;
  grid::Grid2D<std::int32_t>* nxt = &tmp;
  const std::int32_t b = r.b, s1 = r.s1, s2 = r.s2;
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x) {
      const std::int32_t* __restrict ic = cur->row(x);
      const std::int32_t* __restrict is = cur->row(x - 1);
      const std::int32_t* __restrict in = cur->row(x + 1);
      std::int32_t* __restrict o = nxt->row(x);
      for (int y = 1; y <= ny; ++y) {
        const std::int32_t sum = ic[y - 1] + ic[y + 1] + is[y - 1] + is[y] +
                                 is[y + 1] + in[y - 1] + in[y] + in[y + 1];
        // Branch-free form so the compiler can vectorize with masks.
        const std::int32_t born = static_cast<std::int32_t>(sum == b);
        const std::int32_t surv =
            static_cast<std::int32_t>(sum == s1 || sum == s2);
        o[y] = ic[y] != 0 ? surv : born;
      }
    }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

template <class T, class RowFn>
void par_steps2d(grid::Grid2D<T>& u, long steps, RowFn row_fn) {
  const int nx = u.nx(), ny = u.ny();
  grid::Grid2D<T> tmp(nx, ny);
  for (int y = 0; y <= ny + 1; ++y) {
    tmp.at(0, y) = u.at(0, y);
    tmp.at(nx + 1, y) = u.at(nx + 1, y);
  }
  for (int x = 1; x <= nx; ++x) {
    tmp.at(x, 0) = u.at(x, 0);
    tmp.at(x, ny + 1) = u.at(x, ny + 1);
  }
  grid::Grid2D<T>* cur = &u;
  grid::Grid2D<T>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
#pragma omp parallel for schedule(static)
    for (int x = 1; x <= nx; ++x) row_fn(*cur, *nxt, x);
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) u.at(x, y) = cur->at(x, y);
}

void par_autovec_jacobi2d5(const stencil::C2D5& c, grid::Grid2D<double>& u,
                               long steps) {
  const int ny = u.ny();
  par_steps2d(u, steps, [&, ny](const grid::Grid2D<double>& in,
                                grid::Grid2D<double>& out, int x) {
    const double* __restrict ic = in.row(x);
    const double* __restrict is = in.row(x - 1);
    const double* __restrict inn = in.row(x + 1);
    double* __restrict o = out.row(x);
    for (int y = 1; y <= ny; ++y)
      o[y] = c.c * ic[y] + c.w * ic[y - 1] + c.e * ic[y + 1] + c.s * is[y] +
             c.n * inn[y];
  });
}

void par_autovec_jacobi2d9(const stencil::C2D9& c, grid::Grid2D<double>& u,
                               long steps) {
  const int ny = u.ny();
  par_steps2d(u, steps, [&, ny](const grid::Grid2D<double>& in,
                                grid::Grid2D<double>& out, int x) {
    const double* __restrict ic = in.row(x);
    const double* __restrict is = in.row(x - 1);
    const double* __restrict inn = in.row(x + 1);
    double* __restrict o = out.row(x);
    for (int y = 1; y <= ny; ++y)
      o[y] = c.c * ic[y] + c.w * ic[y - 1] + c.e * ic[y + 1] + c.s * is[y] +
             c.n * inn[y] + c.sw * is[y - 1] + c.se * is[y + 1] +
             c.nw * inn[y - 1] + c.ne * inn[y + 1];
  });
}

void par_autovec_life(const stencil::LifeRule& r,
                          grid::Grid2D<std::int32_t>& u, long steps) {
  const int ny = u.ny();
  const std::int32_t b = r.b, s1 = r.s1, s2 = r.s2;
  par_steps2d(u, steps, [&, ny](const grid::Grid2D<std::int32_t>& in,
                                grid::Grid2D<std::int32_t>& out, int x) {
    const std::int32_t* __restrict ic = in.row(x);
    const std::int32_t* __restrict is = in.row(x - 1);
    const std::int32_t* __restrict inn = in.row(x + 1);
    std::int32_t* __restrict o = out.row(x);
    for (int y = 1; y <= ny; ++y) {
      const std::int32_t sum = ic[y - 1] + ic[y + 1] + is[y - 1] + is[y] +
                               is[y + 1] + inn[y - 1] + inn[y] + inn[y + 1];
      const std::int32_t born = static_cast<std::int32_t>(sum == b);
      const std::int32_t surv = static_cast<std::int32_t>(sum == s1 || sum == s2);
      o[y] = ic[y] != 0 ? surv : born;
    }
  });
}

}  // namespace

TVS_BACKEND_REGISTRAR(autovec2d) {
  TVS_REGISTER(kAutovecJacobi2D5, BlJacobi2D5Fn, autovec_jacobi2d5);
  TVS_REGISTER(kAutovecJacobi2D9, BlJacobi2D9Fn, autovec_jacobi2d9);
  TVS_REGISTER_DT(kAutovecLife, BlLifeFn, autovec_life,
                  dispatch::DType::kI32);
  TVS_REGISTER(kParAutovecJacobi2D5, BlJacobi2D5Fn, par_autovec_jacobi2d5);
  TVS_REGISTER(kParAutovecJacobi2D9, BlJacobi2D9Fn, par_autovec_jacobi2d9);
  TVS_REGISTER_DT(kParAutovecLife, BlLifeFn, par_autovec_life,
                  dispatch::DType::kI32);
}

}  // namespace tvs::baseline
