// Multi-load spatial vectorization, 3D7P Jacobi.
#include "dispatch/backend_variant.hpp"
#include <utility>

#include "baseline/spatial.hpp"
#include "simd/vec.hpp"

namespace tvs::baseline {
namespace {

using VD = simd::NativeVec<double, 4>;

void multiload_jacobi3d7(const stencil::C3D7& c, grid::Grid3D<double>& u,
                             long steps) {
  const int nx = u.nx(), ny = u.ny(), nz = u.nz();
  grid::Grid3D<double> tmp(nx, ny, nz);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y)
      for (int z = 0; z <= nz + 1; ++z)
        if (x == 0 || x == nx + 1 || y == 0 || y == ny + 1 || z == 0 ||
            z == nz + 1)
          tmp.at(x, y, z) = u.at(x, y, z);
  grid::Grid3D<double>* cur = &u;
  grid::Grid3D<double>* nxt = &tmp;
  const VD cc = VD::set1(c.c), cw = VD::set1(c.w), ce = VD::set1(c.e),
           cs = VD::set1(c.s), cn = VD::set1(c.n), cb = VD::set1(c.b),
           cf = VD::set1(c.f);
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x)
      for (int y = 1; y <= ny; ++y) {
        const double* ic = cur->line(x, y);
        const double* iw = cur->line(x, y - 1);
        const double* ie = cur->line(x, y + 1);
        const double* ib = cur->line(x - 1, y);
        const double* if_ = cur->line(x + 1, y);
        double* o = nxt->line(x, y);
        int z = 1;
        for (; z + 3 <= nz; z += 4) {
          const VD r = stencil::j3d7(cc, cw, ce, cs, cn, cb, cf,
                                     VD::loadu(ic + z), VD::loadu(ic + z - 1),
                                     VD::loadu(ic + z + 1), VD::loadu(iw + z),
                                     VD::loadu(ie + z), VD::loadu(ib + z),
                                     VD::loadu(if_ + z));
          r.storeu(o + z);
        }
        for (; z <= nz; ++z)
          o[z] = stencil::j3d7(c.c, c.w, c.e, c.s, c.n, c.b, c.f, ic[z],
                               ic[z - 1], ic[z + 1], iw[z], ie[z], ib[z],
                               if_[z]);
      }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y)
        for (int z = 0; z <= nz + 1; ++z) u.at(x, y, z) = cur->at(x, y, z);
}

}  // namespace

TVS_BACKEND_REGISTRAR(spatial3d) {
  TVS_REGISTER(kMultiloadJacobi3D7, BlJacobi3D7Fn, multiload_jacobi3d7);
}

}  // namespace tvs::baseline
