// Dimension-Lifted Transpose (DLT) vectorization of the 1D3P Jacobi stencil
// (Henretty et al., CC'11; §2.2 of the paper).  The interior is viewed as a
// vl x L matrix (L = NX/vl) and transposed: vector c then holds
// {a[1+c], a[1+c+L], a[1+c+2L], a[1+c+3L]}, so neighbouring output vectors
// share no elements and need no shuffles except at the two seams (c = 0 and
// c = L-1).  The transposes before/after the time loop are the overhead the
// paper's small-size results show.
#include "dispatch/backend_variant.hpp"
#include <utility>
#include <vector>

#include "baseline/spatial.hpp"
#include "grid/aligned.hpp"
#include "simd/vec.hpp"

namespace tvs::baseline {
namespace {

using V = simd::NativeVec<double, 4>;

void dlt_jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u,
                       long steps) {
  const int nx = u.nx();
  const int L = nx / 4;
  if (L < 2) {  // too small for the lifted layout; plain scalar
    grid::Grid1D<double> tmp(nx);
    tmp.at(0) = u.at(0);
    tmp.at(nx + 1) = u.at(nx + 1);
    grid::Grid1D<double>* cur = &u;
    grid::Grid1D<double>* nxt = &tmp;
    for (long t = 0; t < steps; ++t) {
      for (int x = 1; x <= nx; ++x)
        nxt->at(x) = stencil::j1d3(c.w, c.c, c.e, cur->at(x - 1), cur->at(x),
                                   cur->at(x + 1));
      std::swap(cur, nxt);
    }
    if (cur != &u)
      for (int x = 0; x <= nx + 1; ++x) u.at(x) = cur->at(x);
    return;
  }

  // Lifted ping-pong buffers: element (c, r) at index c*4 + r.
  grid::AlignedBuffer<double> bufa(static_cast<std::size_t>(L) * 4);
  grid::AlignedBuffer<double> bufb(static_cast<std::size_t>(L) * 4);
  for (int col = 0; col < L; ++col)
    for (int r = 0; r < 4; ++r) bufa[static_cast<std::size_t>(col) * 4 + r] = u.at(1 + r * L + col);

  // Remainder region x in [4L+1, NX] stays in the main array (ping-pong).
  grid::Grid1D<double> rem(nx);
  for (int x = 4 * L; x <= nx + 1; ++x) rem.at(x) = u.at(x);

  double* curb = bufa.data();
  double* nxtb = bufb.data();
  grid::Grid1D<double>* cur = &u;
  grid::Grid1D<double>* nxt = &rem;
  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);

  for (long t = 0; t < steps; ++t) {
    const V first = V::load(curb);
    const V last = V::load(curb + static_cast<std::size_t>(L - 1) * 4);
    // Seam c = 0: west lanes are {a[0], last row-ends...} = last shifted.
    V west = simd::shift_in_low(last, cur->at(0));
    V mid = first;
    for (int col = 0; col < L - 1; ++col) {
      const V east = V::load(curb + static_cast<std::size_t>(col + 1) * 4);
      stencil::j1d3(cw, cc, ce, west, mid, east)
          .store(nxtb + static_cast<std::size_t>(col) * 4);
      west = mid;
      mid = east;
    }
    // Seam c = L-1: east lanes are {row starts..., a[4L+1]}.
    V east = simd::rotate_down(first);
    east = east.template insert<3>(cur->at(4 * L + 1));
    stencil::j1d3(cw, cc, ce, west, mid, east)
        .store(nxtb + static_cast<std::size_t>(L - 1) * 4);
    // Remainder region, scalar; its west chain starts at a[4L] = lane 3 of
    // the last lifted vector.
    double westv = last.template extract<3>();
    for (int x = 4 * L + 1; x <= nx; ++x) {
      nxt->at(x) = stencil::j1d3(c.w, c.c, c.e, westv, cur->at(x), cur->at(x + 1));
      westv = cur->at(x);
    }
    nxt->at(nx + 1) = cur->at(nx + 1);
    nxt->at(0) = cur->at(0);
    std::swap(curb, nxtb);
    std::swap(cur, nxt);
  }

  // Transpose back and merge the remainder into u.
  if (cur != &u)
    for (int x = 4 * L; x <= nx + 1; ++x) u.at(x) = cur->at(x);
  for (int col = 0; col < L; ++col)
    for (int r = 0; r < 4; ++r)
      u.at(1 + r * L + col) = curb[static_cast<std::size_t>(col) * 4 + r];
}

}  // namespace

TVS_BACKEND_REGISTRAR(dlt1d) {
  TVS_REGISTER(kDltJacobi1D3, BlJacobi1DFn, dlt_jacobi1d3);
}

}  // namespace tvs::baseline
