// Data-reorganization spatial vectorization of the 1D3P Jacobi stencil
// (§2.2): each input element is loaded exactly once with aligned vector
// loads; the west/east shifted vectors are assembled with in-register
// shuffles (2 lane-crossing + 2 in-lane per output vector with AVX2).
#include "dispatch/backend_variant.hpp"
#include "baseline/spatial.hpp"
#include "simd/vec.hpp"

namespace tvs::baseline {
namespace {


#if defined(__AVX2__)
// {p3, c0, c1, c2}: previous block's top + current block shifted up.
inline simd::VecD4 west_of(simd::VecD4 prev, simd::VecD4 cur) {
  const __m256d t = _mm256_permute2f128_pd(prev.r, cur.r, 0x21);  // {p2,p3,c0,c1}
  return simd::VecD4{_mm256_shuffle_pd(t, cur.r, 0x5)};           // {p3,c0,c1,c2}
}
// {c1, c2, c3, n0}
inline simd::VecD4 east_of(simd::VecD4 cur, simd::VecD4 next) {
  const __m256d t = _mm256_permute2f128_pd(cur.r, next.r, 0x21);  // {c2,c3,n0,n1}
  return simd::VecD4{_mm256_shuffle_pd(cur.r, t, 0x5)};           // {c1,c2,c3,n0}
}
using V = simd::VecD4;
#else
using V = simd::ScalarVec<double, 4>;
inline V west_of(V prev, V cur) {
  V r;
  r.v[0] = prev.v[3];
  r.v[1] = cur.v[0];
  r.v[2] = cur.v[1];
  r.v[3] = cur.v[2];
  return r;
}
inline V east_of(V cur, V next) {
  V r;
  r.v[0] = cur.v[1];
  r.v[1] = cur.v[2];
  r.v[2] = cur.v[3];
  r.v[3] = next.v[0];
  return r;
}
#endif


void reorg_jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u,
                         long steps) {
  const int nx = u.nx();
  grid::Grid1D<double> tmp(nx);
  tmp.at(0) = u.at(0);
  tmp.at(nx + 1) = u.at(nx + 1);
  grid::Grid1D<double>* cur_g = &u;
  grid::Grid1D<double>* nxt_g = &tmp;
  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);
  for (long t = 0; t < steps; ++t) {
    const double* in = cur_g->p();
    double* out = nxt_g->p();
    int x = 1;
    if (nx >= 12) {
      // Keep three consecutive blocks in registers; each block is loaded
      // exactly once per time step.
      V prev = V::loadu(in + x - 4);  // contains in[x-1] at its top lane
      V cur = V::loadu(in + x);
      for (; x + 7 <= nx; x += 4) {
        const V next = V::loadu(in + x + 4);
        const V w = west_of(prev, cur);
        const V e = east_of(cur, next);
        stencil::j1d3(cw, cc, ce, w, cur, e).storeu(out + x);
        prev = cur;
        cur = next;
      }
    }
    for (; x <= nx; ++x)
      out[x] = stencil::j1d3(c.w, c.c, c.e, in[x - 1], in[x], in[x + 1]);
    std::swap(cur_g, nxt_g);
  }
  if (cur_g != &u)
    for (int x = 0; x <= nx + 1; ++x) u.at(x) = cur_g->at(x);
}

}  // namespace

TVS_BACKEND_REGISTRAR(reorg1d) {
  TVS_REGISTER(kReorgJacobi1D3, BlJacobi1DFn, reorg_jacobi1d3);
}

}  // namespace tvs::baseline
