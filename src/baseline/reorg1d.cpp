// Data-reorganization spatial vectorization of the 1D3P Jacobi stencil
// (§2.2): each input element is loaded exactly once with aligned vector
// loads; the west/east shifted vectors are assembled with in-register
// shuffles (2 lane-crossing + 2 in-lane per output vector with AVX2).
#include "dispatch/backend_variant.hpp"
#include "baseline/spatial.hpp"
#include "simd/reorg.hpp"

namespace tvs::baseline {
namespace {

// The shifted-view assembly lives in simd/reorg.hpp (west_neighbors /
// east_neighbors) with the block kept at 4 double lanes regardless of the
// backend ceiling: the scheme's shuffle counts are quoted for AVX2 blocks.
using V = simd::NativeVec<double, 4>;


void reorg_jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u,
                         long steps) {
  const int nx = u.nx();
  grid::Grid1D<double> tmp(nx);
  tmp.at(0) = u.at(0);
  tmp.at(nx + 1) = u.at(nx + 1);
  grid::Grid1D<double>* cur_g = &u;
  grid::Grid1D<double>* nxt_g = &tmp;
  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);
  for (long t = 0; t < steps; ++t) {
    const double* in = cur_g->p();
    double* out = nxt_g->p();
    int x = 1;
    if (nx >= 12) {
      // Keep three consecutive blocks in registers; each block is loaded
      // exactly once per time step.
      V prev = V::loadu(in + x - 4);  // contains in[x-1] at its top lane
      V cur = V::loadu(in + x);
      for (; x + 7 <= nx; x += 4) {
        const V next = V::loadu(in + x + 4);
        const V w = simd::west_neighbors(prev, cur);
        const V e = simd::east_neighbors(cur, next);
        stencil::j1d3(cw, cc, ce, w, cur, e).storeu(out + x);
        prev = cur;
        cur = next;
      }
    }
    for (; x <= nx; ++x)
      out[x] = stencil::j1d3(c.w, c.c, c.e, in[x - 1], in[x], in[x + 1]);
    std::swap(cur_g, nxt_g);
  }
  if (cur_g != &u)
    for (int x = 0; x <= nx + 1; ++x) u.at(x) = cur_g->at(x);
}

}  // namespace

TVS_BACKEND_REGISTRAR(reorg1d) {
  TVS_REGISTER(kReorgJacobi1D3, BlJacobi1DFn, reorg_jacobi1d3);
}

}  // namespace tvs::baseline
