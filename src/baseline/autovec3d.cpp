#include "dispatch/backend_variant.hpp"
#include "util/omp_compat.hpp"

#include <utility>

#include "baseline/autovec.hpp"

namespace tvs::baseline {
namespace {

void autovec_jacobi3d7(const stencil::C3D7& c, grid::Grid3D<double>& u,
                           long steps) {
  const int nx = u.nx(), ny = u.ny(), nz = u.nz();
  grid::Grid3D<double> tmp(nx, ny, nz);
  // Copy boundary faces once; interior boundaries never change.
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y)
      for (int z = 0; z <= nz + 1; ++z)
        if (x == 0 || x == nx + 1 || y == 0 || y == ny + 1 || z == 0 ||
            z == nz + 1)
          tmp.at(x, y, z) = u.at(x, y, z);
  grid::Grid3D<double>* cur = &u;
  grid::Grid3D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    for (int x = 1; x <= nx; ++x)
      for (int y = 1; y <= ny; ++y) {
        const double* __restrict ic = cur->line(x, y);
        const double* __restrict iw = cur->line(x, y - 1);
        const double* __restrict ie = cur->line(x, y + 1);
        const double* __restrict ib = cur->line(x - 1, y);
        const double* __restrict if_ = cur->line(x + 1, y);
        double* __restrict o = nxt->line(x, y);
        for (int z = 1; z <= nz; ++z)
          o[z] = c.c * ic[z] + c.w * ic[z - 1] + c.e * ic[z + 1] + c.s * iw[z] +
                 c.n * ie[z] + c.b * ib[z] + c.f * if_[z];
      }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y)
        for (int z = 0; z <= nz + 1; ++z) u.at(x, y, z) = cur->at(x, y, z);
}

void par_autovec_jacobi3d7(const stencil::C3D7& c, grid::Grid3D<double>& u,
                               long steps) {
  const int nx = u.nx(), ny = u.ny(), nz = u.nz();
  grid::Grid3D<double> tmp(nx, ny, nz);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y)
      for (int z = 0; z <= nz + 1; ++z)
        if (x == 0 || x == nx + 1 || y == 0 || y == ny + 1 || z == 0 ||
            z == nz + 1)
          tmp.at(x, y, z) = u.at(x, y, z);
  grid::Grid3D<double>* cur = &u;
  grid::Grid3D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
#pragma omp parallel for schedule(static)
    for (int x = 1; x <= nx; ++x)
      for (int y = 1; y <= ny; ++y) {
        const double* __restrict ic = cur->line(x, y);
        const double* __restrict iw = cur->line(x, y - 1);
        const double* __restrict ie = cur->line(x, y + 1);
        const double* __restrict ib = cur->line(x - 1, y);
        const double* __restrict if_ = cur->line(x + 1, y);
        double* __restrict o = nxt->line(x, y);
        for (int z = 1; z <= nz; ++z)
          o[z] = c.c * ic[z] + c.w * ic[z - 1] + c.e * ic[z + 1] +
                 c.s * iw[z] + c.n * ie[z] + c.b * ib[z] + c.f * if_[z];
      }
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y)
        for (int z = 0; z <= nz + 1; ++z) u.at(x, y, z) = cur->at(x, y, z);
}

}  // namespace

TVS_BACKEND_REGISTRAR(autovec3d) {
  TVS_REGISTER(kAutovecJacobi3D7, BlJacobi3D7Fn, autovec_jacobi3d7);
  TVS_REGISTER(kParAutovecJacobi3D7, BlJacobi3D7Fn, par_autovec_jacobi3d7);
}

}  // namespace tvs::baseline
