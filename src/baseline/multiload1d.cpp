// Multi-load spatial vectorization of the 1D3P Jacobi stencil
// (Algorithm 2 of the paper): three overlapping vector loads per output
// vector, two of them unaligned — the data-alignment conflict in its
// rawest form.
#include "dispatch/backend_variant.hpp"
#include "baseline/spatial.hpp"
#include "simd/vec.hpp"

namespace tvs::baseline {
namespace {

using V = simd::NativeVec<double, 4>;

void multiload_jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u,
                             long steps) {
  const int nx = u.nx();
  grid::Grid1D<double> tmp(nx);
  tmp.at(0) = u.at(0);
  tmp.at(nx + 1) = u.at(nx + 1);
  grid::Grid1D<double>* cur = &u;
  grid::Grid1D<double>* nxt = &tmp;
  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);
  for (long t = 0; t < steps; ++t) {
    const double* in = cur->p();
    double* out = nxt->p();
    int x = 1;
    for (; x + 3 <= nx; x += 4) {
      const V w = V::loadu(in + x - 1);
      const V ctr = V::loadu(in + x);
      const V e = V::loadu(in + x + 1);
      stencil::j1d3(cw, cc, ce, w, ctr, e).storeu(out + x);
    }
    for (; x <= nx; ++x)
      out[x] = stencil::j1d3(c.w, c.c, c.e, in[x - 1], in[x], in[x + 1]);
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x) u.at(x) = cur->at(x);
}

}  // namespace

TVS_BACKEND_REGISTRAR(multiload1d) {
  TVS_REGISTER(kMultiloadJacobi1D3, BlJacobi1DFn, multiload_jacobi1d3);
}

}  // namespace tvs::baseline
