#include "dispatch/backend_variant.hpp"
#include "util/omp_compat.hpp"

#include <utility>

#include "baseline/autovec.hpp"

namespace tvs::baseline {
namespace {

void autovec_jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u,
                           long steps) {
  const int nx = u.nx();
  grid::Grid1D<double> tmp(nx);
  tmp.at(0) = u.at(0);
  tmp.at(nx + 1) = u.at(nx + 1);
  grid::Grid1D<double>* cur = &u;
  grid::Grid1D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    const double* __restrict in = cur->p();
    double* __restrict out = nxt->p();
    for (int x = 1; x <= nx; ++x)
      out[x] = c.w * in[x - 1] + c.c * in[x] + c.e * in[x + 1];
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x) u.at(x) = cur->at(x);
}

void autovec_jacobi1d5(const stencil::C1D5& c, grid::Grid1D<double>& u,
                           long steps) {
  const int nx = u.nx();
  grid::Grid1D<double> tmp(nx);
  for (int x = -1; x <= 0; ++x) tmp.at(x) = u.at(x);
  for (int x = nx + 1; x <= nx + 2; ++x) tmp.at(x) = u.at(x);
  grid::Grid1D<double>* cur = &u;
  grid::Grid1D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    const double* __restrict in = cur->p();
    double* __restrict out = nxt->p();
    for (int x = 1; x <= nx; ++x)
      out[x] = c.w2 * in[x - 2] + c.w1 * in[x - 1] + c.c * in[x] +
               c.e1 * in[x + 1] + c.e2 * in[x + 2];
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = -1; x <= nx + 2; ++x) u.at(x) = cur->at(x);
}

void par_autovec_jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u,
                               long steps) {
  const int nx = u.nx();
  grid::Grid1D<double> tmp(nx);
  tmp.at(0) = u.at(0);
  tmp.at(nx + 1) = u.at(nx + 1);
  grid::Grid1D<double>* cur = &u;
  grid::Grid1D<double>* nxt = &tmp;
  for (long t = 0; t < steps; ++t) {
    const double* __restrict in = cur->p();
    double* __restrict out = nxt->p();
#pragma omp parallel for schedule(static)
    for (int x = 1; x <= nx; ++x)
      out[x] = c.w * in[x - 1] + c.c * in[x] + c.e * in[x + 1];
    std::swap(cur, nxt);
  }
  if (cur != &u)
    for (int x = 0; x <= nx + 1; ++x) u.at(x) = cur->at(x);
}

}  // namespace

TVS_BACKEND_REGISTRAR(autovec1d) {
  TVS_REGISTER(kAutovecJacobi1D3, BlJacobi1DFn, autovec_jacobi1d3);
  TVS_REGISTER(kAutovecJacobi1D5, BlJacobi1D5Fn, autovec_jacobi1d5);
  TVS_REGISTER(kParAutovecJacobi1D3, BlJacobi1DFn, par_autovec_jacobi1d3);
}

}  // namespace tvs::baseline
