// Explicit spatial-vectorization baselines (§2.2 of the paper):
//
//   * multi-load      — every shifted input vector is a separate (mostly
//     unaligned) vector load; what production compilers generate;
//   * data reorganization — each input element is loaded once with aligned
//     loads and the shifted vectors are assembled with in-register shuffles;
//   * DLT             — Henretty et al.'s dimension-lifted transpose: the 1D
//     array is viewed as a vl x (N/vl) matrix and transposed, after which
//     neighbouring outputs need no shuffles at all except at the seams.
//
// All of these use the canonical fma evaluation order, so (unlike the
// `autovec` TU) they match the scalar oracle bit for bit.
#pragma once

#include <cstdint>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::baseline {

// ---- 1D -------------------------------------------------------------------
void multiload_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                             long steps);
void reorg_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                         long steps);
void dlt_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                       long steps);

// ---- 2D / 3D ---------------------------------------------------------------
void multiload_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                             long steps);
void multiload_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                             long steps);
void multiload_life_run(const stencil::LifeRule& r,
                        grid::Grid2D<std::int32_t>& u, long steps);
void multiload_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                             long steps);

}  // namespace tvs::baseline
