// Eight-lane (vl = 8) variants of the 2D/3D Jacobi engines: one temporal
// tile advances eight time steps.  Compiled for the scalar backend
// (ScalarVec<double, 8>) and the AVX-512 backend (VecD8) — there is no
// 8-wide double type under AVX2, so the avx2 backend does not build this
// module and the vl8 ids resolve downward to the scalar variant there.
//
// Under the AVX-512 backend this module additionally serves the *standard*
// 2D/3D Jacobi ids: double x 8 is the natural AVX-512 vector shape, and the
// temporal scheme's results are bit-identical for any vl (the tv_wide suite
// checks exactly that), so the deeper tile is purely a perf choice.
#include "dispatch/backend_variant.hpp"
#include "tv/functors2d.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv2d_impl.hpp"
#include "tv/tv3d_impl.hpp"

namespace tvs::tv {
namespace {

using V8 = simd::NativeVec<double, 8>;  // VecD8 or the scalar fallback

void jacobi2d5_vl8(const stencil::C2D5& c, grid::Grid2D<double>& u, long steps,
                   int stride) {
  Workspace2D<V8, double> ws;
  tv2d_run(J2D5F<V8>(c), u, steps, stride, ws);
}

void jacobi2d9_vl8(const stencil::C2D9& c, grid::Grid2D<double>& u, long steps,
                   int stride) {
  Workspace2D<V8, double> ws;
  tv2d_run(J2D9F<V8>(c), u, steps, stride, ws);
}

void jacobi3d7_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u, long steps,
                   int stride) {
  Workspace3D<V8, double> ws;
  tv3d_run(J3D7F<V8>(c), u, steps, stride, ws);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv_wide) {
  TVS_REGISTER(kTvJacobi2D5Vl8, TvJacobi2D5Fn, jacobi2d5_vl8);
  TVS_REGISTER(kTvJacobi2D9Vl8, TvJacobi2D9Fn, jacobi2d9_vl8);
  TVS_REGISTER(kTvJacobi3D7Vl8, TvJacobi3D7Fn, jacobi3d7_vl8);
#if TVS_BACKEND_LEVEL == 2
  TVS_REGISTER(kTvJacobi2D5, TvJacobi2D5Fn, jacobi2d5_vl8);
  TVS_REGISTER(kTvJacobi2D9, TvJacobi2D9Fn, jacobi2d9_vl8);
  TVS_REGISTER(kTvJacobi3D7, TvJacobi3D7Fn, jacobi3d7_vl8);
#endif
}

}  // namespace tvs::tv
