// Eight-lane (AVX-512 when available) variants of the 2D/3D Jacobi engines:
// one temporal tile advances eight time steps.  The paper's future-work
// direction; compare against the vl = 4 kernels with bench/ablation_vl.
#include "tv/functors2d.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv2d_impl.hpp"
#include "tv/tv3d_impl.hpp"
#include "tv/tv2d_wide.hpp"

namespace tvs::tv {

namespace {
using V8 = simd::NativeVec<double, 8>;  // VecD8 or the scalar fallback
}

void tv_jacobi2d5_run_vl8(const stencil::C2D5& c, grid::Grid2D<double>& u,
                          long steps, int stride) {
  Workspace2D<V8, double> ws;
  tv2d_run(J2D5F<V8>(c), u, steps, stride, ws);
}

void tv_jacobi2d9_run_vl8(const stencil::C2D9& c, grid::Grid2D<double>& u,
                          long steps, int stride) {
  Workspace2D<V8, double> ws;
  tv2d_run(J2D9F<V8>(c), u, steps, stride, ws);
}

void tv_jacobi3d7_run_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u,
                          long steps, int stride) {
  Workspace3D<V8, double> ws;
  tv3d_run(J3D7F<V8>(c), u, steps, stride, ws);
}

}  // namespace tvs::tv
