// Temporal vectorization of the 1D3P *Gauss-Seidel* stencil (§3.4).
//
// Gauss-Seidel updates in place, sweeping x ascending:
//
//     a[x] <- cw*a[x-1](newest) + cc*a[x](old) + ce*a[x+1](old)
//
// Every loop of the naive code carries a dependence, so no spatial
// vectorization is legal — this scheme is, to the paper's knowledge, the
// first SIMD execution of Gauss-Seidel stencils.  The temporal layout is
// the same as the Jacobi kernel's (lane k = level k, top position p):
//
//   input  u(p) = [ lvl0 @ p+3s , lvl1 @ p+2s , lvl2 @ p+s , lvl3 @ p ]
//   output w(x) = [ lvl1 @ x+3s , lvl2 @ x+2s , lvl3 @ x+s , lvl4 @ x ]
//
// The only difference from Jacobi: the *newest west* operand of lane k,
// lvl(k+1) @ (x-1 + (3-k)s), is exactly lane k of the previous iteration's
// output vector — so the (dt=0, dx=-1) dependence is satisfied by keeping
// w as a loop-carried register (the paper: "the temporal vectorization uses
// their corresponding output vectors").  Legality needs s >= 2 (old east
// dependence (1,1)); the serial w chain is inherent to Gauss-Seidel.
//
// Structure (prologue / gather / steady / flush / epilogue) mirrors
// tv1d_impl.hpp; the scalar wedges chain the newest-west value exactly like
// the in-place scalar sweep, so results are bit-identical to the oracle.
#pragma once

#include <array>
#include <cassert>

#include "grid/grid1d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tv/tv1d_impl.hpp"  // Workspace1D, kMaxStride

namespace tvs::tv {

namespace detail {

// One scalar Gauss-Seidel sweep over [x0, x1] where the west neighbour of
// x0 comes from `west0`, old values are read through `old_at` and results
// written through `put`.  (Helper for the wedges; the steady state never
// calls this.)
template <class OldAt, class Put>
inline void gs_scalar_range(const stencil::C1D3& c, double west0, int x0,
                            int x1, OldAt old_at, Put put) {
  double west = west0;
  for (int x = x0; x <= x1; ++x) {
    const double v =
        stencil::gs1d3(c.w, c.c, c.e, west, old_at(x), old_at(x + 1));
    put(x, v);
    west = v;
  }
}

}  // namespace detail

// One 4-sweep temporally vectorized Gauss-Seidel tile, in place on `a`.
// Requires s >= 2 and nx >= 4s.
template <class V>
void tv_gs1d_tile(const stencil::C1D3& c, double* a, int nx, int s,
                  Workspace1D& ws) {
  const int M = s;  // ring slots: live positions [x, x+s-1]
  assert(s >= 2 && s <= kMaxStride && nx >= 4 * s);

  double* l1 = ws.left.data();
  double* l2 = l1 + (3 * s + 2);
  double* l3 = l2 + (3 * s + 2);
  const int rbase = nx - 4 * s - 1;
  const int rlen = 4 * s + 1 + 4;
  double* r1 = ws.right.data();
  double* r2 = r1 + rlen;
  double* r3 = r2 + rlen;

  const auto lv = [&](const double* lev, int x) -> double {
    return x <= 0 ? a[x] : lev[x];
  };

  // ---- prologue: levels 1..3 on the left trapezoid ------------------------
  detail::gs_scalar_range(
      c, /*west0=*/a[0], 1, 3 * s, [&](int x) { return a[x]; },
      [&](int x, double v) { l1[x] = v; });
  detail::gs_scalar_range(
      c, a[0], 1, 2 * s, [&](int x) { return lv(l1, x); },
      [&](int x, double v) { l2[x] = v; });
  detail::gs_scalar_range(
      c, a[0], 1, s, [&](int x) { return lv(l2, x); },
      [&](int x, double v) { l3[x] = v; });

  // ---- gather: ring positions [1, s] and the initial w ---------------------
  std::array<V, kMaxStride + 2> ring;
  const auto slot = [M](int p) { return ((p % M) + M) % M; };
  for (int p = 1; p <= s; ++p) {
    alignas(64) double lanes[4];
    lanes[0] = a[p + 3 * s];
    lanes[1] = lv(l1, p + 2 * s);
    lanes[2] = lv(l2, p + s);
    lanes[3] = lv(l3, p);
    ring[static_cast<std::size_t>(slot(p))] = V::load(lanes);
  }
  V w;  // lane k = lvl(k+1) @ (x-1 + (3-k)s); at x=1 these are the prologue tips
  {
    alignas(64) double lanes[4];
    lanes[0] = lv(l1, 3 * s);
    lanes[1] = lv(l2, 2 * s);
    lanes[2] = lv(l3, s);
    lanes[3] = a[0];
    w = V::load(lanes);
  }

  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);

  // ---- steady loop ---------------------------------------------------------
  const int x_end = nx + 1 - 4 * s;
  int ic = slot(1);  // slot of the center vector (position x)
  const auto inc = [M](int i) { return i + 1 == M ? 0 : i + 1; };
  int x = 1;
  for (; x + 3 <= x_end; x += 4) {
    V bot = V::loadu(a + x + 4 * s);
    V w0, w1, w2, w3;
    {
      const int ie = inc(ic);
      w0 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w0, bot);
      bot = simd::rotate_down(bot);
      w = w0;
      ic = ie;
    }
    {
      const int ie = inc(ic);
      w1 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w1, bot);
      bot = simd::rotate_down(bot);
      w = w1;
      ic = ie;
    }
    {
      const int ie = inc(ic);
      w2 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w2, bot);
      bot = simd::rotate_down(bot);
      w = w2;
      ic = ie;
    }
    {
      const int ie = inc(ic);
      w3 = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(w3, bot);
      w = w3;
      ic = ie;
    }
    simd::collect_tops(w0, w1, w2, w3).storeu(a + x);
  }
  for (; x <= x_end; ++x) {
    const int ie = inc(ic);
    const V wv = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
    ring[ic] = simd::shift_in_low(wv, a[x + 4 * s]);
    a[x] = simd::top_lane(wv);
    w = wv;
    ic = ie;
  }

  // ---- flush ring lanes into the right scratch -----------------------------
  const auto rput = [&](double* lev, int q, double v) {
    if (q >= rbase + 1 && q <= nx) lev[q - rbase] = v;
  };
  for (int p = x_end + 1; p <= x_end + s; ++p) {
    const V& u = ring[static_cast<std::size_t>(slot(p))];
    rput(r1, p + 2 * s, u[1]);
    rput(r2, p + s, u[2]);
    rput(r3, p, u[3]);
  }

  const auto rv = [&](const double* lev, int q) -> double {
    return q > nx ? a[q] : lev[q - rbase];
  };

  // ---- epilogue (levels in order; lvl4 writes to `a` last) -----------------
  detail::gs_scalar_range(
      c, rv(r1, nx + 1 - s), nx + 2 - s, nx, [&](int q) { return a[q]; },
      [&](int q, double v) { r1[q - rbase] = v; });
  detail::gs_scalar_range(
      c, rv(r2, nx + 1 - 2 * s), nx + 2 - 2 * s, nx,
      [&](int q) { return rv(r1, q); },
      [&](int q, double v) { r2[q - rbase] = v; });
  detail::gs_scalar_range(
      c, rv(r3, nx + 1 - 3 * s), nx + 2 - 3 * s, nx,
      [&](int q) { return rv(r2, q); },
      [&](int q, double v) { r3[q - rbase] = v; });
  detail::gs_scalar_range(
      c, a[nx + 1 - 4 * s], nx + 2 - 4 * s, nx,
      [&](int q) { return rv(r3, q); }, [&](int q, double v) { a[q] = v; });
}

// Advance `u` by `sweeps` Gauss-Seidel sweeps (4 per vector tile).
template <class V>
void tv_gs1d_run_impl(const stencil::C1D3& c, grid::Grid1D<double>& u,
                      long sweeps, int s) {
  assert(s >= 2);
  Workspace1D ws;
  ws.prepare(s, u.nx(), 1);
  double* a = u.p();
  const int nx = u.nx();
  long t = 0;
  if (nx >= 4 * s) {
    for (; t + 4 <= sweeps; t += 4) tv_gs1d_tile<V>(c, a, nx, s, ws);
  }
  for (; t < sweeps; ++t) {
    double west = a[0];
    for (int x = 1; x <= nx; ++x) {
      const double v = stencil::gs1d3(c.w, c.c, c.e, west, a[x], a[x + 1]);
      a[x] = v;
      west = v;
    }
  }
}

}  // namespace tvs::tv
