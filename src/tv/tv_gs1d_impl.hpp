// Temporal vectorization of the 1D3P *Gauss-Seidel* stencil (§3.4),
// generalized to any vector length vl = V::lanes.
//
// Gauss-Seidel updates in place, sweeping x ascending:
//
//     a[x] <- cw*a[x-1](newest) + cc*a[x](old) + ce*a[x+1](old)
//
// Every loop of the naive code carries a dependence, so no spatial
// vectorization is legal — this scheme is, to the paper's knowledge, the
// first SIMD execution of Gauss-Seidel stencils.  The temporal layout is
// the same as the Jacobi kernel's (lane k = level k, top position p):
//
//   input  u(p) = [ lvl0 @ p+(vl-1)s , ... , lvl(vl-1) @ p ]
//   output w(x) = [ lvl1 @ x+(vl-1)s , ... , lvl(vl)  @ x ]
//
// The only difference from Jacobi: the *newest west* operand of lane k,
// lvl(k+1) @ (x-1 + (vl-1-k)s), is exactly lane k of the previous
// iteration's output vector — so the (dt=0, dx=-1) dependence is satisfied
// by keeping w as a loop-carried register (the paper: "the temporal
// vectorization uses their corresponding output vectors").  Legality needs
// s >= 2 (old east dependence (1,1)); the serial w chain is inherent to
// Gauss-Seidel.
//
// Structure (prologue / gather / steady / flush / epilogue) mirrors
// tv1d_impl.hpp; the scalar wedges chain the newest-west value exactly like
// the in-place scalar sweep, so results are bit-identical to the oracle.
#pragma once

#include <array>
#include <cassert>

#include "grid/grid1d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tv/ring.hpp"       // kMaxStride, kRingCapacity, RingIndex
#include "tv/tv1d_impl.hpp"  // Workspace1D

namespace tvs::tv {

namespace detail {

// One scalar Gauss-Seidel sweep over [x0, x1] where the west neighbour of
// x0 comes from `west0`, old values are read through `old_at` and results
// written through `put`.  (Helper for the wedges; the steady state never
// calls this.)
template <class T, class OldAt, class Put>
inline void gs_scalar_range(const stencil::C1D3T<T>& c, T west0, int x0,
                            int x1, OldAt old_at, Put put) {
  T west = west0;
  for (int x = x0; x <= x1; ++x) {
    const T v =
        stencil::gs1d3(c.w, c.c, c.e, west, old_at(x), old_at(x + 1));
    put(x, v);
    west = v;
  }
}

}  // namespace detail

// One vl-sweep temporally vectorized Gauss-Seidel tile, in place on `a`.
// Requires s >= 2 and nx >= vl*s.
template <class V>
void tv_gs1d_tile(const stencil::C1D3T<typename V::value_type>& c,
                  typename V::value_type* a, int nx, int s,
                  Workspace1D<typename V::value_type>& ws) {
  using T = typename V::value_type;
  constexpr int VL = V::lanes;
  const int M = s;  // ring slots: live positions [x, x+s-1]
  assert(s >= 2 && s <= kMaxStride && nx >= VL * s);
  assert(ws.vl == VL);
  const int rbase = nx - VL * s - 1;

  const auto lv = [&](int lev, int x) -> T {
    return x <= 0 ? a[x] : ws.lptr(lev)[x];
  };
  const auto lv_any = [&](int lev, int x) -> T {
    return lev == 0 ? a[x] : lv(lev, x);
  };

  // ---- prologue: levels 1..vl-1 on the left trapezoid ----------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    T* out = ws.lptr(lev);
    detail::gs_scalar_range(
        c, /*west0=*/a[0], 1, (VL - lev) * s,
        [&](int x) { return lv_any(lev - 1, x); },
        [&](int x, T v) { out[x] = v; });
  }

  // ---- gather: ring positions [1, s] and the initial w ---------------------
  std::array<V, kRingCapacity> ring;
  const RingIndex rix(M);
  for (int p = 1; p <= s; ++p) {
    alignas(64) T lanes[VL];
    for (int k = 0; k < VL; ++k) lanes[k] = lv_any(k, p + (VL - 1 - k) * s);
    ring[static_cast<std::size_t>(rix.slot(p))] = V::load(lanes);
  }
  V w;  // lane k = lvl(k+1) @ (x-1 + (vl-1-k)s); at x=1: the prologue tips
  {
    alignas(64) T lanes[VL];
    for (int k = 0; k < VL - 1; ++k) lanes[k] = lv(k + 1, (VL - 1 - k) * s);
    lanes[VL - 1] = a[0];  // lvl vl @ 0 = boundary
    w = V::load(lanes);
  }

  const V cw = V::set1(c.w), cc = V::set1(c.c), ce = V::set1(c.e);

  // ---- steady loop ---------------------------------------------------------
  const int x_end = nx + 1 - VL * s;
  int ic = rix.slot(1);  // slot of the center vector (position x)
  int x = 1;
  V wbuf[VL];
  for (; x + VL - 1 <= x_end; x += VL) {
    V bot = V::loadu(a + x + VL * s);
    for (int j = 0; j < VL; ++j) {
      const int ie = rix.inc(ic);
      wbuf[j] = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
      ring[ic] = simd::shift_in_low_v(wbuf[j], bot);
      if (j != VL - 1) bot = simd::rotate_down(bot);
      w = wbuf[j];
      ic = ie;
    }
    simd::collect_tops_arr(wbuf).storeu(a + x);
  }
  for (; x <= x_end; ++x) {
    const int ie = rix.inc(ic);
    const V wv = stencil::gs1d3(cw, cc, ce, w, ring[ic], ring[ie]);
    ring[ic] = simd::shift_in_low(wv, a[x + VL * s]);
    a[x] = simd::top_lane(wv);
    w = wv;
    ic = ie;
  }

  // ---- flush ring lanes into the right scratch -----------------------------
  const auto rput = [&](int lev, int q, T v) {
    if (q >= rbase + 1 && q <= nx) ws.rptr(lev)[q - rbase] = v;
  };
  for (int p = x_end + 1; p <= x_end + s; ++p) {
    const V& u = ring[static_cast<std::size_t>(rix.slot(p))];
    for (int k = 1; k <= VL - 1; ++k) rput(k, p + (VL - 1 - k) * s, u[k]);
  }

  const auto rv = [&](int lev, int q) -> T {
    return q > nx ? a[q] : ws.rptr(lev)[q - rbase];
  };

  // ---- epilogue (levels in order; lvl vl writes to `a` last) ---------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    T* out = ws.rptr(lev);
    detail::gs_scalar_range(
        c, rv(lev, nx + 1 - lev * s), nx + 2 - lev * s, nx,
        [&](int q) { return lev == 1 ? a[q] : rv(lev - 1, q); },
        [&](int q, T v) { out[q - rbase] = v; });
  }
  detail::gs_scalar_range(
      c, a[nx + 1 - VL * s], nx + 2 - VL * s, nx,
      [&](int q) { return rv(VL - 1, q); }, [&](int q, T v) { a[q] = v; });
}

// Advance `u` by `sweeps` Gauss-Seidel sweeps (vl per vector tile).
template <class V>
void tv_gs1d_run_impl(const stencil::C1D3T<typename V::value_type>& c,
                      grid::Grid1D<typename V::value_type>& u, long sweeps,
                      int s) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  using T = typename V::value_type;
  constexpr int VL = V::lanes;
  assert(s >= 2);
  Workspace1D<T> ws;
  ws.prepare(s, u.nx(), 1, VL);
  T* a = u.p();
  const int nx = u.nx();
  long t = 0;
  if (nx >= VL * s) {
    for (; t + VL <= sweeps; t += VL) tv_gs1d_tile<V>(c, a, nx, s, ws);
  }
  for (; t < sweeps; ++t) {
    T west = a[0];
    for (int x = 1; x <= nx; ++x) {
      const T v = stencil::gs1d3(c.w, c.c, c.e, west, a[x], a[x + 1]);
      a[x] = v;
      west = v;
    }
  }
}

}  // namespace tvs::tv
