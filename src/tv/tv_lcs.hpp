// Public entry points for the temporally vectorized LCS dynamic program
// (int32 lanes — 8 under scalar/avx2, 16 under avx512 — stride s = 1; see
// tv_lcs_impl.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tvs::tv {

// Number of padding slots the row engines need past row[nb] for their
// grouped loads, independent of the instantiated width: callers of the
// raw TvLcsRowsFn kernels allocate |b|+1+kLcsRowPad slots (the widest
// engine's lane count bounds it).
inline constexpr int kLcsRowPad = 16;

// Length of the longest common subsequence of a and b.
std::int32_t tv_lcs(std::span<const std::int32_t> a,
                    std::span<const std::int32_t> b);

// Final DP row lcs[|A|][0..|B|] (cell-level comparison against the oracle).
std::vector<std::int32_t> tv_lcs_row(std::span<const std::int32_t> a,
                                     std::span<const std::int32_t> b);

}  // namespace tvs::tv
