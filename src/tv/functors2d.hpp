// Stencil functors for the 2D temporal-vectorization engine.
#pragma once

#include <cstdint>

#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tv {

template <class V>
struct J2D5F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cc, cw, ce, cs, cn;
  stencil::C2D5T<T> c;

  explicit J2D5F(const stencil::C2D5T<T>& k)
      : cc(V::set1(k.c)),
        cw(V::set1(k.w)),
        ce(V::set1(k.e)),
        cs(V::set1(k.s)),
        cn(V::set1(k.n)),
        c(k) {}

  V apply(const V* rm1, const V* r0, const V* rp1, int y) const {
    return stencil::j2d5(cc, cw, ce, cs, cn, r0[y], r0[y - 1], r0[y + 1],
                         rm1[y], rp1[y]);
  }
  template <class At>
  T apply_scalar(At&& at, int r, int y) const {
    return stencil::j2d5(c.c, c.w, c.e, c.s, c.n, at(r, y), at(r, y - 1),
                         at(r, y + 1), at(r - 1, y), at(r + 1, y));
  }
};

template <class V>
struct J2D9F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cc, cw, ce, cs, cn, csw, cse, cnw, cne;
  stencil::C2D9T<T> c;

  explicit J2D9F(const stencil::C2D9T<T>& k)
      : cc(V::set1(k.c)),
        cw(V::set1(k.w)),
        ce(V::set1(k.e)),
        cs(V::set1(k.s)),
        cn(V::set1(k.n)),
        csw(V::set1(k.sw)),
        cse(V::set1(k.se)),
        cnw(V::set1(k.nw)),
        cne(V::set1(k.ne)),
        c(k) {}

  V apply(const V* rm1, const V* r0, const V* rp1, int y) const {
    return stencil::j2d9(cc, cw, ce, cs, cn, csw, cse, cnw, cne, r0[y],
                         r0[y - 1], r0[y + 1], rm1[y], rp1[y], rm1[y - 1],
                         rm1[y + 1], rp1[y - 1], rp1[y + 1]);
  }
  template <class At>
  T apply_scalar(At&& at, int r, int y) const {
    return stencil::j2d9(c.c, c.w, c.e, c.s, c.n, c.sw, c.se, c.nw, c.ne,
                         at(r, y), at(r, y - 1), at(r, y + 1), at(r - 1, y),
                         at(r + 1, y), at(r - 1, y - 1), at(r - 1, y + 1),
                         at(r + 1, y - 1), at(r + 1, y + 1));
  }
};

template <class V>
struct LifeF {
  static constexpr int radius = 1;
  using value_type = std::int32_t;
  stencil::LifeRule rule;

  explicit LifeF(const stencil::LifeRule& r) : rule(r) {}

  V apply(const V* rm1, const V* r0, const V* rp1, int y) const {
    const V sum = r0[y - 1] + r0[y + 1] + rm1[y - 1] + rm1[y] + rm1[y + 1] +
                  rp1[y - 1] + rp1[y] + rp1[y + 1];
    return stencil::life_rule_v(rule, r0[y], sum);
  }
  template <class At>
  std::int32_t apply_scalar(At&& at, int r, int y) const {
    const std::int32_t sum = at(r, y - 1) + at(r, y + 1) + at(r - 1, y - 1) +
                             at(r - 1, y) + at(r - 1, y + 1) +
                             at(r + 1, y - 1) + at(r + 1, y) + at(r + 1, y + 1);
    return stencil::life_rule(rule, at(r, y), sum);
  }
};

}  // namespace tvs::tv
