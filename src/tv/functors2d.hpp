// Stencil functors for the 2D temporal-vectorization engine.
#pragma once

#include <cstdint>

#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tv {

template <class V>
struct J2D5F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cc, cw, ce, cs, cn;
  stencil::C2D5T<T> c;

  explicit J2D5F(const stencil::C2D5T<T>& k)
      : cc(V::set1(k.c)),
        cw(V::set1(k.w)),
        ce(V::set1(k.e)),
        cs(V::set1(k.s)),
        cn(V::set1(k.n)),
        c(k) {}

  V apply(const V* rm1, const V* r0, const V* rp1, int y) const {
    return stencil::j2d5(cc, cw, ce, cs, cn, r0[y], r0[y - 1], r0[y + 1],
                         rm1[y], rp1[y]);
  }
  template <class At>
  T apply_scalar(At&& at, int r, int y) const {
    return stencil::j2d5(c.c, c.w, c.e, c.s, c.n, at(r, y), at(r, y - 1),
                         at(r, y + 1), at(r - 1, y), at(r + 1, y));
  }

  // Redundancy-eliminated column carry (`re` engines, arXiv:2103.09235
  // restricted to bit-exact operand reuse): the three center-row operands
  // slide across consecutive y in registers, so each ring vector is loaded
  // once instead of three times.  The canonical j2d5 operand order is
  // unchanged — results stay bit-identical to apply().  Seeded for an
  // inner loop starting at y = 1.
  struct Carry {
    V cm, c0;
    Carry(const V* /*rm1*/, const V* r0, const V* /*rp1*/)
        : cm(r0[0]), c0(r0[1]) {}
    V apply(const J2D5F& f, const V* rm1, const V* r0, const V* rp1, int y) {
      const V cp = r0[y + 1];
      const V w =
          stencil::j2d5(f.cc, f.cw, f.ce, f.cs, f.cn, c0, cm, cp, rm1[y],
                        rp1[y]);
      cm = c0;
      c0 = cp;
      return w;
    }
  };
};

template <class V>
struct J2D9F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cc, cw, ce, cs, cn, csw, cse, cnw, cne;
  stencil::C2D9T<T> c;

  explicit J2D9F(const stencil::C2D9T<T>& k)
      : cc(V::set1(k.c)),
        cw(V::set1(k.w)),
        ce(V::set1(k.e)),
        cs(V::set1(k.s)),
        cn(V::set1(k.n)),
        csw(V::set1(k.sw)),
        cse(V::set1(k.se)),
        cnw(V::set1(k.nw)),
        cne(V::set1(k.ne)),
        c(k) {}

  V apply(const V* rm1, const V* r0, const V* rp1, int y) const {
    return stencil::j2d9(cc, cw, ce, cs, cn, csw, cse, cnw, cne, r0[y],
                         r0[y - 1], r0[y + 1], rm1[y], rp1[y], rm1[y - 1],
                         rm1[y + 1], rp1[y - 1], rp1[y + 1]);
  }
  template <class At>
  T apply_scalar(At&& at, int r, int y) const {
    return stencil::j2d9(c.c, c.w, c.e, c.s, c.n, c.sw, c.se, c.nw, c.ne,
                         at(r, y), at(r, y - 1), at(r, y + 1), at(r - 1, y),
                         at(r + 1, y), at(r - 1, y - 1), at(r - 1, y + 1),
                         at(r + 1, y - 1), at(r + 1, y + 1));
  }

  // Redundancy-eliminated column carry: all nine window operands slide in
  // registers (three fresh loads per y instead of nine), canonical j2d9
  // order preserved — bit-identical to apply().  a/b/c = rm1/r0/rp1 rows,
  // m/0 suffix = columns y-1 / y.  Seeded for an inner loop at y = 1.
  struct Carry {
    V am, a0, bm, b0, cm, c0;
    Carry(const V* rm1, const V* r0, const V* rp1)
        : am(rm1[0]),
          a0(rm1[1]),
          bm(r0[0]),
          b0(r0[1]),
          cm(rp1[0]),
          c0(rp1[1]) {}
    V apply(const J2D9F& f, const V* rm1, const V* r0, const V* rp1, int y) {
      const V ap = rm1[y + 1];
      const V bp = r0[y + 1];
      const V cp = rp1[y + 1];
      const V w = stencil::j2d9(f.cc, f.cw, f.ce, f.cs, f.cn, f.csw, f.cse,
                                f.cnw, f.cne, b0, bm, bp, a0, c0, am, ap, cm,
                                cp);
      am = a0;
      a0 = ap;
      bm = b0;
      b0 = bp;
      cm = c0;
      c0 = cp;
      return w;
    }
  };
};

template <class V>
struct LifeF {
  static constexpr int radius = 1;
  using value_type = std::int32_t;
  stencil::LifeRule rule;

  explicit LifeF(const stencil::LifeRule& r) : rule(r) {}

  V apply(const V* rm1, const V* r0, const V* rp1, int y) const {
    const V sum = r0[y - 1] + r0[y + 1] + rm1[y - 1] + rm1[y] + rm1[y + 1] +
                  rp1[y - 1] + rp1[y] + rp1[y + 1];
    return stencil::life_rule_v(rule, r0[y], sum);
  }
  template <class At>
  std::int32_t apply_scalar(At&& at, int r, int y) const {
    const std::int32_t sum = at(r, y - 1) + at(r, y + 1) + at(r - 1, y - 1) +
                             at(r - 1, y) + at(r - 1, y + 1) +
                             at(r + 1, y - 1) + at(r + 1, y) + at(r + 1, y + 1);
    return stencil::life_rule(rule, at(r, y), sum);
  }
};

}  // namespace tvs::tv
