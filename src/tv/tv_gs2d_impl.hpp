// Temporal vectorization of the 2D5P Gauss-Seidel stencil (§3.4),
// generalized to any vector length vl = V::lanes.
//
// Update (ascending x, then y):
//   a[x][y] <- cc*a[x][y] + cw*a[x][y-1](new) + ce*a[x][y+1]
//            + cs*a[x-1][y](new) + cn*a[x+1][y]
//
// On top of the Jacobi 2D ring (see tv2d_impl.hpp) the two newest-value
// operands are forwarded from output vectors, exactly as in the 1D
// Gauss-Seidel kernel:
//   * newest west  (x, y-1): the previous y iteration's output register;
//   * newest south (x-1, y): the previous x iteration's output at the same
//     column — buffered in one extra row of vectors, `wrow`, which is read
//     and then overwritten in place as the y loop advances.
// The ring needs only rows x .. x+s (window is {x, x+1}): s+1 slots.
// Everything runs in place on the single Gauss-Seidel array.
#pragma once

#include <algorithm>
#include <cassert>

#include "grid/aligned.hpp"
#include "grid/grid2d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tv/ring.hpp"

namespace tvs::tv {

template <class V>
struct WorkspaceGs2D {
  using T = typename V::value_type;
  static constexpr int VL = V::lanes;

  grid::AlignedBuffer<V> ring;  // (s+1) rows x rstride vectors
  grid::AlignedBuffer<V> wrow;  // 1 row: previous x outputs per column
  grid::AlignedBuffer<T> lscr, rscr;  // (VL-1) levels of edge planes
  int s = 0, nx = 0, ny = 0;
  std::ptrdiff_t rstride = 0;
  int lrows = 0, rrows = 0, rbase = 0;

  void prepare(int stride, int nx_, int ny_) {
    s = stride;
    nx = nx_;
    ny = ny_;
    rstride = ((ny + 4 + 15) / 16) * 16;
    lrows = (VL - 1) * s + 1;
    // Trailing slack, not a lane count.  tvslint: allow(R4)
    rrows = VL * s + 4;
    rbase = nx - VL * s - 1;
    ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 1) *
                                  static_cast<std::size_t>(rstride));
    wrow = grid::AlignedBuffer<V>(static_cast<std::size_t>(rstride));
    lscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * lrows *
                                  static_cast<std::size_t>(rstride));
    rscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * rrows *
                                  static_cast<std::size_t>(rstride));
  }
  V* ring_row(int p) {
    const int M = s + 1;
    const int slot = RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(rstride) +
           1;
  }
  T& lv(int level, int r, int y) {
    return lscr[(static_cast<std::size_t>(level - 1) * lrows + r) *
                    static_cast<std::size_t>(rstride) +
                static_cast<std::size_t>(y + 1)];
  }
  T& rv(int level, int r, int y) {
    return rscr[(static_cast<std::size_t>(level - 1) * rrows + (r - rbase)) *
                    static_cast<std::size_t>(rstride) +
                static_cast<std::size_t>(y + 1)];
  }
};

namespace detailgs2d {

// One scalar Gauss-Seidel row at level `lev`: new values chained in y and
// written through `put`; previous-level (old) values via `old_at`; the
// newest south row via `new_south`.
template <class T, class OldAt, class NewSouth, class Put>
inline void gs_row(const stencil::C2D5T<T>& c, T west0, int r, int ny,
                   OldAt&& old_at, NewSouth&& new_south, Put&& put) {
  T west = west0;
  for (int y = 1; y <= ny; ++y) {
    const T v =
        stencil::gs2d5(c.c, c.w, c.e, c.s, c.n, old_at(r, y), west,
                       old_at(r, y + 1), new_south(y), old_at(r + 1, y));
    put(y, v);
    west = v;
  }
}

}  // namespace detailgs2d

// One vl-sweep tile over the whole grid, in place.  nx >= vl*s, s >= 2.
template <class V>
void tv_gs2d_tile(const stencil::C2D5T<typename V::value_type>& c,
                  grid::Grid2D<typename V::value_type>& g, int s,
                  WorkspaceGs2D<V>& ws) {
  using T = typename V::value_type;
  constexpr int VL = V::lanes;
  const int nx = g.nx(), ny = g.ny();
  assert(nx >= VL * s && s >= 2);
  const int rbase = ws.rbase;

  const auto lv_any = [&](int lev, int r, int y) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny) return g.at(r, y);
    return ws.lv(lev, r, y);
  };

  // ---- prologue: levels 1..vl-1 over rows [1, (vl-lev)s] -------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    for (int r = 1; r <= (VL - lev) * s; ++r) {
      detailgs2d::gs_row(
          c, lv_any(lev, r, 0), r, ny,
          [&](int rr, int yy) { return lv_any(lev - 1, rr, yy); },
          [&](int yy) { return lv_any(lev, r - 1, yy); },
          [&](int yy, T v) { ws.lv(lev, r, yy) = v; });
    }
  }

  // ---- gather: ring rows p = 1 .. s and the initial wrow --------------------
  for (int p = 1; p <= s; ++p) {
    V* row = ws.ring_row(p);
    alignas(64) T lanes[VL];
    for (int y = 0; y <= ny + 1; ++y) {
      for (int k = 0; k < VL; ++k)
        lanes[k] = lv_any(k, p + (VL - 1 - k) * s, y);
      row[y] = V::load(lanes);
    }
  }
  {
    V* wr = ws.wrow.data() + 1;
    alignas(64) T lanes[VL];
    for (int y = 0; y <= ny + 1; ++y) {
      for (int k = 0; k < VL - 1; ++k)
        lanes[k] = lv_any(k + 1, (VL - 1 - k) * s, y);
      lanes[VL - 1] = g.at(0, y);  // lvl vl @ row 0 = boundary
      wr[y] = V::load(lanes);
    }
  }

  const V cc = V::set1(c.c), cw = V::set1(c.w), ce = V::set1(c.e),
          cs = V::set1(c.s), cn = V::set1(c.n);

  // ---- steady loop -----------------------------------------------------------
  const int x_end = nx + 1 - VL * s;
  V* wr = ws.wrow.data() + 1;
  for (int x = 1; x <= x_end; ++x) {
    const V* r0 = ws.ring_row(x);
    const V* rp1 = ws.ring_row(x + 1);
    V* rout = ws.ring_row(x + s);
    T* trow = g.row(x);
    const T* brow = g.row(x + VL * s);

    // Boundary columns of the produced input-vector row.
    {
      alignas(64) T lanes[VL];
      const int p = x + s;
      for (const int y : {0, ny + 1}) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g.at(std::min(p + (VL - 1 - k) * s, nx + 1), y);
        rout[y] = V::load(lanes);
      }
    }
    // Newest-west at y = 0: the boundary column at each lane's row.
    V wprev;
    {
      alignas(64) T lanes[VL];
      for (int k = 0; k < VL; ++k) lanes[k] = g.at(x + (VL - 1 - k) * s, 0);
      wprev = V::load(lanes);
    }

    int y = 1;
    V wbuf[VL];
    for (; y + VL - 1 <= ny; y += VL) {
      V bot = V::loadu(brow + y);
      for (int j = 0; j < VL; ++j) {
        const int yy = y + j;
        const V w = stencil::gs2d5(cc, cw, ce, cs, cn, r0[yy], wprev,
                                   r0[yy + 1], wr[yy], rp1[yy]);
        wbuf[j] = w;
        wr[yy] = w;  // becomes the newest-south for iteration x+1
        rout[yy] = simd::shift_in_low_v(w, bot);
        if (j != VL - 1) bot = simd::rotate_down(bot);
        wprev = w;
      }
      simd::collect_tops_arr(wbuf).storeu(trow + y);
    }
    for (; y <= ny; ++y) {
      const V w = stencil::gs2d5(cc, cw, ce, cs, cn, r0[y], wprev, r0[y + 1],
                                 wr[y], rp1[y]);
      wr[y] = w;
      rout[y] = simd::shift_in_low(w, brow[y]);
      trow[y] = simd::top_lane(w);
      wprev = w;
    }
  }

  // ---- flush ring rows -------------------------------------------------------
  const auto rput = [&](int lev, int r, int y, T v) {
    if (r >= rbase + 1 && r <= nx) ws.rv(lev, r, y) = v;
  };
  for (int p = x_end + 1; p <= x_end + s; ++p) {
    const V* row = ws.ring_row(p);
    for (int y = 1; y <= ny; ++y) {
      const V u = row[y];
      for (int k = 1; k <= VL - 1; ++k) rput(k, p + (VL - 1 - k) * s, y, u[k]);
    }
  }

  const auto rv_any = [&](int lev, int r, int y) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny) return g.at(r, y);
    return ws.rv(lev, r, y);
  };

  // ---- epilogue: levels ascending, lvl vl into the array last ----------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    for (int r = nx + 2 - lev * s; r <= nx; ++r) {
      detailgs2d::gs_row(
          c, rv_any(lev, r, 0), r, ny,
          [&](int rr, int yy) { return rv_any(lev - 1, rr, yy); },
          [&](int yy) { return rv_any(lev, r - 1, yy); },
          [&](int yy, T v) { ws.rv(lev, r, yy) = v; });
    }
  }
  for (int r = nx + 2 - VL * s; r <= nx; ++r) {
    detailgs2d::gs_row(
        c, g.at(r, 0), r, ny,
        [&](int rr, int yy) { return rv_any(VL - 1, rr, yy); },
        [&](int yy) { return g.at(r - 1, yy); },
        [&](int yy, T v) { g.at(r, yy) = v; });
  }
}

// Advance g by `sweeps` Gauss-Seidel sweeps.
template <class V>
void tv_gs2d_run_impl(const stencil::C2D5T<typename V::value_type>& c,
                      grid::Grid2D<typename V::value_type>& g, long sweeps,
                      int s) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  using T = typename V::value_type;
  constexpr int VL = V::lanes;
  WorkspaceGs2D<V> ws;
  ws.prepare(s, g.nx(), g.ny());
  long t = 0;
  if (g.nx() >= VL * s) {
    for (; t + VL <= sweeps; t += VL) tv_gs2d_tile(c, g, s, ws);
  }
  for (; t < sweeps; ++t) {
    for (int r = 1; r <= g.nx(); ++r) {
      detailgs2d::gs_row(
          c, g.at(r, 0), r, g.ny(),
          [&](int rr, int yy) { return g.at(rr, yy); },
          [&](int yy) { return g.at(r - 1, yy); },
          [&](int yy, T v) { g.at(r, yy) = v; });
    }
  }
}

}  // namespace tvs::tv
