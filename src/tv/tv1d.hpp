// Public entry points for temporally vectorized 1D Jacobi stencils.
//
// `stride` is the space stride s between lanes (§3.2): legal when
// s > radius (see stencil/dependence.hpp); larger strides increase the
// ILP distance between dependent output vectors (§3.3).  The paper's
// default for the 1D3P kernel is s = 7 (8 live input vectors).
#pragma once

#include "grid/grid1d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

inline constexpr int kDefaultStride1D3 = 7;
inline constexpr int kDefaultStride1D5 = 7;

// Advance u by `steps` time steps with the AVX2 (or best-available) backend.
void tv_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                      long steps, int stride = kDefaultStride1D3);
void tv_jacobi1d5_run(const stencil::C1D5& c, grid::Grid1D<double>& u,
                      long steps, int stride = kDefaultStride1D5);

// Single-precision overloads: same engines at twice the lanes per register.
void tv_jacobi1d3_run(const stencil::C1D3f& c, grid::Grid1D<float>& u,
                      long steps, int stride = kDefaultStride1D3);
void tv_jacobi1d5_run(const stencil::C1D5f& c, grid::Grid1D<float>& u,
                      long steps, int stride = kDefaultStride1D5);

}  // namespace tvs::tv
