// Temporal vectorization for 3D stencils: the stride-s lanes live on the
// outermost x dimension, the inner (y, z) loops sweep whole planes.  The
// ring holds s+2 *slabs* of input vectors:
//
//   ring(p)[y][z] = [ lvl0 @ (p+3s, y, z) , ... , lvl3 @ (p, y, z) ]
//
// Structure is the 2D engine's with rows generalized to planes; grouped
// top stores / bottom loads run along the unit-stride z dimension.  The
// main array is updated in place (top plane x trails bottom reads x+4s).
//
// The functor F supplies:
//   static constexpr int radius = 1;
//   V apply(const V* bm1, const V* b0c, const V* b0m, const V* b0p,
//           const V* bp1, int z)
//     — slab lines for (x-1, y), (x, y), (x, y-1), (x, y+1), (x+1, y),
//       indexable at z-1 .. z+1;
//   T apply_scalar(At&& at, int r, int y, int z) with at(r, y, z).
#pragma once

#include <algorithm>
#include <cassert>

#include "grid/aligned.hpp"
#include "grid/grid3d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "tv/ring.hpp"

namespace tvs::tv {

template <class V, class T>
struct Workspace3D {
  static constexpr int VL = V::lanes;

  grid::AlignedBuffer<V> ring;  // (s+2) slabs x (ny+2) x zstride vectors
  grid::AlignedBuffer<T> lscr;  // (VL-1) levels x lrows x plane
  grid::AlignedBuffer<T> rscr;
  grid::Grid3D<T> tmp;
  int s = 0, nx = 0, ny = 0, nz = 0;
  std::ptrdiff_t zstride = 0, ystride = 0;
  int lrows = 0, rrows = 0, rbase = 0;

  void prepare(int stride, int nx_, int ny_, int nz_) {
    s = stride;
    nx = nx_;
    ny = ny_;
    nz = nz_;
    zstride = ((nz + 4 + 15) / 16) * 16;
    ystride = static_cast<std::ptrdiff_t>(ny + 2) * zstride;
    lrows = (VL - 1) * s + 1;
    // Trailing slack, not a lane count.  tvslint: allow(R4)
    rrows = VL * s + 4;
    rbase = nx - VL * s - 1;
    ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 2) *
                                  static_cast<std::size_t>(ystride));
    lscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * lrows *
                                  static_cast<std::size_t>(ystride));
    rscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * rrows *
                                  static_cast<std::size_t>(ystride));
    if (tmp.nx() != nx || tmp.ny() != ny || tmp.nz() != nz)
      tmp = grid::Grid3D<T>(nx, ny, nz);
  }

  // Line (x-slab p, row y), indexable z in [-1, zstride-2].
  V* ring_line(int p, int y) {
    const int M = s + 2;
    const int slot = RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(ystride) +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) + 1;
  }
  T& lv(int level, int r, int y, int z) {
    return lscr[(static_cast<std::size_t>(level - 1) * lrows + r) *
                    static_cast<std::size_t>(ystride) +
                static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) +
                static_cast<std::size_t>(z + 1)];
  }
  T& rv(int level, int r, int y, int z) {
    return rscr[(static_cast<std::size_t>(level - 1) * rrows + (r - rbase)) *
                    static_cast<std::size_t>(ystride) +
                static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) +
                static_cast<std::size_t>(z + 1)];
  }
};

namespace detail3d {

template <class F, class T>
void scalar_steps(const F& f, grid::Grid3D<T>& g, grid::Grid3D<T>& tmp,
                  int nsteps) {
  const int nx = g.nx(), ny = g.ny(), nz = g.nz();
  for (int t = 0; t < nsteps; ++t) {
    const auto at = [&](int r, int y, int z) -> T { return g.at(r, y, z); };
    for (int r = 1; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z)
          tmp.at(r, y, z) = f.apply_scalar(at, r, y, z);
    for (int r = 1; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z) g.at(r, y, z) = tmp.at(r, y, z);
  }
}

}  // namespace detail3d

// One vl-step tile over the full grid, in place.  nx >= vl*s, s >= 2.
//
// Re = the redundancy-eliminated inner loop (arXiv:2103.08825 /
// 2103.09235, see tv3d_re_impl.hpp): identical prologue / gather / flush /
// epilogue and bit-identical arithmetic, but each produced ring vector
// costs ONE shuffle (simd::retire_shift_in) and the functor's F::Carry
// slides the shared center-line operands in registers across consecutive z.
template <class V, class F, class T, bool Re = false>
void tv3d_tile(const F& f, grid::Grid3D<T>& g, int s, Workspace3D<V, T>& ws) {
  static_assert(F::radius == 1);
  constexpr int VL = V::lanes;
  const int nx = g.nx(), ny = g.ny(), nz = g.nz();
  assert(nx >= VL * s && s >= 2);
  const int rbase = ws.rbase;

  const auto lv_any = [&](int lev, int r, int y, int z) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny || z < 1 || z > nz)
      return g.at(r, y, z);
    return ws.lv(lev, r, y, z);
  };

  // ---- prologue --------------------------------------------------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    const auto at = [&, lev](int r, int y, int z) {
      return lv_any(lev - 1, r, y, z);
    };
    for (int r = 1; r <= (VL - lev) * s; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z)
          ws.lv(lev, r, y, z) = f.apply_scalar(at, r, y, z);
  }

  // ---- gather slabs p = 0 .. s -------------------------------------------------
  for (int p = 0; p <= s; ++p) {
    alignas(64) T lanes[VL];
    for (int y = 0; y <= ny + 1; ++y) {
      V* line = ws.ring_line(p, y);
      for (int z = 0; z <= nz + 1; ++z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = lv_any(k, p + (VL - 1 - k) * s, y, z);
        line[z] = V::load(lanes);
      }
    }
  }

  // ---- steady loop ---------------------------------------------------------------
  const int x_end = nx + 1 - VL * s;
  for (int x = 1; x <= x_end; ++x) {
    // Boundary rows/columns of the produced slab: constant at every level.
    {
      alignas(64) T lanes[VL];
      const int p = x + s;
      const auto fill = [&](int y, int z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g.at(std::min(p + (VL - 1 - k) * s, nx + 1), y, z);
        ws.ring_line(p, y)[z] = V::load(lanes);
      };
      for (int z = 0; z <= nz + 1; ++z) {
        fill(0, z);
        fill(ny + 1, z);
      }
      for (int y = 1; y <= ny; ++y) {
        fill(y, 0);
        fill(y, nz + 1);
      }
    }
    for (int y = 1; y <= ny; ++y) {
      const V* bm1 = ws.ring_line(x - 1, y);
      const V* b0c = ws.ring_line(x, y);
      const V* b0m = ws.ring_line(x, y - 1);
      const V* b0p = ws.ring_line(x, y + 1);
      const V* bp1 = ws.ring_line(x + 1, y);
      V* lout = ws.ring_line(x + s, y);
      T* tline = g.line(x, y);
      const T* bline = g.line(x + VL * s, y);

      if constexpr (Re) {
        // Redundancy-eliminated inner loop: one retire_shift_in shuffle
        // per produced vector and register-carried center-line operands.
        // Bit-identical to the baseline loop below.
        typename F::Carry carry(bm1, b0c, b0m, b0p, bp1);
        for (int z = 1; z <= nz; ++z) {
          const V w = carry.apply(f, bm1, b0c, b0m, b0p, bp1, z);
          lout[z] = simd::retire_shift_in(w, bline[z], &tline[z]);
        }
      } else {
        int z = 1;
        V wbuf[VL];
        for (; z + VL - 1 <= nz; z += VL) {
          V bot = V::loadu(bline + z);
          for (int j = 0; j < VL - 1; ++j) {
            wbuf[j] = f.apply(bm1, b0c, b0m, b0p, bp1, z + j);
            lout[z + j] = simd::shift_in_low_v(wbuf[j], bot);
            bot = simd::dispense_low(bot);
          }
          wbuf[VL - 1] = f.apply(bm1, b0c, b0m, b0p, bp1, z + VL - 1);
          lout[z + VL - 1] = simd::shift_in_low_v(wbuf[VL - 1], bot);
          simd::collect_tops_arr(wbuf).storeu(tline + z);
        }
        for (; z <= nz; ++z) {
          const V w = f.apply(bm1, b0c, b0m, b0p, bp1, z);
          lout[z] = simd::shift_in_low(w, bline[z]);
          tline[z] = simd::top_lane(w);
        }
      }
    }
  }

  // ---- flush -------------------------------------------------------------------
  const auto rput = [&](int lev, int r, int y, int z, T v) {
    if (r >= rbase + 1 && r <= nx) ws.rv(lev, r, y, z) = v;
  };
  for (int p = x_end; p <= x_end + s; ++p)
    for (int y = 1; y <= ny; ++y) {
      const V* line = ws.ring_line(p, y);
      for (int z = 1; z <= nz; ++z) {
        const V u = line[z];
        for (int k = 1; k <= VL - 1; ++k)
          rput(k, p + (VL - 1 - k) * s, y, z, u[k]);
      }
    }

  const auto rv_any = [&](int lev, int r, int y, int z) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny || z < 1 || z > nz)
      return g.at(r, y, z);
    return ws.rv(lev, r, y, z);
  };

  // ---- epilogue ------------------------------------------------------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    const auto at = [&, lev](int r, int y, int z) {
      return rv_any(lev - 1, r, y, z);
    };
    for (int r = nx + 2 - lev * s; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z)
          ws.rv(lev, r, y, z) = f.apply_scalar(at, r, y, z);
  }
  {
    const auto at = [&](int r, int y, int z) { return rv_any(VL - 1, r, y, z); };
    for (int r = nx + 2 - VL * s; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y)
        for (int z = 1; z <= nz; ++z) g.at(r, y, z) = f.apply_scalar(at, r, y, z);
  }
}

template <class V, class F, class T, bool Re = false>
void tv3d_run(const F& f, grid::Grid3D<T>& g, long steps, int s,
              Workspace3D<V, T>& ws) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  constexpr int VL = V::lanes;
  ws.prepare(s, g.nx(), g.ny(), g.nz());
  long t = 0;
  if (g.nx() >= VL * s) {
    for (; t + VL <= steps; t += VL) tv3d_tile<V, F, T, Re>(f, g, s, ws);
  }
  if (t < steps)
    detail3d::scalar_steps(f, g, ws.tmp, static_cast<int>(steps - t));
}

}  // namespace tvs::tv
