// 3D Jacobi kernel variant — compiled once per SIMD backend.  Public entry
// point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv3d_impl.hpp"

namespace tvs::tv {
namespace {

using V = simd::NativeVec<double, 4>;

void jacobi3d7(const stencil::C3D7& c, grid::Grid3D<double>& u, long steps,
               int stride) {
  Workspace3D<V, double> ws;
  tv3d_run(J3D7F<V>(c), u, steps, stride, ws);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv3d) {
  TVS_REGISTER(kTvJacobi3D7, TvJacobi3D7Fn, jacobi3d7);
}

}  // namespace tvs::tv
