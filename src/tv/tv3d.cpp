#include "tv/tv3d.hpp"

#include "tv/functors3d.hpp"
#include "tv/tv3d_impl.hpp"

namespace tvs::tv {

void tv_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                      long steps, int stride) {
  using V = simd::NativeVec<double, 4>;
  Workspace3D<V, double> ws;
  tv3d_run(J3D7F<V>(c), u, steps, stride, ws);
}

}  // namespace tvs::tv
