// 3D Jacobi kernel variant — compiled once per SIMD backend at the
// backend's native vector width; the scalar backend also registers the
// width-pinned vl = 8 instantiation.  Public entry point lives in
// tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv3d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;

void jacobi3d7(const stencil::C3D7& c, grid::Grid3D<double>& u, long steps,
               int stride) {
  Workspace3D<V, double> ws;
  tv3d_run(J3D7F<V>(c), u, steps, stride, ws);
}

#if TVS_BACKEND_LEVEL == 0
using V8 = simd::ScalarVec<double, 8>;

void jacobi3d7_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u, long steps,
                   int stride) {
  Workspace3D<V8, double> ws;
  tv3d_run(J3D7F<V8>(c), u, steps, stride, ws);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv3d) {
  TVS_REGISTER_VL(kTvJacobi3D7, TvJacobi3D7Fn, jacobi3d7, V::lanes);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvJacobi3D7, TvJacobi3D7Fn, jacobi3d7_vl8, 8);
#endif
}

}  // namespace tvs::tv
