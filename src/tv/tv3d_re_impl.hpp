// Redundancy-eliminated 3D Jacobi temporal engine (the `re` variant).
//
// Same scheme as tv2d_re_impl.hpp lifted to the slab ring: the inner z
// loop produces each ring vector with ONE simd::retire_shift_in shuffle
// (tops retired scalar into the top plane, fresh level-0 elements read
// scalar from the bottom plane), and J3D7F::Carry (functors3d.hpp) slides
// the three center-line operands across consecutive z in registers.
// Arithmetic stays the canonical fma chain — results are bit-identical to
// the baseline tv3d engine at every (dtype, vl, stride).  Prologue,
// gather, flush, and epilogue are shared via the Re template flag on
// tv3d_tile/tv3d_run; the ring walk is the same rowring model that
// tests/ring_bounds_model.hpp verifies.
#pragma once

#include "tv/tv3d_impl.hpp"

namespace tvs::tv {

template <class V, class F, class T>
void tv3d_re_run(const F& f, grid::Grid3D<T>& g, long steps, int s,
                 Workspace3D<V, T>& ws) {
  tv3d_run<V, F, T, /*Re=*/true>(f, g, steps, s, ws);
}

}  // namespace tvs::tv
