// Public entry point for the temporally vectorized 3D7P Jacobi stencil
// (paper default stride s = 2).
#pragma once

#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

void tv_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                      long steps, int stride = 2);

// Single-precision overload.
void tv_jacobi3d7_run(const stencil::C3D7f& c, grid::Grid3D<float>& u,
                      long steps, int stride = 2);

}  // namespace tvs::tv
