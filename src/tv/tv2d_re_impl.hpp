// Redundancy-eliminated 2D Jacobi temporal engines (the `re` variant).
//
// Same scheme as tv1d_re_impl.hpp, applied to the row-ring engine
// (arXiv:2103.08825 / 2103.09235 under this repo's bit-exactness
// contract): the inner y loop produces each ring vector with ONE
// simd::retire_shift_in shuffle — no collect_tops assembly tree, no
// separate dispense rotate, tops retired as scalar stores into the top
// row, fresh level-0 elements read scalar from the bottom row — and the
// functor's nested F::Carry type (J2D5F / J2D9F in functors2d.hpp) slides
// the column-shared window operands across consecutive y in registers,
// loading each ring vector once instead of once per window it appears in
// (3x for j2d5's center row, 3x for every row of j2d9).
//
// Arithmetic is the canonical fma chain in its canonical order — results
// are bit-identical to the baseline tv2d engines at every (dtype, vl,
// stride).  Prologue, gather, flush, and epilogue are shared with the
// baseline via the Re template flag on tv2d_tile/tv2d_run; the ring walk
// is the same rowring model that tests/ring_bounds_model.hpp verifies.
#pragma once

#include "tv/tv2d_impl.hpp"

namespace tvs::tv {

template <class V, class F, class T>
void tv2d_re_run(const F& f, grid::Grid2D<T>& g, long steps, int s,
                 Workspace2D<V, T>& ws) {
  tv2d_run<V, F, T, /*Re=*/true>(f, g, steps, s, ws);
}

}  // namespace tvs::tv
