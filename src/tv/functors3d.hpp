// Stencil functor for the 3D temporal-vectorization engine.
#pragma once

#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tv {

template <class V>
struct J3D7F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cc, cw, ce, cs, cn, cb, cf;
  stencil::C3D7T<T> c;

  explicit J3D7F(const stencil::C3D7T<T>& k)
      : cc(V::set1(k.c)),
        cw(V::set1(k.w)),
        ce(V::set1(k.e)),
        cs(V::set1(k.s)),
        cn(V::set1(k.n)),
        cb(V::set1(k.b)),
        cf(V::set1(k.f)),
        c(k) {}

  V apply(const V* bm1, const V* b0c, const V* b0m, const V* b0p,
          const V* bp1, int z) const {
    return stencil::j3d7(cc, cw, ce, cs, cn, cb, cf, b0c[z], b0c[z - 1],
                         b0c[z + 1], b0m[z], b0p[z], bm1[z], bp1[z]);
  }
  template <class At>
  T apply_scalar(At&& at, int r, int y, int z) const {
    return stencil::j3d7(c.c, c.w, c.e, c.s, c.n, c.b, c.f, at(r, y, z),
                         at(r, y, z - 1), at(r, y, z + 1), at(r, y - 1, z),
                         at(r, y + 1, z), at(r - 1, y, z), at(r + 1, y, z));
  }

  // Redundancy-eliminated line carry (`re` engines, arXiv:2103.09235
  // restricted to bit-exact operand reuse): the three center-line operands
  // slide across consecutive z in registers, so each center-line ring
  // vector is loaded once instead of three times.  Canonical j3d7 operand
  // order preserved — bit-identical to apply().  Seeded for an inner loop
  // starting at z = 1.
  struct Carry {
    V dm, d0;
    Carry(const V* /*bm1*/, const V* b0c, const V* /*b0m*/,
          const V* /*b0p*/, const V* /*bp1*/)
        : dm(b0c[0]), d0(b0c[1]) {}
    V apply(const J3D7F& f, const V* bm1, const V* b0c, const V* b0m,
            const V* b0p, const V* bp1, int z) {
      const V dp = b0c[z + 1];
      const V w = stencil::j3d7(f.cc, f.cw, f.ce, f.cs, f.cn, f.cb, f.cf, d0,
                                dm, dp, b0m[z], b0p[z], bm1[z], bp1[z]);
      dm = d0;
      d0 = dp;
      return w;
    }
  };
};

}  // namespace tvs::tv
