// Stencil functor for the 3D temporal-vectorization engine.
#pragma once

#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tv {

template <class V>
struct J3D7F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cc, cw, ce, cs, cn, cb, cf;
  stencil::C3D7T<T> c;

  explicit J3D7F(const stencil::C3D7T<T>& k)
      : cc(V::set1(k.c)),
        cw(V::set1(k.w)),
        ce(V::set1(k.e)),
        cs(V::set1(k.s)),
        cn(V::set1(k.n)),
        cb(V::set1(k.b)),
        cf(V::set1(k.f)),
        c(k) {}

  V apply(const V* bm1, const V* b0c, const V* b0m, const V* b0p,
          const V* bp1, int z) const {
    return stencil::j3d7(cc, cw, ce, cs, cn, cb, cf, b0c[z], b0c[z - 1],
                         b0c[z + 1], b0m[z], b0p[z], bm1[z], bp1[z]);
  }
  template <class At>
  T apply_scalar(At&& at, int r, int y, int z) const {
    return stencil::j3d7(c.c, c.w, c.e, c.s, c.n, c.b, c.f, at(r, y, z),
                         at(r, y, z - 1), at(r, y, z + 1), at(r, y - 1, z),
                         at(r, y + 1, z), at(r - 1, y, z), at(r + 1, y, z));
  }
};

}  // namespace tvs::tv
