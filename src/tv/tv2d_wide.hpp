// Width-pinned (vl = 8) 2D and 3D Jacobi entry points: one temporal tile
// advances eight time steps, halving memory traffic again relative to
// vl = 4 at the cost of deeper scalar edge triangles.  These are thin
// dispatchers over the registry's width axis (AVX-512 VecD8 engines on an
// AVX-512 host, ScalarVec<double, 8> elsewhere); there is no dedicated
// wide kernel TU any more — the lane-generic engines of tv2d.cpp/tv3d.cpp
// serve every width.
#pragma once

#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

void tv_jacobi2d5_run_vl8(const stencil::C2D5& c, grid::Grid2D<double>& u,
                          long steps, int stride = 2);
void tv_jacobi2d9_run_vl8(const stencil::C2D9& c, grid::Grid2D<double>& u,
                          long steps, int stride = 2);
void tv_jacobi3d7_run_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u,
                          long steps, int stride = 2);

}  // namespace tvs::tv
