// LCS strip kernel variant (int32 x 8) — compiled once per vl4-family
// backend.  The public tv_lcs / tv_lcs_row wrappers (allocation, resize)
// live in tv_dispatch.cpp; only the raw row engine is backend code.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_lcs_impl.hpp"

namespace tvs::tv {
namespace {

void lcs_rows(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
              std::int32_t* row) {
  tv_lcs_rows_impl<simd::NativeVec<std::int32_t, 8>>(a, b, row);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv_lcs) {
  TVS_REGISTER(kTvLcsRows, TvLcsRowsFn, lcs_rows);
}

}  // namespace tvs::tv
