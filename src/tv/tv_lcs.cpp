#include "tv/tv_lcs.hpp"

#include "tv/tv_lcs_impl.hpp"

namespace tvs::tv {

std::vector<std::int32_t> tv_lcs_row(std::span<const std::int32_t> a,
                                     std::span<const std::int32_t> b) {
  const std::size_t nb = b.size();
  std::vector<std::int32_t> row(nb + 1 + 8, 0);
  if (nb > 0)
    tv_lcs_rows_impl<simd::NativeVec<std::int32_t, 8>>(a, b, row.data());
  row.resize(nb + 1);
  return row;
}

std::int32_t tv_lcs(std::span<const std::int32_t> a,
                    std::span<const std::int32_t> b) {
  return tv_lcs_row(a, b).back();
}

}  // namespace tvs::tv
