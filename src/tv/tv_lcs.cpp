// LCS strip kernel variant — compiled once per SIMD backend at the
// backend's native int32 width (8 DP rows per tile under scalar/avx2, 16
// under avx512); the scalar backend also pins the 16-lane instantiation.
// The public tv_lcs / tv_lcs_row wrappers (allocation, resize) live in
// tv_dispatch.cpp; only the raw row engine is backend code.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_lcs_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<std::int32_t>;

void lcs_rows(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
              std::int32_t* row) {
  tv_lcs_rows_impl<V>(a, b, row);
}

#if TVS_BACKEND_LEVEL == 0
void lcs_rows_vl16(std::span<const std::int32_t> a,
                   std::span<const std::int32_t> b, std::int32_t* row) {
  tv_lcs_rows_impl<simd::ScalarVec<std::int32_t, 16>>(a, b, row);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_lcs) {
  TVS_REGISTER_VL_DT(kTvLcsRows, TvLcsRowsFn, lcs_rows, V::lanes,
                     dispatch::DType::kI32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL_DT(kTvLcsRows, TvLcsRowsFn, lcs_rows_vl16, 16,
                     dispatch::DType::kI32);
#endif
}

}  // namespace tvs::tv
