// Redundancy-eliminated 3D Jacobi kernel variant (tv3d_re_impl.hpp) —
// compiled once per SIMD backend at the backend's native vector width for
// double AND float element types, same axes as the baseline tv3d TU.  The
// scalar backend additionally registers the width-pinned wide
// instantiations.  Same Fn signatures as the baseline id; results are
// bit-identical.
#include "dispatch/backend_variant.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv3d_re_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;
using VF = dispatch::BackendVec<float>;

void jacobi3d7_re(const stencil::C3D7& c, grid::Grid3D<double>& u, long steps,
                  int stride) {
  Workspace3D<V, double> ws;
  tv3d_re_run(J3D7F<V>(c), u, steps, stride, ws);
}

void jacobi3d7_re_f32(const stencil::C3D7f& c, grid::Grid3D<float>& u,
                      long steps, int stride) {
  Workspace3D<VF, float> ws;
  tv3d_re_run(J3D7F<VF>(c), u, steps, stride, ws);
}

#if TVS_BACKEND_LEVEL == 0
using V8 = simd::ScalarVec<double, 8>;
using VF16 = simd::ScalarVec<float, 16>;

void jacobi3d7_re_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u,
                      long steps, int stride) {
  Workspace3D<V8, double> ws;
  tv3d_re_run(J3D7F<V8>(c), u, steps, stride, ws);
}

void jacobi3d7_re_f32_vl16(const stencil::C3D7f& c, grid::Grid3D<float>& u,
                           long steps, int stride) {
  Workspace3D<VF16, float> ws;
  tv3d_re_run(J3D7F<VF16>(c), u, steps, stride, ws);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv3d_re) {
  using dispatch::DType;
  TVS_REGISTER_VL(kTvJacobi3D7Re, TvJacobi3D7Fn, jacobi3d7_re, V::lanes);
  TVS_REGISTER_VL_DT(kTvJacobi3D7Re, TvJacobi3D7F32Fn, jacobi3d7_re_f32,
                     VF::lanes, DType::kF32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvJacobi3D7Re, TvJacobi3D7Fn, jacobi3d7_re_vl8, 8);
  TVS_REGISTER_VL_DT(kTvJacobi3D7Re, TvJacobi3D7F32Fn, jacobi3d7_re_f32_vl16,
                     16, DType::kF32);
#endif
}

}  // namespace tvs::tv
