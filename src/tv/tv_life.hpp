// Temporally vectorized Game of Life (int32 x 8 lanes: one tile advances
// eight generations; §3.4).
#pragma once

#include <cstdint>

#include "grid/grid2d.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tv {

void tv_life_run(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u,
                 long steps, int stride = 2);

}  // namespace tvs::tv
