#include "tv/tv_gs2d.hpp"

#include "tv/tv_gs2d_impl.hpp"

namespace tvs::tv {

void tv_gs2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u, long sweeps,
                  int stride) {
  tv_gs2d_run_impl<simd::NativeVec<double, 4>>(c, u, sweeps, stride);
}

}  // namespace tvs::tv
