// 2D Gauss-Seidel kernel variant — compiled once per SIMD backend.  Public
// entry point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs2d_impl.hpp"

namespace tvs::tv {
namespace {

void gs2d5(const stencil::C2D5& c, grid::Grid2D<double>& u, long sweeps,
           int stride) {
  tv_gs2d_run_impl<simd::NativeVec<double, 4>>(c, u, sweeps, stride);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs2d) {
  TVS_REGISTER(kTvGs2D5, TvGs2D5Fn, gs2d5);
}

}  // namespace tvs::tv
