// 2D Gauss-Seidel kernel variant — compiled once per SIMD backend at the
// backend's native vector width (the scalar backend also pins vl = 8).
// Public entry point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs2d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;

void gs2d5(const stencil::C2D5& c, grid::Grid2D<double>& u, long sweeps,
           int stride) {
  tv_gs2d_run_impl<V>(c, u, sweeps, stride);
}

#if TVS_BACKEND_LEVEL == 0
void gs2d5_vl8(const stencil::C2D5& c, grid::Grid2D<double>& u, long sweeps,
               int stride) {
  tv_gs2d_run_impl<simd::ScalarVec<double, 8>>(c, u, sweeps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs2d) {
  TVS_REGISTER_VL(kTvGs2D5, TvGs2D5Fn, gs2d5, V::lanes);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvGs2D5, TvGs2D5Fn, gs2d5_vl8, 8);
#endif
}

}  // namespace tvs::tv
