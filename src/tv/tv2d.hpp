// Public entry points for temporally vectorized 2D Jacobi stencils.
// The paper's default stride for 2D kernels is s = 2 (§3.4).
#pragma once

#include "grid/grid2d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

inline constexpr int kDefaultStride2D = 2;

void tv_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                      long steps, int stride = kDefaultStride2D);
void tv_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                      long steps, int stride = kDefaultStride2D);

// Single-precision overloads.
void tv_jacobi2d5_run(const stencil::C2D5f& c, grid::Grid2D<float>& u,
                      long steps, int stride = kDefaultStride2D);
void tv_jacobi2d9_run(const stencil::C2D9f& c, grid::Grid2D<float>& u,
                      long steps, int stride = kDefaultStride2D);

}  // namespace tvs::tv
