// Public entry point for the temporally vectorized 2D5P Gauss-Seidel
// stencil (s >= 2; see tv_gs2d_impl.hpp).
#pragma once

#include "grid/grid2d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

void tv_gs2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u, long sweeps,
                  int stride = 2);

// Single-precision overload.
void tv_gs2d5_run(const stencil::C2D5f& c, grid::Grid2D<float>& u, long sweeps,
                  int stride = 2);

}  // namespace tvs::tv
