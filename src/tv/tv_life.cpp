#include "tv/tv_life.hpp"

#include "tv/functors2d.hpp"
#include "tv/tv2d_impl.hpp"

namespace tvs::tv {

void tv_life_run(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u,
                 long steps, int stride) {
  using V = simd::NativeVec<std::int32_t, 8>;
  Workspace2D<V, std::int32_t> ws;
  tv2d_run(LifeF<V>(r), u, steps, stride, ws);
}

}  // namespace tvs::tv
