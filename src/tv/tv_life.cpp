// Game-of-Life kernel variant (int32 x 8 lanes, eight generations per
// tile) — compiled once per vl4-family backend.  Public entry point lives
// in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors2d.hpp"
#include "tv/tv2d_impl.hpp"

namespace tvs::tv {
namespace {

void life(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u,
          long steps, int stride) {
  using V = simd::NativeVec<std::int32_t, 8>;
  Workspace2D<V, std::int32_t> ws;
  tv2d_run(LifeF<V>(r), u, steps, stride, ws);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv_life) {
  TVS_REGISTER(kTvLife, TvLifeFn, life);
}

}  // namespace tvs::tv
