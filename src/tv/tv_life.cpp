// Game-of-Life kernel variant — compiled once per SIMD backend at the
// backend's native int32 width (8 lanes under scalar/avx2, 16 under
// avx512: 16 generations per tile).  The scalar backend also pins the
// 16-lane instantiation for the width axis.  Public entry point lives in
// tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors2d.hpp"
#include "tv/tv2d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<std::int32_t>;

void life(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u,
          long steps, int stride) {
  Workspace2D<V, std::int32_t> ws;
  tv2d_run(LifeF<V>(r), u, steps, stride, ws);
}

#if TVS_BACKEND_LEVEL == 0
using V16 = simd::ScalarVec<std::int32_t, 16>;

void life_vl16(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u,
               long steps, int stride) {
  Workspace2D<V16, std::int32_t> ws;
  tv2d_run(LifeF<V16>(r), u, steps, stride, ws);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_life) {
  TVS_REGISTER_VL_DT(kTvLife, TvLifeFn, life, V::lanes,
                     dispatch::DType::kI32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL_DT(kTvLife, TvLifeFn, life_vl16, 16,
                     dispatch::DType::kI32);
#endif
}

}  // namespace tvs::tv
