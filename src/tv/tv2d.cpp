#include "tv/tv2d.hpp"

#include "tv/functors2d.hpp"
#include "tv/tv2d_impl.hpp"

namespace tvs::tv {

namespace {
using V = simd::NativeVec<double, 4>;
}

void tv_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                      long steps, int stride) {
  Workspace2D<V, double> ws;
  tv2d_run(J2D5F<V>(c), u, steps, stride, ws);
}

void tv_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                      long steps, int stride) {
  Workspace2D<V, double> ws;
  tv2d_run(J2D9F<V>(c), u, steps, stride, ws);
}

}  // namespace tvs::tv
