// 2D Jacobi kernel variants — compiled once per SIMD backend.  Public entry
// points live in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors2d.hpp"
#include "tv/tv2d_impl.hpp"

namespace tvs::tv {
namespace {

using V = simd::NativeVec<double, 4>;

void jacobi2d5(const stencil::C2D5& c, grid::Grid2D<double>& u, long steps,
               int stride) {
  Workspace2D<V, double> ws;
  tv2d_run(J2D5F<V>(c), u, steps, stride, ws);
}

void jacobi2d9(const stencil::C2D9& c, grid::Grid2D<double>& u, long steps,
               int stride) {
  Workspace2D<V, double> ws;
  tv2d_run(J2D9F<V>(c), u, steps, stride, ws);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv2d) {
  TVS_REGISTER(kTvJacobi2D5, TvJacobi2D5Fn, jacobi2d5);
  TVS_REGISTER(kTvJacobi2D9, TvJacobi2D9Fn, jacobi2d9);
}

}  // namespace tvs::tv
