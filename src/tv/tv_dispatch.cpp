// Public tv/ entry points: legality checking + registry dispatch.
//
// This TU is common code (no SIMD flags).  Each entry point validates the
// caller's stride against the §3.2 legality condition for its dependence
// set — an illegal stride now raises std::invalid_argument instead of
// silently corrupting results — then resolves its kernel id once (first
// call) against the selected backend and caches the function pointer.
// The float overloads resolve the same ids pinned to DType::kF32 on the
// registry's dtype axis (native float width: 8 lanes under scalar/avx2,
// 16 under avx512).
#include <span>
#include <vector>

#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "stencil/dependence.hpp"
#include "tv/tv1d.hpp"
#include "tv/tv1d_impl.hpp"  // kMaxStride (ring capacity of the 1D engines)
#include "tv/tv2d.hpp"
#include "tv/tv3d.hpp"
#include "tv/tv_gs1d.hpp"
#include "tv/tv_gs2d.hpp"
#include "tv/tv_gs3d.hpp"
#include "tv/tv_lcs.hpp"  // also kLcsRowPad (row padding of the lcs engines)
#include "tv/tv_life.hpp"

namespace tvs::tv {

namespace {

template <class Fn>
Fn* lookup(std::string_view id) {
  return dispatch::KernelRegistry::instance().get<Fn>(id);
}

// Dtype-pinned lookup at the selected backend's native width for the
// dtype (float engines resolve at 8 lanes under scalar/avx2 and 16 under
// avx512, falling back downward like every lookup).
template <class Fn>
Fn* lookup_f32(std::string_view id) {
  return dispatch::KernelRegistry::instance().get_at<Fn>(
      id, dispatch::selected_backend(), dispatch::kAnyVl,
      dispatch::DType::kF32);
}

}  // namespace

void tv_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi1d3_run", stencil::jacobi1d_deps(1),
                                stride, kMaxStride);
  static const auto fn = lookup<dispatch::TvJacobi1D3Fn>(dispatch::kTvJacobi1D3);
  fn(c, u, steps, stride);
}

void tv_jacobi1d5_run(const stencil::C1D5& c, grid::Grid1D<double>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi1d5_run", stencil::jacobi1d_deps(2),
                                stride, kMaxStride);
  static const auto fn = lookup<dispatch::TvJacobi1D5Fn>(dispatch::kTvJacobi1D5);
  fn(c, u, steps, stride);
}

void tv_jacobi1d3_run(const stencil::C1D3f& c, grid::Grid1D<float>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi1d3_run", stencil::jacobi1d_deps(1),
                                stride, kMaxStride);
  static const auto fn =
      lookup_f32<dispatch::TvJacobi1D3F32Fn>(dispatch::kTvJacobi1D3);
  fn(c, u, steps, stride);
}

void tv_jacobi1d5_run(const stencil::C1D5f& c, grid::Grid1D<float>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi1d5_run", stencil::jacobi1d_deps(2),
                                stride, kMaxStride);
  static const auto fn =
      lookup_f32<dispatch::TvJacobi1D5F32Fn>(dispatch::kTvJacobi1D5);
  fn(c, u, steps, stride);
}

void tv_jacobi2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi2d5_run", stencil::jacobi2d_deps(1),
                                stride);
  static const auto fn = lookup<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5);
  fn(c, u, steps, stride);
}

void tv_jacobi2d9_run(const stencil::C2D9& c, grid::Grid2D<double>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi2d9_run", stencil::jacobi2d_deps(1),
                                stride);
  static const auto fn = lookup<dispatch::TvJacobi2D9Fn>(dispatch::kTvJacobi2D9);
  fn(c, u, steps, stride);
}

void tv_jacobi2d5_run(const stencil::C2D5f& c, grid::Grid2D<float>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi2d5_run", stencil::jacobi2d_deps(1),
                                stride);
  static const auto fn =
      lookup_f32<dispatch::TvJacobi2D5F32Fn>(dispatch::kTvJacobi2D5);
  fn(c, u, steps, stride);
}

void tv_jacobi2d9_run(const stencil::C2D9f& c, grid::Grid2D<float>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi2d9_run", stencil::jacobi2d_deps(1),
                                stride);
  static const auto fn =
      lookup_f32<dispatch::TvJacobi2D9F32Fn>(dispatch::kTvJacobi2D9);
  fn(c, u, steps, stride);
}

void tv_jacobi3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi3d7_run", stencil::jacobi3d_deps(1),
                                stride);
  static const auto fn = lookup<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7);
  fn(c, u, steps, stride);
}

void tv_jacobi3d7_run(const stencil::C3D7f& c, grid::Grid3D<float>& u,
                      long steps, int stride) {
  stencil::require_legal_stride("tv_jacobi3d7_run", stencil::jacobi3d_deps(1),
                                stride);
  static const auto fn =
      lookup_f32<dispatch::TvJacobi3D7F32Fn>(dispatch::kTvJacobi3D7);
  fn(c, u, steps, stride);
}

void tv_gs1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
                  int stride) {
  stencil::require_legal_stride("tv_gs1d3_run", stencil::gauss_seidel_deps(1),
                                stride, kMaxStride);
  static const auto fn = lookup<dispatch::TvGs1D3Fn>(dispatch::kTvGs1D3);
  fn(c, u, sweeps, stride);
}

void tv_gs1d3_run(const stencil::C1D3f& c, grid::Grid1D<float>& u, long sweeps,
                  int stride) {
  stencil::require_legal_stride("tv_gs1d3_run", stencil::gauss_seidel_deps(1),
                                stride, kMaxStride);
  static const auto fn = lookup_f32<dispatch::TvGs1D3F32Fn>(dispatch::kTvGs1D3);
  fn(c, u, sweeps, stride);
}

void tv_gs2d5_run(const stencil::C2D5& c, grid::Grid2D<double>& u, long sweeps,
                  int stride) {
  stencil::require_legal_stride("tv_gs2d5_run", stencil::gauss_seidel_deps(1),
                                stride);
  static const auto fn = lookup<dispatch::TvGs2D5Fn>(dispatch::kTvGs2D5);
  fn(c, u, sweeps, stride);
}

void tv_gs2d5_run(const stencil::C2D5f& c, grid::Grid2D<float>& u, long sweeps,
                  int stride) {
  stencil::require_legal_stride("tv_gs2d5_run", stencil::gauss_seidel_deps(1),
                                stride);
  static const auto fn = lookup_f32<dispatch::TvGs2D5F32Fn>(dispatch::kTvGs2D5);
  fn(c, u, sweeps, stride);
}

void tv_gs3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
                  int stride) {
  stencil::require_legal_stride("tv_gs3d7_run", stencil::gauss_seidel_deps(1),
                                stride);
  static const auto fn = lookup<dispatch::TvGs3D7Fn>(dispatch::kTvGs3D7);
  fn(c, u, sweeps, stride);
}

void tv_gs3d7_run(const stencil::C3D7f& c, grid::Grid3D<float>& u, long sweeps,
                  int stride) {
  stencil::require_legal_stride("tv_gs3d7_run", stencil::gauss_seidel_deps(1),
                                stride);
  static const auto fn = lookup_f32<dispatch::TvGs3D7F32Fn>(dispatch::kTvGs3D7);
  fn(c, u, sweeps, stride);
}

void tv_life_run(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u,
                 long steps, int stride) {
  stencil::require_legal_stride("tv_life_run", stencil::jacobi2d_deps(1),
                                stride);
  static const auto fn = lookup<dispatch::TvLifeFn>(dispatch::kTvLife);
  fn(r, u, steps, stride);
}

std::vector<std::int32_t> tv_lcs_row(std::span<const std::int32_t> a,
                                     std::span<const std::int32_t> b) {
  const std::size_t nb = b.size();
  std::vector<std::int32_t> row(nb + 1 + kLcsRowPad, 0);
  if (nb > 0) {
    static const auto fn = lookup<dispatch::TvLcsRowsFn>(dispatch::kTvLcsRows);
    fn(a, b, row.data());
  }
  row.resize(nb + 1);
  return row;
}

std::int32_t tv_lcs(std::span<const std::int32_t> a,
                    std::span<const std::int32_t> b) {
  return tv_lcs_row(a, b).back();
}

}  // namespace tvs::tv
