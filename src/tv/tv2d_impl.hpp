// Temporal vectorization for 2D stencils (§3.2 "High-dimensional stencils").
//
// The stride-s lanes live on the *outermost* space dimension x (rows); the
// inner y loop runs over whole rows.  Unlike the 1D kernel, the reorganized
// input vectors cannot stay in registers — each x iteration produces a full
// row of them, consumed s iterations later — so they are stored in a ring
// of s+2 rows of vectors (vl = V::lanes: 4/8 for doubles, 8/16 for int32,
// or any ScalarVec width the tests instantiate):
//
//   ring(p)[y] = [ lvl0 @ (p+(vl-1)s, y) , ... , lvl(vl-1) @ (p, y) ]
//
// This ring is the paper's "transposed data layout" made explicit: one
// aligned vector store per produced input vector, one aligned load per
// consumed one (§3.3).  Everything else mirrors the 1D kernel: a scalar
// prologue forwards rows [1, (vl-l)s] to level l, the steady loop advances
// whole rows vl time steps with grouped top stores / bottom loads along y,
// the ring is flushed into right-edge scratch planes, and a scalar epilogue
// finishes rows [nx+2-l*s, nx] per level.  The main array is updated in
// place (the top-row write at x trails every bottom read at x+vl*s).
//
// The stencil functor F supplies (V = vector type, T = element type):
//   static constexpr int radius = 1;
//   V apply(const V* rm1, const V* r0, const V* rp1, int y)
//       — rm1/r0/rp1 are ring rows for x-1, x, x+1, indexable at y-1..y+1;
//   T apply_scalar(At&& at, int r, int y)
//       — `at(r, y)` reads the previous level with boundary fallback.
#pragma once

#include <algorithm>
#include <cassert>
#include <utility>

#include "grid/aligned.hpp"
#include "grid/grid2d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "tv/ring.hpp"

namespace tvs::tv {

// Scratch for one 2D run: ring rows, edge planes, and a residual-step grid.
template <class V, class T>
struct Workspace2D {
  static constexpr int VL = V::lanes;

  grid::AlignedBuffer<V> ring;   // (s+2) rows x rstride vectors
  grid::AlignedBuffer<T> lscr;   // (VL-1) levels x lrows x rstride
  grid::AlignedBuffer<T> rscr;   // (VL-1) levels x rrows x rstride
  grid::Grid2D<T> tmp;           // residual / fallback ping-pong partner
  int s = 0, ny = 0, nx = 0;
  std::ptrdiff_t rstride = 0;
  int lrows = 0, rrows = 0, rbase = 0;

  void prepare(int stride, int nx_, int ny_) {
    s = stride;
    nx = nx_;
    ny = ny_;
    rstride = ((ny + 4 + 15) / 16) * 16;
    lrows = (VL - 1) * s + 1;
    // Trailing slack, not a lane count.  tvslint: allow(R4)
    rrows = VL * s + 4;
    rbase = nx - VL * s - 1;  // right planes cover rows [rbase+1, nx]
    ring = grid::AlignedBuffer<V>(
        static_cast<std::size_t>(s + 2) * static_cast<std::size_t>(rstride));
    lscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * lrows *
                                  static_cast<std::size_t>(rstride));
    rscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * rrows *
                                  static_cast<std::size_t>(rstride));
    if (tmp.nx() != nx || tmp.ny() != ny) tmp = grid::Grid2D<T>(nx, ny);
  }

  // Ring row for position p (valid y in [-1, rstride-2]; offset +1).
  V* ring_row(int p) {
    const int M = s + 2;
    const int slot = RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(rstride) +
           1;
  }
  // Left scratch plane value, level in 1..VL-1, row in [1, (VL-level)*s].
  T& lv(int level, int r, int y) {
    return lscr[(static_cast<std::size_t>(level - 1) * lrows + r) *
                    static_cast<std::size_t>(rstride) +
                static_cast<std::size_t>(y + 1)];
  }
  // Right scratch plane value, level in 1..VL-1, row in [rbase+1, nx].
  T& rv(int level, int r, int y) {
    return rscr[(static_cast<std::size_t>(level - 1) * rrows + (r - rbase)) *
                    static_cast<std::size_t>(rstride) +
                static_cast<std::size_t>(y + 1)];
  }
};

namespace detail2d {

// Plain scalar steps for grids too small for the pipeline and for the
// T % vl residual.
template <class F, class T>
void scalar_steps(const F& f, grid::Grid2D<T>& g, grid::Grid2D<T>& tmp,
                  int nsteps) {
  const int nx = g.nx(), ny = g.ny();
  for (int t = 0; t < nsteps; ++t) {
    const auto at = [&](int r, int y) -> T { return g.at(r, y); };
    for (int r = 1; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y) tmp.at(r, y) = f.apply_scalar(at, r, y);
    for (int r = 1; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y) g.at(r, y) = tmp.at(r, y);
  }
}

}  // namespace detail2d

// One vl-step temporally vectorized tile over the full grid, in place.
// Requires nx >= vl*s and s >= 2 (radius-1 stencils).
//
// Re = the redundancy-eliminated inner loop (arXiv:2103.08825 /
// 2103.09235, see tv2d_re_impl.hpp): identical prologue / gather / flush /
// epilogue and bit-identical arithmetic, but each produced ring vector
// costs ONE shuffle (simd::retire_shift_in) and the functor's F::Carry
// slides the shared column operands in registers across consecutive y.
template <class V, class F, class T, bool Re = false>
void tv2d_tile(const F& f, grid::Grid2D<T>& g, int s, Workspace2D<V, T>& ws) {
  static_assert(F::radius == 1, "2D engine covers radius-1 stencils");
  constexpr int VL = V::lanes;
  const int nx = g.nx(), ny = g.ny();
  assert(nx >= VL * s && s >= 2);
  const int rbase = ws.rbase;

  // Accessor for level `lev` (0 = the array) with boundary fallback.
  const auto left_at = [&](int lev) {
    return [&, lev](int r, int y) -> T {
      if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny) return g.at(r, y);
      return ws.lv(lev, r, y);
    };
  };

  // ---- prologue: left trapezoid of rows, scalar ----------------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    const auto at = left_at(lev - 1);
    for (int r = 1; r <= (VL - lev) * s; ++r)
      for (int y = 1; y <= ny; ++y) ws.lv(lev, r, y) = f.apply_scalar(at, r, y);
  }

  // ---- gather ring rows p = 0 .. s ------------------------------------------
  const auto lv_any = [&](int lev, int r, int y) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny) return g.at(r, y);
    return ws.lv(lev, r, y);
  };
  for (int p = 0; p <= s; ++p) {
    V* row = ws.ring_row(p);
    alignas(64) T lanes[VL];
    for (int y = 0; y <= ny + 1; ++y) {
      for (int k = 0; k < VL; ++k)
        lanes[k] = lv_any(k, p + (VL - 1 - k) * s, y);
      row[y] = V::load(lanes);
    }
  }

  // ---- steady loop ------------------------------------------------------------
  const int x_end = nx + 1 - VL * s;
  for (int x = 1; x <= x_end; ++x) {
    const V* rm1 = ws.ring_row(x - 1);
    const V* r0 = ws.ring_row(x);
    const V* rp1 = ws.ring_row(x + 1);
    V* rout = ws.ring_row(x + s);
    T* trow = g.row(x);
    const T* brow = g.row(x + VL * s);

    // Boundary columns of the produced row: constant at every level.
    {
      alignas(64) T lanes[VL];
      const int p = x + s;
      for (const int y : {0, ny + 1}) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g.at(std::min(p + (VL - 1 - k) * s, nx + 1), y);
        rout[y] = V::load(lanes);
      }
    }

    if constexpr (Re) {
      // Redundancy-eliminated inner loop: one retire_shift_in shuffle per
      // produced vector (tops stream out scalar, fresh bottoms stream in
      // scalar) and the functor's Carry slides the shared column operands
      // in registers.  Bit-identical to the baseline loop below.
      typename F::Carry carry(rm1, r0, rp1);
      for (int y = 1; y <= ny; ++y) {
        const V w = carry.apply(f, rm1, r0, rp1, y);
        rout[y] = simd::retire_shift_in(w, brow[y], &trow[y]);
      }
    } else {
      int y = 1;
      V wbuf[VL];
      for (; y + VL - 1 <= ny; y += VL) {
        V bot = V::loadu(brow + y);
        for (int j = 0; j < VL - 1; ++j) {
          wbuf[j] = f.apply(rm1, r0, rp1, y + j);
          rout[y + j] = simd::shift_in_low_v(wbuf[j], bot);
          bot = simd::dispense_low(bot);
        }
        wbuf[VL - 1] = f.apply(rm1, r0, rp1, y + VL - 1);
        rout[y + VL - 1] = simd::shift_in_low_v(wbuf[VL - 1], bot);
        simd::collect_tops_arr(wbuf).storeu(trow + y);
      }
      for (; y <= ny; ++y) {
        const V w = f.apply(rm1, r0, rp1, y);
        rout[y] = simd::shift_in_low(w, brow[y]);
        trow[y] = simd::top_lane(w);
      }
    }
  }

  // ---- flush ring rows into the right scratch planes ------------------------
  const auto rput = [&](int lev, int r, int y, T v) {
    if (r >= rbase + 1 && r <= nx) ws.rv(lev, r, y) = v;
  };
  for (int p = x_end; p <= x_end + s; ++p) {
    const V* row = ws.ring_row(p);
    for (int y = 1; y <= ny; ++y) {
      const V u = row[y];
      for (int k = 1; k <= VL - 1; ++k) rput(k, p + (VL - 1 - k) * s, y, u[k]);
    }
  }

  const auto right_at = [&](int lev) {
    return [&, lev](int r, int y) -> T {
      if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny) return g.at(r, y);
      return ws.rv(lev, r, y);
    };
  };

  // ---- epilogue: right trapezoid of rows, scalar (levels ascending; the
  // final level writes to the array last so level 1 can still read lvl0) ----
  for (int lev = 1; lev <= VL - 1; ++lev) {
    const auto at = right_at(lev - 1);
    for (int r = nx + 2 - lev * s; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y) ws.rv(lev, r, y) = f.apply_scalar(at, r, y);
  }
  {
    const auto at = right_at(VL - 1);
    for (int r = nx + 2 - VL * s; r <= nx; ++r)
      for (int y = 1; y <= ny; ++y) g.at(r, y) = f.apply_scalar(at, r, y);
  }
}

// Advance g by `steps` time steps (vl per tile + scalar residual).
template <class V, class F, class T, bool Re = false>
void tv2d_run(const F& f, grid::Grid2D<T>& g, long steps, int s,
              Workspace2D<V, T>& ws) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  constexpr int VL = V::lanes;
  ws.prepare(s, g.nx(), g.ny());
  long t = 0;
  if (g.nx() >= VL * s) {
    for (; t + VL <= steps; t += VL) tv2d_tile<V, F, T, Re>(f, g, s, ws);
  }
  if (t < steps)
    detail2d::scalar_steps(f, g, ws.tmp, static_cast<int>(steps - t));
}

}  // namespace tvs::tv
