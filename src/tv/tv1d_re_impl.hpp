// Redundancy-eliminated 1D Jacobi temporal engine (the `re` variant).
//
// The baseline steady loop (tv1d_impl.hpp) pays ~2.5 shuffles per produced
// vector at vl = 4: one shift_in_low_v and one dispense rotate per
// iteration plus the vl-1-shuffle collect_tops assembly tree per vl
// outputs.  The two follow-up papers to the source paper show most of that
// reorganization is redundant ("An Efficient Vectorization Scheme for
// Stencil Computation", arXiv:2103.08825; "Reducing Redundancy in Data
// Organization and Arithmetic Calculation for Stencil Computations",
// arXiv:2103.09235).  This variant applies their reuse scheme under this
// repo's bit-exactness contract:
//
//   * ONE shuffle per produced vector — simd::retire_shift_in rotates the
//     finished top lane down to lane 0 (where extracting it is free on
//     every backend) and the same rotated register admits the fresh
//     bottom element via a blend.  The collect_tops tree and the separate
//     dispense rotate disappear; retired tops stream out as scalar stores
//     and fresh level-0 elements stream in as scalar loads, both on
//     contiguous forward streams.
//   * Common-subexpression reuse in the data organization — the 2R+1
//     window vectors slide across iterations in registers, so each ring
//     vector is loaded once instead of 2R+1 times.
//
// The arithmetic-calculation half of arXiv:2103.09235 (symmetric-
// coefficient partial-sum sharing) would reassociate the canonical fma
// chains and break the bit-identical-to-scalar contract the property
// suite and the tuner's §3.2 candidate-equivalence rely on, so it is
// deliberately limited to bit-exact operand reuse: the `re` engines
// produce results bit-identical to the baseline tv engines at every
// (dtype, vl, stride).
//
// Everything except the steady loop (prologue, ring gather, flush,
// epilogue, scalar residual) is shared with the baseline via the Re
// template flag on tv1d_tile/tv1d_run; the ring walk is the same
// jacobi1d model that tests/ring_bounds_model.hpp verifies.
#pragma once

#include "tv/tv1d_impl.hpp"

namespace tvs::tv {

template <class V, class F>
void tv1d_re_run(const F& f, grid::Grid1D<typename V::value_type>& u,
                 long steps, int s) {
  tv1d_run<V, F, /*Re=*/true>(f, u, steps, s);
}

}  // namespace tvs::tv
