// Temporal vectorization of the 3D7P Gauss-Seidel stencil (§3.4),
// generalized to any vector length vl = V::lanes.
//
// Update (ascending x, y, z):
//   a[x][y][z] <- cc*a[x][y][z]      + cw*a[x][y][z-1](new)
//              + ce*a[x][y][z+1]     + cs*a[x][y-1][z](new)
//              + cn*a[x][y+1][z]     + cb*a[x-1][y][z](new)
//              + cf*a[x+1][y][z]
//
// Newest-value forwarding needs one register (west, the previous z output)
// plus a single slab buffer `wslab`: during iteration x it is read at
// (y, z) for the newest *back* value (still holding the x-1 output) and at
// (y-1, z) for the newest *south* value (already overwritten with the
// current x output) — read-then-overwrite gives both for free.  Old values
// come from ring slabs x and x+1 (s+1 slots).  Runs in place.
#pragma once

#include <algorithm>
#include <cassert>

#include "grid/aligned.hpp"
#include "grid/grid3d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tv/ring.hpp"

namespace tvs::tv {

template <class V>
struct WorkspaceGs3D {
  using T = typename V::value_type;
  static constexpr int VL = V::lanes;

  grid::AlignedBuffer<V> ring;   // (s+1) slabs
  grid::AlignedBuffer<V> wslab;  // previous-x outputs
  grid::AlignedBuffer<T> lscr, rscr;  // (VL-1) levels of edge slabs
  int s = 0, nx = 0, ny = 0, nz = 0;
  std::ptrdiff_t zstride = 0, ystride = 0;
  int lrows = 0, rrows = 0, rbase = 0;

  void prepare(int stride, int nx_, int ny_, int nz_) {
    s = stride;
    nx = nx_;
    ny = ny_;
    nz = nz_;
    zstride = ((nz + 4 + 15) / 16) * 16;
    ystride = static_cast<std::ptrdiff_t>(ny + 2) * zstride;
    lrows = (VL - 1) * s + 1;
    // Trailing slack, not a lane count.  tvslint: allow(R4)
    rrows = VL * s + 4;
    rbase = nx - VL * s - 1;
    ring = grid::AlignedBuffer<V>(static_cast<std::size_t>(s + 1) *
                                  static_cast<std::size_t>(ystride));
    wslab = grid::AlignedBuffer<V>(static_cast<std::size_t>(ystride));
    lscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * lrows *
                                  static_cast<std::size_t>(ystride));
    rscr = grid::AlignedBuffer<T>(static_cast<std::size_t>(VL - 1) * rrows *
                                  static_cast<std::size_t>(ystride));
  }
  V* ring_line(int p, int y) {
    const int M = s + 1;
    const int slot = RingIndex(M).slot(p);
    return ring.data() +
           static_cast<std::size_t>(slot) * static_cast<std::size_t>(ystride) +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) + 1;
  }
  V* wslab_line(int y) {
    return wslab.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) + 1;
  }
  T& lv(int level, int r, int y, int z) {
    return lscr[(static_cast<std::size_t>(level - 1) * lrows + r) *
                    static_cast<std::size_t>(ystride) +
                static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) +
                static_cast<std::size_t>(z + 1)];
  }
  T& rv(int level, int r, int y, int z) {
    return rscr[(static_cast<std::size_t>(level - 1) * rrows + (r - rbase)) *
                    static_cast<std::size_t>(ystride) +
                static_cast<std::size_t>(y) * static_cast<std::size_t>(zstride) +
                static_cast<std::size_t>(z + 1)];
  }
};

namespace detailgs3d {

// One scalar Gauss-Seidel plane at level `lev`: old values (level lev-1)
// via old_at, newest values (level lev, rows/planes already updated) via
// new_at, results through put (which must be visible through new_at).
template <class T, class OldAt, class NewAt, class Put>
inline void gs_plane(const stencil::C3D7T<T>& c, int r, int ny, int nz,
                     OldAt&& old_at, NewAt&& new_at, Put&& put) {
  for (int y = 1; y <= ny; ++y) {
    T west = new_at(r, y, 0);
    for (int z = 1; z <= nz; ++z) {
      const T v = stencil::gs3d7(
          c.c, c.w, c.e, c.s, c.n, c.b, c.f, old_at(r, y, z), west,
          old_at(r, y, z + 1), new_at(r, y - 1, z), old_at(r, y + 1, z),
          new_at(r - 1, y, z), old_at(r + 1, y, z));
      put(y, z, v);
      west = v;
    }
  }
}

}  // namespace detailgs3d

// One vl-sweep tile over the whole grid, in place.  nx >= vl*s, s >= 2.
template <class V>
void tv_gs3d_tile(const stencil::C3D7T<typename V::value_type>& c,
                  grid::Grid3D<typename V::value_type>& g, int s,
                  WorkspaceGs3D<V>& ws) {
  using T = typename V::value_type;
  constexpr int VL = V::lanes;
  const int nx = g.nx(), ny = g.ny(), nz = g.nz();
  assert(nx >= VL * s && s >= 2);
  const int rbase = ws.rbase;

  const auto lv_any = [&](int lev, int r, int y, int z) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny || z < 1 || z > nz)
      return g.at(r, y, z);
    return ws.lv(lev, r, y, z);
  };

  // ---- prologue ---------------------------------------------------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    for (int r = 1; r <= (VL - lev) * s; ++r)
      detailgs3d::gs_plane(
          c, r, ny, nz,
          [&](int rr, int yy, int zz) { return lv_any(lev - 1, rr, yy, zz); },
          [&](int rr, int yy, int zz) { return lv_any(lev, rr, yy, zz); },
          [&](int yy, int zz, T v) { ws.lv(lev, r, yy, zz) = v; });
  }

  // ---- gather ring slabs p = 1 .. s and the initial wslab ----------------------
  alignas(64) T lanes[VL];
  for (int p = 1; p <= s; ++p)
    for (int y = 0; y <= ny + 1; ++y) {
      V* line = ws.ring_line(p, y);
      for (int z = 0; z <= nz + 1; ++z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = lv_any(k, p + (VL - 1 - k) * s, y, z);
        line[z] = V::load(lanes);
      }
    }
  for (int y = 0; y <= ny + 1; ++y) {
    V* line = ws.wslab_line(y);
    for (int z = 0; z <= nz + 1; ++z) {
      for (int k = 0; k < VL - 1; ++k)
        lanes[k] = lv_any(k + 1, (VL - 1 - k) * s, y, z);
      lanes[VL - 1] = g.at(0, y, z);
      line[z] = V::load(lanes);
    }
  }

  const V cc = V::set1(c.c), cw = V::set1(c.w), ce = V::set1(c.e),
          cs = V::set1(c.s), cn = V::set1(c.n), cb = V::set1(c.b),
          cf = V::set1(c.f);

  // ---- steady loop ----------------------------------------------------------------
  const int x_end = nx + 1 - VL * s;
  for (int x = 1; x <= x_end; ++x) {
    // Boundary rows/columns of the produced slab.
    {
      const int p = x + s;
      const auto fill = [&](int y, int z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g.at(std::min(p + (VL - 1 - k) * s, nx + 1), y, z);
        ws.ring_line(p, y)[z] = V::load(lanes);
      };
      for (int z = 0; z <= nz + 1; ++z) {
        fill(0, z);
        fill(ny + 1, z);
      }
      for (int y = 1; y <= ny; ++y) {
        fill(y, 0);
        fill(y, nz + 1);
      }
    }
    // Boundary row y = 0 of wslab: newest-south values are the constant
    // boundary plane at each lane's row.
    {
      V* line = ws.wslab_line(0);
      for (int z = 0; z <= nz + 1; ++z) {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g.at(x + (VL - 1 - k) * s, 0, z);
        line[z] = V::load(lanes);
      }
    }
    for (int y = 1; y <= ny; ++y) {
      const V* b0c = ws.ring_line(x, y);
      const V* b0p = ws.ring_line(x, y + 1);
      const V* bp1 = ws.ring_line(x + 1, y);
      V* lout = ws.ring_line(x + s, y);
      V* wsl = ws.wslab_line(y);         // (y,z): x-1 output until overwritten
      const V* wsm = ws.wslab_line(y - 1);  // (y-1,z): current-x output
      T* tline = g.line(x, y);
      const T* bline = g.line(x + VL * s, y);

      V wprev;
      {
        for (int k = 0; k < VL; ++k)
          lanes[k] = g.at(x + (VL - 1 - k) * s, y, 0);
        wprev = V::load(lanes);
      }

      int z = 1;
      V wbuf[VL];
      for (; z + VL - 1 <= nz; z += VL) {
        V bot = V::loadu(bline + z);
        for (int j = 0; j < VL; ++j) {
          const int zz = z + j;
          const V w = stencil::gs3d7(cc, cw, ce, cs, cn, cb, cf, b0c[zz],
                                     wprev, b0c[zz + 1], wsm[zz], b0p[zz],
                                     wsl[zz], bp1[zz]);
          wbuf[j] = w;
          wsl[zz] = w;
          lout[zz] = simd::shift_in_low_v(w, bot);
          if (j != VL - 1) bot = simd::rotate_down(bot);
          wprev = w;
        }
        simd::collect_tops_arr(wbuf).storeu(tline + z);
      }
      for (; z <= nz; ++z) {
        const V w = stencil::gs3d7(cc, cw, ce, cs, cn, cb, cf, b0c[z], wprev,
                                   b0c[z + 1], wsm[z], b0p[z], wsl[z], bp1[z]);
        wsl[z] = w;
        lout[z] = simd::shift_in_low(w, bline[z]);
        tline[z] = simd::top_lane(w);
        wprev = w;
      }
    }
  }

  // ---- flush ----------------------------------------------------------------------
  const auto rput = [&](int lev, int r, int y, int z, T v) {
    if (r >= rbase + 1 && r <= nx) ws.rv(lev, r, y, z) = v;
  };
  for (int p = x_end + 1; p <= x_end + s; ++p)
    for (int y = 1; y <= ny; ++y) {
      const V* line = ws.ring_line(p, y);
      for (int z = 1; z <= nz; ++z) {
        const V u = line[z];
        for (int k = 1; k <= VL - 1; ++k)
          rput(k, p + (VL - 1 - k) * s, y, z, u[k]);
      }
    }

  const auto rv_any = [&](int lev, int r, int y, int z) -> T {
    if (lev == 0 || r < 1 || r > nx || y < 1 || y > ny || z < 1 || z > nz)
      return g.at(r, y, z);
    return ws.rv(lev, r, y, z);
  };

  // ---- epilogue --------------------------------------------------------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    for (int r = nx + 2 - lev * s; r <= nx; ++r)
      detailgs3d::gs_plane(
          c, r, ny, nz,
          [&](int rr, int yy, int zz) { return rv_any(lev - 1, rr, yy, zz); },
          [&](int rr, int yy, int zz) { return rv_any(lev, rr, yy, zz); },
          [&](int yy, int zz, T v) { ws.rv(lev, r, yy, zz) = v; });
  }
  for (int r = nx + 2 - VL * s; r <= nx; ++r)
    detailgs3d::gs_plane(
        c, r, ny, nz,
        [&](int rr, int yy, int zz) { return rv_any(VL - 1, rr, yy, zz); },
        [&](int rr, int yy, int zz) { return g.at(rr, yy, zz); },
        [&](int yy, int zz, T v) { g.at(r, yy, zz) = v; });
}

// Advance g by `sweeps` Gauss-Seidel sweeps.
template <class V>
void tv_gs3d_run_impl(const stencil::C3D7T<typename V::value_type>& c,
                      grid::Grid3D<typename V::value_type>& g, long sweeps,
                      int s) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  using T = typename V::value_type;
  constexpr int VL = V::lanes;
  WorkspaceGs3D<V> ws;
  ws.prepare(s, g.nx(), g.ny(), g.nz());
  long t = 0;
  if (g.nx() >= VL * s) {
    for (; t + VL <= sweeps; t += VL) tv_gs3d_tile(c, g, s, ws);
  }
  for (; t < sweeps; ++t) {
    for (int r = 1; r <= g.nx(); ++r)
      detailgs3d::gs_plane(
          c, r, g.ny(), g.nz(),
          [&](int rr, int yy, int zz) { return g.at(rr, yy, zz); },
          [&](int rr, int yy, int zz) { return g.at(rr, yy, zz); },
          [&](int yy, int zz, T v) { g.at(r, yy, zz) = v; });
  }
}

}  // namespace tvs::tv
