// Public entry point for the temporally vectorized 3D7P Gauss-Seidel
// stencil (s >= 2; see tv_gs3d_impl.hpp).
#pragma once

#include "grid/grid3d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

void tv_gs3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
                  int stride = 2);

// Single-precision overload.
void tv_gs3d7_run(const stencil::C3D7f& c, grid::Grid3D<float>& u, long sweeps,
                  int stride = 2);

}  // namespace tvs::tv
