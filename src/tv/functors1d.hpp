// Stencil functors plugged into the 1D temporal-vectorization engines.
// Coefficients are pre-broadcast at construction; `apply` and
// `apply_scalar` evaluate the canonical formulas of stencil/kernels.hpp so
// vector and scalar paths agree bit for bit.  Every functor is generic in
// the element type: T = V::value_type (double or float).
#pragma once

#include "simd/vec.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tv {

template <class V>
struct J1D3F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 1;
  V cw, cc, ce;
  stencil::C1D3T<T> c;

  explicit J1D3F(const stencil::C1D3T<T>& k)
      : cw(V::set1(k.w)), cc(V::set1(k.c)), ce(V::set1(k.e)), c(k) {}

  V apply(const V* win) const {
    return stencil::j1d3(cw, cc, ce, win[0], win[1], win[2]);
  }
  V apply3(V w, V ctr, V e) const { return stencil::j1d3(cw, cc, ce, w, ctr, e); }
  T apply_scalar(const T* win) const {
    return stencil::j1d3(c.w, c.c, c.e, win[0], win[1], win[2]);
  }
};

template <class V>
struct J1D5F {
  using T = typename V::value_type;
  using value_type = T;
  static constexpr int radius = 2;
  V cw2, cw1, cc, ce1, ce2;
  stencil::C1D5T<T> c;

  explicit J1D5F(const stencil::C1D5T<T>& k)
      : cw2(V::set1(k.w2)),
        cw1(V::set1(k.w1)),
        cc(V::set1(k.c)),
        ce1(V::set1(k.e1)),
        ce2(V::set1(k.e2)),
        c(k) {}

  V apply(const V* win) const {
    return stencil::j1d5(cw2, cw1, cc, ce1, ce2, win[0], win[1], win[2],
                         win[3], win[4]);
  }
  T apply_scalar(const T* win) const {
    return stencil::j1d5(c.w2, c.w1, c.c, c.e1, c.e2, win[0], win[1], win[2],
                         win[3], win[4]);
  }
};

}  // namespace tvs::tv
