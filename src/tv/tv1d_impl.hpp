// Temporal vectorization, 1D Jacobi kernels — the paper's Algorithm 3
// generalized to any stencil radius R and any legal space stride s.
//
// Vector layout (vl = 4 lanes; lane 0 is the lowest):
//
//   input  u(p) = [ lvl0 @ p+3s , lvl1 @ p+2s , lvl2 @ p+s , lvl3 @ p ]
//   output w(p) = [ lvl1 @ p+3s , lvl2 @ p+2s , lvl3 @ p+s , lvl4 @ p ]
//
// where `lvl k` is the value after k of the tile's 4 time steps and p is the
// vector's *top position*.  One vector stencil application advances all four
// lanes one time step.  The top lane of w (lvl4 @ p) is finished and is
// written back; the rest shift up one lane, a fresh lvl0 element enters at
// lane 0, and the result is the input vector for position p+s, consumed s
// iterations later (the ILP-distance knob of §3.3).
//
// One 4-step tile over the full line (interior x = 1..nx, Dirichlet cells
// at x <= 0 and x >= nx+1) does:
//
//   prologue  (scalar)  lvl l over [1, (4-l)*s],  l = 1..3
//   gather              ring vectors for top positions p = 1-R .. s
//   steady    (vector)  x = 1 .. nx+1-4s, grouped top stores / bottom loads
//   flush               dump surviving ring lanes into right-edge scratch
//   epilogue  (scalar)  lvl l over [nx+2-(4-l)*s, nx], l = 1..3; lvl4 over
//                       [nx+2-4s, nx] written to the array last
//
// The array is updated *in place*: the lvl4 write at x trails every lvl0
// read (all at >= x+4s), which is how the paper halves the memory traffic
// of Jacobi stencils (§3.5).  Intermediate levels live only in registers
// except for the O(s) scratch at the two edges — the "84 scalar points per
// tile for s=7" of the evaluation section.
//
// The stencil functor F supplies:
//   static constexpr int radius;
//   V      apply(const V* win)      — win[0..2R], west-most first
//   double apply_scalar(const double* win)
//
// Everything here is templated on the vector type V so the identical
// algorithm runs on the scalar backend in tests.
#pragma once

#include <array>
#include <cassert>
#include <vector>

#include "grid/grid1d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"

namespace tvs::tv {

inline constexpr int kMaxStride = 32;

// Reusable scratch for one run (avoids per-tile allocation).
struct Workspace1D {
  std::vector<double> left;    // 3 levels, prologue values
  std::vector<double> right;   // 3 levels, flush + epilogue values
  std::vector<double> sbuf;    // scalar-fallback ping-pong line
  int s = 0, nx = 0;

  void prepare(int stride, int n, int radius) {
    s = stride;
    nx = n;
    left.assign(static_cast<std::size_t>(3) * (3 * s + 2), 0.0);
    right.assign(static_cast<std::size_t>(3) * (4 * s + radius + 4), 0.0);
  }
};

namespace detail {

// Plain scalar time steps (used for nx too small for the vector pipeline
// and for the T % 4 residual).  Ping-pongs through ws.sbuf.
template <class F>
void scalar_steps(const F& f, double* a, int nx, int nsteps,
                  Workspace1D& ws) {
  constexpr int R = F::radius;
  const std::size_t len = static_cast<std::size_t>(nx + 2 * R + 2);
  if (ws.sbuf.size() < len) ws.sbuf.resize(len);
  double* b = ws.sbuf.data() + R;  // b[-R..nx+1+R] valid
  double win[2 * R + 1];
  for (int t = 0; t < nsteps; ++t) {
    for (int x = 1 - R; x <= 0; ++x) b[x] = a[x];
    for (int x = nx + 1; x <= nx + R; ++x) b[x] = a[x];
    for (int x = 1; x <= nx; ++x) {
      for (int k = 0; k <= 2 * R; ++k) win[k] = a[x - R + k];
      b[x] = f.apply_scalar(win);
    }
    for (int x = 1; x <= nx; ++x) a[x] = b[x];
  }
}

}  // namespace detail

namespace detail {

// Compile-time-unrolled steady loop for the paper's 1D3P default (s = 7,
// R = 1, ring of 8 input vectors): the ring lives in eight named registers
// and every slot index is a constant, reproducing the paper's
// 13-vector-register implementation (§3.4).  x must start at 1 (slot
// arithmetic assumes x == 1 mod 8); returns the first unprocessed x.
template <class V, class F>
int steady_s7(const F& f, double* a, int x_end,
              std::array<V, kMaxStride + 2>& ring) {
  V r0 = ring[0], r1 = ring[1], r2 = ring[2], r3 = ring[3], r4 = ring[4],
    r5 = ring[5], r6 = ring[6], r7 = ring[7];
  int x = 1;
  for (; x + 7 <= x_end; x += 8) {
    // iterations j = 0..3: windows (r_j, r_j+1, r_j+2), produce into r_j
    V bot = V::loadu(a + x + 28);
    const V w0 = f.apply3(r0, r1, r2);
    r0 = simd::shift_in_low_v(w0, bot);
    bot = simd::rotate_down(bot);
    const V w1 = f.apply3(r1, r2, r3);
    r1 = simd::shift_in_low_v(w1, bot);
    bot = simd::rotate_down(bot);
    const V w2 = f.apply3(r2, r3, r4);
    r2 = simd::shift_in_low_v(w2, bot);
    bot = simd::rotate_down(bot);
    const V w3 = f.apply3(r3, r4, r5);
    r3 = simd::shift_in_low_v(w3, bot);
    simd::collect_tops(w0, w1, w2, w3).storeu(a + x);
    // iterations j = 4..7 (windows wrap into the freshly produced slots)
    bot = V::loadu(a + x + 32);
    const V w4 = f.apply3(r4, r5, r6);
    r4 = simd::shift_in_low_v(w4, bot);
    bot = simd::rotate_down(bot);
    const V w5 = f.apply3(r5, r6, r7);
    r5 = simd::shift_in_low_v(w5, bot);
    bot = simd::rotate_down(bot);
    const V w6 = f.apply3(r6, r7, r0);
    r6 = simd::shift_in_low_v(w6, bot);
    bot = simd::rotate_down(bot);
    const V w7 = f.apply3(r7, r0, r1);
    r7 = simd::shift_in_low_v(w7, bot);
    simd::collect_tops(w4, w5, w6, w7).storeu(a + x + 4);
  }
  ring[0] = r0;
  ring[1] = r1;
  ring[2] = r2;
  ring[3] = r3;
  ring[4] = r4;
  ring[5] = r5;
  ring[6] = r6;
  ring[7] = r7;
  return x;
}

}  // namespace detail

// One 4-step temporally vectorized tile; see the file comment.
// Requires nx >= 4*s and s >= radius+1 (checked by the caller).
template <class V, class F>
void tv1d_tile(const F& f, double* a, int nx, int s, Workspace1D& ws) {
  constexpr int R = F::radius;
  const int M = s + R;  // live input vectors (paper: "s + r")
  assert(s >= R + 1 && s <= kMaxStride && nx >= 4 * s);

  double* l1 = ws.left.data();          // lvl1 @ [1, 3s]
  double* l2 = l1 + (3 * s + 2);        // lvl2 @ [1, 2s]
  double* l3 = l2 + (3 * s + 2);        // lvl3 @ [1, s]
  const int rbase = nx - 4 * s - R;     // right scratch anchored at rbase
  const int rlen = 4 * s + R + 4;
  double* r1 = ws.right.data();         // lvl l @ [rbase+1, nx]
  double* r2 = r1 + rlen;
  double* r3 = r2 + rlen;

  // Value of level l (1..3) at position x during the prologue: boundary
  // cells keep their fixed value at every level.
  const auto lv = [&](const double* lev, int x) -> double {
    return x <= 0 ? a[x] : lev[x];
  };

  double win[2 * R + 1];

  // ---- prologue: left trapezoid, scalar ---------------------------------
  for (int x = 1; x <= 3 * s; ++x) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = a[x - R + k];
    l1[x] = f.apply_scalar(win);
  }
  for (int x = 1; x <= 2 * s; ++x) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = lv(l1, x - R + k);
    l2[x] = f.apply_scalar(win);
  }
  for (int x = 1; x <= s; ++x) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = lv(l2, x - R + k);
    l3[x] = f.apply_scalar(win);
  }

  // ---- gather the initial ring ------------------------------------------
  std::array<V, kMaxStride + 2> ring;
  const auto slot = [M](int p) { return ((p % M) + M) % M; };
  for (int p = 1 - R; p <= s; ++p) {
    alignas(64) double lanes[4];
    lanes[0] = a[p + 3 * s];
    lanes[1] = lv(l1, p + 2 * s);
    lanes[2] = lv(l2, p + s);
    lanes[3] = lv(l3, p);
    ring[static_cast<std::size_t>(slot(p))] = V::load(lanes);
  }

  // ---- steady vector loop -------------------------------------------------
  const int x_end = nx + 1 - 4 * s;
  int x = 1;
  if constexpr (R == 1) {
    if (s == 7) x = detail::steady_s7(f, a, x_end, ring);
  }
  int ib = slot(x - R);  // slot of the west-most window vector (pos x-R)
  const auto inc = [M](int i) { return i + 1 == M ? 0 : i + 1; };
  V winv[2 * R + 1];
  for (; x + 3 <= x_end; x += 4) {
    V bot = V::loadu(a + x + 4 * s);
    V w0, w1, w2, w3;
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = inc(iw); }
      w0 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w0, bot);
      bot = simd::rotate_down(bot);
      ib = inc(ib);
    }
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = inc(iw); }
      w1 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w1, bot);
      bot = simd::rotate_down(bot);
      ib = inc(ib);
    }
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = inc(iw); }
      w2 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w2, bot);
      bot = simd::rotate_down(bot);
      ib = inc(ib);
    }
    {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = inc(iw); }
      w3 = f.apply(winv);
      ring[ib] = simd::shift_in_low_v(w3, bot);
      ib = inc(ib);
    }
    simd::collect_tops(w0, w1, w2, w3).storeu(a + x);
  }
  for (; x <= x_end; ++x) {  // ungrouped tail
    int iw = ib;
    for (int k = 0; k <= 2 * R; ++k) { winv[k] = ring[iw]; iw = inc(iw); }
    const V w = f.apply(winv);
    ring[ib] = simd::shift_in_low(w, a[x + 4 * s]);
    ib = inc(ib);
    a[x] = simd::top_lane(w);
  }

  // ---- flush: dump surviving ring lanes into the right scratch -----------
  const auto rput = [&](double* lev, int q, double v) {
    if (q >= rbase + 1 && q <= nx) lev[q - rbase] = v;
  };
  for (int p = x_end + 1 - R; p <= x_end + s; ++p) {
    const V& u = ring[static_cast<std::size_t>(slot(p))];
    rput(r1, p + 2 * s, u[1]);
    rput(r2, p + s, u[2]);
    rput(r3, p, u[3]);
  }

  // Level l (1..3) at position x during the epilogue.
  const auto rv = [&](const double* lev, int x) -> double {
    return x > nx ? a[x] : lev[x - rbase];
  };

  // ---- epilogue: right trapezoid, scalar (level order matters: lvl4
  // writes to `a` would destroy the lvl0 values lvl1 still reads) ----------
  for (int xx = nx + 2 - s; xx <= nx; ++xx) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = a[xx - R + k];
    r1[xx - rbase] = f.apply_scalar(win);
  }
  for (int xx = nx + 2 - 2 * s; xx <= nx; ++xx) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = rv(r1, xx - R + k);
    r2[xx - rbase] = f.apply_scalar(win);
  }
  for (int xx = nx + 2 - 3 * s; xx <= nx; ++xx) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = rv(r2, xx - R + k);
    r3[xx - rbase] = f.apply_scalar(win);
  }
  for (int xx = nx + 2 - 4 * s; xx <= nx; ++xx) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = rv(r3, xx - R + k);
    a[xx] = f.apply_scalar(win);
  }
}

// Advance `u` by `steps` time steps: floor(steps/4) vector tiles plus a
// scalar residual.  Falls back to scalar whenever the line is too short for
// the pipeline (nx < 4s).
template <class V, class F>
void tv1d_run(const F& f, grid::Grid1D<double>& u, long steps, int s) {
  constexpr int R = F::radius;
  assert(s >= R + 1);
  Workspace1D ws;
  ws.prepare(s, u.nx(), R);
  double* a = u.p();
  const int nx = u.nx();
  long t = 0;
  if (nx >= 4 * s) {
    for (; t + 4 <= steps; t += 4) tv1d_tile<V>(f, a, nx, s, ws);
  }
  if (t < steps)
    detail::scalar_steps(f, a, nx, static_cast<int>(steps - t), ws);
}

}  // namespace tvs::tv
