// Temporal vectorization, 1D Jacobi kernels — the paper's Algorithm 3
// generalized to any stencil radius R, any legal space stride s, and any
// vector length vl = V::lanes.
//
// Vector layout (lane 0 is the lowest):
//
//   input  u(p) = [ lvl0 @ p+(vl-1)s , lvl1 @ p+(vl-2)s , ... , lvl(vl-1) @ p ]
//   output w(p) = [ lvl1 @ p+(vl-1)s , lvl2 @ p+(vl-2)s , ... , lvl(vl)  @ p ]
//
// where `lvl k` is the value after k of the tile's vl time steps and p is
// the vector's *top position*.  One vector stencil application advances all
// vl lanes one time step.  The top lane of w (lvl vl @ p) is finished and
// is written back; the rest shift up one lane, a fresh lvl0 element enters
// at lane 0, and the result is the input vector for position p+s, consumed
// s iterations later (the ILP-distance knob of §3.3).
//
// One vl-step tile over the full line (interior x = 1..nx, Dirichlet cells
// at x <= 0 and x >= nx+1) does:
//
//   prologue  (scalar)  lvl l over [1, (vl-l)*s],  l = 1..vl-1
//   gather              ring vectors for top positions p = 1-R .. s
//   steady    (vector)  x = 1 .. nx+1-vl*s, grouped top stores / bottom loads
//   flush               dump surviving ring lanes into right-edge scratch
//   epilogue  (scalar)  lvl l over [nx+2-l*s, nx], l = 1..vl-1; lvl vl over
//                       [nx+2-vl*s, nx] written to the array last
//
// The array is updated *in place*: the lvl vl write at x trails every lvl0
// read (all at >= x+vl*s), which is how the paper halves the memory traffic
// of Jacobi stencils (§3.5).  Intermediate levels live only in registers
// except for the O(vl*s) scratch at the two edges — the "84 scalar points
// per tile for s=7" of the evaluation section at vl = 4; the scalar area
// grows with vl^2*s/2 at wider lengths.
//
// The stencil functor F supplies:
//   static constexpr int radius;
//   V      apply(const V* win)      — win[0..2R], west-most first
//   T      apply_scalar(const T* win)   — T = V::value_type
//
// Everything here is templated on the vector type V so the identical
// algorithm runs on the scalar backend in tests and at any width
// (ScalarVec<double, N>) the width-property suite asks for.
#pragma once

#include <array>
#include <cassert>
#include <vector>

#include "grid/grid1d.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "tv/ring.hpp"  // kMaxStride, kRingCapacity, RingIndex

namespace tvs::tv {

// Reusable scratch for one run (avoids per-tile allocation).  Sizes depend
// on the engine's vector length: vl-1 intermediate levels per edge.
// Templated on the element type T (double or float).
template <class T>
struct Workspace1D {
  std::vector<T> left;   // vl-1 levels, prologue values
  std::vector<T> right;  // vl-1 levels, flush + epilogue values
  std::vector<T> sbuf;   // scalar-fallback ping-pong line
  int s = 0, nx = 0, vl = 0;
  int llen = 0, rlen = 0;      // per-level extents of left/right

  void prepare(int stride, int n, int radius, int lanes) {
    s = stride;
    nx = n;
    vl = lanes;
    llen = (vl - 1) * s + 2;
    // Trailing slack for the flush path, not a lane count.
    rlen = vl * s + radius + 4;  // tvslint: allow(R4)
    left.assign(static_cast<std::size_t>(vl - 1) * llen, T{0});
    right.assign(static_cast<std::size_t>(vl - 1) * rlen, T{0});
  }
  // Level l (1 .. vl-1) scratch lines.
  T* lptr(int lev) { return left.data() + static_cast<std::size_t>(lev - 1) * llen; }
  T* rptr(int lev) { return right.data() + static_cast<std::size_t>(lev - 1) * rlen; }
};

namespace detail {

// Plain scalar time steps (used for nx too small for the vector pipeline
// and for the T % vl residual).  Ping-pongs through ws.sbuf.
template <class F, class T>
void scalar_steps(const F& f, T* a, int nx, int nsteps,
                  Workspace1D<T>& ws) {
  constexpr int R = F::radius;
  const std::size_t len = static_cast<std::size_t>(nx + 2 * R + 2);
  if (ws.sbuf.size() < len) ws.sbuf.resize(len);
  T* b = ws.sbuf.data() + R;  // b[-R..nx+1+R] valid
  T win[2 * R + 1];
  for (int t = 0; t < nsteps; ++t) {
    for (int x = 1 - R; x <= 0; ++x) b[x] = a[x];
    for (int x = nx + 1; x <= nx + R; ++x) b[x] = a[x];
    for (int x = 1; x <= nx; ++x) {
      for (int k = 0; k <= 2 * R; ++k) win[k] = a[x - R + k];
      b[x] = f.apply_scalar(win);
    }
    for (int x = 1; x <= nx; ++x) a[x] = b[x];
  }
}

}  // namespace detail

namespace detail {

// Compile-time-unrolled steady loop for the paper's 1D3P default (vl = 4,
// s = 7, R = 1, ring of 8 input vectors): the ring lives in eight named
// registers and every slot index is a constant, reproducing the paper's
// 13-vector-register implementation (§3.4).  x must start at 1 (slot
// arithmetic assumes x == 1 mod 8); returns the first unprocessed x.
template <class V, class F>
int steady_s7(const F& f, typename V::value_type* a, int x_end,
              std::array<V, kRingCapacity>& ring) {
  static_assert(V::lanes == 4);
  // Deliberately width-pinned fast path (see static_assert above).
  // tvslint: allow(R4)
  V r0 = ring[0], r1 = ring[1], r2 = ring[2], r3 = ring[3], r4 = ring[4],
    r5 = ring[5], r6 = ring[6], r7 = ring[7];
  int x = 1;
  for (; x + 7 <= x_end; x += 8) {
    // iterations j = 0..3: windows (r_j, r_j+1, r_j+2), produce into r_j
    V bot = V::loadu(a + x + 28);
    const V w0 = f.apply3(r0, r1, r2);
    r0 = simd::shift_in_low_v(w0, bot);
    bot = simd::dispense_low(bot);
    const V w1 = f.apply3(r1, r2, r3);
    r1 = simd::shift_in_low_v(w1, bot);
    bot = simd::dispense_low(bot);
    const V w2 = f.apply3(r2, r3, r4);
    r2 = simd::shift_in_low_v(w2, bot);
    bot = simd::dispense_low(bot);
    const V w3 = f.apply3(r3, r4, r5);
    r3 = simd::shift_in_low_v(w3, bot);
    simd::collect_tops(w0, w1, w2, w3).storeu(a + x);
    // iterations j = 4..7 (windows wrap into the freshly produced slots)
    bot = V::loadu(a + x + 32);
    const V w4 = f.apply3(r4, r5, r6);
    r4 = simd::shift_in_low_v(w4, bot);
    bot = simd::dispense_low(bot);
    const V w5 = f.apply3(r5, r6, r7);
    r5 = simd::shift_in_low_v(w5, bot);
    bot = simd::dispense_low(bot);
    const V w6 = f.apply3(r6, r7, r0);
    r6 = simd::shift_in_low_v(w6, bot);
    bot = simd::dispense_low(bot);
    const V w7 = f.apply3(r7, r0, r1);
    r7 = simd::shift_in_low_v(w7, bot);
    simd::collect_tops(w4, w5, w6, w7).storeu(a + x + 4);
  }
  ring[0] = r0;
  ring[1] = r1;
  ring[2] = r2;
  ring[3] = r3;
  ring[4] = r4;  // tvslint: allow(R4)
  ring[5] = r5;
  ring[6] = r6;
  ring[7] = r7;
  return x;
}

}  // namespace detail

// One vl-step temporally vectorized tile; see the file comment.
// Requires nx >= vl*s and s >= radius+1 (checked by the caller).
//
// Re = the redundancy-eliminated steady loop (arXiv:2103.08825 /
// 2103.09235, see tv1d_re_impl.hpp): identical prologue / gather / flush /
// epilogue and bit-identical arithmetic, but the steady loop retires tops
// scalar-as-they-finish and slides the stencil window in registers, so each
// produced vector costs ONE shuffle (simd::retire_shift_in) instead of the
// baseline's shift_in_low_v + dispense_low pair plus the amortized
// collect_tops assembly tree.
template <class V, class F, bool Re = false>
void tv1d_tile(const F& f, typename V::value_type* a, int nx, int s,
               Workspace1D<typename V::value_type>& ws) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  using T = typename V::value_type;
  constexpr int R = F::radius;
  constexpr int VL = V::lanes;
  const int M = s + R;  // live input vectors (paper: "s + r")
  assert(s >= R + 1 && s <= kMaxStride && nx >= VL * s);
  assert(ws.vl == VL);
  const int rbase = nx - VL * s - R;  // right scratch anchored at rbase

  // Value of level l (1..vl-1) at position x during the prologue: boundary
  // cells keep their fixed value at every level.
  const auto lv = [&](int lev, int x) -> T {
    return x <= 0 ? a[x] : ws.lptr(lev)[x];
  };

  T win[2 * R + 1];

  // ---- prologue: left trapezoid, scalar ---------------------------------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    T* out = ws.lptr(lev);
    for (int x = 1; x <= (VL - lev) * s; ++x) {
      if (lev == 1) {
        for (int k = 0; k <= 2 * R; ++k) win[k] = a[x - R + k];
      } else {
        for (int k = 0; k <= 2 * R; ++k) win[k] = lv(lev - 1, x - R + k);
      }
      out[x] = f.apply_scalar(win);
    }
  }

  // Level k (0..vl-1) at position x for the gather (level 0 = the array).
  const auto lv_any = [&](int lev, int x) -> T {
    return lev == 0 ? a[x] : lv(lev, x);
  };

  // ---- gather the initial ring ------------------------------------------
  std::array<V, kRingCapacity> ring;
  const RingIndex rix(M);
  for (int p = 1 - R; p <= s; ++p) {
    alignas(64) T lanes[VL];
    for (int k = 0; k < VL; ++k) lanes[k] = lv_any(k, p + (VL - 1 - k) * s);
    ring[static_cast<std::size_t>(rix.slot(p))] = V::load(lanes);
  }

  // ---- steady vector loop -------------------------------------------------
  const int x_end = nx + 1 - VL * s;
  int x = 1;
  if constexpr (!Re && R == 1 && VL == 4) {
    if (s == 7) x = detail::steady_s7(f, a, x_end, ring);
  }
  int ib = rix.slot(x - R);  // slot of the west-most window vector (pos x-R)
  V winv[2 * R + 1];
  if constexpr (Re) {
    // Redundancy-eliminated steady loop: the 2R+1 window vectors slide in
    // registers (each ring vector is loaded once instead of 2R+1 times),
    // the finished top retires in the same shuffle that admits the fresh
    // bottom element, and the retired tops stream to `a` as scalar stores
    // — no collect_tops assembly tree, no separate dispense rotate.  The
    // values produced are bit-identical to the baseline loop below.
    if (x <= x_end) {
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) {
        winv[k] = ring[iw];
        iw = rix.inc(iw);
      }
      for (; x <= x_end; ++x) {
        const V w = f.apply(winv);
        ring[ib] = simd::retire_shift_in(w, a[x + VL * s], &a[x]);
        ib = rix.inc(ib);
        for (int k = 0; k < 2 * R; ++k) winv[k] = winv[k + 1];
        winv[2 * R] = ring[iw];  // pos x+1+R, <= the slot written above
        iw = rix.inc(iw);
      }
    }
  } else {
    V wbuf[VL];
    for (; x + VL - 1 <= x_end; x += VL) {
      V bot = V::loadu(a + x + VL * s);
      for (int j = 0; j < VL; ++j) {
        int iw = ib;
        for (int k = 0; k <= 2 * R; ++k) {
          winv[k] = ring[iw];
          iw = rix.inc(iw);
        }
        wbuf[j] = f.apply(winv);
        ring[ib] = simd::shift_in_low_v(wbuf[j], bot);
        if (j != VL - 1) bot = simd::dispense_low(bot);
        ib = rix.inc(ib);
      }
      simd::collect_tops_arr(wbuf).storeu(a + x);
    }
    for (; x <= x_end; ++x) {  // ungrouped tail
      int iw = ib;
      for (int k = 0; k <= 2 * R; ++k) {
        winv[k] = ring[iw];
        iw = rix.inc(iw);
      }
      const V w = f.apply(winv);
      ring[ib] = simd::shift_in_low(w, a[x + VL * s]);
      ib = rix.inc(ib);
      a[x] = simd::top_lane(w);
    }
  }

  // ---- flush: dump surviving ring lanes into the right scratch -----------
  const auto rput = [&](int lev, int q, T v) {
    if (q >= rbase + 1 && q <= nx) ws.rptr(lev)[q - rbase] = v;
  };
  for (int p = x_end + 1 - R; p <= x_end + s; ++p) {
    const V& u = ring[static_cast<std::size_t>(rix.slot(p))];
    for (int k = 1; k <= VL - 1; ++k) rput(k, p + (VL - 1 - k) * s, u[k]);
  }

  // Level l (1..vl-1) at position x during the epilogue.
  const auto rv = [&](int lev, int q) -> T {
    return q > nx ? a[q] : ws.rptr(lev)[q - rbase];
  };

  // ---- epilogue: right trapezoid, scalar (level order matters: lvl vl
  // writes to `a` would destroy the lvl0 values lvl1 still reads) ----------
  for (int lev = 1; lev <= VL - 1; ++lev) {
    T* out = ws.rptr(lev);
    for (int xx = nx + 2 - lev * s; xx <= nx; ++xx) {
      if (lev == 1) {
        for (int k = 0; k <= 2 * R; ++k) win[k] = a[xx - R + k];
      } else {
        for (int k = 0; k <= 2 * R; ++k) win[k] = rv(lev - 1, xx - R + k);
      }
      out[xx - rbase] = f.apply_scalar(win);
    }
  }
  for (int xx = nx + 2 - VL * s; xx <= nx; ++xx) {
    for (int k = 0; k <= 2 * R; ++k) win[k] = rv(VL - 1, xx - R + k);
    a[xx] = f.apply_scalar(win);
  }
}

// Advance `u` by `steps` time steps: floor(steps/vl) vector tiles plus a
// scalar residual.  Falls back to scalar whenever the line is too short for
// the pipeline (nx < vl*s).
template <class V, class F, bool Re = false>
void tv1d_run(const F& f, grid::Grid1D<typename V::value_type>& u, long steps,
              int s) {
  using T = typename V::value_type;
  constexpr int R = F::radius;
  constexpr int VL = V::lanes;
  assert(s >= R + 1);
  Workspace1D<T> ws;
  ws.prepare(s, u.nx(), R, VL);
  T* a = u.p();
  const int nx = u.nx();
  long t = 0;
  if (nx >= VL * s) {
    for (; t + VL <= steps; t += VL) tv1d_tile<V, F, Re>(f, a, nx, s, ws);
  }
  if (t < steps)
    detail::scalar_steps(f, a, nx, static_cast<int>(steps - t), ws);
}

}  // namespace tvs::tv
