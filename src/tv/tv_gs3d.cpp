// 3D Gauss-Seidel kernel variants — compiled once per SIMD backend at the
// backend's native vector width for double AND float element types (the
// scalar backend also pins the wide widths).  Public entry points live in
// tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs3d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;
using VF = dispatch::BackendVec<float>;

void gs3d7(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
           int stride) {
  tv_gs3d_run_impl<V>(c, u, sweeps, stride);
}

void gs3d7_f32(const stencil::C3D7f& c, grid::Grid3D<float>& u, long sweeps,
               int stride) {
  tv_gs3d_run_impl<VF>(c, u, sweeps, stride);
}

#if TVS_BACKEND_LEVEL == 0
void gs3d7_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
               int stride) {
  tv_gs3d_run_impl<simd::ScalarVec<double, 8>>(c, u, sweeps, stride);
}

void gs3d7_f32_vl16(const stencil::C3D7f& c, grid::Grid3D<float>& u,
                    long sweeps, int stride) {
  tv_gs3d_run_impl<simd::ScalarVec<float, 16>>(c, u, sweeps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs3d) {
  using dispatch::DType;
  TVS_REGISTER_VL(kTvGs3D7, TvGs3D7Fn, gs3d7, V::lanes);
  TVS_REGISTER_VL_DT(kTvGs3D7, TvGs3D7F32Fn, gs3d7_f32, VF::lanes,
                     DType::kF32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvGs3D7, TvGs3D7Fn, gs3d7_vl8, 8);
  TVS_REGISTER_VL_DT(kTvGs3D7, TvGs3D7F32Fn, gs3d7_f32_vl16, 16, DType::kF32);
#endif
}

}  // namespace tvs::tv
