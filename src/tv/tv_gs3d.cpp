#include "tv/tv_gs3d.hpp"

#include "tv/tv_gs3d_impl.hpp"

namespace tvs::tv {

void tv_gs3d7_run(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
                  int stride) {
  tv_gs3d_run_impl<simd::NativeVec<double, 4>>(c, u, sweeps, stride);
}

}  // namespace tvs::tv
