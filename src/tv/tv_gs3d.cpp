// 3D Gauss-Seidel kernel variant — compiled once per SIMD backend at the
// backend's native vector width (the scalar backend also pins vl = 8).
// Public entry point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs3d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;

void gs3d7(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
           int stride) {
  tv_gs3d_run_impl<V>(c, u, sweeps, stride);
}

#if TVS_BACKEND_LEVEL == 0
void gs3d7_vl8(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
               int stride) {
  tv_gs3d_run_impl<simd::ScalarVec<double, 8>>(c, u, sweeps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs3d) {
  TVS_REGISTER_VL(kTvGs3D7, TvGs3D7Fn, gs3d7, V::lanes);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvGs3D7, TvGs3D7Fn, gs3d7_vl8, 8);
#endif
}

}  // namespace tvs::tv
