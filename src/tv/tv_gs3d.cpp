// 3D Gauss-Seidel kernel variant — compiled once per SIMD backend.  Public
// entry point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs3d_impl.hpp"

namespace tvs::tv {
namespace {

void gs3d7(const stencil::C3D7& c, grid::Grid3D<double>& u, long sweeps,
           int stride) {
  tv_gs3d_run_impl<simd::NativeVec<double, 4>>(c, u, sweeps, stride);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs3d) {
  TVS_REGISTER(kTvGs3D7, TvGs3D7Fn, gs3d7);
}

}  // namespace tvs::tv
