// Public entry point for the temporally vectorized 1D3P Gauss-Seidel
// stencil — the first SIMD execution of Gauss-Seidel sweeps (§3.4).
// Legal strides: s >= 2.
#pragma once

#include "grid/grid1d.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::tv {

inline constexpr int kDefaultStrideGS1D = 3;

void tv_gs1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
                  int stride = kDefaultStrideGS1D);

// Single-precision overload.
void tv_gs1d3_run(const stencil::C1D3f& c, grid::Grid1D<float>& u, long sweeps,
                  int stride = kDefaultStrideGS1D);

}  // namespace tvs::tv
