// Ring-buffer index arithmetic shared by every temporal-vectorization
// engine (§3 of the paper: the "s + r live input vectors" of the Jacobi
// scheme, the "s live positions" of Gauss-Seidel).
//
// Every engine keeps its ring in a fixed-capacity std::array of
// kRingCapacity vectors and walks it with the modular slot/inc math below.
// Centralizing the math here serves two purposes:
//   * one definition for all engines (tv1d, tv_gs1d, the 2D/3D row rings,
//     diamond and parallelogram tiles) instead of per-file lambdas;
//   * the math is constexpr, so tests/ring_bounds_static.cpp can replay
//     every engine's gather/steady/flush index sequence at compile time and
//     static_assert that no legal (dtype, vl, stride) combo ever indexes
//     outside the ring (see util/checked_idx.hpp).
#pragma once

namespace tvs::tv {

// Largest legal space stride s accepted by the 1D engines (tv_dispatch
// rejects larger ones via stencil::require_legal_stride).
inline constexpr int kMaxStride = 32;

// Capacity of the fixed-size rings.  The largest period in the tree is the
// Jacobi 1D5P ring, M = s + R <= kMaxStride + 2 at R = 2 — exactly this
// bound, which ring_bounds_static proves for every registered combo.
inline constexpr int kRingCapacity = kMaxStride + 2;

// Modular index arithmetic for a ring of `period` slots.  Positions p are
// arbitrary ints (gathers start at x_begin - R, and diamond/parallelogram
// tile bases can sit left of the domain, so p can be negative); slots are
// canonical, 0 <= slot < period.
class RingIndex {
 public:
  explicit constexpr RingIndex(int period) : m_(period) {}
  constexpr int period() const { return m_; }
  // Slot of ring position p (double-mod so negative p wraps correctly).
  constexpr int slot(int p) const { return ((p % m_) + m_) % m_; }
  // Successor of slot i (requires 0 <= i < period).
  constexpr int inc(int i) const { return i + 1 == m_ ? 0 : i + 1; }

 private:
  int m_;
};

}  // namespace tvs::tv
