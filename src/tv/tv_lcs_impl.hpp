// Temporal vectorization of the LCS dynamic program (§3.4), generalized to
// any vector length vl = V::lanes.
//
// lcs[x][y] = A[x]==B[y] ? lcs[x-1][y-1]+1 : max(lcs[x-1][y], lcs[x][y-1])
//
// The paper views the x loop (over A) as the *time* dimension and the y loop
// (over B) as space, storing only the wavefront row; B acts as a variable
// coefficient.  The dependences (1,0), (1,-1), (0,-1) have no forward
// component, so any stride s >= 1 is legal; we use s = 1, where the B
// "coefficient vector" can be maintained with the same shift_in_low
// reorganization as the value vectors.  With int32 lanes the vector length
// is 8 under AVX2 and 16 under AVX-512, so one tile advances vl DP rows and
// the theoretical speedup bound is vl (the paper's LCS discussion).
//
// Layout (s = 1, lane k = level k = row t+k):
//
//   input  u(p) = [ lvl0 @ p+vl-1 , lvl1 @ p+vl-2 , ... , lvl(vl-1) @ p ]
//   output w(x) = [ lvl1 @ x+vl-1 , lvl2 @ x+vl-2 , ... , lvl(vl)  @ x ]
//
// Lane k of the output needs: up   = lvl k @ (x + vl-1-k)     -> u(x)  lane k
//                             diag = lvl k @ (x-1 + vl-1-k)   -> u(x-1) lane k
//                             left = lvl k+1 @ (x-1 + vl-1-k) -> previous w
// i.e. a two-slot ring plus the Gauss-Seidel-style forwarded output vector.
// The comparison is evaluated with cmpeq + blendv, which is why the paper
// expects (and observes) speedups below the lane count: both sides of the
// max/increment are always computed.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/kernels.hpp"
#include "tv/tv_lcs.hpp"  // kLcsRowPad, the engines' row-padding contract
#include "util/checked_idx.hpp"

namespace tvs::tv {

namespace detail {

// One scalar DP row update in place; bb is 1-based over B.  `diag0` is
// lcs[t][y0-1] and `left0` is lcs[t+1][y0-1] (both 0 for a full-width row),
// so the same code serves the column-blocked parallel driver.
inline void lcs_scalar_row(std::int32_t achar, const std::int32_t* bb,
                           std::int32_t* row, int nb, std::int32_t diag0,
                           std::int32_t left0) {
  std::int32_t diag = diag0;
  std::int32_t left = left0;
  for (int y = 1; y <= nb; ++y) {
    const std::int32_t up = row[y];
    row[y] = stencil::lcs_rule(achar, bb[y], diag, row[y], left);
    left = row[y];
    diag = up;
  }
}

}  // namespace detail

// Runs the LCS DP with vl-row temporally vectorized tiles; `row` must have
// nb+1+kLcsRowPad slots (padding for grouped loads).  Returns with
// row[y] = lcs(|A|, y).
//
// For the column-blocked parallel driver (tiling/lcs_wavefront.hpp):
// `leftcol[t]` supplies lcs[t][y0-1] for t = 0..|A| (nullptr = zeros, the
// full-width case) and, when `rightcol` is non-null, the kernel exports
// lcs[t][nb] for t = 1..|A| into it.
template <class V>
void tv_lcs_rows_impl(std::span<const std::int32_t> a,
                      std::span<const std::int32_t> b, std::int32_t* row,
                      const std::int32_t* leftcol = nullptr,
                      std::int32_t* rightcol = nullptr) {
  static_assert(simd::LaneGeneric<V> && simd::lane_layout_ok<V>);
  constexpr int vl = V::lanes;
  static_assert(vl >= 2 && vl <= kLcsRowPad);
  // checked_int, not static_cast: spans past 2^31 elements must raise, not
  // silently truncate to a prefix (tvsrace C3).
  const int na = util::checked_int(a.size());
  const int nb = util::checked_int(b.size());
  const std::int32_t* bb = b.data() - 1;  // bb[y] = B[y], 1-based

  // Scratch: vl-1 intermediate levels on each edge.
  const int llen = vl;            // prologue level l covers [1, vl-l]
  const int rbase = nb - vl - 1;  // right scratch covers [rbase+1, nb]
  // Trailing slack, not a lane count.  tvslint: allow(R4)
  const int rlen = vl + 4;
  std::vector<std::int32_t> lbuf(static_cast<std::size_t>(vl - 1) * llen);
  std::vector<std::int32_t> rbuf(static_cast<std::size_t>(vl - 1) * rlen);
  const auto lptr = [&](int lev) { return lbuf.data() + (lev - 1) * llen; };
  const auto rptr = [&](int lev) { return rbuf.data() + (lev - 1) * rlen; };

  // Left-boundary value of level l (row t+l) for the current tile.
  int t = 0;
  const auto lb = [&](int lev) -> std::int32_t {
    return leftcol == nullptr ? 0 : leftcol[t + lev];
  };
  if (nb >= vl + 1) {
    for (; t + vl <= na; t += vl) {
      // ---- prologue: levels 1..vl-1 on the left triangle -------------------
      // lv(l, y): level-l value at column y (level 0 = row).
      const auto lv = [&](int lev, int y) -> std::int32_t {
        if (y <= 0) return lb(lev);
        return lev == 0 ? row[y] : lptr(lev)[y];
      };
      for (int lev = 1; lev <= vl - 1; ++lev) {
        const std::int32_t ach = a[static_cast<std::size_t>(t + lev - 1)];
        std::int32_t left = lb(lev);
        for (int y = 1; y <= vl - lev; ++y) {
          const std::int32_t v = stencil::lcs_rule(
              ach, bb[y], lv(lev - 1, y - 1), lv(lev - 1, y), left);
          lptr(lev)[y] = v;
          left = v;
        }
      }

      // ---- gather: ring positions 0 and 1, initial w, va, vb --------------
      alignas(64) std::int32_t lanes[vl];
      V ring[2];
      for (int p = 0; p <= 1; ++p) {
        for (int k = 0; k < vl; ++k) lanes[k] = lv(k, p + (vl - 1) - k);
        ring[p] = V::load(lanes);
      }
      for (int k = 0; k < vl; ++k) lanes[k] = lv(k + 1, (vl - 1) - k);
      V w = V::load(lanes);
      for (int k = 0; k < vl; ++k)
        lanes[k] = a[static_cast<std::size_t>(t + k)];
      const V va = V::load(lanes);
      for (int k = 0; k < vl; ++k) lanes[k] = bb[1 + (vl - 1) - k];
      V vb = V::load(lanes);

      // ---- steady loop -----------------------------------------------------
      const int x_end = nb - vl;
      int ip = 0;  // slot of position x-1
      int x = 1;
      V tops[vl];
      for (; x + vl - 1 <= x_end; x += vl) {
        V brow = V::loadu(row + x + vl);  // fresh lvl0 values
        V bchr = V::loadu(bb + x + vl);   // fresh B chars
        for (int j = 0; j < vl; ++j) {
          const int ic = ip ^ 1;
          const V wv = stencil::lcs_rule_v(va, vb, ring[ip], ring[ic], w);
          ring[ip] = simd::shift_in_low_v(wv, brow);
          vb = simd::shift_in_low_v(vb, bchr);
          brow = simd::rotate_down(brow);
          bchr = simd::rotate_down(bchr);
          w = wv;
          tops[j] = wv;
          ip = ic;
        }
        simd::collect_tops_arr(tops).storeu(row + x);
      }
      for (; x <= x_end; ++x) {
        const int ic = ip ^ 1;
        const V wv = stencil::lcs_rule_v(va, vb, ring[ip], ring[ic], w);
        ring[ip] = simd::shift_in_low(wv, row[x + vl]);
        vb = simd::shift_in_low(vb, bb[x + vl]);
        row[x] = simd::top_lane(wv);
        w = wv;
        ip = ic;
      }

      // ---- flush ring lanes into the right scratch -------------------------
      const auto rput = [&](int lev, int q, std::int32_t v) {
        if (q >= rbase + 1 && q <= nb) rptr(lev)[q - rbase] = v;
      };
      for (int p = x_end; p <= x_end + 1; ++p) {
        const V& u = ring[static_cast<std::size_t>(p & 1)];
        for (int k = 1; k <= vl - 1; ++k) rput(k, p + (vl - 1) - k, u[k]);
      }
      const auto rv = [&](int lev, int q) -> std::int32_t {
        return lev == 0 ? row[q] : rptr(lev)[q - rbase];
      };

      // ---- epilogue: levels 1..vl on the right triangle --------------------
      for (int lev = 1; lev <= vl; ++lev) {
        const std::int32_t ach = a[static_cast<std::size_t>(t + lev - 1)];
        // lvl vl @ x_end was stored by the steady loop's top lane.
        std::int32_t left = lev == vl ? row[nb - vl] : rv(lev, nb - lev);
        for (int y = nb - lev + 1; y <= nb; ++y) {
          const std::int32_t v = stencil::lcs_rule(
              ach, bb[y], rv(lev - 1, y - 1), rv(lev - 1, y), left);
          if (lev == vl)
            row[y] = v;
          else
            rptr(lev)[y - rbase] = v;
          left = v;
        }
      }
      if (rightcol != nullptr) {
        for (int k = 1; k <= vl - 1; ++k) rightcol[t + k] = rv(k, nb);
        rightcol[t + vl] = row[nb];
      }
    }
  }
  // Residual rows (na % vl, or everything when nb is too small).
  for (; t < na; ++t) {
    detail::lcs_scalar_row(a[static_cast<std::size_t>(t)], bb, row, nb,
                           leftcol == nullptr ? 0 : leftcol[t],
                           leftcol == nullptr ? 0 : leftcol[t + 1]);
    if (rightcol != nullptr) rightcol[t + 1] = row[nb];
  }
}

}  // namespace tvs::tv
