// 1D Jacobi kernel variants — compiled once per SIMD backend (see
// dispatch/backend_variant.hpp for the per-backend TU rules) at the
// backend's native vector width, for double AND float element types (the
// float engines run twice the lanes per register).  The scalar backend
// additionally registers width-pinned wide instantiations
// (ScalarVec<double, 8>, ScalarVec<float, 16>) so the registry's width
// axis resolves every width on every host.  Public tv_jacobi1d*_run entry
// points live in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors1d.hpp"
#include "tv/tv1d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;
using VF = dispatch::BackendVec<float>;

void jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u, long steps,
               int stride) {
  tv1d_run<V>(J1D3F<V>(c), u, steps, stride);
}

void jacobi1d5(const stencil::C1D5& c, grid::Grid1D<double>& u, long steps,
               int stride) {
  tv1d_run<V>(J1D5F<V>(c), u, steps, stride);
}

void jacobi1d3_f32(const stencil::C1D3f& c, grid::Grid1D<float>& u, long steps,
                   int stride) {
  tv1d_run<VF>(J1D3F<VF>(c), u, steps, stride);
}

void jacobi1d5_f32(const stencil::C1D5f& c, grid::Grid1D<float>& u, long steps,
                   int stride) {
  tv1d_run<VF>(J1D5F<VF>(c), u, steps, stride);
}

#if TVS_BACKEND_LEVEL == 0
using V8 = simd::ScalarVec<double, 8>;
using VF16 = simd::ScalarVec<float, 16>;

void jacobi1d3_vl8(const stencil::C1D3& c, grid::Grid1D<double>& u, long steps,
                   int stride) {
  tv1d_run<V8>(J1D3F<V8>(c), u, steps, stride);
}

void jacobi1d5_vl8(const stencil::C1D5& c, grid::Grid1D<double>& u, long steps,
                   int stride) {
  tv1d_run<V8>(J1D5F<V8>(c), u, steps, stride);
}

void jacobi1d3_f32_vl16(const stencil::C1D3f& c, grid::Grid1D<float>& u,
                        long steps, int stride) {
  tv1d_run<VF16>(J1D3F<VF16>(c), u, steps, stride);
}

void jacobi1d5_f32_vl16(const stencil::C1D5f& c, grid::Grid1D<float>& u,
                        long steps, int stride) {
  tv1d_run<VF16>(J1D5F<VF16>(c), u, steps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv1d) {
  using dispatch::DType;
  TVS_REGISTER_VL(kTvJacobi1D3, TvJacobi1D3Fn, jacobi1d3, V::lanes);
  TVS_REGISTER_VL(kTvJacobi1D5, TvJacobi1D5Fn, jacobi1d5, V::lanes);
  TVS_REGISTER_VL_DT(kTvJacobi1D3, TvJacobi1D3F32Fn, jacobi1d3_f32, VF::lanes,
                     DType::kF32);
  TVS_REGISTER_VL_DT(kTvJacobi1D5, TvJacobi1D5F32Fn, jacobi1d5_f32, VF::lanes,
                     DType::kF32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvJacobi1D3, TvJacobi1D3Fn, jacobi1d3_vl8, 8);
  TVS_REGISTER_VL(kTvJacobi1D5, TvJacobi1D5Fn, jacobi1d5_vl8, 8);
  TVS_REGISTER_VL_DT(kTvJacobi1D3, TvJacobi1D3F32Fn, jacobi1d3_f32_vl16, 16,
                     DType::kF32);
  TVS_REGISTER_VL_DT(kTvJacobi1D5, TvJacobi1D5F32Fn, jacobi1d5_f32_vl16, 16,
                     DType::kF32);
#endif
}

}  // namespace tvs::tv
