// 1D Jacobi kernel variants — compiled once per SIMD backend (see
// dispatch/backend_variant.hpp for the per-backend TU rules).  The public
// tv_jacobi1d*_run entry points live in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/functors1d.hpp"
#include "tv/tv1d_impl.hpp"

namespace tvs::tv {
namespace {

using V = simd::NativeVec<double, 4>;

void jacobi1d3(const stencil::C1D3& c, grid::Grid1D<double>& u, long steps,
               int stride) {
  tv1d_run<V>(J1D3F<V>(c), u, steps, stride);
}

void jacobi1d5(const stencil::C1D5& c, grid::Grid1D<double>& u, long steps,
               int stride) {
  tv1d_run<V>(J1D5F<V>(c), u, steps, stride);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv1d) {
  TVS_REGISTER(kTvJacobi1D3, TvJacobi1D3Fn, jacobi1d3);
  TVS_REGISTER(kTvJacobi1D5, TvJacobi1D5Fn, jacobi1d5);
}

}  // namespace tvs::tv
