#include "tv/tv1d.hpp"

#include "tv/functors1d.hpp"
#include "tv/tv1d_impl.hpp"

namespace tvs::tv {

namespace {
using V = simd::NativeVec<double, 4>;
}

void tv_jacobi1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u,
                      long steps, int stride) {
  tv1d_run<V>(J1D3F<V>(c), u, steps, stride);
}

void tv_jacobi1d5_run(const stencil::C1D5& c, grid::Grid1D<double>& u,
                      long steps, int stride) {
  tv1d_run<V>(J1D5F<V>(c), u, steps, stride);
}

}  // namespace tvs::tv
