// 1D Gauss-Seidel kernel variant — compiled once per SIMD backend at the
// backend's native vector width (the scalar backend also pins vl = 8).
// Public entry point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs1d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;

void gs1d3(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
           int stride) {
  tv_gs1d_run_impl<V>(c, u, sweeps, stride);
}

#if TVS_BACKEND_LEVEL == 0
void gs1d3_vl8(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
               int stride) {
  tv_gs1d_run_impl<simd::ScalarVec<double, 8>>(c, u, sweeps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs1d) {
  TVS_REGISTER_VL(kTvGs1D3, TvGs1D3Fn, gs1d3, V::lanes);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvGs1D3, TvGs1D3Fn, gs1d3_vl8, 8);
#endif
}

}  // namespace tvs::tv
