// 1D Gauss-Seidel kernel variants — compiled once per SIMD backend at the
// backend's native vector width for double AND float element types (the
// scalar backend also pins the wide widths).  Public entry points live in
// tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs1d_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;
using VF = dispatch::BackendVec<float>;

void gs1d3(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
           int stride) {
  tv_gs1d_run_impl<V>(c, u, sweeps, stride);
}

void gs1d3_f32(const stencil::C1D3f& c, grid::Grid1D<float>& u, long sweeps,
               int stride) {
  tv_gs1d_run_impl<VF>(c, u, sweeps, stride);
}

#if TVS_BACKEND_LEVEL == 0
void gs1d3_vl8(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
               int stride) {
  tv_gs1d_run_impl<simd::ScalarVec<double, 8>>(c, u, sweeps, stride);
}

void gs1d3_f32_vl16(const stencil::C1D3f& c, grid::Grid1D<float>& u,
                    long sweeps, int stride) {
  tv_gs1d_run_impl<simd::ScalarVec<float, 16>>(c, u, sweeps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs1d) {
  using dispatch::DType;
  TVS_REGISTER_VL(kTvGs1D3, TvGs1D3Fn, gs1d3, V::lanes);
  TVS_REGISTER_VL_DT(kTvGs1D3, TvGs1D3F32Fn, gs1d3_f32, VF::lanes,
                     DType::kF32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvGs1D3, TvGs1D3Fn, gs1d3_vl8, 8);
  TVS_REGISTER_VL_DT(kTvGs1D3, TvGs1D3F32Fn, gs1d3_f32_vl16, 16, DType::kF32);
#endif
}

}  // namespace tvs::tv
