#include "tv/tv_gs1d.hpp"

#include "tv/tv_gs1d_impl.hpp"

namespace tvs::tv {

void tv_gs1d3_run(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
                  int stride) {
  tv_gs1d_run_impl<simd::NativeVec<double, 4>>(c, u, sweeps, stride);
}

}  // namespace tvs::tv
