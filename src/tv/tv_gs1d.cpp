// 1D Gauss-Seidel kernel variant — compiled once per SIMD backend.  Public
// entry point lives in tv_dispatch.cpp.
#include "dispatch/backend_variant.hpp"
#include "tv/tv_gs1d_impl.hpp"

namespace tvs::tv {
namespace {

void gs1d3(const stencil::C1D3& c, grid::Grid1D<double>& u, long sweeps,
           int stride) {
  tv_gs1d_run_impl<simd::NativeVec<double, 4>>(c, u, sweeps, stride);
}

}  // namespace

TVS_BACKEND_REGISTRAR(tv_gs1d) {
  TVS_REGISTER(kTvGs1D3, TvGs1D3Fn, gs1d3);
}

}  // namespace tvs::tv
