// Redundancy-eliminated 2D Jacobi kernel variants (tv2d_re_impl.hpp) —
// compiled once per SIMD backend at the backend's native vector width for
// double AND float element types, same axes as the baseline tv2d TU.  The
// scalar backend additionally registers the width-pinned wide
// instantiations.  Same Fn signatures as the baseline ids; results are
// bit-identical.
#include "dispatch/backend_variant.hpp"
#include "tv/functors2d.hpp"
#include "tv/tv2d_re_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;
using VF = dispatch::BackendVec<float>;

void jacobi2d5_re(const stencil::C2D5& c, grid::Grid2D<double>& u, long steps,
                  int stride) {
  Workspace2D<V, double> ws;
  tv2d_re_run(J2D5F<V>(c), u, steps, stride, ws);
}

void jacobi2d9_re(const stencil::C2D9& c, grid::Grid2D<double>& u, long steps,
                  int stride) {
  Workspace2D<V, double> ws;
  tv2d_re_run(J2D9F<V>(c), u, steps, stride, ws);
}

void jacobi2d5_re_f32(const stencil::C2D5f& c, grid::Grid2D<float>& u,
                      long steps, int stride) {
  Workspace2D<VF, float> ws;
  tv2d_re_run(J2D5F<VF>(c), u, steps, stride, ws);
}

void jacobi2d9_re_f32(const stencil::C2D9f& c, grid::Grid2D<float>& u,
                      long steps, int stride) {
  Workspace2D<VF, float> ws;
  tv2d_re_run(J2D9F<VF>(c), u, steps, stride, ws);
}

#if TVS_BACKEND_LEVEL == 0
using V8 = simd::ScalarVec<double, 8>;
using VF16 = simd::ScalarVec<float, 16>;

void jacobi2d5_re_vl8(const stencil::C2D5& c, grid::Grid2D<double>& u,
                      long steps, int stride) {
  Workspace2D<V8, double> ws;
  tv2d_re_run(J2D5F<V8>(c), u, steps, stride, ws);
}

void jacobi2d9_re_vl8(const stencil::C2D9& c, grid::Grid2D<double>& u,
                      long steps, int stride) {
  Workspace2D<V8, double> ws;
  tv2d_re_run(J2D9F<V8>(c), u, steps, stride, ws);
}

void jacobi2d5_re_f32_vl16(const stencil::C2D5f& c, grid::Grid2D<float>& u,
                           long steps, int stride) {
  Workspace2D<VF16, float> ws;
  tv2d_re_run(J2D5F<VF16>(c), u, steps, stride, ws);
}

void jacobi2d9_re_f32_vl16(const stencil::C2D9f& c, grid::Grid2D<float>& u,
                           long steps, int stride) {
  Workspace2D<VF16, float> ws;
  tv2d_re_run(J2D9F<VF16>(c), u, steps, stride, ws);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv2d_re) {
  using dispatch::DType;
  TVS_REGISTER_VL(kTvJacobi2D5Re, TvJacobi2D5Fn, jacobi2d5_re, V::lanes);
  TVS_REGISTER_VL(kTvJacobi2D9Re, TvJacobi2D9Fn, jacobi2d9_re, V::lanes);
  TVS_REGISTER_VL_DT(kTvJacobi2D5Re, TvJacobi2D5F32Fn, jacobi2d5_re_f32,
                     VF::lanes, DType::kF32);
  TVS_REGISTER_VL_DT(kTvJacobi2D9Re, TvJacobi2D9F32Fn, jacobi2d9_re_f32,
                     VF::lanes, DType::kF32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvJacobi2D5Re, TvJacobi2D5Fn, jacobi2d5_re_vl8, 8);
  TVS_REGISTER_VL(kTvJacobi2D9Re, TvJacobi2D9Fn, jacobi2d9_re_vl8, 8);
  TVS_REGISTER_VL_DT(kTvJacobi2D5Re, TvJacobi2D5F32Fn, jacobi2d5_re_f32_vl16,
                     16, DType::kF32);
  TVS_REGISTER_VL_DT(kTvJacobi2D9Re, TvJacobi2D9F32Fn, jacobi2d9_re_f32_vl16,
                     16, DType::kF32);
#endif
}

}  // namespace tvs::tv
