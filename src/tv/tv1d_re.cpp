// Redundancy-eliminated 1D Jacobi kernel variants (tv1d_re_impl.hpp) —
// compiled once per SIMD backend at the backend's native vector width for
// double AND float element types, same axes as the baseline tv1d TU.  The
// scalar backend additionally registers the width-pinned wide
// instantiations so the width axis resolves on every host.  Same Fn
// signatures as the baseline ids; results are bit-identical.
#include "dispatch/backend_variant.hpp"
#include "tv/functors1d.hpp"
#include "tv/tv1d_re_impl.hpp"

namespace tvs::tv {
namespace {

using V = dispatch::BackendVec<double>;
using VF = dispatch::BackendVec<float>;

void jacobi1d3_re(const stencil::C1D3& c, grid::Grid1D<double>& u, long steps,
                  int stride) {
  tv1d_re_run<V>(J1D3F<V>(c), u, steps, stride);
}

void jacobi1d5_re(const stencil::C1D5& c, grid::Grid1D<double>& u, long steps,
                  int stride) {
  tv1d_re_run<V>(J1D5F<V>(c), u, steps, stride);
}

void jacobi1d3_re_f32(const stencil::C1D3f& c, grid::Grid1D<float>& u,
                      long steps, int stride) {
  tv1d_re_run<VF>(J1D3F<VF>(c), u, steps, stride);
}

void jacobi1d5_re_f32(const stencil::C1D5f& c, grid::Grid1D<float>& u,
                      long steps, int stride) {
  tv1d_re_run<VF>(J1D5F<VF>(c), u, steps, stride);
}

#if TVS_BACKEND_LEVEL == 0
using V8 = simd::ScalarVec<double, 8>;
using VF16 = simd::ScalarVec<float, 16>;

void jacobi1d3_re_vl8(const stencil::C1D3& c, grid::Grid1D<double>& u,
                      long steps, int stride) {
  tv1d_re_run<V8>(J1D3F<V8>(c), u, steps, stride);
}

void jacobi1d5_re_vl8(const stencil::C1D5& c, grid::Grid1D<double>& u,
                      long steps, int stride) {
  tv1d_re_run<V8>(J1D5F<V8>(c), u, steps, stride);
}

void jacobi1d3_re_f32_vl16(const stencil::C1D3f& c, grid::Grid1D<float>& u,
                           long steps, int stride) {
  tv1d_re_run<VF16>(J1D3F<VF16>(c), u, steps, stride);
}

void jacobi1d5_re_f32_vl16(const stencil::C1D5f& c, grid::Grid1D<float>& u,
                           long steps, int stride) {
  tv1d_re_run<VF16>(J1D5F<VF16>(c), u, steps, stride);
}
#endif

}  // namespace

TVS_BACKEND_REGISTRAR(tv1d_re) {
  using dispatch::DType;
  TVS_REGISTER_VL(kTvJacobi1D3Re, TvJacobi1D3Fn, jacobi1d3_re, V::lanes);
  TVS_REGISTER_VL(kTvJacobi1D5Re, TvJacobi1D5Fn, jacobi1d5_re, V::lanes);
  TVS_REGISTER_VL_DT(kTvJacobi1D3Re, TvJacobi1D3F32Fn, jacobi1d3_re_f32,
                     VF::lanes, DType::kF32);
  TVS_REGISTER_VL_DT(kTvJacobi1D5Re, TvJacobi1D5F32Fn, jacobi1d5_re_f32,
                     VF::lanes, DType::kF32);
#if TVS_BACKEND_LEVEL == 0
  TVS_REGISTER_VL(kTvJacobi1D3Re, TvJacobi1D3Fn, jacobi1d3_re_vl8, 8);
  TVS_REGISTER_VL(kTvJacobi1D5Re, TvJacobi1D5Fn, jacobi1d5_re_vl8, 8);
  TVS_REGISTER_VL_DT(kTvJacobi1D3Re, TvJacobi1D3F32Fn, jacobi1d3_re_f32_vl16,
                     16, DType::kF32);
  TVS_REGISTER_VL_DT(kTvJacobi1D5Re, TvJacobi1D5F32Fn, jacobi1d5_re_f32_vl16,
                     16, DType::kF32);
#endif
}

}  // namespace tvs::tv
