// ExecutionPlan: every tuning knob the temporal-vectorization engines
// expose, chosen once per StencilProblem.
//
// The paper's §3.3/§5 (and the temporal-blocking literature) make these
// knobs problem- and machine-dependent: the space stride s trades ILP
// distance against ring pressure, the tile width/height trade parallelism
// against cache residency, and the serial-vs-tiled path depends on the
// thread budget.  The planner centralizes the choice:
//
//   heuristic_plan()  paper-default knobs scaled by problem shape (free)
//   tune_plan()       micro-benchmarks 2-3 candidate strides/tiles on a
//                     small replica of the problem and keeps the fastest
//   parse_plan_spec() the TVS_PLAN pinning override ("stride=7,path=tv")
//
// validate_plan() enforces the §3.2 stride-legality condition (and the
// engines' capacity bounds) in exactly one place, so an illegal plan is
// rejected with a clear error before any kernel runs.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "dispatch/backend.hpp"
#include "solver/problem.hpp"

namespace tvs::solver {

// How the problem is executed.
enum class Path : int {
  kSerialTv = 0,       // one temporally vectorized sweep over the grid
  kTiledParallel = 1,  // diamond / parallelogram / wavefront tiles (OpenMP)
};

std::string_view path_name(Path p);

// Which temporal-engine generation runs on the serial path.  kRe is the
// redundancy-eliminated variant (tv*_re_impl.hpp): one reorganization
// shuffle per produced vector plus register-carried window operands,
// bit-identical results.  Registered for the five Jacobi families only;
// the tiled drivers ignore it.
enum class Variant : int {
  kTv = 0,  // baseline temporal engines (tv*_impl.hpp)
  kRe = 1,  // redundancy-eliminated engines (tv*_re_impl.hpp)
};

std::string_view variant_name(Variant v);

struct ExecutionPlan {
  // SIMD backend the kernel ids resolve at (downward fallback applies).
  dispatch::Backend backend = dispatch::Backend::kScalar;
  // Vector length to pin the temporal engines to; 0 = the backend's
  // native width.
  int vl = 0;
  // Temporal-vectorization space stride s (§3.2/§3.3).
  int stride = 1;
  // Tile base width / band height for the tiled path (diamond W x H,
  // parallelogram W x H, LCS block x band).  Ignored on the serial path.
  int tile_w = 0;
  int tile_h = 0;
  Path path = Path::kSerialTv;
  // Engine generation on the serial path (Jacobi families only).
  Variant variant = Variant::kTv;

  // Canonical spec string, parseable by parse_plan_spec:
  // "backend=avx2,vl=0,stride=7,tile=16384x128,path=tiled".  The variant
  // clause is emitted only when it deviates from the kTv default, so specs
  // recorded before the knob existed stay canonical.
  std::string to_string() const;
};

// The paper-default plan for the problem: stride and tiling from Table 1
// scaled to the problem shape, tiled path iff the problem asks for more
// than one thread and the family has a tiled driver, backend from
// dispatch::selected_backend().
ExecutionPlan heuristic_plan(const StencilProblem& p);

// Measured refinement of heuristic_plan(): times 2-3 candidate strides
// (serial path) or tile shapes (tiled path) on a small replica of the
// problem and returns the fastest.  Deterministic inputs, wall-clock
// measured; expect run-to-run variation in the *choice* but never in the
// *result* (all candidates are bit-identical by the §3.2 contract).
ExecutionPlan tune_plan(const StencilProblem& p);

// Applies a comma-separated "key=value" spec on top of `base` and returns
// the result.  Keys: backend (scalar|avx2|avx512), vl (int), stride (int),
// tile (WxH), path (tv|tiled), variant (tv|re).  Unknown keys, malformed
// values and empty
// clauses throw std::invalid_argument naming the offending clause; the
// result is NOT validated here (validate_plan does that).
ExecutionPlan apply_plan_spec(ExecutionPlan base, std::string_view spec);

// Rejects plans that cannot run: illegal stride for the family's
// dependence set (§3.2), stride beyond an engine's ring capacity,
// non-positive tile extents on the tiled path, a tiled path for a family
// with no tiled driver, or a backend this binary/CPU cannot execute.
// Throws std::invalid_argument / std::runtime_error with the reason.
void validate_plan(const StencilProblem& p, const ExecutionPlan& plan);

// True when the family has a parallel tiling driver (everything except
// Jacobi 1D5P, which only has the serial temporal engine).
bool family_has_tiled_path(Family f);

}  // namespace tvs::solver
