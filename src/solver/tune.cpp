// Measured auto-tuning (ExecutionPlan::tune of the design: plan_for with
// PlanMode::kTuned / TVS_TUNE=1).
//
// The knobs the heuristic guesses — stride on the serial path, tile shape
// on the tiled path — are exactly the ones §3.3/§5 show to be machine- and
// problem-dependent, so the tuner measures instead: it builds a small
// replica of the problem (same family and path, extents/steps clamped so
// one candidate run is milliseconds), times 2-3 candidate knob values
// through the same Solver facade, and returns the heuristic plan with the
// fastest candidate substituted.  All candidates produce bit-identical
// results (the §3.2 contract), so tuning can never change the answer,
// only the speed.
#include <algorithm>
#include <chrono>
#include <random>
#include <vector>

#include "solver/plan.hpp"
#include "solver/solver.hpp"
#include "stencil/coefficients.hpp"

namespace tvs::solver {

namespace {

double time_once(const StencilProblem& rep, const ExecutionPlan& plan) {
  const Solver s(rep, plan);

  // Deterministic inputs; the fill cost is outside the timed region.
  const auto timed = [](auto&& fn) {
    fn();  // warm the caches and the registry resolution
    double best = 1e300;
    for (int i = 0; i < 2; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return best;
  };

  // The FP families run the replica at the problem's own element type so a
  // float problem tunes against the float engines.
  const bool f32 = rep.effective_dtype() == dispatch::DType::kF32;
  switch (rep.family) {
    case Family::kJacobi1D3:
    case Family::kGs1D3: {
      const auto go = [&]<class T>() {
        grid::Grid1D<T> u(rep.nx);
        for (int x = 0; x <= rep.nx + 1; ++x)
          u.at(x) = T{1} + T(0.001) * static_cast<T>(x % 97);
        const stencil::C1D3T<T> c = stencil::heat1d<T>(0.25);
        return timed([&] { s.run(c, u); });
      };
      return f32 ? go.template operator()<float>()
                 : go.template operator()<double>();
    }
    case Family::kJacobi1D5: {
      const auto go = [&]<class T>() {
        grid::Grid1D<T> u(rep.nx);
        for (int x = 0; x <= rep.nx + 1; ++x)
          u.at(x) = T{1} + T(0.001) * static_cast<T>(x % 97);
        const stencil::C1D5T<T> c = stencil::heat1d5<T>(0.1);
        return timed([&] { s.run(c, u); });
      };
      return f32 ? go.template operator()<float>()
                 : go.template operator()<double>();
    }
    case Family::kJacobi2D5:
    case Family::kGs2D5: {
      const auto go = [&]<class T>() {
        grid::Grid2D<T> u(rep.nx, rep.ny);
        for (int x = 0; x <= rep.nx + 1; ++x)
          for (int y = 0; y <= rep.ny + 1; ++y)
            u.at(x, y) = T{1} + T(0.001) * static_cast<T>((x + y) % 97);
        const stencil::C2D5T<T> c = stencil::heat2d<T>(0.2);
        return timed([&] { s.run(c, u); });
      };
      return f32 ? go.template operator()<float>()
                 : go.template operator()<double>();
    }
    case Family::kJacobi2D9: {
      const auto go = [&]<class T>() {
        grid::Grid2D<T> u(rep.nx, rep.ny);
        for (int x = 0; x <= rep.nx + 1; ++x)
          for (int y = 0; y <= rep.ny + 1; ++y)
            u.at(x, y) = T{1} + T(0.001) * static_cast<T>((x + y) % 97);
        const stencil::C2D9T<T> c = stencil::box2d9<T>(0.1);
        return timed([&] { s.run(c, u); });
      };
      return f32 ? go.template operator()<float>()
                 : go.template operator()<double>();
    }
    case Family::kJacobi3D7:
    case Family::kGs3D7: {
      const auto go = [&]<class T>() {
        grid::Grid3D<T> u(rep.nx, rep.ny, rep.nz);
        for (int x = 0; x <= rep.nx + 1; ++x)
          for (int y = 0; y <= rep.ny + 1; ++y)
            for (int z = 0; z <= rep.nz + 1; ++z)
              u.at(x, y, z) =
                  T{1} + T(0.001) * static_cast<T>((x + y + z) % 97);
        const stencil::C3D7T<T> c = stencil::heat3d<T>(0.1);
        return timed([&] { s.run(c, u); });
      };
      return f32 ? go.template operator()<float>()
                 : go.template operator()<double>();
    }
    case Family::kLife: {
      grid::Grid2D<std::int32_t> u(rep.nx, rep.ny);
      std::mt19937 rng(7);
      u.fill(0);
      for (int x = 1; x <= rep.nx; ++x)
        for (int y = 1; y <= rep.ny; ++y)
          u.at(x, y) = static_cast<std::int32_t>(rng() & 1u);
      const stencil::LifeRule r{};
      return timed([&] { s.run(r, u); });
    }
    case Family::kLcs: {
      std::mt19937 rng(7);
      std::vector<std::int32_t> a(static_cast<std::size_t>(rep.nx)),
          b(static_cast<std::size_t>(rep.ny));
      for (auto& v : a) v = static_cast<std::int32_t>(rng() % 4);
      for (auto& v : b) v = static_cast<std::int32_t>(rng() % 4);
      return timed([&] { s.lcs(a, b); });
    }
  }
  return 0.0;
}

// Extents/steps clamped so one candidate run costs milliseconds while the
// working set still exercises the cache hierarchy the way the real
// problem's inner tiles do.
StencilProblem replica_of(const StencilProblem& p) {
  StencilProblem rep = p;
  switch (family_dim(p.family)) {
    case 1:
      rep.nx = std::min(p.nx, 1 << 15);
      rep.steps = std::min<long>(p.steps, 128);
      break;
    case 2:
      rep.nx = std::min(p.nx, 384);
      rep.ny = std::min(p.ny, 384);
      rep.steps = std::min<long>(p.steps, 32);
      break;
    default:
      rep.nx = std::min(p.nx, 48);
      rep.ny = std::min(p.ny, 48);
      rep.nz = std::min(p.nz, 48);
      rep.steps = std::min<long>(p.steps, 16);
      break;
  }
  if (p.family == Family::kLcs) {
    rep.nx = std::min(p.nx, 4096);
    rep.ny = std::min(p.ny, 4096);
  }
  return rep;
}

// 2-3 candidate values for the knob the path is most sensitive to.
std::vector<ExecutionPlan> candidates(const StencilProblem& p,
                                      const ExecutionPlan& base) {
  std::vector<ExecutionPlan> cands;
  const auto with_stride = [&](int s) {
    ExecutionPlan c = base;
    c.stride = s;
    cands.push_back(c);
  };
  const auto with_tile = [&](int w, int h) {
    ExecutionPlan c = base;
    c.tile_w = std::min(w, std::max(p.nx, 1));
    c.tile_h = h;
    cands.push_back(c);
  };
  // The Jacobi families also race each stride candidate's
  // redundancy-eliminated twin: bit-identical results (the §3.2 contract
  // holds across variants), so only the speed can differ.
  const auto with_stride_variants = [&](int s) {
    with_stride(s);
    ExecutionPlan c = base;
    c.stride = s;
    c.variant = Variant::kRe;
    cands.push_back(c);
  };

  if (base.path == Path::kSerialTv) {
    switch (p.family) {
      case Family::kJacobi1D3:
      case Family::kJacobi1D5:
        for (const int s : {5, 7, 11}) with_stride_variants(s);
        break;
      case Family::kGs1D3:
        for (const int s : {2, 3, 5}) with_stride(s);
        break;
      case Family::kLcs:
        cands.push_back(base);  // fixed stride-1 scheme: nothing to vary
        break;
      case Family::kJacobi2D5:
      case Family::kJacobi2D9:
      case Family::kJacobi3D7:
        for (const int s : {2, 3, 4}) with_stride_variants(s);
        break;
      default:  // the 2D/3D Gauss-Seidel families and Life
        for (const int s : {2, 3, 4}) with_stride(s);
        break;
    }
    return cands;
  }

  switch (p.family) {
    case Family::kJacobi1D3:
      for (const int w : {8192, 16384, 32768}) with_tile(w, base.tile_h);
      break;
    case Family::kGs1D3:
      for (const int w : {1024, 2048, 4096}) with_tile(w, base.tile_h);
      break;
    case Family::kJacobi2D5:
    case Family::kJacobi2D9:
    case Family::kLife:
      for (const int w : {128, 256, 512}) with_tile(w, base.tile_h);
      break;
    case Family::kJacobi3D7:
      for (const int w : {16, 32, 64}) with_tile(w, base.tile_h);
      break;
    case Family::kGs2D5:
    case Family::kGs3D7:
      for (const int w : {64, 128, 256}) with_tile(w, base.tile_h);
      break;
    case Family::kLcs: {
      for (const int w : {2048, 4096, 8192}) {
        ExecutionPlan c = base;
        c.tile_w = std::min(w, std::max(p.ny, 1));
        c.tile_h = std::min(w, std::max(p.nx, 1));
        cands.push_back(c);
      }
      break;
    }
    default:
      cands.push_back(base);
      break;
  }
  return cands;
}

}  // namespace

ExecutionPlan tune_plan(const StencilProblem& p) {
  const ExecutionPlan base = heuristic_plan(p);
  const StencilProblem rep = replica_of(p);
  const ExecutionPlan rep_base = heuristic_plan(rep);

  ExecutionPlan best = base;
  double best_time = 1e300;
  for (const ExecutionPlan& cand : candidates(p, base)) {
    // Project the candidate's knobs onto the replica's (clamped) shape.
    ExecutionPlan rep_cand = rep_base;
    rep_cand.stride = cand.stride;
    rep_cand.path = cand.path;
    rep_cand.variant = cand.variant;
    if (cand.path == Path::kTiledParallel) {
      rep_cand.tile_w = std::min(cand.tile_w, std::max(rep.nx, 1));
      rep_cand.tile_h = rep_base.tile_h;
      if (p.family == Family::kLcs) {
        rep_cand.tile_w = std::min(cand.tile_w, std::max(rep.ny, 1));
        rep_cand.tile_h = std::min(cand.tile_h, std::max(rep.nx, 1));
      }
    }
    // The 1D engines need nx >= lanes * stride to form one whole group.
    if (family_dim(p.family) == 1 && rep.nx < 16 * rep_cand.stride) continue;
    try {
      validate_plan(rep, rep_cand);
    } catch (const std::exception&) {
      continue;  // a candidate the replica cannot run is just skipped
    }
    const double t = time_once(rep, rep_cand);
    if (t < best_time) {
      best_time = t;
      best = cand;
    }
  }
  return best;
}

}  // namespace tvs::solver
