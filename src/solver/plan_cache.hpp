// Process-wide ExecutionPlan cache, keyed by StencilProblem::signature().
//
// plan_for() is the single planning entry point used by the Solver:
//
//   1. If TVS_PLAN is set, the spec is applied on top of the heuristic
//      plan, validated, and returned — pinned plans bypass the cache in
//      both directions (a pin must win over any cached choice, and an
//      experiment must not poison later unpinned runs).  A malformed spec
//      throws std::invalid_argument naming the offending clause.
//   2. Otherwise the cache is consulted; a hit returns the stored plan.
//   3. On a miss, the planner runs (heuristic, or measured auto-tune when
//      TVS_TUNE=1 / PlanMode::kTuned), the plan is validated and stored.
//
// The cache is thread-safe; hit/miss counters are exposed for tests and
// ops introspection.
#pragma once

#include "solver/plan.hpp"
#include "solver/problem.hpp"

namespace tvs::solver {

enum class PlanMode : int {
  kAuto = 0,       // TVS_TUNE=1 ? kTuned : kHeuristic
  kHeuristic = 1,  // paper-default knobs, no measurement
  kTuned = 2,      // micro-benchmark candidate knobs on a small replica
};

struct PlanCacheStats {
  long hits = 0;
  long misses = 0;    // planner runs stored into the cache
  long pinned = 0;    // TVS_PLAN lookups (never cached)
};

// The planning front door (see the file comment for the resolution order).
ExecutionPlan plan_for(const StencilProblem& p,
                       PlanMode mode = PlanMode::kAuto);

PlanCacheStats plan_cache_stats();

// Drops every cached plan and zeroes the counters (tests).
void plan_cache_clear();

}  // namespace tvs::solver
