#include "solver/plan.hpp"

#include <algorithm>
#include <charconv>

#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "solver/error.hpp"
#include "tv/tv1d_impl.hpp"  // kMaxStride (ring capacity of the 1D engines)

namespace tvs::solver {

namespace {

// Ring capacity of the parallelogram tile kernel (parallelogram_impl.hpp
// asserts s <= 12).
constexpr int kMaxParallelogramStride = 12;

int parse_int_value(std::string_view clause, std::string_view value) {
  int out = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc() || ptr != last) {
    throw Error(Errc::kBadPlanSpec,
                "TVS_PLAN clause \"" + std::string(clause) + "\": \"" +
                    std::string(value) + "\" is not an integer");
  }
  return out;
}

// True for the families that register a redundancy-eliminated engine
// (the five Jacobi ids; the Gauss-Seidel/Life/LCS engines have no re
// counterpart).
bool family_has_re_variant(Family f) {
  return f == Family::kJacobi1D3 || f == Family::kJacobi1D5 ||
         f == Family::kJacobi2D5 || f == Family::kJacobi2D9 ||
         f == Family::kJacobi3D7;
}

// The serial temporal-engine registry id for a family (used to check that
// a pinned vector length actually has a registered engine).  The re
// variant swaps in the redundancy-eliminated ids for the Jacobi families.
std::string_view serial_kernel_id(Family f, Variant v) {
  const bool re = v == Variant::kRe;
  switch (f) {
    case Family::kJacobi1D3:
      return re ? dispatch::kTvJacobi1D3Re : dispatch::kTvJacobi1D3;
    case Family::kJacobi1D5:
      return re ? dispatch::kTvJacobi1D5Re : dispatch::kTvJacobi1D5;
    case Family::kJacobi2D5:
      return re ? dispatch::kTvJacobi2D5Re : dispatch::kTvJacobi2D5;
    case Family::kJacobi2D9:
      return re ? dispatch::kTvJacobi2D9Re : dispatch::kTvJacobi2D9;
    case Family::kJacobi3D7:
      return re ? dispatch::kTvJacobi3D7Re : dispatch::kTvJacobi3D7;
    case Family::kGs1D3:
      return dispatch::kTvGs1D3;
    case Family::kGs2D5:
      return dispatch::kTvGs2D5;
    case Family::kGs3D7:
      return dispatch::kTvGs3D7;
    case Family::kLife:
      return dispatch::kTvLife;
    case Family::kLcs:
      return dispatch::kTvLcsRows;
  }
  throw Error(Errc::kBadFamily, "unknown stencil family");
}

// Band height rounded down to a multiple of `unit`, clamped to the number
// of steps actually requested (never below one unit).
int clamp_height(int preferred, long steps, int unit) {
  long h = std::min<long>(preferred, steps);
  h -= h % unit;
  return static_cast<int>(std::max<long>(h, unit));
}

}  // namespace

std::string_view path_name(Path p) {
  return p == Path::kSerialTv ? "tv" : "tiled";
}

std::string_view variant_name(Variant v) {
  return v == Variant::kRe ? "re" : "tv";
}

std::string ExecutionPlan::to_string() const {
  std::string s = "backend=";
  s += dispatch::backend_name(backend);
  s += ",vl=" + std::to_string(vl);
  s += ",stride=" + std::to_string(stride);
  if (path == Path::kTiledParallel) {
    s += ",tile=" + std::to_string(tile_w) + "x" + std::to_string(tile_h);
  }
  s += ",path=";
  s += path_name(path);
  if (variant != Variant::kTv) {
    s += ",variant=";
    s += variant_name(variant);
  }
  return s;
}

bool family_has_tiled_path(Family f) { return f != Family::kJacobi1D5; }

ExecutionPlan heuristic_plan(const StencilProblem& p) {
  ExecutionPlan plan;
  plan.backend = dispatch::selected_backend();
  plan.vl = 0;

  // Paper defaults: stride from §3.4, blocking from Table 1, clamped to
  // the problem extents so small problems still get whole tiles.
  switch (p.family) {
    case Family::kJacobi1D3:
    case Family::kJacobi1D5:
      plan.stride = 7;
      plan.tile_w = std::min(16384, std::max(p.nx, 1));
      plan.tile_h = clamp_height(128, std::max(p.steps, 1L), 4);
      break;
    case Family::kJacobi2D5:
    case Family::kJacobi2D9:
    case Family::kLife:
      plan.stride = 2;
      plan.tile_w = std::min(256, std::max(p.nx, 1));
      plan.tile_h = clamp_height(32, std::max(p.steps, 1L), 16);
      break;
    case Family::kJacobi3D7:
      plan.stride = 2;
      plan.tile_w = std::min(32, std::max(p.nx, 1));
      plan.tile_h = clamp_height(8, std::max(p.steps, 1L), 8);
      break;
    case Family::kGs1D3:
      plan.stride = 3;
      plan.tile_w = std::min(2048, std::max(p.nx, 1));
      plan.tile_h = clamp_height(64, std::max(p.steps, 1L), 4);
      break;
    case Family::kGs2D5:
    case Family::kGs3D7:
      plan.stride = 2;
      plan.tile_w = std::min(128, std::max(p.nx, 1));
      plan.tile_h = clamp_height(32, std::max(p.steps, 1L), 4);
      break;
    case Family::kLcs:
      plan.stride = 1;  // the LCS engine is a fixed s = 1 scheme
      plan.tile_w = std::min(4096, std::max(p.ny, 1));  // column block
      plan.tile_h = std::min(4096, std::max(p.nx, 1));  // row band
      break;
  }

  // Single precision doubles the lanes per register (Table 1's vl scaling:
  // 8 under scalar/avx2, 16 under avx512), so the float default pins the
  // doubled width explicitly; doubles keep vl = 0 (backend native).
  if (p.effective_dtype() == dispatch::DType::kF32) {
    plan.vl = plan.backend == dispatch::Backend::kAvx512 ? 16 : 8;
  }

  // The tiled drivers are double/int32 only, so float problems stay on the
  // serial temporal path regardless of the thread request.
  plan.path = (p.threads > 1 && family_has_tiled_path(p.family) &&
               p.effective_dtype() != dispatch::DType::kF32)
                  ? Path::kTiledParallel
                  : Path::kSerialTv;
  return plan;
}

ExecutionPlan apply_plan_spec(ExecutionPlan base, std::string_view spec) {
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view clause = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                          : rest.substr(comma + 1);
    const std::size_t eq = clause.find('=');
    if (clause.empty() || eq == std::string_view::npos || eq == 0) {
      throw Error(Errc::kBadPlanSpec,
                  "TVS_PLAN clause \"" + std::string(clause) +
                      "\" is not key=value (valid keys: backend, vl, "
                      "stride, tile, path, variant)");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "backend") {
      const auto b = dispatch::parse_backend(value);
      if (!b.has_value()) {
        throw Error(Errc::kBadPlanSpec,
                    "TVS_PLAN clause \"" + std::string(clause) +
                        "\": unknown backend (valid: scalar, avx2, "
                        "avx512)");
      }
      base.backend = *b;
    } else if (key == "vl") {
      base.vl = parse_int_value(clause, value);
    } else if (key == "stride") {
      base.stride = parse_int_value(clause, value);
    } else if (key == "tile") {
      const std::size_t x = value.find('x');
      if (x == std::string_view::npos || x == 0 || x + 1 == value.size()) {
        throw Error(Errc::kBadPlanSpec,
                    "TVS_PLAN clause \"" + std::string(clause) +
                        "\": tile must be WxH, e.g. tile=256x32");
      }
      base.tile_w = parse_int_value(clause, value.substr(0, x));
      base.tile_h = parse_int_value(clause, value.substr(x + 1));
    } else if (key == "path") {
      if (value == "tv") {
        base.path = Path::kSerialTv;
      } else if (value == "tiled") {
        base.path = Path::kTiledParallel;
      } else {
        throw Error(Errc::kBadPlanSpec,
                    "TVS_PLAN clause \"" + std::string(clause) +
                        "\": unknown path (valid: tv, tiled)");
      }
    } else if (key == "variant") {
      if (value == "tv") {
        base.variant = Variant::kTv;
      } else if (value == "re") {
        base.variant = Variant::kRe;
      } else {
        throw Error(Errc::kBadPlanSpec,
                    "TVS_PLAN clause \"" + std::string(clause) +
                        "\": unknown variant (valid: tv, re)");
      }
    } else {
      throw Error(Errc::kBadPlanSpec,
                  "TVS_PLAN clause \"" + std::string(clause) +
                      "\": unknown key (valid: backend, vl, stride, tile, "
                      "path, variant)");
    }
  }
  return base;
}

void validate_plan(const StencilProblem& p, const ExecutionPlan& plan) {
  const std::string where =
      "solver plan for " + std::string(family_name(p.family));

  // Element-type sanity: the FP families run in f64/f32, Life/LCS are
  // fixed int32 (StencilProblem::effective_dtype normalizes the latter, so
  // only an explicit impossible request trips this).
  if (!family_supports_dtype(p.family, p.effective_dtype())) {
    throw Error(Errc::kUnsupportedDtype,
                where + ": element type " +
                    std::string(dispatch::dtype_name(p.dtype)) +
                    " is not supported by this family",
                p.signature());
  }
  const dispatch::DType dt = p.effective_dtype();

  // Backend availability mirrors the TVS_FORCE_BACKEND contract.
  if (!dispatch::KernelRegistry::instance().has_backend(plan.backend)) {
    throw Error(Errc::kBackendUnavailable,
                where + ": backend " +
                    std::string(dispatch::backend_name(plan.backend)) +
                    " was not compiled into this binary",
                p.signature());
  }
  if (!dispatch::cpu_supports(plan.backend)) {
    throw Error(Errc::kBackendUnavailable,
                where + ": this CPU cannot execute backend " +
                    std::string(dispatch::backend_name(plan.backend)),
                p.signature());
  }

  // §3.2 stride legality, checked once for the whole solve.  The 1D
  // temporal engines additionally cap the stride at their ring capacity.
  const std::vector<stencil::Dep> deps = family_deps(p.family);
  const bool has_ring_cap = p.family == Family::kJacobi1D3 ||
                            p.family == Family::kJacobi1D5 ||
                            p.family == Family::kGs1D3;
  stencil::require_legal_stride(where, deps, plan.stride,
                                has_ring_cap ? tv::kMaxStride : 0);
  if (p.family == Family::kLcs && plan.stride != 1) {
    throw Error(Errc::kBadStride,
                where +
                    ": the LCS engine is a fixed stride-1 scheme; stride "
                    "must be 1",
                p.signature());
  }

  // The redundancy-eliminated variant exists for the Jacobi families'
  // serial engines only; everything else must stay on the baseline.
  if (plan.variant == Variant::kRe) {
    if (!family_has_re_variant(p.family)) {
      throw Error(Errc::kBadVariant,
                  where +
                      ": variant=re is registered for the Jacobi families "
                      "only; use variant=tv",
                  p.signature());
    }
    if (plan.path == Path::kTiledParallel) {
      throw Error(Errc::kBadVariant,
                  where +
                      ": variant=re applies to the serial tv path only "
                      "(the tiled drivers have no re engines)",
                  p.signature());
    }
  }

  if (plan.vl < 0) {
    throw Error(Errc::kBadVl, where + ": vl must be >= 0 (0 = native)",
                p.signature());
  }
  if (plan.vl > 0) {
    if (plan.path == Path::kTiledParallel) {
      throw Error(Errc::kBadVl,
                  where +
                      ": vl pinning applies to the serial tv path only "
                      "(the tiled drivers choose their own internal width)",
                  p.signature());
    }
    const std::vector<int> widths =
        dispatch::KernelRegistry::instance().registered_widths(
            serial_kernel_id(p.family, plan.variant), plan.backend, dt);
    if (std::find(widths.begin(), widths.end(), plan.vl) == widths.end()) {
      std::string have;
      for (const int w : widths) {
        if (!have.empty()) have += ", ";
        have += std::to_string(w);
      }
      throw Error(Errc::kBadVl,
                  where + ": no engine registered at vl=" +
                      std::to_string(plan.vl) + " dtype=" +
                      std::string(dispatch::dtype_name(dt)) +
                      " (registered widths: " + have + ")",
                  p.signature());
    }
  }

  if (plan.path == Path::kTiledParallel) {
    if (!family_has_tiled_path(p.family)) {
      throw Error(Errc::kBadPath,
                  where + ": this family has no tiled parallel driver; use "
                          "path=tv",
                  p.signature());
    }
    if (dt == dispatch::DType::kF32) {
      throw Error(Errc::kBadPath,
                  where + ": the tiled drivers are double/int32 only; "
                          "float problems run path=tv",
                  p.signature());
    }
    if (plan.tile_w <= 0 || plan.tile_h <= 0) {
      throw Error(Errc::kBadPlanSpec,
                  where + ": tiled path needs positive tile extents (got " +
                      std::to_string(plan.tile_w) + "x" +
                      std::to_string(plan.tile_h) + ")",
                  p.signature());
    }
    const bool parallelogram = p.family == Family::kGs1D3 ||
                               p.family == Family::kGs2D5 ||
                               p.family == Family::kGs3D7;
    if (parallelogram && plan.stride > kMaxParallelogramStride) {
      throw Error(Errc::kBadStride,
                  where + ": stride " + std::to_string(plan.stride) +
                      " exceeds the parallelogram tile kernel's ring "
                      "capacity (max " +
                      std::to_string(kMaxParallelogramStride) + ")",
                  p.signature());
    }
  }
}

}  // namespace tvs::solver
