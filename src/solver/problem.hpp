// StencilProblem: the workload descriptor behind the Solver facade.
//
// A problem names *what* to compute — kernel family, grid extents, number
// of time steps / sweeps, and the requested thread count — and nothing
// about *how* (backend, vector length, stride, tiling).  The "how" is an
// ExecutionPlan (plan.hpp), chosen per problem by the planner and cached
// process-wide under the problem's signature() (plan_cache.hpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dispatch/dtype.hpp"
#include "stencil/dependence.hpp"

namespace tvs::solver {

// The nine kernel families of the paper's evaluation (§3.4): Jacobi
// 1D3P/1D5P/2D5P/2D9P/3D7P, Gauss-Seidel 1D/2D/3D, Game of Life, and the
// LCS dynamic program.
enum class Family : int {
  kJacobi1D3 = 0,
  kJacobi1D5,
  kJacobi2D5,
  kJacobi2D9,
  kJacobi3D7,
  kGs1D3,
  kGs2D5,
  kGs3D7,
  kLife,
  kLcs,
};

inline constexpr int kFamilyCount = 10;

// "jacobi1d3", "gs2d5", "life", "lcs", ... (matches the registry id stems).
std::string_view family_name(Family f);

// Inverse of family_name; throws std::invalid_argument for unknown names,
// listing the valid ones.
Family parse_family(std::string_view name);

// Spatial dimensionality of the family's grid (LCS counts as 2: |a| x |b|).
int family_dim(Family f);

// The family's dependence set projected on (t, outermost-space-dim) —
// what the §3.2 stride-legality rule is checked against.
std::vector<stencil::Dep> family_deps(Family f);

// True when the family's element type can be `dt`: the floating-point
// families (Jacobi + Gauss-Seidel) run in f64 or f32; Life and LCS are
// fixed int32.
bool family_supports_dtype(Family f, dispatch::DType dt);

struct StencilProblem {
  Family family = Family::kJacobi1D3;
  // Grid extents (interior points).  1D families use nx; 2D families
  // nx x ny; 3D families nx x ny x nz.  LCS: nx = |a|, ny = |b|.
  int nx = 0;
  int ny = 0;
  int nz = 0;
  // Time steps (Jacobi/Life), sweeps (Gauss-Seidel); ignored by LCS.
  long steps = 0;
  // Requested worker threads for the tiled path: 0 = library default
  // (serial temporal vectorization), > 1 opts into the parallel tiling
  // drivers when the family has one.
  int threads = 0;
  // Element type of the grid.  kF64 (the default) is the paper's
  // configuration for the FP families; kF32 doubles the lanes per vector
  // register.  Ignored by Life/LCS, whose storage is fixed int32 — see
  // effective_dtype().
  dispatch::DType dtype = dispatch::DType::kF64;

  // The dtype the kernels actually run at: `dtype` for the FP families,
  // kI32 for Life/LCS.
  dispatch::DType effective_dtype() const;

  // Stable cache key: family, extents, steps and threads, e.g.
  // "jacobi2d5:nx=512:ny=512:steps=100:threads=4"; single-precision
  // problems append ":dtype=f32" (the f64 default stays unsuffixed so
  // pre-dtype signatures are unchanged).
  std::string signature() const;
};

// Convenience constructors for the common shapes.
//
// DEPRECATED: prefer solver::ProblemBuilder (builder.hpp), which validates
// extents arity/positivity, steps, threads and dtype at build() time; the
// positional helpers below construct unvalidated descriptors and are kept
// for source compatibility only.
StencilProblem problem_1d(Family f, int nx, long steps, int threads = 0);
StencilProblem problem_2d(Family f, int nx, int ny, long steps,
                          int threads = 0);
StencilProblem problem_3d(Family f, int nx, int ny, int nz, long steps,
                          int threads = 0);

// The same shapes with an explicit element type (dt = kF32 for the float
// engines).
StencilProblem problem_1d(Family f, dispatch::DType dt, int nx, long steps,
                          int threads = 0);
StencilProblem problem_2d(Family f, dispatch::DType dt, int nx, int ny,
                          long steps, int threads = 0);
StencilProblem problem_3d(Family f, dispatch::DType dt, int nx, int ny,
                          int nz, long steps, int threads = 0);

}  // namespace tvs::solver
