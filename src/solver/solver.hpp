// Solver: the single front door over the ~20 per-kernel entry points.
//
//   StencilProblem p = solver::ProblemBuilder(solver::Family::kJacobi2D5)
//                          .extents(n, n).steps(steps).build();
//   solver::Solver s(p);          // plans once (cached process-wide)
//   s.run(solver::Workload(stencil::heat2d(0.2), u));
//
// Construction picks an ExecutionPlan for the problem — heuristic paper
// defaults, measured auto-tune (TVS_TUNE=1 / PlanMode::kTuned), or a
// TVS_PLAN pin — validates it (§3.2 stride legality, backend
// availability, tile sanity) exactly once, and run() then routes through
// the KernelRegistry: the serial path resolves the temporal engine at the
// planned (backend, vl) and calls it directly; the tiled path drives the
// diamond / parallelogram / wavefront kernels with the planned blocking.
// Every path is bit-identical to the direct tv_* / diamond_* entry points
// (and therefore to the scalar oracles).
//
// The execution API is the type-erased pair
//
//   run(const Workload&)    -> RunResult     synchronous, this thread
//   submit(Workload)        -> Future<RunResult>   async, on the serving
//                                            executor (serve/executor.hpp)
//
// sharing ONE family/dtype/extent validation (workload.hpp).  The typed
// run() overloads below are thin compatibility wrappers over the same
// pair; errors from every entry point are tvs::solver::Error (error.hpp),
// which derives std::invalid_argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "grid/pingpong.hpp"
#include "solver/error.hpp"
#include "solver/plan.hpp"
#include "solver/plan_cache.hpp"
#include "solver/problem.hpp"
#include "solver/workload.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::tiling {
struct StageExec;
}

namespace tvs::solver {

class Solver {
 public:
  // Plans via plan_for() (cache + TVS_PLAN / TVS_TUNE aware).
  explicit Solver(const StencilProblem& p, PlanMode mode = PlanMode::kAuto);
  // Pins an explicit plan (validated here); used by benchmarks that must
  // measure one fixed configuration, and by the auto-tuner's candidates.
  Solver(const StencilProblem& p, const ExecutionPlan& plan);

  const StencilProblem& problem() const { return prob_; }
  const ExecutionPlan& plan() const { return plan_; }

  // ---- the unified execution pair -----------------------------------------

  // Validates the payload against the problem (one shared check) and runs
  // it synchronously on the calling thread.  Grid payloads update the
  // caller's grid in place; the LCS payload reports through RunResult.
  RunResult run(const Workload& w) const;

  // Same contract, asynchronous: the workload is enqueued on the serving
  // executor (serve::default_pool()) and the result — or the exception the
  // run raised — is delivered through the Future.  A non-owning workload's
  // grid/span storage must stay alive until the future is ready (see the
  // Workload lifetime contract in workload.hpp); owning workloads carry
  // their storage.  Bit-identical to run(): both resolve the same cached
  // plan and the same engines — a tiled-parallel plan may be decomposed
  // into per-tile pool tasks (serve/sched.hpp), which preserves the
  // wavefront stage order and therefore the exact results.
  Future<RunResult> submit(Workload w) const;

  // A copy of this solver whose tiled drivers hand their parallel stages
  // to `ex` instead of their own OpenMP loops (serve/sched.hpp builds one
  // over the serving pool).  `ex` must outlive every run(); nullptr
  // restores the default.  Results are bit-identical either way.
  Solver with_stage_exec(const tiling::StageExec* ex) const {
    Solver s = *this;
    s.stage_exec_ = ex;
    return s;
  }

  // ---- typed compatibility wrappers (forward to run(Workload)) -----------

  // Jacobi1D3 / Gs1D3 (by the problem's family).
  void run(const stencil::C1D3& c, grid::Grid1D<double>& u) const;
  // Jacobi1D5.
  void run(const stencil::C1D5& c, grid::Grid1D<double>& u) const;
  // Jacobi2D5 / Gs2D5.
  void run(const stencil::C2D5& c, grid::Grid2D<double>& u) const;
  // Jacobi2D9.
  void run(const stencil::C2D9& c, grid::Grid2D<double>& u) const;
  // Jacobi3D7 / Gs3D7.
  void run(const stencil::C3D7& c, grid::Grid3D<double>& u) const;
  // Life.
  void run(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u) const;

  // Single-precision overloads of the FP families (StencilProblem::dtype
  // must be kF32; float problems always run the serial temporal path).
  void run(const stencil::C1D3f& c, grid::Grid1D<float>& u) const;
  void run(const stencil::C1D5f& c, grid::Grid1D<float>& u) const;
  void run(const stencil::C2D5f& c, grid::Grid2D<float>& u) const;
  void run(const stencil::C2D9f& c, grid::Grid2D<float>& u) const;
  void run(const stencil::C3D7f& c, grid::Grid3D<float>& u) const;

  // Tiled-path parity-pair overloads (no copy-in/copy-out: the result of
  // step `steps` is left in pp.by_parity(steps), as with the raw diamond
  // drivers).  Only valid on a kTiledParallel plan of a diamond family.
  // These stay typed: their result placement differs from the Workload
  // contract, so they are not serving payloads.
  void run(const stencil::C1D3& c,
           grid::PingPong<grid::Grid1D<double>>& pp) const;
  void run(const stencil::C2D5& c,
           grid::PingPong<grid::Grid2D<double>>& pp) const;
  void run(const stencil::C2D9& c,
           grid::PingPong<grid::Grid2D<double>>& pp) const;
  void run(const stencil::C3D7& c,
           grid::PingPong<grid::Grid3D<double>>& pp) const;
  void run(const stencil::LifeRule& r,
           grid::PingPong<grid::Grid2D<std::int32_t>>& pp) const;

  // Lcs: length of the longest common subsequence (and the final DP row).
  // lcs() honours the planned path (tiled wavefront or serial rows);
  // lcs_row() always runs the serial row engine, whatever the plan.
  std::int32_t lcs(std::span<const std::int32_t> a,
                   std::span<const std::int32_t> b) const;
  std::vector<std::int32_t> lcs_row(std::span<const std::int32_t> a,
                                    std::span<const std::int32_t> b) const;

 private:
  // Kernel routing per payload shape, no validation (run(Workload) did it).
  void exec(const stencil::C1D3& c, grid::Grid1D<double>& u) const;
  void exec(const stencil::C1D5& c, grid::Grid1D<double>& u) const;
  void exec(const stencil::C2D5& c, grid::Grid2D<double>& u) const;
  void exec(const stencil::C2D9& c, grid::Grid2D<double>& u) const;
  void exec(const stencil::C3D7& c, grid::Grid3D<double>& u) const;
  void exec(const stencil::C1D3f& c, grid::Grid1D<float>& u) const;
  void exec(const stencil::C1D5f& c, grid::Grid1D<float>& u) const;
  void exec(const stencil::C2D5f& c, grid::Grid2D<float>& u) const;
  void exec(const stencil::C2D9f& c, grid::Grid2D<float>& u) const;
  void exec(const stencil::C3D7f& c, grid::Grid3D<float>& u) const;
  void exec(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u) const;
  void exec_lcs(const detail::LcsJob& job, RunResult& out) const;
  std::vector<std::int32_t> exec_lcs_rows(
      std::span<const std::int32_t> a, std::span<const std::int32_t> b) const;

  StencilProblem prob_;
  ExecutionPlan plan_;
  // Non-owning; set via with_stage_exec().  When non-null the tiled
  // drivers fan their stages out on it and OpenMP is held to one thread
  // (the executor provides the parallelism).
  const tiling::StageExec* stage_exec_ = nullptr;
};

}  // namespace tvs::solver
