// Solver: the single front door over the ~20 per-kernel entry points.
//
//   StencilProblem p = solver::problem_2d(solver::Family::kJacobi2D5,
//                                         n, n, steps);
//   solver::Solver s(p);          // plans once (cached process-wide)
//   s.run(stencil::heat2d(0.2), u);
//
// Construction picks an ExecutionPlan for the problem — heuristic paper
// defaults, measured auto-tune (TVS_TUNE=1 / PlanMode::kTuned), or a
// TVS_PLAN pin — validates it (§3.2 stride legality, backend
// availability, tile sanity) exactly once, and run() then routes through
// the KernelRegistry: the serial path resolves the temporal engine at the
// planned (backend, vl) and calls it directly; the tiled path drives the
// diamond / parallelogram / wavefront kernels with the planned blocking.
// Every path is bit-identical to the direct tv_* / diamond_* entry points
// (and therefore to the scalar oracles).
//
// The typed run() overloads are family-checked: calling the C2D5 overload
// on anything but a Jacobi2D5/Gs2D5 problem throws std::invalid_argument,
// as does a grid whose extents disagree with the problem descriptor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "grid/pingpong.hpp"
#include "solver/plan.hpp"
#include "solver/plan_cache.hpp"
#include "solver/problem.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::solver {

class Solver {
 public:
  // Plans via plan_for() (cache + TVS_PLAN / TVS_TUNE aware).
  explicit Solver(const StencilProblem& p, PlanMode mode = PlanMode::kAuto);
  // Pins an explicit plan (validated here); used by benchmarks that must
  // measure one fixed configuration, and by the auto-tuner's candidates.
  Solver(const StencilProblem& p, const ExecutionPlan& plan);

  const StencilProblem& problem() const { return prob_; }
  const ExecutionPlan& plan() const { return plan_; }

  // Jacobi1D3 / Gs1D3 (by the problem's family).
  void run(const stencil::C1D3& c, grid::Grid1D<double>& u) const;
  // Jacobi1D5.
  void run(const stencil::C1D5& c, grid::Grid1D<double>& u) const;
  // Jacobi2D5 / Gs2D5.
  void run(const stencil::C2D5& c, grid::Grid2D<double>& u) const;
  // Jacobi2D9.
  void run(const stencil::C2D9& c, grid::Grid2D<double>& u) const;
  // Jacobi3D7 / Gs3D7.
  void run(const stencil::C3D7& c, grid::Grid3D<double>& u) const;
  // Life.
  void run(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u) const;

  // Single-precision overloads of the FP families (StencilProblem::dtype
  // must be kF32; float problems always run the serial temporal path).
  void run(const stencil::C1D3f& c, grid::Grid1D<float>& u) const;
  void run(const stencil::C1D5f& c, grid::Grid1D<float>& u) const;
  void run(const stencil::C2D5f& c, grid::Grid2D<float>& u) const;
  void run(const stencil::C2D9f& c, grid::Grid2D<float>& u) const;
  void run(const stencil::C3D7f& c, grid::Grid3D<float>& u) const;

  // Tiled-path parity-pair overloads (no copy-in/copy-out: the result of
  // step `steps` is left in pp.by_parity(steps), as with the raw diamond
  // drivers).  Only valid on a kTiledParallel plan of a diamond family.
  void run(const stencil::C1D3& c,
           grid::PingPong<grid::Grid1D<double>>& pp) const;
  void run(const stencil::C2D5& c,
           grid::PingPong<grid::Grid2D<double>>& pp) const;
  void run(const stencil::C2D9& c,
           grid::PingPong<grid::Grid2D<double>>& pp) const;
  void run(const stencil::C3D7& c,
           grid::PingPong<grid::Grid3D<double>>& pp) const;
  void run(const stencil::LifeRule& r,
           grid::PingPong<grid::Grid2D<std::int32_t>>& pp) const;

  // Lcs: length of the longest common subsequence (and the final DP row).
  std::int32_t lcs(std::span<const std::int32_t> a,
                   std::span<const std::int32_t> b) const;
  std::vector<std::int32_t> lcs_row(std::span<const std::int32_t> a,
                                    std::span<const std::int32_t> b) const;

 private:
  StencilProblem prob_;
  ExecutionPlan plan_;
};

}  // namespace tvs::solver
