#include "solver/error.hpp"

namespace tvs::solver {

std::string_view errc_name(Errc code) {
  switch (code) {
    case Errc::kBadFamily:
      return "bad-family";
    case Errc::kBadExtents:
      return "bad-extents";
    case Errc::kBadSteps:
      return "bad-steps";
    case Errc::kBadThreads:
      return "bad-threads";
    case Errc::kBadPlanSpec:
      return "bad-plan-spec";
    case Errc::kUnsupportedDtype:
      return "unsupported-dtype";
    case Errc::kBadStride:
      return "bad-stride";
    case Errc::kBadVl:
      return "bad-vl";
    case Errc::kBadPath:
      return "bad-path";
    case Errc::kBadVariant:
      return "bad-variant";
    case Errc::kBackendUnavailable:
      return "backend-unavailable";
    case Errc::kBadWorkload:
      return "bad-workload";
  }
  return "unknown";
}

}  // namespace tvs::solver
