// The one family/dtype/extent validation behind the unified Solver front
// door, and the run(Workload) dispatcher both the sync and async paths
// share.  Every typed run() overload forwards here, so a payload rejected
// once is rejected everywhere — and a payload accepted here routes to the
// same registry-resolved engines the typed overloads always used.
#include <cassert>
#include <chrono>
#include <string>
#include <variant>

#include "solver/error.hpp"
#include "solver/solver.hpp"
#include "solver/workload.hpp"
#include "util/checked_idx.hpp"

namespace tvs::solver {

namespace {

// Per-coefficient-set payload facts: display name, the families that
// consume it, and the element type its grid carries.  The dtype lives here
// (not on the grid type) so Life's int32 grid maps to kI32 without the
// grid classes growing a dispatch dependency.
template <class C>
struct PayloadTraits;

template <>
struct PayloadTraits<stencil::C1D3> {
  static constexpr std::string_view kName = "C1D3/f64";
  static constexpr Family kFamilies[] = {Family::kJacobi1D3, Family::kGs1D3};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF64;
};
template <>
struct PayloadTraits<stencil::C1D5> {
  static constexpr std::string_view kName = "C1D5/f64";
  static constexpr Family kFamilies[] = {Family::kJacobi1D5};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF64;
};
template <>
struct PayloadTraits<stencil::C2D5> {
  static constexpr std::string_view kName = "C2D5/f64";
  static constexpr Family kFamilies[] = {Family::kJacobi2D5, Family::kGs2D5};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF64;
};
template <>
struct PayloadTraits<stencil::C2D9> {
  static constexpr std::string_view kName = "C2D9/f64";
  static constexpr Family kFamilies[] = {Family::kJacobi2D9};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF64;
};
template <>
struct PayloadTraits<stencil::C3D7> {
  static constexpr std::string_view kName = "C3D7/f64";
  static constexpr Family kFamilies[] = {Family::kJacobi3D7, Family::kGs3D7};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF64;
};
template <>
struct PayloadTraits<stencil::C1D3f> {
  static constexpr std::string_view kName = "C1D3/f32";
  static constexpr Family kFamilies[] = {Family::kJacobi1D3, Family::kGs1D3};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF32;
};
template <>
struct PayloadTraits<stencil::C1D5f> {
  static constexpr std::string_view kName = "C1D5/f32";
  static constexpr Family kFamilies[] = {Family::kJacobi1D5};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF32;
};
template <>
struct PayloadTraits<stencil::C2D5f> {
  static constexpr std::string_view kName = "C2D5/f32";
  static constexpr Family kFamilies[] = {Family::kJacobi2D5, Family::kGs2D5};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF32;
};
template <>
struct PayloadTraits<stencil::C2D9f> {
  static constexpr std::string_view kName = "C2D9/f32";
  static constexpr Family kFamilies[] = {Family::kJacobi2D9};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF32;
};
template <>
struct PayloadTraits<stencil::C3D7f> {
  static constexpr std::string_view kName = "C3D7/f32";
  static constexpr Family kFamilies[] = {Family::kJacobi3D7, Family::kGs3D7};
  static constexpr dispatch::DType kDtype = dispatch::DType::kF32;
};
template <>
struct PayloadTraits<stencil::LifeRule> {
  static constexpr std::string_view kName = "LifeRule/i32";
  static constexpr Family kFamilies[] = {Family::kLife};
  static constexpr dispatch::DType kDtype = dispatch::DType::kI32;
};

void check_payload_family(const StencilProblem& p, std::string_view payload,
                          const Family* fams, std::size_t nfams) {
  for (std::size_t i = 0; i < nfams; ++i) {
    if (p.family == fams[i]) return;
  }
  throw Error(Errc::kBadWorkload,
              "Solver::run: a " + std::string(payload) +
                  " payload cannot serve family " +
                  std::string(family_name(p.family)) + " (problem " +
                  p.signature() + ")",
              p.signature());
}

void check_payload_dtype(const StencilProblem& p, std::string_view payload,
                         dispatch::DType dt) {
  if (p.effective_dtype() == dt) return;
  throw Error(Errc::kUnsupportedDtype,
              "Solver::run: a " + std::string(payload) +
                  " payload does not match the problem's element type "
                  "(problem " +
                  p.signature() + ")",
              p.signature());
}

void check_payload_extents(const StencilProblem& p, int nx, int ny, int nz) {
  const int dim = family_dim(p.family);
  if (nx == p.nx && (dim < 2 || ny == p.ny) && (dim < 3 || nz == p.nz)) {
    return;
  }
  throw Error(Errc::kBadExtents,
              "Solver::run: payload extents disagree with the "
              "StencilProblem descriptor (problem " +
                  p.signature() + ")",
              p.signature());
}

template <class C, class G>
void check_stencil_job(const StencilProblem& p,
                       const detail::StencilJob<C, G>& job) {
  using Traits = PayloadTraits<C>;
  // An owning constructor given a null shared_ptr, or a moved-from
  // workload: reject before the extent probes dereference it.
  if (job.grid == nullptr) {
    throw Error(Errc::kBadWorkload,
                "Solver::run: a " + std::string(Traits::kName) +
                    " payload holds a null grid (problem " + p.signature() +
                    ")",
                p.signature());
  }
  constexpr std::size_t kNFams =
      sizeof(Traits::kFamilies) / sizeof(Traits::kFamilies[0]);
  check_payload_family(p, Traits::kName, Traits::kFamilies, kNFams);
  check_payload_dtype(p, Traits::kName, Traits::kDtype);
  if constexpr (requires { job.grid->nz(); }) {
    check_payload_extents(p, job.grid->nx(), job.grid->ny(), job.grid->nz());
  } else if constexpr (requires { job.grid->ny(); }) {
    check_payload_extents(p, job.grid->nx(), job.grid->ny(), 0);
  } else {
    check_payload_extents(p, job.grid->nx(), 0, 0);
  }
}

void check_lcs_job(const StencilProblem& p, const detail::LcsJob& job) {
  if (p.family != Family::kLcs) {
    throw Error(Errc::kBadWorkload,
                "Solver::run: an LCS payload cannot serve family " +
                    std::string(family_name(p.family)) + " (problem " +
                    p.signature() + ")",
                p.signature());
  }
  // checked_int, not static_cast: a 2^31-element sequence must raise, not
  // wrap into a bogus extent comparison.
  check_payload_extents(p, util::checked_int(job.a.size()),
                        util::checked_int(job.b.size()), 0);
}

}  // namespace

void validate_workload(const StencilProblem& p, const Workload& w) {
  std::visit(
      [&](const auto& job) {
        using Job = std::decay_t<decltype(job)>;
        if constexpr (std::is_same_v<Job, detail::LcsJob>) {
          check_lcs_job(p, job);
        } else {
          check_stencil_job(p, job);
        }
      },
      w.payload());
}

RunResult Solver::run(const Workload& w) const {
  validate_workload(prob_, w);
  RunResult out;
  out.plan = plan_;
  const auto t0 = std::chrono::steady_clock::now();
  std::visit(
      [&](const auto& job) {
        using Job = std::decay_t<decltype(job)>;
        if constexpr (std::is_same_v<Job, detail::LcsJob>) {
          exec_lcs(job, out);
        } else {
          assert(job.grid != nullptr &&
                 "validate_workload admitted a null grid");
          exec(job.coeffs, *job.grid);
        }
      },
      w.payload());
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace tvs::solver
