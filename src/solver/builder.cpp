#include "solver/builder.hpp"

#include <string>

#include "solver/error.hpp"

namespace tvs::solver {

ProblemBuilder::ProblemBuilder(Family f) {
  p_.family = f;
  // Resolves the family through the name table, so an out-of-range id
  // raises kBadFamily here instead of at build().
  (void)family_name(f);
}

ProblemBuilder& ProblemBuilder::extents(int nx) {
  p_.nx = nx;
  p_.ny = 0;
  p_.nz = 0;
  extent_arity_ = 1;
  return *this;
}

ProblemBuilder& ProblemBuilder::extents(int nx, int ny) {
  p_.nx = nx;
  p_.ny = ny;
  p_.nz = 0;
  extent_arity_ = 2;
  return *this;
}

ProblemBuilder& ProblemBuilder::extents(int nx, int ny, int nz) {
  p_.nx = nx;
  p_.ny = ny;
  p_.nz = nz;
  extent_arity_ = 3;
  return *this;
}

ProblemBuilder& ProblemBuilder::steps(long n) {
  p_.steps = n;
  return *this;
}

ProblemBuilder& ProblemBuilder::threads(int n) {
  p_.threads = n;
  return *this;
}

ProblemBuilder& ProblemBuilder::dtype(dispatch::DType dt) {
  p_.dtype = dt;
  return *this;
}

StencilProblem ProblemBuilder::build() const {
  const std::string fam(family_name(p_.family));
  const int dim = family_dim(p_.family);
  if (extent_arity_ != dim) {
    throw Error(Errc::kBadExtents,
                "ProblemBuilder(" + fam + "): extents() got " +
                    (extent_arity_ < 0 ? "no values"
                                       : std::to_string(extent_arity_) +
                                             " value(s)") +
                    " but this family is " + std::to_string(dim) +
                    "-dimensional");
  }
  const int ext[3] = {p_.nx, p_.ny, p_.nz};
  for (int d = 0; d < dim; ++d) {
    if (ext[d] <= 0) {
      throw Error(Errc::kBadExtents,
                  "ProblemBuilder(" + fam + "): extent " +
                      std::to_string(ext[d]) + " at dimension " +
                      std::to_string(d) + " must be positive");
    }
  }
  if (p_.steps < 0) {
    throw Error(Errc::kBadSteps, "ProblemBuilder(" + fam + "): steps " +
                                     std::to_string(p_.steps) +
                                     " must be >= 0");
  }
  if (p_.threads < 0) {
    throw Error(Errc::kBadThreads, "ProblemBuilder(" + fam + "): threads " +
                                       std::to_string(p_.threads) +
                                       " must be >= 0");
  }
  if (!family_supports_dtype(p_.family, p_.effective_dtype())) {
    throw Error(Errc::kUnsupportedDtype,
                "ProblemBuilder(" + fam + "): element type " +
                    std::string(dispatch::dtype_name(p_.dtype)) +
                    " is not supported by this family");
  }
  return p_;
}

}  // namespace tvs::solver
