// ProblemBuilder: the fluent, validating way to construct a
// StencilProblem.
//
//   StencilProblem p = ProblemBuilder(Family::kJacobi2D5)
//                          .extents(512, 512)
//                          .steps(100)
//                          .threads(4)
//                          .build();
//
// Unlike the positional problem_{1,2,3}d helpers (problem.hpp), the
// builder checks everything at build() time and throws tvs::solver::Error:
// the extents arity must match the family's dimensionality and every
// extent must be positive (Errc::kBadExtents), steps must be >= 0
// (kBadSteps), threads >= 0 (kBadThreads), and the element type must be
// one the family can run at (kUnsupportedDtype).  LCS problems read
// extents(|a|, |b|).
#pragma once

#include "dispatch/dtype.hpp"
#include "solver/problem.hpp"

namespace tvs::solver {

class ProblemBuilder {
 public:
  explicit ProblemBuilder(Family f);

  // Grid extents; pass exactly family_dim(f) values (LCS counts as 2:
  // |a| x |b|).  The arity and positivity are checked at build().
  ProblemBuilder& extents(int nx);
  ProblemBuilder& extents(int nx, int ny);
  ProblemBuilder& extents(int nx, int ny, int nz);

  // Time steps (Jacobi/Life) or sweeps (Gauss-Seidel); ignored by LCS.
  ProblemBuilder& steps(long n);

  // Worker threads for the tiled path; 0 (the default) keeps the serial
  // temporal path.
  ProblemBuilder& threads(int n);

  // Element type; kF64 default.  Life/LCS ignore it (fixed int32).
  ProblemBuilder& dtype(dispatch::DType dt);

  // Validates and emits the descriptor; throws Error on any violation.
  StencilProblem build() const;

 private:
  StencilProblem p_;
  // Number of extents the caller actually supplied (checked against
  // family_dim at build()); -1 until extents() is called.
  int extent_arity_ = -1;
};

}  // namespace tvs::solver
