// Workload: the type-erased payload behind the unified Solver front door.
//
// The facade used to expose one typed run() overload per (coefficient set,
// grid) pair — 16 entry points whose family/dtype/extent checks were
// repeated per overload.  A Workload erases the pair into one variant, so
//
//   Solver s(problem);
//   s.run(Workload(stencil::heat2d(0.2), u));       // synchronous
//   auto fut = s.submit(Workload(coeffs, grid));    // async, see serve/
//
// both route through ONE validation (family <-> payload alternative, dtype,
// extents — workload.cpp) and one kernel-routing switch, and the legacy
// typed overloads are now thin wrappers that build the same Workload.  The
// payload holds coefficients/rules BY VALUE (they are a few doubles, and
// callers routinely pass temporaries) and grids/spans BY REFERENCE: the
// caller's storage must outlive the run — for submit(), until the returned
// Future is ready.
//
// The parity-pair (PingPong) overloads stay typed: they are a tiled-path
// special case with different result placement, not a serving payload.
#pragma once

#include <cstdint>
#include <future>
#include <span>
#include <variant>
#include <vector>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "solver/plan.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::solver {

// Async results are delivered through std::future; the alias names the
// serving API's currency without inventing a new synchronization type.
template <class T>
using Future = std::future<T>;

// What one run produced.  Grid-payload workloads leave their result in the
// caller's grid (exactly like the typed run() overloads); the LCS payload
// returns its answer here.
struct RunResult {
  // The plan the run executed with (resolved through the plan cache).
  ExecutionPlan plan;
  // Wall-clock seconds of the kernel execution (excludes planning).
  double seconds = 0.0;
  // kLcs only: the DP answer.  lcs_row holds row nx of the DP table
  // (length ny + 1) when the serial row engine ran; the tiled wavefront
  // driver computes only the length and leaves the row empty.
  std::int32_t lcs_length = 0;
  std::vector<std::int32_t> lcs_row;
};

namespace detail {

// One (coefficient set, grid) payload; C is stored by value (small, often
// a temporary at the call site), the grid by pointer.
template <class C, class G>
struct StencilJob {
  C coeffs;
  G* grid;
};

struct LcsJob {
  std::span<const std::int32_t> a;
  std::span<const std::int32_t> b;
};

using WorkloadVariant = std::variant<
    StencilJob<stencil::C1D3, grid::Grid1D<double>>,
    StencilJob<stencil::C1D5, grid::Grid1D<double>>,
    StencilJob<stencil::C2D5, grid::Grid2D<double>>,
    StencilJob<stencil::C2D9, grid::Grid2D<double>>,
    StencilJob<stencil::C3D7, grid::Grid3D<double>>,
    StencilJob<stencil::C1D3f, grid::Grid1D<float>>,
    StencilJob<stencil::C1D5f, grid::Grid1D<float>>,
    StencilJob<stencil::C2D5f, grid::Grid2D<float>>,
    StencilJob<stencil::C2D9f, grid::Grid2D<float>>,
    StencilJob<stencil::C3D7f, grid::Grid3D<float>>,
    StencilJob<stencil::LifeRule, grid::Grid2D<std::int32_t>>, LcsJob>;

}  // namespace detail

class Workload {
 public:
  // Jacobi/Gauss-Seidel, double precision.
  Workload(const stencil::C1D3& c, grid::Grid1D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C1D5& c, grid::Grid1D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D5& c, grid::Grid2D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D9& c, grid::Grid2D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C3D7& c, grid::Grid3D<double>& u) : v_{wrap(c, u)} {}
  // Single precision.
  Workload(const stencil::C1D3f& c, grid::Grid1D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C1D5f& c, grid::Grid1D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D5f& c, grid::Grid2D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D9f& c, grid::Grid2D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C3D7f& c, grid::Grid3D<float>& u) : v_{wrap(c, u)} {}
  // Game of Life.
  Workload(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u)
      : v_{wrap(r, u)} {}
  // LCS over two int32 sequences.
  Workload(std::span<const std::int32_t> a, std::span<const std::int32_t> b)
      : v_{detail::LcsJob{a, b}} {}

  // True when the payload is the LCS alternative (whose result lives in
  // RunResult rather than a caller grid).
  bool is_lcs() const noexcept {
    return std::holds_alternative<detail::LcsJob>(v_);
  }

  const detail::WorkloadVariant& payload() const noexcept { return v_; }

 private:
  template <class C, class G>
  static detail::WorkloadVariant wrap(const C& c, G& g) {
    return detail::StencilJob<C, G>{c, &g};
  }

  detail::WorkloadVariant v_;
};

// The single family/dtype/extent validation both run(Workload) and
// submit(Workload) share: rejects a payload alternative the problem's
// family cannot consume (Errc::kBadWorkload / kBadFamily), an element-type
// mismatch (kUnsupportedDtype), and extents that disagree with the
// descriptor (kBadExtents).
void validate_workload(const StencilProblem& p, const Workload& w);

}  // namespace tvs::solver
