// Workload: the type-erased payload behind the unified Solver front door.
//
// The facade used to expose one typed run() overload per (coefficient set,
// grid) pair — 16 entry points whose family/dtype/extent checks were
// repeated per overload.  A Workload erases the pair into one variant, so
//
//   Solver s(problem);
//   s.run(Workload(stencil::heat2d(0.2), u));       // synchronous
//   auto fut = s.submit(Workload(coeffs, grid));    // async, see serve/
//
// both route through ONE validation (family <-> payload alternative, dtype,
// extents — workload.cpp) and one kernel-routing switch, and the legacy
// typed overloads are now thin wrappers that build the same Workload.
//
// ---- Lifetime contract ----------------------------------------------------
//
// The payload holds coefficients/rules BY VALUE (they are a few doubles,
// and callers routinely pass temporaries).  Grids and spans come in two
// flavours:
//
//   * Non-owning (the lvalue-reference / span constructors): the caller's
//     storage must outlive the run — for submit(), until the returned
//     Future is READY, not merely until submit() returns.  Destroying the
//     grid while the pool still runs the task is a use-after-free.
//   * Owning (the shared_ptr / rvalue-vector constructors): the Workload
//     keeps the storage alive itself, so a fire-and-forget submit() is
//     safe.  Callers who need the stencil result keep their own copy of
//     the shared_ptr and read the grid once the future is ready.
//
// owns() reports which flavour a Workload is; serve-layer code debug-
// asserts the grid pointer is non-null before touching it.
//
// ---- Scheduling hints -----------------------------------------------------
//
// priority() and deadline_micros() are admission hints for the serving
// executor (serve/executor.hpp): kInteractive workloads — and workloads
// whose deadline is set — land in the workers' interactive band, which is
// drained before batch work on both pop and steal.  They are hints only:
// run() ignores them, and results never depend on them.
//
// The parity-pair (PingPong) overloads stay typed: they are a tiled-path
// special case with different result placement, not a serving payload.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <utility>
#include <variant>
#include <vector>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "solver/plan.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"

namespace tvs::solver {

// Async results are delivered through std::future; the alias names the
// serving API's currency without inventing a new synchronization type.
template <class T>
using Future = std::future<T>;

// What one run produced.  Grid-payload workloads leave their result in the
// caller's grid (exactly like the typed run() overloads); the LCS payload
// returns its answer here.
struct RunResult {
  // The plan the run executed with (resolved through the plan cache).
  ExecutionPlan plan;
  // Wall-clock seconds of the kernel execution (excludes planning).
  double seconds = 0.0;
  // kLcs only: the DP answer.  lcs_row holds row nx of the DP table
  // (length ny + 1) when the serial row engine ran; the tiled wavefront
  // driver computes only the length and leaves the row empty.
  std::int32_t lcs_length = 0;
  std::vector<std::int32_t> lcs_row;
};

// Admission class for the serving executor's two-band worker deques.
enum class Priority {
  kBatch = 0,        // default: throughput work, drained after interactive
  kInteractive = 1,  // latency-sensitive: drained first on pop and steal
};

namespace detail {

// One (coefficient set, grid) payload; C is stored by value (small, often
// a temporary at the call site), the grid by pointer.
template <class C, class G>
struct StencilJob {
  C coeffs;
  G* grid;
};

struct LcsJob {
  std::span<const std::int32_t> a;
  std::span<const std::int32_t> b;
};

// Backing storage for the owning LCS constructor; spans point into it.
struct LcsOwned {
  std::vector<std::int32_t> a;
  std::vector<std::int32_t> b;
};

using WorkloadVariant = std::variant<
    StencilJob<stencil::C1D3, grid::Grid1D<double>>,
    StencilJob<stencil::C1D5, grid::Grid1D<double>>,
    StencilJob<stencil::C2D5, grid::Grid2D<double>>,
    StencilJob<stencil::C2D9, grid::Grid2D<double>>,
    StencilJob<stencil::C3D7, grid::Grid3D<double>>,
    StencilJob<stencil::C1D3f, grid::Grid1D<float>>,
    StencilJob<stencil::C1D5f, grid::Grid1D<float>>,
    StencilJob<stencil::C2D5f, grid::Grid2D<float>>,
    StencilJob<stencil::C2D9f, grid::Grid2D<float>>,
    StencilJob<stencil::C3D7f, grid::Grid3D<float>>,
    StencilJob<stencil::LifeRule, grid::Grid2D<std::int32_t>>, LcsJob>;

}  // namespace detail

class Workload {
 public:
  // ---- non-owning constructors (caller's storage outlives the run) -------
  // Jacobi/Gauss-Seidel, double precision.
  Workload(const stencil::C1D3& c, grid::Grid1D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C1D5& c, grid::Grid1D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D5& c, grid::Grid2D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D9& c, grid::Grid2D<double>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C3D7& c, grid::Grid3D<double>& u) : v_{wrap(c, u)} {}
  // Single precision.
  Workload(const stencil::C1D3f& c, grid::Grid1D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C1D5f& c, grid::Grid1D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D5f& c, grid::Grid2D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C2D9f& c, grid::Grid2D<float>& u) : v_{wrap(c, u)} {}
  Workload(const stencil::C3D7f& c, grid::Grid3D<float>& u) : v_{wrap(c, u)} {}
  // Game of Life.
  Workload(const stencil::LifeRule& r, grid::Grid2D<std::int32_t>& u)
      : v_{wrap(r, u)} {}
  // LCS over two int32 sequences.
  Workload(std::span<const std::int32_t> a, std::span<const std::int32_t> b)
      : v_{detail::LcsJob{a, b}} {}

  // ---- owning constructors (the Workload keeps the storage alive) --------
  // The shared_ptr is co-owned: keep a copy at the call site to read the
  // result after the future is ready.  A null pointer is rejected at
  // validation (Errc::kBadWorkload), not here.
  template <class C, class G>
  Workload(const C& c, std::shared_ptr<G> u)
      : v_{detail::StencilJob<C, G>{c, u.get()}}, owner_{std::move(u)} {}
  // Owning LCS: rvalue-only, so existing lvalue-vector call sites keep
  // binding the (cheap, non-owning) span constructor instead of silently
  // copying their sequences.
  Workload(std::vector<std::int32_t>&& a, std::vector<std::int32_t>&& b) {
    auto owned =
        std::make_shared<detail::LcsOwned>(std::move(a), std::move(b));
    v_ = detail::LcsJob{owned->a, owned->b};
    owner_ = std::move(owned);
  }

  // ---- scheduling hints ---------------------------------------------------
  // Fluent: Workload(c, u).priority(Priority::kInteractive).
  Workload& priority(Priority p) & {
    priority_ = p;
    return *this;
  }
  Workload&& priority(Priority p) && {
    priority_ = p;
    return std::move(*this);
  }
  Priority priority() const noexcept { return priority_; }

  // A soft completion target in microseconds from submit (0 = none).
  // Setting any deadline also routes the workload interactively.
  Workload& deadline_micros(long us) & {
    deadline_micros_ = us;
    return *this;
  }
  Workload&& deadline_micros(long us) && {
    deadline_micros_ = us;
    return std::move(*this);
  }
  long deadline_micros() const noexcept { return deadline_micros_; }

  // True when this workload carries (co-owns) its grid/sequence storage.
  bool owns() const noexcept { return owner_ != nullptr; }

  // True when the payload is the LCS alternative (whose result lives in
  // RunResult rather than a caller grid).
  bool is_lcs() const noexcept {
    return std::holds_alternative<detail::LcsJob>(v_);
  }

  const detail::WorkloadVariant& payload() const noexcept { return v_; }

 private:
  template <class C, class G>
  static detail::WorkloadVariant wrap(const C& c, G& g) {
    return detail::StencilJob<C, G>{c, &g};
  }

  detail::WorkloadVariant v_{detail::LcsJob{}};
  // Keeps owning payload storage alive across submit(); null when the
  // caller's storage backs the payload (the reference/span constructors).
  std::shared_ptr<void> owner_;
  Priority priority_ = Priority::kBatch;
  long deadline_micros_ = 0;
};

// The single family/dtype/extent validation both run(Workload) and
// submit(Workload) share: rejects a payload alternative the problem's
// family cannot consume (Errc::kBadWorkload / kBadFamily), an element-type
// mismatch (kUnsupportedDtype), extents that disagree with the descriptor
// (kBadExtents), and a null grid pointer in an owning payload
// (kBadWorkload).
void validate_workload(const StencilProblem& p, const Workload& w);

}  // namespace tvs::solver
