// The solver's error taxonomy: every rejection the facade can issue —
// unknown family, extents that disagree with the descriptor, a malformed
// TVS_PLAN spec, an unsupported element type, an illegal stride — throws
// one class, tvs::solver::Error, carrying a machine-checkable code and the
// signature of the problem it was raised for.
//
// Error derives std::invalid_argument so every pre-taxonomy call site
// (EXPECT_THROW(..., std::invalid_argument), catch blocks, the tuner's
// candidate filter) keeps working unchanged; new code can catch Error and
// switch on code() instead of string-matching what().  The two
// environment-shaped failures (backend not compiled in / not executable on
// this CPU) share the taxonomy under kBackendUnavailable, so they moved
// from std::runtime_error to the same base — nothing in the tree caught
// them as runtime_error specifically.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace tvs::solver {

enum class Errc : int {
  kBadFamily = 0,        // unknown family name/id, or a family/overload
                         // mismatch on a typed entry point
  kBadExtents,           // grid/span extents disagree with the descriptor,
                         // or a builder was given the wrong arity
  kBadSteps,             // negative step/sweep count
  kBadThreads,           // negative thread request
  kBadPlanSpec,          // malformed TVS_PLAN clause
  kUnsupportedDtype,     // family cannot run at the requested element type,
                         // or a typed overload got the wrong-precision grid
  kBadStride,            // §3.2 stride legality / ring capacity violation
  kBadVl,                // no engine registered at the pinned vector length
  kBadPath,              // plan path the family/overload cannot serve
  kBadVariant,           // variant=re outside the Jacobi serial engines
  kBackendUnavailable,   // backend not compiled in or not executable here
  kBadWorkload,          // a Workload payload the problem cannot run
};

// "bad-family", "bad-plan-spec", ... (stable, for logs and tests).
std::string_view errc_name(Errc code);

class Error : public std::invalid_argument {
 public:
  Error(Errc code, const std::string& what, std::string signature = "")
      : std::invalid_argument(what),
        code_(code),
        signature_(std::move(signature)) {}

  Errc code() const noexcept { return code_; }
  // signature() of the StencilProblem the error was raised for; empty when
  // the failure precedes a problem (e.g. parsing a family name).
  const std::string& problem_signature() const noexcept { return signature_; }

 private:
  Errc code_;
  std::string signature_;
};

}  // namespace tvs::solver
