// Solver kernel routing: registry-resolved temporal engines on the serial
// path, diamond / parallelogram / wavefront drivers on the tiled path.
// Stride legality was enforced once at plan validation and the payload was
// checked once by validate_workload (workload.cpp), so the kernels are
// invoked directly (not through the re-validating tv_*_run wrappers).
#include "solver/solver.hpp"

#include <string>

#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "solver/error.hpp"
#include "tiling/diamond.hpp"
#include "tiling/diamond2d.hpp"
#include "tiling/diamond3d.hpp"
#include "tiling/lcs_wavefront.hpp"
#include "tiling/parallelogram.hpp"
#include "tiling/parallelogram2d.hpp"
#include "tiling/pingpong_convert.hpp"
#include "tv/tv_lcs.hpp"  // kLcsRowPad
#include "util/omp_compat.hpp"

namespace tvs::solver {

namespace {

template <class Fn>
Fn* resolve(const ExecutionPlan& plan, std::string_view id) {
  dispatch::KernelRegistry& reg = dispatch::KernelRegistry::instance();
  return plan.vl > 0 ? reg.get_at<Fn>(id, plan.backend, plan.vl)
                     : reg.get_at<Fn>(id, plan.backend);
}

// Dtype-pinned resolution for the serial temporal path (vl = 0 means the
// backend's native width for the dtype).
template <class Fn>
Fn* resolve_dt(const ExecutionPlan& plan, std::string_view id,
               dispatch::DType dt) {
  dispatch::KernelRegistry& reg = dispatch::KernelRegistry::instance();
  return reg.get_at<Fn>(id, plan.backend,
                        plan.vl > 0 ? plan.vl : dispatch::kAnyVl, dt);
}

// Serial Jacobi id selection: variant=re swaps in the
// redundancy-eliminated engine (same Fn signature, bit-identical result);
// validate_plan already rejected re plans for families without one.
std::string_view variant_id(const ExecutionPlan& plan, std::string_view tv_id,
                            std::string_view re_id) {
  return plan.variant == Variant::kRe ? re_id : tv_id;
}

// Family/extent guards for the parity-pair overloads, which do not route
// through validate_workload (they are a tiled-path special case, not a
// Workload payload).
void check_family(const StencilProblem& p, Family ok, const char* overload) {
  if (p.family == ok) return;
  throw Error(Errc::kBadFamily,
              "Solver::" + std::string(overload) + ": problem family " +
                  std::string(family_name(p.family)) +
                  " does not match this overload (expects " +
                  std::string(family_name(ok)) + ")",
              p.signature());
}

void check_extents(const StencilProblem& p, int nx, int ny, int nz) {
  const int dim = family_dim(p.family);
  if (nx != p.nx || (dim >= 2 && ny != p.ny) || (dim >= 3 && nz != p.nz)) {
    throw Error(Errc::kBadExtents,
                "Solver::run: grid extents disagree with the StencilProblem "
                "descriptor (problem " +
                    p.signature() + ")",
                p.signature());
  }
}

// Applies the problem's thread request to the tiled drivers for the
// duration of one run() (no-op when threads == 0 or OpenMP is absent).
// Under an external stage executor the pool supplies the parallelism, so
// OpenMP is pinned to one thread — any omp region a driver still reaches
// (the scalar residual loops) runs serially on the executing worker.
class ThreadScope {
 public:
  explicit ThreadScope(int threads)
      : active_(threads > 0), saved_(omp_get_max_threads()) {
    if (active_) omp_set_num_threads(threads);
  }
  ~ThreadScope() {
    if (active_) omp_set_num_threads(saved_);
  }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  bool active_;
  int saved_;
};

// Grid <-> parity-pair conversion comes from tiling/pingpong_convert.hpp
// (shared with tiling_dispatch.cpp); the Solver's only difference is that
// the run callback resolves the kernel at the *planned* backend.
using tiling::with_pingpong1d;
using tiling::with_pingpong2d;
using tiling::with_pingpong3d;

[[noreturn]] void throw_needs_tiled(const StencilProblem& p) {
  throw Error(Errc::kBadPath,
              "Solver::run: the parity-pair overload requires a tiled plan "
              "(problem " +
                  p.signature() + " planned path=tv); pass a Grid instead",
              p.signature());
}

}  // namespace

Solver::Solver(const StencilProblem& p, PlanMode mode)
    : prob_(p), plan_(plan_for(p, mode)) {}

Solver::Solver(const StencilProblem& p, const ExecutionPlan& plan)
    : prob_(p), plan_(plan) {
  validate_plan(prob_, plan_);
}

// ---- typed compatibility wrappers ------------------------------------------
// Each forwards through the Workload pair so validation happens in exactly
// one place (validate_workload).

void Solver::run(const stencil::C1D3& c, grid::Grid1D<double>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C1D5& c, grid::Grid1D<double>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C2D5& c, grid::Grid2D<double>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C2D9& c, grid::Grid2D<double>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C3D7& c, grid::Grid3D<double>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C1D3f& c, grid::Grid1D<float>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C1D5f& c, grid::Grid1D<float>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C2D5f& c, grid::Grid2D<float>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C2D9f& c, grid::Grid2D<float>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::C3D7f& c, grid::Grid3D<float>& u) const {
  run(Workload(c, u));
}
void Solver::run(const stencil::LifeRule& r,
                 grid::Grid2D<std::int32_t>& u) const {
  run(Workload(r, u));
}

// ---- 1D double families ----------------------------------------------------

void Solver::exec(const stencil::C1D3& c, grid::Grid1D<double>& u) const {
  if (prob_.family == Family::kGs1D3) {
    if (plan_.path == Path::kTiledParallel) {
      const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
      tiling::Parallelogram1DOptions opt{plan_.tile_w, plan_.tile_h,
                                         plan_.stride, true};
      opt.exec = stage_exec_;
      resolve<dispatch::ParallelogramGs1D3Fn>(
          plan_, dispatch::kParallelogramGs1D3)(c, u, prob_.steps, opt);
    } else {
      resolve<dispatch::TvGs1D3Fn>(plan_, dispatch::kTvGs1D3)(
          c, u, prob_.steps, plan_.stride);
    }
    return;
  }
  if (plan_.path == Path::kTiledParallel) {
    with_pingpong1d(u, prob_.steps, [&](auto& pp) { run(c, pp); });
  } else {
    resolve<dispatch::TvJacobi1D3Fn>(
        plan_, variant_id(plan_, dispatch::kTvJacobi1D3,
                          dispatch::kTvJacobi1D3Re))(c, u, prob_.steps,
                                                     plan_.stride);
  }
}

void Solver::exec(const stencil::C1D5& c, grid::Grid1D<double>& u) const {
  resolve<dispatch::TvJacobi1D5Fn>(
      plan_,
      variant_id(plan_, dispatch::kTvJacobi1D5, dispatch::kTvJacobi1D5Re))(
      c, u, prob_.steps, plan_.stride);
}

void Solver::run(const stencil::C1D3& c,
                 grid::PingPong<grid::Grid1D<double>>& pp) const {
  check_family(prob_, Family::kJacobi1D3, "run(C1D3, PingPong)");
  check_extents(prob_, pp.even().nx(), 0, 0);
  if (plan_.path != Path::kTiledParallel) throw_needs_tiled(prob_);
  const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
  tiling::Diamond1DOptions opt{plan_.tile_w, plan_.tile_h, plan_.stride, true};
  opt.exec = stage_exec_;
  resolve<dispatch::DiamondJacobi1D3Fn>(plan_, dispatch::kDiamondJacobi1D3)(
      c, pp, prob_.steps, opt);
}

// ---- 2D double families ----------------------------------------------------

void Solver::exec(const stencil::C2D5& c, grid::Grid2D<double>& u) const {
  if (prob_.family == Family::kGs2D5) {
    if (plan_.path == Path::kTiledParallel) {
      const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
      tiling::ParallelogramNDOptions opt{plan_.tile_w, plan_.tile_h,
                                         plan_.stride, true};
      opt.exec = stage_exec_;
      resolve<dispatch::ParallelogramGs2D5Fn>(
          plan_, dispatch::kParallelogramGs2D5)(c, u, prob_.steps, opt);
    } else {
      resolve<dispatch::TvGs2D5Fn>(plan_, dispatch::kTvGs2D5)(
          c, u, prob_.steps, plan_.stride);
    }
    return;
  }
  if (plan_.path == Path::kTiledParallel) {
    with_pingpong2d(u, prob_.steps, [&](auto& pp) { run(c, pp); });
  } else {
    resolve<dispatch::TvJacobi2D5Fn>(
        plan_, variant_id(plan_, dispatch::kTvJacobi2D5,
                          dispatch::kTvJacobi2D5Re))(c, u, prob_.steps,
                                                     plan_.stride);
  }
}

void Solver::exec(const stencil::C2D9& c, grid::Grid2D<double>& u) const {
  if (plan_.path == Path::kTiledParallel) {
    with_pingpong2d(u, prob_.steps, [&](auto& pp) { run(c, pp); });
  } else {
    resolve<dispatch::TvJacobi2D9Fn>(
        plan_, variant_id(plan_, dispatch::kTvJacobi2D9,
                          dispatch::kTvJacobi2D9Re))(c, u, prob_.steps,
                                                     plan_.stride);
  }
}

void Solver::run(const stencil::C2D5& c,
                 grid::PingPong<grid::Grid2D<double>>& pp) const {
  check_family(prob_, Family::kJacobi2D5, "run(C2D5, PingPong)");
  check_extents(prob_, pp.even().nx(), pp.even().ny(), 0);
  if (plan_.path != Path::kTiledParallel) throw_needs_tiled(prob_);
  const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
  tiling::Diamond2DOptions opt{plan_.tile_w, plan_.tile_h, plan_.stride, true};
  opt.exec = stage_exec_;
  resolve<dispatch::DiamondJacobi2D5Fn>(plan_, dispatch::kDiamondJacobi2D5)(
      c, pp, prob_.steps, opt);
}

void Solver::run(const stencil::C2D9& c,
                 grid::PingPong<grid::Grid2D<double>>& pp) const {
  check_family(prob_, Family::kJacobi2D9, "run(C2D9, PingPong)");
  check_extents(prob_, pp.even().nx(), pp.even().ny(), 0);
  if (plan_.path != Path::kTiledParallel) throw_needs_tiled(prob_);
  const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
  tiling::Diamond2DOptions opt{plan_.tile_w, plan_.tile_h, plan_.stride, true};
  opt.exec = stage_exec_;
  resolve<dispatch::DiamondJacobi2D9Fn>(plan_, dispatch::kDiamondJacobi2D9)(
      c, pp, prob_.steps, opt);
}

// ---- 3D double families ----------------------------------------------------

void Solver::exec(const stencil::C3D7& c, grid::Grid3D<double>& u) const {
  if (prob_.family == Family::kGs3D7) {
    if (plan_.path == Path::kTiledParallel) {
      const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
      tiling::ParallelogramNDOptions opt{plan_.tile_w, plan_.tile_h,
                                         plan_.stride, true};
      opt.exec = stage_exec_;
      resolve<dispatch::ParallelogramGs3D7Fn>(
          plan_, dispatch::kParallelogramGs3D7)(c, u, prob_.steps, opt);
    } else {
      resolve<dispatch::TvGs3D7Fn>(plan_, dispatch::kTvGs3D7)(
          c, u, prob_.steps, plan_.stride);
    }
    return;
  }
  if (plan_.path == Path::kTiledParallel) {
    with_pingpong3d(u, prob_.steps, [&](auto& pp) { run(c, pp); });
  } else {
    resolve<dispatch::TvJacobi3D7Fn>(
        plan_, variant_id(plan_, dispatch::kTvJacobi3D7,
                          dispatch::kTvJacobi3D7Re))(c, u, prob_.steps,
                                                     plan_.stride);
  }
}

void Solver::run(const stencil::C3D7& c,
                 grid::PingPong<grid::Grid3D<double>>& pp) const {
  check_family(prob_, Family::kJacobi3D7, "run(C3D7, PingPong)");
  check_extents(prob_, pp.even().nx(), pp.even().ny(), pp.even().nz());
  if (plan_.path != Path::kTiledParallel) throw_needs_tiled(prob_);
  const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
  tiling::Diamond3DOptions opt{plan_.tile_w, plan_.tile_h, plan_.stride, true};
  opt.exec = stage_exec_;
  resolve<dispatch::DiamondJacobi3D7Fn>(plan_, dispatch::kDiamondJacobi3D7)(
      c, pp, prob_.steps, opt);
}

// ---- Single-precision FP families (serial temporal path only) --------------

void Solver::exec(const stencil::C1D3f& c, grid::Grid1D<float>& u) const {
  if (prob_.family == Family::kGs1D3) {
    resolve_dt<dispatch::TvGs1D3F32Fn>(plan_, dispatch::kTvGs1D3,
                                       dispatch::DType::kF32)(
        c, u, prob_.steps, plan_.stride);
    return;
  }
  resolve_dt<dispatch::TvJacobi1D3F32Fn>(
      plan_,
      variant_id(plan_, dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D3Re),
      dispatch::DType::kF32)(c, u, prob_.steps, plan_.stride);
}

void Solver::exec(const stencil::C1D5f& c, grid::Grid1D<float>& u) const {
  resolve_dt<dispatch::TvJacobi1D5F32Fn>(
      plan_,
      variant_id(plan_, dispatch::kTvJacobi1D5, dispatch::kTvJacobi1D5Re),
      dispatch::DType::kF32)(c, u, prob_.steps, plan_.stride);
}

void Solver::exec(const stencil::C2D5f& c, grid::Grid2D<float>& u) const {
  if (prob_.family == Family::kGs2D5) {
    resolve_dt<dispatch::TvGs2D5F32Fn>(plan_, dispatch::kTvGs2D5,
                                       dispatch::DType::kF32)(
        c, u, prob_.steps, plan_.stride);
    return;
  }
  resolve_dt<dispatch::TvJacobi2D5F32Fn>(
      plan_,
      variant_id(plan_, dispatch::kTvJacobi2D5, dispatch::kTvJacobi2D5Re),
      dispatch::DType::kF32)(c, u, prob_.steps, plan_.stride);
}

void Solver::exec(const stencil::C2D9f& c, grid::Grid2D<float>& u) const {
  resolve_dt<dispatch::TvJacobi2D9F32Fn>(
      plan_,
      variant_id(plan_, dispatch::kTvJacobi2D9, dispatch::kTvJacobi2D9Re),
      dispatch::DType::kF32)(c, u, prob_.steps, plan_.stride);
}

void Solver::exec(const stencil::C3D7f& c, grid::Grid3D<float>& u) const {
  if (prob_.family == Family::kGs3D7) {
    resolve_dt<dispatch::TvGs3D7F32Fn>(plan_, dispatch::kTvGs3D7,
                                       dispatch::DType::kF32)(
        c, u, prob_.steps, plan_.stride);
    return;
  }
  resolve_dt<dispatch::TvJacobi3D7F32Fn>(
      plan_,
      variant_id(plan_, dispatch::kTvJacobi3D7, dispatch::kTvJacobi3D7Re),
      dispatch::DType::kF32)(c, u, prob_.steps, plan_.stride);
}

// ---- Life ------------------------------------------------------------------

void Solver::exec(const stencil::LifeRule& r,
                  grid::Grid2D<std::int32_t>& u) const {
  if (plan_.path == Path::kTiledParallel) {
    with_pingpong2d(u, prob_.steps, [&](auto& pp) { run(r, pp); });
  } else {
    resolve<dispatch::TvLifeFn>(plan_, dispatch::kTvLife)(r, u, prob_.steps,
                                                          plan_.stride);
  }
}

void Solver::run(const stencil::LifeRule& r,
                 grid::PingPong<grid::Grid2D<std::int32_t>>& pp) const {
  check_family(prob_, Family::kLife, "run(LifeRule, PingPong)");
  check_extents(prob_, pp.even().nx(), pp.even().ny(), 0);
  if (plan_.path != Path::kTiledParallel) throw_needs_tiled(prob_);
  const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
  tiling::Diamond2DOptions opt{plan_.tile_w, plan_.tile_h, plan_.stride, true};
  opt.exec = stage_exec_;
  resolve<dispatch::DiamondLifeFn>(plan_, dispatch::kDiamondLife)(
      r, pp, prob_.steps, opt);
}

// ---- LCS -------------------------------------------------------------------

std::vector<std::int32_t> Solver::exec_lcs_rows(
    std::span<const std::int32_t> a, std::span<const std::int32_t> b) const {
  const std::size_t nb = b.size();
  std::vector<std::int32_t> row(nb + 1 + tv::kLcsRowPad, 0);
  if (nb > 0) {
    resolve<dispatch::TvLcsRowsFn>(plan_, dispatch::kTvLcsRows)(a, b,
                                                                row.data());
  }
  row.resize(nb + 1);
  return row;
}

void Solver::exec_lcs(const detail::LcsJob& job, RunResult& out) const {
  if (plan_.path == Path::kTiledParallel) {
    const ThreadScope scope(stage_exec_ != nullptr ? 1 : prob_.threads);
    tiling::LcsWavefrontOptions opt{plan_.tile_w, plan_.tile_h, true};
    opt.exec = stage_exec_;
    out.lcs_length = resolve<dispatch::LcsWavefrontFn>(
        plan_, dispatch::kLcsWavefront)(job.a, job.b, opt);
    return;
  }
  out.lcs_row = exec_lcs_rows(job.a, job.b);
  out.lcs_length = out.lcs_row.back();
}

std::vector<std::int32_t> Solver::lcs_row(
    std::span<const std::int32_t> a, std::span<const std::int32_t> b) const {
  validate_workload(prob_, Workload(a, b));
  // Always the serial row engine: the DP row is this entry point's product,
  // whatever path the plan picked for lcs().
  return exec_lcs_rows(a, b);
}

std::int32_t Solver::lcs(std::span<const std::int32_t> a,
                         std::span<const std::int32_t> b) const {
  return run(Workload(a, b)).lcs_length;
}

}  // namespace tvs::solver
