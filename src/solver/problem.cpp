#include "solver/problem.hpp"

#include "solver/error.hpp"

namespace tvs::solver {

namespace {

struct FamilyRow {
  Family family;
  std::string_view name;
  int dim;
};

constexpr FamilyRow kFamilies[kFamilyCount] = {
    {Family::kJacobi1D3, "jacobi1d3", 1}, {Family::kJacobi1D5, "jacobi1d5", 1},
    {Family::kJacobi2D5, "jacobi2d5", 2}, {Family::kJacobi2D9, "jacobi2d9", 2},
    {Family::kJacobi3D7, "jacobi3d7", 3}, {Family::kGs1D3, "gs1d3", 1},
    {Family::kGs2D5, "gs2d5", 2},         {Family::kGs3D7, "gs3d7", 3},
    {Family::kLife, "life", 2},           {Family::kLcs, "lcs", 2},
};

const FamilyRow& row(Family f) {
  for (const FamilyRow& r : kFamilies)
    if (r.family == f) return r;
  throw Error(Errc::kBadFamily, "unknown stencil family id " +
                                    std::to_string(static_cast<int>(f)));
}

}  // namespace

std::string_view family_name(Family f) { return row(f).name; }

Family parse_family(std::string_view name) {
  for (const FamilyRow& r : kFamilies)
    if (r.name == name) return r.family;
  std::string valid;
  for (const FamilyRow& r : kFamilies) {
    if (!valid.empty()) valid += ", ";
    valid += r.name;
  }
  throw Error(Errc::kBadFamily,
              "\"" + std::string(name) +
                  "\" is not a stencil family (valid: " + valid + ")");
}

int family_dim(Family f) { return row(f).dim; }

bool family_supports_dtype(Family f, dispatch::DType dt) {
  if (f == Family::kLife || f == Family::kLcs)
    return dt == dispatch::DType::kI32;
  return dt == dispatch::DType::kF64 || dt == dispatch::DType::kF32;
}

std::vector<stencil::Dep> family_deps(Family f) {
  switch (f) {
    case Family::kJacobi1D3:
      return stencil::jacobi1d_deps(1);
    case Family::kJacobi1D5:
      return stencil::jacobi1d_deps(2);
    case Family::kJacobi2D5:
    case Family::kJacobi2D9:
    case Family::kLife:
      return stencil::jacobi2d_deps(1);
    case Family::kJacobi3D7:
      return stencil::jacobi3d_deps(1);
    case Family::kGs1D3:
    case Family::kGs2D5:
    case Family::kGs3D7:
      return stencil::gauss_seidel_deps(1);
    case Family::kLcs:
      return stencil::lcs_deps();
  }
  throw Error(Errc::kBadFamily, "unknown stencil family id " +
                                    std::to_string(static_cast<int>(f)));
}

dispatch::DType StencilProblem::effective_dtype() const {
  if (family == Family::kLife || family == Family::kLcs)
    return dispatch::DType::kI32;
  return dtype;
}

std::string StencilProblem::signature() const {
  std::string s(family_name(family));
  s += ":nx=" + std::to_string(nx);
  if (family_dim(family) >= 2) s += ":ny=" + std::to_string(ny);
  if (family_dim(family) >= 3) s += ":nz=" + std::to_string(nz);
  s += ":steps=" + std::to_string(steps);
  s += ":threads=" + std::to_string(threads);
  if (effective_dtype() == dispatch::DType::kF32) s += ":dtype=f32";
  return s;
}

StencilProblem problem_1d(Family f, int nx, long steps, int threads) {
  return {f, nx, 0, 0, steps, threads};
}

StencilProblem problem_2d(Family f, int nx, int ny, long steps, int threads) {
  return {f, nx, ny, 0, steps, threads};
}

StencilProblem problem_3d(Family f, int nx, int ny, int nz, long steps,
                          int threads) {
  return {f, nx, ny, nz, steps, threads};
}

StencilProblem problem_1d(Family f, dispatch::DType dt, int nx, long steps,
                          int threads) {
  return {f, nx, 0, 0, steps, threads, dt};
}

StencilProblem problem_2d(Family f, dispatch::DType dt, int nx, int ny,
                          long steps, int threads) {
  return {f, nx, ny, 0, steps, threads, dt};
}

StencilProblem problem_3d(Family f, dispatch::DType dt, int nx, int ny, int nz,
                          long steps, int threads) {
  return {f, nx, ny, nz, steps, threads, dt};
}

}  // namespace tvs::solver
