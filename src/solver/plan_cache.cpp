#include "solver/plan_cache.hpp"

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "serve/plan_store.hpp"
#include "util/env.hpp"

namespace tvs::solver {

namespace {

struct Cache {
  std::mutex mu;
  std::map<std::string, ExecutionPlan> plans;
  PlanCacheStats stats;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

ExecutionPlan plan_for(const StencilProblem& p, PlanMode mode) {
  // TVS_PLAN pins knobs for this lookup only; it never touches the cache.
  if (const char* spec = util::env_cstr("TVS_PLAN");
      spec != nullptr && spec[0] != '\0') {
    ExecutionPlan plan = apply_plan_spec(heuristic_plan(p), spec);
    validate_plan(p, plan);
    Cache& c = cache();
    const std::lock_guard<std::mutex> lock(c.mu);
    ++c.stats.pinned;
    return plan;
  }

  if (mode == PlanMode::kAuto) {
    const char* tune = util::env_cstr("TVS_TUNE");
    mode = (tune != nullptr && tune == std::string_view("1"))
               ? PlanMode::kTuned
               : PlanMode::kHeuristic;
  }

  const std::string key = p.signature() + (mode == PlanMode::kTuned
                                               ? "|tuned"
                                               : "|heuristic");
  Cache& c = cache();
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    const auto it = c.plans.find(key);
    if (it != c.plans.end()) {
      ++c.stats.hits;
      return it->second;
    }
  }

  // Plan outside the lock: tuning runs real kernels and may take a while.
  // Tuned mode consults the persistent store first (TVS_PLAN_STORE): a
  // valid entry for (host features, signature) warm-starts the process and
  // skips the tuner entirely; heuristic plans are free to recompute and are
  // never stored.
  std::optional<ExecutionPlan> stored;
  if (mode == PlanMode::kTuned) {
    stored = serve::plan_store_lookup(p, "tuned");
  }
  ExecutionPlan plan = stored.has_value() ? *stored
                       : mode == PlanMode::kTuned ? tune_plan(p)
                                                  : heuristic_plan(p);
  validate_plan(p, plan);
  if (mode == PlanMode::kTuned && !stored.has_value()) {
    serve::plan_store_save(p, "tuned", plan);
  }

  // Re-check under the lock: when several threads race the first lookup of
  // a signature, exactly one planner result is stored and counted as the
  // miss; the losers adopt the cached plan and count as hits, so every
  // concurrent caller runs the SAME plan (deterministic even in tuned
  // mode, where candidates are timing-dependent).
  const std::lock_guard<std::mutex> lock(c.mu);
  const auto [it, inserted] = c.plans.emplace(key, plan);
  if (inserted) {
    ++c.stats.misses;
  } else {
    ++c.stats.hits;
  }
  return it->second;
}

PlanCacheStats plan_cache_stats() {
  Cache& c = cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  return c.stats;
}

void plan_cache_clear() {
  Cache& c = cache();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.plans.clear();
  c.stats = PlanCacheStats{};
}

}  // namespace tvs::solver
