#include "dispatch/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

// Per-backend registration entry points, one per compiled backend library
// (dispatch/register_backend.cpp).  Which ones exist is a link-time fact,
// communicated by the build system via the TVS_HAVE_*_BACKEND definitions
// on this translation unit.
extern "C" void tvs_register_backend_scalar(tvs::dispatch::KernelRegistry*);
#if defined(TVS_HAVE_AVX2_BACKEND)
extern "C" void tvs_register_backend_avx2(tvs::dispatch::KernelRegistry*);
#endif
#if defined(TVS_HAVE_AVX512_BACKEND)
extern "C" void tvs_register_backend_avx512(tvs::dispatch::KernelRegistry*);
#endif

namespace tvs::dispatch {

KernelRegistry& KernelRegistry::instance() {
  // Thread-safe one-time build.  Registering a backend only stores function
  // pointers; no backend instruction executes until a kernel is called, so
  // it is safe to register e.g. the AVX-512 variants on a CPU without them.
  static KernelRegistry reg = [] {
    KernelRegistry r;
    tvs_register_backend_scalar(&r);
#if defined(TVS_HAVE_AVX2_BACKEND)
    tvs_register_backend_avx2(&r);
#endif
#if defined(TVS_HAVE_AVX512_BACKEND)
    tvs_register_backend_avx512(&r);
#endif
    return r;
  }();
  return reg;
}

void KernelRegistry::add(std::string_view id, Backend b, int vl, AnyFn fn) {
  entries_.push_back(Entry{id, b, vl, fn});
  backend_seen_[static_cast<int>(b)] = true;
}

AnyFn KernelRegistry::find(std::string_view id, Backend b) const {
  // First match = the backend's native registration (registrars register
  // the native engine before any width-pinned extras).
  for (const Entry& e : entries_) {
    if (e.backend == b && e.id == id) return e.fn;
  }
  return nullptr;
}

AnyFn KernelRegistry::find(std::string_view id, Backend b, int vl) const {
  for (const Entry& e : entries_) {
    if (e.backend == b && e.vl == vl && e.id == id) return e.fn;
  }
  return nullptr;
}

void KernelRegistry::throw_unknown(std::string_view id, Backend b,
                                   int vl) const {
  // A failed lookup during a refactor usually means a registrar was not
  // updated; list what IS registered so the missing piece is obvious — the
  // id's available widths when only the pinned width is missing, the full
  // id list when the id itself is unknown.
  std::string msg = "tvs: no kernel registered under id \"" + std::string(id) +
                    "\" at or below backend " + std::string(backend_name(b));
  if (vl != kAnyVl) msg += " with vl=" + std::to_string(vl);
  const std::vector<int> widths = registered_widths(id, b);
  if (!widths.empty()) {
    msg += ". Registered widths for this id:";
    for (int w : widths) msg += ' ' + std::to_string(w);
  } else {
    msg += ". Registered ids:";
    for (std::string_view known : kernel_ids()) {
      msg += ' ';
      msg += known;
    }
  }
  throw std::runtime_error(msg);
}

Backend KernelRegistry::resolved_backend_at(std::string_view id,
                                            Backend b) const {
  for (int l = static_cast<int>(b); l >= 0; --l) {
    if (find(id, static_cast<Backend>(l)) != nullptr)
      return static_cast<Backend>(l);
  }
  throw_unknown(id, b, kAnyVl);
}

Backend KernelRegistry::resolved_backend_at(std::string_view id, Backend b,
                                            int vl) const {
  for (int l = static_cast<int>(b); l >= 0; --l) {
    if (find(id, static_cast<Backend>(l), vl) != nullptr)
      return static_cast<Backend>(l);
  }
  throw_unknown(id, b, vl);
}

AnyFn KernelRegistry::resolve_at(std::string_view id, Backend b) const {
  return find(id, resolved_backend_at(id, b));
}

AnyFn KernelRegistry::resolve_at(std::string_view id, Backend b,
                                 int vl) const {
  return find(id, resolved_backend_at(id, b, vl), vl);
}

AnyFn KernelRegistry::resolve(std::string_view id) const {
  return resolve_at(id, selected_backend());
}

Backend KernelRegistry::resolved_backend(std::string_view id) const {
  return resolved_backend_at(id, selected_backend());
}

bool KernelRegistry::has_backend(Backend b) const {
  return backend_seen_[static_cast<int>(b)];
}

std::vector<std::string_view> KernelRegistry::kernel_ids() const {
  std::vector<std::string_view> ids;
  ids.reserve(entries_.size());
  for (const Entry& e : entries_) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<int> KernelRegistry::registered_widths(std::string_view id,
                                                   Backend b) const {
  std::vector<int> widths;
  for (const Entry& e : entries_) {
    if (e.id == id && e.vl != kAnyVl &&
        static_cast<int>(e.backend) <= static_cast<int>(b))
      widths.push_back(e.vl);
  }
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  return widths;
}

}  // namespace tvs::dispatch
