#include "dispatch/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

// Per-backend registration entry points, one per compiled backend library
// (dispatch/register_backend.cpp).  Which ones exist is a link-time fact,
// communicated by the build system via the TVS_HAVE_*_BACKEND definitions
// on this translation unit.
extern "C" void tvs_register_backend_scalar(tvs::dispatch::KernelRegistry*);
#if defined(TVS_HAVE_AVX2_BACKEND)
extern "C" void tvs_register_backend_avx2(tvs::dispatch::KernelRegistry*);
#endif
#if defined(TVS_HAVE_AVX512_BACKEND)
extern "C" void tvs_register_backend_avx512(tvs::dispatch::KernelRegistry*);
#endif

namespace tvs::dispatch {

KernelRegistry& KernelRegistry::instance() {
  // Thread-safe one-time build.  Registering a backend only stores function
  // pointers; no backend instruction executes until a kernel is called, so
  // it is safe to register e.g. the AVX-512 variants on a CPU without them.
  static KernelRegistry reg = [] {
    KernelRegistry r;
    tvs_register_backend_scalar(&r);
#if defined(TVS_HAVE_AVX2_BACKEND)
    tvs_register_backend_avx2(&r);
#endif
#if defined(TVS_HAVE_AVX512_BACKEND)
    tvs_register_backend_avx512(&r);
#endif
    return r;
  }();
  return reg;
}

void KernelRegistry::add(std::string_view id, Backend b, int vl, DType dt,
                         AnyFn fn) {
  entries_.push_back(Entry{id, b, vl, dt, fn});
  backend_seen_[static_cast<int>(b)] = true;
}

DType KernelRegistry::default_dtype(std::string_view id) const {
  // The id's first registration overall fixes its default dtype (the
  // scalar registrar runs first and registers the classic engine before
  // any dtype extras).
  for (const Entry& e : entries_) {
    if (e.id == id) return e.dtype;
  }
  throw_unknown(id, Backend::kScalar, kAnyVl, DType::kF64);
}

DType KernelRegistry::default_dtype_or_f64(std::string_view id) const {
  // Non-throwing variant for error-message construction: a dtype-less
  // lookup that fails should report the dtype it actually searched (the
  // id's default), falling back to f64 only for wholly unknown ids.
  for (const Entry& e : entries_) {
    if (e.id == id) return e.dtype;
  }
  return DType::kF64;
}

AnyFn KernelRegistry::find(std::string_view id, Backend b) const {
  // First match = the backend's native registration of the id's default
  // dtype (registrars register the native engine before any pinned or
  // reduced-precision extras).
  for (const Entry& e : entries_) {
    if (e.backend == b && e.id == id) return e.fn;
  }
  return nullptr;
}

AnyFn KernelRegistry::find(std::string_view id, Backend b, int vl) const {
  // Width-pinned pre-dtype lookup: restricted to the id's default dtype so
  // a float engine can never satisfy (and be cast to) a double-signature
  // request.
  const Entry* def = nullptr;
  for (const Entry& e : entries_) {
    if (e.id != id) continue;
    if (def == nullptr) def = &e;  // first registration = default dtype
    if (e.backend == b && e.vl == vl && e.dtype == def->dtype) return e.fn;
  }
  return nullptr;
}

AnyFn KernelRegistry::find(std::string_view id, Backend b, int vl,
                           DType dt) const {
  for (const Entry& e : entries_) {
    if (e.backend == b && e.id == id && e.dtype == dt &&
        (vl == kAnyVl || e.vl == vl))
      return e.fn;
  }
  return nullptr;
}

void KernelRegistry::throw_unknown(std::string_view id, Backend b, int vl,
                                   DType dt) const {
  // A failed lookup during a refactor usually means a registrar was not
  // updated; list what IS registered so the missing piece is obvious — the
  // id's available widths/dtypes when only the pin is missing, the full
  // id list when the id itself is unknown.
  std::string msg = "tvs: no kernel registered under id \"" + std::string(id) +
                    "\" at or below backend " + std::string(backend_name(b));
  if (vl != kAnyVl) msg += " with vl=" + std::to_string(vl);
  msg += " dtype=" + std::string(dtype_name(dt));
  bool known = false;
  for (const Entry& e : entries_) {
    if (e.id == id) {
      known = true;
      break;
    }
  }
  if (known) {
    msg += ". Registered (dtype: widths) for this id:";
    for (const DType d : registered_dtypes(id, b)) {
      msg += ' ';
      msg += dtype_name(d);
      msg += ':';
      bool first = true;
      for (int w : registered_widths(id, b, d)) {
        if (!first) msg += ',';
        msg += std::to_string(w);
        first = false;
      }
    }
  } else {
    msg += ". Registered ids:";
    for (std::string_view other : kernel_ids()) {
      msg += ' ';
      msg += other;
    }
  }
  throw std::runtime_error(msg);
}

Backend KernelRegistry::resolved_backend_at(std::string_view id,
                                            Backend b) const {
  for (int l = static_cast<int>(b); l >= 0; --l) {
    if (find(id, static_cast<Backend>(l)) != nullptr)
      return static_cast<Backend>(l);
  }
  throw_unknown(id, b, kAnyVl, default_dtype_or_f64(id));
}

Backend KernelRegistry::resolved_backend_at(std::string_view id, Backend b,
                                            int vl) const {
  for (int l = static_cast<int>(b); l >= 0; --l) {
    if (find(id, static_cast<Backend>(l), vl) != nullptr)
      return static_cast<Backend>(l);
  }
  throw_unknown(id, b, vl, default_dtype_or_f64(id));
}

Backend KernelRegistry::resolved_backend_at(std::string_view id, Backend b,
                                            int vl, DType dt) const {
  for (int l = static_cast<int>(b); l >= 0; --l) {
    if (find(id, static_cast<Backend>(l), vl, dt) != nullptr)
      return static_cast<Backend>(l);
  }
  throw_unknown(id, b, vl, dt);
}

AnyFn KernelRegistry::resolve_at(std::string_view id, Backend b) const {
  return find(id, resolved_backend_at(id, b));
}

AnyFn KernelRegistry::resolve_at(std::string_view id, Backend b,
                                 int vl) const {
  return find(id, resolved_backend_at(id, b, vl), vl);
}

AnyFn KernelRegistry::resolve_at(std::string_view id, Backend b, int vl,
                                 DType dt) const {
  return find(id, resolved_backend_at(id, b, vl, dt), vl, dt);
}

AnyFn KernelRegistry::resolve(std::string_view id) const {
  return resolve_at(id, selected_backend());
}

Backend KernelRegistry::resolved_backend(std::string_view id) const {
  return resolved_backend_at(id, selected_backend());
}

bool KernelRegistry::has_backend(Backend b) const {
  return backend_seen_[static_cast<int>(b)];
}

std::vector<std::string_view> KernelRegistry::kernel_ids() const {
  std::vector<std::string_view> ids;
  ids.reserve(entries_.size());
  for (const Entry& e : entries_) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<int> KernelRegistry::registered_widths(std::string_view id,
                                                   Backend b) const {
  return registered_widths(id, b, default_dtype(id));
}

std::vector<int> KernelRegistry::registered_widths(std::string_view id,
                                                   Backend b, DType dt) const {
  std::vector<int> widths;
  for (const Entry& e : entries_) {
    if (e.id == id && e.vl != kAnyVl && e.dtype == dt &&
        static_cast<int>(e.backend) <= static_cast<int>(b))
      widths.push_back(e.vl);
  }
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  return widths;
}

std::vector<DType> KernelRegistry::registered_dtypes(std::string_view id,
                                                     Backend b) const {
  std::vector<DType> dts;
  for (const Entry& e : entries_) {
    if (e.id == id && static_cast<int>(e.backend) <= static_cast<int>(b))
      dts.push_back(e.dtype);
  }
  std::sort(dts.begin(), dts.end());
  dts.erase(std::unique(dts.begin(), dts.end()), dts.end());
  return dts;
}

}  // namespace tvs::dispatch
