#include "dispatch/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

// Per-backend registration entry points, one per compiled backend library
// (dispatch/register_backend.cpp).  Which ones exist is a link-time fact,
// communicated by the build system via the TVS_HAVE_*_BACKEND definitions
// on this translation unit.
extern "C" void tvs_register_backend_scalar(tvs::dispatch::KernelRegistry*);
#if defined(TVS_HAVE_AVX2_BACKEND)
extern "C" void tvs_register_backend_avx2(tvs::dispatch::KernelRegistry*);
#endif
#if defined(TVS_HAVE_AVX512_BACKEND)
extern "C" void tvs_register_backend_avx512(tvs::dispatch::KernelRegistry*);
#endif

namespace tvs::dispatch {

KernelRegistry& KernelRegistry::instance() {
  // Thread-safe one-time build.  Registering a backend only stores function
  // pointers; no backend instruction executes until a kernel is called, so
  // it is safe to register e.g. the AVX-512 variants on a CPU without them.
  static KernelRegistry reg = [] {
    KernelRegistry r;
    tvs_register_backend_scalar(&r);
#if defined(TVS_HAVE_AVX2_BACKEND)
    tvs_register_backend_avx2(&r);
#endif
#if defined(TVS_HAVE_AVX512_BACKEND)
    tvs_register_backend_avx512(&r);
#endif
    return r;
  }();
  return reg;
}

void KernelRegistry::add(std::string_view id, Backend b, AnyFn fn) {
  entries_.push_back(Entry{id, b, fn});
  backend_seen_[static_cast<int>(b)] = true;
}

AnyFn KernelRegistry::find(std::string_view id, Backend b) const {
  for (const Entry& e : entries_) {
    if (e.backend == b && e.id == id) return e.fn;
  }
  return nullptr;
}

Backend KernelRegistry::resolved_backend_at(std::string_view id,
                                            Backend b) const {
  for (int l = static_cast<int>(b); l >= 0; --l) {
    if (find(id, static_cast<Backend>(l)) != nullptr)
      return static_cast<Backend>(l);
  }
  throw std::runtime_error("tvs: no kernel registered under id \"" +
                           std::string(id) + "\" at or below backend " +
                           std::string(backend_name(b)));
}

AnyFn KernelRegistry::resolve_at(std::string_view id, Backend b) const {
  return find(id, resolved_backend_at(id, b));
}

AnyFn KernelRegistry::resolve(std::string_view id) const {
  return resolve_at(id, selected_backend());
}

Backend KernelRegistry::resolved_backend(std::string_view id) const {
  return resolved_backend_at(id, selected_backend());
}

bool KernelRegistry::has_backend(Backend b) const {
  return backend_seen_[static_cast<int>(b)];
}

std::vector<std::string_view> KernelRegistry::kernel_ids() const {
  std::vector<std::string_view> ids;
  ids.reserve(entries_.size());
  for (const Entry& e : entries_) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace tvs::dispatch
