// The dispatch surface: one id + one signature alias per registered kernel.
//
// This header is the single place where a kernel id and its function
// signature are tied together.  A backend TU registers `&impl` through a
// `static_cast<FnAlias*>` (backend_variant.hpp), and the public dispatcher
// looks the id up with `get<FnAlias>(id)`, so a signature mismatch between
// producer and consumer is a compile error on the producer side.
//
// Ids follow the public entry-point names without the `_run` suffix where
// one exists (`tv_jacobi1d3`, `diamond_jacobi2d5`, ...).  Function-pointer
// types cannot carry default arguments; defaults live in the public
// headers.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "grid/pingpong.hpp"
#include "stencil/coefficients.hpp"
#include "stencil/kernels.hpp"
#include "tiling/diamond.hpp"
#include "tiling/diamond2d.hpp"
#include "tiling/diamond3d.hpp"
#include "tiling/lcs_wavefront.hpp"
#include "tiling/parallelogram.hpp"
#include "tiling/parallelogram2d.hpp"

namespace tvs::dispatch {

// ---- tv/: temporal-vectorization kernels ----------------------------------
using TvJacobi1D3Fn = void(const stencil::C1D3&, grid::Grid1D<double>&, long,
                           int);
using TvJacobi1D5Fn = void(const stencil::C1D5&, grid::Grid1D<double>&, long,
                           int);
using TvJacobi2D5Fn = void(const stencil::C2D5&, grid::Grid2D<double>&, long,
                           int);
using TvJacobi2D9Fn = void(const stencil::C2D9&, grid::Grid2D<double>&, long,
                           int);
using TvJacobi3D7Fn = void(const stencil::C3D7&, grid::Grid3D<double>&, long,
                           int);
using TvGs1D3Fn = void(const stencil::C1D3&, grid::Grid1D<double>&, long, int);
using TvGs2D5Fn = void(const stencil::C2D5&, grid::Grid2D<double>&, long, int);
using TvGs3D7Fn = void(const stencil::C3D7&, grid::Grid3D<double>&, long, int);
// Single-precision variants of the temporal engines: same ids, registered
// under DType::kF32 (the registry's dtype axis keeps the signatures
// straight).
using TvJacobi1D3F32Fn = void(const stencil::C1D3f&, grid::Grid1D<float>&,
                              long, int);
using TvJacobi1D5F32Fn = void(const stencil::C1D5f&, grid::Grid1D<float>&,
                              long, int);
using TvJacobi2D5F32Fn = void(const stencil::C2D5f&, grid::Grid2D<float>&,
                              long, int);
using TvJacobi2D9F32Fn = void(const stencil::C2D9f&, grid::Grid2D<float>&,
                              long, int);
using TvJacobi3D7F32Fn = void(const stencil::C3D7f&, grid::Grid3D<float>&,
                              long, int);
using TvGs1D3F32Fn = void(const stencil::C1D3f&, grid::Grid1D<float>&, long,
                          int);
using TvGs2D5F32Fn = void(const stencil::C2D5f&, grid::Grid2D<float>&, long,
                          int);
using TvGs3D7F32Fn = void(const stencil::C3D7f&, grid::Grid3D<float>&, long,
                          int);
using TvLifeFn = void(const stencil::LifeRule&, grid::Grid2D<std::int32_t>&,
                      long, int);
// Fills row[0..|b|] with the final DP row; row must have
// |b|+1+tv::kLcsRowPad slots (padding for the grouped loads of the widest
// engine).
using TvLcsRowsFn = void(std::span<const std::int32_t>,
                         std::span<const std::int32_t>, std::int32_t*);

inline constexpr std::string_view kTvJacobi1D3 = "tv_jacobi1d3";
inline constexpr std::string_view kTvJacobi1D5 = "tv_jacobi1d5";
inline constexpr std::string_view kTvJacobi2D5 = "tv_jacobi2d5";
inline constexpr std::string_view kTvJacobi2D9 = "tv_jacobi2d9";
inline constexpr std::string_view kTvJacobi3D7 = "tv_jacobi3d7";
// Redundancy-eliminated engine variants (tv*_re_impl.hpp): one-shuffle
// reorganization + register-carried window operands, bit-identical results.
// Same signatures as the baseline ids — callers switch ids, not types.
inline constexpr std::string_view kTvJacobi1D3Re = "tv_jacobi1d3_re";
inline constexpr std::string_view kTvJacobi1D5Re = "tv_jacobi1d5_re";
inline constexpr std::string_view kTvJacobi2D5Re = "tv_jacobi2d5_re";
inline constexpr std::string_view kTvJacobi2D9Re = "tv_jacobi2d9_re";
inline constexpr std::string_view kTvJacobi3D7Re = "tv_jacobi3d7_re";
inline constexpr std::string_view kTvGs1D3 = "tv_gs1d3";
inline constexpr std::string_view kTvGs2D5 = "tv_gs2d5";
inline constexpr std::string_view kTvGs3D7 = "tv_gs3d7";
inline constexpr std::string_view kTvLife = "tv_life";
inline constexpr std::string_view kTvLcsRows = "tv_lcs_rows";

// ---- baseline/: spatial-vectorization comparison points --------------------
using BlJacobi1DFn = void(const stencil::C1D3&, grid::Grid1D<double>&, long);
using BlJacobi1D5Fn = void(const stencil::C1D5&, grid::Grid1D<double>&, long);
using BlJacobi2D5Fn = void(const stencil::C2D5&, grid::Grid2D<double>&, long);
using BlJacobi2D9Fn = void(const stencil::C2D9&, grid::Grid2D<double>&, long);
using BlJacobi3D7Fn = void(const stencil::C3D7&, grid::Grid3D<double>&, long);
using BlLifeFn = void(const stencil::LifeRule&, grid::Grid2D<std::int32_t>&,
                      long);

inline constexpr std::string_view kAutovecJacobi1D3 = "autovec_jacobi1d3";
inline constexpr std::string_view kAutovecJacobi1D5 = "autovec_jacobi1d5";
inline constexpr std::string_view kAutovecJacobi2D5 = "autovec_jacobi2d5";
inline constexpr std::string_view kAutovecJacobi2D9 = "autovec_jacobi2d9";
inline constexpr std::string_view kAutovecJacobi3D7 = "autovec_jacobi3d7";
inline constexpr std::string_view kAutovecLife = "autovec_life";
inline constexpr std::string_view kParAutovecJacobi1D3 = "par_autovec_jacobi1d3";
inline constexpr std::string_view kParAutovecJacobi2D5 = "par_autovec_jacobi2d5";
inline constexpr std::string_view kParAutovecJacobi2D9 = "par_autovec_jacobi2d9";
inline constexpr std::string_view kParAutovecJacobi3D7 = "par_autovec_jacobi3d7";
inline constexpr std::string_view kParAutovecLife = "par_autovec_life";
inline constexpr std::string_view kMultiloadJacobi1D3 = "multiload_jacobi1d3";
inline constexpr std::string_view kReorgJacobi1D3 = "reorg_jacobi1d3";
inline constexpr std::string_view kDltJacobi1D3 = "dlt_jacobi1d3";
inline constexpr std::string_view kMultiloadJacobi2D5 = "multiload_jacobi2d5";
inline constexpr std::string_view kMultiloadJacobi2D9 = "multiload_jacobi2d9";
inline constexpr std::string_view kMultiloadJacobi3D7 = "multiload_jacobi3d7";
inline constexpr std::string_view kMultiloadLife = "multiload_life";

// ---- tiling/: parallel tile schedules --------------------------------------
using DiamondJacobi1D3Fn = void(const stencil::C1D3&,
                                grid::PingPong<grid::Grid1D<double>>&, long,
                                const tiling::Diamond1DOptions&);
using DiamondJacobi2D5Fn = void(const stencil::C2D5&,
                                grid::PingPong<grid::Grid2D<double>>&, long,
                                const tiling::Diamond2DOptions&);
using DiamondJacobi2D9Fn = void(const stencil::C2D9&,
                                grid::PingPong<grid::Grid2D<double>>&, long,
                                const tiling::Diamond2DOptions&);
using DiamondLifeFn = void(const stencil::LifeRule&,
                           grid::PingPong<grid::Grid2D<std::int32_t>>&, long,
                           const tiling::Diamond2DOptions&);
using DiamondJacobi3D7Fn = void(const stencil::C3D7&,
                                grid::PingPong<grid::Grid3D<double>>&, long,
                                const tiling::Diamond3DOptions&);
using ParallelogramGs1D3Fn = void(const stencil::C1D3&, grid::Grid1D<double>&,
                                  long, const tiling::Parallelogram1DOptions&);
using ParallelogramGs2D5Fn = void(const stencil::C2D5&, grid::Grid2D<double>&,
                                  long, const tiling::ParallelogramNDOptions&);
using ParallelogramGs3D7Fn = void(const stencil::C3D7&, grid::Grid3D<double>&,
                                  long, const tiling::ParallelogramNDOptions&);
using LcsWavefrontFn = std::int32_t(std::span<const std::int32_t>,
                                    std::span<const std::int32_t>,
                                    const tiling::LcsWavefrontOptions&);

inline constexpr std::string_view kDiamondJacobi1D3 = "diamond_jacobi1d3";
inline constexpr std::string_view kDiamondJacobi2D5 = "diamond_jacobi2d5";
inline constexpr std::string_view kDiamondJacobi2D9 = "diamond_jacobi2d9";
inline constexpr std::string_view kDiamondLife = "diamond_life";
inline constexpr std::string_view kDiamondJacobi3D7 = "diamond_jacobi3d7";
inline constexpr std::string_view kParallelogramGs1D3 = "parallelogram_gs1d3";
inline constexpr std::string_view kParallelogramGs2D5 = "parallelogram_gs2d5";
inline constexpr std::string_view kParallelogramGs3D7 = "parallelogram_gs3d7";
inline constexpr std::string_view kLcsWavefront = "lcs_wavefront";

}  // namespace tvs::dispatch
