#include "dispatch/backend.hpp"

#include <stdexcept>
#include <string>

#include "dispatch/registry.hpp"
#include "util/env.hpp"

namespace tvs::dispatch {

std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

bool cpu_supports(Backend b) {
  if (b == Backend::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults libgcc/compiler-rt's cached CPUID model,
  // which also checks XCR0, so OS save-state support is included.
  if (b == Backend::kAvx2)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (b == Backend::kAvx512) return __builtin_cpu_supports("avx512f");
#endif
  return false;
}

Backend best_available() {
  const KernelRegistry& reg = KernelRegistry::instance();
  for (Backend b : {Backend::kAvx512, Backend::kAvx2}) {
    if (cpu_supports(b) && reg.has_backend(b)) return b;
  }
  return Backend::kScalar;
}

Backend resolve_backend(std::optional<std::string_view> force) {
  if (!force.has_value() || force->empty()) return best_available();
  const std::optional<Backend> b = parse_backend(*force);
  if (!b.has_value()) {
    throw std::runtime_error(
        "TVS_FORCE_BACKEND=\"" + std::string(*force) +
        "\" is not a known backend (valid: scalar, avx2, avx512)");
  }
  if (!KernelRegistry::instance().has_backend(*b)) {
    throw std::runtime_error("TVS_FORCE_BACKEND=" + std::string(*force) +
                             " requested, but that backend was not compiled "
                             "into this binary");
  }
  if (!cpu_supports(*b)) {
    throw std::runtime_error("TVS_FORCE_BACKEND=" + std::string(*force) +
                             " requested, but this CPU cannot execute it");
  }
  return *b;
}

Backend selected_backend() {
  // Magic-static: resolved once, at the first dispatched call.  If the
  // forced value is invalid the exception propagates and resolution is
  // retried on the next call (the static stays uninitialized).
  static const Backend selected = [] {
    const char* force = util::env_cstr("TVS_FORCE_BACKEND");
    return resolve_backend(force == nullptr
                               ? std::nullopt
                               : std::optional<std::string_view>(force));
  }();
  return selected;
}

}  // namespace tvs::dispatch
