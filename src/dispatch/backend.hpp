// Runtime SIMD backend identification and selection.
//
// Since the multi-backend refactor, one binary carries the scalar, AVX2 and
// AVX-512 variants of every kernel (see registry.hpp); nothing about the
// vector ISA is decided at configure time any more.  This header names the
// backends and answers the two runtime questions:
//
//   * what can this CPU execute?           cpu_supports() / best_available()
//   * what did the operator ask for?       selected_backend(), honouring the
//                                          TVS_FORCE_BACKEND env override
//
// TVS_FORCE_BACKEND contract (ops + testing):
//   unset or ""   -> best_available()
//   "scalar"      -> the portable ScalarVec kernels
//   "avx2"        -> the AVX2 kernels (error if the CPU lacks AVX2+FMA or
//                    the backend was not compiled in)
//   "avx512"      -> the AVX-512 kernels (same availability rule)
//   anything else -> std::runtime_error naming the valid values
//
// The environment is read once, at the first dispatched call; changing it
// afterwards has no effect on a running process.
#pragma once

#include <optional>
#include <string_view>

namespace tvs::dispatch {

enum class Backend : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kBackendCount = 3;

// "scalar" / "avx2" / "avx512".
std::string_view backend_name(Backend b);

// Inverse of backend_name; nullopt for unknown strings.
std::optional<Backend> parse_backend(std::string_view name);

// True when the host CPU (and OS) can execute the backend's instruction
// set.  kScalar is always true; AVX2 requires AVX2+FMA, AVX-512 requires
// AVX-512F.
bool cpu_supports(Backend b);

// Highest backend that is both compiled into this binary (has registered
// kernels) and executable on this CPU.  Never less than kScalar.
Backend best_available();

// The backend dispatched calls use: TVS_FORCE_BACKEND if set, otherwise
// best_available().  Cached after the first call.  Throws std::runtime_error
// on an unknown or unavailable forced value.
Backend selected_backend();

// Uncached core of selected_backend(), exposed so tests can exercise the
// force semantics without mutating the process environment: resolves as if
// TVS_FORCE_BACKEND held *force* (nullopt / empty string = unset).
Backend resolve_backend(std::optional<std::string_view> force);

}  // namespace tvs::dispatch
