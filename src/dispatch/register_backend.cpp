// Per-backend registration entry point, compiled once per backend library.
//
// This TU turns the archive's passive object files into a reachable graph:
// common code references tvs_register_backend_<id> (registry.cpp), the
// linker pulls this object from the backend archive, and its calls to the
// per-module registrars pull every kernel object of the backend in turn.
// No static-initializer registration, no --whole-archive.
//
// Module sets per backend level:
//   scalar (0)  every kernel module, including tv_wide (ScalarVec<double,8>)
//   avx2   (1)  every kernel module except tv_wide — the vl = 8 engines have
//               no 8-wide double type under AVX2, so those ids fall back
//   avx512 (2)  only tv_wide: the AVX-512 backend serves the 2D/3D Jacobi
//               kernels with the natural double x 8 shape; everything else
//               falls back to avx2 per the registry's downward resolution
#include "dispatch/backend_variant.hpp"

#define TVS_DECLARE_MODULE(mod) \
  extern "C" void TVS_KREG_NAME(mod)(tvs::dispatch::KernelRegistry*)

#if TVS_BACKEND_LEVEL != 2
TVS_DECLARE_MODULE(tv1d);
TVS_DECLARE_MODULE(tv2d);
TVS_DECLARE_MODULE(tv3d);
TVS_DECLARE_MODULE(tv_gs1d);
TVS_DECLARE_MODULE(tv_gs2d);
TVS_DECLARE_MODULE(tv_gs3d);
TVS_DECLARE_MODULE(tv_lcs);
TVS_DECLARE_MODULE(tv_life);
TVS_DECLARE_MODULE(autovec1d);
TVS_DECLARE_MODULE(autovec2d);
TVS_DECLARE_MODULE(autovec3d);
TVS_DECLARE_MODULE(multiload1d);
TVS_DECLARE_MODULE(reorg1d);
TVS_DECLARE_MODULE(dlt1d);
TVS_DECLARE_MODULE(spatial2d);
TVS_DECLARE_MODULE(spatial3d);
TVS_DECLARE_MODULE(diamond1d);
TVS_DECLARE_MODULE(diamond2d);
TVS_DECLARE_MODULE(diamond3d);
TVS_DECLARE_MODULE(parallelogram1d);
TVS_DECLARE_MODULE(parallelogram2d);
TVS_DECLARE_MODULE(lcs_wavefront);
#endif
#if TVS_BACKEND_LEVEL != 1
TVS_DECLARE_MODULE(tv_wide);
#endif

extern "C" __attribute__((visibility("default"))) void TVS_BACKEND_ENTRY_NAME(
    tvs::dispatch::KernelRegistry* r) {
#if TVS_BACKEND_LEVEL != 2
  TVS_KREG_NAME(tv1d)(r);
  TVS_KREG_NAME(tv2d)(r);
  TVS_KREG_NAME(tv3d)(r);
  TVS_KREG_NAME(tv_gs1d)(r);
  TVS_KREG_NAME(tv_gs2d)(r);
  TVS_KREG_NAME(tv_gs3d)(r);
  TVS_KREG_NAME(tv_lcs)(r);
  TVS_KREG_NAME(tv_life)(r);
  TVS_KREG_NAME(autovec1d)(r);
  TVS_KREG_NAME(autovec2d)(r);
  TVS_KREG_NAME(autovec3d)(r);
  TVS_KREG_NAME(multiload1d)(r);
  TVS_KREG_NAME(reorg1d)(r);
  TVS_KREG_NAME(dlt1d)(r);
  TVS_KREG_NAME(spatial2d)(r);
  TVS_KREG_NAME(spatial3d)(r);
  TVS_KREG_NAME(diamond1d)(r);
  TVS_KREG_NAME(diamond2d)(r);
  TVS_KREG_NAME(diamond3d)(r);
  TVS_KREG_NAME(parallelogram1d)(r);
  TVS_KREG_NAME(parallelogram2d)(r);
  TVS_KREG_NAME(lcs_wavefront)(r);
#endif
#if TVS_BACKEND_LEVEL != 1
  TVS_KREG_NAME(tv_wide)(r);
#endif
}
