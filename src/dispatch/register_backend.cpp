// Per-backend registration entry point, compiled once per backend library.
//
// This TU turns the archive's passive object files into a reachable graph:
// common code references tvs_register_backend_<id> (registry.cpp), the
// linker pulls this object from the backend archive, and its calls to the
// per-module registrars pull every kernel object of the backend in turn.
// No static-initializer registration, no --whole-archive.
//
// Every backend level compiles the same module set: since the temporal
// engines became lane-count generic, each backend simply instantiates them
// at its native width (BackendVec in backend_variant.hpp) — there is no
// wide-kernel carve-out any more, and the avx512 backend registers every
// kernel id itself instead of falling back to avx2.
#include "dispatch/backend_variant.hpp"

#define TVS_DECLARE_MODULE(mod) \
  extern "C" void TVS_KREG_NAME(mod)(tvs::dispatch::KernelRegistry*)

TVS_DECLARE_MODULE(tv1d);
TVS_DECLARE_MODULE(tv2d);
TVS_DECLARE_MODULE(tv3d);
TVS_DECLARE_MODULE(tv1d_re);
TVS_DECLARE_MODULE(tv2d_re);
TVS_DECLARE_MODULE(tv3d_re);
TVS_DECLARE_MODULE(tv_gs1d);
TVS_DECLARE_MODULE(tv_gs2d);
TVS_DECLARE_MODULE(tv_gs3d);
TVS_DECLARE_MODULE(tv_lcs);
TVS_DECLARE_MODULE(tv_life);
TVS_DECLARE_MODULE(autovec1d);
TVS_DECLARE_MODULE(autovec2d);
TVS_DECLARE_MODULE(autovec3d);
TVS_DECLARE_MODULE(multiload1d);
TVS_DECLARE_MODULE(reorg1d);
TVS_DECLARE_MODULE(dlt1d);
TVS_DECLARE_MODULE(spatial2d);
TVS_DECLARE_MODULE(spatial3d);
TVS_DECLARE_MODULE(diamond1d);
TVS_DECLARE_MODULE(diamond2d);
TVS_DECLARE_MODULE(diamond3d);
TVS_DECLARE_MODULE(parallelogram1d);
TVS_DECLARE_MODULE(parallelogram2d);
TVS_DECLARE_MODULE(lcs_wavefront);

extern "C" __attribute__((visibility("default"))) void TVS_BACKEND_ENTRY_NAME(
    tvs::dispatch::KernelRegistry* r) {
  TVS_KREG_NAME(tv1d)(r);
  TVS_KREG_NAME(tv2d)(r);
  TVS_KREG_NAME(tv3d)(r);
  TVS_KREG_NAME(tv1d_re)(r);
  TVS_KREG_NAME(tv2d_re)(r);
  TVS_KREG_NAME(tv3d_re)(r);
  TVS_KREG_NAME(tv_gs1d)(r);
  TVS_KREG_NAME(tv_gs2d)(r);
  TVS_KREG_NAME(tv_gs3d)(r);
  TVS_KREG_NAME(tv_lcs)(r);
  TVS_KREG_NAME(tv_life)(r);
  TVS_KREG_NAME(autovec1d)(r);
  TVS_KREG_NAME(autovec2d)(r);
  TVS_KREG_NAME(autovec3d)(r);
  TVS_KREG_NAME(multiload1d)(r);
  TVS_KREG_NAME(reorg1d)(r);
  TVS_KREG_NAME(dlt1d)(r);
  TVS_KREG_NAME(spatial2d)(r);
  TVS_KREG_NAME(spatial3d)(r);
  TVS_KREG_NAME(diamond1d)(r);
  TVS_KREG_NAME(diamond2d)(r);
  TVS_KREG_NAME(diamond3d)(r);
  TVS_KREG_NAME(parallelogram1d)(r);
  TVS_KREG_NAME(parallelogram2d)(r);
  TVS_KREG_NAME(lcs_wavefront)(r);
}
