// Scaffolding for per-backend kernel translation units.
//
// Every kernel TU in tv/, baseline/ and tiling/ is compiled once per SIMD
// backend, with that backend's instruction-set flags and the definitions
//
//   TVS_BACKEND_BUILD   (marks a backend compilation)
//   TVS_BACKEND_ID      scalar | avx2 | avx512   (a plain token)
//   TVS_BACKEND_LEVEL   0      | 1    | 2
//
// set by src/CMakeLists.txt.  Inside such a TU `simd::NativeVec<T, N>`
// resolves per the TU's own flags, so the same source yields the ScalarVec,
// AVX2 or AVX-512 instantiation of each kernel.
//
// ODR discipline — how three compilations of one function coexist in one
// binary without any backend's code leaking into another:
//   * every definition in a kernel TU lives in an anonymous namespace
//     (internal linkage, no cross-TU symbols);
//   * the single external symbol per TU is the extern "C" registrar
//     declared with TVS_BACKEND_REGISTRAR(module), whose name embeds the
//     backend id (e.g. tvs_kreg_avx2_tv1d) and which only stores function
//     pointers into the KernelRegistry;
//   * remaining weak template instantiations on shared types (std::vector,
//     grids) are compiled with -fvisibility=hidden and localized post-build
//     (objcopy --localize-hidden), so the linker can never satisfy a
//     common-code reference with backend-flagged code.
#pragma once

#if !defined(TVS_BACKEND_BUILD)
#error "backend_variant.hpp is only for per-backend kernel TUs (see src/CMakeLists.txt)"
#endif

#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "simd/vec.hpp"

namespace tvs::dispatch {
inline constexpr Backend kThisBackend = static_cast<Backend>(TVS_BACKEND_LEVEL);

// The backend's native vector width in bytes, and the vector type a kernel
// TU should instantiate its engines with: 512-bit under avx512, 256-bit
// elsewhere (the scalar backend mirrors the paper's AVX2 shapes so it can
// serve as the bit-exact oracle for them).  Every temporal engine is
// lane-count generic, so `BackendVec<double>` / `BackendVec<int32_t>` is
// all a TU needs to come out at its backend's full width.
inline constexpr int kBackendVectorBytes = TVS_BACKEND_LEVEL == 2 ? 64 : 32;

template <class T>
using BackendVec =
    simd::NativeVec<T, kBackendVectorBytes / static_cast<int>(sizeof(T))>;
}  // namespace tvs::dispatch

#define TVS_PP_CAT2(a, b) a##b
#define TVS_PP_CAT(a, b) TVS_PP_CAT2(a, b)

// tvs_kreg_<backend>_<module>
#define TVS_KREG_NAME(mod) \
  TVS_PP_CAT(TVS_PP_CAT(TVS_PP_CAT(tvs_kreg_, TVS_BACKEND_ID), _), mod)

// tvs_register_backend_<backend>
#define TVS_BACKEND_ENTRY_NAME TVS_PP_CAT(tvs_register_backend_, TVS_BACKEND_ID)

// Defines the module's registrar.  Kept default-visibility explicitly: the
// backend TUs compile with -fvisibility=hidden and are localized after the
// archive is built, and these entry points are the deliberate exceptions.
#define TVS_BACKEND_REGISTRAR(mod)                                      \
  extern "C" __attribute__((visibility("default"))) void TVS_KREG_NAME( \
      mod)(tvs::dispatch::KernelRegistry * tvs_reg_)

// Registers `fn` for `id` under this TU's backend at vector length `vl`
// and element type `dt` (the registry's width and dtype axes; a TU's first
// registration of (id, dtype) is its native engine for that dtype, so
// register the native width before any pinned extras, and the default
// dtype before any reduced-precision variants).  The static_cast against
// the signature alias makes a producer/consumer signature mismatch a
// compile error here rather than undefined behaviour at the call site.
#define TVS_REGISTER_VL_DT(id, FnAlias, fn, vl, dt)                     \
  tvs_reg_->add(tvs::dispatch::id, tvs::dispatch::kThisBackend, vl, dt, \
                reinterpret_cast<tvs::dispatch::AnyFn>(                 \
                    static_cast<tvs::dispatch::FnAlias*>(&(fn))))

// Double-precision shorthand (the classic engines).
#define TVS_REGISTER_VL(id, FnAlias, fn, vl) \
  TVS_REGISTER_VL_DT(id, FnAlias, fn, vl, tvs::dispatch::DType::kF64)

// Width-agnostic forms for kernels with no meaningful lane count
// (autovectorized baselines, tiling drivers).
#define TVS_REGISTER_DT(id, FnAlias, fn, dt) \
  TVS_REGISTER_VL_DT(id, FnAlias, fn, tvs::dispatch::kAnyVl, dt)
#define TVS_REGISTER(id, FnAlias, fn) \
  TVS_REGISTER_DT(id, FnAlias, fn, tvs::dispatch::DType::kF64)
