// Element-type (dtype) axis of the kernel registry and the solver.
//
// Temporal engines are registered per (id, backend, vector length, dtype):
// the double engines are the paper's configuration, the float engines
// double the lanes per register (8 per AVX2 register, 16 per AVX-512 —
// exactly the vl scaling of §3/Table 1), and the int32 engines serve the
// Game-of-Life and LCS kernels.  `dtype_name` strings appear in problem
// signatures ("jacobi2d5:...:dtype=f32") and TVS-facing error messages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace tvs::dispatch {

enum class DType : int { kF64 = 0, kF32 = 1, kI32 = 2 };

inline constexpr int kDTypeCount = 3;

// "f64" / "f32" / "i32".
constexpr std::string_view dtype_name(DType d) {
  switch (d) {
    case DType::kF64:
      return "f64";
    case DType::kF32:
      return "f32";
    case DType::kI32:
      return "i32";
  }
  return "?";
}

// Inverse of dtype_name; nullopt for unknown strings.
constexpr std::optional<DType> parse_dtype(std::string_view name) {
  if (name == "f64") return DType::kF64;
  if (name == "f32") return DType::kF32;
  if (name == "i32") return DType::kI32;
  return std::nullopt;
}

// Bytes per element.
constexpr std::size_t dtype_size(DType d) {
  return d == DType::kF64 ? 8 : 4;
}

// Maps an element type to its DType tag (used by the registration macros).
template <class T>
struct dtype_of;
template <>
struct dtype_of<double> {
  static constexpr DType value = DType::kF64;
};
template <>
struct dtype_of<float> {
  static constexpr DType value = DType::kF32;
};
template <>
struct dtype_of<std::int32_t> {
  static constexpr DType value = DType::kI32;
};

}  // namespace tvs::dispatch
