// KernelRegistry: the (kernel id, backend, vector length, dtype) ->
// function pointer table behind every public `*_run` entry point.
//
// Layout of the dispatch subsystem:
//
//   * Each kernel translation unit in tv/, baseline/ and tiling/ is compiled
//     once per backend with that backend's instruction-set flags (see
//     src/CMakeLists.txt).  All code in those TUs has internal linkage; the
//     only external symbol each contributes is an `extern "C"` registrar
//     (backend_variant.hpp) that deposits its function pointers here.
//   * The common library (grids, references, dispatchers — this file's
//     world) is compiled with no SIMD flags at all, so no illegal
//     instruction can leak into code that runs before backend selection.
//   * Public entry points look their implementation up by id at first call
//     (`get<Fn>(id)`), honouring selected_backend().
//
// The vector length is a first-class registry axis: every temporal kernel
// registers with the lane count it was instantiated at (its backend's
// native width — 4/8 doubles, 8/16 floats or int32s), and the scalar
// backend additionally registers width-pinned wide instantiations
// (ScalarVec<double, 8>, ScalarVec<float, 16>, ScalarVec<int32, 16>) so a
// width-pinned lookup resolves on every host.
//
// The element type (dtype) is the second value axis: one id can carry a
// double, a float and (for Life/LCS) an int32 engine family.  Each entry
// is tagged with its dtype; lookups WITHOUT a dtype resolve against the
// id's *default* dtype — the dtype of the id's very first registration
// (f64 for the FP kernels, i32 for Life/LCS) — so every pre-dtype call
// site keeps its exact semantics and can never cast a float engine to a
// double signature.  Dtype-qualified lookups (`resolve_at(id, b, vl, dt)`)
// pin the axis; vl = kAnyVl there means "the backend's native width for
// that dtype" (its first registration of (id, dtype)).
//
// Lookup falls back *downward* only: a kernel asked for at avx512 that has
// no avx512 variant resolves to its avx2 variant, then scalar.  Every
// kernel has a scalar variant, so resolution always succeeds for known
// ids; an unknown id throws an error listing every registered id.
// Registration happens once, inside instance()'s initialization; afterwards
// the table is immutable and lookups are safe from any thread.
#pragma once

#include <string_view>
#include <vector>

#include "dispatch/backend.hpp"
#include "dispatch/dtype.hpp"

namespace tvs::dispatch {

// Erased function-pointer type.  Entries are cast back to their real
// signature by the dispatcher that registered/looks up the id, which is the
// only code that names both the id and the signature (dispatch/kernels.hpp).
using AnyFn = void (*)();

// Wildcard for the vector-length axis: match any width.
inline constexpr int kAnyVl = 0;

class KernelRegistry {
 public:
  // The process-wide registry; builds the table (runs every compiled-in
  // backend's registrar) on first use.
  static KernelRegistry& instance();

  // Registration-phase only (called by the backend registrars).  `vl` is
  // the lane count of the registered engine (kAnyVl for kernels with no
  // meaningful vector length), `dt` its element type.  The first
  // registration of (id, dtype) per backend is that backend's native
  // engine for the dtype; the id's overall first registration fixes its
  // default dtype.
  void add(std::string_view id, Backend b, int vl, DType dt, AnyFn fn);

  // Exact lookup at the backend's native engine of the id's default
  // dtype: nullptr when (id, b) has no entry.  The 3-argument form
  // additionally requires the exact vector length.
  AnyFn find(std::string_view id, Backend b) const;
  AnyFn find(std::string_view id, Backend b, int vl) const;
  // Dtype-pinned exact lookup; vl = kAnyVl matches the backend's native
  // width for the dtype.
  AnyFn find(std::string_view id, Backend b, int vl, DType dt) const;

  // Lookup at backend `b` with downward fallback; throws std::runtime_error
  // listing the registered ids for an id with no entry at or below `b`.
  // The `vl` forms restrict the search to engines at that lane count, the
  // `dt` forms to engines of that element type (no-dt forms use the id's
  // default dtype).
  AnyFn resolve_at(std::string_view id, Backend b) const;
  AnyFn resolve_at(std::string_view id, Backend b, int vl) const;
  AnyFn resolve_at(std::string_view id, Backend b, int vl, DType dt) const;
  // The backend resolve_at() would use (for tests / introspection).
  Backend resolved_backend_at(std::string_view id, Backend b) const;
  Backend resolved_backend_at(std::string_view id, Backend b, int vl) const;
  Backend resolved_backend_at(std::string_view id, Backend b, int vl,
                              DType dt) const;

  // resolve_at / resolved_backend_at at selected_backend().
  AnyFn resolve(std::string_view id) const;
  Backend resolved_backend(std::string_view id) const;

  // True when any kernel is registered for `b` (i.e. the backend's objects
  // were compiled into this binary).
  bool has_backend(Backend b) const;

  // Sorted unique kernel ids.
  std::vector<std::string_view> kernel_ids() const;

  // The dtype of the id's first registration (its pre-dtype-axis
  // behaviour); throws for unknown ids.
  DType default_dtype(std::string_view id) const;

  // Sorted unique lane counts registered for `id` at or below `b` at the
  // given dtype — which widths a pinned lookup can resolve.  The two-
  // argument form uses the id's default dtype.
  std::vector<int> registered_widths(std::string_view id, Backend b) const;
  std::vector<int> registered_widths(std::string_view id, Backend b,
                                     DType dt) const;

  // Sorted unique dtypes registered for `id` at or below `b`.
  std::vector<DType> registered_dtypes(std::string_view id, Backend b) const;

  template <class Fn>
  Fn* get(std::string_view id) const {
    return reinterpret_cast<Fn*>(resolve(id));
  }
  template <class Fn>
  Fn* get_at(std::string_view id, Backend b) const {
    return reinterpret_cast<Fn*>(resolve_at(id, b));
  }
  // Width-pinned lookup: the engine at exactly `vl` lanes, searched
  // downward from `b` (e.g. vl=4 on an avx512 host resolves to the avx2
  // engine; vl=8 on an avx2-only host to ScalarVec<double, 8>).
  template <class Fn>
  Fn* get_at(std::string_view id, Backend b, int vl) const {
    return reinterpret_cast<Fn*>(resolve_at(id, b, vl));
  }
  // Dtype-pinned lookup (vl = kAnyVl -> the backend's native width for the
  // dtype).  Fn must be the dtype's signature alias (e.g. the float alias
  // for kF32) — the dtype axis is what keeps this cast sound.
  template <class Fn>
  Fn* get_at(std::string_view id, Backend b, int vl, DType dt) const {
    return reinterpret_cast<Fn*>(resolve_at(id, b, vl, dt));
  }

 private:
  // default_dtype that cannot throw (falls back to kF64 for unknown ids);
  // used when building lookup-failure messages.
  DType default_dtype_or_f64(std::string_view id) const;

  struct Entry {
    std::string_view id;  // points at a string literal from kernels.hpp
    Backend backend;
    int vl;    // lane count of the registered engine (kAnyVl = unspecified)
    DType dtype;
    AnyFn fn;
  };
  [[noreturn]] void throw_unknown(std::string_view id, Backend b, int vl,
                                  DType dt) const;
  std::vector<Entry> entries_;
  bool backend_seen_[kBackendCount] = {};
};

}  // namespace tvs::dispatch
