// KernelRegistry: the (kernel id, backend) -> function pointer table behind
// every public `*_run` entry point.
//
// Layout of the dispatch subsystem:
//
//   * Each kernel translation unit in tv/, baseline/ and tiling/ is compiled
//     once per backend with that backend's instruction-set flags (see
//     src/CMakeLists.txt).  All code in those TUs has internal linkage; the
//     only external symbol each contributes is an `extern "C"` registrar
//     (backend_variant.hpp) that deposits its function pointers here.
//   * The common library (grids, references, dispatchers — this file's
//     world) is compiled with no SIMD flags at all, so no illegal
//     instruction can leak into code that runs before backend selection.
//   * Public entry points look their implementation up by id at first call
//     (`get<Fn>(id)`), honouring selected_backend().
//
// Lookup falls back *downward* only: a kernel asked for at avx512 that has
// no avx512 variant resolves to its avx2 variant, then scalar.  Every
// kernel has a scalar variant, so resolution always succeeds for known ids.
// Registration happens once, inside instance()'s initialization; afterwards
// the table is immutable and lookups are safe from any thread.
#pragma once

#include <string_view>
#include <vector>

#include "dispatch/backend.hpp"

namespace tvs::dispatch {

// Erased function-pointer type.  Entries are cast back to their real
// signature by the dispatcher that registered/looks up the id, which is the
// only code that names both the id and the signature (dispatch/kernels.hpp).
using AnyFn = void (*)();

class KernelRegistry {
 public:
  // The process-wide registry; builds the table (runs every compiled-in
  // backend's registrar) on first use.
  static KernelRegistry& instance();

  // Registration-phase only (called by the backend registrars).
  void add(std::string_view id, Backend b, AnyFn fn);

  // Exact lookup: nullptr when (id, b) has no entry.
  AnyFn find(std::string_view id, Backend b) const;

  // Lookup at backend `b` with downward fallback; throws std::runtime_error
  // for an id with no entry at or below `b`.
  AnyFn resolve_at(std::string_view id, Backend b) const;
  // The backend resolve_at() would use (for tests / introspection).
  Backend resolved_backend_at(std::string_view id, Backend b) const;

  // resolve_at / resolved_backend_at at selected_backend().
  AnyFn resolve(std::string_view id) const;
  Backend resolved_backend(std::string_view id) const;

  // True when any kernel is registered for `b` (i.e. the backend's objects
  // were compiled into this binary).
  bool has_backend(Backend b) const;

  // Sorted unique kernel ids.
  std::vector<std::string_view> kernel_ids() const;

  template <class Fn>
  Fn* get(std::string_view id) const {
    return reinterpret_cast<Fn*>(resolve(id));
  }
  template <class Fn>
  Fn* get_at(std::string_view id, Backend b) const {
    return reinterpret_cast<Fn*>(resolve_at(id, b));
  }

 private:
  struct Entry {
    std::string_view id;  // points at a string literal from kernels.hpp
    Backend backend;
    AnyFn fn;
  };
  std::vector<Entry> entries_;
  bool backend_seen_[kBackendCount] = {};
};

}  // namespace tvs::dispatch
