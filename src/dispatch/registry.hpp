// KernelRegistry: the (kernel id, backend, vector length) -> function
// pointer table behind every public `*_run` entry point.
//
// Layout of the dispatch subsystem:
//
//   * Each kernel translation unit in tv/, baseline/ and tiling/ is compiled
//     once per backend with that backend's instruction-set flags (see
//     src/CMakeLists.txt).  All code in those TUs has internal linkage; the
//     only external symbol each contributes is an `extern "C"` registrar
//     (backend_variant.hpp) that deposits its function pointers here.
//   * The common library (grids, references, dispatchers — this file's
//     world) is compiled with no SIMD flags at all, so no illegal
//     instruction can leak into code that runs before backend selection.
//   * Public entry points look their implementation up by id at first call
//     (`get<Fn>(id)`), honouring selected_backend().
//
// The vector length is a first-class registry axis: every temporal kernel
// registers with the lane count it was instantiated at (its backend's
// native width — 4/8 doubles, 8/16 int32s), and the scalar backend
// additionally registers width-pinned wide instantiations
// (ScalarVec<double, 8>, ScalarVec<int32, 16>) so a width-pinned lookup
// resolves on every host.  `resolve_at(id, b)` ignores the width (each
// backend's *first* registration of an id is its native engine);
// `resolve_at(id, b, vl)` pins it.  Kernels with no meaningful lane count
// (autovectorized baselines, tiling drivers) register with vl = 0.
//
// Lookup falls back *downward* only: a kernel asked for at avx512 that has
// no avx512 variant resolves to its avx2 variant, then scalar.  Every
// kernel has a scalar variant, so resolution always succeeds for known
// ids; an unknown id throws an error listing every registered id.
// Registration happens once, inside instance()'s initialization; afterwards
// the table is immutable and lookups are safe from any thread.
#pragma once

#include <string_view>
#include <vector>

#include "dispatch/backend.hpp"

namespace tvs::dispatch {

// Erased function-pointer type.  Entries are cast back to their real
// signature by the dispatcher that registered/looks up the id, which is the
// only code that names both the id and the signature (dispatch/kernels.hpp).
using AnyFn = void (*)();

// Wildcard for the vector-length axis: match any width.
inline constexpr int kAnyVl = 0;

class KernelRegistry {
 public:
  // The process-wide registry; builds the table (runs every compiled-in
  // backend's registrar) on first use.
  static KernelRegistry& instance();

  // Registration-phase only (called by the backend registrars).  `vl` is
  // the lane count of the registered engine (kAnyVl for kernels with no
  // meaningful vector length).  The first registration of an id per
  // backend is that backend's native engine.
  void add(std::string_view id, Backend b, int vl, AnyFn fn);

  // Exact lookup at the backend's native engine: nullptr when (id, b) has
  // no entry.  The 3-argument form requires the exact vector length.
  AnyFn find(std::string_view id, Backend b) const;
  AnyFn find(std::string_view id, Backend b, int vl) const;

  // Lookup at backend `b` with downward fallback; throws std::runtime_error
  // listing the registered ids for an id with no entry at or below `b`.
  // The `vl` forms restrict the search to engines at that lane count.
  AnyFn resolve_at(std::string_view id, Backend b) const;
  AnyFn resolve_at(std::string_view id, Backend b, int vl) const;
  // The backend resolve_at() would use (for tests / introspection).
  Backend resolved_backend_at(std::string_view id, Backend b) const;
  Backend resolved_backend_at(std::string_view id, Backend b, int vl) const;

  // resolve_at / resolved_backend_at at selected_backend().
  AnyFn resolve(std::string_view id) const;
  Backend resolved_backend(std::string_view id) const;

  // True when any kernel is registered for `b` (i.e. the backend's objects
  // were compiled into this binary).
  bool has_backend(Backend b) const;

  // Sorted unique kernel ids.
  std::vector<std::string_view> kernel_ids() const;

  // Sorted unique lane counts registered for `id` at or below `b`
  // (kAnyVl entries excluded) — which widths a pinned lookup can resolve.
  std::vector<int> registered_widths(std::string_view id, Backend b) const;

  template <class Fn>
  Fn* get(std::string_view id) const {
    return reinterpret_cast<Fn*>(resolve(id));
  }
  template <class Fn>
  Fn* get_at(std::string_view id, Backend b) const {
    return reinterpret_cast<Fn*>(resolve_at(id, b));
  }
  // Width-pinned lookup: the engine at exactly `vl` lanes, searched
  // downward from `b` (e.g. vl=4 on an avx512 host resolves to the avx2
  // engine; vl=8 on an avx2-only host to ScalarVec<double, 8>).
  template <class Fn>
  Fn* get_at(std::string_view id, Backend b, int vl) const {
    return reinterpret_cast<Fn*>(resolve_at(id, b, vl));
  }

 private:
  struct Entry {
    std::string_view id;  // points at a string literal from kernels.hpp
    Backend backend;
    int vl;  // lane count of the registered engine (kAnyVl = unspecified)
    AnyFn fn;
  };
  [[noreturn]] void throw_unknown(std::string_view id, Backend b, int vl) const;
  std::vector<Entry> entries_;
  bool backend_seen_[kBackendCount] = {};
};

}  // namespace tvs::dispatch
