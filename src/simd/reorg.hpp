// Data-reorganization helpers for the temporal-vectorization kernels.
//
// Algorithm 3 stores the finished top lane of every output vector and feeds
// a fresh level-0 element into the bottom lane of every new input vector.
// Doing both with scalar memory operations would waste the vector units, so
// the paper groups them (§3.2, Figure 1):
//
//   * top vector    — the top lanes of `vl` consecutive output vectors are
//     assembled into one vector and written with a single vector store;
//   * bottom vector — `vl` consecutive level-0 elements are fetched with a
//     single vector load and dispensed one per iteration.
//
// `collect_tops_arr` implements the assembly for ANY lane count; the
// intrinsic types override it with shuffle trees (3 shuffles for VecD4, the
// count the paper reports) or masked-permute chains (AVX-512).  Bottom
// dispensing is a `rotate_down` per iteration in the kernels: the next
// fresh element is always at lane 0.
#pragma once

#include <cstdint>

#include "simd/vec.hpp"

namespace tvs::simd {

// Debug shuffle accounting for the redundancy ablation
// (bench/ablation_redundancy.cpp).  A TU that defines TVS_REORG_COUNT
// before including this header gets instrumented instantiations of the
// reorganization helpers: each helper adds its algorithmic shuffle weight
// (number of cross-lane data movements a vector ISA must issue — the
// counts the intrinsic overloads actually use) to this thread-local
// counter.  Without the macro the tick compiles out entirely; the counter
// function itself is unconditional so reading code stays well-formed.
// Only instrumentation TUs (the ablation bench) may define the macro: the
// backend kernel libraries localize their instantiations, so counted and
// uncounted copies never collide at link time.
inline std::uint64_t& reorg_shuffle_count() {
  static thread_local std::uint64_t n = 0;
  return n;
}
#if defined(TVS_REORG_COUNT)
#define TVS_REORG_TICK(n) (::tvs::simd::reorg_shuffle_count() += (n))
#else
#define TVS_REORG_TICK(n) (static_cast<void>(0))
#endif

// Lane-count-generic top-vector assembly: lane i of the result is the top
// lane of w[i], for i = 0 .. V::lanes-1.
template <class V>
inline V collect_tops_arr(const V* w) {
  TVS_REORG_TICK(V::lanes - 1);
  alignas(64) typename V::value_type tmp[V::lanes];
  for (int i = 0; i < V::lanes; ++i) tmp[i] = top_lane(w[i]);
  return V::load(tmp);
}

// Variadic form (one argument per lane); kept for the compile-time-unrolled
// fast paths and the unit tests.
template <class V, class... Vs>
  requires(sizeof...(Vs) + 1 == static_cast<std::size_t>(V::lanes) &&
           (std::is_same_v<V, Vs> && ...))
inline V collect_tops(V a, Vs... rest) {
  const V w[] = {a, rest...};
  return collect_tops_arr(w);
}

#if defined(__AVX2__)
// {a3, b3, c3, d3} in 3 shuffles (2 in-lane unpacks + 1 lane-crossing).
inline VecD4 collect_tops(VecD4 a, VecD4 b, VecD4 c, VecD4 d) {
  TVS_REORG_TICK(3);
  const __m256d h01 = _mm256_unpackhi_pd(a.r, b.r);  // {a1,b1,a3,b3}
  const __m256d h23 = _mm256_unpackhi_pd(c.r, d.r);  // {c1,d1,c3,d3}
  return VecD4{_mm256_permute2f128_pd(h01, h23, 0x31)};
}
inline VecD4 collect_tops_arr(const VecD4* w) {
  return collect_tops(w[0], w[1], w[2], w[3]);
}

// {a7,b7,...,h7} floats via the same unpack tree as VecI8 (6 in-lane
// unpacks + 1 lane-crossing permute).
inline VecF8 collect_tops(VecF8 a, VecF8 b, VecF8 c, VecF8 d, VecF8 e,
                          VecF8 f, VecF8 g, VecF8 h) {
  TVS_REORG_TICK(7);
  // unpackhi_ps(x, y) = {x2,y2,x3,y3, x6,y6,x7,y7}; the lane-7 values land
  // in positions 6,7 of each 128-bit half after the first level.
  const __m256 ab = _mm256_unpackhi_ps(a.r, b.r);
  const __m256 cd = _mm256_unpackhi_ps(c.r, d.r);
  const __m256 ef = _mm256_unpackhi_ps(e.r, f.r);
  const __m256 gh = _mm256_unpackhi_ps(g.r, h.r);
  const __m256 abcd = _mm256_castpd_ps(
      _mm256_unpackhi_pd(_mm256_castps_pd(ab), _mm256_castps_pd(cd)));
  const __m256 efgh = _mm256_castpd_ps(
      _mm256_unpackhi_pd(_mm256_castps_pd(ef), _mm256_castps_pd(gh)));
  return VecF8{_mm256_permute2f128_ps(abcd, efgh, 0x31)};
}
inline VecF8 collect_tops_arr(const VecF8* w) {
  return collect_tops(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]);
}

// {a7,b7,...,h7} via an unpack tree (6 in-lane unpacks + 1 lane-crossing).
inline VecI8 collect_tops(VecI8 a, VecI8 b, VecI8 c, VecI8 d, VecI8 e,
                          VecI8 f, VecI8 g, VecI8 h) {
  TVS_REORG_TICK(7);
  // unpackhi_epi32(x, y) = {x2,y2,x3,y3, x6,y6,x7,y7}; lane 7 values land in
  // positions 6,7 of each 128-bit half after the first level.
  const __m256i ab = _mm256_unpackhi_epi32(a.r, b.r);  // {..,..,a3,b3,..,..,a7,b7}
  const __m256i cd = _mm256_unpackhi_epi32(c.r, d.r);
  const __m256i ef = _mm256_unpackhi_epi32(e.r, f.r);
  const __m256i gh = _mm256_unpackhi_epi32(g.r, h.r);
  const __m256i abcd = _mm256_unpackhi_epi64(ab, cd);  // {..,..,..,..,a7,b7,c7,d7}
  const __m256i efgh = _mm256_unpackhi_epi64(ef, gh);  // {..,..,..,..,e7,f7,g7,h7}
  return VecI8{_mm256_permute2x128_si256(abcd, efgh, 0x31)};
}
inline VecI8 collect_tops_arr(const VecI8* w) {
  return collect_tops(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]);
}
#endif

#if defined(__AVX512F__)
// The first (unmasked) permute in each chain uses the maskz form with a
// full mask: identical codegen to the plain intrinsic, but avoids GCC's
// -Wmaybe-uninitialized false positive on the _mm512_undefined_* pass-
// through operand (GCC PR105593).
// One masked lane-broadcast per source vector: lane j <- w[j] lane 7.
inline VecD8 collect_tops_arr(const VecD8* w) {
  TVS_REORG_TICK(8);
  const __m512i top = _mm512_set1_epi64(7);
  __m512d r =
      _mm512_maskz_permutexvar_pd(static_cast<__mmask8>(0xff), top, w[0].r);
  r = _mm512_mask_permutexvar_pd(r, 0x02, top, w[1].r);
  r = _mm512_mask_permutexvar_pd(r, 0x04, top, w[2].r);
  r = _mm512_mask_permutexvar_pd(r, 0x08, top, w[3].r);
  r = _mm512_mask_permutexvar_pd(r, 0x10, top, w[4].r);
  r = _mm512_mask_permutexvar_pd(r, 0x20, top, w[5].r);
  r = _mm512_mask_permutexvar_pd(r, 0x40, top, w[6].r);
  r = _mm512_mask_permutexvar_pd(r, 0x80, top, w[7].r);
  return VecD8{r};
}
inline VecD8 collect_tops(VecD8 a, VecD8 b, VecD8 c, VecD8 d, VecD8 e,
                          VecD8 f, VecD8 g, VecD8 h) {
  const VecD8 w[] = {a, b, c, d, e, f, g, h};
  return collect_tops_arr(w);
}

inline VecI16 collect_tops_arr(const VecI16* w) {
  TVS_REORG_TICK(16);
  const __m512i top = _mm512_set1_epi32(15);
  __m512i r = _mm512_maskz_permutexvar_epi32(static_cast<__mmask16>(0xffff),
                                             top, w[0].r);
  for (int j = 1; j < 16; ++j)
    r = _mm512_mask_permutexvar_epi32(r, static_cast<__mmask16>(1u << j), top,
                                      w[j].r);
  return VecI16{r};
}

// One masked lane-broadcast per source vector: lane j <- w[j] lane 15.
inline VecF16 collect_tops_arr(const VecF16* w) {
  TVS_REORG_TICK(16);
  const __m512i top = _mm512_set1_epi32(15);
  __m512 r = _mm512_maskz_permutexvar_ps(static_cast<__mmask16>(0xffff), top,
                                         w[0].r);
  for (int j = 1; j < 16; ++j)
    r = _mm512_mask_permutexvar_ps(r, static_cast<__mmask16>(1u << j), top,
                                   w[j].r);
  return VecF16{r};
}
#endif

// Shift `a` one lane up, inserting the lane-0 value of `fresh` at the
// bottom: the vector-blend form of Algorithm 3's lines 13-14 used with
// bottom-vector dispensing.
template <class V>
inline V shift_in_low_v(V a, V fresh) {
  TVS_REORG_TICK(1);
  V rot = rotate_up(a);
  return rot.template insert<0>(fresh.template extract<0>());
}

#if defined(__AVX2__)
inline VecD4 shift_in_low_v(VecD4 a, VecD4 fresh) {
  TVS_REORG_TICK(1);
  return VecD4{_mm256_blend_pd(_mm256_permute4x64_pd(a.r, 0x93), fresh.r, 0x1)};
}
inline VecF8 shift_in_low_v(VecF8 a, VecF8 fresh) {
  TVS_REORG_TICK(1);
  return VecF8{_mm256_blend_ps(
      _mm256_permutevar8x32_ps(a.r, detail::rotidxf_up()), fresh.r, 0x1)};
}
inline VecI8 shift_in_low_v(VecI8 a, VecI8 fresh) {
  TVS_REORG_TICK(1);
  return VecI8{_mm256_blend_epi32(
      _mm256_permutevar8x32_epi32(a.r, detail::rotidx_up()), fresh.r, 0x1)};
}
#endif

// Bottom-vector dispensing step (Algorithm 3 with a grouped bottom load):
// after a kernel consumed lane 0 of `bot`, rotate the next fresh element
// down into lane 0.  A counted wrapper over rotate_down so the ablation
// bench attributes the baseline engines' per-iteration dispense shuffle.
template <class V>
inline V dispense_low(V bot) {
  TVS_REORG_TICK(1);
  return rotate_down(bot);
}

// Incremental reorganization (arXiv:2103.08825 / 2103.09235): ONE shuffle
// retires the finished top lane of `w` AND admits the fresh bottom
// element.  rotate_up moves the finished value (lane N-1) to lane 0, where
// extracting it is free on every backend; the same rotated register then
// takes `fresh` into lane 0 via a blend against a broadcast — a
// port-5-free merge, not a shuffle.  Replaces the baseline's
// shift_in_low_v + dispense_low pair (2 shuffles) and, because the top is
// stored as it retires, the collect_tops_arr assembly tree (lanes-1
// shuffles per lanes outputs) disappears entirely: O(1) shuffles per
// produced vector instead of O(lanes).
template <class V>
inline V retire_shift_in(V w, typename V::value_type fresh,
                         typename V::value_type* top_out) {
  TVS_REORG_TICK(1);
  V rot = rotate_up(w);
  *top_out = rot.template extract<0>();
  return rot.template insert<0>(fresh);
}

#if defined(__AVX2__)
inline VecD4 retire_shift_in(VecD4 w, double fresh, double* top_out) {
  TVS_REORG_TICK(1);
  const __m256d rot = _mm256_permute4x64_pd(w.r, 0x93);
  *top_out = _mm256_cvtsd_f64(rot);
  return VecD4{_mm256_blend_pd(rot, _mm256_set1_pd(fresh), 0x1)};
}
inline VecF8 retire_shift_in(VecF8 w, float fresh, float* top_out) {
  TVS_REORG_TICK(1);
  const __m256 rot = _mm256_permutevar8x32_ps(w.r, detail::rotidxf_up());
  *top_out = _mm256_cvtss_f32(rot);
  return VecF8{_mm256_blend_ps(rot, _mm256_set1_ps(fresh), 0x1)};
}
#endif

#if defined(__AVX512F__)
inline VecD8 retire_shift_in(VecD8 w, double fresh, double* top_out) {
  TVS_REORG_TICK(1);
  const __m512i up = _mm512_setr_epi64(7, 0, 1, 2, 3, 4, 5, 6);
  const __m512d rot = _mm512_permutexvar_pd(up, w.r);
  *top_out = _mm512_cvtsd_f64(rot);
  return VecD8{_mm512_mask_mov_pd(rot, 0x01, _mm512_set1_pd(fresh))};
}
inline VecF16 retire_shift_in(VecF16 w, float fresh, float* top_out) {
  TVS_REORG_TICK(1);
  const __m512i up = _mm512_setr_epi32(15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                       11, 12, 13, 14);
  const __m512 rot = _mm512_permutexvar_ps(up, w.r);
  *top_out = _mm512_cvtss_f32(rot);
  return VecF16{_mm512_mask_mov_ps(rot, 0x0001, _mm512_set1_ps(fresh))};
}
#endif

// West/east neighbor assembly for the data-reorganization *spatial* scheme
// (§2.2): the x-1 / x+1 shifted views of a register block are built from
// the block and its neighbor entirely in registers, so each input element
// is loaded exactly once per sweep.
//
//   west_neighbors(prev, cur) = {prev[N-1], cur[0], ..., cur[N-2]}
//   east_neighbors(cur, next) = {cur[1], ..., cur[N-1], next[0]}
template <class V>
inline V west_neighbors(V prev, V cur) {
  return shift_in_low(cur, top_lane(prev));
}
template <class V>
inline V east_neighbors(V cur, V next) {
  V rot = rotate_down(cur);
  return rot.template insert<V::lanes - 1>(next.template extract<0>());
}

#if defined(__AVX2__)
// {p3, c0, c1, c2}: 1 lane-crossing + 1 in-lane shuffle.
inline VecD4 west_neighbors(VecD4 prev, VecD4 cur) {
  const __m256d t = _mm256_permute2f128_pd(prev.r, cur.r, 0x21);  // {p2,p3,c0,c1}
  return VecD4{_mm256_shuffle_pd(t, cur.r, 0x5)};                 // {p3,c0,c1,c2}
}
// {c1, c2, c3, n0}
inline VecD4 east_neighbors(VecD4 cur, VecD4 next) {
  const __m256d t = _mm256_permute2f128_pd(cur.r, next.r, 0x21);  // {c2,c3,n0,n1}
  return VecD4{_mm256_shuffle_pd(cur.r, t, 0x5)};                 // {c1,c2,c3,n0}
}
#endif

}  // namespace tvs::simd
