// Data-reorganization helpers for the temporal-vectorization kernels.
//
// Algorithm 3 stores the finished top lane of every output vector and feeds
// a fresh level-0 element into the bottom lane of every new input vector.
// Doing both with scalar memory operations would waste the vector units, so
// the paper groups them (§3.2, Figure 1):
//
//   * top vector    — the top lanes of `vl` consecutive output vectors are
//     assembled into one vector and written with a single vector store;
//   * bottom vector — `vl` consecutive level-0 elements are fetched with a
//     single vector load and dispensed one per iteration.
//
// `collect_tops` implements the assembly (3 shuffles for VecD4, the count
// the paper reports).  Bottom dispensing is a `rotate_down` per iteration in
// the kernels: the next fresh element is always at lane 0.
#pragma once

#include "simd/vec.hpp"

namespace tvs::simd {

// Generic: gather the top lane of 4 output vectors into lanes 0..3.
template <class V>
  requires(V::lanes == 4)
inline V collect_tops(V a, V b, V c, V d) {
  V r = V::set1(top_lane(a));
  r = r.template insert<1>(top_lane(b));
  r = r.template insert<2>(top_lane(c));
  r = r.template insert<3>(top_lane(d));
  return r;
}

#if defined(__AVX2__)
// {a3, b3, c3, d3} in 3 shuffles (2 in-lane unpacks + 1 lane-crossing).
inline VecD4 collect_tops(VecD4 a, VecD4 b, VecD4 c, VecD4 d) {
  const __m256d h01 = _mm256_unpackhi_pd(a.r, b.r);  // {a1,b1,a3,b3}
  const __m256d h23 = _mm256_unpackhi_pd(c.r, d.r);  // {c1,d1,c3,d3}
  return VecD4{_mm256_permute2f128_pd(h01, h23, 0x31)};
}
#endif

// Generic: gather the top lane of 8 output vectors into lanes 0..7.
template <class V>
  requires(V::lanes == 8)
inline V collect_tops(V a, V b, V c, V d, V e, V f, V g, V h) {
  V r = V::set1(top_lane(a));
  r = r.template insert<1>(top_lane(b));
  r = r.template insert<2>(top_lane(c));
  r = r.template insert<3>(top_lane(d));
  r = r.template insert<4>(top_lane(e));
  r = r.template insert<5>(top_lane(f));
  r = r.template insert<6>(top_lane(g));
  r = r.template insert<7>(top_lane(h));
  return r;
}

#if defined(__AVX2__)
// {a7,b7,...,h7} via an unpack tree (6 in-lane unpacks + 1 lane-crossing).
inline VecI8 collect_tops(VecI8 a, VecI8 b, VecI8 c, VecI8 d, VecI8 e,
                          VecI8 f, VecI8 g, VecI8 h) {
  // unpackhi_epi32(x, y) = {x2,y2,x3,y3, x6,y6,x7,y7}; lane 7 values land in
  // positions 6,7 of each 128-bit half after the first level.
  const __m256i ab = _mm256_unpackhi_epi32(a.r, b.r);  // {..,..,a3,b3,..,..,a7,b7}
  const __m256i cd = _mm256_unpackhi_epi32(c.r, d.r);
  const __m256i ef = _mm256_unpackhi_epi32(e.r, f.r);
  const __m256i gh = _mm256_unpackhi_epi32(g.r, h.r);
  const __m256i abcd = _mm256_unpackhi_epi64(ab, cd);  // {..,..,..,..,a7,b7,c7,d7}
  const __m256i efgh = _mm256_unpackhi_epi64(ef, gh);  // {..,..,..,..,e7,f7,g7,h7}
  return VecI8{_mm256_permute2x128_si256(abcd, efgh, 0x31)};
}
#endif

// Array-of-outputs form used by the vl-generic 2D/3D engines.
template <class V>
inline V collect_tops_arr(const V* w) {
  if constexpr (V::lanes == 4)
    return collect_tops(w[0], w[1], w[2], w[3]);
  else
    return collect_tops(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]);
}

// Shift `a` one lane up, inserting the lane-0 value of `fresh` at the
// bottom: the vector-blend form of Algorithm 3's lines 13-14 used with
// bottom-vector dispensing.
template <class V>
inline V shift_in_low_v(V a, V fresh) {
  V rot = rotate_up(a);
  return rot.template insert<0>(fresh.template extract<0>());
}

#if defined(__AVX2__)
inline VecD4 shift_in_low_v(VecD4 a, VecD4 fresh) {
  return VecD4{_mm256_blend_pd(_mm256_permute4x64_pd(a.r, 0x93), fresh.r, 0x1)};
}
inline VecI8 shift_in_low_v(VecI8 a, VecI8 fresh) {
  return VecI8{_mm256_blend_epi32(
      _mm256_permutevar8x32_epi32(a.r, detail::rotidx_up()), fresh.r, 0x1)};
}
#endif

}  // namespace tvs::simd
