// AVX-512 implementations of the Vec interface: `VecD8` (double x 8),
// `VecF16` (float x 16 — the widest lane count in the library, the
// single-precision regime where temporal vectorization's vl scaling pays
// the most) and `VecI16` (int32 x 16, used by the Game-of-Life and LCS
// kernels).
//
// The paper evaluates vl = 4 (AVX); wider vectors are its stated future
// direction: with vl = 8 a temporal tile advances *eight* time steps per
// sweep, halving the memory traffic again at the cost of deeper edge
// triangles (the scalar-region area grows with vl^2 * s / 2).  Every
// temporal engine is lane-count generic, so these types drop straight in;
// see bench/ablation_vl.cpp for the resulting trade-off.
//
// Only AVX-512F is assumed (the backend compiles with -mavx512f alone), so
// mask-register results are widened back to the all-ones/all-zeros vector
// convention the AVX2 types use.  Unmasked permute/min/max intrinsics are
// spelled as full-mask maskz forms: identical codegen, but GCC's
// _mm512_undefined_* pass-through operand otherwise trips a
// -Wmaybe-uninitialized false positive at -O3 (GCC PR105593).
//
// Included by `vec.hpp` when __AVX512F__ is defined; do not include
// directly.
#pragma once

#if !defined(__AVX512F__)
#error "vec_avx512.hpp requires AVX-512F; include simd/vec.hpp instead"
#endif

#include <immintrin.h>

#include <cstdint>

namespace tvs::simd {

struct VecD8 {
  using value_type = double;
  static constexpr int lanes = 8;

  __m512d r;

  VecD8() : r(_mm512_setzero_pd()) {}
  explicit VecD8(__m512d x) : r(x) {}

  static VecD8 load(const double* p) { return VecD8{_mm512_load_pd(p)}; }
  static VecD8 loadu(const double* p) { return VecD8{_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_store_pd(p, r); }
  void storeu(double* p) const { _mm512_storeu_pd(p, r); }

  static VecD8 set1(double x) { return VecD8{_mm512_set1_pd(x)}; }
  static VecD8 zero() { return VecD8{_mm512_setzero_pd()}; }

  double operator[](int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] double extract() const {
    static_assert(I >= 0 && I < 8);
    if constexpr (I == 0) {
      return _mm512_cvtsd_f64(r);
    } else {
      const __m512d sh = _mm512_maskz_permutexvar_pd(
          static_cast<__mmask8>(0xff), _mm512_set1_epi64(I), r);
      return _mm512_cvtsd_f64(sh);
    }
  }
  template <int I>
  [[nodiscard]] VecD8 insert(double x) const {
    static_assert(I >= 0 && I < 8);
    return VecD8{_mm512_mask_broadcastsd_pd(
        r, static_cast<__mmask8>(1u << I), _mm_set_sd(x))};
  }

  friend VecD8 operator+(VecD8 a, VecD8 b) { return VecD8{_mm512_add_pd(a.r, b.r)}; }
  friend VecD8 operator-(VecD8 a, VecD8 b) { return VecD8{_mm512_sub_pd(a.r, b.r)}; }
  friend VecD8 operator*(VecD8 a, VecD8 b) { return VecD8{_mm512_mul_pd(a.r, b.r)}; }
};

inline VecD8 fma(VecD8 a, VecD8 b, VecD8 acc) {
  return VecD8{_mm512_fmadd_pd(a.r, b.r, acc.r)};
}
inline VecD8 min(VecD8 a, VecD8 b) { return VecD8{_mm512_min_pd(a.r, b.r)}; }
inline VecD8 max(VecD8 a, VecD8 b) { return VecD8{_mm512_max_pd(a.r, b.r)}; }
inline VecD8 cmpeq(VecD8 a, VecD8 b) {
  const __mmask8 m = _mm512_cmp_pd_mask(a.r, b.r, _CMP_EQ_OQ);
  return VecD8{_mm512_castsi512_pd(
      _mm512_maskz_set1_epi64(m, static_cast<long long>(~0ULL)))};
}
inline VecD8 blendv(VecD8 a, VecD8 b, VecD8 mask) {
  const __mmask8 m = _mm512_cmplt_epi64_mask(_mm512_castpd_si512(mask.r),
                                             _mm512_setzero_si512());
  return VecD8{_mm512_mask_blend_pd(m, a.r, b.r)};
}

namespace detail {
inline __m512i idx512_up() { return _mm512_setr_epi64(7, 0, 1, 2, 3, 4, 5, 6); }
inline __m512i idx512_down() { return _mm512_setr_epi64(1, 2, 3, 4, 5, 6, 7, 0); }
}  // namespace detail

inline VecD8 rotate_up(VecD8 a) {
  return VecD8{_mm512_maskz_permutexvar_pd(static_cast<__mmask8>(0xff),
                                           detail::idx512_up(), a.r)};
}
inline VecD8 rotate_down(VecD8 a) {
  return VecD8{_mm512_maskz_permutexvar_pd(static_cast<__mmask8>(0xff),
                                           detail::idx512_down(), a.r)};
}
inline VecD8 shift_in_low(VecD8 a, double x) {
  const __m512d rot = _mm512_maskz_permutexvar_pd(static_cast<__mmask8>(0xff),
                                                  detail::idx512_up(), a.r);
  return VecD8{_mm512_mask_broadcastsd_pd(rot, 0x1, _mm_set_sd(x))};
}
inline VecD8 shift_in_low_v(VecD8 a, VecD8 fresh) {
  const __m512d rot = _mm512_maskz_permutexvar_pd(static_cast<__mmask8>(0xff),
                                                  detail::idx512_up(), a.r);
  return VecD8{_mm512_mask_mov_pd(rot, 0x1, fresh.r)};
}

// ---------------------------------------------------------------------------
// float x 16
// ---------------------------------------------------------------------------
struct VecF16 {
  using value_type = float;
  static constexpr int lanes = 16;

  __m512 r;

  VecF16() : r(_mm512_setzero_ps()) {}
  explicit VecF16(__m512 x) : r(x) {}

  static VecF16 load(const float* p) { return VecF16{_mm512_load_ps(p)}; }
  static VecF16 loadu(const float* p) { return VecF16{_mm512_loadu_ps(p)}; }
  void store(float* p) const { _mm512_store_ps(p, r); }
  void storeu(float* p) const { _mm512_storeu_ps(p, r); }

  static VecF16 set1(float x) { return VecF16{_mm512_set1_ps(x)}; }
  static VecF16 zero() { return VecF16{_mm512_setzero_ps()}; }

  float operator[](int i) const {
    alignas(64) float tmp[16];
    _mm512_store_ps(tmp, r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] float extract() const {
    static_assert(I >= 0 && I < 16);
    if constexpr (I == 0) {
      return _mm512_cvtss_f32(r);
    } else {
      const __m512 sh = _mm512_maskz_permutexvar_ps(
          static_cast<__mmask16>(0xffff), _mm512_set1_epi32(I), r);
      return _mm512_cvtss_f32(sh);
    }
  }
  template <int I>
  [[nodiscard]] VecF16 insert(float x) const {
    static_assert(I >= 0 && I < 16);
    return VecF16{_mm512_mask_broadcastss_ps(
        r, static_cast<__mmask16>(1u << I), _mm_set_ss(x))};
  }

  friend VecF16 operator+(VecF16 a, VecF16 b) {
    return VecF16{_mm512_add_ps(a.r, b.r)};
  }
  friend VecF16 operator-(VecF16 a, VecF16 b) {
    return VecF16{_mm512_sub_ps(a.r, b.r)};
  }
  friend VecF16 operator*(VecF16 a, VecF16 b) {
    return VecF16{_mm512_mul_ps(a.r, b.r)};
  }
};

inline VecF16 fma(VecF16 a, VecF16 b, VecF16 acc) {
  return VecF16{_mm512_fmadd_ps(a.r, b.r, acc.r)};
}
inline VecF16 min(VecF16 a, VecF16 b) {
  return VecF16{_mm512_min_ps(a.r, b.r)};
}
inline VecF16 max(VecF16 a, VecF16 b) {
  return VecF16{_mm512_max_ps(a.r, b.r)};
}
inline VecF16 cmpeq(VecF16 a, VecF16 b) {
  const __mmask16 m = _mm512_cmp_ps_mask(a.r, b.r, _CMP_EQ_OQ);
  return VecF16{_mm512_castsi512_ps(_mm512_maskz_set1_epi32(m, -1))};
}
inline VecF16 blendv(VecF16 a, VecF16 b, VecF16 mask) {
  const __mmask16 m = _mm512_cmplt_epi32_mask(_mm512_castps_si512(mask.r),
                                              _mm512_setzero_si512());
  return VecF16{_mm512_mask_blend_ps(m, a.r, b.r)};
}

namespace detail {
inline __m512i idx512f_up() {
  return _mm512_setr_epi32(15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                           14);
}
inline __m512i idx512f_down() {
  return _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                           0);
}
}  // namespace detail

inline VecF16 rotate_up(VecF16 a) {
  return VecF16{_mm512_maskz_permutexvar_ps(static_cast<__mmask16>(0xffff),
                                            detail::idx512f_up(), a.r)};
}
inline VecF16 rotate_down(VecF16 a) {
  return VecF16{_mm512_maskz_permutexvar_ps(static_cast<__mmask16>(0xffff),
                                            detail::idx512f_down(), a.r)};
}
inline VecF16 shift_in_low(VecF16 a, float x) {
  const __m512 rot = _mm512_maskz_permutexvar_ps(
      static_cast<__mmask16>(0xffff), detail::idx512f_up(), a.r);
  return VecF16{_mm512_mask_broadcastss_ps(rot, 0x1, _mm_set_ss(x))};
}
inline VecF16 shift_in_low_v(VecF16 a, VecF16 fresh) {
  const __m512 rot = _mm512_maskz_permutexvar_ps(
      static_cast<__mmask16>(0xffff), detail::idx512f_up(), a.r);
  return VecF16{_mm512_mask_mov_ps(rot, 0x1, fresh.r)};
}

// ---------------------------------------------------------------------------
// int32 x 16
// ---------------------------------------------------------------------------
struct VecI16 {
  using value_type = std::int32_t;
  static constexpr int lanes = 16;

  __m512i r;

  VecI16() : r(_mm512_setzero_si512()) {}
  explicit VecI16(__m512i x) : r(x) {}

  static VecI16 load(const std::int32_t* p) {
    return VecI16{_mm512_load_si512(reinterpret_cast<const void*>(p))};
  }
  static VecI16 loadu(const std::int32_t* p) {
    return VecI16{_mm512_loadu_si512(reinterpret_cast<const void*>(p))};
  }
  void store(std::int32_t* p) const {
    _mm512_store_si512(reinterpret_cast<void*>(p), r);
  }
  void storeu(std::int32_t* p) const {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), r);
  }

  static VecI16 set1(std::int32_t x) { return VecI16{_mm512_set1_epi32(x)}; }
  static VecI16 zero() { return VecI16{_mm512_setzero_si512()}; }

  std::int32_t operator[](int i) const {
    alignas(64) std::int32_t tmp[16];
    _mm512_store_si512(reinterpret_cast<void*>(tmp), r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] std::int32_t extract() const {
    static_assert(I >= 0 && I < 16);
    if constexpr (I == 0) {
      return _mm512_cvtsi512_si32(r);
    } else {
      const __m512i sh = _mm512_maskz_permutexvar_epi32(
          static_cast<__mmask16>(0xffff), _mm512_set1_epi32(I), r);
      return _mm512_cvtsi512_si32(sh);
    }
  }
  template <int I>
  [[nodiscard]] VecI16 insert(std::int32_t x) const {
    static_assert(I >= 0 && I < 16);
    return VecI16{_mm512_mask_set1_epi32(r, static_cast<__mmask16>(1u << I), x)};
  }

  friend VecI16 operator+(VecI16 a, VecI16 b) {
    return VecI16{_mm512_add_epi32(a.r, b.r)};
  }
  friend VecI16 operator-(VecI16 a, VecI16 b) {
    return VecI16{_mm512_sub_epi32(a.r, b.r)};
  }
  friend VecI16 operator*(VecI16 a, VecI16 b) {
    return VecI16{_mm512_mullo_epi32(a.r, b.r)};
  }
};

inline VecI16 fma(VecI16 a, VecI16 b, VecI16 acc) { return a * b + acc; }
inline VecI16 min(VecI16 a, VecI16 b) {
  return VecI16{
      _mm512_maskz_min_epi32(static_cast<__mmask16>(0xffff), a.r, b.r)};
}
inline VecI16 max(VecI16 a, VecI16 b) {
  return VecI16{
      _mm512_maskz_max_epi32(static_cast<__mmask16>(0xffff), a.r, b.r)};
}
inline VecI16 cmpeq(VecI16 a, VecI16 b) {
  const __mmask16 m = _mm512_cmpeq_epi32_mask(a.r, b.r);
  return VecI16{_mm512_maskz_set1_epi32(m, -1)};
}
inline VecI16 blendv(VecI16 a, VecI16 b, VecI16 mask) {
  const __mmask16 m = _mm512_cmplt_epi32_mask(mask.r, _mm512_setzero_si512());
  return VecI16{_mm512_mask_blend_epi32(m, a.r, b.r)};
}

namespace detail {
inline __m512i idx512i_up() {
  return _mm512_setr_epi32(15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                           14);
}
inline __m512i idx512i_down() {
  return _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                           0);
}
}  // namespace detail

inline VecI16 rotate_up(VecI16 a) {
  return VecI16{_mm512_maskz_permutexvar_epi32(static_cast<__mmask16>(0xffff),
                                               detail::idx512i_up(), a.r)};
}
inline VecI16 rotate_down(VecI16 a) {
  return VecI16{_mm512_maskz_permutexvar_epi32(static_cast<__mmask16>(0xffff),
                                               detail::idx512i_down(), a.r)};
}
inline VecI16 shift_in_low(VecI16 a, std::int32_t x) {
  const __m512i rot = _mm512_maskz_permutexvar_epi32(
      static_cast<__mmask16>(0xffff), detail::idx512i_up(), a.r);
  return VecI16{_mm512_mask_set1_epi32(rot, 0x1, x)};
}
inline VecI16 shift_in_low_v(VecI16 a, VecI16 fresh) {
  const __m512i rot = _mm512_maskz_permutexvar_epi32(
      static_cast<__mmask16>(0xffff), detail::idx512i_up(), a.r);
  return VecI16{_mm512_mask_mov_epi32(rot, 0x1, fresh.r)};
}

}  // namespace tvs::simd
