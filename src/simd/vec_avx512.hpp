// AVX-512 `double x 8` implementation of the Vec interface (`VecD8`).
//
// The paper evaluates vl = 4 (AVX); wider vectors are its stated future
// direction: with vl = 8 a temporal tile advances *eight* time steps per
// sweep, halving the memory traffic again at the cost of deeper edge
// triangles (the scalar-region area grows with vl^2 * s / 2).  The 2D/3D
// engines are lane-count generic, so this backend drops straight in; see
// bench/ablation_vl.cpp for the resulting trade-off.
//
// Included by `vec.hpp` when __AVX512F__ is defined; do not include
// directly.
#pragma once

#if !defined(__AVX512F__)
#error "vec_avx512.hpp requires AVX-512F; include simd/vec.hpp instead"
#endif

#include <immintrin.h>

namespace tvs::simd {

struct VecD8 {
  using value_type = double;
  static constexpr int lanes = 8;

  __m512d r;

  VecD8() : r(_mm512_setzero_pd()) {}
  explicit VecD8(__m512d x) : r(x) {}

  static VecD8 load(const double* p) { return VecD8{_mm512_load_pd(p)}; }
  static VecD8 loadu(const double* p) { return VecD8{_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_store_pd(p, r); }
  void storeu(double* p) const { _mm512_storeu_pd(p, r); }

  static VecD8 set1(double x) { return VecD8{_mm512_set1_pd(x)}; }
  static VecD8 zero() { return VecD8{_mm512_setzero_pd()}; }

  double operator[](int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] double extract() const {
    static_assert(I >= 0 && I < 8);
    if constexpr (I == 0) {
      return _mm512_cvtsd_f64(r);
    } else {
      const __m512d sh = _mm512_permutexvar_pd(_mm512_set1_epi64(I), r);
      return _mm512_cvtsd_f64(sh);
    }
  }
  template <int I>
  [[nodiscard]] VecD8 insert(double x) const {
    static_assert(I >= 0 && I < 8);
    return VecD8{_mm512_mask_broadcastsd_pd(
        r, static_cast<__mmask8>(1u << I), _mm_set_sd(x))};
  }

  friend VecD8 operator+(VecD8 a, VecD8 b) { return VecD8{_mm512_add_pd(a.r, b.r)}; }
  friend VecD8 operator-(VecD8 a, VecD8 b) { return VecD8{_mm512_sub_pd(a.r, b.r)}; }
  friend VecD8 operator*(VecD8 a, VecD8 b) { return VecD8{_mm512_mul_pd(a.r, b.r)}; }
};

inline VecD8 fma(VecD8 a, VecD8 b, VecD8 acc) {
  return VecD8{_mm512_fmadd_pd(a.r, b.r, acc.r)};
}
inline VecD8 min(VecD8 a, VecD8 b) { return VecD8{_mm512_min_pd(a.r, b.r)}; }
inline VecD8 max(VecD8 a, VecD8 b) { return VecD8{_mm512_max_pd(a.r, b.r)}; }

namespace detail {
inline __m512i idx512_up() { return _mm512_setr_epi64(7, 0, 1, 2, 3, 4, 5, 6); }
inline __m512i idx512_down() { return _mm512_setr_epi64(1, 2, 3, 4, 5, 6, 7, 0); }
}  // namespace detail

inline VecD8 rotate_up(VecD8 a) {
  return VecD8{_mm512_permutexvar_pd(detail::idx512_up(), a.r)};
}
inline VecD8 rotate_down(VecD8 a) {
  return VecD8{_mm512_permutexvar_pd(detail::idx512_down(), a.r)};
}
inline VecD8 shift_in_low(VecD8 a, double x) {
  const __m512d rot = _mm512_permutexvar_pd(detail::idx512_up(), a.r);
  return VecD8{_mm512_mask_broadcastsd_pd(rot, 0x1, _mm_set_sd(x))};
}
inline VecD8 shift_in_low_v(VecD8 a, VecD8 fresh) {
  const __m512d rot = _mm512_permutexvar_pd(detail::idx512_up(), a.r);
  return VecD8{_mm512_mask_mov_pd(rot, 0x1, fresh.r)};
}

}  // namespace tvs::simd
