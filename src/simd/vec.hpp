// Portable fixed-width SIMD vector abstraction.
//
// Every kernel in the library is templated on a vector type `V` that models
// the interface below.  Two families implement it:
//
//   * `ScalarVec<T, N>` — plain-array implementation, valid for any
//     arithmetic T and any N.  Used as the reference backend in tests and as
//     the fallback on machines without AVX2.
//   * `VecD4` / `VecF8` / `VecI8` (in `vec_avx2.hpp`) — AVX2 `double x 4`,
//     `float x 8` and `int32 x 8` implementations — plus `VecD8` / `VecF16`
//     / `VecI16` (in `vec_avx512.hpp`), their AVX-512 widenings.
//
// Lane-genericity contract: a type V modelling this interface exposes
// `value_type`, a constexpr `lanes`, the static load/loadu/set1/zero
// constructors, store/storeu, operator[], extract<I>()/insert<I>(), the
// arithmetic operators, and the free functions fma/min/max/cmpeq/blendv/
// rotate_up/rotate_down/shift_in_low (+ the reorg.hpp helpers).  Every
// temporal engine derives its tile depth, ring layout and edge-scratch
// sizing from `V::lanes` alone, so any conforming V — any ScalarVec<T, N>
// or intrinsic type — instantiates every engine.
//
// `NativeVec<T, N>` selects the intrinsic type when one exists for (T, N)
// and the scalar type otherwise.  Because both families expose the identical
// interface, every temporal-vectorization kernel can be instantiated with
// the scalar backend and compared lane for lane against the intrinsic path.
//
// Floating-point determinism: kernels and the scalar reference engines
// evaluate stencils in one canonical order using fused multiply-add
// (`fma(a, b, acc)`), so vector kernels and the scalar oracle produce
// bit-identical results.  The test suite relies on this.
#pragma once

#include <array>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace tvs::simd {

// ---------------------------------------------------------------------------
// Scalar implementation: any arithmetic T, any N >= 1.
// ---------------------------------------------------------------------------
template <class T, int N>
struct ScalarVec {
  static_assert(std::is_arithmetic_v<T>);
  static_assert(N >= 1);
  using value_type = T;
  static constexpr int lanes = N;

  std::array<T, N> v{};

  static ScalarVec load(const T* p) {
    ScalarVec r;
    std::memcpy(r.v.data(), p, sizeof(T) * N);
    return r;
  }
  static ScalarVec loadu(const T* p) { return load(p); }
  void store(T* p) const { std::memcpy(p, v.data(), sizeof(T) * N); }
  void storeu(T* p) const { store(p); }

  static ScalarVec set1(T x) {
    ScalarVec r;
    r.v.fill(x);
    return r;
  }
  static ScalarVec zero() { return set1(T{0}); }

  T operator[](int i) const { return v[static_cast<std::size_t>(i)]; }

  template <int I>
  [[nodiscard]] T extract() const {
    static_assert(I >= 0 && I < N);
    return v[I];
  }
  template <int I>
  [[nodiscard]] ScalarVec insert(T x) const {
    static_assert(I >= 0 && I < N);
    ScalarVec r = *this;
    r.v[I] = x;
    return r;
  }

  friend ScalarVec operator+(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend ScalarVec operator-(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend ScalarVec operator*(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
};

// ---- Free functions (the intrinsic types provide non-template overloads) --

// acc + a*b with a single rounding for floating T (matches vfmadd).
template <class T, int N>
inline ScalarVec<T, N> fma(ScalarVec<T, N> a, ScalarVec<T, N> b,
                           ScalarVec<T, N> acc) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) {
    if constexpr (std::is_floating_point_v<T>)
      r.v[i] = std::fma(a.v[i], b.v[i], acc.v[i]);
    else
      r.v[i] = static_cast<T>(a.v[i] * b.v[i] + acc.v[i]);
  }
  return r;
}

template <class T, int N>
inline ScalarVec<T, N> min(ScalarVec<T, N> a, ScalarVec<T, N> b) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
template <class T, int N>
inline ScalarVec<T, N> max(ScalarVec<T, N> a, ScalarVec<T, N> b) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}

// Lane-wise equality producing an all-ones / all-zeros mask in T's bit
// width (the AVX2 convention).
template <class T, int N>
inline ScalarVec<T, N> cmpeq(ScalarVec<T, N> a, ScalarVec<T, N> b) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) {
    using U = std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;
    U bits = a.v[i] == b.v[i] ? ~U{0} : U{0};
    std::memcpy(&r.v[i], &bits, sizeof(T));
  }
  return r;
}

// Per-lane select on the mask's sign bit: set -> b, clear -> a (vblendv).
template <class T, int N>
inline ScalarVec<T, N> blendv(ScalarVec<T, N> a, ScalarVec<T, N> b,
                              ScalarVec<T, N> mask) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) {
    using U = std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;
    U bits;
    std::memcpy(&bits, &mask.v[i], sizeof(T));
    r.v[i] = (bits >> (sizeof(T) * 8 - 1)) ? b.v[i] : a.v[i];
  }
  return r;
}

// result lane i = src lane (i-1+N)%N : values move toward higher lanes,
// the top lane wraps to lane 0.
template <class T, int N>
inline ScalarVec<T, N> rotate_up(ScalarVec<T, N> a) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[(i + N - 1) % N];
  return r;
}

// result lane i = src lane (i+1)%N : values move toward lane 0.
template <class T, int N>
inline ScalarVec<T, N> rotate_down(ScalarVec<T, N> a) {
  ScalarVec<T, N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[(i + 1) % N];
  return r;
}

// The temporal-vectorization reorganization (Algorithm 3, lines 13-14):
// {x, a0, a1, ..., a_{N-2}} — the old top lane a_{N-1} is discarded (the
// caller extracts it first) and a fresh bottom element enters lane 0.
template <class T, int N>
inline ScalarVec<T, N> shift_in_low(ScalarVec<T, N> a, T x) {
  ScalarVec<T, N> r;
  r.v[0] = x;
  for (int i = 1; i < N; ++i) r.v[i] = a.v[i - 1];
  return r;
}

// Top lane (the finished a^{t+vl} value in an output vector).
template <class V>
inline typename V::value_type top_lane(V a) {
  return a.template extract<V::lanes - 1>();
}

}  // namespace tvs::simd

#if defined(__AVX2__)
#include "simd/vec_avx2.hpp"  // IWYU pragma: keep
#endif
#if defined(__AVX512F__)
#include "simd/vec_avx512.hpp"  // IWYU pragma: keep
#endif

namespace tvs::simd {

namespace detail {
template <class T, int N>
struct native_vec {
  using type = ScalarVec<T, N>;
};
#if defined(__AVX2__)
template <>
struct native_vec<double, 4> {
  using type = VecD4;
};
template <>
struct native_vec<float, 8> {
  using type = VecF8;
};
template <>
struct native_vec<std::int32_t, 8> {
  using type = VecI8;
};
#endif
#if defined(__AVX512F__)
template <>
struct native_vec<double, 8> {
  using type = VecD8;
};
template <>
struct native_vec<float, 16> {
  using type = VecF16;
};
template <>
struct native_vec<std::int32_t, 16> {
  using type = VecI16;
};
#endif
}  // namespace detail

// The preferred vector type for (T, N) on this build: intrinsic when
// available, scalar otherwise.
template <class T, int N>
using NativeVec = typename detail::native_vec<T, N>::type;

// ---------------------------------------------------------------------------
// Compile-time interface contracts.  The temporal engines are written
// against exactly this surface — everything derived from V::lanes and
// V::value_type — so a vector type that drifts from it must fail here, at
// the definition site, rather than as a run-time miscompare deep inside
// width_property.  tvslint rule R4 polices the call sites; these contracts
// police the types.
// ---------------------------------------------------------------------------
template <class V>
concept LaneGeneric = requires(V a, V b, const typename V::value_type* src,
                               typename V::value_type* dst,
                               typename V::value_type x) {
  requires std::is_arithmetic_v<typename V::value_type>;
  { V::lanes } -> std::convertible_to<int>;
  { V::load(src) } -> std::same_as<V>;
  { V::loadu(src) } -> std::same_as<V>;
  { a.store(dst) };
  { a.storeu(dst) };
  { V::set1(x) } -> std::same_as<V>;
  { V::zero() } -> std::same_as<V>;
  { a[0] } -> std::convertible_to<typename V::value_type>;
  { a.template extract<0>() } -> std::same_as<typename V::value_type>;
  { a.template insert<0>(x) } -> std::same_as<V>;
  { a + b } -> std::same_as<V>;
  { a - b } -> std::same_as<V>;
  { a * b } -> std::same_as<V>;
  { fma(a, b, b) } -> std::same_as<V>;
  { min(a, b) } -> std::same_as<V>;
  { max(a, b) } -> std::same_as<V>;
  { cmpeq(a, b) } -> std::same_as<V>;
  { blendv(a, b, b) } -> std::same_as<V>;
  { rotate_up(a) } -> std::same_as<V>;
  { rotate_down(a) } -> std::same_as<V>;
  { shift_in_low(a, x) } -> std::same_as<V>;
  { top_lane(a) } -> std::same_as<typename V::value_type>;
};

// Storage layout: a vector is exactly its lanes — no padding, and a
// power-of-two lane count (the ring/slot modular arithmetic and the
// aligned-buffer sizing both assume it).
template <class V>
inline constexpr bool lane_layout_ok =
    V::lanes > 0 && (V::lanes & (V::lanes - 1)) == 0 &&
    sizeof(V) ==
        sizeof(typename V::value_type) * static_cast<std::size_t>(V::lanes);

// Every type NativeVec can resolve to, at every lane width the registry
// registers, on every backend.
static_assert(LaneGeneric<ScalarVec<double, 4>>);
static_assert(LaneGeneric<ScalarVec<double, 8>>);
static_assert(LaneGeneric<ScalarVec<float, 8>>);
static_assert(LaneGeneric<ScalarVec<float, 16>>);
static_assert(LaneGeneric<ScalarVec<std::int32_t, 8>>);
static_assert(LaneGeneric<ScalarVec<std::int32_t, 16>>);
static_assert(lane_layout_ok<ScalarVec<double, 4>> &&
              lane_layout_ok<ScalarVec<double, 8>> &&
              lane_layout_ok<ScalarVec<float, 8>> &&
              lane_layout_ok<ScalarVec<float, 16>> &&
              lane_layout_ok<ScalarVec<std::int32_t, 8>> &&
              lane_layout_ok<ScalarVec<std::int32_t, 16>>);
#if defined(__AVX2__)
static_assert(LaneGeneric<VecD4> && lane_layout_ok<VecD4>);
static_assert(LaneGeneric<VecF8> && lane_layout_ok<VecF8>);
static_assert(LaneGeneric<VecI8> && lane_layout_ok<VecI8>);
#endif
#if defined(__AVX512F__)
static_assert(LaneGeneric<VecD8> && lane_layout_ok<VecD8>);
static_assert(LaneGeneric<VecF16> && lane_layout_ok<VecF16>);
static_assert(LaneGeneric<VecI16> && lane_layout_ok<VecI16>);
#endif

}  // namespace tvs::simd
