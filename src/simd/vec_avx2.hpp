// AVX2 implementations of the Vec interface: `VecD4` (double x 4, the
// paper's vl = 4 double-precision shape), `VecF8` (float x 8 — twice the
// lanes per register, the regime where temporal vectorization's speedup
// scales with vl) and `VecI8` (int32 x 8, used by the Game-of-Life and LCS
// kernels).  Included by `vec.hpp` when __AVX2__ is defined; do not include
// directly.
#pragma once

#if !defined(__AVX2__)
#error "vec_avx2.hpp requires AVX2; include simd/vec.hpp instead"
#endif

#include <immintrin.h>

#include <cstdint>

namespace tvs::simd {

// ---------------------------------------------------------------------------
// double x 4
// ---------------------------------------------------------------------------
struct VecD4 {
  using value_type = double;
  static constexpr int lanes = 4;

  __m256d r;

  VecD4() : r(_mm256_setzero_pd()) {}
  explicit VecD4(__m256d x) : r(x) {}

  static VecD4 load(const double* p) { return VecD4{_mm256_load_pd(p)}; }
  static VecD4 loadu(const double* p) { return VecD4{_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_store_pd(p, r); }
  void storeu(double* p) const { _mm256_storeu_pd(p, r); }

  static VecD4 set1(double x) { return VecD4{_mm256_set1_pd(x)}; }
  static VecD4 zero() { return VecD4{_mm256_setzero_pd()}; }

  double operator[](int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] double extract() const {
    static_assert(I >= 0 && I < 4);
    if constexpr (I == 0) {
      return _mm256_cvtsd_f64(r);
    } else if constexpr (I < 2) {
      return _mm256_cvtsd_f64(_mm256_permute_pd(r, 1));
    } else {
      const __m128d hi = _mm256_extractf128_pd(r, 1);
      if constexpr (I == 2) return _mm_cvtsd_f64(hi);
      return _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    }
  }

  template <int I>
  [[nodiscard]] VecD4 insert(double x) const {
    static_assert(I >= 0 && I < 4);
    return VecD4{_mm256_blend_pd(r, _mm256_set1_pd(x), 1 << I)};
  }

  friend VecD4 operator+(VecD4 a, VecD4 b) { return VecD4{_mm256_add_pd(a.r, b.r)}; }
  friend VecD4 operator-(VecD4 a, VecD4 b) { return VecD4{_mm256_sub_pd(a.r, b.r)}; }
  friend VecD4 operator*(VecD4 a, VecD4 b) { return VecD4{_mm256_mul_pd(a.r, b.r)}; }
};

inline VecD4 fma(VecD4 a, VecD4 b, VecD4 acc) {
  return VecD4{_mm256_fmadd_pd(a.r, b.r, acc.r)};
}
inline VecD4 min(VecD4 a, VecD4 b) { return VecD4{_mm256_min_pd(a.r, b.r)}; }
inline VecD4 max(VecD4 a, VecD4 b) { return VecD4{_mm256_max_pd(a.r, b.r)}; }
inline VecD4 cmpeq(VecD4 a, VecD4 b) {
  return VecD4{_mm256_cmp_pd(a.r, b.r, _CMP_EQ_OQ)};
}
inline VecD4 blendv(VecD4 a, VecD4 b, VecD4 mask) {
  return VecD4{_mm256_blendv_pd(a.r, b.r, mask.r)};
}

// {a3, a0, a1, a2} — one lane-crossing permute (vpermpd).
inline VecD4 rotate_up(VecD4 a) {
  return VecD4{_mm256_permute4x64_pd(a.r, 0x93)};
}
// {a1, a2, a3, a0}
inline VecD4 rotate_down(VecD4 a) {
  return VecD4{_mm256_permute4x64_pd(a.r, 0x39)};
}
// {x, a0, a1, a2}: the Algorithm-3 rotate + blend pair.
inline VecD4 shift_in_low(VecD4 a, double x) {
  return VecD4{_mm256_blend_pd(_mm256_permute4x64_pd(a.r, 0x93),
                               _mm256_set1_pd(x), 0x1)};
}

// ---------------------------------------------------------------------------
// float x 8
// ---------------------------------------------------------------------------
struct VecF8 {
  using value_type = float;
  static constexpr int lanes = 8;

  __m256 r;

  VecF8() : r(_mm256_setzero_ps()) {}
  explicit VecF8(__m256 x) : r(x) {}

  static VecF8 load(const float* p) { return VecF8{_mm256_load_ps(p)}; }
  static VecF8 loadu(const float* p) { return VecF8{_mm256_loadu_ps(p)}; }
  void store(float* p) const { _mm256_store_ps(p, r); }
  void storeu(float* p) const { _mm256_storeu_ps(p, r); }

  static VecF8 set1(float x) { return VecF8{_mm256_set1_ps(x)}; }
  static VecF8 zero() { return VecF8{_mm256_setzero_ps()}; }

  float operator[](int i) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] float extract() const {
    static_assert(I >= 0 && I < 8);
    if constexpr (I == 0) {
      return _mm256_cvtss_f32(r);
    } else {
      const __m256 sh = _mm256_permutevar8x32_ps(r, _mm256_set1_epi32(I));
      return _mm256_cvtss_f32(sh);
    }
  }
  template <int I>
  [[nodiscard]] VecF8 insert(float x) const {
    static_assert(I >= 0 && I < 8);
    return VecF8{_mm256_blend_ps(r, _mm256_set1_ps(x), 1 << I)};
  }

  friend VecF8 operator+(VecF8 a, VecF8 b) { return VecF8{_mm256_add_ps(a.r, b.r)}; }
  friend VecF8 operator-(VecF8 a, VecF8 b) { return VecF8{_mm256_sub_ps(a.r, b.r)}; }
  friend VecF8 operator*(VecF8 a, VecF8 b) { return VecF8{_mm256_mul_ps(a.r, b.r)}; }
};

inline VecF8 fma(VecF8 a, VecF8 b, VecF8 acc) {
  return VecF8{_mm256_fmadd_ps(a.r, b.r, acc.r)};
}
inline VecF8 min(VecF8 a, VecF8 b) { return VecF8{_mm256_min_ps(a.r, b.r)}; }
inline VecF8 max(VecF8 a, VecF8 b) { return VecF8{_mm256_max_ps(a.r, b.r)}; }
inline VecF8 cmpeq(VecF8 a, VecF8 b) {
  return VecF8{_mm256_cmp_ps(a.r, b.r, _CMP_EQ_OQ)};
}
inline VecF8 blendv(VecF8 a, VecF8 b, VecF8 mask) {
  return VecF8{_mm256_blendv_ps(a.r, b.r, mask.r)};
}

namespace detail {
inline __m256i rotidxf_up() { return _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6); }
inline __m256i rotidxf_down() { return _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0); }
}  // namespace detail

inline VecF8 rotate_up(VecF8 a) {
  return VecF8{_mm256_permutevar8x32_ps(a.r, detail::rotidxf_up())};
}
inline VecF8 rotate_down(VecF8 a) {
  return VecF8{_mm256_permutevar8x32_ps(a.r, detail::rotidxf_down())};
}
inline VecF8 shift_in_low(VecF8 a, float x) {
  return VecF8{_mm256_blend_ps(
      _mm256_permutevar8x32_ps(a.r, detail::rotidxf_up()),
      _mm256_set1_ps(x), 0x1)};
}

// ---------------------------------------------------------------------------
// int32 x 8
// ---------------------------------------------------------------------------
struct VecI8 {
  using value_type = std::int32_t;
  static constexpr int lanes = 8;

  __m256i r;

  VecI8() : r(_mm256_setzero_si256()) {}
  explicit VecI8(__m256i x) : r(x) {}

  static VecI8 load(const std::int32_t* p) {
    return VecI8{_mm256_load_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static VecI8 loadu(const std::int32_t* p) {
    return VecI8{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::int32_t* p) const {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), r);
  }
  void storeu(std::int32_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), r);
  }

  static VecI8 set1(std::int32_t x) { return VecI8{_mm256_set1_epi32(x)}; }
  static VecI8 zero() { return VecI8{_mm256_setzero_si256()}; }

  std::int32_t operator[](int i) const {
    alignas(32) std::int32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), r);
    return tmp[i];
  }

  template <int I>
  [[nodiscard]] std::int32_t extract() const {
    static_assert(I >= 0 && I < 8);
    return _mm256_extract_epi32(r, I);
  }
  template <int I>
  [[nodiscard]] VecI8 insert(std::int32_t x) const {
    static_assert(I >= 0 && I < 8);
    return VecI8{_mm256_blend_epi32(r, _mm256_set1_epi32(x), 1 << I)};
  }

  friend VecI8 operator+(VecI8 a, VecI8 b) { return VecI8{_mm256_add_epi32(a.r, b.r)}; }
  friend VecI8 operator-(VecI8 a, VecI8 b) { return VecI8{_mm256_sub_epi32(a.r, b.r)}; }
  friend VecI8 operator*(VecI8 a, VecI8 b) { return VecI8{_mm256_mullo_epi32(a.r, b.r)}; }
};

inline VecI8 fma(VecI8 a, VecI8 b, VecI8 acc) { return a * b + acc; }
inline VecI8 min(VecI8 a, VecI8 b) { return VecI8{_mm256_min_epi32(a.r, b.r)}; }
inline VecI8 max(VecI8 a, VecI8 b) { return VecI8{_mm256_max_epi32(a.r, b.r)}; }
inline VecI8 cmpeq(VecI8 a, VecI8 b) {
  return VecI8{_mm256_cmpeq_epi32(a.r, b.r)};
}
inline VecI8 blendv(VecI8 a, VecI8 b, VecI8 mask) {
  return VecI8{_mm256_blendv_epi8(a.r, b.r, mask.r)};
}

namespace detail {
inline __m256i rotidx_up() { return _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6); }
inline __m256i rotidx_down() { return _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0); }
}  // namespace detail

inline VecI8 rotate_up(VecI8 a) {
  return VecI8{_mm256_permutevar8x32_epi32(a.r, detail::rotidx_up())};
}
inline VecI8 rotate_down(VecI8 a) {
  return VecI8{_mm256_permutevar8x32_epi32(a.r, detail::rotidx_down())};
}
inline VecI8 shift_in_low(VecI8 a, std::int32_t x) {
  return VecI8{_mm256_blend_epi32(
      _mm256_permutevar8x32_epi32(a.r, detail::rotidx_up()),
      _mm256_set1_epi32(x), 0x1)};
}

}  // namespace tvs::simd
