// tvsrace fixture: C2 positive.  A mutex-owning class whose fields are
// touched both with and without the lock.
#include <map>
#include <mutex>
#include <string>

class Store {
 public:
  int get(const std::string& k) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++reads_;          // locked: fine
    return vals_[k];   // locked: fine
  }
  void put_unlocked(const std::string& k, int v) {
    vals_[k] = v;  // no lock held -> C2
    ++writes_;     // no lock held -> C2
  }

 private:
  std::mutex mu_;
  std::map<std::string, int> vals_;
  long reads_ = 0;
  long writes_ = 0;
};

int c2_unlocked(Store& s) {
  s.put_unlocked("x", 1);
  return s.get("x");
}
