// tvsrace fixture: C1 positives.  A parallel region writing shared state
// with no reduction, no critical section, no partition proof.
#include <vector>

int c1_shared_write(const std::vector<int>& in, int n) {
  int sum = 0;
  int last = 0;
  double* buf = new double[in.size()];
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    sum += in[static_cast<unsigned long>(i)];  // racy accumulate -> C1
    last = i;                                  // racy scalar write -> C1
    buf[0] = 1.0;                              // unpartitioned write -> C1
  }
  delete[] buf;
  return sum + last;
}
