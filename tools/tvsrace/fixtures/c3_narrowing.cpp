// tvsrace fixture: C3 positives.  Grid size/offset values narrowed into
// int/unsigned on their way to offset arithmetic.
#include <cstddef>
#include <vector>

struct GridLike {
  std::ptrdiff_t nx_ = 0;
  std::ptrdiff_t size() const { return nx_ + 2; }
  std::ptrdiff_t offset(std::ptrdiff_t x) const { return x + 1; }
  std::ptrdiff_t stride() const { return nx_ + 2; }
};

std::ptrdiff_t linear_offset(std::ptrdiff_t x, std::ptrdiff_t y,
                             std::ptrdiff_t ldim) {
  return y * ldim + x;
}

int c3_narrowing(const GridLike& g, const std::vector<double>& v) {
  const int n = static_cast<int>(g.size());           // narrowing -> C3
  const int off = static_cast<int>(g.offset(3));      // narrowing -> C3
  const unsigned s = static_cast<unsigned>(g.stride());  // -> C3
  int lin = static_cast<int>(linear_offset(1, 2, g.stride()));  // -> C3
  return n + off + static_cast<int>(s) + lin +
         static_cast<int>(v.size());  // narrowing -> C3
}
