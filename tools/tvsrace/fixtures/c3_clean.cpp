// tvsrace fixture: C3 negatives.  Offset arithmetic kept in
// std::ptrdiff_t, checked narrowing through util::checked_int, and one
// justified allow() suppression.
#include <cstddef>
#include <vector>

namespace util {
template <class From>
constexpr int checked_int(From v) {
  return static_cast<int>(v);
}
}  // namespace util

struct GridLike2 {
  std::ptrdiff_t nx_ = 0;
  std::ptrdiff_t size() const { return nx_ + 2; }
  std::ptrdiff_t offset(std::ptrdiff_t x) const { return x + 1; }
};

std::ptrdiff_t c3_clean(const GridLike2& g, const std::vector<double>& v) {
  const std::ptrdiff_t n = g.size();                  // stays wide: fine
  const int nn = util::checked_int(g.size());         // checked: fine
  const std::ptrdiff_t off = g.offset(n - 1);         // stays wide: fine
  // Loop trip counts are bounded by the 2-element fixture grid.
  // tvsrace: allow(C3)
  const int tiny = static_cast<int>(g.offset(0));
  return n + nn + off + tiny + static_cast<std::ptrdiff_t>(v.size());
}
