// tvsrace fixture: a partitioned() annotation that names the wrong
// variable.  The certification must be rejected (and the underlying
// finding must survive).
#include <vector>

void c1_bad_partition(std::vector<double>& acc) {
  const int j = 3;
  // tvsrace: partitioned(j)
#pragma omp parallel for
  for (int i = 0; i < 64; ++i) {
    acc[static_cast<unsigned long>(j)] = i;  // not partitioned by i -> C1
  }
}
