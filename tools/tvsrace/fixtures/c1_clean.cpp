// tvsrace fixture: C1 negatives.  Every write in the region is provably
// private, reduced, induction-partitioned, or inside a critical section.
#include <vector>

extern int omp_get_thread_num();

int c1_clean(std::vector<int>& out, const std::vector<int>& in, int nt) {
  int sum = 0;
  int rare = 0;
  std::vector<int> per_thread(static_cast<unsigned long>(nt), 0);
#pragma omp parallel for reduction(+ : sum)
  for (int i = 0; i < 1024; ++i) {
    int local = in[static_cast<unsigned long>(i)];  // region-local: private
    sum += local;                                   // reduction clause
    out[static_cast<unsigned long>(i)] = local;     // indexed by i
    int& mine = per_thread[static_cast<unsigned long>(omp_get_thread_num())];
    mine += local;  // per-thread slot
    if (local < 0) {
#pragma omp critical
      rare = local;  // shared write, but inside a critical section
    }
  }
  return sum + rare;
}
