// tvsrace fixture: C2 negatives.  Locked accesses plus one function whose
// caller contract is declared with guarded_by_caller.
#include <map>
#include <mutex>
#include <string>

class Registry {
 public:
  void put(const std::string& k, int v) {
    const std::lock_guard<std::mutex> lock(mu_);
    vals_[k] = v;
    ++writes_;
  }
  int get(const std::string& k) {
    const std::lock_guard<std::mutex> lock(mu_);
    return vals_[k];
  }
  std::mutex& mutex() { return mu_; }

  // Callers iterate while holding mutex() across multiple calls.
  // tvsrace: guarded_by_caller
  long writes_locked() const { return writes_; }

 private:
  std::mutex mu_;
  std::map<std::string, int> vals_;
  long writes_ = 0;
};

long c2_clean(Registry& r) {
  r.put("x", 1);
  const std::lock_guard<std::mutex> lock(r.mutex());
  return r.writes_locked();
}
