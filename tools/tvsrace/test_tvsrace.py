#!/usr/bin/env python3
"""Fixture tests for tvsrace: every seeded-violation fixture must trip
exactly its intended rule group, every clean fixture (which exercises the
annotation grammar) must pass, a wrong partitioned() name must be
rejected, stripping a real in-tree partitioned() annotation must resurface
the findings it certifies, and a missing --compile-commands path must be a
usage error (exit 2).

Run directly (python3 tools/tvsrace/test_tvsrace.py) or via the
`tvsrace_fixtures` CTest entry.
"""

import contextlib
import io
import os
import re
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, HERE)

import tvsrace  # noqa: E402


def run_race(argv):
    """Invoke tvsrace.main, returning (exit_code, [(path, line, rule)])."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = tvsrace.main(argv + ["-q", "--mode", "regex"])
    findings = []
    for line in out.getvalue().splitlines():
        m = re.match(r"(.+):(\d+): \[(C\d)\] ", line)
        if m:
            findings.append((m.group(1), int(m.group(2)), m.group(3)))
    return code, findings


def fixture(name):
    return os.path.join(FIXTURES, name)


class C1OmpSharing(unittest.TestCase):
    def test_shared_writes_trip_c1(self):
        # A racy reduction-less accumulate, a racy scalar write, and an
        # unpartitioned write through a shared pointer.
        code, findings = run_race([fixture("c1_shared_write.cpp")])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"C1"})
        self.assertEqual(sorted(f[1] for f in findings), [11, 12, 13])

    def test_clean_region_passes(self):
        # reduction clause, region-local temps, induction-indexed writes,
        # omp_get_thread_num() slots and a critical section: no findings.
        code, findings = run_race([fixture("c1_clean.cpp")])
        self.assertEqual(findings, [])
        self.assertEqual(code, 0)

    def test_wrong_partition_name_is_rejected(self):
        # partitioned(j) on a loop parallel over i: the certification is
        # refused AND the underlying unpartitioned write still reported.
        code, findings = run_race([fixture("c1_bad_partition.cpp")])
        self.assertEqual(code, 1)
        lines = sorted(f[1] for f in findings)
        self.assertIn(9, lines)   # the bad annotation (pragma line)
        self.assertIn(11, lines)  # the surviving write finding

    def test_stripping_a_real_annotation_resurfaces_findings(self):
        # Liveness against the actual tree: the wavefront LCS driver is
        # certified by `// tvsrace: partitioned(bi)`; removing it must
        # bring back C1 findings on the row/col segment writes.
        src = os.path.join(REPO, "src", "tiling", "lcs_wavefront.cpp")
        with open(src, "r", encoding="utf-8") as f:
            text = f.read()
        self.assertIn("tvsrace: partitioned(bi)", text)
        with tempfile.TemporaryDirectory() as td:
            fixdir = os.path.join(td, "fixtures")
            os.makedirs(fixdir)
            stripped = os.path.join(fixdir, "lcs_wavefront.cpp")
            with open(stripped, "w", encoding="utf-8") as f:
                f.write(text.replace("// tvsrace: partitioned(bi)", ""))
            code, findings = run_race([stripped])
            self.assertEqual(code, 1)
            self.assertEqual({f[2] for f in findings}, {"C1"})
            self.assertGreaterEqual(len(findings), 3)


class C2LockDiscipline(unittest.TestCase):
    def test_unlocked_field_access_trips_c2(self):
        code, findings = run_race([fixture("c2_unlocked.cpp")])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"C2"})
        self.assertEqual(sorted(f[1] for f in findings), [15, 16])

    def test_locked_and_guarded_accesses_pass(self):
        # lock_guard scopes plus one guarded_by_caller method.
        code, findings = run_race([fixture("c2_clean.cpp")])
        self.assertEqual(findings, [])
        self.assertEqual(code, 0)


class C3IndexNarrowing(unittest.TestCase):
    def test_narrowing_casts_trip_c3(self):
        code, findings = run_race([fixture("c3_narrowing.cpp")])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"C3"})
        self.assertEqual(sorted(f[1] for f in findings), [19, 20, 21, 22, 24])

    def test_checked_int_and_allow_pass(self):
        # ptrdiff_t end-to-end, util::checked_int routing, and one
        # explicit allow(C3) suppression: no findings.
        code, findings = run_race([fixture("c3_clean.cpp")])
        self.assertEqual(findings, [])
        self.assertEqual(code, 0)


class DriverBehavior(unittest.TestCase):
    def test_missing_compile_commands_is_usage_error(self):
        code, findings = run_race(
            [fixture("c1_clean.cpp"),
             "--compile-commands", os.path.join(HERE, "no_such_db.json")])
        self.assertEqual(code, 2)
        self.assertEqual(findings, [])

    def test_rule_subset_masks_findings(self):
        # The C1 fixture is clean under --rules C2,C3.
        code, findings = run_race(
            [fixture("c1_shared_write.cpp"), "--rules", "C2,C3"])
        self.assertEqual(findings, [])
        self.assertEqual(code, 0)

    def test_list_rules(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = tvsrace.main(["--list-rules"])
        self.assertEqual(code, 0)
        for rid in ("C1", "C2", "C3"):
            self.assertIn(rid, out.getvalue())

    def test_tree_scan_is_clean(self):
        # The repository itself must analyze clean: every in-tree
        # annotation is justified and no unproven sharing remains.
        code, findings = run_race(["--repo", REPO])
        self.assertEqual(findings, [])
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
