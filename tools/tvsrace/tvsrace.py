#!/usr/bin/env python3
"""tvsrace - concurrency + index-safety static analysis for the tvs repo.

Where tvslint mechanizes the kernel/dispatch architecture invariants,
tvsrace mechanizes the *parallelism and index-arithmetic* invariants: the
OpenMP sharing discipline of the tiling drivers, the lock discipline of
mutex-holding classes, and the no-narrowing rule for values that flow into
grid offset arithmetic.

  C1  omp-sharing      every write to (or mutable use of) shared state
                       inside an `#pragma omp parallel` region must be
                       provably private, covered by a reduction/critical/
                       atomic/single/master construct, indexed by the
                       parallel loop variable, per-thread via
                       omp_get_thread_num(), or certified by a
                       `// tvsrace: partitioned(<var>)` annotation naming
                       the parallel index (the wavefront "owned diagonal"
                       pattern)
  C2  lock-discipline  every access to a data member of a class that owns
                       a std::mutex happens while that mutex is held
                       (lock_guard / scoped_lock / unique_lock / .lock()
                       in scope) or inside a function annotated
                       `// tvsrace: guarded_by_caller`
  C3  index-narrowing  grid offset arithmetic stays std::ptrdiff_t
                       end-to-end: no static_cast / C-cast / initializer
                       narrowing of .size()/.offset()/.stride()/
                       linear_offset() results (or ptrdiff_t-typed values)
                       into int/unsigned/short - route provably-small
                       values through util::checked_int instead

Annotation grammar (a comment on the flagged line or the line above):
  // tvsrace: allow(C1[,C2...])   suppress specific rules on one line
  // tvsrace: partitioned(k)      certify an omp region whose shared
                                  writes are partitioned by parallel
                                  index k (must name the actual index)
  // tvsrace: guarded_by_caller   this function requires its caller to
                                  hold the owning mutex

Scope: C1 scans src/tiling/ and src/tv/; C2 scans all of src/; C3 scans
src/grid/, src/tiling/ and src/tv/.  Files under a fixtures/ directory
(the analyzer's own test corpus) are in scope for every rule.

Front ends: with the `clang` python bindings and a loadable libclang the
files are tokenized by clang's lexer, taking per-file -I/-D/-std flags
from the exported compile_commands.json (`--mode clang`); otherwise a
comment/string-aware regex scanner is used (`--mode regex`).  Both feed
the same rule logic.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import re
import shlex
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

RULES = {
    "C1": "omp-sharing: unproven write/mutable access to shared state in "
          "an omp parallel region",
    "C2": "lock-discipline: field of a mutex-owning class accessed "
          "without holding the mutex",
    "C3": "index-narrowing: grid offset/size value narrowed to "
          "int/unsigned/short outside util::checked_int",
}

ALLOW_RE = re.compile(r"tvsrace:\s*allow\(([^)]*)\)")
PART_RE = re.compile(r"tvsrace:\s*partitioned\(\s*(\w+)\s*\)")
GUARD_RE = re.compile(r"tvsrace:\s*guarded_by_caller\b")


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """One lexed file.  `scan_lines` has comments and string/char literal
    contents blanked; annotations found in comments are recorded against
    the comment's starting line."""

    path: str
    scan_lines: List[str] = field(default_factory=list)
    allowed: Dict[int, Set[str]] = field(default_factory=dict)
    partitioned: Dict[int, str] = field(default_factory=dict)
    guarded: Set[int] = field(default_factory=set)

    def is_allowed(self, line: int, rule: str) -> bool:
        # An annotation covers its own line and, when it stands alone, the
        # line below it.
        for cand in (line, line - 1):
            if rule in self.allowed.get(cand, set()):
                return True
        return False

    def partition_var(self, line: int) -> Optional[str]:
        for cand in (line, line - 1):
            if cand in self.partitioned:
                return self.partitioned[cand]
        return None

    def is_guarded(self, line: int) -> bool:
        return line in self.guarded or (line - 1) in self.guarded


# ---------------------------------------------------------------------------
# Lexing front ends (tvslint's scanner, extended with the extra marks)
# ---------------------------------------------------------------------------

def _record_marks(sf: SourceFile, text: str, line: int) -> None:
    for m in ALLOW_RE.finditer(text):
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        sf.allowed.setdefault(line, set()).update(rules)
    for m in PART_RE.finditer(text):
        sf.partitioned[line] = m.group(1)
    if GUARD_RE.search(text):
        sf.guarded.add(line)


def lex_regex(path: str, display_path: str) -> SourceFile:
    """Comment/string-aware scanner.  Handles //, /* */, "..." and '...'
    (with escapes); raw strings are not used in this codebase."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    sf = SourceFile(display_path)
    scan_out: List[str] = []
    scan_cur: List[str] = []
    line = 1
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    comment_start = 1
    comment_buf: List[str] = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, comment_start, comment_buf = "line_comment", line, []
                i += 2
                continue
            if c == "/" and nxt == "*":
                state, comment_start, comment_buf = "block_comment", line, []
                i += 2
                continue
            if c == '"':
                state = "dquote"
                scan_cur.append('"')
                i += 1
                continue
            if c == "'":
                state = "squote"
                scan_cur.append("'")
                i += 1
                continue
            if c == "\n":
                scan_out.append("".join(scan_cur))
                scan_cur = []
                line += 1
            else:
                scan_cur.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                _record_marks(sf, "".join(comment_buf), comment_start)
                scan_out.append("".join(scan_cur))
                scan_cur = []
                line += 1
                state = "code"
            else:
                comment_buf.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                _record_marks(sf, "".join(comment_buf), comment_start)
                state = "code"
                i += 2
                continue
            if c == "\n":
                scan_out.append("".join(scan_cur))
                scan_cur = []
                line += 1
            else:
                comment_buf.append(c)
            i += 1
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                scan_cur.append(quote)
                state = "code"
            elif c == "\n":  # unterminated literal: recover per line
                scan_out.append("".join(scan_cur))
                scan_cur = []
                line += 1
                state = "code"
            i += 1
    if state in ("line_comment", "block_comment"):
        _record_marks(sf, "".join(comment_buf), comment_start)
    scan_out.append("".join(scan_cur))
    sf.scan_lines = scan_out
    return sf


def lex_clang(path: str, display_path: str, index,
              extra_args: Sequence[str]) -> SourceFile:
    """Tokenize with clang's lexer; comments become annotation records and
    everything else is reassembled into per-line scan text."""
    import clang.cindex as ci

    tu = index.parse(
        path,
        args=list(extra_args) + ["-fsyntax-only"],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
    )
    sf = SourceFile(display_path)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        nlines = f.read().count("\n") + 1
    scan: List[List[str]] = [[] for _ in range(nlines + 1)]
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        loc = tok.location
        if loc.file is None or loc.file.name != path:
            continue
        if tok.kind == ci.TokenKind.COMMENT:
            _record_marks(sf, tok.spelling, loc.line)
            continue
        if tok.kind == ci.TokenKind.LITERAL and (
                '"' in tok.spelling or "'" in tok.spelling):
            scan[loc.line].append('""')
        else:
            scan[loc.line].append(tok.spelling)
    sf.scan_lines = [" ".join(row) for row in scan[1:]]
    return sf


def load_cc_args(compile_commands: Optional[str]) -> Dict[str, List[str]]:
    """abs path -> the -I/-D/-std/-isystem flags of its TU entry."""
    db: Dict[str, List[str]] = {}
    if not compile_commands or not os.path.exists(compile_commands):
        return db
    with open(compile_commands, "r", encoding="utf-8") as f:
        for entry in json.load(f):
            ap = os.path.normpath(
                os.path.join(entry.get("directory", ""),
                             entry.get("file", "")))
            args = entry.get("arguments")
            if args is None:
                args = shlex.split(entry.get("command", ""))
            keep: List[str] = []
            take_next = False
            for a in args:
                if take_next:
                    keep.append(a)
                    take_next = False
                elif a in ("-I", "-D", "-isystem"):
                    keep.append(a)
                    take_next = True
                elif a.startswith(("-I", "-D", "-std=", "-isystem")):
                    keep.append(a)
            db[ap] = keep
    return db


def make_lexer(mode: str, cc_args: Dict[str, List[str]]):
    """Returns (lex_fn, resolved_mode)."""
    if mode in ("auto", "clang"):
        try:
            import clang.cindex as ci

            index = ci.Index.create()

            def lex(p: str, d: str) -> SourceFile:
                args = cc_args.get(os.path.normpath(p), ["-std=c++20"])
                if not any(a.startswith("-std=") for a in args):
                    args = args + ["-std=c++20"]
                return lex_clang(p, d, index, args)

            return lex, "clang"
        except Exception as exc:  # no bindings or no loadable libclang
            if mode == "clang":
                raise SystemExit(f"tvsrace: --mode clang unavailable: {exc}")
    return lex_regex, "regex"


# ---------------------------------------------------------------------------
# Flat-text utilities (both front ends feed line-preserving scan text; the
# structural passes work on one flat string with a line map)
# ---------------------------------------------------------------------------

class Flat:
    def __init__(self, sf: SourceFile):
        self.sf = sf
        self.text = "\n".join(sf.scan_lines)
        self.starts = [0]
        for ln in sf.scan_lines[:-1]:
            self.starts.append(self.starts[-1] + len(ln) + 1)

    def line_of(self, idx: int) -> int:
        return bisect.bisect_right(self.starts, idx)  # 1-based

    def idx_of_line(self, line: int) -> int:
        return self.starts[line - 1]


def match_forward(text: str, i: int, open_ch: str, close_ch: str) -> int:
    """Index of the bracket matching text[i] (which must be open_ch), or
    len(text) if unbalanced."""
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def stmt_extent(text: str, i: int) -> int:
    """End index (exclusive) of the statement starting at text[i]: a `{`
    block runs to its matching brace; otherwise to the first `;` at
    paren/brace depth 0 (so `for (...) for (...) stmt;` is one statement)."""
    n = len(text)
    while i < n and text[i] in " \t\n":
        i += 1
    if i >= n:
        return n
    pdepth = bdepth = 0
    j = i
    while j < n:
        c = text[j]
        if c in "([":
            pdepth += 1
        elif c in ")]":
            pdepth -= 1
        elif c == "{":
            bdepth += 1
        elif c == "}":
            bdepth -= 1
            if bdepth == 0:
                return j + 1
        elif c == ";" and pdepth == 0 and bdepth == 0:
            return j + 1
        j += 1
    return n


# ---------------------------------------------------------------------------
# Block structure (for enclosing-function headers, lock scopes, classes)
# ---------------------------------------------------------------------------

@dataclass
class Block:
    start: int        # flat index of '{'
    end: int          # flat index of matching '}' (exclusive of '}')
    header: str       # text between the previous ;/{/} and this '{'
    header_line: int  # line where the header text starts
    depth: int


CONTROL_KEYWORDS = {"if", "for", "while", "switch", "do", "else", "try",
                    "catch", "return"}


def parse_blocks(flat: Flat) -> List[Block]:
    text = flat.text
    blocks: List[Block] = []
    stack: List[Tuple[int, str, int]] = []
    last_cut = 0
    pdepth = 0
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in "([":
            pdepth += 1
        elif c in ")]":
            pdepth = max(0, pdepth - 1)
        elif c == ";" and pdepth == 0:
            last_cut = i + 1
        elif c == "{" and pdepth == 0:
            header = text[last_cut:i].strip()
            hstart = last_cut
            while hstart < i and text[hstart] in " \t\n":
                hstart += 1
            stack.append((i, header, flat.line_of(min(hstart, i))))
            last_cut = i + 1
        elif c == "}" and pdepth == 0:
            if stack:
                start, header, hline = stack.pop()
                blocks.append(Block(start, i, header, hline, len(stack)))
            last_cut = i + 1
        i += 1
    blocks.sort(key=lambda b: b.start)
    return blocks


def enclosing_blocks(blocks: List[Block], idx: int) -> List[Block]:
    """Blocks containing flat index idx, outermost first."""
    encl = [b for b in blocks if b.start < idx < b.end]
    encl.sort(key=lambda b: b.start)
    return encl


def first_word(header: str) -> str:
    m = re.match(r"\s*([A-Za-z_]\w*)", header)
    return m.group(1) if m else ""


def is_function_block(b: Block) -> bool:
    """A block whose header looks like a function/lambda definition (has a
    parameter list) rather than a control statement / class / namespace."""
    if "(" not in b.header:
        return False
    w = first_word(b.header)
    if w in CONTROL_KEYWORDS or w in ("namespace", "struct", "class",
                                      "enum", "union"):
        return False
    return True


# ---------------------------------------------------------------------------
# Declaration scanning + mutability classification
# ---------------------------------------------------------------------------

SCALAR_TYPES = {
    "int", "long", "short", "bool", "char", "unsigned", "signed", "float",
    "double", "size_t", "ptrdiff_t", "int8_t", "int16_t", "int32_t",
    "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
}

# TYPE [&*]* NAME (= | { | ; | () -- whitespace-tolerant so clang-mode
# token-joined text (`grid :: Grid2D < T > & a0 = ...`) also matches.
DECL_RE = re.compile(
    r"^\s*(?P<const>const\s+)?(?:constexpr\s+)?(?P<static>static\s+)?"
    r"(?P<const2>const\s+)?"
    r"(?P<type>[A-Za-z_]\w*(?:\s*::\s*\w+)*(?:\s*<[^;={}]*>)?)"
    r"\s*(?P<refptr>[&*](?:\s*(?:const\s+)?[&*])*)?\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?P<open>=(?!=)|\{|;|\()"
)

FOR_DECL_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?"
    r"(?:[A-Za-z_]\w*(?:\s*::\s*\w+)*(?:\s*<[^;]*>)?)"
    r"\s*[&*]?\s*([A-Za-z_]\w*)\s*[=:]"
)

NOT_TYPES = {"return", "delete", "new", "case", "goto", "else", "using",
             "typedef", "throw", "co_return", "break", "continue",
             "sizeof", "alignof", "this"}


@dataclass
class Decl:
    name: str
    type_text: str
    is_const: bool
    is_ref_or_ptr: bool
    line: int
    init: str = ""

    def base_type(self) -> str:
        t = re.sub(r"<.*", "", self.type_text)
        return t.split("::")[-1].strip()

    def category(self) -> str:
        """'readonly' | 'scalar' | 'deep' (mutable through indirection or
        of class type, i.e. a write/mutable use of it can alias shared
        memory)."""
        if self.is_const:
            return "readonly"
        if self.is_ref_or_ptr:
            return "deep"
        if self.base_type() in SCALAR_TYPES:
            return "scalar"
        return "deep"  # class type (vectors, grids, callables, auto)


def scan_decl(line_text: str, line_no: int) -> Optional[Decl]:
    m = DECL_RE.match(line_text)
    if not m:
        return None
    t = m.group("type")
    base = re.sub(r"<.*", "", t).split("::")[0].strip()
    if base in NOT_TYPES or base in CONTROL_KEYWORDS:
        return None
    init = line_text[m.end():] if m.group("open") in ("=", "(", "{") else ""
    return Decl(
        name=m.group("name"),
        type_text=t,
        is_const=bool(m.group("const") or m.group("const2")),
        is_ref_or_ptr=bool(m.group("refptr")),
        line=line_no,
        init=init,
    )


def parse_params(header: str, header_line: int) -> List[Decl]:
    """Parameter declarations from a function/lambda header (the last
    balanced top-level paren group)."""
    groups: List[Tuple[int, int]] = []
    i = 0
    while i < len(header):
        if header[i] == "(":
            j = match_forward(header, i, "(", ")")
            groups.append((i, j))
            i = j + 1
        else:
            i += 1
    if not groups:
        return []
    lo, hi = groups[-1]
    body = header[lo + 1:hi]
    params: List[Decl] = []
    # split at top-level commas (tracking () <> [] nesting)
    depth = 0
    part: List[str] = []
    parts: List[str] = []
    for c in body:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth = max(0, depth - 1)
        if c == "," and depth == 0:
            parts.append("".join(part))
            part = []
        else:
            part.append(c)
    parts.append("".join(part))
    for p in parts:
        p = p.split("=")[0].strip()  # drop default arguments
        if not p or p in ("void",):
            continue
        ids = re.findall(r"[A-Za-z_]\w*", p)
        if not ids:
            continue
        name = ids[-1]
        if name in SCALAR_TYPES or len(ids) < 2:
            continue  # unnamed parameter
        type_text = p[:p.rfind(name)].strip()
        base = re.sub(r"<.*", "", type_text).split("::")[-1].strip(" &*")
        params.append(Decl(
            name=name,
            type_text=type_text or "auto",
            is_const="const" in re.findall(r"[A-Za-z_]\w*", type_text),
            is_ref_or_ptr=("&" in type_text or "*" in type_text
                           or "[" in p[p.rfind(name):]),
            line=header_line,
        ))
        params[-1].type_text = base or params[-1].type_text
    return params


# ---------------------------------------------------------------------------
# C1: OpenMP sharing discipline
# ---------------------------------------------------------------------------

PRAGMA_OMP_RE = re.compile(r"#\s*pragma\s+omp\b")
PRAGMA_PAR_RE = re.compile(r"#\s*pragma\s+omp\b.*\bparallel\b")
SAFE_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+omp\b.*\b(critical|atomic|single|master|masked)\b")
CLAUSE_RE = re.compile(
    r"\b(private|firstprivate|lastprivate|shared|reduction)\s*\(([^)]*)\)")
FOR_KEYWORD_RE = re.compile(r"\bfor\s*\(")
THREAD_NUM_RE = re.compile(r"\bomp_get_thread_num\b")
ASSIGN_OP_RE = re.compile(
    r"(\+\+|--|(?:[+\-*/%&|^]|<<|>>)?=(?!=))")
CHAIN_USE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(\.|->|\[|\()")


def token_in(name: str, text: str) -> bool:
    return re.search(rf"(?<![\w.]){re.escape(name)}\b", text) is not None


def c1_applies(path: str) -> bool:
    p = norm(path)
    return ("fixtures/" in p or p.startswith(("src/tiling/", "src/tv/"))
            or "/src/tiling/" in p or "/src/tv/" in p)


def split_statements(text: str, base: int) -> List[Tuple[int, str]]:
    """(flat_index, fragment) pairs: text split at ; { } outside ()/[]."""
    out: List[Tuple[int, str]] = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c in ";{}" and depth == 0:
            frag = text[start:i]
            if frag.strip():
                out.append((base + start, frag))
            start = i + 1
    frag = text[start:]
    if frag.strip():
        out.append((base + start, frag))
    return out


def check_omp(sf: SourceFile, flat: Flat,
              blocks: List[Block]) -> List[Violation]:
    found: List[Violation] = []
    text = flat.text

    # ---- collect file-visible declarations, line by line (last-wins) -----
    all_decls: List[Decl] = []
    for ln, lt in enumerate(sf.scan_lines, start=1):
        if not lt.strip():
            continue
        d = scan_decl(lt, ln)
        if d:
            all_decls.append(d)

    for pline, ptext in enumerate(sf.scan_lines, start=1):
        if not PRAGMA_PAR_RE.search(ptext):
            continue
        pidx = flat.idx_of_line(pline)
        pend = pidx + len(ptext)

        # clause-declared sharing
        clause_private: Set[str] = set()
        reduction_vars: Set[str] = set()
        for cm in CLAUSE_RE.finditer(ptext):
            kind, body = cm.group(1), cm.group(2)
            if kind == "reduction":
                body = body.split(":", 1)[-1]
                reduction_vars.update(
                    v.strip() for v in body.split(",") if v.strip())
            elif kind in ("private", "firstprivate", "lastprivate"):
                clause_private.update(
                    v.strip() for v in body.split(",") if v.strip())

        # region extent + parallel induction variable
        induction: Optional[str] = None
        has_for = re.search(r"\bfor\b", ptext) is not None
        if has_for:
            fm = FOR_KEYWORD_RE.search(text, pend)
            if not fm:
                continue
            close = match_forward(text, fm.end() - 1, "(", ")")
            header = text[fm.start():close + 1]
            im = re.search(
                r"for\s*\(\s*(?:const\s+)?(?:[\w:]+(?:\s*<[^;]*>)?\s*)?"
                r"[&*]?\s*([A-Za-z_]\w*)\s*=", header)
            if im:
                induction = im.group(1)
            body_start = close + 1
        else:
            body_start = pend
        body_end = stmt_extent(text, body_start)
        region = text[body_start:body_end]

        # The tiled drivers share one tile body between their OpenMP branch
        # and the serving executor's stage path, so the loop body is often a
        # single call to a lambda declared just above.  Follow it: analyze
        # the lambda's body as the region (its parameters are per-invocation
        # private), otherwise the writes would be invisible here and the
        # partitioned() certification would certify nothing.
        lam_call = re.match(r"^\s*\{?\s*([A-Za-z_]\w*)\s*\([^;{}]*\)\s*;?\s*\}?\s*$",
                            region)
        if lam_call:
            lam_name = lam_call.group(1)
            lam_decls = list(re.finditer(
                rf"\bauto\s+{re.escape(lam_name)}\s*=\s*\[", text[:pidx]))
            if lam_decls:
                lb = lam_decls[-1].end() - 1       # at the capture '['
                cap_end = match_forward(text, lb, "[", "]")
                pstart = text.find("(", cap_end)
                if pstart != -1 and text[cap_end + 1:pstart].strip() == "":
                    pclose = match_forward(text, pstart, "(", ")")
                    for ptok in text[pstart + 1:pclose].split(","):
                        pm = re.search(r"([A-Za-z_]\w*)\s*(?:/\*.*\*/\s*)?$",
                                       ptok.strip())
                        if pm:
                            clause_private.add(pm.group(1))
                    brace = text.find("{", pclose)
                    if brace != -1:
                        body_start = brace + 1
                        body_end = match_forward(text, brace, "{", "}")
                        region = text[body_start:body_end]

        region_line0 = flat.line_of(body_start)
        region_line1 = flat.line_of(max(body_start, body_end - 1))

        part_var = sf.partition_var(pline)
        region_viols: List[Violation] = []

        def add(idx: int, msg: str) -> None:
            ln = flat.line_of(idx)
            if not sf.is_allowed(ln, "C1"):
                region_viols.append(Violation(sf.path, ln, "C1", msg))

        # nested safe constructs: their statement extents are exempt
        safe_spans: List[Tuple[int, int]] = []
        for sln in range(region_line0, region_line1 + 1):
            st = sf.scan_lines[sln - 1]
            if SAFE_PRAGMA_RE.search(st):
                s0 = flat.idx_of_line(sln) + len(st)
                safe_spans.append((flat.idx_of_line(sln),
                                   stmt_extent(text, s0)))

        def in_safe(idx: int) -> bool:
            return any(a <= idx < b for a, b in safe_spans)

        # outer declarations visible at the pragma: file statements above
        # it plus enclosing function/lambda parameters (innermost wins).
        outer: Dict[str, Decl] = {}
        for d in all_decls:
            if d.line < pline:
                outer[d.name] = d
        for b in enclosing_blocks(blocks, pidx):
            if is_function_block(b):
                for d in parse_params(b.header, b.header_line):
                    outer[d.name] = d

        # region-local declarations: private unless initialized from a
        # shared deep-mutable object (then they alias shared memory) --
        # except when the initializer goes through omp_get_thread_num().
        private: Set[str] = set(clause_private)
        if induction:
            private.add(induction)
        derived: Set[str] = set()

        def shared_deep(name: str) -> bool:
            if name in private or name in derived or name in reduction_vars:
                return False
            d = outer.get(name)
            return d is not None and d.category() == "deep"

        fragments = split_statements(region, body_start)
        # pass 1: declarations (so later fragments see earlier locals)
        for fidx, frag in fragments:
            for im2 in FOR_DECL_RE.finditer(frag):
                private.add(im2.group(1))
            d = scan_decl(frag.strip(), flat.line_of(fidx))
            if d:
                if THREAD_NUM_RE.search(d.init):
                    private.add(d.name)
                elif not d.is_const and any(
                        shared_deep(t) or t in derived
                        for t in re.findall(r"[A-Za-z_]\w*", d.init)):
                    derived.add(d.name)
                else:
                    private.add(d.name)

        def proven(chunk: str) -> bool:
            if induction and token_in(induction, chunk):
                return True
            return THREAD_NUM_RE.search(chunk) is not None

        # pass 2: writes and mutable uses
        for fidx, frag in fragments:
            if PRAGMA_OMP_RE.search(frag):
                continue
            stripped = frag.strip()
            d = scan_decl(stripped, flat.line_of(fidx))
            scan_text = d.init if d else frag
            scan_base = fidx + (len(frag) - len(scan_text)) if d else fidx

            # (a) assignments / increments at bracket depth 0
            if not d:
                depth = 0
                for am in ASSIGN_OP_RE.finditer(frag):
                    pre = frag[:am.start()]
                    depth = (pre.count("(") + pre.count("[")
                             - pre.count(")") - pre.count("]"))
                    if depth != 0:
                        continue
                    op = am.group(1)
                    lv = pre if op not in ("++", "--") else None
                    if lv is None:
                        around = frag[max(0, am.start() - 40):am.end() + 40]
                        lv = around
                        ids = re.findall(r"[A-Za-z_]\w*",
                                         frag[:am.start()].split(";")[-1])
                        base = ids[0] if ids else None
                    else:
                        ids = re.findall(r"[A-Za-z_]\w*", lv)
                        base = ids[0] if ids else None
                    if base is None:
                        continue
                    if base in private or base in reduction_vars:
                        continue
                    if in_safe(fidx + am.start()):
                        continue
                    if proven(lv):
                        continue
                    if base in derived or shared_deep(base):
                        add(fidx + am.start(),
                            f"write to shared '{base}' in this parallel "
                            "region has no partition proof (index it by "
                            f"the parallel variable, use a reduction/"
                            "critical section, or certify the region with "
                            "'// tvsrace: partitioned(<index>)')")
                    elif base not in outer:
                        add(fidx + am.start(),
                            f"write to '{base}' which tvsrace cannot prove "
                            "thread-private (declare it in the region, "
                            "list it in a private()/reduction() clause, or "
                            "annotate)")
                    elif outer[base].category() != "readonly":
                        add(fidx + am.start(),
                            f"write to shared {outer[base].category()} "
                            f"'{base}' in a parallel region (every "
                            "iteration races on it; use reduction/"
                            "critical or make it per-thread)")

            # (b)+(c) mutable uses of shared objects: member/subscript/
            # call through a shared deep base, or passing it bare to a
            # call - each needs an induction/thread proof or annotation.
            for cm2 in CHAIN_USE_RE.finditer(scan_text):
                base = cm2.group(1)
                if not (base in derived or shared_deep(base)):
                    continue
                if in_safe(scan_base + cm2.start()):
                    continue
                j = cm2.start()
                depth2 = 0
                k = j
                while k < len(scan_text):
                    c = scan_text[k]
                    if c in "([":
                        depth2 += 1
                    elif c in ")]":
                        if depth2 == 0:
                            break
                        depth2 -= 1
                    elif depth2 == 0 and c in ",;" :
                        break
                    k += 1
                chunk = scan_text[j:k]
                if proven(chunk):
                    continue
                add(scan_base + j,
                    f"shared mutable '{base}' used in a parallel region "
                    "without a partition proof (index the access by the "
                    "parallel variable, take it const, or certify with "
                    "'// tvsrace: partitioned(<index>)')")
            # bare shared identifiers passed as call arguments
            for argm in re.finditer(r"[(,]\s*([A-Za-z_]\w*)\s*[,)]",
                                    scan_text):
                base = argm.group(1)
                if not (base in derived or shared_deep(base)):
                    continue
                if in_safe(scan_base + argm.start(1)):
                    continue
                add(scan_base + argm.start(1),
                    f"shared mutable '{base}' passed to a call in a "
                    "parallel region without a partition proof (the "
                    "callee may write through it; certify the region "
                    "with '// tvsrace: partitioned(<index>)' if writes "
                    "are partitioned by the parallel index)")

        # annotation certification
        if part_var is not None:
            if induction is not None and part_var == induction:
                region_viols = []  # certified: the owned-diagonal pattern
            else:
                region_viols.append(Violation(
                    sf.path, pline, "C1",
                    f"'tvsrace: partitioned({part_var})' does not name the "
                    f"parallel loop index"
                    + (f" '{induction}'" if induction else
                       " (region has no parallel for index)")))
        found.extend(region_viols)
    return found


# ---------------------------------------------------------------------------
# C2: lock discipline for mutex-owning classes
# ---------------------------------------------------------------------------

MUTEX_FIELD_RE = re.compile(
    r"(?:std\s*::\s*)?(?:mutex|shared_mutex|recursive_mutex)\s+"
    r"([A-Za-z_]\w*)\s*;")
CLASS_HDR_RE = re.compile(r"\b(?:struct|class)\s+([A-Za-z_]\w*)?")
FIELD_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:[A-Za-z_][\w:]*(?:\s*<[^;={}]*>)?)\s*"
    r"[&*]?\s*([A-Za-z_]\w*)\s*(?:;|=|\{)")
LOCK_RE = re.compile(
    r"\b(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b"
    r"(?:\s*<[^;()]*>)?\s+\w+\s*[({]([^)}]*)[)}]"
    r"|\b(?:[A-Za-z_]\w*(?:\s*(?:\.|->)\s*))?([A-Za-z_]\w*)\s*"
    r"(?:\.|->)\s*lock\s*\(\s*\)")


def c2_applies(path: str) -> bool:
    p = norm(path)
    return "fixtures/" in p or p.startswith("src/") or "/src/" in p


def check_locks(sf: SourceFile, flat: Flat,
                blocks: List[Block]) -> List[Violation]:
    found: List[Violation] = []
    text = flat.text

    # classes owning a std::mutex
    classes: List[Tuple[Block, str, Set[str], Set[str]]] = []
    for b in blocks:
        hm = CLASS_HDR_RE.search(b.header)
        if not hm:
            continue
        body_lines = range(flat.line_of(b.start), flat.line_of(b.end) + 1)
        mutexes: Set[str] = set()
        fields: Set[str] = set()
        depth_one = [bb for bb in blocks
                     if b.start < bb.start and bb.end < b.end]
        for ln in body_lines:
            lt = sf.scan_lines[ln - 1]
            lidx = flat.idx_of_line(ln)
            # only direct members: skip lines inside nested blocks
            if any(bb.start < lidx < bb.end for bb in depth_one):
                continue
            for mm in MUTEX_FIELD_RE.finditer(lt):
                mutexes.add(mm.group(1))
            fm = FIELD_DECL_RE.match(lt)
            if fm and "(" not in lt.split(fm.group(1))[0]:
                fields.add(fm.group(1))
        if mutexes:
            classes.append((b, hm.group(1) or "<anonymous>",
                            mutexes, fields - mutexes))

    for cblock, cname, mutexes, fields in classes:
        if not fields:
            continue
        # lock scopes: from the lock statement to the end of its innermost
        # enclosing block
        lock_spans: List[Tuple[int, int]] = []
        for lm in LOCK_RE.finditer(text):
            arg = lm.group(1) or lm.group(2) or ""
            if not any(re.search(rf"\b{re.escape(mx)}\b", arg)
                       for mx in mutexes):
                continue
            encl = enclosing_blocks(blocks, lm.start())
            end = encl[-1].end if encl else len(text)
            lock_spans.append((lm.start(), end))

        def locked(idx: int) -> bool:
            return any(a <= idx < b for a, b in lock_spans)

        def guarded_fn(idx: int) -> bool:
            for b in enclosing_blocks(blocks, idx):
                if is_function_block(b) and (
                        sf.is_guarded(b.header_line)
                        or sf.is_guarded(flat.line_of(b.start))):
                    return True
            return False

        field_alt = "|".join(sorted(re.escape(f) for f in fields))
        member_re = re.compile(rf"(?:\.|->)\s*({field_alt})\b")
        bare_re = re.compile(rf"(?<![\w.>])({field_alt})\b")
        for ln, lt in enumerate(sf.scan_lines, start=1):
            if not lt.strip():
                continue
            lidx = flat.idx_of_line(ln)
            hits = list(member_re.finditer(lt))
            inside = cblock.start < lidx < cblock.end
            if inside:
                fm = FIELD_DECL_RE.match(lt)
                decl_name = fm.group(1) if fm else None
                hits += [m for m in bare_re.finditer(lt)
                         if m.group(1) != decl_name]
            for m in hits:
                idx = lidx + m.start()
                if locked(idx) or guarded_fn(idx):
                    continue
                if inside and not any(
                        b.start < idx < b.end for b in blocks
                        if b.start > cblock.start and b.end < cblock.end):
                    continue  # the member declaration itself
                if sf.is_allowed(ln, "C2"):
                    continue
                found.append(Violation(
                    sf.path, ln, "C2",
                    f"field '{m.group(len(m.groups()))}' of mutex-owning "
                    f"class '{cname}' accessed without holding "
                    f"{'/'.join(sorted(mutexes))} (lock it, or annotate "
                    "the function '// tvsrace: guarded_by_caller')"))
    return found


# ---------------------------------------------------------------------------
# C3: index/narrowing dataflow into offset arithmetic
# ---------------------------------------------------------------------------

TERM_RE = re.compile(
    r"(?:\.|->)\s*(?:size|offset|stride|ystride|zstride)\s*\("
    r"|\blinear_offset\s*\(")
PTRDIFF_DECL_RE = re.compile(r"\bptrdiff_t\s*[&*]?\s+([A-Za-z_]\w*)")
NARROW_CAST_RE = re.compile(
    r"\bstatic_cast\s*<\s*(?:const\s+)?"
    r"(int|unsigned(?:\s+int)?|short|std\s*::\s*u?int(?:8|16|32)_t)\s*>")
NARROW_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(int|unsigned(?:\s+int)?|short)\s+"
    r"[A-Za-z_]\w*\s*=\s*(.+)$")
C_CAST_RE = re.compile(r"\(\s*(int|unsigned|short)\s*\)")


def c3_applies(path: str) -> bool:
    p = norm(path)
    return ("fixtures/" in p
            or p.startswith(("src/grid/", "src/tiling/", "src/tv/"))
            or any(s in p for s in ("/src/grid/", "/src/tiling/",
                                    "/src/tv/")))


def check_narrowing(sf: SourceFile) -> List[Violation]:
    found: List[Violation] = []
    ptrdiff_names: Set[str] = set()
    for lt in sf.scan_lines:
        for m in PTRDIFF_DECL_RE.finditer(lt):
            ptrdiff_names.add(m.group(1))

    def has_term(expr: str) -> bool:
        if TERM_RE.search(expr):
            return True
        return any(token_in(n, expr) for n in ptrdiff_names)

    def add(ln: int, msg: str) -> None:
        if not sf.is_allowed(ln, "C3"):
            found.append(Violation(sf.path, ln, "C3", msg))

    for ln, lt in enumerate(sf.scan_lines, start=1):
        if not lt.strip():
            continue
        for m in NARROW_CAST_RE.finditer(lt):
            i = lt.find("(", m.end())
            if i < 0:
                continue
            j = match_forward(lt, i, "(", ")")
            operand = lt[i:j + 1]
            if has_term(operand) and "checked_int" not in operand:
                dest = re.sub(r"\s+", " ", m.group(1))
                add(ln,
                    f"static_cast<{dest}> narrows a grid size/offset "
                    "value; keep it std::ptrdiff_t or route it through "
                    "util::checked_int()")
        dm = NARROW_DECL_RE.match(lt)
        if dm and has_term(dm.group(2)) \
                and "checked_int" not in dm.group(2) \
                and "static_cast" not in dm.group(2):
            add(ln,
                f"initializing {dm.group(1)} from a grid size/offset "
                "value narrows it implicitly; keep it std::ptrdiff_t or "
                "use util::checked_int()")
        for m in C_CAST_RE.finditer(lt):
            rest = lt[m.end():]
            if has_term(rest.split(";")[0]):
                add(ln,
                    f"C-style ({m.group(1)}) cast on a grid size/offset "
                    "value; use util::checked_int() (and never C casts)")
    return found


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

SCAN_DIRS = ("src",)
SCAN_EXTS = (".cpp", ".hpp", ".h", ".cc")


def norm(path: str) -> str:
    return path.replace(os.sep, "/")


def discover_files(repo: str,
                   compile_commands: Optional[str]) -> List[str]:
    """Repo-relative paths to analyze: headers + sources under src/, plus
    any compile_commands.json TU that lives there (so generated TUs are
    never silently skipped)."""
    rels: Set[str] = set()
    try:
        out = subprocess.run(
            ["git", "-C", repo, "ls-files", "--"] +
            [f"{d}/" for d in SCAN_DIRS],
            capture_output=True, text=True, check=True).stdout
        rels.update(p for p in out.splitlines() if p.endswith(SCAN_EXTS))
    except (OSError, subprocess.CalledProcessError):
        for d in SCAN_DIRS:
            for root, _dirs, fnames in os.walk(os.path.join(repo, d)):
                for fname in fnames:
                    if fname.endswith(SCAN_EXTS):
                        rels.add(norm(os.path.relpath(
                            os.path.join(root, fname), repo)))
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                p = entry.get("file", "")
                ap = os.path.normpath(
                    os.path.join(entry.get("directory", ""), p))
                rel = norm(os.path.relpath(ap, repo))
                if not rel.startswith("..") and rel.endswith(SCAN_EXTS) \
                        and rel.split("/")[0] in SCAN_DIRS:
                    rels.add(rel)
    return sorted(rels)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="tvsrace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="explicit files to analyze (default: src/ tree)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: two dirs above this "
                         "script)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json exported by CMake "
                         "(default: <repo>/build/compile_commands.json "
                         "when present); an explicitly given path must "
                         "exist")
    ap.add_argument("--mode", choices=["auto", "clang", "regex"],
                    default="auto", help="lexer front end (default: auto)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, desc in RULES.items():
            print(f"{rid}  {desc}")
        return 0

    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.abspath(args.repo) if args.repo else \
        os.path.dirname(os.path.dirname(here))
    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",")}
        unknown = active - set(RULES)
        if unknown:
            print(f"tvsrace: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    compile_commands = args.compile_commands
    if compile_commands is not None and not os.path.exists(compile_commands):
        print(f"tvsrace: compile commands database not found: "
              f"{compile_commands}", file=sys.stderr)
        return 2
    if compile_commands is None:
        cand = os.path.join(repo, "build", "compile_commands.json")
        compile_commands = cand if os.path.exists(cand) else None

    lex, mode = make_lexer(args.mode, load_cc_args(compile_commands))

    if args.files:
        pairs = [(os.path.abspath(f),
                  norm(os.path.relpath(os.path.abspath(f), repo))
                  if os.path.abspath(f).startswith(repo + os.sep)
                  else norm(f))
                 for f in args.files]
    else:
        pairs = [(os.path.join(repo, rel), rel)
                 for rel in discover_files(repo, compile_commands)]

    violations: List[Violation] = []
    nfiles = 0
    for apath, rel in pairs:
        if not os.path.exists(apath):
            print(f"tvsrace: no such file: {apath}", file=sys.stderr)
            return 2
        sf = lex(apath, rel)
        nfiles += 1
        flat = Flat(sf)
        needs_blocks = ("C1" in active and c1_applies(rel)) or \
                       ("C2" in active and c2_applies(rel))
        blocks = parse_blocks(flat) if needs_blocks else []
        if "C1" in active and c1_applies(rel):
            violations.extend(check_omp(sf, flat, blocks))
        if "C2" in active and c2_applies(rel):
            violations.extend(check_locks(sf, flat, blocks))
        if "C3" in active and c3_applies(rel):
            violations.extend(check_narrowing(sf))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    seen: Set[Tuple[str, int, str]] = set()
    uniq: List[Violation] = []
    for v in violations:
        key = (v.path, v.line, v.rule)
        if key not in seen:
            seen.add(key)
            uniq.append(v)
    for v in uniq:
        print(v.render())
    if not args.quiet:
        print(f"tvsrace: {nfiles} files, {len(uniq)} violation(s) "
              f"[mode={mode}]", file=sys.stderr)
    return 1 if uniq else 0


if __name__ == "__main__":
    sys.exit(main())
