// Clean fixture: trips no tvslint rule.  Also exercises the suppression
// syntax — the two lines below would violate R1/R2 without their allow()
// comments, so a zero-violation result proves suppressions are honored.
#include <cstdint>

#include <omp.h>  // tvslint: allow(R1)

namespace fixture {

// tvslint: allow(R2)
using wide_t = __m256d;

inline std::int32_t add(std::int32_t a, std::int32_t b) { return a + b; }

// A string literal mentioning _mm256_add_pd or "#include <omp.h>" is data,
// not code; the lexer must not report it.
inline const char* doc() { return "_mm256_add_pd and #include <omp.h>"; }

}  // namespace fixture
