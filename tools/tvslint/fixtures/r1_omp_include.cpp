// R1 fixture: raw <omp.h> include outside src/util/omp_compat.hpp.
// Expected: exactly one R1 violation (line 5), nothing else.
#include <cstddef>

#include <omp.h>

namespace fixture {
inline std::size_t threads() { return 1; }
}  // namespace fixture
