// R2 fixture: x86 intrinsics outside src/simd/.  Expected: R2 violations
// on the three marked lines, nothing else.
namespace fixture {

struct FakeVec {
  __m256d r;  // R2: raw vector type
};

inline FakeVec add(FakeVec a, FakeVec b) {
  return FakeVec{_mm256_add_pd(a.r, b.r)};  // R2: intrinsic call
}

inline int mask_width(__mmask16 m) { return m ? 16 : 0; }  // R2: mask type

}  // namespace fixture
