// R5 fixture: a miniature dispatch header.  Paired with reg.cpp and
// matrix.json in this tree, it seeds three R5 violations:
//   - kBeta claims kF64 and kF32 in the matrix but has no register site
//   - kGamma is registered but not declared here
// (kAlpha is consistent everywhere and must NOT be reported.)
#pragma once

#include <string_view>

namespace fixture {
inline constexpr std::string_view kAlpha = "alpha";
inline constexpr std::string_view kBeta = "beta";
}  // namespace fixture
