// R5 fixture registration TU (never compiled; parsed by tvslint only).
TVS_BACKEND_REGISTRAR(fake) {
  TVS_REGISTER(kAlpha, FakeFn, alpha_impl);
  TVS_REGISTER_DT(kGamma, FakeFn, gamma_impl, kF64);
}
