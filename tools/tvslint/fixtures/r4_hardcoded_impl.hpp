// R4 fixture: an "_impl.hpp" engine template that hardcodes lane counts in
// ring math and uses a bare element type.  Expected: R4 violations on the
// marked lines, nothing else.
#pragma once

namespace fixture {

template <class V>
struct Engine {
  static constexpr int vl = V::lanes;

  // OK: derived from V::lanes, no literal.
  int ring_slots() const { return vl + 1; }

  // R4: bare 'double' inside a lane-generic template.
  double scratch[32];

  // R4: literal lane count in ring arithmetic.
  int wrap(int slot) const { return (slot + 1) % (vl + 8); }

  // OK: static_assert lines are exempt (they PIN a width on purpose).
  static_assert(V::lanes == 4 || V::lanes >= 1);
};

}  // namespace fixture
