#!/usr/bin/env python3
"""tvslint - project-specific static analysis for the tvs repository.

Mechanizes the codebase invariants that the kernel/dispatch architecture
depends on.  Each rule is a named diagnostic with file:line output; a
finding on a line carrying (or immediately following) a
`// tvslint: allow(<rule>[,<rule>...])` comment is suppressed.

  R1  omp-include       #include <omp.h> only in src/util/omp_compat.hpp
                        (serial builds compile everything; raw includes
                        break the no-OpenMP configuration)
  R2  intrinsics-scope  _mm*/__m128/256/512/__mmask* intrinsics only under
                        src/simd/ (kernels must stay vector-length generic
                        through the V abstraction)
  R3  backend-symbols   per-backend combined objects export no external
                        symbols besides the extern "C" registrars (checked
                        with nm on tvs_kernels_<backend>_combined.o; a
                        stray external symbol defeats the ODR isolation
                        that makes three differently-flagged compilations
                        of one kernel safe in a single binary)
  R4  lane-generic      engine templates (src/tv/*_impl.hpp) use no bare
                        double/float element types and no hardcoded lane
                        counts (4/8/16) in lane/ring/slot arithmetic -
                        everything derives from V::lanes / V::value_type
  R5  registry-matrix   every kernel id declared in dispatch/kernels.hpp
                        has TVS_REGISTER* sites for exactly the dtypes the
                        support matrix (tools/tvslint/registry_matrix.json,
                        the machine-readable form of the README matrix)
                        claims, and vice versa

Front ends: when the `clang` python bindings and a loadable libclang are
available the files are tokenized with clang's lexer (`--mode clang`);
otherwise a regex scanner that strips comments and string literals is used
(`--mode regex`).  Both feed the same rule logic, so results agree on any
well-formed translation unit.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

RULES = {
    "R1": "omp-include: #include <omp.h> outside src/util/omp_compat.hpp",
    "R2": "intrinsics-scope: x86 intrinsics outside src/simd/",
    "R3": "backend-symbols: stray external symbol in a backend object",
    "R4": "lane-generic: hardcoded lane count / bare element type in an "
          "engine template",
    "R5": "registry-matrix: kernels.hpp ids vs TVS_REGISTER sites vs the "
          "declared support matrix",
}

ALLOW_RE = re.compile(r"tvslint:\s*allow\(([^)]*)\)")


@dataclass
class Violation:
    path: str
    line: int  # 1-based; 0 = whole-file / cross-file finding
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """One lexed file, in two views: `code_lines` keeps string-literal
    contents (R5 reads the kernel-id strings), `scan_lines` blanks them
    (the R1/R2/R4 line rules must not fire on text inside a literal).
    Comments are stripped from both; their allow() markers are recorded."""

    path: str  # repo-relative (or as given) path, '/'-separated
    code_lines: List[str] = field(default_factory=list)  # 1-based via index+1
    scan_lines: List[str] = field(default_factory=list)
    allowed: Dict[int, Set[str]] = field(default_factory=dict)

    def is_allowed(self, line: int, rule: str) -> bool:
        # An allow() comment covers its own line and, when it is the only
        # thing on its line, the line below it.
        for cand in (line, line - 1):
            if rule in self.allowed.get(cand, set()):
                return True
        return False


# ---------------------------------------------------------------------------
# Lexing front ends
# ---------------------------------------------------------------------------

def _record_allows(sf: SourceFile, text: str, line: int) -> None:
    for m in ALLOW_RE.finditer(text):
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        sf.allowed.setdefault(line, set()).update(rules)


def lex_regex(path: str, display_path: str) -> SourceFile:
    """Comment/string-aware scanner.  Handles //, /* */, "..." and '...'
    (with escapes); raw strings are not used in this codebase."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    sf = SourceFile(display_path)
    out: List[str] = []
    scan_out: List[str] = []
    cur: List[str] = []
    scan_cur: List[str] = []
    line = 1
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    comment_start = 1
    comment_buf: List[str] = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, comment_start, comment_buf = "line_comment", line, []
                i += 2
                continue
            if c == "/" and nxt == "*":
                state, comment_start, comment_buf = "block_comment", line, []
                i += 2
                continue
            if c == '"':
                state = "dquote"
                cur.append('"')
                scan_cur.append('"')
                i += 1
                continue
            if c == "'":
                state = "squote"
                cur.append("'")
                scan_cur.append("'")
                i += 1
                continue
            if c == "\n":
                out.append("".join(cur))
                scan_out.append("".join(scan_cur))
                cur = []
                scan_cur = []
                line += 1
            else:
                cur.append(c)
                scan_cur.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                _record_allows(sf, "".join(comment_buf), comment_start)
                out.append("".join(cur))
                scan_out.append("".join(scan_cur))
                cur = []
                scan_cur = []
                line += 1
                state = "code"
            else:
                comment_buf.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                _record_allows(sf, "".join(comment_buf), comment_start)
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append("".join(cur))
                scan_out.append("".join(scan_cur))
                cur = []
                scan_cur = []
                line += 1
            else:
                comment_buf.append(c)
            i += 1
        elif state in ("dquote", "squote"):
            # Literal contents are kept in code_lines (R5 reads the
            # kernel-id strings) but blanked in scan_lines.
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                cur.append(c)
                if i + 1 < n:
                    cur.append(text[i + 1])
                i += 2
                continue
            if c == quote:
                cur.append(quote)
                scan_cur.append(quote)
                state = "code"
            elif c == "\n":  # unterminated literal: recover per line
                out.append("".join(cur))
                scan_out.append("".join(scan_cur))
                cur = []
                scan_cur = []
                line += 1
                state = "code"
            else:
                cur.append(c)
            i += 1
    if state in ("line_comment", "block_comment"):
        _record_allows(sf, "".join(comment_buf), comment_start)
    out.append("".join(cur))
    scan_out.append("".join(scan_cur))
    sf.code_lines = out
    sf.scan_lines = scan_out
    return sf


def lex_clang(path: str, display_path: str, index) -> SourceFile:
    """Tokenize with clang's lexer; comments become allow() records and
    everything else is reassembled into per-line code text."""
    import clang.cindex as ci

    tu = index.parse(
        path,
        args=["-std=c++20", "-fsyntax-only"],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
    )
    sf = SourceFile(display_path)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        nlines = f.read().count("\n") + 1
    lines: List[List[str]] = [[] for _ in range(nlines + 1)]
    scan: List[List[str]] = [[] for _ in range(nlines + 1)]
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        loc = tok.location
        if loc.file is None or loc.file.name != path:
            continue
        if tok.kind == ci.TokenKind.COMMENT:
            _record_allows(sf, tok.spelling, loc.line)
            continue
        lines[loc.line].append(tok.spelling)
        if tok.kind == ci.TokenKind.LITERAL and (
                '"' in tok.spelling or "'" in tok.spelling):
            scan[loc.line].append('""')
        else:
            scan[loc.line].append(tok.spelling)
    sf.code_lines = [" ".join(row) for row in lines[1:]]
    sf.scan_lines = [" ".join(row) for row in scan[1:]]
    return sf


def make_lexer(mode: str):
    """Returns (lex_fn, resolved_mode)."""
    if mode in ("auto", "clang"):
        try:
            import clang.cindex as ci

            index = ci.Index.create()
            return (lambda p, d: lex_clang(p, d, index)), "clang"
        except Exception as exc:  # no bindings or no loadable libclang
            if mode == "clang":
                raise SystemExit(f"tvslint: --mode clang unavailable: {exc}")
    return lex_regex, "regex"


# ---------------------------------------------------------------------------
# Per-line rules: R1, R2, R4
# ---------------------------------------------------------------------------

OMP_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*[<\"]omp\.h[>\"]")
INTRIN_RE = re.compile(
    r"\b_mm\w*\s*\(|\b_mm\d+\b|\b__m(?:128|256|512)[a-z]*\b|\b__mmask\d+\b"
)
BARE_ELEM_RE = re.compile(r"\b(double|float)\b")
LANE_CONST_RE = re.compile(r"\b(?:4|8|16)\b")
LANE_CTX_RE = re.compile(r"\b(?:lanes|vl|VL|ring|slot)\b")
LANE_EXEMPT_RE = re.compile(r"static_assert|if\s+constexpr")


def norm(path: str) -> str:
    return path.replace(os.sep, "/")


def r1_applies(path: str) -> bool:
    return not norm(path).endswith("src/util/omp_compat.hpp")


def r2_applies(path: str) -> bool:
    return "src/simd/" not in norm(path)


def r4_applies(path: str) -> bool:
    # The lane-generic engine templates: src/tv/*_impl.hpp.  The tiling
    # impl headers drive f64/i32 tile schedules and are exempt by design.
    p = norm(path)
    return p.endswith("_impl.hpp") and "/tiling/" not in p


def check_lines(sf: SourceFile) -> List[Violation]:
    found: List[Violation] = []

    def add(line: int, rule: str, msg: str) -> None:
        if not sf.is_allowed(line, rule):
            found.append(Violation(sf.path, line, rule, msg))

    r1 = r1_applies(sf.path)
    r2 = r2_applies(sf.path)
    r4 = r4_applies(sf.path)
    for ln, code in enumerate(sf.scan_lines, start=1):
        if not code:
            continue
        if r1 and OMP_INCLUDE_RE.search(code):
            add(ln, "R1",
                "raw #include <omp.h>; include \"util/omp_compat.hpp\" "
                "instead so serial builds keep compiling")
        if r2 and (m := INTRIN_RE.search(code)):
            add(ln, "R2",
                f"x86 intrinsic '{m.group(0).strip('( ')}' outside src/simd/; "
                "kernels reach SIMD only through the V abstraction")
        if r4:
            if m := BARE_ELEM_RE.search(code):
                add(ln, "R4",
                    f"bare '{m.group(1)}' in a lane-generic engine template; "
                    "use V::value_type (or a template parameter)")
            if (LANE_CONST_RE.search(code) and LANE_CTX_RE.search(code)
                    and not LANE_EXEMPT_RE.search(code)):
                add(ln, "R4",
                    "hardcoded lane count in lane/ring/slot arithmetic; "
                    "derive it from V::lanes")
    return found


# ---------------------------------------------------------------------------
# R3: backend object symbol discipline
# ---------------------------------------------------------------------------

COMBINED_OBJ_RE = re.compile(r"tvs_kernels_(\w+)_combined\.o$")


def check_objects(objdir: str, nm: str = "nm") -> Tuple[List[Violation], int]:
    """nm over every tvs_kernels_<backend>_combined.o under objdir."""
    found: List[Violation] = []
    nchecked = 0
    for root, _dirs, files in os.walk(objdir):
        for fname in sorted(files):
            m = COMBINED_OBJ_RE.search(fname)
            if not m:
                continue
            backend = m.group(1)
            opath = os.path.join(root, fname)
            nchecked += 1
            try:
                out = subprocess.run(
                    [nm, "--defined-only", "--extern-only", "-f", "posix",
                     opath],
                    capture_output=True, text=True, check=True).stdout
            except (OSError, subprocess.CalledProcessError) as exc:
                found.append(Violation(norm(opath), 0, "R3",
                                       f"nm failed on backend object: {exc}"))
                continue
            ok = re.compile(
                rf"^tvs_(?:kreg_{backend}_\w+|register_backend_{backend})$")
            for line in out.splitlines():
                sym = line.split()[0] if line.split() else ""
                if sym and not ok.match(sym):
                    found.append(Violation(
                        norm(opath), 0, "R3",
                        f"external symbol '{sym}' is not the {backend} "
                        "registrar; backend TUs must keep internal linkage "
                        "(anonymous namespace + TVS_BACKEND_REGISTRAR)"))
    return found, nchecked


# ---------------------------------------------------------------------------
# R5: kernels.hpp ids x TVS_REGISTER sites x declared matrix
# ---------------------------------------------------------------------------

ID_DECL_RE = re.compile(
    r"inline\s+constexpr\s+std\s*::\s*string_view\s+(k\w+)\s*=\s*\"([^\"]+)\"")
REGISTER_RE = re.compile(r"\bTVS_REGISTER(_VL_DT|_VL|_DT)?\s*\(\s*(k\w+)")
DTYPE_RE = re.compile(r"\bk(F64|F32|I32)\b")


def parse_register_sites(
    sf: SourceFile,
) -> List[Tuple[str, str, int]]:
    """(constant, dtype, line) for every TVS_REGISTER* call in the file.
    The dtype argument can sit on a continuation line, so the match scans a
    small window of joined lines."""
    sites = []
    nlines = len(sf.code_lines)
    for ln, code in enumerate(sf.code_lines, start=1):
        for m in REGISTER_RE.finditer(code):
            variant = m.group(1) or ""
            const = m.group(2)
            if variant in ("_VL_DT", "_DT"):
                window = " ".join(
                    sf.code_lines[ln - 1:min(ln + 2, nlines)])
                tail = window[window.find(const):]
                dm = DTYPE_RE.search(tail)
                dtype = f"k{dm.group(1)}" if dm else "kF64"
            else:
                dtype = "kF64"
            sites.append((const, dtype, ln))
    return sites


def check_registry(repo: str, files: Dict[str, SourceFile],
                   matrix_path: str) -> List[Violation]:
    found: List[Violation] = []
    kernels_rel = "src/dispatch/kernels.hpp"
    kernels = files.get(kernels_rel)
    if kernels is None:
        return found  # not linting the dispatch layer (explicit file list)
    if not os.path.exists(matrix_path):
        found.append(Violation(norm(matrix_path), 0, "R5",
                               "support matrix file missing"))
        return found
    with open(matrix_path, "r", encoding="utf-8") as f:
        matrix: Dict[str, Dict] = {
            k: v for k, v in json.load(f).items() if not k.startswith("_")}

    declared: Dict[str, Tuple[str, int]] = {}  # const -> (id string, line)
    for ln, code in enumerate(kernels.code_lines, start=1):
        for m in ID_DECL_RE.finditer(code):
            declared[m.group(1)] = (m.group(2), ln)

    registered: Dict[str, Dict[str, Tuple[str, int]]] = {}
    for rel, sf in files.items():
        if rel == kernels_rel:
            continue
        for const, dtype, ln in parse_register_sites(sf):
            registered.setdefault(const, {})[dtype] = (rel, ln)

    id_of = {c: i for c, (i, _) in declared.items()}
    const_of = {i: c for c, i in id_of.items()}

    # kernels.hpp -> matrix -> registrations
    for const, (kid, ln) in sorted(declared.items()):
        claim = matrix.get(kid)
        if claim is None:
            found.append(Violation(kernels_rel, ln, "R5",
                                   f"kernel id '{kid}' has no row in the "
                                   f"support matrix ({norm(matrix_path)})"))
            continue
        want = set(claim.get("dtypes", []))
        have = set(registered.get(const, {}))
        for dt in sorted(want - have):
            found.append(Violation(
                kernels_rel, ln, "R5",
                f"kernel id '{kid}' claims dtype {dt} in the support matrix "
                "but has no TVS_REGISTER* site for it"))
        for dt in sorted(have - want):
            rel, rln = registered[const][dt]
            found.append(Violation(
                rel, rln, "R5",
                f"kernel id '{kid}' registers dtype {dt} that the support "
                "matrix does not claim"))

    # registrations of undeclared constants
    for const, by_dtype in sorted(registered.items()):
        if const not in declared:
            rel, rln = min(by_dtype.values(), key=lambda t: (t[0], t[1]))
            found.append(Violation(
                rel, rln, "R5",
                f"TVS_REGISTER* site for '{const}' which dispatch/"
                "kernels.hpp does not declare"))

    # matrix rows with no kernel id
    for kid in sorted(matrix):
        if kid not in const_of:
            found.append(Violation(
                norm(os.path.relpath(matrix_path, repo)), 0, "R5",
                f"support-matrix row '{kid}' matches no id declared in "
                "dispatch/kernels.hpp"))
    return found


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

LINT_DIRS = ("src", "tests", "bench", "examples")
LINT_EXTS = (".cpp", ".hpp", ".h", ".cc")


def discover_files(repo: str,
                   compile_commands: Optional[str]) -> List[str]:
    """Repo-relative paths to lint: headers + sources under the first-party
    dirs.  compile_commands.json (when present) is used to confirm TU
    coverage but discovery is filesystem-based so headers are included."""
    rels: Set[str] = set()
    try:
        out = subprocess.run(
            ["git", "-C", repo, "ls-files", "--"] +
            [f"{d}/" for d in LINT_DIRS],
            capture_output=True, text=True, check=True).stdout
        rels.update(p for p in out.splitlines()
                    if p.endswith(LINT_EXTS))
    except (OSError, subprocess.CalledProcessError):
        for d in LINT_DIRS:
            for root, _dirs, fnames in os.walk(os.path.join(repo, d)):
                for fname in fnames:
                    if fname.endswith(LINT_EXTS):
                        rels.add(norm(os.path.relpath(
                            os.path.join(root, fname), repo)))
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                p = entry.get("file", "")
                ap = os.path.normpath(
                    os.path.join(entry.get("directory", ""), p))
                rel = norm(os.path.relpath(ap, repo))
                if not rel.startswith("..") and rel.endswith(LINT_EXTS) \
                        and rel.split("/")[0] in LINT_DIRS:
                    rels.add(rel)
    return sorted(rels)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="tvslint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="explicit files to lint (default: the repo tree)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: two dirs above this "
                         "script)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json exported by CMake "
                         "(default: <repo>/build/compile_commands.json "
                         "when present)")
    ap.add_argument("--objects", default=None,
                    help="directory holding the built "
                         "tvs_kernels_*_combined.o objects; enables R3")
    ap.add_argument("--matrix", default=None,
                    help="support-matrix JSON for R5 (default: "
                         "registry_matrix.json next to this script)")
    ap.add_argument("--mode", choices=["auto", "clang", "regex"],
                    default="auto", help="lexer front end (default: auto)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, desc in RULES.items():
            print(f"{rid}  {desc}")
        return 0

    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.abspath(args.repo) if args.repo else \
        os.path.dirname(os.path.dirname(here))
    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",")}
        unknown = active - set(RULES)
        if unknown:
            print(f"tvslint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    matrix_path = args.matrix or os.path.join(
        repo, "tools", "tvslint", "registry_matrix.json")
    compile_commands = args.compile_commands
    if compile_commands is None:
        cand = os.path.join(repo, "build", "compile_commands.json")
        compile_commands = cand if os.path.exists(cand) else None

    lex, mode = make_lexer(args.mode)

    if args.files:
        pairs = [(os.path.abspath(f),
                  norm(os.path.relpath(os.path.abspath(f), repo))
                  if os.path.abspath(f).startswith(repo + os.sep)
                  else norm(f))
                 for f in args.files]
    else:
        pairs = [(os.path.join(repo, rel), rel)
                 for rel in discover_files(repo, compile_commands)]

    files: Dict[str, SourceFile] = {}
    for apath, rel in pairs:
        if not os.path.exists(apath):
            print(f"tvslint: no such file: {apath}", file=sys.stderr)
            return 2
        files[rel] = lex(apath, rel)

    violations: List[Violation] = []
    if active & {"R1", "R2", "R4"}:
        for sf in files.values():
            violations.extend(v for v in check_lines(sf)
                              if v.rule in active)
    r3_checked = None
    if "R3" in active and args.objects:
        r3_found, r3_checked = check_objects(args.objects)
        violations.extend(r3_found)
    if "R5" in active:
        violations.extend(check_registry(repo, files, matrix_path))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in violations:
        print(v.render())
    if not args.quiet:
        extras = [f"mode={mode}"]
        if "R3" in active:
            extras.append(
                f"R3 objects checked={r3_checked}" if r3_checked is not None
                else "R3 skipped (no --objects)")
        print(f"tvslint: {len(files)} files, {len(violations)} violation(s) "
              f"[{', '.join(extras)}]", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
