#!/usr/bin/env python3
"""Fixture tests for tvslint: each seeded-violation fixture must trip
exactly its intended rule, the clean fixture (which exercises allow()
suppressions) must pass, and the R3 symbol check must reject an object
with a stray external symbol while accepting a registrar-only one.

Run directly (python3 tools/tvslint/test_tvslint.py) or via the
`tvslint_fixtures` CTest entry.
"""

import contextlib
import io
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
sys.path.insert(0, HERE)

import tvslint  # noqa: E402


def run_lint(argv):
    """Invoke tvslint.main, returning (exit_code, [(path, line, rule)])."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = tvslint.main(argv + ["-q"])
    findings = []
    for line in out.getvalue().splitlines():
        m = re.match(r"(.+):(\d+): \[(R\d)\] ", line)
        if m:
            findings.append((m.group(1), int(m.group(2)), m.group(3)))
    return code, findings


def fixture(name):
    return os.path.join(FIXTURES, name)


class LineRuleFixtures(unittest.TestCase):
    def test_clean_fixture_passes(self):
        # clean.cpp contains a suppressed omp include, a suppressed
        # intrinsic, and rule-pattern text inside a string literal: zero
        # findings proves both allow() handling and literal blanking.
        code, findings = run_lint([fixture("clean.cpp")])
        self.assertEqual(findings, [])
        self.assertEqual(code, 0)

    def test_r1_fixture_trips_only_r1(self):
        code, findings = run_lint([fixture("r1_omp_include.cpp")])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"R1"})
        self.assertEqual([f[1] for f in findings], [5])

    def test_r2_fixture_trips_only_r2(self):
        code, findings = run_lint([fixture("r2_intrinsics.cpp")])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"R2"})
        self.assertEqual(sorted(f[1] for f in findings), [6, 10, 13])

    def test_r4_fixture_trips_only_r4(self):
        code, findings = run_lint([fixture("r4_hardcoded_impl.hpp")])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"R4"})
        self.assertEqual(sorted(f[1] for f in findings), [16, 19])

    def test_rule_subset_masks_findings(self):
        code, findings = run_lint(
            [fixture("r1_omp_include.cpp"), "--rules", "R2,R4"])
        self.assertEqual((code, findings), (0, []))


class R5RegistryFixture(unittest.TestCase):
    def test_r5_tree_reports_exactly_the_seeded_drift(self):
        tree = fixture("r5_tree")
        code, findings = run_lint([
            "--repo", tree,
            "--matrix", os.path.join(tree, "matrix.json"),
            os.path.join(tree, "src", "dispatch", "kernels.hpp"),
            os.path.join(tree, "src", "fake", "reg.cpp"),
        ])
        self.assertEqual(code, 1)
        self.assertEqual({f[2] for f in findings}, {"R5"})
        # beta: two unregistered matrix claims; kGamma: one undeclared site.
        self.assertEqual(len(findings), 3)
        by_path = sorted((f[0], f[2]) for f in findings)
        self.assertEqual(by_path, [
            ("src/dispatch/kernels.hpp", "R5"),
            ("src/dispatch/kernels.hpp", "R5"),
            ("src/fake/reg.cpp", "R5"),
        ])


class R3SymbolFixture(unittest.TestCase):
    """Builds two tiny 'combined' backend objects at test time and checks
    that only the one with a stray external symbol is rejected."""

    GOOD_SRC = (
        "void tvs_register_backend_fake(void) {}\n"
        "int tvs_kreg_fake_jacobi = 0;\n"
        "int tvs_kreg_fake_life = 0;\n"
        "static int hidden_helper(void) { return 1; }\n"
        "int tvs_kreg_fake_gs = 0;\n"
        "void use_decl_only(void);\n")  # declaration: not a defined symbol
    BAD_SRC = GOOD_SRC + "int leaky_helper(void) { return 2; }\n"

    @classmethod
    def setUpClass(cls):
        cls.cc = next(
            (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None)
        cls.nm_ok = shutil.which("nm") is not None

    def _build(self, tmp, src):
        cpath = os.path.join(tmp, "fake.c")
        with open(cpath, "w", encoding="utf-8") as f:
            f.write(src)
        opath = os.path.join(tmp, "tvs_kernels_fake_combined.o")
        subprocess.run([self.cc, "-c", cpath, "-o", opath], check=True)
        return opath

    def test_r3_accepts_registrar_only_object(self):
        if not (self.cc and self.nm_ok):
            self.skipTest("no C compiler / nm on PATH")
        with tempfile.TemporaryDirectory() as tmp:
            self._build(tmp, self.GOOD_SRC)
            found, nchecked = tvslint.check_objects(tmp)
            self.assertEqual(nchecked, 1)
            self.assertEqual(found, [])

    def test_r3_rejects_stray_external_symbol(self):
        if not (self.cc and self.nm_ok):
            self.skipTest("no C compiler / nm on PATH")
        with tempfile.TemporaryDirectory() as tmp:
            self._build(tmp, self.BAD_SRC)
            found, nchecked = tvslint.check_objects(tmp)
            self.assertEqual(nchecked, 1)
            self.assertEqual([v.rule for v in found], ["R3"])
            self.assertIn("leaky_helper", found[0].message)

    def test_r3_backend_name_is_bound_to_the_object(self):
        # A fake-backend registrar inside an avx2-named object is a
        # violation: the symbol whitelist is per backend.
        if not (self.cc and self.nm_ok):
            self.skipTest("no C compiler / nm on PATH")
        with tempfile.TemporaryDirectory() as tmp:
            opath = self._build(tmp, self.GOOD_SRC)
            os.rename(opath,
                      os.path.join(tmp, "tvs_kernels_avx2_combined.o"))
            found, nchecked = tvslint.check_objects(tmp)
            self.assertEqual(nchecked, 1)
            self.assertTrue(found)
            self.assertEqual({v.rule for v in found}, {"R3"})


if __name__ == "__main__":
    unittest.main(verbosity=2)
