// Configure-time CPU probe: executes an AVX2 FMA instruction and exits 0.
// A machine without AVX2/FMA dies with SIGILL, which CMake's try_run
// reports as failure, and the build degrades to the ScalarVec backend.
#include <immintrin.h>

int main() {
  __m256d a = _mm256_set1_pd(1.5);
  __m256d b = _mm256_set1_pd(2.0);
  __m256d c = _mm256_fmadd_pd(a, b, a);
  alignas(32) double out[4];
  _mm256_store_pd(out, c);
  return out[0] == 4.5 ? 0 : 1;
}
