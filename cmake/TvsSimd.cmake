# SIMD backend resolution for the multi-backend runtime-dispatch build.
#
# Since the dispatch refactor the vector ISA is a *runtime* choice: the
# scalar, AVX2 and AVX-512 variants of every kernel are compiled side by
# side into one binary (per-backend TUs with per-file flags, see
# src/CMakeLists.txt) and selected via CPUID at first call.  Configure time
# therefore only answers "which backends can this *compiler* produce?" —
# the host CPU no longer gates the build, only which tests can execute.
#
#   TVS_SIMD = AUTO    compile every backend the compiler supports (default)
#              scalar  scalar backend only (fully portable library)
#              avx2    scalar + avx2            (-mavx2 -mfma)
#              avx512  scalar + avx2 + avx512   (+ -mavx512f)
#
# Outputs:
#   TVS_BACKEND_AVX2        TRUE when the avx2 backend objects are built
#   TVS_BACKEND_AVX2_FLAGS  its per-file compile flags
#   TVS_BACKEND_AVX512 / TVS_BACKEND_AVX512_FLAGS   likewise
#   TVS_SIMD_LEVEL          highest compiled backend (scalar|avx2|avx512)
#   TVS_CPU_HAS_AVX2 / TVS_CPU_HAS_AVX512
#                           host-CPU probe results — used only to decide
#                           which forced-backend CTest variants to register,
#                           never to drop a backend from the build
#   TVS_FP_FLAGS            FP-determinism flags (see below)

include(CheckCXXCompilerFlag)

set(TVS_SIMD "AUTO" CACHE STRING
    "Highest SIMD backend to compile: AUTO, scalar, avx2, avx512")
set_property(CACHE TVS_SIMD PROPERTY STRINGS AUTO scalar avx2 avx512)
string(TOLOWER "${TVS_SIMD}" _tvs_simd_req)

# ---- compiler support ------------------------------------------------------
check_cxx_compiler_flag("-mavx2" TVS_COMPILER_HAS_MAVX2)
check_cxx_compiler_flag("-mfma" TVS_COMPILER_HAS_MFMA)
check_cxx_compiler_flag("-mavx512f" TVS_COMPILER_HAS_MAVX512F)

set(_tvs_compiler_avx2 FALSE)
if(TVS_COMPILER_HAS_MAVX2 AND TVS_COMPILER_HAS_MFMA)
  set(_tvs_compiler_avx2 TRUE)
endif()
set(_tvs_compiler_avx512 FALSE)
if(_tvs_compiler_avx2 AND TVS_COMPILER_HAS_MAVX512F)
  set(_tvs_compiler_avx512 TRUE)
endif()

# ---- resolve the requested ceiling against compiler support ----------------
if(_tvs_simd_req STREQUAL "auto")
  set(_tvs_want_avx2 ${_tvs_compiler_avx2})
  set(_tvs_want_avx512 ${_tvs_compiler_avx512})
elseif(_tvs_simd_req STREQUAL "scalar")
  set(_tvs_want_avx2 FALSE)
  set(_tvs_want_avx512 FALSE)
elseif(_tvs_simd_req STREQUAL "avx2")
  if(NOT _tvs_compiler_avx2)
    message(FATAL_ERROR "TVS_SIMD=avx2 but the compiler rejects -mavx2/-mfma")
  endif()
  set(_tvs_want_avx2 TRUE)
  set(_tvs_want_avx512 FALSE)
elseif(_tvs_simd_req STREQUAL "avx512")
  if(NOT _tvs_compiler_avx512)
    message(FATAL_ERROR "TVS_SIMD=avx512 but the compiler rejects the "
                        "required -mavx2/-mfma/-mavx512f flags")
  endif()
  set(_tvs_want_avx2 TRUE)
  set(_tvs_want_avx512 TRUE)
else()
  message(FATAL_ERROR "Unknown TVS_SIMD value '${TVS_SIMD}' "
                      "(expected AUTO, scalar, avx2, or avx512)")
endif()

set(TVS_BACKEND_AVX2 ${_tvs_want_avx2})
set(TVS_BACKEND_AVX2_FLAGS -mavx2 -mfma)
set(TVS_BACKEND_AVX512 ${_tvs_want_avx512})
set(TVS_BACKEND_AVX512_FLAGS -mavx2 -mfma -mavx512f)

if(TVS_BACKEND_AVX512)
  set(TVS_SIMD_LEVEL "avx512")
elseif(TVS_BACKEND_AVX2)
  set(TVS_SIMD_LEVEL "avx2")
else()
  set(TVS_SIMD_LEVEL "scalar")
endif()

# ---- host CPU probes (test registration only) ------------------------------
# try_run compiles a probe with the candidate flags and executes one
# instruction from the set; SIGILL on an older CPU fails the probe and the
# forced-backend CTest variants for that backend are simply not registered.
# Cross builds cannot execute target code and register none of them.
function(_tvs_try_run_probe out_var probe_src flags)
  if(CMAKE_CROSSCOMPILING)
    set(${out_var} FALSE PARENT_SCOPE)
    return()
  endif()
  try_run(_run_result _compile_result
          ${CMAKE_BINARY_DIR}/tvs_simd_probe
          ${probe_src}
          COMPILE_DEFINITIONS ${flags})
  if(_compile_result AND _run_result EQUAL 0)
    set(${out_var} TRUE PARENT_SCOPE)
  else()
    set(${out_var} FALSE PARENT_SCOPE)
  endif()
endfunction()

set(TVS_CPU_HAS_AVX2 FALSE)
set(TVS_CPU_HAS_AVX512 FALSE)
if(TVS_BACKEND_AVX2)
  _tvs_try_run_probe(TVS_CPU_HAS_AVX2
                     ${CMAKE_CURRENT_LIST_DIR}/check_avx2.cpp
                     "-mavx2;-mfma")
endif()
if(TVS_BACKEND_AVX512)
  _tvs_try_run_probe(TVS_CPU_HAS_AVX512
                     ${CMAKE_CURRENT_LIST_DIR}/check_avx512.cpp
                     "-mavx512f")
endif()

# ---- backend isolation (localization) --------------------------------------
# Per-backend TUs are merged with `ld -r --force-group-allocation` and have
# their hidden symbols localized with objcopy, so the linker can never
# satisfy a common-code reference with backend-flagged code.  STB_GNU_UNIQUE
# symbols resist both steps; -fno-gnu-unique demotes them to ordinary weak.
check_cxx_compiler_flag("-fno-gnu-unique" TVS_COMPILER_HAS_NO_GNU_UNIQUE)
set(TVS_BACKEND_VIS_FLAGS -fvisibility=hidden -fvisibility-inlines-hidden)
if(TVS_COMPILER_HAS_NO_GNU_UNIQUE)
  list(APPEND TVS_BACKEND_VIS_FLAGS -fno-gnu-unique)
endif()

set(TVS_LOCALIZE_BACKENDS FALSE)
if(CMAKE_OBJCOPY AND CMAKE_LINKER AND NOT TVS_SANITIZE
   AND CMAKE_SYSTEM_NAME STREQUAL "Linux")
  # --force-group-allocation dissolves COMDAT groups during the ld -r step;
  # without it the final link could discard a (by then local) group in
  # favour of a same-named group from another object and strand references.
  execute_process(COMMAND ${CMAKE_LINKER} --help
                  OUTPUT_VARIABLE _tvs_ld_help ERROR_QUIET)
  if(_tvs_ld_help MATCHES "force-group-allocation")
    set(TVS_LOCALIZE_BACKENDS TRUE)
  endif()
endif()

if(NOT TVS_LOCALIZE_BACKENDS)
  # Without the localization pass, a weak template instantiation compiled in
  # a backend-flagged TU could win final-link deduplication and be reached
  # from common code.  That is only safe when this host can execute every
  # compiled backend, so fall back to host-gating the backend set (the
  # pre-dispatch behaviour).  Applies to sanitizer builds, non-Linux hosts,
  # and toolchains without binutils' --force-group-allocation.
  if(TVS_BACKEND_AVX512 AND NOT TVS_CPU_HAS_AVX512)
    message(STATUS "TVS: no symbol localization available - dropping the "
                   "avx512 backend (host CPU cannot execute it)")
    set(TVS_BACKEND_AVX512 FALSE)
  endif()
  if(TVS_BACKEND_AVX2 AND NOT TVS_CPU_HAS_AVX2)
    message(STATUS "TVS: no symbol localization available - dropping the "
                   "avx2 backend (host CPU cannot execute it)")
    set(TVS_BACKEND_AVX2 FALSE)
  endif()
  if(TVS_BACKEND_AVX512)
    set(TVS_SIMD_LEVEL "avx512")
  elseif(TVS_BACKEND_AVX2)
    set(TVS_SIMD_LEVEL "avx2")
  else()
    set(TVS_SIMD_LEVEL "scalar")
  endif()
endif()

# ---- FP determinism --------------------------------------------------------
# The bit-for-bit vector-vs-scalar-oracle contract requires that the ONLY
# fused multiply-adds are the explicit fma() calls in the kernels and
# references.  GCC/Clang default to -ffp-contract=fast, which would let the
# compiler fuse arbitrary a*b+c expressions differently per backend, so
# contraction is pinned off; explicit std::fma / _mm*_fmadd are unaffected.
check_cxx_compiler_flag("-ffp-contract=off" TVS_COMPILER_HAS_FP_CONTRACT)
if(TVS_COMPILER_HAS_FP_CONTRACT)
  set(TVS_FP_FLAGS -ffp-contract=off)
else()
  set(TVS_FP_FLAGS "")
endif()

message(STATUS "TVS SIMD: compiled backends = scalar"
               " avx2=${TVS_BACKEND_AVX2} avx512=${TVS_BACKEND_AVX512}"
               " (requested: ${TVS_SIMD}); host cpu:"
               " avx2=${TVS_CPU_HAS_AVX2} avx512=${TVS_CPU_HAS_AVX512}")
