# SIMD level selection for the temporal-vectorization build.
#
# The vector backend is chosen at compile time by `src/simd/vec.hpp` from
# the architecture macros (__AVX2__ / __AVX512F__), so the instruction-set
# flags must be applied consistently to every TU that instantiates a kernel.
# This module resolves the user-facing TVS_SIMD option against what the
# compiler accepts and (unless cross-compiling) what the host CPU executes:
#
#   TVS_SIMD = AUTO    highest level that passes both checks (default)
#              scalar  no SIMD flags: ScalarVec backend everywhere
#              avx2    -mavx2 -mfma              (the paper's vl = 4 setting)
#              avx512  -mavx2 -mfma -mavx512f    (the vl = 8 future-work path)
#
# Outputs:
#   TVS_SIMD_LEVEL  resolved level string (scalar | avx2 | avx512)
#   TVS_SIMD_FLAGS  list of compile flags for that level
#   TVS_FP_FLAGS    FP-determinism flags (see below)

include(CheckCXXCompilerFlag)
include(CheckCXXSourceCompiles)

set(TVS_SIMD "AUTO" CACHE STRING "SIMD level: AUTO, scalar, avx2, avx512")
set_property(CACHE TVS_SIMD PROPERTY STRINGS AUTO scalar avx2 avx512)
string(TOLOWER "${TVS_SIMD}" _tvs_simd_req)

# ---- compiler support ------------------------------------------------------
check_cxx_compiler_flag("-mavx2" TVS_COMPILER_HAS_MAVX2)
check_cxx_compiler_flag("-mfma" TVS_COMPILER_HAS_MFMA)
check_cxx_compiler_flag("-mavx512f" TVS_COMPILER_HAS_MAVX512F)

# ---- host CPU support (skipped when cross-compiling) -----------------------
# try_run compiles a probe with the candidate flags and executes one
# instruction from the set; SIGILL on an older CPU fails the check and the
# level degrades gracefully instead of producing binaries that crash.
function(_tvs_try_run_probe out_var probe_src flags)
  if(CMAKE_CROSSCOMPILING)
    # Cannot execute target code; trust the compiler check alone.
    set(${out_var} TRUE PARENT_SCOPE)
    return()
  endif()
  try_run(_run_result _compile_result
          ${CMAKE_BINARY_DIR}/tvs_simd_probe
          ${probe_src}
          COMPILE_DEFINITIONS ${flags})
  if(_compile_result AND _run_result EQUAL 0)
    set(${out_var} TRUE PARENT_SCOPE)
  else()
    set(${out_var} FALSE PARENT_SCOPE)
  endif()
endfunction()

set(TVS_CPU_HAS_AVX2 FALSE)
set(TVS_CPU_HAS_AVX512 FALSE)
if(TVS_COMPILER_HAS_MAVX2 AND TVS_COMPILER_HAS_MFMA)
  _tvs_try_run_probe(TVS_CPU_HAS_AVX2
                     ${CMAKE_CURRENT_LIST_DIR}/check_avx2.cpp
                     "-mavx2;-mfma")
endif()
if(TVS_COMPILER_HAS_MAVX512F)
  _tvs_try_run_probe(TVS_CPU_HAS_AVX512
                     ${CMAKE_CURRENT_LIST_DIR}/check_avx512.cpp
                     "-mavx512f")
endif()

# ---- resolve the requested level against what is available -----------------
if(_tvs_simd_req STREQUAL "auto")
  if(CMAKE_CROSSCOMPILING)
    # The probes could not execute target code, so "highest level that
    # passes both checks" is unknowable; anything above scalar could
    # SIGILL on the deployment CPU.  Cross builds must force a level.
    message(STATUS "Cross-compiling: TVS_SIMD=AUTO resolves to scalar "
                   "(set TVS_SIMD=avx2/avx512 explicitly for SIMD builds)")
    set(TVS_SIMD_LEVEL "scalar")
  elseif(TVS_CPU_HAS_AVX512 AND TVS_CPU_HAS_AVX2)
    set(TVS_SIMD_LEVEL "avx512")
  elseif(TVS_CPU_HAS_AVX2)
    set(TVS_SIMD_LEVEL "avx2")
  else()
    set(TVS_SIMD_LEVEL "scalar")
  endif()
elseif(_tvs_simd_req STREQUAL "scalar")
  set(TVS_SIMD_LEVEL "scalar")
elseif(_tvs_simd_req STREQUAL "avx2")
  if(NOT (TVS_COMPILER_HAS_MAVX2 AND TVS_COMPILER_HAS_MFMA))
    message(FATAL_ERROR "TVS_SIMD=avx2 but the compiler rejects -mavx2/-mfma")
  endif()
  if(NOT TVS_CPU_HAS_AVX2)
    message(WARNING "TVS_SIMD=avx2 forced but this host failed the AVX2 "
                    "probe; binaries may not run here")
  endif()
  set(TVS_SIMD_LEVEL "avx2")
elseif(_tvs_simd_req STREQUAL "avx512")
  if(NOT (TVS_COMPILER_HAS_MAVX2 AND TVS_COMPILER_HAS_MFMA
          AND TVS_COMPILER_HAS_MAVX512F))
    message(FATAL_ERROR "TVS_SIMD=avx512 but the compiler rejects the "
                        "required -mavx2/-mfma/-mavx512f flags")
  endif()
  if(NOT TVS_CPU_HAS_AVX512)
    message(WARNING "TVS_SIMD=avx512 forced but this host failed the "
                    "AVX-512F probe; binaries may not run here")
  endif()
  set(TVS_SIMD_LEVEL "avx512")
else()
  message(FATAL_ERROR "Unknown TVS_SIMD value '${TVS_SIMD}' "
                      "(expected AUTO, scalar, avx2, or avx512)")
endif()

if(TVS_SIMD_LEVEL STREQUAL "avx512")
  set(TVS_SIMD_FLAGS -mavx2 -mfma -mavx512f)
elseif(TVS_SIMD_LEVEL STREQUAL "avx2")
  set(TVS_SIMD_FLAGS -mavx2 -mfma)
else()
  set(TVS_SIMD_FLAGS "")
endif()

# ---- FP determinism --------------------------------------------------------
# The bit-for-bit vector-vs-scalar-oracle contract requires that the ONLY
# fused multiply-adds are the explicit fma() calls in the kernels and
# references.  GCC/Clang default to -ffp-contract=fast, which would let the
# compiler fuse arbitrary a*b+c expressions differently per backend, so
# contraction is pinned off; explicit std::fma / _mm*_fmadd are unaffected.
check_cxx_compiler_flag("-ffp-contract=off" TVS_COMPILER_HAS_FP_CONTRACT)
if(TVS_COMPILER_HAS_FP_CONTRACT)
  set(TVS_FP_FLAGS -ffp-contract=off)
else()
  set(TVS_FP_FLAGS "")
endif()

message(STATUS "TVS SIMD level: ${TVS_SIMD_LEVEL} "
               "(flags: '${TVS_SIMD_FLAGS}'; requested: ${TVS_SIMD}; "
               "cpu avx2=${TVS_CPU_HAS_AVX2} avx512=${TVS_CPU_HAS_AVX512})")
