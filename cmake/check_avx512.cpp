// Configure-time CPU probe: executes an AVX-512F instruction and exits 0.
// A machine without AVX-512F dies with SIGILL, which CMake's try_run
// reports as failure, and the AVX-512 (vl = 8) targets degrade to AVX2.
#include <immintrin.h>

int main() {
  __m512d a = _mm512_set1_pd(1.5);
  __m512d b = _mm512_set1_pd(2.0);
  __m512d c = _mm512_fmadd_pd(a, b, a);
  alignas(64) double out[8];
  _mm512_store_pd(out, c);
  return out[7] == 4.5 ? 0 : 1;
}
