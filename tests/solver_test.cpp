// Solver facade: plan cache hit/miss accounting, TVS_PLAN override
// parsing (including malformed specs -> clear errors), and bit-for-bit
// equality of Solver::run against the direct tv_* / diamond_* /
// parallelogram_* entry points for every kernel family.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "solver/solver.hpp"
#include "stencil/lcs_ref.hpp"
#include "tiling/diamond.hpp"
#include "tiling/diamond2d.hpp"
#include "tiling/lcs_wavefront.hpp"
#include "tiling/parallelogram.hpp"
#include "tv/tv1d.hpp"
#include "tv/tv2d.hpp"
#include "tv/tv3d.hpp"
#include "tv/tv_gs1d.hpp"
#include "tv/tv_gs2d.hpp"
#include "tv/tv_gs3d.hpp"
#include "tv/tv_lcs.hpp"
#include "tv/tv_life.hpp"

namespace tvs {
namespace {

using solver::ExecutionPlan;
using solver::Family;
using solver::Path;
using solver::PlanMode;
using solver::Solver;
using solver::StencilProblem;

// Sets an environment variable for one scope and restores the previous
// state on exit (plan_for re-reads TVS_PLAN on every call).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

template <class GridT>
void fill_pattern(GridT& u) {
  if constexpr (requires(GridT g) { g.at(0, 0, 0); }) {
    for (int x = 0; x <= u.nx() + 1; ++x)
      for (int y = 0; y <= u.ny() + 1; ++y)
        for (int z = 0; z <= u.nz() + 1; ++z)
          u.at(x, y, z) = 1.0 + 0.001 * ((x + 2 * y + 3 * z) % 97);
  } else if constexpr (requires(GridT g) { g.at(0, 0); }) {
    for (int x = 0; x <= u.nx() + 1; ++x)
      for (int y = 0; y <= u.ny() + 1; ++y)
        u.at(x, y) = 1.0 + 0.001 * ((x + 2 * y) % 97);
  } else {
    for (int x = 0; x <= u.nx() + 1; ++x) u.at(x) = 1.0 + 0.001 * (x % 97);
  }
}

// ---- plan cache ------------------------------------------------------------

TEST(PlanCache, SignatureHitAndMiss) {
  solver::plan_cache_clear();
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);

  const Solver a(p);
  auto stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 0);

  const Solver b(p);  // identical signature -> hit
  stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(a.plan().to_string(), b.plan().to_string());

  StencilProblem q = p;
  q.nx = 8192;  // different signature -> miss
  const Solver c(q);
  stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.hits, 1);
}

TEST(PlanCache, PinnedLookupsBypassTheCache) {
  solver::plan_cache_clear();
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  {
    const ScopedEnv pin("TVS_PLAN", "stride=9");
    const Solver s(p);
    EXPECT_EQ(s.plan().stride, 9);
  }
  auto stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.pinned, 1);
  EXPECT_EQ(stats.misses, 0);  // the pin was not stored

  const Solver s(p);  // unpinned: plans fresh, not the pinned knobs
  EXPECT_EQ(s.plan().stride, 7);
  stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
}

TEST(PlanCache, ThreadsAndStepsArePartOfTheSignature) {
  solver::plan_cache_clear();
  StencilProblem p = solver::problem_2d(Family::kJacobi2D5, 96, 96, 12);
  const Solver a(p);
  p.threads = 4;
  const Solver b(p);
  p.steps = 24;
  const Solver c(p);
  const auto stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.hits, 0);
}

// ---- TVS_PLAN parsing ------------------------------------------------------

TEST(TvsPlan, OverridesSelectedKnobs) {
  const StencilProblem p = solver::problem_2d(Family::kJacobi2D5, 96, 96, 12);
  const ScopedEnv pin("TVS_PLAN", "stride=3,tile=512x32,path=tiled");
  const Solver s(p);
  EXPECT_EQ(s.plan().stride, 3);
  EXPECT_EQ(s.plan().tile_w, 512);
  EXPECT_EQ(s.plan().tile_h, 32);
  EXPECT_EQ(s.plan().path, Path::kTiledParallel);
}

TEST(TvsPlan, RoundTripsThroughToString) {
  const StencilProblem p = solver::problem_1d(Family::kGs1D3, 4096, 24);
  const ExecutionPlan plan = solver::plan_for(p);
  const ExecutionPlan again =
      solver::apply_plan_spec(solver::heuristic_plan(p), plan.to_string());
  EXPECT_EQ(plan.to_string(), again.to_string());
}

TEST(TvsPlan, MalformedSpecsThrowClearErrors) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  const auto expect_throws = [&](const char* spec, const char* needle) {
    const ScopedEnv pin("TVS_PLAN", spec);
    try {
      const Solver s(p);
      FAIL() << "TVS_PLAN=\"" << spec << "\" was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "spec \"" << spec << "\" produced: " << e.what();
    }
  };
  expect_throws("stride=abc", "not an integer");
  expect_throws("stride", "key=value");
  expect_throws("warp=9", "unknown key");
  expect_throws("tile=12", "WxH");
  expect_throws("tile=x32", "WxH");
  expect_throws("path=warp", "unknown path");
  expect_throws("backend=mmx", "unknown backend");
  expect_throws("vl=five", "not an integer");
  expect_throws("variant=zig", "unknown variant");
}

TEST(TvsPlan, IllegalKnobValuesAreRejectedByValidation) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  {
    // Stride 1 violates s * dt > dx for the 1D3P dependence set.
    const ScopedEnv pin("TVS_PLAN", "stride=1");
    EXPECT_THROW(Solver s(p), std::invalid_argument);
  }
  {
    // Beyond the 1D engines' ring capacity.
    const ScopedEnv pin("TVS_PLAN", "stride=64");
    EXPECT_THROW(Solver s(p), std::invalid_argument);
  }
  {
    // No engine registered at vl=5 anywhere.
    const ScopedEnv pin("TVS_PLAN", "vl=5");
    EXPECT_THROW(Solver s(p), std::invalid_argument);
  }
  {
    // Jacobi 1D5P has no tiled driver.
    const ScopedEnv pin("TVS_PLAN", "path=tiled");
    const StencilProblem q = solver::problem_1d(Family::kJacobi1D5, 4096, 40);
    EXPECT_THROW(Solver s(q), std::invalid_argument);
  }
  {
    // vl pinning is a serial-path knob.
    const ScopedEnv pin("TVS_PLAN", "path=tiled,vl=4");
    EXPECT_THROW(Solver s(p), std::invalid_argument);
  }
}

// ---- the variant knob (redundancy-eliminated engines) -----------------------

TEST(TvsPlan, VariantRoundTripsThroughToString) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  const ScopedEnv pin("TVS_PLAN", "stride=7,variant=re");
  const Solver s(p);
  EXPECT_EQ(s.plan().variant, solver::Variant::kRe);
  EXPECT_NE(s.plan().to_string().find("variant=re"), std::string::npos)
      << s.plan().to_string();
  const ExecutionPlan again =
      solver::apply_plan_spec(solver::heuristic_plan(p), s.plan().to_string());
  EXPECT_EQ(s.plan().to_string(), again.to_string());
  // The default variant stays out of the canonical spec string.
  EXPECT_EQ(solver::heuristic_plan(p).to_string().find("variant"),
            std::string::npos);
}

TEST(TvsPlan, VariantReValidatesForEveryJacobiFamily) {
  for (const StencilProblem& p :
       {solver::problem_1d(Family::kJacobi1D3, 4096, 40),
        solver::problem_1d(Family::kJacobi1D5, 4096, 40),
        solver::problem_2d(Family::kJacobi2D5, 96, 80, 12),
        solver::problem_2d(Family::kJacobi2D9, 96, 80, 12),
        solver::problem_3d(Family::kJacobi3D7, 24, 20, 28, 8)}) {
    ExecutionPlan plan = solver::heuristic_plan(p);
    plan.variant = solver::Variant::kRe;
    EXPECT_NO_THROW(solver::validate_plan(p, plan)) << p.signature();
  }
}

TEST(TvsPlan, VariantReIsRejectedWhereNoReEngineExists) {
  {
    // No re engine for the Gauss-Seidel families.
    const StencilProblem p = solver::problem_1d(Family::kGs1D3, 4096, 24);
    ExecutionPlan plan = solver::heuristic_plan(p);
    plan.variant = solver::Variant::kRe;
    EXPECT_THROW(solver::validate_plan(p, plan), std::invalid_argument);
  }
  {
    // variant=re is a serial-path knob.
    const StencilProblem p =
        solver::problem_2d(Family::kJacobi2D5, 96, 96, 32, 4);
    ExecutionPlan plan = solver::heuristic_plan(p);
    ASSERT_EQ(plan.path, Path::kTiledParallel);
    plan.variant = solver::Variant::kRe;
    EXPECT_THROW(solver::validate_plan(p, plan), std::invalid_argument);
  }
}

TEST(TvsPlan, VariantReRunsBitIdenticalToBaseline) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx);
  fill_pattern(direct);
  tv::tv_jacobi1d3_run(c, direct, p.steps, 7);

  const ScopedEnv pin("TVS_PLAN", "stride=7,variant=re");
  grid::Grid1D<double> got(p.nx);
  fill_pattern(got);
  const Solver s(p);
  s.run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(TvsPlan, VariantReWithWidthPinRunsBitIdentical) {
  const StencilProblem p = solver::problem_2d(Family::kJacobi2D9, 96, 80, 12);
  const stencil::C2D9 c = stencil::box2d9(0.1);
  grid::Grid2D<double> direct(p.nx, p.ny);
  fill_pattern(direct);
  tv::tv_jacobi2d9_run(c, direct, p.steps, 2);

  const ScopedEnv pin("TVS_PLAN", "stride=2,vl=8,variant=re");
  grid::Grid2D<double> got(p.nx, p.ny);
  fill_pattern(got);
  const Solver s(p);
  EXPECT_EQ(s.plan().vl, 8);
  s.run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(TvsPlan, WidthPinningKeepsResultsBitIdentical) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx);
  fill_pattern(direct);
  tv::tv_jacobi1d3_run(c, direct, p.steps, 7);

  const ScopedEnv pin("TVS_PLAN", "vl=8,stride=7");
  grid::Grid1D<double> got(p.nx);
  fill_pattern(got);
  const Solver s(p);
  EXPECT_EQ(s.plan().vl, 8);
  s.run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

// ---- heuristic path choice -------------------------------------------------

TEST(Planner, ThreadsSelectTheTiledPath) {
  EXPECT_EQ(solver::heuristic_plan(
                solver::problem_2d(Family::kJacobi2D5, 96, 96, 12))
                .path,
            Path::kSerialTv);
  EXPECT_EQ(solver::heuristic_plan(
                solver::problem_2d(Family::kJacobi2D5, 96, 96, 12, 4))
                .path,
            Path::kTiledParallel);
  // Jacobi 1D5P has no tiled driver: serial even with a thread budget.
  EXPECT_EQ(solver::heuristic_plan(
                solver::problem_1d(Family::kJacobi1D5, 4096, 40, 4))
                .path,
            Path::kSerialTv);
}

TEST(Planner, TileHeightsAreClampedToTheStepCount) {
  const ExecutionPlan plan = solver::heuristic_plan(
      solver::problem_1d(Family::kJacobi1D3, 1 << 16, 24, 4));
  EXPECT_LE(plan.tile_h, 24);
  EXPECT_EQ(plan.tile_h % 4, 0);
}

TEST(Planner, TunedModeProducesAValidatedPlan) {
  solver::plan_cache_clear();
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 24);
  const ExecutionPlan plan = solver::plan_for(p, PlanMode::kTuned);
  EXPECT_NO_THROW(solver::validate_plan(p, plan));

  // Tuning never changes results, only speed — including when the tuner
  // picked the redundancy-eliminated variant (its candidate set races both
  // variants of every Jacobi stride; which one wins is timing-dependent,
  // but both are bit-identical to the baseline engine).
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx), got(p.nx);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi1d3_run(c, direct, p.steps, plan.stride);
  Solver(p, plan).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(Planner, TunedReCandidateRunsAndMatches) {
  // The tuner's re candidates are real plans: take the heuristic plan,
  // flip the variant the way candidates() does, and drive a full solve —
  // whatever the wall clock says, the answer cannot move.
  const StencilProblem p = solver::problem_2d(Family::kJacobi2D5, 96, 80, 12);
  ExecutionPlan plan = solver::heuristic_plan(p);
  plan.variant = solver::Variant::kRe;
  solver::validate_plan(p, plan);

  const stencil::C2D5 c = stencil::heat2d(0.2);
  grid::Grid2D<double> direct(p.nx, p.ny), got(p.nx, p.ny);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi2d5_run(c, direct, p.steps, plan.stride);
  Solver(p, plan).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

// ---- family / extent checking ----------------------------------------------

TEST(SolverChecks, FamilyAndExtentMismatchesThrow) {
  const StencilProblem p = solver::problem_2d(Family::kJacobi2D5, 96, 96, 12);
  const Solver s(p);
  grid::Grid1D<double> u1(96);
  EXPECT_THROW(s.run(stencil::heat1d(0.25), u1), std::invalid_argument);

  grid::Grid2D<double> wrong(64, 96);
  EXPECT_THROW(s.run(stencil::heat2d(0.2), wrong), std::invalid_argument);

  // The parity-pair overload needs a tiled plan.
  grid::PingPong<grid::Grid2D<double>> pp(96, 96);
  EXPECT_THROW(s.run(stencil::heat2d(0.2), pp), std::invalid_argument);
}

// ---- plan-vs-direct equality, all nine families ----------------------------

TEST(SolverEquality, Jacobi1D3) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 40);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx), got(p.nx);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi1d3_run(c, direct, p.steps, 7);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Jacobi1D5) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D5, 4096, 40);
  const stencil::C1D5 c = stencil::heat1d5(0.1);
  grid::Grid1D<double> direct(p.nx), got(p.nx);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi1d5_run(c, direct, p.steps, 7);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Jacobi2D5) {
  const StencilProblem p = solver::problem_2d(Family::kJacobi2D5, 96, 80, 12);
  const stencil::C2D5 c = stencil::heat2d(0.2);
  grid::Grid2D<double> direct(p.nx, p.ny), got(p.nx, p.ny);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi2d5_run(c, direct, p.steps, 2);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Jacobi2D9) {
  const StencilProblem p = solver::problem_2d(Family::kJacobi2D9, 96, 80, 12);
  const stencil::C2D9 c = stencil::box2d9(0.1);
  grid::Grid2D<double> direct(p.nx, p.ny), got(p.nx, p.ny);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi2d9_run(c, direct, p.steps, 2);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Jacobi3D7) {
  const StencilProblem p =
      solver::problem_3d(Family::kJacobi3D7, 24, 20, 28, 8);
  const stencil::C3D7 c = stencil::heat3d(0.1);
  grid::Grid3D<double> direct(p.nx, p.ny, p.nz), got(p.nx, p.ny, p.nz);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_jacobi3d7_run(c, direct, p.steps, 2);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Gs1D3) {
  const StencilProblem p = solver::problem_1d(Family::kGs1D3, 4096, 24);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx), got(p.nx);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_gs1d3_run(c, direct, p.steps, 3);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Gs2D5) {
  const StencilProblem p = solver::problem_2d(Family::kGs2D5, 96, 80, 12);
  const stencil::C2D5 c{0.0, 0.25, 0.25, 0.25, 0.25};
  grid::Grid2D<double> direct(p.nx, p.ny), got(p.nx, p.ny);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_gs2d5_run(c, direct, p.steps, 2);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Gs3D7) {
  const StencilProblem p = solver::problem_3d(Family::kGs3D7, 24, 20, 28, 8);
  const stencil::C3D7 c = stencil::heat3d(0.1);
  grid::Grid3D<double> direct(p.nx, p.ny, p.nz), got(p.nx, p.ny, p.nz);
  fill_pattern(direct);
  fill_pattern(got);
  tv::tv_gs3d7_run(c, direct, p.steps, 2);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Life) {
  const StencilProblem p = solver::problem_2d(Family::kLife, 64, 72, 16);
  const stencil::LifeRule r{};
  grid::Grid2D<std::int32_t> direct(p.nx, p.ny), got(p.nx, p.ny);
  std::mt19937 rng(11);
  direct.fill(0);
  for (int x = 1; x <= p.nx; ++x)
    for (int y = 1; y <= p.ny; ++y)
      direct.at(x, y) = static_cast<std::int32_t>(rng() & 1u);
  for (int x = 0; x <= p.nx + 1; ++x)
    for (int y = 0; y <= p.ny + 1; ++y) got.at(x, y) = direct.at(x, y);
  tv::tv_life_run(r, direct, p.steps, 2);
  Solver(p).run(r, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEquality, Lcs) {
  std::mt19937 rng(13);
  std::vector<std::int32_t> a(600), b(500);
  for (auto& v : a) v = static_cast<std::int32_t>(rng() % 4);
  for (auto& v : b) v = static_cast<std::int32_t>(rng() % 4);
  const StencilProblem p = solver::problem_2d(
      Family::kLcs, static_cast<int>(a.size()), static_cast<int>(b.size()), 0);
  const Solver s(p);
  EXPECT_EQ(s.lcs(a, b), tv::tv_lcs(a, b));
  EXPECT_EQ(s.lcs_row(a, b), tv::tv_lcs_row(a, b));
  EXPECT_EQ(s.lcs(a, b), stencil::lcs_ref(a, b));
}

// ---- tiled-path equality ---------------------------------------------------

TEST(SolverEqualityTiled, Jacobi1D3Diamond) {
  const StencilProblem p = solver::problem_1d(Family::kJacobi1D3, 4096, 64, 2);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx), got(p.nx);
  fill_pattern(direct);
  fill_pattern(got);

  const ExecutionPlan plan = solver::plan_for(p);
  ASSERT_EQ(plan.path, Path::kTiledParallel);
  tiling::Diamond1DOptions opt{plan.tile_w, plan.tile_h, plan.stride, true};
  tiling::diamond_jacobi1d3_run(c, direct, p.steps, opt);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEqualityTiled, Jacobi2D5Diamond) {
  const StencilProblem p =
      solver::problem_2d(Family::kJacobi2D5, 96, 80, 32, 2);
  const stencil::C2D5 c = stencil::heat2d(0.2);
  grid::Grid2D<double> direct(p.nx, p.ny), got(p.nx, p.ny);
  fill_pattern(direct);
  fill_pattern(got);

  const ExecutionPlan plan = solver::plan_for(p);
  ASSERT_EQ(plan.path, Path::kTiledParallel);
  tiling::Diamond2DOptions opt{plan.tile_w, plan.tile_h, plan.stride, true};
  tiling::diamond_jacobi2d5_run(c, direct, p.steps, opt);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEqualityTiled, Gs1D3Parallelogram) {
  const StencilProblem p = solver::problem_1d(Family::kGs1D3, 4096, 64, 2);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  grid::Grid1D<double> direct(p.nx), got(p.nx);
  fill_pattern(direct);
  fill_pattern(got);

  const ExecutionPlan plan = solver::plan_for(p);
  ASSERT_EQ(plan.path, Path::kTiledParallel);
  tiling::Parallelogram1DOptions opt{plan.tile_w, plan.tile_h, plan.stride,
                                     true};
  tiling::parallelogram_gs1d3_run(c, direct, p.steps, opt);
  Solver(p).run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);
}

TEST(SolverEqualityTiled, LcsWavefront) {
  std::mt19937 rng(17);
  std::vector<std::int32_t> a(3000), b(2500);
  for (auto& v : a) v = static_cast<std::int32_t>(rng() % 4);
  for (auto& v : b) v = static_cast<std::int32_t>(rng() % 4);
  const StencilProblem p =
      solver::problem_2d(Family::kLcs, static_cast<int>(a.size()),
                         static_cast<int>(b.size()), 0, 2);
  const Solver s(p);
  ASSERT_EQ(s.plan().path, Path::kTiledParallel);
  tiling::LcsWavefrontOptions opt{s.plan().tile_w, s.plan().tile_h, true};
  EXPECT_EQ(s.lcs(a, b), tiling::lcs_wavefront(a, b, opt));
}


// ---- float (dtype = f32) plumbing ------------------------------------------

TEST(SolverFloat, SignatureCarriesDtype) {
  StencilProblem p = solver::problem_2d(Family::kJacobi2D5, 64, 32, 10);
  const std::string f64_sig = p.signature();
  EXPECT_EQ(f64_sig.find("dtype"), std::string::npos)
      << "f64 signatures stay unsuffixed: " << f64_sig;
  p.dtype = dispatch::DType::kF32;
  EXPECT_EQ(p.signature(), f64_sig + ":dtype=f32");
}

TEST(SolverFloat, HeuristicDoublesVectorLength) {
  StencilProblem p = solver::problem_1d(Family::kJacobi1D3,
                                        dispatch::DType::kF32, 4096, 64);
  const ExecutionPlan plan = solver::heuristic_plan(p);
  EXPECT_EQ(plan.vl,
            plan.backend == dispatch::Backend::kAvx512 ? 16 : 8)
      << plan.to_string();
  EXPECT_EQ(plan.path, Path::kSerialTv);
  solver::validate_plan(p, plan);  // must not throw
}

TEST(SolverFloat, FloatNeverPlansTiled) {
  // Even with a thread request, float problems stay on the serial path
  // (the tiled drivers are double/int32 only) — and a pinned tiled plan is
  // rejected at validation.
  StencilProblem p = solver::problem_2d(Family::kJacobi2D5,
                                        dispatch::DType::kF32, 256, 256, 64,
                                        /*threads=*/4);
  const ExecutionPlan plan = solver::heuristic_plan(p);
  EXPECT_EQ(plan.path, Path::kSerialTv);
  ExecutionPlan tiled = plan;
  tiled.vl = 0;
  tiled.path = Path::kTiledParallel;
  tiled.tile_w = 64;
  tiled.tile_h = 32;
  EXPECT_THROW(solver::validate_plan(p, tiled), std::invalid_argument);
}

TEST(SolverFloat, DtypeMismatchThrows) {
  // A float problem rejects the double overload and vice versa.
  StencilProblem pf = solver::problem_1d(Family::kJacobi1D3,
                                         dispatch::DType::kF32, 64, 4);
  grid::Grid1D<double> ud(64);
  ud.fill(1.0);
  EXPECT_THROW(Solver(pf).run(stencil::heat1d(0.25), ud),
               std::invalid_argument);
  StencilProblem pd = solver::problem_1d(Family::kJacobi1D3, 64, 4);
  grid::Grid1D<float> uf(64);
  uf.fill(1.0f);
  EXPECT_THROW(Solver(pd).run(stencil::heat1d<float>(0.25), uf),
               std::invalid_argument);
}

TEST(SolverFloat, RunMatchesDirectEntryPointsBitForBit) {
  // The facade resolves the same float engines the public tv_* overloads
  // dispatch to; with the same stride the results are bit-identical.
  const auto fill = [](auto& g, int nx) {
    for (int x = 0; x <= nx + 1; ++x)
      g.at(x) = 1.0f + 0.001f * static_cast<float>(x % 89);
  };
  StencilProblem p = solver::problem_1d(Family::kJacobi1D3,
                                        dispatch::DType::kF32, 200, 9);
  const Solver s(p);
  const stencil::C1D3f c = stencil::heat1d<float>(0.25);
  grid::Grid1D<float> direct(p.nx), got(p.nx);
  fill(direct, p.nx);
  fill(got, p.nx);
  tv::tv_jacobi1d3_run(c, direct, p.steps, s.plan().stride);
  s.run(c, got);
  EXPECT_EQ(grid::max_abs_diff(got, direct), 0.0);

  StencilProblem pg = solver::problem_1d(Family::kGs1D3,
                                         dispatch::DType::kF32, 150, 8);
  const Solver sg(pg);
  grid::Grid1D<float> gdirect(pg.nx), ggot(pg.nx);
  fill(gdirect, pg.nx);
  fill(ggot, pg.nx);
  tv::tv_gs1d3_run(c, gdirect, pg.steps, sg.plan().stride);
  sg.run(c, ggot);
  EXPECT_EQ(grid::max_abs_diff(ggot, gdirect), 0.0);
}

}  // namespace
}  // namespace tvs
