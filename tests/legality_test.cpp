// Tests for the §3.2 legality rule: s*dt > dx for every forward dependence,
// and for its enforcement at the public tv_*_run API boundary.
#include <gtest/gtest.h>

#include <stdexcept>

#include "stencil/dependence.hpp"
#include "tv/tv1d.hpp"
#include "tv/tv2d.hpp"
#include "tv/tv_gs1d.hpp"
#include "tv/tv_life.hpp"

namespace {

using namespace tvs::stencil;

TEST(Legality, Jacobi1D3P) {
  const auto d = jacobi1d_deps(1);
  EXPECT_EQ(d.size(), 3u);
  // Paper: dependencies (1,0), (1,1), (1,-1) -> s > 1, i.e. s >= 2.
  EXPECT_EQ(min_stride(d), 2);
}

TEST(Legality, Jacobi1D5P) {
  EXPECT_EQ(min_stride(jacobi1d_deps(2)), 3);  // dx/dt = 2 -> s >= 3
}

TEST(Legality, HighOrder) {
  EXPECT_EQ(min_stride(jacobi1d_deps(4)), 5);
}

TEST(Legality, Jacobi2D3DProjectSameAs1D) {
  EXPECT_EQ(min_stride(jacobi2d_deps(1)), 2);
  EXPECT_EQ(min_stride(jacobi3d_deps(1)), 2);
}

TEST(Legality, GaussSeidel) {
  // Forward old-value dep (1,1) -> s >= 2; newest west (0,-1) is free.
  EXPECT_EQ(min_stride(gauss_seidel_deps(1)), 2);
}

TEST(Legality, LCS) {
  // Paper: "the space stride must satisfy s >= 1".
  EXPECT_EQ(min_stride(lcs_deps()), 1);
}

TEST(Legality, SameTimeForwardDependenceIsIllegal) {
  const Dep d[] = {{0, 1}};
  EXPECT_EQ(min_stride(d), -1);
}

TEST(Legality, MultiTimeStepDependence) {
  // (dt=2, dx=5): s*2 > 5 -> s >= 3.
  const Dep d[] = {{2, 5}};
  EXPECT_EQ(min_stride(d), 3);
  // (dt=3, dx=6): s*3 > 6 -> s >= 3.
  const Dep e[] = {{3, 6}};
  EXPECT_EQ(min_stride(e), 3);
}

TEST(Legality, BackwardOnlyNeedsStrideOne) {
  const Dep d[] = {{1, 0}, {1, -1}, {0, -1}};
  EXPECT_EQ(min_stride(d), 1);
}

// ---- require_legal_stride: the API-boundary guard --------------------------

TEST(RequireLegalStride, AcceptsLegalRejectsIllegal) {
  const auto deps = jacobi1d_deps(1);
  EXPECT_NO_THROW(require_legal_stride("k", deps, 2));
  EXPECT_NO_THROW(require_legal_stride("k", deps, 7));
  EXPECT_THROW(require_legal_stride("k", deps, 1), std::invalid_argument);
  EXPECT_THROW(require_legal_stride("k", deps, 0), std::invalid_argument);
  EXPECT_THROW(require_legal_stride("k", deps, -3), std::invalid_argument);
}

TEST(RequireLegalStride, EnforcesMaxStride) {
  const auto deps = jacobi1d_deps(1);
  EXPECT_NO_THROW(require_legal_stride("k", deps, 32, 32));
  EXPECT_THROW(require_legal_stride("k", deps, 33, 32), std::invalid_argument);
}

TEST(RequireLegalStride, NamesKernelAndMinimumInMessage) {
  try {
    require_legal_stride("tv_jacobi1d5_run", jacobi1d_deps(2), 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tv_jacobi1d5_run"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3"), std::string::npos) << msg;  // smallest legal s
  }
}

TEST(RequireLegalStride, SameTimeForwardDependenceAlwaysThrows) {
  const Dep d[] = {{0, 1}};
  EXPECT_THROW(require_legal_stride("k", d, 100), std::invalid_argument);
}

// The public entry points enforce the rule instead of corrupting results.
TEST(ApiBoundary, TvEntryPointsRejectIllegalStrides) {
  namespace tv = tvs::tv;
  namespace grid = tvs::grid;
  const C1D3 c3 = heat1d(0.25);
  grid::Grid1D<double> u1(64);
  u1.fill(1.0);
  EXPECT_THROW(tv::tv_jacobi1d3_run(c3, u1, 4, 1), std::invalid_argument);
  EXPECT_THROW(tv::tv_jacobi1d3_run(c3, u1, 4, 0), std::invalid_argument);
  EXPECT_THROW(tv::tv_jacobi1d3_run(c3, u1, 4, 33), std::invalid_argument);
  EXPECT_NO_THROW(tv::tv_jacobi1d3_run(c3, u1, 4, 2));

  const C1D5 c5 = heat1d5(0.1);
  EXPECT_THROW(tv::tv_jacobi1d5_run(c5, u1, 4, 2), std::invalid_argument);
  EXPECT_NO_THROW(tv::tv_jacobi1d5_run(c5, u1, 4, 3));

  EXPECT_THROW(tv::tv_gs1d3_run(c3, u1, 4, 1), std::invalid_argument);
  EXPECT_NO_THROW(tv::tv_gs1d3_run(c3, u1, 4, 2));

  const C2D5 c2 = heat2d(0.1);
  grid::Grid2D<double> u2(24, 12);
  u2.fill(1.0);
  EXPECT_THROW(tv::tv_jacobi2d5_run(c2, u2, 4, 1), std::invalid_argument);
  EXPECT_NO_THROW(tv::tv_jacobi2d5_run(c2, u2, 4, 2));

  const LifeRule rule{};
  grid::Grid2D<std::int32_t> ul(24, 12);
  ul.fill(0);
  EXPECT_THROW(tv::tv_life_run(rule, ul, 4, 1), std::invalid_argument);
}

}  // namespace
