// Tests for the §3.2 legality rule: s*dt > dx for every forward dependence.
#include <gtest/gtest.h>

#include "stencil/dependence.hpp"

namespace {

using namespace tvs::stencil;

TEST(Legality, Jacobi1D3P) {
  const auto d = jacobi1d_deps(1);
  EXPECT_EQ(d.size(), 3u);
  // Paper: dependencies (1,0), (1,1), (1,-1) -> s > 1, i.e. s >= 2.
  EXPECT_EQ(min_stride(d), 2);
}

TEST(Legality, Jacobi1D5P) {
  EXPECT_EQ(min_stride(jacobi1d_deps(2)), 3);  // dx/dt = 2 -> s >= 3
}

TEST(Legality, HighOrder) {
  EXPECT_EQ(min_stride(jacobi1d_deps(4)), 5);
}

TEST(Legality, Jacobi2D3DProjectSameAs1D) {
  EXPECT_EQ(min_stride(jacobi2d_deps(1)), 2);
  EXPECT_EQ(min_stride(jacobi3d_deps(1)), 2);
}

TEST(Legality, GaussSeidel) {
  // Forward old-value dep (1,1) -> s >= 2; newest west (0,-1) is free.
  EXPECT_EQ(min_stride(gauss_seidel_deps(1)), 2);
}

TEST(Legality, LCS) {
  // Paper: "the space stride must satisfy s >= 1".
  EXPECT_EQ(min_stride(lcs_deps()), 1);
}

TEST(Legality, SameTimeForwardDependenceIsIllegal) {
  const Dep d[] = {{0, 1}};
  EXPECT_EQ(min_stride(d), -1);
}

TEST(Legality, MultiTimeStepDependence) {
  // (dt=2, dx=5): s*2 > 5 -> s >= 3.
  const Dep d[] = {{2, 5}};
  EXPECT_EQ(min_stride(d), 3);
  // (dt=3, dx=6): s*3 > 6 -> s >= 3.
  const Dep e[] = {{3, 6}};
  EXPECT_EQ(min_stride(e), 3);
}

TEST(Legality, BackwardOnlyNeedsStrideOne) {
  const Dep d[] = {{1, 0}, {1, -1}, {0, -1}};
  EXPECT_EQ(min_stride(d), 1);
}

}  // namespace
