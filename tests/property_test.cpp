// Randomized cross-backend property harness (the dtype axis's safety net).
//
// A seeded PRNG draws ~50 random (family, extents, steps, stride) problems
// per dtype (f64, f32, i32) and asserts that EVERY registered
// (backend, vl, dtype) engine of the family — enumerated from the
// KernelRegistry, i.e. exactly the surface public dispatch serves —
// matches the scalar reference: lane-for-lane bit equality for double and
// int32, <= tvs::test::kFloatUlpTol scaled-ULP equality for float (in
// practice the float engines are bit-identical too; the ULP bound is the
// documented contract).
//
// Every assertion message carries the master seed and the per-case seed,
// so a failure reproduces with TVS_PROPERTY_SEED=<master seed>.  The suite
// runs in the fast tier and under every forced backend (the registry
// enumeration is per-backend, so a forced run re-checks the same table —
// cheap insurance that dispatch and direct lookups agree).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "dispatch/backend.hpp"
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "solver/solver.hpp"
#include "stencil/lcs_ref.hpp"
#include "stencil/life_ref.hpp"
#include "stencil/reference1d.hpp"
#include "stencil/reference2d.hpp"
#include "stencil/reference3d.hpp"
#include "tolerance.hpp"
#include "tv/tv_lcs.hpp"  // kLcsRowPad

namespace {

using namespace tvs;
using dispatch::Backend;
using dispatch::DType;
using dispatch::KernelRegistry;

constexpr int kCasesPerDtype = 50;

unsigned master_seed() {
  if (const char* env = std::getenv("TVS_PROPERTY_SEED");
      env != nullptr && env[0] != '\0') {
    return static_cast<unsigned>(std::strtoul(env, nullptr, 0));
  }
  return 0xC0FFEEu;
}

std::vector<Backend> executable_backends() {
  std::vector<Backend> r;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    if (dispatch::cpu_supports(b) && KernelRegistry::instance().has_backend(b))
      r.push_back(b);
  }
  return r;
}

// Registry signature aliases + dtype tag per element type.
template <class T>
struct EngineOf;
template <>
struct EngineOf<double> {
  static constexpr DType dt = DType::kF64;
  using J1D3 = dispatch::TvJacobi1D3Fn;
  using J1D5 = dispatch::TvJacobi1D5Fn;
  using J2D5 = dispatch::TvJacobi2D5Fn;
  using J2D9 = dispatch::TvJacobi2D9Fn;
  using J3D7 = dispatch::TvJacobi3D7Fn;
  using G1D3 = dispatch::TvGs1D3Fn;
  using G2D5 = dispatch::TvGs2D5Fn;
  using G3D7 = dispatch::TvGs3D7Fn;
};
template <>
struct EngineOf<float> {
  static constexpr DType dt = DType::kF32;
  using J1D3 = dispatch::TvJacobi1D3F32Fn;
  using J1D5 = dispatch::TvJacobi1D5F32Fn;
  using J2D5 = dispatch::TvJacobi2D5F32Fn;
  using J2D9 = dispatch::TvJacobi2D9F32Fn;
  using J3D7 = dispatch::TvJacobi3D7F32Fn;
  using G1D3 = dispatch::TvGs1D3F32Fn;
  using G2D5 = dispatch::TvGs2D5F32Fn;
  using G3D7 = dispatch::TvGs3D7F32Fn;
};

// One problem case: the context string every assertion carries.
struct Ctx {
  unsigned master, seed;
  int casenum;
  std::string what;

  std::string str(Backend b, int vl) const {
    return what + " backend=" + std::string(dispatch::backend_name(b)) +
           " vl=" + std::to_string(vl) +
           " [case=" + std::to_string(casenum) +
           " seed=" + std::to_string(seed) +
           " TVS_PROPERTY_SEED=" + std::to_string(master) + "]";
  }
};

template <class T, class G, class Rng>
G random_grid1(int nx, Rng& rng) {
  G g(nx);
  g.fill_random(rng, T(-1), T(1));
  return g;
}

// The grids deliberately do not have copy constructors (AlignedBuffer is
// move-only); the harness clones via explicit element copies, padding
// included for 1D (the radius-2 kernels read boundary cells there).
template <class T>
grid::Grid1D<T> clone(const grid::Grid1D<T>& g) {
  grid::Grid1D<T> r(g.nx());
  for (int x = -grid::kPad; x <= g.nx() + 1 + grid::kPad; ++x)
    r.at(x) = g.at(x);
  return r;
}
template <class T>
grid::Grid2D<T> clone(const grid::Grid2D<T>& g) {
  grid::Grid2D<T> r(g.nx(), g.ny());
  for (int x = 0; x <= g.nx() + 1; ++x)
    for (int y = 0; y <= g.ny() + 1; ++y) r.at(x, y) = g.at(x, y);
  return r;
}
template <class T>
grid::Grid3D<T> clone(const grid::Grid3D<T>& g) {
  grid::Grid3D<T> r(g.nx(), g.ny(), g.nz());
  for (int x = 0; x <= g.nx() + 1; ++x)
    for (int y = 0; y <= g.ny() + 1; ++y)
      for (int z = 0; z <= g.nz() + 1; ++z) r.at(x, y, z) = g.at(x, y, z);
  return r;
}

// Enumerates every (backend, width) engine of `id` at dtype `dt` and runs
// `engine(fn_ptr, ctx_string)` for each.  Widths come straight from the
// registry, so a newly registered width is covered automatically.
template <class Fn, class RunFn>
void for_each_engine(std::string_view id, DType dt, const Ctx& ctx,
                     RunFn&& run) {
  KernelRegistry& reg = KernelRegistry::instance();
  for (const Backend b : executable_backends()) {
    for (const int vl : reg.registered_widths(id, b, dt)) {
      Fn* fn = reg.get_at<Fn>(id, b, vl, dt);
      ASSERT_NE(fn, nullptr) << ctx.str(b, vl);
      run(fn, ctx.str(b, vl));
    }
  }
}

// Same, across a set of interchangeable engine ids (a baseline id and its
// redundancy-eliminated twin share the Fn alias and the oracle); the id is
// appended to the assertion context so a failure names the engine.
template <class Fn, class RunFn>
void for_each_engine_of(std::initializer_list<std::string_view> ids, DType dt,
                        const Ctx& ctx, RunFn&& run) {
  for (const std::string_view id : ids) {
    Ctx named = ctx;
    named.what += " id=" + std::string(id);
    for_each_engine<Fn>(id, dt, named, run);
  }
}

// ---- FP families ------------------------------------------------------------

template <class T>
void check_case_1d(const Ctx& ctx, int which, int nx, long steps, int stride,
                   unsigned seed) {
  using E = EngineOf<T>;
  std::mt19937_64 rng(seed);
  if (which == 0) {  // jacobi1d3
    const stencil::C1D3T<T> c = stencil::heat1d<T>(0.23);
    auto ref = random_grid1<T, grid::Grid1D<T>>(nx, rng);
    const auto init = clone(ref);
    stencil::jacobi1d3_run(c, ref, steps);
    for_each_engine_of<typename E::J1D3>(
        {dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D3Re}, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  } else if (which == 1) {  // jacobi1d5 (radius 2: stride >= 3)
    const stencil::C1D5T<T> c = stencil::heat1d5<T>(0.11);
    auto ref = random_grid1<T, grid::Grid1D<T>>(nx, rng);
    const auto init = clone(ref);
    const int s = stride < 3 ? 3 : stride;
    stencil::jacobi1d5_run(c, ref, steps);
    for_each_engine_of<typename E::J1D5>(
        {dispatch::kTvJacobi1D5, dispatch::kTvJacobi1D5Re}, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, s);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  } else {  // gs1d3
    const stencil::C1D3T<T> c = stencil::heat1d<T>(0.21);
    auto ref = random_grid1<T, grid::Grid1D<T>>(nx, rng);
    const auto init = clone(ref);
    stencil::gs1d3_run(c, ref, steps);
    for_each_engine<typename E::G1D3>(
        dispatch::kTvGs1D3, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  }
}

template <class T>
void check_case_2d(const Ctx& ctx, int which, int nx, int ny, long steps,
                   int stride, unsigned seed) {
  using E = EngineOf<T>;
  std::mt19937_64 rng(seed);
  grid::Grid2D<T> init(nx, ny);
  init.fill_random(rng, T(-1), T(1));
  if (which == 0) {  // jacobi2d5
    const stencil::C2D5T<T> c = stencil::heat2d<T>(0.19);
    auto ref = clone(init);
    stencil::jacobi2d5_run(c, ref, steps);
    for_each_engine_of<typename E::J2D5>(
        {dispatch::kTvJacobi2D5, dispatch::kTvJacobi2D5Re}, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  } else if (which == 1) {  // jacobi2d9
    const stencil::C2D9T<T> c = stencil::box2d9<T>(0.09);
    auto ref = clone(init);
    stencil::jacobi2d9_run(c, ref, steps);
    for_each_engine_of<typename E::J2D9>(
        {dispatch::kTvJacobi2D9, dispatch::kTvJacobi2D9Re}, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  } else {  // gs2d5
    const stencil::C2D5T<T> c = stencil::heat2d<T>(0.17);
    auto ref = clone(init);
    stencil::gs2d5_run(c, ref, steps);
    for_each_engine<typename E::G2D5>(
        dispatch::kTvGs2D5, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  }
}

template <class T>
void check_case_3d(const Ctx& ctx, int which, int nx, int ny, int nz,
                   long steps, int stride, unsigned seed) {
  using E = EngineOf<T>;
  std::mt19937_64 rng(seed);
  grid::Grid3D<T> init(nx, ny, nz);
  init.fill_random(rng, T(-1), T(1));
  if (which == 0) {  // jacobi3d7
    const stencil::C3D7T<T> c = stencil::heat3d<T>(0.07);
    auto ref = clone(init);
    stencil::jacobi3d7_run(c, ref, steps);
    for_each_engine_of<typename E::J3D7>(
        {dispatch::kTvJacobi3D7, dispatch::kTvJacobi3D7Re}, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  } else {  // gs3d7
    const stencil::C3D7T<T> c = stencil::heat3d<T>(0.06);
    auto ref = clone(init);
    stencil::gs3d7_run(c, ref, steps);
    for_each_engine<typename E::G3D7>(
        dispatch::kTvGs3D7, E::dt, ctx, [&](auto* fn, const auto& what) {
          auto got = clone(init);
          fn(c, got, steps, stride);
          ASSERT_TRUE(test::grids_allclose(ref, got)) << what;
        });
  }
}

template <class T>
void run_fp_cases(const char* dtype_name) {
  const unsigned master = master_seed();
  std::mt19937_64 top(master ^ (std::is_same_v<T, float> ? 0x5eedF32u : 0u));
  for (int i = 0; i < kCasesPerDtype; ++i) {
    const unsigned seed = static_cast<unsigned>(top());
    std::mt19937_64 pick(seed);
    const auto draw = [&](int lo, int hi) {
      return static_cast<int>(lo + pick() % static_cast<unsigned>(hi - lo + 1));
    };
    const int dim = draw(1, 3);
    Ctx ctx{master, seed, i, ""};
    if (dim == 1) {
      const int which = draw(0, 2);
      const int nx = draw(5, 260);
      const long steps = draw(1, 20);
      const int stride = draw(2, 9);
      ctx.what = std::string(dtype_name) + " 1D which=" +
                 std::to_string(which) + " nx=" + std::to_string(nx) +
                 " steps=" + std::to_string(steps) +
                 " s=" + std::to_string(stride);
      check_case_1d<T>(ctx, which, nx, steps, stride, seed + 1);
    } else if (dim == 2) {
      const int which = draw(0, 2);
      const int nx = draw(5, 56);
      const int ny = draw(3, 24);
      const long steps = draw(1, 12);
      const int stride = draw(2, 4);
      ctx.what = std::string(dtype_name) + " 2D which=" +
                 std::to_string(which) + " nx=" + std::to_string(nx) +
                 " ny=" + std::to_string(ny) +
                 " steps=" + std::to_string(steps) +
                 " s=" + std::to_string(stride);
      check_case_2d<T>(ctx, which, nx, ny, steps, stride, seed + 1);
    } else {
      const int which = draw(0, 1);
      const int nx = draw(5, 40);
      const int ny = draw(3, 10);
      const int nz = draw(3, 10);
      const long steps = draw(1, 10);
      const int stride = draw(2, 3);
      ctx.what = std::string(dtype_name) + " 3D which=" +
                 std::to_string(which) + " nx=" + std::to_string(nx) +
                 " ny=" + std::to_string(ny) + " nz=" + std::to_string(nz) +
                 " steps=" + std::to_string(steps) +
                 " s=" + std::to_string(stride);
      check_case_3d<T>(ctx, which, nx, ny, nz, steps, stride, seed + 1);
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Property, RandomProblemsF64) { run_fp_cases<double>("f64"); }

TEST(Property, RandomProblemsF32) { run_fp_cases<float>("f32"); }

// ---- int32 families (Life + LCS) -------------------------------------------

TEST(Property, RandomProblemsI32) {
  const unsigned master = master_seed();
  std::mt19937_64 top(master ^ 0x5eed132u);
  for (int i = 0; i < kCasesPerDtype; ++i) {
    const unsigned seed = static_cast<unsigned>(top());
    std::mt19937_64 pick(seed);
    const auto draw = [&](int lo, int hi) {
      return static_cast<int>(lo + pick() % static_cast<unsigned>(hi - lo + 1));
    };
    Ctx ctx{master, seed, i, ""};
    if (draw(0, 1) == 0) {  // Life
      const int nx = draw(5, 48), ny = draw(3, 20);
      const long steps = draw(1, 12);
      const int stride = draw(2, 4);
      ctx.what = "i32 life nx=" + std::to_string(nx) +
                 " ny=" + std::to_string(ny) +
                 " steps=" + std::to_string(steps) +
                 " s=" + std::to_string(stride);
      const stencil::LifeRule rule{};
      std::mt19937_64 rng(seed + 1);
      grid::Grid2D<std::int32_t> init(nx, ny);
      init.fill_random(rng, 0, 1);
      auto ref = clone(init);
      stencil::life_run(rule, ref, steps);
      for_each_engine<dispatch::TvLifeFn>(
          dispatch::kTvLife, DType::kI32, ctx,
          [&](auto* fn, const auto& what) {
            auto got = clone(init);
            fn(rule, got, steps, stride);
            ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0) << what;
          });
    } else {  // LCS
      const int na = draw(1, 160), nb = draw(1, 140);
      ctx.what = "i32 lcs na=" + std::to_string(na) +
                 " nb=" + std::to_string(nb);
      std::mt19937_64 rng(seed + 1);
      std::uniform_int_distribution<std::int32_t> d(0, 3);
      std::vector<std::int32_t> a(static_cast<std::size_t>(na)),
          b(static_cast<std::size_t>(nb));
      for (auto& v : a) v = d(rng);
      for (auto& v : b) v = d(rng);
      const auto expect = stencil::lcs_ref_row(a, b);
      for_each_engine<dispatch::TvLcsRowsFn>(
          dispatch::kTvLcsRows, DType::kI32, ctx,
          [&](auto* fn, const auto& what) {
            std::vector<std::int32_t> row(b.size() + 1 + tv::kLcsRowPad, 0);
            fn(a, b, row.data());
            for (std::size_t k = 0; k < expect.size(); ++k)
              ASSERT_EQ(row[k], expect[k]) << what << " k=" << k;
          });
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- acceptance: float Jacobi 1D/2D/3D through Solver::run at vl=8/16 ------

template <class Problem, class CoefT, class GridT, class RefFn>
void solver_float_check(const Problem& p, const CoefT& c, const GridT& init,
                        RefFn&& ref_run, int vl) {
  solver::ExecutionPlan plan = solver::heuristic_plan(p);
  plan.vl = vl;
  const solver::Solver s(p, plan);
  GridT ref = clone(init);
  GridT got = clone(init);
  ref_run(c, ref, p.steps);
  s.run(c, got);
  ASSERT_TRUE(test::grids_allclose(ref, got))
      << "float Solver::run vl=" << vl << " problem " << p.signature();
}

TEST(Property, SolverFloatJacobiMatchesFloatOracle) {
  using solver::Family;
  std::mt19937_64 rng(master_seed() ^ 0xF10A7u);
  for (const int vl : {8, 16}) {
    {
      auto p = solver::problem_1d(Family::kJacobi1D3, DType::kF32, 200, 9);
      grid::Grid1D<float> u(p.nx);
      u.fill_random(rng, -1.0f, 1.0f);
      solver_float_check(p, stencil::heat1d<float>(0.24), u,
                         [](const auto& c, auto& g, long steps) {
                           stencil::jacobi1d3_run(c, g, steps);
                         },
                         vl);
    }
    {
      auto p = solver::problem_2d(Family::kJacobi2D5, DType::kF32, 48, 18, 9);
      grid::Grid2D<float> u(p.nx, p.ny);
      u.fill_random(rng, -1.0f, 1.0f);
      solver_float_check(p, stencil::heat2d<float>(0.18), u,
                         [](const auto& c, auto& g, long steps) {
                           stencil::jacobi2d5_run(c, g, steps);
                         },
                         vl);
    }
    {
      auto p =
          solver::problem_3d(Family::kJacobi3D7, DType::kF32, 40, 8, 8, 9);
      grid::Grid3D<float> u(p.nx, p.ny, p.nz);
      u.fill_random(rng, -1.0f, 1.0f);
      solver_float_check(p, stencil::heat3d<float>(0.08), u,
                         [](const auto& c, auto& g, long steps) {
                           stencil::jacobi3d7_run(c, g, steps);
                         },
                         vl);
    }
  }
}

}  // namespace
