// Property tests for the temporally vectorized 1D Jacobi kernels.
//
// The engine and the scalar oracle evaluate the identical canonical fma
// formulas, so every comparison here is *exact* (bit-for-bit), on both the
// intrinsic and the scalar vector backend, across:
//   - strides s from the legal minimum to 9 (paper default 7),
//   - sizes crossing the nx >= 4s steady-region threshold,
//   - step counts with T % 4 != 0 (scalar residual path),
//   - random coefficients and boundary values,
//   - radius 1 (1D3P) and radius 2 (1D5P) stencils.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "stencil/reference1d.hpp"
#include "tv/functors1d.hpp"
#include "tv/tv1d.hpp"
#include "tv/tv1d_impl.hpp"

namespace {

using namespace tvs;
using Grid = grid::Grid1D<double>;

Grid make_random(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  Grid g(nx);
  g.fill_random(rng, -1.0, 1.0);
  // Radius-2 boundary cells too.
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  g.at(-1) = d(rng);
  g.at(nx + 2) = d(rng);
  return g;
}

void copy(const Grid& src, Grid& dst) {
  for (int x = -2; x <= src.nx() + 3; ++x) dst.at(x) = src.at(x);
}

// ---- parameterized sweep: (nx, steps, stride) ------------------------------

using P = std::tuple<int, long, int>;
class Tv1dSweep : public ::testing::TestWithParam<P> {};

TEST_P(Tv1dSweep, MatchesOracleExactly3P) {
  const auto [nx, steps, s] = GetParam();
  const stencil::C1D3 c{0.3, 0.45, 0.25};
  Grid ref = make_random(nx, 7u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  tv::tv_jacobi1d3_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " steps=" << steps << " s=" << s;
}

TEST_P(Tv1dSweep, ScalarBackendMatchesOracleExactly3P) {
  const auto [nx, steps, s] = GetParam();
  const stencil::C1D3 c{0.28, 0.5, 0.22};
  Grid ref = make_random(nx, 11u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  using SV = simd::ScalarVec<double, 4>;
  tv::tv1d_run<SV>(tv::J1D3F<SV>(c), got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " steps=" << steps << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    SizeStepsStride, Tv1dSweep,
    ::testing::Combine(
        // sizes: below/at/above the 4s threshold for every stride, odd sizes
        ::testing::Values(1, 5, 7, 8, 16, 27, 28, 29, 36, 37, 63, 64, 65, 100,
                          129, 257, 1000),
        ::testing::Values(1L, 2L, 3L, 4L, 5L, 8L, 11L),
        ::testing::Values(2, 3, 5, 7, 9)),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---- 1D5P (radius 2) --------------------------------------------------------

using P5 = std::tuple<int, long, int>;
class Tv1dSweep5P : public ::testing::TestWithParam<P5> {};

TEST_P(Tv1dSweep5P, MatchesOracleExactly5P) {
  const auto [nx, steps, s] = GetParam();
  const stencil::C1D5 c{0.05, 0.2, 0.5, 0.15, 0.1};
  Grid ref = make_random(nx, 101u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::jacobi1d5_run(c, ref, steps);
  tv::tv_jacobi1d5_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " steps=" << steps << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    SizeStepsStride, Tv1dSweep5P,
    ::testing::Combine(::testing::Values(4, 11, 12, 13, 40, 57, 128, 399),
                       ::testing::Values(1L, 4L, 6L, 9L),
                       ::testing::Values(3, 4, 7)),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---- targeted cases ---------------------------------------------------------

TEST(Tv1d, RandomCoefficientsProperty) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  for (int it = 0; it < 25; ++it) {
    const stencil::C1D3 c{d(rng), d(rng), d(rng)};
    const int nx = 30 + it * 13;
    const long steps = 1 + it % 9;
    const int s = 2 + it % 7;
    Grid ref = make_random(nx, 200u + static_cast<unsigned>(it)), got(nx);
    copy(ref, got);
    stencil::jacobi1d3_run(c, ref, steps);
    tv::tv_jacobi1d3_run(c, got, steps, s);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
        << "it=" << it << " nx=" << nx << " steps=" << steps << " s=" << s;
  }
}

TEST(Tv1d, NonZeroBoundaryValuesStayFixed) {
  const stencil::C1D3 c = stencil::heat1d(0.25);
  Grid u(64);
  u.fill(0.0);
  u.at(0) = 3.5;
  u.at(65) = -2.5;
  tv::tv_jacobi1d3_run(c, u, 40, 7);
  EXPECT_EQ(u.at(0), 3.5);
  EXPECT_EQ(u.at(65), -2.5);
  // Interior pulled towards the boundary values.
  EXPECT_GT(u.at(1), 0.0);
  EXPECT_LT(u.at(64), 0.0);
}

TEST(Tv1d, ZeroStepsIsIdentity) {
  Grid a = make_random(77, 5), b(77);
  copy(a, b);
  tv::tv_jacobi1d3_run(stencil::heat1d(0.2), b, 0);
  EXPECT_EQ(grid::max_abs_diff(a, b), 0.0);
}

TEST(Tv1d, LongRunStability) {
  // Heat kernel is a contraction: values must remain bounded by the initial
  // envelope under many tiles.
  Grid u = make_random(513, 31);
  u.at(0) = 0.0;
  u.at(514) = 0.0;
  tv::tv_jacobi1d3_run(stencil::heat1d(0.25), u, 1000, 7);
  for (int x = 1; x <= 513; ++x) {
    EXPECT_LT(std::abs(u.at(x)), 1.0 + 1e-9);
  }
}

TEST(Tv1d, StrideEqualsMinimumLegal) {
  // s = radius+1 is the smallest legal stride; the paper's Algorithm 3 uses
  // s = 2 for the 1D3P illustration.
  const stencil::C1D3 c{0.25, 0.5, 0.25};
  Grid ref = make_random(240, 77), got(240);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, 16);
  tv::tv_jacobi1d3_run(c, got, 16, 2);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

}  // namespace
