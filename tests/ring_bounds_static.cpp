// Compile-time ring-bounds verification: every registered
// (dtype, vl, legal stride) combination of every ring-based engine is
// traced through the constexpr models in ring_bounds_model.hpp, and any
// out-of-bounds ring slot fails the build (see ring_bounds_oob.cpp for
// the deliberately-broken twin that CTest requires to NOT compile).
//
// The combination list is generated from the registry support matrix:
//   python3 tools/tvsrace/gen_ring_combos.py
// and kept in sync by the ring_combos_sync CTest entry.
#include "ring_bounds_model.hpp"

namespace tvs::ringtest {

// dtype tokens appear in the combo list for auditability; the trace only
// depends on (vl, param, stride).
#define TVS_RING_COMBO(id, family, dtype, vl, param, stride) \
  static_assert(check_##family<vl, param>(stride, 1),        \
                #id " " #dtype " vl=" #vl " s=" #stride      \
                    ": ring index trace left [0, capacity)");
#include "ring_combos.inc"
#undef TVS_RING_COMBO

// The largest registered period must exactly fill the fixed ring storage:
// jacobi1d5 at s = 32 gives M = 34 = kRingCapacity.  If someone widens
// kMaxStride without widening the capacity, the traces above break first;
// this assert documents the intended fit.
static_assert(tv::kRingCapacity == tv::kMaxStride + 2,
              "ring capacity must cover the largest registered period");

}  // namespace tvs::ringtest

// The target is compile-only; give the archiver one symbol to keep every
// toolchain happy about empty translation units.
namespace tvs::ringtest {
int ring_bounds_static_anchor() { return 0; }
}  // namespace tvs::ringtest
