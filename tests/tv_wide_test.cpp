// Eight-lane double backends: the AVX-512 VecD8 ops against the scalar
// model, and the vl = 8 temporal engines (8 time steps per tile) against
// the oracle — also on the pure scalar backend so the 8-level tile geometry
// is validated on any machine.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "simd/reorg.hpp"
#include "simd/vec.hpp"
#include "stencil/reference2d.hpp"
#include "stencil/reference3d.hpp"
#include "tv/functors2d.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv2d_impl.hpp"
#include "tv/tv3d_impl.hpp"

namespace {

using namespace tvs;

// vl = 8 engines through the registry's width axis (the AVX-512 native
// engines on an AVX-512 host, ScalarVec<double, 8> elsewhere) — the
// tv2d_wide.hpp shim that used to wrap this lookup is gone.
template <class Fn>
Fn* at_vl8(std::string_view id) {
  return dispatch::KernelRegistry::instance().get_at<Fn>(
      id, dispatch::selected_backend(), 8);
}

#if defined(__AVX512F__)
TEST(VecD8, OpsMatchScalarModel) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(-10, 10);
  using I = simd::VecD8;
  using S = simd::ScalarVec<double, 8>;
  for (int it = 0; it < 300; ++it) {
    alignas(64) double a[8], b[8], c[8];
    for (int i = 0; i < 8; ++i) {
      a[i] = d(rng);
      b[i] = d(rng);
      c[i] = d(rng);
    }
    const auto ia = I::load(a), ib = I::load(b), ic = I::load(c);
    const auto sa = S::load(a), sb = S::load(b), sc = S::load(c);
    const auto chk = [](auto vi, auto vs) {
      for (int i = 0; i < 8; ++i) ASSERT_EQ(vi[i], vs[i]);
    };
    chk(ia + ib, sa + sb);
    chk(ia - ib, sa - sb);
    chk(ia * ib, sa * sb);
    chk(fma(ia, ib, ic), fma(sa, sb, sc));
    chk(min(ia, ib), min(sa, sb));
    chk(max(ia, ib), max(sa, sb));
    chk(rotate_up(ia), rotate_up(sa));
    chk(rotate_down(ia), rotate_down(sa));
    chk(shift_in_low(ia, c[0]), shift_in_low(sa, c[0]));
    chk(simd::shift_in_low_v(ia, ic), simd::shift_in_low_v(sa, sc));
    chk(blendv(ia, ib, cmpeq(ia, ia)), blendv(sa, sb, cmpeq(sa, sa)));
    chk(blendv(ia, ib, cmpeq(ia, ib)), blendv(sa, sb, cmpeq(sa, sb)));
    ASSERT_EQ(ia.extract<5>(), a[5]);
    chk(ia.insert<6>(42.0), sa.insert<6>(42.0));
    ASSERT_EQ(simd::top_lane(ia), a[7]);
  }
}

TEST(VecI16, OpsMatchScalarModel) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::int32_t> d(-100, 100);
  using I = simd::VecI16;
  using S = simd::ScalarVec<std::int32_t, 16>;
  for (int it = 0; it < 300; ++it) {
    alignas(64) std::int32_t a[16], b[16], c[16];
    for (int i = 0; i < 16; ++i) {
      a[i] = d(rng);
      b[i] = d(rng);
      c[i] = d(rng);
    }
    // Force some lane equalities so cmpeq hits both arms.
    a[it % 16] = b[it % 16];
    const auto ia = I::load(a), ib = I::load(b), ic = I::load(c);
    const auto sa = S::load(a), sb = S::load(b), sc = S::load(c);
    const auto chk = [](auto vi, auto vs) {
      for (int i = 0; i < 16; ++i) ASSERT_EQ(vi[i], vs[i]);
    };
    chk(ia + ib, sa + sb);
    chk(ia - ib, sa - sb);
    chk(ia * ib, sa * sb);
    chk(fma(ia, ib, ic), fma(sa, sb, sc));
    chk(min(ia, ib), min(sa, sb));
    chk(max(ia, ib), max(sa, sb));
    chk(cmpeq(ia, ib), cmpeq(sa, sb));
    chk(blendv(ia, ib, cmpeq(ia, ib)), blendv(sa, sb, cmpeq(sa, sb)));
    chk(rotate_up(ia), rotate_up(sa));
    chk(rotate_down(ia), rotate_down(sa));
    chk(shift_in_low(ia, c[0]), shift_in_low(sa, c[0]));
    chk(simd::shift_in_low_v(ia, ic), simd::shift_in_low_v(sa, sc));
    ASSERT_EQ(ia.extract<11>(), a[11]);
    chk(ia.insert<13>(42), sa.insert<13>(42));
    ASSERT_EQ(simd::top_lane(ia), a[15]);
  }
}

TEST(VecI16, CollectTops16) {
  using I = simd::VecI16;
  I ws[16];
  for (int j = 0; j < 16; ++j) {
    alignas(64) std::int32_t tmp[16] = {};
    tmp[15] = 100 + j;
    ws[j] = I::load(tmp);
  }
  const I t = simd::collect_tops_arr(ws);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(t[i], 100 + i);
}

TEST(VecF16, OpsMatchScalarModel) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> d(-10.0f, 10.0f);
  using I = simd::VecF16;
  using S = simd::ScalarVec<float, 16>;
  for (int it = 0; it < 300; ++it) {
    alignas(64) float a[16], b[16], c[16];
    for (int i = 0; i < 16; ++i) {
      a[i] = d(rng);
      b[i] = d(rng);
      c[i] = d(rng);
    }
    a[it % 16] = b[it % 16];  // exercise both cmpeq arms
    const auto ia = I::load(a), ib = I::load(b), ic = I::load(c);
    const auto sa = S::load(a), sb = S::load(b), sc = S::load(c);
    const auto chk = [](auto vi, auto vs) {
      for (int i = 0; i < 16; ++i) ASSERT_EQ(vi[i], vs[i]);
    };
    chk(ia + ib, sa + sb);
    chk(ia - ib, sa - sb);
    chk(ia * ib, sa * sb);
    chk(fma(ia, ib, ic), fma(sa, sb, sc));
    chk(min(ia, ib), min(sa, sb));
    chk(max(ia, ib), max(sa, sb));
    chk(rotate_up(ia), rotate_up(sa));
    chk(rotate_down(ia), rotate_down(sa));
    chk(shift_in_low(ia, c[0]), shift_in_low(sa, c[0]));
    chk(simd::shift_in_low_v(ia, ic), simd::shift_in_low_v(sa, sc));
    chk(blendv(ia, ib, cmpeq(ia, ia)), blendv(sa, sb, cmpeq(sa, sa)));
    chk(blendv(ia, ib, cmpeq(ia, ib)), blendv(sa, sb, cmpeq(sa, sb)));
    ASSERT_EQ(ia.extract<9>(), a[9]);
    chk(ia.insert<13>(42.0f), sa.insert<13>(42.0f));
    ASSERT_EQ(simd::top_lane(ia), a[15]);
  }
}

TEST(VecF16, CollectTops16) {
  using I = simd::VecF16;
  I ws[16];
  for (int j = 0; j < 16; ++j) {
    alignas(64) float tmp[16] = {};
    tmp[15] = 100.0f + static_cast<float>(j);
    ws[j] = I::load(tmp);
  }
  const I t = simd::collect_tops_arr(ws);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(t[i], 100.0f + static_cast<float>(i));
}

TEST(VecD8, CollectTops8) {
  using I = simd::VecD8;
  I ws[8];
  for (int j = 0; j < 8; ++j) {
    alignas(64) double tmp[8] = {};
    tmp[7] = 100 + j;
    ws[j] = I::load(tmp);
  }
  const I t = simd::collect_tops(ws[0], ws[1], ws[2], ws[3], ws[4], ws[5],
                                 ws[6], ws[7]);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(t[i], 100 + i);
}
#endif

using GridD2 = grid::Grid2D<double>;
using GridD3 = grid::Grid3D<double>;

// (nx, ny, steps, stride): nx must cross the vl*s = 16s threshold.
using P = std::tuple<int, int, long, int>;
class TvWide2D : public ::testing::TestWithParam<P> {};

TEST_P(TvWide2D, NativeVl8MatchesOracleExactly) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::C2D5 c{0.3, 0.2, 0.18, 0.17, 0.15};
  std::mt19937_64 rng(8000u + static_cast<unsigned>(nx * 3 + ny));
  GridD2 ref(nx, ny);
  ref.fill_random(rng, -1.0, 1.0);
  GridD2 got(nx, ny);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y) got.at(x, y) = ref.at(x, y);
  stencil::jacobi2d5_run(c, ref, steps);
  at_vl8<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5)(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " steps=" << steps << " s=" << s;
}

TEST_P(TvWide2D, ScalarBackendVl8MatchesOracleExactly) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::C2D9 c{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  std::mt19937_64 rng(9000u + static_cast<unsigned>(nx * 5 + ny));
  GridD2 ref(nx, ny);
  ref.fill_random(rng, -1.0, 1.0);
  GridD2 got(nx, ny);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y) got.at(x, y) = ref.at(x, y);
  stencil::jacobi2d9_run(c, ref, steps);
  using S8 = simd::ScalarVec<double, 8>;
  tv::Workspace2D<S8, double> ws;
  tv::tv2d_run(tv::J2D9F<S8>(c), got, steps, s, ws);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TvWide2D,
    ::testing::Values(P{15, 9, 9, 2},   // below 16s: scalar fallback
                      P{32, 16, 8, 2},  // exactly one tile
                      P{33, 9, 16, 2}, P{40, 20, 9, 2}, P{64, 24, 17, 2},
                      P{70, 12, 24, 2}, P{50, 10, 8, 3}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_ny" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(TvWide3D, Vl8MatchesOracleExactly) {
  const stencil::C3D7 c{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  for (const auto& [nx, ny, nz, steps] :
       {std::tuple{32, 8, 8, 8}, std::tuple{40, 10, 6, 17},
        std::tuple{15, 6, 6, 9}}) {
    std::mt19937_64 rng(9100u + static_cast<unsigned>(nx));
    GridD3 ref(nx, ny, nz);
    ref.fill_random(rng, -1.0, 1.0);
    GridD3 got(nx, ny, nz);
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y)
        for (int z = 0; z <= nz + 1; ++z) got.at(x, y, z) = ref.at(x, y, z);
    stencil::jacobi3d7_run(c, ref, steps);
    at_vl8<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7)(c, got, steps,
                                                              2);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0) << "nx=" << nx;
  }
}

}  // namespace
