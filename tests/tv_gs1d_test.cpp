// Property tests for the temporally vectorized Gauss-Seidel 1D kernel.
// The kernel chains the newest-west value exactly like the in-place scalar
// sweep, so comparisons are exact.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "stencil/reference1d.hpp"
#include "tv/tv_gs1d.hpp"
#include "tv/tv_gs1d_impl.hpp"

namespace {

using namespace tvs;
using Grid = grid::Grid1D<double>;

Grid make_random(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  Grid g(nx);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

void copy(const Grid& src, Grid& dst) {
  for (int x = -2; x <= src.nx() + 3; ++x) dst.at(x) = src.at(x);
}

using P = std::tuple<int, long, int>;
class TvGs1dSweep : public ::testing::TestWithParam<P> {};

TEST_P(TvGs1dSweep, MatchesOracleExactly) {
  const auto [nx, sweeps, s] = GetParam();
  const stencil::C1D3 c{0.35, 0.4, 0.25};
  Grid ref = make_random(nx, 300u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::gs1d3_run(c, ref, sweeps);
  tv::tv_gs1d3_run(c, got, sweeps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " sweeps=" << sweeps << " s=" << s;
}

TEST_P(TvGs1dSweep, ScalarBackendMatchesOracleExactly) {
  const auto [nx, sweeps, s] = GetParam();
  const stencil::C1D3 c{0.4, 0.35, 0.25};
  Grid ref = make_random(nx, 500u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::gs1d3_run(c, ref, sweeps);
  tv::tv_gs1d_run_impl<simd::ScalarVec<double, 4>>(c, got, sweeps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " sweeps=" << sweeps << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweepsStride, TvGs1dSweep,
    ::testing::Combine(::testing::Values(1, 7, 8, 9, 12, 13, 27, 28, 29, 40,
                                         63, 64, 65, 128, 200, 1001),
                       ::testing::Values(1L, 2L, 3L, 4L, 5L, 8L, 10L),
                       ::testing::Values(2, 3, 4, 7)),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(TvGs1d, RandomCoefficientsProperty) {
  std::mt19937_64 rng(71);
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  for (int it = 0; it < 20; ++it) {
    const stencil::C1D3 c{d(rng), d(rng), d(rng)};
    const int nx = 25 + it * 17;
    const long sweeps = 1 + it % 7;
    const int s = 2 + it % 5;
    Grid ref = make_random(nx, 900u + static_cast<unsigned>(it)), got(nx);
    copy(ref, got);
    stencil::gs1d3_run(c, ref, sweeps);
    tv::tv_gs1d3_run(c, got, sweeps, s);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
        << "it=" << it << " nx=" << nx << " sweeps=" << sweeps << " s=" << s;
  }
}

TEST(TvGs1d, BoundaryValuesStayFixed) {
  const stencil::C1D3 c = stencil::heat1d(0.2);
  Grid u(100);
  u.fill(0.5);
  u.at(0) = 2.0;
  u.at(101) = -1.0;
  tv::tv_gs1d3_run(c, u, 24);
  EXPECT_EQ(u.at(0), 2.0);
  EXPECT_EQ(u.at(101), -1.0);
}

TEST(TvGs1d, ConvergesToLinearProfile) {
  // Gauss-Seidel on the heat kernel converges to the boundary-driven
  // linear steady state.
  const stencil::C1D3 c = stencil::heat1d(0.25);
  Grid u(63);
  u.fill(0.0);
  u.at(0) = 1.0;
  u.at(64) = 0.0;
  tv::tv_gs1d3_run(c, u, 20000);
  for (int x = 1; x <= 63; ++x) {
    const double exact = 1.0 - static_cast<double>(x) / 64.0;
    EXPECT_NEAR(u.at(x), exact, 1e-6) << "x=" << x;
  }
}

}  // namespace
