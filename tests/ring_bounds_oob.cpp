// Deliberately out-of-bounds twin of ring_bounds_static.cpp: a radius-3
// 1D Jacobi ring at the maximum stride needs M = s + R = 35 slots, one
// more than kRingCapacity = 34, so the CheckedIdx bound in the trace
// throws during constant evaluation and this file MUST fail to compile.
// CTest builds it with WILL_FAIL (ring_bounds_oob_rejected): if this
// ever compiles, the compile-time gate has stopped checking anything.
#include "ring_bounds_model.hpp"

namespace tvs::ringtest {

#define TVS_RING_COMBO(id, family, dtype, vl, param, stride) \
  static_assert(check_##family<vl, param>(stride, 1),        \
                #id " " #dtype " vl=" #vl " s=" #stride      \
                    ": ring index trace left [0, capacity)");
TVS_RING_COMBO(oob_jacobi1d7, jacobi1d, kF64, 4, 3, 32)
#undef TVS_RING_COMBO

}  // namespace tvs::ringtest
