// Width-property suite: lane-genericity is a CONTRACT, not an accident.
//
// Every temporal engine is instantiated at explicit ScalarVec widths —
// ScalarVec<double, 4> and ScalarVec<double, 8> for the double kernels,
// ScalarVec<int32, 8> and ScalarVec<int32, 16> for Life/LCS — and checked
// lane for lane (bit-exact) against the scalar reference oracles.  A
// literal 4 or 8 reintroduced into ring, prologue/epilogue or grouping
// logic shows up here as a mismatch at the other width, on any host: the
// ScalarVec instantiations exercise the full vl-dependent tile geometry
// without needing AVX-512 hardware.
//
// Sizes are chosen so the vector pipeline engages at the widest tested
// width (nx >= vl*s) AND so short-grid scalar fallbacks are covered.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "simd/vec.hpp"
#include "stencil/lcs_ref.hpp"
#include "stencil/life_ref.hpp"
#include "stencil/reference1d.hpp"
#include "stencil/reference2d.hpp"
#include "stencil/reference3d.hpp"
#include "tv/functors1d.hpp"
#include "tv/functors2d.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv1d_impl.hpp"
#include "tv/tv1d_re_impl.hpp"
#include "tv/tv2d_impl.hpp"
#include "tv/tv2d_re_impl.hpp"
#include "tv/tv3d_impl.hpp"
#include "tv/tv3d_re_impl.hpp"
#include "tv/tv_gs1d_impl.hpp"
#include "tv/tv_gs2d_impl.hpp"
#include "tv/tv_gs3d_impl.hpp"
#include "tv/tv_lcs_impl.hpp"

namespace {

using namespace tvs;

template <int N>
using SD = simd::ScalarVec<double, N>;
template <int N>
using SI = simd::ScalarVec<std::int32_t, N>;

grid::Grid1D<double> random1d(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid1D<double> g(nx);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

grid::Grid2D<double> random2d(int nx, int ny, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid2D<double> g(nx, ny);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

grid::Grid3D<double> random3d(int nx, int ny, int nz, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid3D<double> g(nx, ny, nz);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

// ---- 1D Jacobi --------------------------------------------------------------

template <class V>
void check_tv1d(int nx, long steps, int s, unsigned seed) {
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  auto ref = random1d(nx, seed);
  auto got = random1d(nx, seed);
  stencil::jacobi1d3_run(c3, ref, steps);
  tv::tv1d_run<V>(tv::J1D3F<V>(c3), got, steps, s);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx << " steps=" << steps << " s=" << s;
  auto re = random1d(nx, seed);
  tv::tv1d_re_run<V>(tv::J1D3F<V>(c3), re, steps, s);
  ASSERT_EQ(grid::max_abs_diff(ref, re), 0.0)
      << "re vl=" << V::lanes << " nx=" << nx << " steps=" << steps
      << " s=" << s;

  const stencil::C1D5 c5{0.05, 0.2, 0.5, 0.15, 0.1};
  auto ref5 = random1d(nx + 11, seed + 1);
  auto got5 = random1d(nx + 11, seed + 1);
  stencil::jacobi1d5_run(c5, ref5, steps);
  tv::tv1d_run<V>(tv::J1D5F<V>(c5), got5, steps, s >= 3 ? s : 3);
  ASSERT_EQ(grid::max_abs_diff(ref5, got5), 0.0) << "vl=" << V::lanes;
  auto re5 = random1d(nx + 11, seed + 1);
  tv::tv1d_re_run<V>(tv::J1D5F<V>(c5), re5, steps, s >= 3 ? s : 3);
  ASSERT_EQ(grid::max_abs_diff(ref5, re5), 0.0) << "re vl=" << V::lanes;
}

TEST(WidthProperty, TvJacobi1D) {
  for (const auto& [nx, steps, s] :
       {std::tuple{200, 9, 7}, std::tuple{200, 16, 3}, std::tuple{45, 9, 2},
        std::tuple{13, 6, 3}}) {
    check_tv1d<SD<4>>(nx, steps, s, 101u + static_cast<unsigned>(nx));
    check_tv1d<SD<8>>(nx, steps, s, 101u + static_cast<unsigned>(nx));
  }
}

// ---- 1D Gauss-Seidel --------------------------------------------------------

template <class V>
void check_gs1d(int nx, long sweeps, int s, unsigned seed) {
  const stencil::C1D3 c = stencil::heat1d(0.25);
  auto ref = random1d(nx, seed);
  auto got = random1d(nx, seed);
  stencil::gs1d3_run(c, ref, sweeps);
  tv::tv_gs1d_run_impl<V>(c, got, sweeps, s);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx << " sweeps=" << sweeps
      << " s=" << s;
}

TEST(WidthProperty, TvGs1D) {
  for (const auto& [nx, sweeps, s] :
       {std::tuple{150, 10, 3}, std::tuple{150, 13, 2}, std::tuple{40, 8, 2},
        std::tuple{9, 5, 2}}) {
    check_gs1d<SD<4>>(nx, sweeps, s, 201u + static_cast<unsigned>(nx));
    check_gs1d<SD<8>>(nx, sweeps, s, 201u + static_cast<unsigned>(nx));
  }
}

// ---- 2D Jacobi --------------------------------------------------------------

template <class V>
void check_tv2d(int nx, int ny, long steps, int s, unsigned seed) {
  const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
  auto ref = random2d(nx, ny, seed);
  auto got = random2d(nx, ny, seed);
  stencil::jacobi2d5_run(c5, ref, steps);
  tv::Workspace2D<V, double> ws;
  tv::tv2d_run(tv::J2D5F<V>(c5), got, steps, s, ws);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx;
  auto re = random2d(nx, ny, seed);
  tv::Workspace2D<V, double> wsr;
  tv::tv2d_re_run(tv::J2D5F<V>(c5), re, steps, s, wsr);
  ASSERT_EQ(grid::max_abs_diff(ref, re), 0.0)
      << "re vl=" << V::lanes << " nx=" << nx;

  const stencil::C2D9 c9{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  auto ref9 = random2d(nx, ny, seed + 1);
  auto got9 = random2d(nx, ny, seed + 1);
  stencil::jacobi2d9_run(c9, ref9, steps);
  tv::Workspace2D<V, double> ws9;
  tv::tv2d_run(tv::J2D9F<V>(c9), got9, steps, s, ws9);
  ASSERT_EQ(grid::max_abs_diff(ref9, got9), 0.0)
      << "vl=" << V::lanes << " nx=" << nx;
  auto re9 = random2d(nx, ny, seed + 1);
  tv::Workspace2D<V, double> wsr9;
  tv::tv2d_re_run(tv::J2D9F<V>(c9), re9, steps, s, wsr9);
  ASSERT_EQ(grid::max_abs_diff(ref9, re9), 0.0)
      << "re vl=" << V::lanes << " nx=" << nx;
}

TEST(WidthProperty, TvJacobi2D) {
  for (const auto& [nx, ny, steps, s] :
       {std::tuple{40, 18, 9, 2}, std::tuple{48, 10, 17, 2},
        std::tuple{50, 9, 8, 3}, std::tuple{15, 9, 9, 2}}) {
    check_tv2d<SD<4>>(nx, ny, steps, s, 301u + static_cast<unsigned>(nx));
    check_tv2d<SD<8>>(nx, ny, steps, s, 301u + static_cast<unsigned>(nx));
  }
}

// ---- 3D Jacobi --------------------------------------------------------------

template <class V>
void check_tv3d(int nx, int ny, int nz, long steps, int s, unsigned seed) {
  const stencil::C3D7 c{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  auto ref = random3d(nx, ny, nz, seed);
  auto got = random3d(nx, ny, nz, seed);
  stencil::jacobi3d7_run(c, ref, steps);
  tv::Workspace3D<V, double> ws;
  tv::tv3d_run(tv::J3D7F<V>(c), got, steps, s, ws);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx;
  auto re = random3d(nx, ny, nz, seed);
  tv::Workspace3D<V, double> wsr;
  tv::tv3d_re_run(tv::J3D7F<V>(c), re, steps, s, wsr);
  ASSERT_EQ(grid::max_abs_diff(ref, re), 0.0)
      << "re vl=" << V::lanes << " nx=" << nx;
}

TEST(WidthProperty, TvJacobi3D) {
  for (const auto& [nx, ny, nz, steps] :
       {std::tuple{36, 8, 8, 9}, std::tuple{40, 6, 10, 17},
        std::tuple{14, 6, 6, 9}}) {
    check_tv3d<SD<4>>(nx, ny, nz, steps, 2, 401u + static_cast<unsigned>(nx));
    check_tv3d<SD<8>>(nx, ny, nz, steps, 2, 401u + static_cast<unsigned>(nx));
  }
}

// ---- 2D / 3D Gauss-Seidel ---------------------------------------------------

template <class V>
void check_gs2d(int nx, int ny, long sweeps, int s, unsigned seed) {
  const stencil::C2D5 c{0.3, 0.2, 0.18, 0.17, 0.15};
  auto ref = random2d(nx, ny, seed);
  auto got = random2d(nx, ny, seed);
  stencil::gs2d5_run(c, ref, sweeps);
  tv::tv_gs2d_run_impl<V>(c, got, sweeps, s);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx;
}

TEST(WidthProperty, TvGs2D) {
  for (const auto& [nx, ny, sweeps, s] :
       {std::tuple{40, 12, 6, 2}, std::tuple{52, 9, 10, 3},
        std::tuple{14, 8, 5, 2}}) {
    check_gs2d<SD<4>>(nx, ny, sweeps, s, 501u + static_cast<unsigned>(nx));
    check_gs2d<SD<8>>(nx, ny, sweeps, s, 501u + static_cast<unsigned>(nx));
  }
}

template <class V>
void check_gs3d(int nx, int ny, int nz, long sweeps, int s, unsigned seed) {
  const stencil::C3D7 c{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  auto ref = random3d(nx, ny, nz, seed);
  auto got = random3d(nx, ny, nz, seed);
  stencil::gs3d7_run(c, ref, sweeps);
  tv::tv_gs3d_run_impl<V>(c, got, sweeps, s);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx;
}

TEST(WidthProperty, TvGs3D) {
  for (const auto& [nx, ny, nz, sweeps] :
       {std::tuple{36, 8, 8, 5}, std::tuple{40, 6, 6, 9},
        std::tuple{12, 6, 6, 5}}) {
    check_gs3d<SD<4>>(nx, ny, nz, sweeps, 2, 601u + static_cast<unsigned>(nx));
    check_gs3d<SD<8>>(nx, ny, nz, sweeps, 2, 601u + static_cast<unsigned>(nx));
  }
}

// ---- Game of Life (int32 lanes: 8 and 16) -----------------------------------

template <class V>
void check_life(int nx, int ny, long steps, int s, unsigned seed) {
  const stencil::LifeRule rule{};
  std::mt19937_64 rng(seed);
  grid::Grid2D<std::int32_t> ref(nx, ny);
  ref.fill_random(rng, 0, 1);
  grid::Grid2D<std::int32_t> got(nx, ny);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y) got.at(x, y) = ref.at(x, y);
  stencil::life_run(rule, ref, steps);
  tv::Workspace2D<V, std::int32_t> ws;
  tv::tv2d_run(tv::LifeF<V>(rule), got, steps, s, ws);
  ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "vl=" << V::lanes << " nx=" << nx;
}

TEST(WidthProperty, TvLife) {
  for (const auto& [nx, ny, steps, s] :
       {std::tuple{40, 20, 16, 2}, std::tuple{50, 9, 18, 3},
        std::tuple{20, 8, 9, 2}}) {
    check_life<SI<8>>(nx, ny, steps, s, 701u + static_cast<unsigned>(nx));
    check_life<SI<16>>(nx, ny, steps, s, 701u + static_cast<unsigned>(nx));
  }
}

// ---- LCS (int32 lanes: 8 and 16) --------------------------------------------

template <class V>
void check_lcs(int na, int nb, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> d(0, 3);
  std::vector<std::int32_t> a(static_cast<std::size_t>(na)),
      b(static_cast<std::size_t>(nb));
  for (auto& v : a) v = d(rng);
  for (auto& v : b) v = d(rng);
  const auto expect = stencil::lcs_ref_row(a, b);
  std::vector<std::int32_t> row(b.size() + 1 + tv::kLcsRowPad, 0);
  tv::tv_lcs_rows_impl<V>(a, b, row.data());
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_EQ(row[i], expect[i]) << "vl=" << V::lanes << " i=" << i;
}

TEST(WidthProperty, TvLcs) {
  for (const auto& [na, nb] : {std::pair{150, 130}, std::pair{64, 33},
                               std::pair{23, 17}, std::pair{40, 9}}) {
    check_lcs<SI<8>>(na, nb, 801u + static_cast<unsigned>(na));
    check_lcs<SI<16>>(na, nb, 801u + static_cast<unsigned>(na));
  }
}

}  // namespace
