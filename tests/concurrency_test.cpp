// Concurrency guard for the process-wide plan cache (added in the Solver
// PR): N threads plan + run the SAME problem signature simultaneously.
// The contract under test:
//   * exactly ONE plan-cache miss (one planner execution is stored; racing
//     first-callers adopt the cached plan and count as hits);
//   * every thread runs the same plan, so outputs are bit-identical across
//     threads and to the scalar reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "solver/plan_cache.hpp"
#include "solver/solver.hpp"
#include "stencil/reference2d.hpp"
#include "tolerance.hpp"

namespace {

using namespace tvs;

constexpr int kThreads = 8;

TEST(Concurrency, SameSignatureSingleMissBitIdentical) {
  if (std::getenv("TVS_PLAN") != nullptr) {
    GTEST_SKIP() << "TVS_PLAN pins plans and bypasses the cache";
  }
  solver::plan_cache_clear();

  const int nx = 48, ny = 18;
  const long steps = 9;
  const stencil::C2D5 c = stencil::heat2d(0.2);
  const solver::StencilProblem p =
      solver::problem_2d(solver::Family::kJacobi2D5, nx, ny, steps);

  // One shared initial state; each thread gets its own copy.
  grid::Grid2D<double> init(nx, ny);
  {
    std::mt19937_64 rng(4242);
    init.fill_random(rng, -1.0, 1.0);
  }

  std::vector<std::unique_ptr<grid::Grid2D<double>>> outs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    outs[t] = std::make_unique<grid::Grid2D<double>>(nx, ny);
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) outs[t]->at(x, y) = init.at(x, y);
  }

  // Start barrier so all threads hit plan_for for a cold signature at once.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      const solver::Solver s(p);  // races the first plan of this signature
      s.run(c, *outs[t]);
    });
  }
  while (ready.load() != kThreads) {
  }
  go.store(true);
  for (auto& w : workers) w.join();

  const solver::PlanCacheStats stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1) << "racing first-callers must store one plan";
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.pinned, 0);

  // Bit-identical across threads and to the scalar oracle.
  grid::Grid2D<double> ref(nx, ny);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y) ref.at(x, y) = init.at(x, y);
  stencil::jacobi2d5_run(c, ref, steps);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(test::grids_allclose(ref, *outs[t])) << "thread " << t;
  }
}

// Repeated solves after the first keep hitting the cache (no extra misses).
TEST(Concurrency, SteadyStateAllHits) {
  if (std::getenv("TVS_PLAN") != nullptr) {
    GTEST_SKIP() << "TVS_PLAN pins plans and bypasses the cache";
  }
  solver::plan_cache_clear();
  const solver::StencilProblem p =
      solver::problem_1d(solver::Family::kJacobi1D3, 128, 5);
  const stencil::C1D3 c = stencil::heat1d(0.25);
  { const solver::Solver warm(p); }  // the single miss
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        const solver::Solver s(p);
        grid::Grid1D<double> u(p.nx);
        u.fill(1.0);
        s.run(c, u);
      }
    });
  }
  for (auto& w : workers) w.join();
  const solver::PlanCacheStats stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads * 16);
}

}  // namespace
