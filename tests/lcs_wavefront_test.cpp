// The block-wavefront parallel LCS must agree with the scalar DP oracle for
// every block geometry, including blocks that do not divide the input and
// blocks too narrow for the vector strip kernel.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "stencil/lcs_ref.hpp"
#include "tiling/lcs_wavefront.hpp"

namespace {

using namespace tvs;

std::vector<std::int32_t> random_seq(int n, int alphabet, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> d(0, alphabet - 1);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = d(rng);
  return v;
}

// (na, nb, block, band)
using P = std::tuple<int, int, int, int>;
class LcsWavefrontSweep : public ::testing::TestWithParam<P> {};

TEST_P(LcsWavefrontSweep, MatchesOracle) {
  const auto [na, nb, blk, band] = GetParam();
  const auto a = random_seq(na, 4, 6000u + static_cast<unsigned>(na));
  const auto b = random_seq(nb, 4, 7000u + static_cast<unsigned>(nb));
  tiling::LcsWavefrontOptions opt;
  opt.block = blk;
  opt.band = band;
  EXPECT_EQ(tiling::lcs_wavefront(a, b, opt), stencil::lcs_ref(a, b))
      << "na=" << na << " nb=" << nb << " blk=" << blk << " band=" << band;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LcsWavefrontSweep,
    ::testing::Values(P{100, 100, 16, 16}, P{257, 129, 32, 64},
                      P{64, 300, 64, 16}, P{300, 64, 16, 64},
                      P{1000, 777, 100, 128}, P{33, 17, 16, 16},
                      P{8, 9, 16, 16}, P{500, 500, 4096, 4096},
                      P{129, 1025, 128, 32}),
    [](const auto& info) {
      return "na" + std::to_string(std::get<0>(info.param)) + "_nb" +
             std::to_string(std::get<1>(info.param)) + "_blk" +
             std::to_string(std::get<2>(info.param)) + "_band" +
             std::to_string(std::get<3>(info.param));
    });

TEST(LcsWavefront, IdenticalAndDisjoint) {
  const auto a = random_seq(400, 3, 42);
  tiling::LcsWavefrontOptions opt;
  opt.block = 64;
  opt.band = 32;
  EXPECT_EQ(tiling::lcs_wavefront(a, a, opt), 400);
  std::vector<std::int32_t> c(300, 7), d(200, 8);
  EXPECT_EQ(tiling::lcs_wavefront(c, d, opt), 0);
  EXPECT_EQ(tiling::lcs_wavefront(a, {}, opt), 0);
}

}  // namespace
