// The spatial-vectorization baselines must reproduce the oracle: exactly
// for the intrinsic implementations (canonical fma order), within a small
// tolerance for the compiler-vectorized TU (contraction order differs).
#include <gtest/gtest.h>

#include <random>

#include "baseline/autovec.hpp"
#include "baseline/spatial.hpp"
#include "stencil/reference1d.hpp"

namespace {

using namespace tvs;
using Grid = grid::Grid1D<double>;

struct Case {
  int nx;
  long steps;
};

class Baseline1DSweep : public ::testing::TestWithParam<Case> {};

Grid make_random(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  Grid g(nx);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

void copy(const Grid& src, Grid& dst) {
  for (int x = -2; x <= src.nx() + 3; ++x) dst.at(x) = src.at(x);
}

TEST_P(Baseline1DSweep, MultiloadMatchesOracleExactly) {
  const auto [nx, steps] = GetParam();
  const stencil::C1D3 c{0.31, 0.41, 0.26};
  Grid ref = make_random(nx, 42), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  baseline::multiload_jacobi1d3_run(c, got, steps);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0) << "nx=" << nx;
}

TEST_P(Baseline1DSweep, ReorgMatchesOracleExactly) {
  const auto [nx, steps] = GetParam();
  const stencil::C1D3 c{0.31, 0.41, 0.26};
  Grid ref = make_random(nx, 43), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  baseline::reorg_jacobi1d3_run(c, got, steps);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0) << "nx=" << nx;
}

TEST_P(Baseline1DSweep, DltMatchesOracleExactly) {
  const auto [nx, steps] = GetParam();
  const stencil::C1D3 c{0.31, 0.41, 0.26};
  Grid ref = make_random(nx, 44), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  baseline::dlt_jacobi1d3_run(c, got, steps);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0) << "nx=" << nx;
}

TEST_P(Baseline1DSweep, AutovecMatchesOracleApprox) {
  const auto [nx, steps] = GetParam();
  const stencil::C1D3 c{0.31, 0.41, 0.26};
  Grid ref = make_random(nx, 45), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  baseline::autovec_jacobi1d3_run(c, got, steps);
  EXPECT_LT(grid::max_abs_diff(ref, got), 1e-12) << "nx=" << nx;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSteps, Baseline1DSweep,
    ::testing::Values(Case{1, 4}, Case{2, 3}, Case{3, 5}, Case{4, 4},
                      Case{5, 8}, Case{7, 9}, Case{8, 2}, Case{11, 6},
                      Case{16, 12}, Case{29, 7}, Case{64, 10}, Case{65, 5},
                      Case{100, 13}, Case{233, 11}, Case{1024, 9},
                      Case{1000, 3}, Case{4097, 5}),
    [](const auto& info) {
      return "nx" + std::to_string(info.param.nx) + "_t" +
             std::to_string(info.param.steps);
    });

TEST(Baseline1D, Autovec5PMatchesOracleApprox) {
  const stencil::C1D5 c = stencil::heat1d5(0.2);
  Grid ref = make_random(513, 46), got(513);
  copy(ref, got);
  stencil::jacobi1d5_run(c, ref, 9);
  baseline::autovec_jacobi1d5_run(c, got, 9);
  EXPECT_LT(grid::max_abs_diff(ref, got), 1e-12);
}

TEST(Baseline1D, ZeroStepsIsIdentity) {
  const stencil::C1D3 c{0.2, 0.6, 0.2};
  Grid a = make_random(50, 47), b(50);
  copy(a, b);
  baseline::multiload_jacobi1d3_run(c, b, 0);
  EXPECT_EQ(grid::max_abs_diff(a, b), 0.0);
  baseline::reorg_jacobi1d3_run(c, b, 0);
  EXPECT_EQ(grid::max_abs_diff(a, b), 0.0);
  baseline::dlt_jacobi1d3_run(c, b, 0);
  EXPECT_EQ(grid::max_abs_diff(a, b), 0.0);
}

}  // namespace
