// Shared numeric-comparison helpers for the test suites.
//
// The library's contract has two tiers:
//   * double / int engines are BIT-IDENTICAL to the scalar oracles
//     (canonical fma evaluation order) — compare with expect_exact_eq;
//   * float engines follow the identical formulas and are bit-identical on
//     every host we run, but the documented contract is scaled-ULP
//     equality (kFloatUlpTol), which is what expect_allclose enforces.
//
// ulp_diff is a symmetric units-in-the-last-place distance on the IEEE
// bit representation (adjacent representable values differ by 1); NaNs and
// mismatched signs across zero compare as far apart.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"

namespace tvs::test {

// Documented single-precision tolerance of the engine-vs-oracle contract.
inline constexpr std::int64_t kFloatUlpTol = 4;

namespace detail {
template <class T>
using BitsOf =
    std::conditional_t<sizeof(T) == 8, std::int64_t, std::int32_t>;

// Maps the IEEE bit pattern to a monotonically ordered integer so ULP
// distance is plain subtraction.
template <class T>
std::int64_t ordered_bits(T x) {
  using B = BitsOf<T>;
  B b;
  std::memcpy(&b, &x, sizeof(T));
  return b < 0 ? static_cast<std::int64_t>(std::numeric_limits<B>::min()) - b
               : static_cast<std::int64_t>(b);
}
}  // namespace detail

// ULP distance between two finite floats/doubles; huge for NaNs.
template <class T>
std::int64_t ulp_diff(T a, T b) {
  static_assert(std::is_floating_point_v<T>);
  if (a == b) return 0;  // covers +0 / -0
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::int64_t>::max();
  const std::int64_t d = detail::ordered_bits(a) - detail::ordered_bits(b);
  return d < 0 ? -d : d;
}

// Hand-computed-expectation comparison: <= `ulps` ULP for ANY floating
// type (4 ULP default — the EXPECT_DOUBLE_EQ convention this helper
// replaces, now shared and float-capable).  Use for checks against values
// computed by a differently-ordered formula; use allclose/grids_allclose
// for the engine-vs-oracle contract.
template <class T, class U>
::testing::AssertionResult near_ulp(T a, U b,
                                    std::int64_t ulps = kFloatUlpTol) {
  // Mixed argument types (e.g. a computed double vs an integer literal)
  // compare in their common floating type, like EXPECT_DOUBLE_EQ did.
  using C = std::common_type_t<T, U>;
  static_assert(std::is_floating_point_v<C>);
  const std::int64_t d = ulp_diff(static_cast<C>(a), static_cast<C>(b));
  if (d <= ulps) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << d << " ULP (tol " << ulps
         << ")";
}

// Scalar comparison at the dtype's contract tolerance: exact for double
// and integers, <= `ulps` ULP for float.
template <class T>
::testing::AssertionResult allclose(T a, T b,
                                    std::int64_t ulps = kFloatUlpTol) {
  if constexpr (std::is_same_v<T, float>) {
    const std::int64_t d = ulp_diff(a, b);
    if (d <= ulps) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " vs " << b << " differ by " << d << " ULP (tol " << ulps
           << ")";
  } else {
    if (a == b) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " vs " << b << " are not bit-identical";
  }
}

// Grid comparisons over interior + boundary, reporting the first offending
// index.  Exact for double/int grids, scaled-ULP for float grids.
template <class T>
::testing::AssertionResult grids_allclose(const grid::Grid1D<T>& a,
                                          const grid::Grid1D<T>& b,
                                          std::int64_t ulps = kFloatUlpTol) {
  for (int x = 0; x <= a.nx() + 1; ++x) {
    const auto r = allclose(a.at(x), b.at(x), ulps);
    if (!r) return ::testing::AssertionFailure() << "at x=" << x << ": "
                                                 << r.message();
  }
  return ::testing::AssertionSuccess();
}

template <class T>
::testing::AssertionResult grids_allclose(const grid::Grid2D<T>& a,
                                          const grid::Grid2D<T>& b,
                                          std::int64_t ulps = kFloatUlpTol) {
  for (int x = 0; x <= a.nx() + 1; ++x)
    for (int y = 0; y <= a.ny() + 1; ++y) {
      const auto r = allclose(a.at(x, y), b.at(x, y), ulps);
      if (!r)
        return ::testing::AssertionFailure()
               << "at (" << x << "," << y << "): " << r.message();
    }
  return ::testing::AssertionSuccess();
}

template <class T>
::testing::AssertionResult grids_allclose(const grid::Grid3D<T>& a,
                                          const grid::Grid3D<T>& b,
                                          std::int64_t ulps = kFloatUlpTol) {
  for (int x = 0; x <= a.nx() + 1; ++x)
    for (int y = 0; y <= a.ny() + 1; ++y)
      for (int z = 0; z <= a.nz() + 1; ++z) {
        const auto r = allclose(a.at(x, y, z), b.at(x, y, z), ulps);
        if (!r)
          return ::testing::AssertionFailure()
                 << "at (" << x << "," << y << "," << z << "): "
                 << r.message();
      }
  return ::testing::AssertionSuccess();
}

}  // namespace tvs::test
