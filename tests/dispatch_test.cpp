// Dispatch-layer tests: backend identification/forcing semantics, registry
// wiring, and lane-for-lane equality of every registered kernel against the
// scalar reference oracles under EVERY backend this host can execute —
// looked up explicitly per backend, so one test process covers them all
// regardless of TVS_FORCE_BACKEND.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "dispatch/backend.hpp"
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "stencil/lcs_ref.hpp"
#include "stencil/life_ref.hpp"
#include "stencil/reference1d.hpp"
#include "stencil/reference2d.hpp"
#include "stencil/reference3d.hpp"
#include "tv/tv_lcs.hpp"  // kLcsRowPad

namespace {

using namespace tvs;
using dispatch::Backend;
using dispatch::KernelRegistry;

std::vector<Backend> available_backends() {
  std::vector<Backend> r;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    if (dispatch::cpu_supports(b) && KernelRegistry::instance().has_backend(b))
      r.push_back(b);
  }
  return r;
}

// ---- backend naming / forcing ----------------------------------------------

TEST(Backend, NamesRoundTrip) {
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    const auto parsed = dispatch::parse_backend(dispatch::backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
}

TEST(Backend, ParseRejectsUnknown) {
  EXPECT_FALSE(dispatch::parse_backend("neon").has_value());
  EXPECT_FALSE(dispatch::parse_backend("AVX2").has_value());  // case-sensitive
  EXPECT_FALSE(dispatch::parse_backend("avx-512").has_value());
}

TEST(Backend, ResolveForceSemantics) {
  EXPECT_EQ(dispatch::resolve_backend(std::nullopt), dispatch::best_available());
  EXPECT_EQ(dispatch::resolve_backend(""), dispatch::best_available());
  EXPECT_EQ(dispatch::resolve_backend("scalar"), Backend::kScalar);
  EXPECT_THROW(dispatch::resolve_backend("neon"), std::runtime_error);
  EXPECT_THROW(dispatch::resolve_backend("AVX2"), std::runtime_error);
  for (Backend b : {Backend::kAvx2, Backend::kAvx512}) {
    const bool usable = dispatch::cpu_supports(b) &&
                        KernelRegistry::instance().has_backend(b);
    if (usable) {
      EXPECT_EQ(dispatch::resolve_backend(dispatch::backend_name(b)), b);
    } else {
      // Forcing an uncompiled or CPU-unsupported backend is an error, not a
      // silent fallback.
      EXPECT_THROW(dispatch::resolve_backend(dispatch::backend_name(b)),
                   std::runtime_error);
    }
  }
}

TEST(Backend, SelectedHonoursEnvironment) {
  const char* force = std::getenv("TVS_FORCE_BACKEND");
  if (force != nullptr && force[0] != '\0') {
    const auto parsed = dispatch::parse_backend(force);
    ASSERT_TRUE(parsed.has_value()) << "CTest forced an unknown backend";
    EXPECT_EQ(dispatch::selected_backend(), *parsed);
  } else {
    EXPECT_EQ(dispatch::selected_backend(), dispatch::best_available());
  }
}

TEST(Backend, BestAvailableIsConsistent) {
  const Backend best = dispatch::best_available();
  EXPECT_TRUE(dispatch::cpu_supports(best));
  EXPECT_TRUE(KernelRegistry::instance().has_backend(best));
  for (int l = static_cast<int>(best) + 1; l < dispatch::kBackendCount; ++l) {
    const Backend higher = static_cast<Backend>(l);
    EXPECT_FALSE(dispatch::cpu_supports(higher) &&
                 KernelRegistry::instance().has_backend(higher))
        << "best_available skipped a usable backend";
  }
}

// ---- registry wiring -------------------------------------------------------

TEST(Registry, ScalarCoversEveryKernel) {
  const KernelRegistry& reg = KernelRegistry::instance();
  for (std::string_view id : reg.kernel_ids()) {
    EXPECT_NE(reg.find(id, Backend::kScalar), nullptr)
        << id << " has no scalar variant";
  }
}

TEST(Registry, ExpectedIdsPresent) {
  const auto ids = KernelRegistry::instance().kernel_ids();
  const auto has = [&](std::string_view id) {
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  };
  for (std::string_view id :
       {dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D5, dispatch::kTvJacobi2D5,
        dispatch::kTvJacobi2D9, dispatch::kTvJacobi3D7,
        dispatch::kTvGs1D3, dispatch::kTvGs2D5,
        dispatch::kTvGs3D7, dispatch::kTvLife, dispatch::kTvLcsRows,
        dispatch::kAutovecJacobi1D3, dispatch::kAutovecJacobi1D5,
        dispatch::kAutovecJacobi2D5, dispatch::kAutovecJacobi2D9,
        dispatch::kAutovecJacobi3D7, dispatch::kAutovecLife,
        dispatch::kParAutovecJacobi1D3, dispatch::kParAutovecJacobi2D5,
        dispatch::kParAutovecJacobi2D9, dispatch::kParAutovecJacobi3D7,
        dispatch::kParAutovecLife, dispatch::kMultiloadJacobi1D3,
        dispatch::kReorgJacobi1D3, dispatch::kDltJacobi1D3,
        dispatch::kMultiloadJacobi2D5, dispatch::kMultiloadJacobi2D9,
        dispatch::kMultiloadJacobi3D7, dispatch::kMultiloadLife,
        dispatch::kDiamondJacobi1D3, dispatch::kDiamondJacobi2D5,
        dispatch::kDiamondJacobi2D9, dispatch::kDiamondLife,
        dispatch::kDiamondJacobi3D7, dispatch::kParallelogramGs1D3,
        dispatch::kParallelogramGs2D5, dispatch::kParallelogramGs3D7,
        dispatch::kLcsWavefront}) {
    EXPECT_TRUE(has(id)) << id << " not registered";
  }
}

TEST(Registry, DownwardFallbackSemantics) {
  const KernelRegistry& reg = KernelRegistry::instance();
  // Fallback never selects a higher backend than asked for.
  EXPECT_EQ(reg.resolved_backend_at(dispatch::kTvJacobi1D3, Backend::kScalar),
            Backend::kScalar);
  if (reg.has_backend(Backend::kAvx2)) {
    EXPECT_EQ(reg.resolved_backend_at(dispatch::kTvJacobi1D3, Backend::kAvx2),
              Backend::kAvx2);
    // A width-pinned lookup falls back too: vl=8 doubles have no AVX2
    // engine (AVX2 has no 8-wide double type), so the pin resolves down to
    // the scalar backend's ScalarVec<double, 8> registration.
    EXPECT_EQ(reg.resolved_backend_at(dispatch::kTvJacobi2D5, Backend::kAvx2,
                                      8),
              Backend::kScalar);
  }
}

// Since the lane-generic refactor the avx512 backend compiles every kernel
// TU at its native width: every id must resolve at avx512 WITHOUT downward
// fallback whenever that backend is in the binary (registration does not
// execute backend code, so this holds on any host).
TEST(Registry, Avx512CoversEveryKernelNatively) {
  const KernelRegistry& reg = KernelRegistry::instance();
  if (!reg.has_backend(Backend::kAvx512))
    GTEST_SKIP() << "avx512 backend not compiled in";
  for (std::string_view id : reg.kernel_ids()) {
    EXPECT_NE(reg.find(id, Backend::kAvx512), nullptr)
        << id << " has no avx512 variant";
    EXPECT_EQ(reg.resolved_backend_at(id, Backend::kAvx512), Backend::kAvx512)
        << id << " falls back below avx512";
  }
}

TEST(Registry, WidthAxis) {
  const KernelRegistry& reg = KernelRegistry::instance();
  // Every double-typed temporal kernel resolves width-pinned at 4 and 8
  // lanes on any host (vl = 8 via the scalar backend when avx512 is
  // absent); the int32 kernels at 8 and 16.
  for (std::string_view id :
       {dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D5, dispatch::kTvJacobi2D5,
        dispatch::kTvJacobi2D9, dispatch::kTvJacobi3D7, dispatch::kTvGs1D3,
        dispatch::kTvGs2D5, dispatch::kTvGs3D7}) {
    EXPECT_EQ(reg.registered_widths(id, Backend::kAvx512),
              (std::vector<int>{4, 8}))
        << id;
    EXPECT_NE(reg.resolve_at(id, Backend::kScalar, 4), nullptr) << id;
    EXPECT_NE(reg.resolve_at(id, Backend::kScalar, 8), nullptr) << id;
  }
  for (std::string_view id : {dispatch::kTvLife, dispatch::kTvLcsRows}) {
    EXPECT_EQ(reg.registered_widths(id, Backend::kAvx512),
              (std::vector<int>{8, 16}))
        << id;
    EXPECT_NE(reg.resolve_at(id, Backend::kScalar, 16), nullptr) << id;
  }
  // A pinned width that no engine was instantiated at is an error.
  EXPECT_THROW(reg.resolve_at(dispatch::kTvJacobi1D3, Backend::kAvx512, 16),
               std::runtime_error);
  // Native-ordering invariant: the unpinned per-backend entry (what public
  // dispatch uses) must be the backend's NATIVE engine, not a width-pinned
  // extra — i.e. registrars register the native width first.  All widths
  // are bit-identical, so only this check catches an ordering regression.
  EXPECT_EQ(reg.find(dispatch::kTvJacobi2D5, Backend::kScalar),
            reg.find(dispatch::kTvJacobi2D5, Backend::kScalar, 4));
  EXPECT_EQ(reg.find(dispatch::kTvLife, Backend::kScalar),
            reg.find(dispatch::kTvLife, Backend::kScalar, 8));
  if (reg.has_backend(Backend::kAvx512)) {
    EXPECT_EQ(reg.find(dispatch::kTvJacobi2D5, Backend::kAvx512),
              reg.find(dispatch::kTvJacobi2D5, Backend::kAvx512, 8));
    EXPECT_EQ(reg.find(dispatch::kTvLife, Backend::kAvx512),
              reg.find(dispatch::kTvLife, Backend::kAvx512, 16));
  }
  // A vl = 8 pin never resolves to the avx2 backend (no 8-wide double).
  if (reg.has_backend(Backend::kAvx2)) {
    EXPECT_EQ(reg.resolved_backend_at(dispatch::kTvJacobi2D5, Backend::kAvx2, 8),
              Backend::kScalar);
    EXPECT_EQ(reg.resolved_backend_at(dispatch::kTvJacobi2D5, Backend::kAvx2, 4),
              Backend::kAvx2);
  }
  if (reg.has_backend(Backend::kAvx512)) {
    EXPECT_EQ(
        reg.resolved_backend_at(dispatch::kTvJacobi2D5, Backend::kAvx512, 8),
        Backend::kAvx512);
  }
}

// The dtype axis: every FP temporal kernel carries a float engine family
// at doubled lane counts (8/16) next to the double one (4/8); the int32
// kernels are tagged kI32.  Lookups without a dtype keep resolving the
// id's default dtype, so they can never hand a float engine to a
// double-signature caller.
TEST(Registry, DtypeAxis) {
  using dispatch::DType;
  const KernelRegistry& reg = KernelRegistry::instance();
  for (std::string_view id :
       {dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D5, dispatch::kTvJacobi2D5,
        dispatch::kTvJacobi2D9, dispatch::kTvJacobi3D7, dispatch::kTvGs1D3,
        dispatch::kTvGs2D5, dispatch::kTvGs3D7}) {
    EXPECT_EQ(reg.default_dtype(id), DType::kF64) << id;
    EXPECT_EQ(reg.registered_dtypes(id, Backend::kAvx512),
              (std::vector<DType>{DType::kF64, DType::kF32}))
        << id;
    // Float engines: twice the lanes of the double family, resolvable on
    // every host (vl = 16 via the scalar backend when avx512 is absent).
    EXPECT_EQ(reg.registered_widths(id, Backend::kAvx512, DType::kF32),
              (std::vector<int>{8, 16}))
        << id;
    EXPECT_NE(reg.resolve_at(id, Backend::kScalar, 8, DType::kF32), nullptr)
        << id;
    EXPECT_NE(reg.resolve_at(id, Backend::kScalar, 16, DType::kF32), nullptr)
        << id;
    // The default-dtype widths are unchanged by the float registrations.
    EXPECT_EQ(reg.registered_widths(id, Backend::kAvx512),
              (std::vector<int>{4, 8}))
        << id;
    // A dtype-less width-pinned lookup never returns a float engine: the
    // vl = 8 double pin and the vl = 8 float pin resolve to different
    // functions.
    EXPECT_NE(reg.resolve_at(id, Backend::kAvx512, 8),
              reg.resolve_at(id, Backend::kAvx512, 8, DType::kF32))
        << id;
  }
  for (std::string_view id : {dispatch::kTvLife, dispatch::kTvLcsRows}) {
    EXPECT_EQ(reg.default_dtype(id), DType::kI32) << id;
    EXPECT_EQ(reg.registered_dtypes(id, Backend::kAvx512),
              (std::vector<DType>{DType::kI32}))
        << id;
  }
  // An unregistered dtype pin is an error naming the dtype.
  try {
    reg.resolve_at(dispatch::kTvLife, Backend::kAvx512, 8, DType::kF32);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("f32"), std::string::npos)
        << e.what();
  }
  // vl = kAnyVl + dtype = the backend's native float width: 8 under
  // scalar/avx2, 16 under avx512.
  if (reg.has_backend(Backend::kAvx2)) {
    EXPECT_EQ(reg.resolve_at(dispatch::kTvJacobi2D5, Backend::kAvx2,
                             dispatch::kAnyVl, DType::kF32),
              reg.resolve_at(dispatch::kTvJacobi2D5, Backend::kAvx2, 8,
                             DType::kF32));
  }
  if (reg.has_backend(Backend::kAvx512)) {
    EXPECT_EQ(reg.resolve_at(dispatch::kTvJacobi2D5, Backend::kAvx512,
                             dispatch::kAnyVl, DType::kF32),
              reg.resolve_at(dispatch::kTvJacobi2D5, Backend::kAvx512, 16,
                             DType::kF32));
  }
}

TEST(Dtype, NamesRoundTrip) {
  using dispatch::DType;
  for (DType d : {DType::kF64, DType::kF32, DType::kI32}) {
    const auto parsed = dispatch::parse_dtype(dispatch::dtype_name(d));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, d);
  }
  EXPECT_FALSE(dispatch::parse_dtype("f16").has_value());
  EXPECT_EQ(dispatch::dtype_size(DType::kF64), 8u);
  EXPECT_EQ(dispatch::dtype_size(DType::kF32), 4u);
}

TEST(Registry, UnknownIdThrowsListingRegisteredIds) {
  try {
    KernelRegistry::instance().resolve_at("no_such_kernel", Backend::kScalar);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_kernel"), std::string::npos) << msg;
    // The error names the registered ids so a missed registrar is obvious.
    EXPECT_NE(msg.find("tv_jacobi1d3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lcs_wavefront"), std::string::npos) << msg;
  }
}

// ---- lane-for-lane equality vs the scalar oracles, per backend -------------

template <class Fn>
Fn* at(std::string_view id, Backend b) {
  return KernelRegistry::instance().get_at<Fn>(id, b);
}

// Width-pinned lookup on the registry's vector-length axis.
template <class Fn>
Fn* at_vl(std::string_view id, Backend b, int vl) {
  return KernelRegistry::instance().get_at<Fn>(id, b, vl);
}

grid::Grid1D<double> random1d(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid1D<double> g(nx);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

grid::Grid2D<double> random2d(int nx, int ny, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid2D<double> g(nx, ny);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

grid::Grid3D<double> random3d(int nx, int ny, int nz, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid3D<double> g(nx, ny, nz);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

grid::Grid2D<std::int32_t> random_life(int nx, int ny, unsigned seed) {
  std::mt19937_64 rng(seed);
  grid::Grid2D<std::int32_t> g(nx, ny);
  g.fill_random(rng, 0, 1);
  return g;
}

class LaneForLane : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, LaneForLane,
                         ::testing::ValuesIn(available_backends()),
                         [](const auto& info) {
                           return std::string(
                               tvs::dispatch::backend_name(info.param));
                         });

TEST_P(LaneForLane, TvJacobi1D) {
  const Backend b = GetParam();
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  auto ref = random1d(103, 11);
  auto got = random1d(103, 11);
  stencil::jacobi1d3_run(c3, ref, 9);
  at<dispatch::TvJacobi1D3Fn>(dispatch::kTvJacobi1D3, b)(c3, got, 9, 7);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);

  const stencil::C1D5 c5{0.05, 0.2, 0.5, 0.15, 0.1};
  auto ref5 = random1d(131, 12);
  auto got5 = random1d(131, 12);
  stencil::jacobi1d5_run(c5, ref5, 9);
  at<dispatch::TvJacobi1D5Fn>(dispatch::kTvJacobi1D5, b)(c5, got5, 9, 7);
  EXPECT_EQ(grid::max_abs_diff(ref5, got5), 0.0);
}

TEST_P(LaneForLane, TvJacobi2D) {
  const Backend b = GetParam();
  const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
  auto ref = random2d(40, 18, 21);
  auto got = random2d(40, 18, 21);
  stencil::jacobi2d5_run(c5, ref, 9);
  at<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5, b)(c5, got, 9, 2);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);

  const stencil::C2D9 c9{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  auto ref9 = random2d(41, 17, 22);
  auto got9 = random2d(41, 17, 22);
  stencil::jacobi2d9_run(c9, ref9, 10);
  at<dispatch::TvJacobi2D9Fn>(dispatch::kTvJacobi2D9, b)(c9, got9, 10, 2);
  EXPECT_EQ(grid::max_abs_diff(ref9, got9), 0.0);
}

TEST_P(LaneForLane, TvJacobi2D3DVl8) {
  const Backend b = GetParam();
  const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
  auto ref = random2d(40, 12, 31);
  auto got = random2d(40, 12, 31);
  stencil::jacobi2d5_run(c5, ref, 9);
  at_vl<dispatch::TvJacobi2D5Fn>(dispatch::kTvJacobi2D5, b, 8)(c5, got, 9, 2);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);

  const stencil::C2D9 c9{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  auto ref9 = random2d(40, 12, 32);
  auto got9 = random2d(40, 12, 32);
  stencil::jacobi2d9_run(c9, ref9, 17);
  at_vl<dispatch::TvJacobi2D9Fn>(dispatch::kTvJacobi2D9, b, 8)(c9, got9, 17,
                                                               2);
  EXPECT_EQ(grid::max_abs_diff(ref9, got9), 0.0);

  const stencil::C3D7 c7{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  auto ref3 = random3d(40, 8, 8, 33);
  auto got3 = random3d(40, 8, 8, 33);
  stencil::jacobi3d7_run(c7, ref3, 9);
  at_vl<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7, b, 8)(c7, got3, 9, 2);
  EXPECT_EQ(grid::max_abs_diff(ref3, got3), 0.0);
}

TEST_P(LaneForLane, TvJacobi3D) {
  const Backend b = GetParam();
  const stencil::C3D7 c{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  auto ref = random3d(24, 10, 8, 41);
  auto got = random3d(24, 10, 8, 41);
  stencil::jacobi3d7_run(c, ref, 9);
  at<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7, b)(c, got, 9, 2);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

TEST_P(LaneForLane, TvGaussSeidel) {
  const Backend b = GetParam();
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  auto ref = random1d(120, 51);
  auto got = random1d(120, 51);
  stencil::gs1d3_run(c3, ref, 10);
  at<dispatch::TvGs1D3Fn>(dispatch::kTvGs1D3, b)(c3, got, 10, 3);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);

  const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
  auto ref2 = random2d(40, 12, 52);
  auto got2 = random2d(40, 12, 52);
  stencil::gs2d5_run(c5, ref2, 6);
  at<dispatch::TvGs2D5Fn>(dispatch::kTvGs2D5, b)(c5, got2, 6, 2);
  EXPECT_EQ(grid::max_abs_diff(ref2, got2), 0.0);

  const stencil::C3D7 c7{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  auto ref3 = random3d(24, 8, 8, 53);
  auto got3 = random3d(24, 8, 8, 53);
  stencil::gs3d7_run(c7, ref3, 5);
  at<dispatch::TvGs3D7Fn>(dispatch::kTvGs3D7, b)(c7, got3, 5, 2);
  EXPECT_EQ(grid::max_abs_diff(ref3, got3), 0.0);
}

TEST_P(LaneForLane, TvLifeAndLcs) {
  const Backend b = GetParam();
  const stencil::LifeRule rule{};
  auto ref = random_life(40, 20, 61);
  auto got = random_life(40, 20, 61);
  stencil::life_run(rule, ref, 8);
  at<dispatch::TvLifeFn>(dispatch::kTvLife, b)(rule, got, 8, 2);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);

  std::mt19937_64 rng(62);
  std::uniform_int_distribution<std::int32_t> d(0, 3);
  std::vector<std::int32_t> a(150), bb(130);
  for (auto& v : a) v = d(rng);
  for (auto& v : bb) v = d(rng);
  const auto expect = stencil::lcs_ref_row(a, bb);
  std::vector<std::int32_t> row(bb.size() + 1 + tvs::tv::kLcsRowPad, 0);
  at<dispatch::TvLcsRowsFn>(dispatch::kTvLcsRows, b)(a, bb, row.data());
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_EQ(row[i], expect[i]) << "i=" << i;
}

TEST_P(LaneForLane, BaselinesBitExact) {
  const Backend b = GetParam();
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  for (std::string_view id :
       {dispatch::kMultiloadJacobi1D3, dispatch::kReorgJacobi1D3,
        dispatch::kDltJacobi1D3}) {
    auto ref = random1d(95, 71);
    auto got = random1d(95, 71);
    stencil::jacobi1d3_run(c3, ref, 6);
    at<dispatch::BlJacobi1DFn>(id, b)(c3, got, 6);
    EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0) << id;
  }

  const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
  auto ref2 = random2d(40, 18, 72);
  auto got2 = random2d(40, 18, 72);
  stencil::jacobi2d5_run(c5, ref2, 6);
  at<dispatch::BlJacobi2D5Fn>(dispatch::kMultiloadJacobi2D5, b)(c5, got2, 6);
  EXPECT_EQ(grid::max_abs_diff(ref2, got2), 0.0);

  const stencil::C2D9 c9{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  auto ref9 = random2d(40, 18, 73);
  auto got9 = random2d(40, 18, 73);
  stencil::jacobi2d9_run(c9, ref9, 6);
  at<dispatch::BlJacobi2D9Fn>(dispatch::kMultiloadJacobi2D9, b)(c9, got9, 6);
  EXPECT_EQ(grid::max_abs_diff(ref9, got9), 0.0);

  const stencil::LifeRule rule{};
  auto refl = random_life(40, 20, 74);
  auto gotl = random_life(40, 20, 74);
  stencil::life_run(rule, refl, 6);
  at<dispatch::BlLifeFn>(dispatch::kMultiloadLife, b)(rule, gotl, 6);
  EXPECT_EQ(grid::max_abs_diff(refl, gotl), 0.0);

  const stencil::C3D7 c7{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  auto ref3 = random3d(20, 8, 8, 75);
  auto got3 = random3d(20, 8, 8, 75);
  stencil::jacobi3d7_run(c7, ref3, 5);
  at<dispatch::BlJacobi3D7Fn>(dispatch::kMultiloadJacobi3D7, b)(c7, got3, 5);
  EXPECT_EQ(grid::max_abs_diff(ref3, got3), 0.0);
}

TEST_P(LaneForLane, BaselinesAutovec) {
  // The compiler-vectorized TUs may contract differently per backend, so
  // these compare with the same tolerance the baseline suite uses.
  const Backend b = GetParam();
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  for (std::string_view id :
       {dispatch::kAutovecJacobi1D3, dispatch::kParAutovecJacobi1D3}) {
    auto ref = random1d(95, 81);
    auto got = random1d(95, 81);
    stencil::jacobi1d3_run(c3, ref, 6);
    at<dispatch::BlJacobi1DFn>(id, b)(c3, got, 6);
    EXPECT_LT(grid::max_abs_diff(ref, got), 1e-12) << id;
  }
  const stencil::C1D5 c1d5{0.05, 0.2, 0.5, 0.15, 0.1};
  auto ref5 = random1d(95, 82);
  auto got5 = random1d(95, 82);
  stencil::jacobi1d5_run(c1d5, ref5, 6);
  at<dispatch::BlJacobi1D5Fn>(dispatch::kAutovecJacobi1D5, b)(c1d5, got5, 6);
  EXPECT_LT(grid::max_abs_diff(ref5, got5), 1e-12);

  const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
  for (std::string_view id :
       {dispatch::kAutovecJacobi2D5, dispatch::kParAutovecJacobi2D5}) {
    auto ref = random2d(40, 18, 83);
    auto got = random2d(40, 18, 83);
    stencil::jacobi2d5_run(c5, ref, 6);
    at<dispatch::BlJacobi2D5Fn>(id, b)(c5, got, 6);
    EXPECT_LT(grid::max_abs_diff(ref, got), 1e-12) << id;
  }
  const stencil::C2D9 c9{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  for (std::string_view id :
       {dispatch::kAutovecJacobi2D9, dispatch::kParAutovecJacobi2D9}) {
    auto ref = random2d(40, 18, 84);
    auto got = random2d(40, 18, 84);
    stencil::jacobi2d9_run(c9, ref, 6);
    at<dispatch::BlJacobi2D9Fn>(id, b)(c9, got, 6);
    EXPECT_LT(grid::max_abs_diff(ref, got), 1e-12) << id;
  }
  const stencil::LifeRule rule{};
  for (std::string_view id :
       {dispatch::kAutovecLife, dispatch::kParAutovecLife}) {
    auto ref = random_life(40, 20, 85);
    auto got = random_life(40, 20, 85);
    stencil::life_run(rule, ref, 6);
    at<dispatch::BlLifeFn>(id, b)(rule, got, 6);
    EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0) << id;  // integers: exact
  }
  const stencil::C3D7 c7{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  for (std::string_view id :
       {dispatch::kAutovecJacobi3D7, dispatch::kParAutovecJacobi3D7}) {
    auto ref = random3d(20, 8, 8, 86);
    auto got = random3d(20, 8, 8, 86);
    stencil::jacobi3d7_run(c7, ref, 5);
    at<dispatch::BlJacobi3D7Fn>(id, b)(c7, got, 5);
    EXPECT_LT(grid::max_abs_diff(ref, got), 1e-12) << id;
  }
}

TEST_P(LaneForLane, TilingDiamond) {
  const Backend b = GetParam();
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  {
    auto ref = random1d(200, 91);
    grid::PingPong<grid::Grid1D<double>> pp(200);
    for (int x = -grid::kPad; x <= 200 + 1 + grid::kPad; ++x)
      pp.even().at(x) = ref.at(x);
    tiling::fix_boundaries(pp);
    const long steps = 18;
    stencil::jacobi1d3_run(c3, ref, steps);
    at<dispatch::DiamondJacobi1D3Fn>(dispatch::kDiamondJacobi1D3, b)(
        c3, pp, steps, tiling::Diamond1DOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, pp.by_parity(steps)), 0.0);
  }
  {
    const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
    auto ref = random2d(48, 14, 92);
    grid::PingPong<grid::Grid2D<double>> pp(48, 14);
    for (int x = 0; x <= 48 + 1; ++x)
      for (int y = -grid::kPad; y <= 14 + 1 + grid::kPad; ++y)
        pp.even().at(x, y) = ref.at(x, y);
    tiling::fix_boundaries2d(pp);
    const long steps = 10;
    stencil::jacobi2d5_run(c5, ref, steps);
    at<dispatch::DiamondJacobi2D5Fn>(dispatch::kDiamondJacobi2D5, b)(
        c5, pp, steps, tiling::Diamond2DOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, pp.by_parity(steps)), 0.0);
  }
  {
    const stencil::C2D9 c9{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
    auto ref = random2d(48, 14, 93);
    grid::PingPong<grid::Grid2D<double>> pp(48, 14);
    for (int x = 0; x <= 48 + 1; ++x)
      for (int y = -grid::kPad; y <= 14 + 1 + grid::kPad; ++y)
        pp.even().at(x, y) = ref.at(x, y);
    tiling::fix_boundaries2d(pp);
    const long steps = 9;
    stencil::jacobi2d9_run(c9, ref, steps);
    at<dispatch::DiamondJacobi2D9Fn>(dispatch::kDiamondJacobi2D9, b)(
        c9, pp, steps, tiling::Diamond2DOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, pp.by_parity(steps)), 0.0);
  }
  {
    const stencil::LifeRule rule{};
    auto ref = random_life(48, 14, 94);
    grid::PingPong<grid::Grid2D<std::int32_t>> pp(48, 14);
    for (int x = 0; x <= 48 + 1; ++x)
      for (int y = -grid::kPad; y <= 14 + 1 + grid::kPad; ++y)
        pp.even().at(x, y) = ref.at(x, y);
    tiling::fix_boundaries2d(pp);
    const long steps = 9;
    stencil::life_run(rule, ref, steps);
    at<dispatch::DiamondLifeFn>(dispatch::kDiamondLife, b)(
        rule, pp, steps, tiling::Diamond2DOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, pp.by_parity(steps)), 0.0);
  }
  {
    const stencil::C3D7 c7{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
    auto ref = random3d(24, 8, 8, 95);
    grid::PingPong<grid::Grid3D<double>> pp(24, 8, 8);
    for (int x = 0; x <= 24 + 1; ++x)
      for (int y = 0; y <= 8 + 1; ++y)
        for (int z = -grid::kPad; z <= 8 + 1 + grid::kPad; ++z)
          pp.even().at(x, y, z) = ref.at(x, y, z);
    tiling::fix_boundaries3d(pp);
    const long steps = 9;
    stencil::jacobi3d7_run(c7, ref, steps);
    at<dispatch::DiamondJacobi3D7Fn>(dispatch::kDiamondJacobi3D7, b)(
        c7, pp, steps, tiling::Diamond3DOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, pp.by_parity(steps)), 0.0);
  }
}

TEST_P(LaneForLane, TilingParallelogramAndWavefront) {
  const Backend b = GetParam();
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  {
    auto ref = random1d(160, 96);
    auto got = random1d(160, 96);
    stencil::gs1d3_run(c3, ref, 10);
    at<dispatch::ParallelogramGs1D3Fn>(dispatch::kParallelogramGs1D3, b)(
        c3, got, 10, tiling::Parallelogram1DOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
  }
  {
    const stencil::C2D5 c5{0.3, 0.2, 0.18, 0.17, 0.15};
    auto ref = random2d(40, 12, 97);
    auto got = random2d(40, 12, 97);
    stencil::gs2d5_run(c5, ref, 6);
    at<dispatch::ParallelogramGs2D5Fn>(dispatch::kParallelogramGs2D5, b)(
        c5, got, 6, tiling::ParallelogramNDOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
  }
  {
    const stencil::C3D7 c7{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
    auto ref = random3d(24, 8, 8, 98);
    auto got = random3d(24, 8, 8, 98);
    stencil::gs3d7_run(c7, ref, 5);
    at<dispatch::ParallelogramGs3D7Fn>(dispatch::kParallelogramGs3D7, b)(
        c7, got, 5, tiling::ParallelogramNDOptions{});
    EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
  }
  {
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<std::int32_t> d(0, 3);
    std::vector<std::int32_t> a(300), bb(270);
    for (auto& v : a) v = d(rng);
    for (auto& v : bb) v = d(rng);
    const std::int32_t expect = stencil::lcs_ref(a, bb);
    tiling::LcsWavefrontOptions opt;
    opt.block = 64;
    opt.band = 64;
    EXPECT_EQ(at<dispatch::LcsWavefrontFn>(dispatch::kLcsWavefront, b)(a, bb,
                                                                       opt),
              expect);
  }
}

}  // namespace
