// The parallel tiled drivers (diamond on x for Jacobi/Life, parallelogram
// wavefront for Gauss-Seidel) must reproduce the scalar oracles exactly,
// across tile geometries and under many threads.
#include <gtest/gtest.h>

#include "util/omp_compat.hpp"

#include <random>
#include <tuple>

#include "stencil/life_ref.hpp"
#include "stencil/reference2d.hpp"
#include "stencil/reference3d.hpp"
#include "tiling/diamond2d.hpp"
#include "tiling/diamond3d.hpp"
#include "tiling/parallelogram2d.hpp"

namespace {

using namespace tvs;
using GridD2 = grid::Grid2D<double>;
using GridI2 = grid::Grid2D<std::int32_t>;
using GridD3 = grid::Grid3D<double>;

template <class G>
void copy(const G& src, G& dst) {
  for (int x = 0; x <= src.nx() + 1; ++x)
    for (int y = 0; y <= src.ny() + 1; ++y) dst.at(x, y) = src.at(x, y);
}

// (nx, ny, steps, W, H, s)
using P2 = std::tuple<int, int, long, int, int, int>;
class Diamond2DSweep : public ::testing::TestWithParam<P2> {};

TEST_P(Diamond2DSweep, Jacobi5PMatchesOracle) {
  const auto [nx, ny, steps, w, h, s] = GetParam();
  const stencil::C2D5 c{0.31, 0.2, 0.17, 0.17, 0.15};
  std::mt19937_64 rng(1000u + static_cast<unsigned>(nx * 7 + ny));
  GridD2 ref(nx, ny);
  ref.fill_random(rng, -1.0, 1.0);
  GridD2 got(nx, ny);
  copy(ref, got);
  stencil::jacobi2d5_run(c, ref, steps);
  tiling::Diamond2DOptions opt;
  opt.width = w;
  opt.height = h;
  opt.stride = s;
  tiling::diamond_jacobi2d5_run(c, got, steps, opt);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " t=" << steps << " W=" << w
      << " H=" << h << " s=" << s;
}

TEST_P(Diamond2DSweep, Jacobi9PMatchesOracle) {
  const auto [nx, ny, steps, w, h, s] = GetParam();
  const stencil::C2D9 c{0.2, 0.14, 0.12, 0.1, 0.09, 0.08, 0.09, 0.09, 0.09};
  std::mt19937_64 rng(1100u + static_cast<unsigned>(nx * 11 + ny));
  GridD2 ref(nx, ny);
  ref.fill_random(rng, -1.0, 1.0);
  GridD2 got(nx, ny);
  copy(ref, got);
  stencil::jacobi2d9_run(c, ref, steps);
  tiling::Diamond2DOptions opt;
  opt.width = w;
  opt.height = h;
  opt.stride = s;
  tiling::diamond_jacobi2d9_run(c, got, steps, opt);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

TEST_P(Diamond2DSweep, GaussSeidel2DMatchesOracle) {
  const auto [nx, ny, steps, w, h, s] = GetParam();
  const stencil::C2D5 c{0.3, 0.2, 0.16, 0.19, 0.15};
  std::mt19937_64 rng(1200u + static_cast<unsigned>(nx * 13 + ny));
  GridD2 ref(nx, ny);
  ref.fill_random(rng, -1.0, 1.0);
  GridD2 got(nx, ny);
  copy(ref, got);
  stencil::gs2d5_run(c, ref, steps);
  tiling::ParallelogramNDOptions opt;
  opt.width = w;
  opt.height = h;
  opt.stride = s;
  tiling::parallelogram_gs2d5_run(c, got, steps, opt);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " t=" << steps << " W=" << w
      << " H=" << h << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Diamond2DSweep,
    ::testing::Values(P2{48, 20, 8, 24, 8, 2},    // narrow tiles
                      P2{100, 30, 16, 32, 8, 2},  // several tiles
                      P2{100, 30, 18, 32, 8, 2},  // off-grid steps
                      P2{100, 30, 3, 32, 8, 2},   // scalar residual only
                      P2{64, 17, 12, 4096, 64, 2},  // single huge tile
                      P2{130, 20, 24, 48, 12, 2}, P2{97, 13, 9, 40, 8, 2}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_ny" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param)) + "_W" +
             std::to_string(std::get<3>(info.param)) + "_H" +
             std::to_string(std::get<4>(info.param)) + "_s" +
             std::to_string(std::get<5>(info.param));
    });

TEST(DiamondLife, MatchesOracleAcrossGeometries) {
  const stencil::LifeRule rule{};  // B2S23
  for (const auto& [nx, ny, steps, w, h] :
       {std::tuple{120, 24, 16, 48, 8}, std::tuple{200, 16, 24, 64, 16},
        std::tuple{90, 20, 9, 2048, 32}}) {
    std::mt19937_64 rng(2000u + static_cast<unsigned>(nx));
    GridI2 ref(nx, ny);
    std::uniform_int_distribution<std::int32_t> d(0, 1);
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y) ref.at(x, y) = d(rng);
    GridI2 got(nx, ny);
    copy(ref, got);
    stencil::life_run(rule, ref, steps);
    tiling::Diamond2DOptions opt;
    opt.width = w;
    opt.height = h;
    tiling::diamond_life_run(rule, got, steps, opt);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
        << "nx=" << nx << " steps=" << steps;
  }
}

TEST(Diamond3D, JacobiMatchesOracleAcrossGeometries) {
  const stencil::C3D7 c{0.28, 0.13, 0.12, 0.12, 0.11, 0.13, 0.11};
  for (const auto& [nx, ny, nz, steps, w, h] :
       {std::tuple{40, 10, 12, 8, 20, 4}, std::tuple{64, 12, 8, 12, 24, 8},
        std::tuple{30, 8, 8, 7, 1024, 8}}) {
    std::mt19937_64 rng(3000u + static_cast<unsigned>(nx));
    GridD3 ref(nx, ny, nz);
    ref.fill_random(rng, -1.0, 1.0);
    GridD3 got(nx, ny, nz);
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y)
        for (int z = 0; z <= nz + 1; ++z) got.at(x, y, z) = ref.at(x, y, z);
    stencil::jacobi3d7_run(c, ref, steps);
    tiling::Diamond3DOptions opt;
    opt.width = w;
    opt.height = h;
    tiling::diamond_jacobi3d7_run(c, got, steps, opt);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
        << "nx=" << nx << " steps=" << steps;
  }
}

TEST(ParaGs3D, MatchesOracleAcrossGeometries) {
  const stencil::C3D7 c{0.3, 0.12, 0.11, 0.12, 0.1, 0.13, 0.12};
  for (const auto& [nx, ny, nz, steps, w, h] :
       {std::tuple{40, 10, 12, 8, 20, 4}, std::tuple{64, 12, 8, 13, 24, 8},
        std::tuple{30, 8, 8, 12, 1024, 8}}) {
    std::mt19937_64 rng(4000u + static_cast<unsigned>(nx));
    GridD3 ref(nx, ny, nz);
    ref.fill_random(rng, -1.0, 1.0);
    GridD3 got(nx, ny, nz);
    for (int x = 0; x <= nx + 1; ++x)
      for (int y = 0; y <= ny + 1; ++y)
        for (int z = 0; z <= nz + 1; ++z) got.at(x, y, z) = ref.at(x, y, z);
    stencil::gs3d7_run(c, ref, steps);
    tiling::ParallelogramNDOptions opt;
    opt.width = w;
    opt.height = h;
    tiling::parallelogram_gs3d7_run(c, got, steps, opt);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0)
        << "nx=" << nx << " steps=" << steps;
  }
}

TEST(Parallel2D, ManyThreadsDeterministicAndExact) {
  const stencil::C2D5 c = stencil::heat2d(0.2);
  const int nx = 400, ny = 64;
  std::mt19937_64 rng(5000);
  GridD2 ref(nx, ny);
  ref.fill_random(rng, -1.0, 1.0);
  GridD2 got(nx, ny);
  copy(ref, got);
  stencil::jacobi2d5_run(c, ref, 32);
  tiling::Diamond2DOptions opt;
  opt.width = 64;
  opt.height = 16;
  const int saved = omp_get_max_threads();
  omp_set_num_threads(12);
  tiling::diamond_jacobi2d5_run(c, got, 32, opt);
  omp_set_num_threads(saved);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

}  // namespace
