// Compile-time trace models of the engines' ring/slot index math.
//
// Each check_* function replays, at constexpr time, the exact slot
// sequence an engine family drives through its vector ring for one tile:
// gather, steady-state window walks, and flush.  Every slot passes through
// CheckedIdx<0, kRingCapacity - 1> (the std::array<V, kRingCapacity>
// storage bound of the 1D engines) and checked_index(_, 0, M - 1) (the
// ring-period bound that makes slot/inc a correct modular walk), so an
// out-of-bounds access for a given (vl, radius/pad, stride) fails the
// enclosing static_assert - a build break, not a runtime fault.
//
// The models mirror, line for line, the index arithmetic of:
//   jacobi1d          src/tv/tv1d_impl.hpp        (ring period M = s + R)
//   gs1d              src/tv/tv_gs1d_impl.hpp     (M = s)
//   diamond1d         src/tiling/diamond_impl.hpp (M = s + R, sloped
//                     bases: gather/flush positions can be negative)
//   parallelogram1d   src/tiling/parallelogram_impl.hpp (M = s, sloped)
//   rowring           the 2D/3D row rings (tv2d/tv3d/diamond2d/diamond3d
//                     at pad 2, tv_gs2d/tv_gs3d/parallelogram2d at pad 1;
//                     M = s + pad rows allocated dynamically, so only the
//                     [0, M) slot bound applies)
// If an engine's ring walk changes shape, change the model in the same
// commit - the static gate is only as honest as this correspondence.
#pragma once

#include "tv/ring.hpp"
#include "util/checked_idx.hpp"

namespace tvs::ringtest {

using tv::kRingCapacity;
using tv::RingIndex;
using util::checked_index;
using Slot = util::CheckedIdx<0, kRingCapacity - 1>;

// One checked ring access: within the fixed std::array capacity AND
// within the ring period M.
constexpr bool touch(int slot, int M) {
  (void)Slot(slot);
  (void)checked_index(slot, 0, M - 1);
  return true;
}

// Jacobi flat tile (tv1d_impl.hpp): gather positions [base - R,
// base + s - 1], a steady loop whose window walks 2R+1 consecutive slots
// per output, and a flush over [x_end + 1 - R, x_end + s].
template <int VL, int R>
constexpr bool check_jacobi1d(int s, int base) {
  const int M = s + R;
  const RingIndex rix(M);
  for (int p = base - R; p <= base + s - 1; ++p) touch(rix.slot(p), M);
  int ib = rix.slot(base - R);
  const int x_end = base + VL * s + s;  // nominal tile: a few periods
  for (int x = base; x <= x_end; ++x) {
    int iw = ib;
    for (int k = 0; k <= 2 * R; ++k) {
      touch(iw, M);
      iw = rix.inc(iw);
    }
    touch(ib, M);  // the overwrite of the oldest slot
    ib = rix.inc(ib);
  }
  for (int p = x_end + 1 - R; p <= x_end + s; ++p) touch(rix.slot(p), M);
  return true;
}

// Gauss-Seidel tile (tv_gs1d_impl.hpp): gather [base, base + s - 1],
// steady loop touching the center slot and its east neighbour, flush
// [x_end + 1, x_end + s].
template <int VL, int R>
constexpr bool check_gs1d(int s, int base) {
  static_assert(R == 1, "the GS engines are radius-1");
  const int M = s;
  const RingIndex rix(M);
  for (int p = base; p <= base + s - 1; ++p) touch(rix.slot(p), M);
  int ic = rix.slot(base);
  const int x_end = base + VL * s + s;
  for (int x = base; x <= x_end; ++x) {
    const int ie = rix.inc(ic);
    touch(ic, M);
    touch(ie, M);
    ic = ie;
  }
  for (int p = x_end + 1; p <= x_end + s; ++p) touch(rix.slot(p), M);
  return true;
}

// Diamond trapezoid (diamond_impl.hpp): the flat Jacobi walk, but the
// base interval is sloped, so gather/flush positions go negative (phase-2
// seam tiles start at x_begin = 1 - 3s at the left domain edge).
template <int VL, int R>
constexpr bool check_diamond1d(int s, int /*base*/) {
  // Most negative phase-2 base: xl0 = 1 - (VL - 1) * s, minus the wedge.
  return check_jacobi1d<VL, R>(s, 1 - (VL - 1) * s - R) &&
         check_jacobi1d<VL, R>(s, 1);
}

// Parallelogram tile (parallelogram_impl.hpp): the GS walk with sloped
// bases (x_begin = XL[1] - (VL - 1) * s can be deeply negative).
template <int VL, int R>
constexpr bool check_parallelogram1d(int s, int /*base*/) {
  return check_gs1d<VL, R>(s, 1 - (VL - 1) * s) && check_gs1d<VL, R>(s, 1);
}

// 2D/3D row rings: M = s + pad rows, slot = RingIndex(M).slot(p) for row
// positions p from (possibly negative, diamond2d/3d) tile bases up to a
// few periods out.  Storage is allocated at exactly M rows, so the only
// invariant is slot in [0, M) for every p the engines form.
template <int VL, int PAD>
constexpr bool check_rowring(int s, int base) {
  const int M = s + PAD;
  const RingIndex rix(M);
  for (int p = base - (VL - 1) * s - PAD; p <= base + VL * s + M; ++p) {
    const int slot = rix.slot(p);
    (void)checked_index(slot, 0, M - 1);
  }
  return true;
}

}  // namespace tvs::ringtest
