// Property tests for the 3D temporal-vectorization engines: Jacobi 3D7P and
// Gauss-Seidel 3D7P, bit-exact against the scalar oracles.
#include <gtest/gtest.h>

#include "tolerance.hpp"

#include <random>
#include <tuple>

#include "stencil/reference3d.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv3d.hpp"
#include "tv/tv3d_impl.hpp"
#include "tv/tv_gs3d.hpp"

namespace {

using namespace tvs;
using Grid = grid::Grid3D<double>;

Grid make_random(int nx, int ny, int nz, unsigned seed) {
  std::mt19937_64 rng(seed);
  Grid g(nx, ny, nz);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

void copy(const Grid& src, Grid& dst) {
  for (int x = 0; x <= src.nx() + 1; ++x)
    for (int y = 0; y <= src.ny() + 1; ++y)
      for (int z = 0; z <= src.nz() + 1; ++z)
        dst.at(x, y, z) = src.at(x, y, z);
}

// (nx, ny, nz, steps, stride)
using P = std::tuple<int, int, int, long, int>;
class Tv3dSweep : public ::testing::TestWithParam<P> {};

TEST_P(Tv3dSweep, JacobiMatchesOracleExactly) {
  const auto [nx, ny, nz, steps, s] = GetParam();
  const stencil::C3D7 c{0.28, 0.14, 0.12, 0.13, 0.11, 0.12, 0.1};
  Grid ref = make_random(nx, ny, nz, 44u + static_cast<unsigned>(nx + ny + nz));
  Grid got(nx, ny, nz);
  copy(ref, got);
  stencil::jacobi3d7_run(c, ref, steps);
  tv::tv_jacobi3d7_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "n=(" << nx << "," << ny << "," << nz << ") steps=" << steps
      << " s=" << s;
}

TEST_P(Tv3dSweep, GaussSeidelMatchesOracleExactly) {
  const auto [nx, ny, nz, steps, s] = GetParam();
  const stencil::C3D7 c{0.3, 0.13, 0.11, 0.12, 0.1, 0.13, 0.11};
  Grid ref = make_random(nx, ny, nz, 54u + static_cast<unsigned>(nx + ny + nz));
  Grid got(nx, ny, nz);
  copy(ref, got);
  stencil::gs3d7_run(c, ref, steps);
  tv::tv_gs3d7_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "n=(" << nx << "," << ny << "," << nz << ") steps=" << steps
      << " s=" << s;
}

TEST_P(Tv3dSweep, ScalarBackendJacobiMatchesOracle) {
  const auto [nx, ny, nz, steps, s] = GetParam();
  const stencil::C3D7 c = stencil::heat3d(0.1);
  Grid ref = make_random(nx, ny, nz, 64u + static_cast<unsigned>(nx));
  Grid got(nx, ny, nz);
  copy(ref, got);
  stencil::jacobi3d7_run(c, ref, steps);
  using SV = simd::ScalarVec<double, 4>;
  tv::Workspace3D<SV, double> ws;
  tv::tv3d_run(tv::J3D7F<SV>(c), got, steps, s, ws);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Tv3dSweep,
    ::testing::Values(P{1, 6, 6, 4, 2},     // no pipeline
                      P{7, 6, 5, 5, 2},     // below threshold
                      P{8, 8, 8, 4, 2},     // exactly 4s
                      P{9, 7, 6, 6, 2},     // odd everything
                      P{16, 10, 12, 8, 2},  // two tiles
                      P{17, 5, 9, 9, 2},    // residual step
                      P{24, 12, 8, 4, 3},   // stride 3
                      P{25, 9, 11, 7, 2}, P{33, 14, 10, 12, 2}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_ny" +
             std::to_string(std::get<1>(info.param)) + "_nz" +
             std::to_string(std::get<2>(info.param)) + "_t" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param));
    });

TEST(Tv3d, ConstantFieldSteadyState) {
  Grid u(12, 10, 8);
  u.fill(3.25);
  tv::tv_jacobi3d7_run(stencil::heat3d(0.05), u, 8, 2);
  for (int x = 0; x <= 13; ++x)
    for (int y = 0; y <= 11; ++y)
      for (int z = 0; z <= 9; ++z)
        EXPECT_TRUE(test::near_ulp(u.at(x, y, z), 3.25));
}

}  // namespace
