// Unit tests for the grid substrate: alignment, index mapping, padding,
// ping-pong discipline.
#include <gtest/gtest.h>

#include "tolerance.hpp"

#include <cstdint>
#include <random>

#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "grid/pingpong.hpp"

namespace {

using namespace tvs::grid;

TEST(AlignedBuffer, AlignmentAndValueInit) {
  AlignedBuffer<double> b(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kAlignment, 0u);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0.0);
  EXPECT_EQ(b.size(), 37u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[3] = 42;
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(Grid1D, IndexingAndPadding) {
  Grid1D<double> g(10);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.extent(), 12);
  // Padding cells are addressable on both sides.
  g.at(-kPad) = 1.0;
  g.at(10 + 1 + kPad) = 2.0;
  EXPECT_EQ(g.at(-kPad), 1.0);
  EXPECT_EQ(g.at(11 + kPad), 2.0);
  // p() is anchored at x = 0.
  g.at(0) = 7.0;
  EXPECT_EQ(g.p()[0], 7.0);
  g.at(5) = 8.0;
  EXPECT_EQ(g.p()[5], 8.0);
}

TEST(Grid1D, FillAndDiff) {
  Grid1D<double> a(16), b(16);
  a.fill(3.0);
  b.fill(3.0);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b.at(7) = 4.5;
  EXPECT_TRUE(tvs::test::near_ulp(max_abs_diff(a, b), 1.5));
}

TEST(GridOffsets, MatchPointerArithmeticOnSmallGrids) {
  Grid2D<double> g2(6, 9);
  for (int x = 0; x <= 7; ++x)
    for (int y = -kPad; y <= 10 + kPad; ++y)
      EXPECT_EQ(&g2.at(x, y), g2.row(x) + y) << x << "," << y;
  EXPECT_EQ(g2.offset(3, 4) - g2.offset(3, 0), 4);
  EXPECT_EQ(g2.offset(4, 0) - g2.offset(3, 0), g2.stride());

  Grid3D<double> g3(4, 5, 6);
  for (int x = 0; x <= 5; ++x)
    for (int y = 0; y <= 6; ++y)
      for (int z = -kPad; z <= 7 + kPad; ++z)
        EXPECT_EQ(&g3.at(x, y, z), g3.line(x, y) + z);
  EXPECT_EQ(g3.offset(1, 2, 3) - g3.offset(1, 2, 0), 3);
  EXPECT_EQ(g3.offset(1, 3, 0) - g3.offset(1, 2, 0), g3.zstride());

  Grid1D<double> g1(12);
  EXPECT_EQ(g1.offset(5) - g1.offset(0), 5);
  EXPECT_EQ(g1.offset(-kPad), 0);
}

// Regression: offsets are computed in std::ptrdiff_t, not int.  A grid of
// nx * ny >= 2^31 elements (46341^2 doubles ~ 16 GiB — far too large to
// allocate here) used to overflow 32-bit offset math; the static layout
// helpers let the arithmetic be checked without the allocation.
TEST(GridOffsets, No32BitOverflowNearTheBoundary) {
  {
    // stride for ny = 46341 doubles: rounded up to a multiple of 8.
    const std::ptrdiff_t stride = 46344;
    const int x = 46340, y = 46340;
    const std::ptrdiff_t expect =
        static_cast<std::ptrdiff_t>(x) * stride + y + kPad;
    ASSERT_GT(expect, std::ptrdiff_t{1} << 31);  // would wrap in int math
    EXPECT_EQ(Grid2D<double>::linear_offset(x, y, stride), expect);
    // int32 cells hit the same boundary at the same element count.
    EXPECT_EQ(Grid2D<std::int32_t>::linear_offset(x, y, stride), expect);
  }
  {
    const std::ptrdiff_t zstride = 2064;  // nz = 2048 + 2 + 2*kPad rounded
    const std::ptrdiff_t ystride = zstride * 1300;
    const int x = 1290, y = 1290, z = 2040;
    const std::ptrdiff_t expect = static_cast<std::ptrdiff_t>(x) * ystride +
                                  static_cast<std::ptrdiff_t>(y) * zstride +
                                  z + kPad;
    ASSERT_GT(expect, std::ptrdiff_t{1} << 31);
    EXPECT_EQ(Grid3D<double>::linear_offset(x, y, z, ystride, zstride),
              expect);
  }
}

TEST(Grid1D, FillRandomCoversBoundaryCells) {
  std::mt19937_64 rng(1);
  Grid1D<double> g(8);
  g.fill_random(rng, 1.0, 2.0);
  for (int x = 0; x <= 9; ++x) {
    EXPECT_GE(g.at(x), 1.0);
    EXPECT_LE(g.at(x), 2.0);
  }
}

TEST(Grid2D, IndexingRowPointersStride) {
  Grid2D<double> g(4, 6);
  EXPECT_EQ(g.nx(), 4);
  EXPECT_EQ(g.ny(), 6);
  EXPECT_GE(g.stride(), 6 + 2 + 2 * kPad);
  g.at(2, 3) = 5.0;
  EXPECT_EQ(g.row(2)[3], 5.0);
  g.at(3, 0) = -1.0;
  EXPECT_EQ(g.row(3)[0], -1.0);
  // Distinct cells do not alias.
  g.at(1, 1) = 1.0;
  g.at(1, 2) = 2.0;
  g.at(2, 1) = 3.0;
  EXPECT_EQ(g.at(1, 1), 1.0);
  EXPECT_EQ(g.at(1, 2), 2.0);
  EXPECT_EQ(g.at(2, 1), 3.0);
}

TEST(Grid2D, PaddedColumnsAddressable) {
  Grid2D<std::int32_t> g(3, 5);
  g.at(1, -kPad) = 11;
  g.at(3, 5 + 1 + kPad) = 22;
  EXPECT_EQ(g.at(1, -kPad), 11);
  EXPECT_EQ(g.at(3, 6 + kPad), 22);
}

TEST(Grid3D, IndexingLinePointers) {
  Grid3D<double> g(3, 4, 5);
  g.at(1, 2, 3) = 9.0;
  EXPECT_EQ(g.line(1, 2)[3], 9.0);
  g.at(3, 4, 0) = 1.0;
  g.at(3, 4, 6) = 2.0;
  EXPECT_EQ(g.at(3, 4, 0), 1.0);
  EXPECT_EQ(g.at(3, 4, 6), 2.0);
  // All distinct interior cells hold distinct values after fill.
  int v = 0;
  for (int x = 0; x <= 4; ++x)
    for (int y = 0; y <= 5; ++y)
      for (int z = 0; z <= 6; ++z) g.at(x, y, z) = v++;
  v = 0;
  for (int x = 0; x <= 4; ++x)
    for (int y = 0; y <= 5; ++y)
      for (int z = 0; z <= 6; ++z) EXPECT_EQ(g.at(x, y, z), v++);
}

TEST(Grid3D, MaxAbsDiff) {
  Grid3D<double> a(2, 2, 2), b(2, 2, 2);
  a.fill(1.0);
  b.fill(1.0);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b.at(2, 1, 2) = 3.5;
  EXPECT_TRUE(tvs::test::near_ulp(max_abs_diff(a, b), 2.5));
}

TEST(PingPong, SwapAndParity) {
  PingPong<Grid1D<double>> pp(4);
  pp.even().fill(1.0);
  pp.odd().fill(2.0);
  EXPECT_EQ(pp.cur().at(1), 1.0);
  EXPECT_EQ(pp.next().at(1), 2.0);
  pp.swap();
  EXPECT_EQ(pp.cur().at(1), 2.0);
  EXPECT_EQ(pp.next().at(1), 1.0);
  EXPECT_EQ(pp.by_parity(0).at(1), 1.0);
  EXPECT_EQ(pp.by_parity(1).at(1), 2.0);
  EXPECT_EQ(pp.by_parity(8).at(1), 1.0);
}

}  // namespace
