// Sanity tests for the scalar reference engines (the oracle itself):
// hand-computed values, steady states, conservation-style properties, the
// Life rule table, and LCS against a brute-force recursion.
#include <gtest/gtest.h>

#include "tolerance.hpp"

#include <algorithm>
#include <random>
#include <vector>

#include "stencil/lcs_ref.hpp"
#include "stencil/life_ref.hpp"
#include "stencil/reference1d.hpp"
#include "stencil/reference2d.hpp"
#include "stencil/reference3d.hpp"

namespace {

using namespace tvs;
using namespace tvs::stencil;

using Grid1DD = grid::Grid1D<double>;

TEST(Reference1D, HandComputedStep) {
  Grid1DD u(3);
  // a = [b=1 | 2 3 4 | b=5]
  u.at(0) = 1;
  u.at(1) = 2;
  u.at(2) = 3;
  u.at(3) = 4;
  u.at(4) = 5;
  const C1D3 c{0.25, 0.5, 0.25};
  grid::Grid1D<double> out(3);
  jacobi1d3_step(c, u, out);
  EXPECT_TRUE(test::near_ulp(out.at(1), 0.25 * 1 + 0.5 * 2 + 0.25 * 3));
  EXPECT_TRUE(test::near_ulp(out.at(2), 0.25 * 2 + 0.5 * 3 + 0.25 * 4));
  EXPECT_TRUE(test::near_ulp(out.at(3), 0.25 * 3 + 0.5 * 4 + 0.25 * 5));
  EXPECT_TRUE(test::near_ulp(out.at(0), 1));
  EXPECT_TRUE(test::near_ulp(out.at(4), 5));
}

TEST(Reference1D, ConstantFieldIsSteadyState) {
  Grid1DD u(33);
  u.fill(4.2);
  jacobi1d3_run(heat1d(0.2), u, 17);
  for (int x = 0; x <= 34; ++x) EXPECT_TRUE(test::near_ulp(u.at(x), 4.2));
}

TEST(Reference1D, HeatDiffusesTowardsBoundary) {
  Grid1DD u(21);
  u.fill(0.0);
  u.at(11) = 1.0;  // hot spot
  jacobi1d3_run(heat1d(0.25), u, 50);
  // Everything decays towards the 0 boundary; symmetry about the center.
  for (int x = 1; x <= 21; ++x) {
    EXPECT_GT(u.at(x), 0.0);
    EXPECT_LT(u.at(x), 1.0);
  }
  for (int x = 1; x <= 10; ++x) EXPECT_NEAR(u.at(x), u.at(22 - x), 1e-15);
}

TEST(Reference1D, FivePointMatchesThreePointForZeroOuterCoeffs) {
  std::mt19937_64 rng(3);
  Grid1DD a(40), b(40);
  a.fill_random(rng, -1, 1);
  a.at(-1) = 0;
  a.at(42) = 0;
  for (int x = -1; x <= 42; ++x) b.at(x) = a.at(x);
  const C1D3 c3{0.3, 0.4, 0.3};
  const C1D5 c5{0.0, 0.3, 0.4, 0.3, 0.0};
  jacobi1d3_run(c3, a, 8);
  jacobi1d5_run(c5, b, 8);
  for (int x = 1; x <= 40; ++x) EXPECT_NEAR(a.at(x), b.at(x), 1e-14);
}

TEST(Reference1D, GaussSeidelHandComputed) {
  Grid1DD u(2);
  u.at(0) = 1;
  u.at(1) = 2;
  u.at(2) = 3;
  u.at(3) = 4;
  const C1D3 c{0.5, 0.25, 0.25};
  gs1d3_sweep(c, u);
  const double v1 = 0.5 * 1 + 0.25 * 2 + 0.25 * 3;
  EXPECT_TRUE(test::near_ulp(u.at(1), v1));
  EXPECT_TRUE(test::near_ulp(u.at(2), 0.5 * v1 + 0.25 * 3 + 0.25 * 4));
}

TEST(Reference1D, GaussSeidelConvergesFasterThanJacobiOnHeat) {
  // Both iterate to the same fixed point (boundary-driven linear profile);
  // Gauss-Seidel should be at least as close after the same sweep count.
  Grid1DD j(31), g(31);
  j.fill(0);
  g.fill(0);
  j.at(0) = g.at(0) = 1.0;
  j.at(32) = g.at(32) = 0.0;
  const C1D3 c = heat1d(0.25);
  jacobi1d3_run(c, j, 60);
  gs1d3_run(c, g, 60);
  auto err = [](const Grid1DD& u) {
    double e = 0;
    for (int x = 0; x <= 32; ++x) {
      const double exact = 1.0 - static_cast<double>(x) / 32.0;
      e = std::max(e, std::abs(u.at(x) - exact));
    }
    return e;
  };
  EXPECT_LT(err(g), err(j));
}

TEST(Reference2D, ConstantSteadyStateAndHandComputed) {
  grid::Grid2D<double> u(3, 3);
  u.fill(1.5);
  jacobi2d5_run(heat2d(0.1), u, 9);
  for (int x = 0; x <= 4; ++x)
    for (int y = 0; y <= 4; ++y) EXPECT_TRUE(test::near_ulp(u.at(x, y), 1.5));

  grid::Grid2D<double> v(1, 1);
  v.at(0, 1) = 1;  // south
  v.at(2, 1) = 2;  // north
  v.at(1, 0) = 3;  // west
  v.at(1, 2) = 4;  // east
  v.at(1, 1) = 5;
  const C2D5 c{0.2, 0.1, 0.15, 0.25, 0.3};
  grid::Grid2D<double> out(1, 1);
  jacobi2d5_step(c, v, out);
  EXPECT_TRUE(test::near_ulp(out.at(1, 1),
                   0.2 * 5 + 0.1 * 3 + 0.15 * 4 + 0.25 * 1 + 0.3 * 2));
}

TEST(Reference2D, NinePointHandComputed) {
  grid::Grid2D<double> v(1, 1);
  int k = 1;
  for (int x = 0; x <= 2; ++x)
    for (int y = 0; y <= 2; ++y) v.at(x, y) = k++;
  // v = [1 2 3; 4 5 6; 7 8 9], center v(1,1)=5
  const C2D9 c{0.1, 0.2, 0.3, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09};
  grid::Grid2D<double> out(1, 1);
  jacobi2d9_step(c, v, out);
  const double expect = 0.1 * 5 + 0.2 * 4 + 0.3 * 6 + 0.04 * 2 + 0.05 * 8 +
                        0.06 * 1 + 0.07 * 3 + 0.08 * 7 + 0.09 * 9;
  EXPECT_TRUE(test::near_ulp(out.at(1, 1), expect));
}

TEST(Reference2D, GaussSeidelUsesNewValues) {
  grid::Grid2D<double> u(2, 2);
  u.fill(1.0);
  const C2D5 c{0.2, 0.2, 0.2, 0.2, 0.2};
  gs2d5_sweep(c, u);
  // (1,1) first: all-ones neighbourhood -> 1.0
  EXPECT_TRUE(test::near_ulp(u.at(1, 1), 1.0));
  // every later cell also sees 1.0 everywhere
  EXPECT_TRUE(test::near_ulp(u.at(2, 2), 1.0));
  // Now break symmetry and check (1,2) sees the *new* (1,1).
  grid::Grid2D<double> w(2, 2);
  w.fill(0.0);
  w.at(1, 1) = 1.0;
  gs2d5_sweep(c, w);
  const double v11 = 0.2 * 1.0;  // center only
  EXPECT_TRUE(test::near_ulp(w.at(1, 1), v11));
  EXPECT_TRUE(test::near_ulp(w.at(1, 2), 0.2 * v11));            // west is new
  EXPECT_TRUE(test::near_ulp(w.at(2, 1), 0.2 * v11));            // south is new
  // west+south new
  EXPECT_TRUE(test::near_ulp(w.at(2, 2), 0.2 * 0.2 * v11 * 2));
}

TEST(Reference3D, ConstantSteadyStateAndHandComputed) {
  grid::Grid3D<double> u(2, 2, 2);
  u.fill(2.0);
  jacobi3d7_run(heat3d(0.05), u, 5);
  for (int x = 0; x <= 3; ++x)
    for (int y = 0; y <= 3; ++y)
      for (int z = 0; z <= 3; ++z)
        EXPECT_TRUE(test::near_ulp(u.at(x, y, z), 2.0));

  grid::Grid3D<double> v(1, 1, 1);
  v.at(1, 1, 1) = 1;
  v.at(1, 1, 0) = 2;
  v.at(1, 1, 2) = 3;
  v.at(1, 0, 1) = 4;
  v.at(1, 2, 1) = 5;
  v.at(0, 1, 1) = 6;
  v.at(2, 1, 1) = 7;
  const C3D7 c{0.1, 0.2, 0.3, 0.04, 0.05, 0.06, 0.07};
  grid::Grid3D<double> out(1, 1, 1);
  jacobi3d7_step(c, v, out);
  EXPECT_TRUE(test::near_ulp(
      out.at(1, 1, 1), 0.1 * 1 + 0.2 * 2 + 0.3 * 3 + 0.04 * 4 + 0.05 * 5 +
                           0.06 * 6 + 0.07 * 7));
}

TEST(LifeRef, RuleTableExhaustive) {
  const LifeRule b2s23{};  // paper's variant
  for (std::int32_t alive = 0; alive <= 1; ++alive)
    for (std::int32_t sum = 0; sum <= 8; ++sum) {
      const bool expect =
          alive ? (sum == 2 || sum == 3) : (sum == 2);
      EXPECT_EQ(life_rule(b2s23, alive, sum), expect ? 1 : 0)
          << "alive=" << alive << " sum=" << sum;
    }
  const LifeRule conway{3, 2, 3};
  for (std::int32_t sum = 0; sum <= 8; ++sum) {
    EXPECT_EQ(life_rule(conway, 0, sum), sum == 3 ? 1 : 0);
    EXPECT_EQ(life_rule(conway, 1, sum), (sum == 2 || sum == 3) ? 1 : 0);
  }
}

TEST(LifeRef, ConwayBlinkerPeriodTwo) {
  const LifeRule conway{3, 2, 3};
  grid::Grid2D<std::int32_t> u(5, 5);
  u.fill(0);
  u.at(3, 2) = u.at(3, 3) = u.at(3, 4) = 1;
  grid::Grid2D<std::int32_t> v(5, 5);
  life_step(conway, u, v);
  // Now vertical.
  EXPECT_EQ(v.at(2, 3), 1);
  EXPECT_EQ(v.at(3, 3), 1);
  EXPECT_EQ(v.at(4, 3), 1);
  EXPECT_EQ(v.at(3, 2), 0);
  EXPECT_EQ(v.at(3, 4), 0);
  grid::Grid2D<std::int32_t> w(5, 5);
  life_step(conway, v, w);
  EXPECT_EQ(grid::max_abs_diff(u, w), 0.0);
}

// Brute-force LCS by exponential recursion on tiny inputs.
std::int32_t lcs_brute(std::span<const std::int32_t> a,
                       std::span<const std::int32_t> b) {
  if (a.empty() || b.empty()) return 0;
  if (a.back() == b.back())
    return 1 + lcs_brute(a.first(a.size() - 1), b.first(b.size() - 1));
  return std::max(lcs_brute(a.first(a.size() - 1), b),
                  lcs_brute(a, b.first(b.size() - 1)));
}

TEST(LcsRef, MatchesBruteForceOnRandomSmallInputs) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::int32_t> d(0, 3);
  for (int it = 0; it < 60; ++it) {
    std::vector<std::int32_t> a(1 + it % 9), b(1 + (it * 7) % 10);
    for (auto& v : a) v = d(rng);
    for (auto& v : b) v = d(rng);
    EXPECT_EQ(lcs_ref(a, b), lcs_brute(a, b));
  }
}

TEST(LcsRef, KnownCases) {
  const std::vector<std::int32_t> a{1, 2, 3, 4, 1};
  const std::vector<std::int32_t> b{3, 4, 1, 2, 1, 3};
  EXPECT_EQ(lcs_ref(a, b), 3);  // e.g. {3,4,1} or {1,2,3}
  const std::vector<std::int32_t> c{1, 1, 1};
  EXPECT_EQ(lcs_ref(c, c), 3);
  EXPECT_EQ(lcs_ref(a, std::vector<std::int32_t>{}), 0);
}

TEST(LcsRef, FinalRowIsMonotone) {
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<std::int32_t> d(0, 4);
  std::vector<std::int32_t> a(20), b(30);
  for (auto& v : a) v = d(rng);
  for (auto& v : b) v = d(rng);
  const auto row = lcs_ref_row(a, b);
  ASSERT_EQ(row.size(), b.size() + 1);
  EXPECT_EQ(row[0], 0);
  for (std::size_t i = 1; i < row.size(); ++i) {
    EXPECT_GE(row[i], row[i - 1]);
    EXPECT_LE(row[i] - row[i - 1], 1);
  }
}

}  // namespace
