// Diamond tiling + temporal vectorization must reproduce the scalar oracle
// exactly, for every tile geometry: wide/narrow tiles, short/tall bands,
// step counts off the band and vl grid, single- and multi-threaded.
#include <gtest/gtest.h>

#include "util/omp_compat.hpp"

#include <random>
#include <tuple>

#include "stencil/reference1d.hpp"
#include "tiling/diamond.hpp"

namespace {

using namespace tvs;
using Grid = grid::Grid1D<double>;

Grid make_random(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  Grid g(nx);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

void copy(const Grid& src, Grid& dst) {
  for (int x = -2; x <= src.nx() + 3; ++x) dst.at(x) = src.at(x);
}

// (nx, steps, width, height, stride)
using P = std::tuple<int, long, int, int, int>;
class Diamond1DSweep : public ::testing::TestWithParam<P> {};

TEST_P(Diamond1DSweep, MatchesOracleExactly) {
  const auto [nx, steps, w, h, s] = GetParam();
  const stencil::C1D3 c{0.3, 0.42, 0.28};
  Grid ref = make_random(nx, 600u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, steps);
  tiling::Diamond1DOptions opt;
  opt.width = w;
  opt.height = h;
  opt.stride = s;
  tiling::diamond_jacobi1d3_run(c, got, steps, opt);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " steps=" << steps << " W=" << w << " H=" << h
      << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Diamond1DSweep,
    ::testing::Values(
        // narrow tiles force scalar-fallback trapezoids
        P{64, 8, 16, 8, 2}, P{100, 12, 16, 4, 2}, P{128, 16, 32, 8, 3},
        // regular tiles, steady vector loop active
        P{512, 32, 64, 16, 7}, P{777, 35, 64, 16, 7}, P{1000, 64, 128, 32, 7},
        // steps not a multiple of 4 / not a multiple of the band height
        P{512, 33, 64, 16, 7}, P{512, 30, 64, 16, 7}, P{512, 7, 64, 16, 7},
        P{512, 18, 64, 16, 2}, P{400, 1, 64, 16, 7}, P{400, 2, 64, 16, 3},
        // domain smaller than one tile
        P{100, 24, 4096, 64, 7}, P{37, 16, 4096, 64, 2},
        // odd sizes, stride at minimum
        P{333, 40, 48, 12, 2}, P{513, 28, 96, 24, 5},
        // tall bands (heavy phase-2 growth)
        P{2048, 128, 512, 128, 7}, P{2048, 100, 512, 128, 7}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_W" +
             std::to_string(std::get<2>(info.param)) + "_H" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param));
    });

TEST(Diamond1D, MultiThreadedMatchesOracle) {
  const stencil::C1D3 c = stencil::heat1d(0.25);
  const int nx = 1 << 15;
  Grid ref = make_random(nx, 77), got(nx);
  copy(ref, got);
  stencil::jacobi1d3_run(c, ref, 96);
  tiling::Diamond1DOptions opt;
  opt.width = 1024;
  opt.height = 32;
  const int saved = omp_get_max_threads();
  omp_set_num_threads(8);
  tiling::diamond_jacobi1d3_run(c, got, 96, opt);
  omp_set_num_threads(saved);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

TEST(Diamond1D, RepeatedRunsDeterministic) {
  const stencil::C1D3 c = stencil::heat1d(0.2);
  const int nx = 5000;
  Grid a = make_random(nx, 88), b(nx);
  copy(a, b);
  tiling::Diamond1DOptions opt;
  opt.width = 256;
  opt.height = 32;
  tiling::diamond_jacobi1d3_run(c, a, 64, opt);
  tiling::diamond_jacobi1d3_run(c, b, 64, opt);
  EXPECT_EQ(grid::max_abs_diff(a, b), 0.0);
}

TEST(Diamond1D, PingPongApiParityContract) {
  const stencil::C1D3 c = stencil::heat1d(0.25);
  const int nx = 3000;
  Grid ref = make_random(nx, 99);
  grid::PingPong<Grid> pp(nx);
  for (int x = -grid::kPad; x <= nx + 1 + grid::kPad; ++x)
    pp.even().at(x) = ref.at(x);
  tiling::fix_boundaries(pp);
  stencil::jacobi1d3_run(c, ref, 31);  // odd step count
  tiling::Diamond1DOptions opt;
  opt.width = 512;
  opt.height = 16;
  tiling::diamond_jacobi1d3_run(c, pp, 31, opt);
  EXPECT_EQ(grid::max_abs_diff(ref, pp.by_parity(31)), 0.0);
}

}  // namespace
