// Property tests for the 2D temporal-vectorization engine: Jacobi 2D5P,
// 2D9P, Game of Life (int32 x 8) and Gauss-Seidel 2D5P, all bit-exact
// against the scalar oracles, on both vector backends.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "stencil/life_ref.hpp"
#include "stencil/reference2d.hpp"
#include "tv/functors2d.hpp"
#include "tv/tv2d.hpp"
#include "tv/tv2d_impl.hpp"
#include "tv/tv_gs2d.hpp"
#include "tv/tv_gs2d_impl.hpp"
#include "tv/tv_life.hpp"

namespace {

using namespace tvs;
using GridD = grid::Grid2D<double>;
using GridI = grid::Grid2D<std::int32_t>;

GridD make_random(int nx, int ny, unsigned seed) {
  std::mt19937_64 rng(seed);
  GridD g(nx, ny);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

template <class G>
void copy(const G& src, G& dst) {
  for (int x = 0; x <= src.nx() + 1; ++x)
    for (int y = 0; y <= src.ny() + 1; ++y) dst.at(x, y) = src.at(x, y);
}

// (nx, ny, steps, stride)
using P = std::tuple<int, int, long, int>;

class Tv2dSweep : public ::testing::TestWithParam<P> {};

TEST_P(Tv2dSweep, Jacobi5PMatchesOracleExactly) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::C2D5 c{0.32, 0.2, 0.18, 0.14, 0.16};
  GridD ref = make_random(nx, ny, 40u + static_cast<unsigned>(nx * 31 + ny));
  GridD got(nx, ny);
  copy(ref, got);
  stencil::jacobi2d5_run(c, ref, steps);
  tv::tv_jacobi2d5_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " steps=" << steps << " s=" << s;
}

TEST_P(Tv2dSweep, Jacobi9PMatchesOracleExactly) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::C2D9 c{0.2, 0.15, 0.12, 0.1, 0.08, 0.09, 0.07, 0.1, 0.09};
  GridD ref = make_random(nx, ny, 50u + static_cast<unsigned>(nx * 37 + ny));
  GridD got(nx, ny);
  copy(ref, got);
  stencil::jacobi2d9_run(c, ref, steps);
  tv::tv_jacobi2d9_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " steps=" << steps << " s=" << s;
}

TEST_P(Tv2dSweep, GaussSeidelMatchesOracleExactly) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::C2D5 c{0.3, 0.22, 0.16, 0.18, 0.14};
  GridD ref = make_random(nx, ny, 60u + static_cast<unsigned>(nx * 41 + ny));
  GridD got(nx, ny);
  copy(ref, got);
  stencil::gs2d5_run(c, ref, steps);
  tv::tv_gs2d5_run(c, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " steps=" << steps << " s=" << s;
}

TEST_P(Tv2dSweep, ScalarBackendJacobi5PMatchesOracle) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::C2D5 c{0.3, 0.2, 0.2, 0.15, 0.15};
  GridD ref = make_random(nx, ny, 70u + static_cast<unsigned>(nx + ny));
  GridD got(nx, ny);
  copy(ref, got);
  stencil::jacobi2d5_run(c, ref, steps);
  using SV = simd::ScalarVec<double, 4>;
  tv::Workspace2D<SV, double> ws;
  tv::tv2d_run(tv::J2D5F<SV>(c), got, steps, s, ws);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Tv2dSweep,
    ::testing::Values(
        // nx below/at/above the 4s pipeline threshold, odd sizes
        P{1, 8, 4, 2}, P{7, 5, 5, 2}, P{8, 8, 4, 2}, P{9, 9, 6, 2},
        P{16, 4, 8, 2}, P{17, 33, 9, 2}, P{24, 16, 4, 3}, P{31, 7, 10, 2},
        P{40, 40, 12, 2}, P{64, 48, 7, 2}, P{65, 3, 4, 2}, P{100, 20, 2, 2},
        // larger strides
        P{56, 24, 8, 5}, P{60, 31, 8, 7}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_ny" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// ---- Life (vl = 8 int32 lanes: one tile is 8 generations) ------------------

using PL = std::tuple<int, int, long, int>;
class TvLifeSweep : public ::testing::TestWithParam<PL> {};

TEST_P(TvLifeSweep, MatchesOracleExactly) {
  const auto [nx, ny, steps, s] = GetParam();
  const stencil::LifeRule rule{};  // B2S23
  std::mt19937_64 rng(80u + static_cast<unsigned>(nx * 13 + ny));
  GridI ref(nx, ny);
  std::uniform_int_distribution<std::int32_t> d(0, 1);
  for (int x = 0; x <= nx + 1; ++x)
    for (int y = 0; y <= ny + 1; ++y) ref.at(x, y) = d(rng);
  GridI got(nx, ny);
  copy(ref, got);
  stencil::life_run(rule, ref, steps);
  tv::tv_life_run(rule, got, steps, s);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " ny=" << ny << " steps=" << steps << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TvLifeSweep,
    ::testing::Values(
        // vl = 8: pipeline needs nx >= 8s; hit both sides plus odd steps
        PL{15, 10, 9, 2}, PL{16, 16, 8, 2}, PL{17, 9, 10, 2}, PL{33, 20, 16, 2},
        PL{40, 12, 7, 2}, PL{48, 31, 11, 2}, PL{64, 16, 24, 3},
        PL{70, 25, 8, 2}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_ny" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(TvLife, ConwayGliderTravels) {
  const stencil::LifeRule conway{3, 2, 3};
  GridI u(40, 40);
  u.fill(0);
  // Glider heading south-east.
  u.at(2, 3) = u.at(3, 4) = u.at(4, 2) = u.at(4, 3) = u.at(4, 4) = 1;
  GridI ref(40, 40);
  copy(u, ref);
  stencil::life_run(conway, ref, 32);
  tv::tv_life_run(conway, u, 32, 2);
  EXPECT_EQ(grid::max_abs_diff(ref, u), 0.0);
  // After 32 steps the glider has moved 8 cells diagonally.
  EXPECT_EQ(u.at(10, 11), 1);
}

TEST(Tv2d, BoundaryStaysFixedAndRandomCoeffs) {
  std::mt19937_64 rng(91);
  std::uniform_real_distribution<double> d(-0.4, 0.4);
  for (int it = 0; it < 8; ++it) {
    const stencil::C2D5 c{d(rng), d(rng), d(rng), d(rng), d(rng)};
    const int nx = 20 + 7 * it, ny = 10 + 5 * it;
    GridD ref = make_random(nx, ny, 900u + static_cast<unsigned>(it));
    GridD got(nx, ny);
    copy(ref, got);
    stencil::jacobi2d5_run(c, ref, 9);
    tv::tv_jacobi2d5_run(c, got, 9, 2);
    ASSERT_EQ(grid::max_abs_diff(ref, got), 0.0) << "it=" << it;
    EXPECT_EQ(got.at(0, 3), ref.at(0, 3));
  }
}

}  // namespace
