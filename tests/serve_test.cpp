// Serving-layer guard (async batched API + NUMA/priority round):
//   * Solver::submit / Batch under concurrent mixed-size, mixed-dtype load
//     are bit-identical to the synchronous run() path — including when a
//     tiled-parallel plan is decomposed into per-tile pool tasks;
//   * the work-stealing executor drains on destruction, wakes parked
//     workers immediately on submit (no poll-period latency), and drains
//     the interactive band before batch work;
//   * serve::Topology parses sysfs cpulists, places workers under the
//     compact/spread policies, and degrades to a no-op on a single node;
//   * the persistent plan store round-trips tuned plans, REJECTS
//     corrupted, version-mismatched, and feature-mismatched entries, and
//     survives concurrent cross-process writers without tearing;
//   * owning Workloads carry their storage; non-owning ones don't copy;
//   * the error taxonomy and ProblemBuilder validate as documented.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "serve/batch.hpp"
#include "serve/executor.hpp"
#include "serve/plan_store.hpp"
#include "serve/sched.hpp"
#include "serve/stats.hpp"
#include "serve/topology.hpp"
#include "solver/builder.hpp"
#include "solver/solver.hpp"

namespace tvs {
namespace {

using solver::Family;
using solver::ProblemBuilder;
using solver::RunResult;
using solver::Solver;
using solver::StencilProblem;
using solver::Workload;

bool plan_pinned() { return std::getenv("TVS_PLAN") != nullptr; }

template <class T, class G>
void fill_pattern(G& g, unsigned salt) {
  std::mt19937_64 rng(1234u + salt);
  g.fill_random(rng, T(-1), T(1));
}

// Points TVS_PLAN_STORE at a fresh temp dir for one test; restores the
// disabled state (and zeroed counters) on scope exit.
class StoreDir {
 public:
  StoreDir() : dir_(std::filesystem::temp_directory_path() /
                    ("tvs_store_" + std::to_string(counter_++))) {
    std::filesystem::remove_all(dir_);
    serve::plan_store_set_dir(dir_.string());
  }
  ~StoreDir() {
    serve::plan_store_set_dir("");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::filesystem::path& path() const { return dir_; }

  // The single entry file the test created (the store is file-per-entry).
  std::filesystem::path only_entry() const {
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      if (e.path().extension() == ".plan") return e.path();
    }
    return {};
  }

 private:
  static int counter_;
  std::filesystem::path dir_;
};

int StoreDir::counter_ = 0;

// ---- cross-process plan-store writers --------------------------------------

#if defined(__unix__) || defined(__APPLE__)
// MUST stay the first test in this binary: fork() is only safe while the
// process is single-threaded, and later suites instantiate the
// process-wide serving pool whose workers live until exit.
TEST(ServePlanStoreFork, ConcurrentWritersNeverTearEntries) {
  const StoreDir store;
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();
  const solver::ExecutionPlan plan = solver::heuristic_plan(p);

  constexpr int kWriters = 4;
  constexpr int kSavesPerWriter = 50;
  std::vector<pid_t> kids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: hammer the same entry.  A shared ".tmp" name would let
      // these writers interleave into one file and rename a torn entry
      // into place; per-process temp names make every rename atomic.
      for (int i = 0; i < kSavesPerWriter; ++i) {
        serve::plan_store_save(p, "tuned", plan);
      }
      _exit(0);
    }
    kids.push_back(pid);
  }
  for (int i = 0; i < kSavesPerWriter; ++i) {
    serve::plan_store_save(p, "tuned", plan);  // the parent competes too
  }
  for (const pid_t pid : kids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // However the writes interleaved, the surviving entry must load intact
  // (the store verifies the full key on load, so a torn file would show
  // up as a reject) and no temp file may be left behind.
  const auto loaded = serve::plan_store_lookup(p, "tuned");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_string(), plan.to_string());
  EXPECT_EQ(serve::plan_store_stats().rejects, 0);
  int plans = 0;
  int others = 0;
  for (const auto& e : std::filesystem::directory_iterator(store.path())) {
    (e.path().extension() == ".plan" ? plans : others) += 1;
  }
  EXPECT_EQ(plans, 1);
  EXPECT_EQ(others, 0) << "stray temp files left behind";
}
#endif  // __unix__ || __APPLE__

// ---- unified Workload front door -------------------------------------------

TEST(ServeWorkload, RunWorkloadMatchesTypedOverload) {
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi2D5).extents(40, 24).steps(7).build();
  const stencil::C2D5 c = stencil::heat2d(0.2);
  grid::Grid2D<double> typed(p.nx, p.ny), erased(p.nx, p.ny);
  fill_pattern<double>(typed, 1);
  fill_pattern<double>(erased, 1);
  const Solver s(p);
  s.run(c, typed);
  const RunResult r = s.run(Workload(c, erased));
  EXPECT_EQ(grid::max_abs_diff(typed, erased), 0.0);
  EXPECT_EQ(r.plan.to_string(), s.plan().to_string());
  EXPECT_GE(r.seconds, 0.0);
}

TEST(ServeWorkload, WrongPayloadFamilyThrowsBadWorkload) {
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi2D5).extents(16, 16).steps(2).build();
  grid::Grid1D<double> u(16);
  u.fill(1.0);
  try {
    Solver(p).run(Workload(stencil::heat1d(0.25), u));
    FAIL() << "a 1D payload must not serve a 2D family";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadWorkload);
    EXPECT_EQ(e.problem_signature(), p.signature());
  }
}

TEST(ServeWorkload, ExtentMismatchThrowsBadExtents) {
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(2).build();
  grid::Grid1D<double> u(63);
  u.fill(1.0);
  try {
    Solver(p).run(Workload(stencil::heat1d(0.25), u));
    FAIL() << "extent mismatch must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadExtents);
  }
}

TEST(ServeWorkload, DtypeMismatchThrowsUnsupportedDtype) {
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(2).build();
  grid::Grid1D<float> u(64);
  u.fill(1.0f);
  try {
    Solver(p).run(Workload(stencil::heat1d<float>(0.25), u));
    FAIL() << "an f32 payload must not serve an f64 problem";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kUnsupportedDtype);
  }
}

// ---- executor --------------------------------------------------------------

TEST(ServeExecutor, DrainsOnDestruction) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    serve::ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // ~ThreadPool here: every queued task must run before the join.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ServeExecutor, CountsTasksAndSpreadsBursts) {
  serve::ThreadPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  while (ran.load() < kTasks) std::this_thread::yield();
  const serve::ExecutorStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_run, kTasks);
  EXPECT_EQ(stats.workers, 4);
  EXPECT_GE(stats.steals, 0);
}

// ---- submit / Batch vs sync ------------------------------------------------

TEST(ServeSubmit, MixedLoadBitIdenticalToSync) {
  constexpr int kPerKind = 4;
  std::vector<solver::Future<RunResult>> futures;

  // Per-kind storage; async grids must outlive the futures.
  std::vector<std::unique_ptr<grid::Grid1D<double>>> j1_sync, j1_async;
  std::vector<std::unique_ptr<grid::Grid2D<double>>> j2_sync, j2_async;
  std::vector<std::unique_ptr<grid::Grid1D<float>>> f1_sync, f1_async;
  std::vector<std::unique_ptr<grid::Grid2D<std::int32_t>>> lf_sync, lf_async;
  std::vector<StencilProblem> j1_p, j2_p, f1_p, lf_p;

  for (int i = 0; i < kPerKind; ++i) {
    // Jacobi1D3 f64, varying sizes.
    {
      const StencilProblem p = ProblemBuilder(Family::kJacobi1D3)
                                   .extents(40 + 16 * i)
                                   .steps(7)
                                   .build();
      j1_p.push_back(p);
      j1_sync.push_back(std::make_unique<grid::Grid1D<double>>(p.nx));
      j1_async.push_back(std::make_unique<grid::Grid1D<double>>(p.nx));
      fill_pattern<double>(*j1_sync.back(), static_cast<unsigned>(i));
      fill_pattern<double>(*j1_async.back(), static_cast<unsigned>(i));
      futures.push_back(Solver(p).submit(
          Workload(stencil::heat1d(0.25), *j1_async.back())));
    }
    // Jacobi2D5 f64.
    {
      const StencilProblem p = ProblemBuilder(Family::kJacobi2D5)
                                   .extents(24 + 4 * i, 17)
                                   .steps(5)
                                   .build();
      j2_p.push_back(p);
      j2_sync.push_back(std::make_unique<grid::Grid2D<double>>(p.nx, p.ny));
      j2_async.push_back(std::make_unique<grid::Grid2D<double>>(p.nx, p.ny));
      fill_pattern<double>(*j2_sync.back(), 10u + static_cast<unsigned>(i));
      fill_pattern<double>(*j2_async.back(), 10u + static_cast<unsigned>(i));
      futures.push_back(Solver(p).submit(
          Workload(stencil::heat2d(0.2), *j2_async.back())));
    }
    // Gs1D3 f32 (mixed dtype).
    {
      const StencilProblem p = ProblemBuilder(Family::kGs1D3)
                                   .extents(50 + 8 * i)
                                   .steps(4)
                                   .dtype(dispatch::DType::kF32)
                                   .build();
      f1_p.push_back(p);
      f1_sync.push_back(std::make_unique<grid::Grid1D<float>>(p.nx));
      f1_async.push_back(std::make_unique<grid::Grid1D<float>>(p.nx));
      fill_pattern<float>(*f1_sync.back(), 20u + static_cast<unsigned>(i));
      fill_pattern<float>(*f1_async.back(), 20u + static_cast<unsigned>(i));
      futures.push_back(Solver(p).submit(
          Workload(stencil::heat1d<float>(0.25), *f1_async.back())));
    }
    // Life (int32).
    {
      const StencilProblem p = ProblemBuilder(Family::kLife)
                                   .extents(20 + 4 * i, 15)
                                   .steps(6)
                                   .build();
      lf_p.push_back(p);
      lf_sync.push_back(
          std::make_unique<grid::Grid2D<std::int32_t>>(p.nx, p.ny));
      lf_async.push_back(
          std::make_unique<grid::Grid2D<std::int32_t>>(p.nx, p.ny));
      std::mt19937 rng(30u + static_cast<unsigned>(i));
      lf_sync.back()->fill(0);
      for (int x = 1; x <= p.nx; ++x)
        for (int y = 1; y <= p.ny; ++y)
          lf_sync.back()->at(x, y) = static_cast<std::int32_t>(rng() & 1u);
      for (int x = 0; x <= p.nx + 1; ++x)
        for (int y = 0; y <= p.ny + 1; ++y)
          lf_async.back()->at(x, y) = lf_sync.back()->at(x, y);
      futures.push_back(Solver(p).submit(
          Workload(stencil::LifeRule{}, *lf_async.back())));
    }
  }

  // LCS payloads, varying lengths.
  std::vector<std::vector<std::int32_t>> seq_a(kPerKind), seq_b(kPerKind);
  std::vector<solver::Future<RunResult>> lcs_futures;
  std::vector<StencilProblem> lcs_p;
  for (int i = 0; i < kPerKind; ++i) {
    std::mt19937 rng(40u + static_cast<unsigned>(i));
    seq_a[static_cast<std::size_t>(i)].resize(
        static_cast<std::size_t>(30 + 11 * i));
    seq_b[static_cast<std::size_t>(i)].resize(
        static_cast<std::size_t>(25 + 7 * i));
    for (auto& v : seq_a[static_cast<std::size_t>(i)])
      v = static_cast<std::int32_t>(rng() % 4);
    for (auto& v : seq_b[static_cast<std::size_t>(i)])
      v = static_cast<std::int32_t>(rng() % 4);
    const StencilProblem p =
        ProblemBuilder(Family::kLcs)
            .extents(30 + 11 * i, 25 + 7 * i)
            .build();
    lcs_p.push_back(p);
    lcs_futures.push_back(Solver(p).submit(Workload(
        seq_a[static_cast<std::size_t>(i)],
        seq_b[static_cast<std::size_t>(i)])));
  }

  // Sync twins run on the caller thread while the pool is busy.
  for (int i = 0; i < kPerKind; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    Solver(j1_p[k]).run(stencil::heat1d(0.25), *j1_sync[k]);
    Solver(j2_p[k]).run(stencil::heat2d(0.2), *j2_sync[k]);
    Solver(f1_p[k]).run(stencil::heat1d<float>(0.25), *f1_sync[k]);
    Solver(lf_p[k]).run(stencil::LifeRule{}, *lf_sync[k]);
  }

  for (solver::Future<RunResult>& f : futures) f.get();
  for (int i = 0; i < kPerKind; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(grid::max_abs_diff(*j1_sync[k], *j1_async[k]), 0.0)
        << "jacobi1d3 instance " << i;
    EXPECT_EQ(grid::max_abs_diff(*j2_sync[k], *j2_async[k]), 0.0)
        << "jacobi2d5 instance " << i;
    EXPECT_EQ(grid::max_abs_diff(*f1_sync[k], *f1_async[k]), 0.0)
        << "gs1d3/f32 instance " << i;
    EXPECT_EQ(grid::max_abs_diff(*lf_sync[k], *lf_async[k]), 0.0)
        << "life instance " << i;
    const RunResult r = lcs_futures[k].get();
    const Solver s(lcs_p[k]);
    EXPECT_EQ(r.lcs_length, s.lcs(seq_a[k], seq_b[k])) << "lcs " << i;
    if (!r.lcs_row.empty()) {
      EXPECT_EQ(r.lcs_row, s.lcs_row(seq_a[k], seq_b[k]));
    }
  }
}

TEST(ServeSubmit, ExceptionArrivesThroughFuture) {
  // validate_workload runs on the submitting thread, so misuse surfaces at
  // the call site rather than inside the future.
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(32).steps(2).build();
  grid::Grid1D<double> wrong(31);
  wrong.fill(1.0);
  EXPECT_THROW(Solver(p).submit(Workload(stencil::heat1d(0.25), wrong)),
               solver::Error);
}

TEST(ServeBatch, AmortizesPlanningAcrossIdenticalSignatures) {
  if (plan_pinned()) GTEST_SKIP() << "TVS_PLAN bypasses the cache";
  solver::plan_cache_clear();
  constexpr int kJobs = 6;
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(96).steps(6).build();
  std::vector<std::unique_ptr<grid::Grid1D<double>>> grids;
  serve::Batch batch;
  for (int i = 0; i < kJobs; ++i) {
    grids.push_back(std::make_unique<grid::Grid1D<double>>(p.nx));
    fill_pattern<double>(*grids.back(), static_cast<unsigned>(i));
    batch.add(p, Workload(stencil::heat1d(0.25), *grids.back()));
  }
  EXPECT_EQ(batch.size(), static_cast<std::size_t>(kJobs));
  const std::vector<RunResult> results = batch.run();
  EXPECT_EQ(batch.size(), 0u);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));

  const solver::PlanCacheStats stats = solver::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1) << "one signature must plan once";
  EXPECT_GE(stats.hits, kJobs - 1);

  // Every instance matches a fresh synchronous run.
  for (int i = 0; i < kJobs; ++i) {
    grid::Grid1D<double> sync(p.nx);
    fill_pattern<double>(sync, static_cast<unsigned>(i));
    Solver(p).run(stencil::heat1d(0.25), sync);
    EXPECT_EQ(grid::max_abs_diff(sync, *grids[static_cast<std::size_t>(i)]),
              0.0)
        << "batch instance " << i;
  }
}

// ---- persistent plan store -------------------------------------------------

TEST(ServePlanStore, RoundTripsTunedPlans) {
  const StoreDir store;
  EXPECT_TRUE(serve::plan_store_enabled());
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();
  const solver::ExecutionPlan tuned = solver::heuristic_plan(p);

  serve::plan_store_save(p, "tuned", tuned);
  const auto loaded = serve::plan_store_lookup(p, "tuned");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_string(), tuned.to_string());

  const serve::PlanStoreStats stats = serve::plan_store_stats();
  EXPECT_EQ(stats.saves, 1);
  EXPECT_EQ(stats.loads, 1);
  EXPECT_EQ(stats.rejects, 0);
}

TEST(ServePlanStore, WarmStartEliminatesReTuning) {
  if (plan_pinned()) GTEST_SKIP() << "TVS_PLAN bypasses planning";
  const StoreDir store;
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();

  // Cold: the tuned-mode miss runs the tuner and saves.
  solver::plan_cache_clear();
  const solver::ExecutionPlan first =
      solver::plan_for(p, solver::PlanMode::kTuned);
  EXPECT_EQ(serve::plan_store_stats().saves, 1);
  EXPECT_EQ(serve::plan_store_stats().loads, 0);

  // Warm (simulates a new process by clearing the in-memory cache): the
  // store supplies the plan, observable as a load — no second tuner run.
  solver::plan_cache_clear();
  const solver::ExecutionPlan second =
      solver::plan_for(p, solver::PlanMode::kTuned);
  EXPECT_EQ(serve::plan_store_stats().loads, 1);
  EXPECT_EQ(serve::plan_store_stats().saves, 1) << "a warm start never saves";
  EXPECT_EQ(second.to_string(), first.to_string());
}

TEST(ServePlanStore, RejectsCorruptedEntry) {
  const StoreDir store;
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();
  serve::plan_store_save(p, "tuned", solver::heuristic_plan(p));
  const std::filesystem::path entry = store.only_entry();
  ASSERT_FALSE(entry.empty());
  {
    std::ofstream out(entry, std::ios::trunc);
    out << "not a plan file\n";
  }
  EXPECT_FALSE(serve::plan_store_lookup(p, "tuned").has_value());
  EXPECT_EQ(serve::plan_store_stats().rejects, 1);
}

TEST(ServePlanStore, RejectsVersionMismatch) {
  const StoreDir store;
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();
  serve::plan_store_save(p, "tuned", solver::heuristic_plan(p));
  const std::filesystem::path entry = store.only_entry();
  ASSERT_FALSE(entry.empty());
  std::string body;
  {
    std::ifstream in(entry);
    body.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(entry, std::ios::trunc);
    out << "tvs-plan-v0\n" << body.substr(body.find('\n') + 1);
  }
  EXPECT_FALSE(serve::plan_store_lookup(p, "tuned").has_value());
  EXPECT_EQ(serve::plan_store_stats().rejects, 1);
}

TEST(ServePlanStore, RejectsFeatureMismatch) {
  const StoreDir store;
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();
  serve::plan_store_save(p, "tuned", solver::heuristic_plan(p));
  const std::filesystem::path entry = store.only_entry();
  ASSERT_FALSE(entry.empty());
  // Rewrite the features line to a CPU this host is not: the entry must be
  // refused even though the plan text itself is fine.
  std::string body;
  {
    std::ifstream in(entry);
    body.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t feat = body.find("features ");
  const std::size_t eol = body.find('\n', feat);
  body.replace(feat, eol - feat, "features some-other-cpu");
  {
    std::ofstream out(entry, std::ios::trunc);
    out << body;
  }
  EXPECT_FALSE(serve::plan_store_lookup(p, "tuned").has_value());
  EXPECT_EQ(serve::plan_store_stats().rejects, 1);
}

TEST(ServePlanStore, DisabledStoreIsInert) {
  serve::plan_store_set_dir("");
  EXPECT_FALSE(serve::plan_store_enabled());
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(4).build();
  serve::plan_store_save(p, "tuned", solver::heuristic_plan(p));
  EXPECT_FALSE(serve::plan_store_lookup(p, "tuned").has_value());
  const serve::PlanStoreStats stats = serve::plan_store_stats();
  EXPECT_EQ(stats.saves, 0);
  EXPECT_EQ(stats.loads, 0);
  EXPECT_EQ(stats.rejects, 0);
}

// ---- stats snapshot --------------------------------------------------------

TEST(ServeStats, SnapshotsAllThreeSources) {
  const serve::Stats s = serve::stats();
  EXPECT_GE(s.executor.workers, 0);
  const std::string text = serve::to_string(s);
  EXPECT_NE(text.find("plan_cache"), std::string::npos);
  EXPECT_NE(text.find("plan_store"), std::string::npos);
  EXPECT_NE(text.find("executor"), std::string::npos);
}

// ---- executor latency / priority -------------------------------------------

TEST(ServeExecutor, IdleSubmitStartsWellUnderFiveMs) {
  using Clock = std::chrono::steady_clock;
  serve::ThreadPool pool(2);
  // Warm-up: the workers must have reached their park loop once.
  {
    std::promise<void> warm;
    pool.submit([&warm] { warm.set_value(); });
    warm.get_future().wait();
  }
  double best_ms = 1e9;
  for (int trial = 0; trial < 10; ++trial) {
    // Long enough that every worker is parked on the condition variable
    // (the executor has no poll loop to catch a submit by accident).
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::promise<Clock::time_point> started;
    auto fut = started.get_future();
    const Clock::time_point t0 = Clock::now();
    pool.submit([&started] { started.set_value(Clock::now()); });
    const Clock::time_point t1 = fut.get();
    best_ms = std::min(
        best_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  // The old executor parked on a 50 ms wait_for poll, so an idle-pool
  // submit could stall a full poll period before starting.  With the
  // queued/parked accounting the submit-side notify wakes a parked worker
  // immediately; even on a loaded CI box the best of ten trials must
  // start well under 5 ms.
  EXPECT_LT(best_ms, 5.0);
}

TEST(ServeExecutor, InteractiveBandDrainsBeforeBatch) {
  serve::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::promise<void> busy;
  pool.submit([&busy, open] {
    busy.set_value();
    open.wait();
  });
  busy.get_future().wait();  // the only worker is now blocked; submits queue

  std::mutex mu;
  std::vector<int> order;
  constexpr int kPerBand = 4;
  for (int i = 0; i < kPerBand; ++i) {
    pool.submit([&mu, &order, i] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(100 + i);  // batch marker
    });
  }
  for (int i = 0; i < kPerBand; ++i) {
    pool.submit(
        [&mu, &order, i] {
          const std::lock_guard<std::mutex> lock(mu);
          order.push_back(i);  // interactive marker
        },
        serve::Band::kInteractive);
  }
  gate.set_value();
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (order.size() == 2u * kPerBand) break;
    }
    std::this_thread::yield();
  }
  // Every interactive task ran before every batch task, although the
  // batch tasks were submitted first.
  for (int k = 0; k < kPerBand; ++k) {
    EXPECT_LT(order[static_cast<std::size_t>(k)], 100)
        << "slot " << k << " should have been interactive";
  }
  const serve::ExecutorStats stats = pool.stats();
  EXPECT_EQ(stats.interactive_submitted, kPerBand);
  EXPECT_EQ(stats.interactive_run, kPerBand);
}

// ---- NUMA topology ---------------------------------------------------------

TEST(ServeTopology, ParsesCpulists) {
  using serve::parse_cpulist;
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("0,2-3,8\n"), (std::vector<int>{0, 2, 3, 8}));
  EXPECT_EQ(parse_cpulist("3,1,1-2"), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("garbage").empty());
}

TEST(ServeTopology, PolicyNamesRoundTrip) {
  using serve::NumaPolicy;
  EXPECT_EQ(serve::numa_policy_from_string("off"), NumaPolicy::kOff);
  EXPECT_EQ(serve::numa_policy_from_string("compact"), NumaPolicy::kCompact);
  EXPECT_EQ(serve::numa_policy_from_string("spread"), NumaPolicy::kSpread);
  // Unset / unknown fall back to the default policy, never to an error.
  EXPECT_EQ(serve::numa_policy_from_string(""), NumaPolicy::kSpread);
  EXPECT_EQ(serve::numa_policy_from_string("bogus"), NumaPolicy::kSpread);
  EXPECT_EQ(serve::numa_policy_name(NumaPolicy::kOff), "off");
  EXPECT_EQ(serve::numa_policy_name(NumaPolicy::kCompact), "compact");
  EXPECT_EQ(serve::numa_policy_name(NumaPolicy::kSpread), "spread");
}

TEST(ServeTopology, FakeSysfsPlacementAndFallback) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "tvs_fake_numa";
  fs::remove_all(root);
  fs::create_directories(root / "node0");
  fs::create_directories(root / "node1");
  {
    std::ofstream(root / "node0" / "cpulist") << "0-1\n";
    std::ofstream(root / "node1" / "cpulist") << "2-3\n";
  }

  const serve::Topology spread =
      serve::Topology::from_sysfs(root.string(), serve::NumaPolicy::kSpread);
  EXPECT_EQ(spread.nodes(), 2);
  EXPECT_TRUE(spread.active());
  EXPECT_EQ(spread.cpus[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(spread.cpus[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(spread.node_of_worker(0), 0);  // round-robin across nodes
  EXPECT_EQ(spread.node_of_worker(1), 1);
  EXPECT_EQ(spread.node_of_worker(2), 0);

  const serve::Topology compact =
      serve::Topology::from_sysfs(root.string(), serve::NumaPolicy::kCompact);
  EXPECT_EQ(compact.node_of_worker(0), 0);  // fill node 0 first
  EXPECT_EQ(compact.node_of_worker(1), 0);
  EXPECT_EQ(compact.node_of_worker(2), 1);
  EXPECT_EQ(compact.node_of_worker(3), 1);
  EXPECT_EQ(compact.node_of_worker(4), 0);  // oversubscription wraps

  const serve::Topology off =
      serve::Topology::from_sysfs(root.string(), serve::NumaPolicy::kOff);
  EXPECT_FALSE(off.active());
  EXPECT_EQ(off.node_of_worker(1), 0);
  EXPECT_TRUE(off.pin_current_thread(0)) << "inactive pinning is a no-op";

  // Missing sysfs root: one fallback node holding every host CPU, never
  // an error (this is the non-Linux / container degradation path).
  const serve::Topology missing = serve::Topology::from_sysfs(
      (root / "does_not_exist").string(), serve::NumaPolicy::kSpread);
  EXPECT_EQ(missing.nodes(), 1);
  EXPECT_FALSE(missing.active());
  EXPECT_GE(missing.cpus[0].size(), 1u);
  fs::remove_all(root);
}

// ---- decomposed tiled runs vs sync -----------------------------------------

// Runs one problem sync and async (through submit, where a tiled plan is
// decomposed into per-tile pool tasks) and requires bit-identical grids.
template <class T, class C, class G>
void expect_decomposed_identical(const StencilProblem& p, const C& coeffs,
                                 unsigned salt) {
  const Solver s(p);
  ASSERT_EQ(s.plan().path, solver::Path::kTiledParallel)
      << p.signature() << " did not plan the tiled path";
  const auto make = [&p] {
    if constexpr (requires { G(p.nx, p.ny, p.nz); }) {
      return G(p.nx, p.ny, p.nz);
    } else if constexpr (requires { G(p.nx, p.ny); }) {
      return G(p.nx, p.ny);
    } else {
      return G(p.nx);
    }
  };
  G sync_g = make(), async_g = make();
  fill_pattern<T>(sync_g, salt);
  fill_pattern<T>(async_g, salt);
  s.run(Workload(coeffs, sync_g));
  s.submit(Workload(coeffs, async_g)).get();
  EXPECT_EQ(grid::max_abs_diff(sync_g, async_g), 0.0) << p.signature();
}

TEST(ServeDecompose, TiledFamiliesBitIdenticalToSync) {
  if (plan_pinned()) GTEST_SKIP() << "TVS_PLAN may pin a non-tiled path";
  const serve::SchedStats before = serve::sched_stats();

  // threads > 1 routes every double/int32 family onto the tiled path.
  constexpr int kThreads = 4;
  {
    const StencilProblem p = ProblemBuilder(Family::kJacobi1D3)
                                 .extents(4096)
                                 .steps(24)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C1D3, grid::Grid1D<double>>(
        p, stencil::heat1d(0.25), 1);
  }
  {
    const StencilProblem p = ProblemBuilder(Family::kGs1D3)
                                 .extents(4096)
                                 .steps(24)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C1D3, grid::Grid1D<double>>(
        p, stencil::heat1d(0.25), 2);
  }
  {
    const StencilProblem p = ProblemBuilder(Family::kJacobi2D5)
                                 .extents(96, 80)
                                 .steps(16)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C2D5, grid::Grid2D<double>>(
        p, stencil::heat2d(0.2), 3);
  }
  {
    const StencilProblem p = ProblemBuilder(Family::kJacobi2D9)
                                 .extents(96, 80)
                                 .steps(16)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C2D9, grid::Grid2D<double>>(
        p, stencil::box2d9(0.05), 4);
  }
  {
    const StencilProblem p = ProblemBuilder(Family::kGs2D5)
                                 .extents(96, 80)
                                 .steps(12)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C2D5, grid::Grid2D<double>>(
        p, stencil::heat2d(0.2), 5);
  }
  {
    const StencilProblem p = ProblemBuilder(Family::kJacobi3D7)
                                 .extents(24, 20, 28)
                                 .steps(8)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C3D7, grid::Grid3D<double>>(
        p, stencil::heat3d(0.1), 6);
  }
  {
    const StencilProblem p = ProblemBuilder(Family::kGs3D7)
                                 .extents(24, 20, 28)
                                 .steps(8)
                                 .threads(kThreads)
                                 .build();
    expect_decomposed_identical<double, stencil::C3D7, grid::Grid3D<double>>(
        p, stencil::heat3d(0.1), 7);
  }
  {
    // Life: int32 grid, deterministic soup.
    const StencilProblem p = ProblemBuilder(Family::kLife)
                                 .extents(64, 72)
                                 .steps(16)
                                 .threads(kThreads)
                                 .build();
    const Solver s(p);
    ASSERT_EQ(s.plan().path, solver::Path::kTiledParallel);
    grid::Grid2D<std::int32_t> sync_g(p.nx, p.ny), async_g(p.nx, p.ny);
    std::mt19937 rng(99);
    sync_g.fill(0);
    for (int x = 1; x <= p.nx; ++x)
      for (int y = 1; y <= p.ny; ++y)
        sync_g.at(x, y) = static_cast<std::int32_t>(rng() & 1u);
    for (int x = 0; x <= p.nx + 1; ++x)
      for (int y = 0; y <= p.ny + 1; ++y) async_g.at(x, y) = sync_g.at(x, y);
    s.run(Workload(stencil::LifeRule{}, sync_g));
    s.submit(Workload(stencil::LifeRule{}, async_g)).get();
    EXPECT_EQ(grid::max_abs_diff(sync_g, async_g), 0.0);
  }
  {
    // LCS wavefront: the answer must match the sync tiled run exactly.
    std::mt19937 rng(17);
    std::vector<std::int32_t> a(3000), b(2500);
    for (auto& v : a) v = static_cast<std::int32_t>(rng() % 4);
    for (auto& v : b) v = static_cast<std::int32_t>(rng() % 4);
    const StencilProblem p = ProblemBuilder(Family::kLcs)
                                 .extents(3000, 2500)
                                 .threads(kThreads)
                                 .build();
    const Solver s(p);
    ASSERT_EQ(s.plan().path, solver::Path::kTiledParallel);
    const RunResult sync_r = s.run(Workload(a, b));
    const RunResult async_r = s.submit(Workload(a, b)).get();
    EXPECT_EQ(async_r.lcs_length, sync_r.lcs_length);
  }

  if (serve::decompose_enabled()) {
    const serve::SchedStats after = serve::sched_stats();
    EXPECT_GT(after.decomposed_runs, before.decomposed_runs)
        << "submit() should have decomposed the tiled plans";
    EXPECT_GT(after.tile_tasks, before.tile_tasks);
    EXPECT_GT(after.stages, before.stages);
  }
}

// ---- Workload ownership ----------------------------------------------------

TEST(ServeWorkload, OwningGridWorkloadSurvivesFireAndForget) {
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi2D5).extents(40, 24).steps(7).build();
  const stencil::C2D5 c = stencil::heat2d(0.2);

  grid::Grid2D<double> sync_g(p.nx, p.ny);
  fill_pattern<double>(sync_g, 8);
  Solver(p).run(c, sync_g);

  auto owned = std::make_shared<grid::Grid2D<double>>(p.nx, p.ny);
  fill_pattern<double>(*owned, 8);
  Workload w(c, owned);
  EXPECT_TRUE(w.owns());
  // The local shared_ptr copy is the ONLY caller-side reference kept; the
  // workload co-owns the grid, so the future is safe even if the caller
  // dropped theirs.
  Solver(p).submit(std::move(w)).get();
  EXPECT_EQ(grid::max_abs_diff(sync_g, *owned), 0.0);

  // A null shared_ptr is rejected at validation, not dereferenced.
  std::shared_ptr<grid::Grid2D<double>> null;
  try {
    Solver(p).run(Workload(c, null));
    FAIL() << "a null owning grid must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadWorkload);
  }
}

TEST(ServeWorkload, OwningLcsMovesSequencesAndLvaluesStayNonOwning) {
  std::mt19937 rng(7);
  std::vector<std::int32_t> a(300), b(260);
  for (auto& v : a) v = static_cast<std::int32_t>(rng() % 4);
  for (auto& v : b) v = static_cast<std::int32_t>(rng() % 4);
  const StencilProblem p = ProblemBuilder(Family::kLcs)
                               .extents(static_cast<int>(a.size()),
                                        static_cast<int>(b.size()))
                               .build();
  const Solver s(p);
  const std::int32_t expect = s.lcs(a, b);

  // Lvalue vectors bind the span constructor: non-owning, no copy.
  const Workload borrowed(a, b);
  EXPECT_FALSE(borrowed.owns());

  // Rvalue vectors transfer their storage into the workload; the caller's
  // vectors are moved-from, and the future needs no outside lifetime.
  std::vector<std::int32_t> ma = a, mb = b;
  Workload owned(std::move(ma), std::move(mb));
  EXPECT_TRUE(owned.owns());
  const RunResult r = s.submit(std::move(owned)).get();
  EXPECT_EQ(r.lcs_length, expect);
}

TEST(ServeWorkload, PriorityAndDeadlineHintsStick) {
  grid::Grid1D<double> u(16);
  u.fill(1.0);
  const Workload plain(stencil::heat1d(0.25), u);
  EXPECT_EQ(plain.priority(), solver::Priority::kBatch);
  EXPECT_EQ(plain.deadline_micros(), 0);
  const Workload urgent = Workload(stencil::heat1d(0.25), u)
                              .priority(solver::Priority::kInteractive)
                              .deadline_micros(500);
  EXPECT_EQ(urgent.priority(), solver::Priority::kInteractive);
  EXPECT_EQ(urgent.deadline_micros(), 500);

  // The hints route through submit: an interactive workload lands in the
  // interactive band (observable in the default pool's counters).
  const StencilProblem p =
      ProblemBuilder(Family::kJacobi1D3).extents(64).steps(3).build();
  const long before = serve::default_pool().stats().interactive_submitted;
  grid::Grid1D<double> g(p.nx);
  fill_pattern<double>(g, 3);
  Solver(p)
      .submit(Workload(stencil::heat1d(0.25), g)
                  .priority(solver::Priority::kInteractive))
      .get();
  EXPECT_GT(serve::default_pool().stats().interactive_submitted, before);
}

// ---- error taxonomy / ProblemBuilder ---------------------------------------

TEST(ServeErrors, TaxonomyCarriesCodesAndStaysInvalidArgument) {
  try {
    solver::parse_family("bogus");
    FAIL() << "unknown family must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadFamily);
    EXPECT_TRUE(e.problem_signature().empty());
  }
  // Every Error is still an std::invalid_argument (compat contract).
  EXPECT_THROW(solver::parse_family("bogus"), std::invalid_argument);
  EXPECT_THROW(
      solver::apply_plan_spec(solver::ExecutionPlan{}, "stride=banana"),
      solver::Error);
  try {
    solver::apply_plan_spec(solver::ExecutionPlan{}, "nope=1");
    FAIL() << "unknown clause must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadPlanSpec);
  }
  EXPECT_EQ(solver::errc_name(solver::Errc::kBadWorkload), "bad-workload");
  EXPECT_EQ(solver::errc_name(solver::Errc::kBackendUnavailable),
            "backend-unavailable");
}

TEST(ServeErrors, BuilderValidatesAtBuildTime) {
  // Arity must match the family's dimensionality.
  try {
    (void)ProblemBuilder(Family::kJacobi2D5).extents(8).steps(1).build();
    FAIL() << "2D family with one extent must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadExtents);
  }
  // Extents must be positive.
  try {
    (void)ProblemBuilder(Family::kJacobi1D3).extents(0).build();
    FAIL() << "zero extent must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadExtents);
  }
  // steps and threads must be non-negative.
  try {
    (void)ProblemBuilder(Family::kJacobi1D3).extents(8).steps(-1).build();
    FAIL() << "negative steps must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadSteps);
  }
  try {
    (void)ProblemBuilder(Family::kJacobi1D3).extents(8).threads(-2).build();
    FAIL() << "negative threads must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kBadThreads);
  }
  // Element type must be one the family supports.
  try {
    (void)ProblemBuilder(Family::kJacobi1D3)
        .extents(8)
        .dtype(dispatch::DType::kI32)
        .build();
    FAIL() << "int32 Jacobi must throw";
  } catch (const solver::Error& e) {
    EXPECT_EQ(e.code(), solver::Errc::kUnsupportedDtype);
  }
  // A valid chain emits the same descriptor as the positional helper.
  const StencilProblem built = ProblemBuilder(Family::kGs2D5)
                                   .extents(32, 24)
                                   .steps(5)
                                   .threads(2)
                                   .build();
  const StencilProblem legacy =
      solver::problem_2d(Family::kGs2D5, 32, 24, 5, 2);
  EXPECT_EQ(built.signature(), legacy.signature());
}

}  // namespace
}  // namespace tvs
