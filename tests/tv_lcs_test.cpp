// Property tests for the temporally vectorized LCS kernel: the final DP row
// must equal the scalar oracle cell for cell (integer arithmetic — exact).
#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

#include "simd/vec.hpp"
#include "stencil/lcs_ref.hpp"
#include "tv/tv_lcs.hpp"
#include "tv/tv_lcs_impl.hpp"

namespace {

using namespace tvs;

std::vector<std::int32_t> random_seq(int n, int alphabet, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> d(0, alphabet - 1);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = d(rng);
  return v;
}

using P = std::tuple<int, int, int>;  // na, nb, alphabet
class TvLcsSweep : public ::testing::TestWithParam<P> {};

TEST_P(TvLcsSweep, FinalRowMatchesOracle) {
  const auto [na, nb, alpha] = GetParam();
  const auto a = random_seq(na, alpha, 1000u + static_cast<unsigned>(na));
  const auto b = random_seq(nb, alpha, 2000u + static_cast<unsigned>(nb));
  const auto ref = stencil::lcs_ref_row(a, b);
  const auto got = tv::tv_lcs_row(a, b);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i], got[i]) << "col " << i << " na=" << na << " nb=" << nb;
}

TEST_P(TvLcsSweep, ScalarBackendMatchesOracle) {
  const auto [na, nb, alpha] = GetParam();
  const auto a = random_seq(na, alpha, 3000u + static_cast<unsigned>(na));
  const auto b = random_seq(nb, alpha, 4000u + static_cast<unsigned>(nb));
  const auto ref = stencil::lcs_ref_row(a, b);
  std::vector<std::int32_t> row(b.size() + 1 + tv::kLcsRowPad, 0);
  if (!b.empty())
    tv::tv_lcs_rows_impl<simd::ScalarVec<std::int32_t, 8>>(a, b, row.data());
  for (std::size_t i = 0; i <= b.size(); ++i)
    ASSERT_EQ(ref[i], row[i]) << "col " << i << " na=" << na << " nb=" << nb;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TvLcsSweep,
    ::testing::Combine(
        // na: crossing the 8-row tile boundary; nb: crossing nb >= 9
        ::testing::Values(1, 3, 7, 8, 9, 16, 17, 33, 100),
        ::testing::Values(1, 4, 8, 9, 10, 17, 40, 129), ::testing::Values(2, 4)),
    [](const auto& info) {
      return "na" + std::to_string(std::get<0>(info.param)) + "_nb" +
             std::to_string(std::get<1>(info.param)) + "_a" +
             std::to_string(std::get<2>(info.param));
    });

TEST(TvLcs, KnownCases) {
  const std::vector<std::int32_t> a{1, 2, 3, 4, 1};
  const std::vector<std::int32_t> b{3, 4, 1, 2, 1, 3};
  EXPECT_EQ(tv::tv_lcs(a, b), 3);
  EXPECT_EQ(tv::tv_lcs(a, a), 5);
  EXPECT_EQ(tv::tv_lcs(a, std::vector<std::int32_t>{}), 0);
  EXPECT_EQ(tv::tv_lcs(std::vector<std::int32_t>{}, b), 0);
}

TEST(TvLcs, IdenticalSequences) {
  const auto a = random_seq(200, 4, 7);
  EXPECT_EQ(tv::tv_lcs(a, a), 200);
}

TEST(TvLcs, DisjointAlphabets) {
  std::vector<std::int32_t> a(50, 1), b(70, 2);
  EXPECT_EQ(tv::tv_lcs(a, b), 0);
}

TEST(TvLcs, SubsequenceEmbedding) {
  // b = a with junk interleaved -> lcs == |a|.
  const auto a = random_seq(64, 3, 11);
  std::vector<std::int32_t> b;
  for (const auto v : a) {
    b.push_back(9);
    b.push_back(v);
    b.push_back(8);
  }
  EXPECT_EQ(tv::tv_lcs(a, b), 64);
}

TEST(TvLcs, LargeRandomMatchesOracleLength) {
  const auto a = random_seq(1000, 4, 21);
  const auto b = random_seq(1500, 4, 22);
  EXPECT_EQ(tv::tv_lcs(a, b), stencil::lcs_ref(a, b));
}

}  // namespace
