// Parallelogram-tiled, wavefront-parallel Gauss-Seidel must match the
// in-place scalar sweeps exactly, across tile geometries and thread counts.
#include <gtest/gtest.h>

#include "util/omp_compat.hpp"

#include <random>
#include <tuple>

#include "stencil/reference1d.hpp"
#include "tiling/parallelogram.hpp"

namespace {

using namespace tvs;
using Grid = grid::Grid1D<double>;

Grid make_random(int nx, unsigned seed) {
  std::mt19937_64 rng(seed);
  Grid g(nx);
  g.fill_random(rng, -1.0, 1.0);
  return g;
}

void copy(const Grid& src, Grid& dst) {
  for (int x = -2; x <= src.nx() + 3; ++x) dst.at(x) = src.at(x);
}

// (nx, sweeps, width, height, stride)
using P = std::tuple<int, long, int, int, int>;
class ParaGs1dSweep : public ::testing::TestWithParam<P> {};

TEST_P(ParaGs1dSweep, MatchesOracleExactly) {
  const auto [nx, sweeps, w, h, s] = GetParam();
  const stencil::C1D3 c{0.33, 0.37, 0.3};
  Grid ref = make_random(nx, 700u + static_cast<unsigned>(nx)), got(nx);
  copy(ref, got);
  stencil::gs1d3_run(c, ref, sweeps);
  tiling::Parallelogram1DOptions opt;
  opt.width = w;
  opt.height = h;
  opt.stride = s;
  tiling::parallelogram_gs1d3_run(c, got, sweeps, opt);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0)
      << "nx=" << nx << " sweeps=" << sweeps << " W=" << w << " H=" << h
      << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ParaGs1dSweep,
    ::testing::Values(
        // tiny tiles (scalar-fallback path), skew crossing both edges
        P{64, 8, 16, 4, 2}, P{100, 16, 16, 8, 2}, P{128, 12, 32, 4, 3},
        // regular tiles
        P{512, 32, 64, 16, 3}, P{777, 40, 64, 16, 3}, P{1000, 64, 128, 32, 7},
        // sweeps off the 4-step and band grids
        P{512, 33, 64, 16, 3}, P{512, 30, 64, 16, 2}, P{512, 3, 64, 16, 3},
        P{400, 1, 64, 16, 3}, P{333, 21, 48, 12, 2},
        // domain smaller than a tile; very tall bands
        P{90, 24, 2048, 64, 3}, P{2048, 128, 256, 128, 3},
        P{1500, 100, 200, 60, 5}),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_W" +
             std::to_string(std::get<2>(info.param)) + "_H" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param));
    });

TEST(ParaGs1d, MultiThreadedMatchesOracle) {
  const stencil::C1D3 c = stencil::heat1d(0.25);
  const int nx = 1 << 15;
  Grid ref = make_random(nx, 177), got(nx);
  copy(ref, got);
  stencil::gs1d3_run(c, ref, 96);
  tiling::Parallelogram1DOptions opt;
  opt.width = 512;
  opt.height = 16;
  const int saved = omp_get_max_threads();
  omp_set_num_threads(8);
  tiling::parallelogram_gs1d3_run(c, got, 96, opt);
  omp_set_num_threads(saved);
  EXPECT_EQ(grid::max_abs_diff(ref, got), 0.0);
}

TEST(ParaGs1d, BoundaryDrivenConvergence) {
  const stencil::C1D3 c = stencil::heat1d(0.25);
  Grid u(31);
  u.fill(0.0);
  u.at(0) = 1.0;
  tiling::Parallelogram1DOptions opt;
  opt.width = 32;
  opt.height = 8;
  tiling::parallelogram_gs1d3_run(c, u, 30000, opt);
  for (int x = 1; x <= 31; ++x) {
    const double exact = 1.0 - static_cast<double>(x) / 32.0;
    EXPECT_NEAR(u.at(x), exact, 1e-6) << "x=" << x;
  }
}

}  // namespace
