// Unit tests for the SIMD substrate: every operation on the intrinsic
// backends (when compiled in) is checked lane for lane against the scalar
// backend, which is itself checked against hand-computed expectations.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>

#include "simd/reorg.hpp"
#include "simd/vec.hpp"

namespace {

using tvs::simd::ScalarVec;

template <class V, class T, int N>
std::array<T, N> to_array(V v) {
  std::array<T, N> r;
  for (int i = 0; i < N; ++i) r[static_cast<std::size_t>(i)] = v[i];
  return r;
}

// ---- typed test over the double x 4 implementations ----------------------

template <class V>
class VecD4Like : public ::testing::Test {};

using D4Types = ::testing::Types<
#if defined(__AVX2__)
    tvs::simd::VecD4,
#endif
    ScalarVec<double, 4>>;
TYPED_TEST_SUITE(VecD4Like, D4Types);

TYPED_TEST(VecD4Like, LoadStoreRoundTrip) {
  using V = TypeParam;
  alignas(64) double src[4] = {1.5, -2.0, 3.25, 4.75};
  alignas(64) double dst[4] = {};
  V::load(src).store(dst);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(src[i], dst[i]);
}

TYPED_TEST(VecD4Like, UnalignedLoadStore) {
  using V = TypeParam;
  double src[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  double dst[8] = {};
  V::loadu(src + 1).storeu(dst + 3);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[3 + i], src[1 + i]);
}

TYPED_TEST(VecD4Like, Set1AndIndex) {
  using V = TypeParam;
  const V v = V::set1(2.5);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 2.5);
  EXPECT_EQ(V::zero()[2], 0.0);
}

TYPED_TEST(VecD4Like, ExtractInsert) {
  using V = TypeParam;
  alignas(64) double src[4] = {10, 11, 12, 13};
  V v = V::load(src);
  EXPECT_EQ(v.template extract<0>(), 10);
  EXPECT_EQ(v.template extract<1>(), 11);
  EXPECT_EQ(v.template extract<2>(), 12);
  EXPECT_EQ(v.template extract<3>(), 13);
  v = v.template insert<2>(99);
  EXPECT_EQ(v[2], 99);
  EXPECT_EQ(v[1], 11);
  EXPECT_EQ(tvs::simd::top_lane(v), 13);
}

TYPED_TEST(VecD4Like, Arithmetic) {
  using V = TypeParam;
  alignas(64) double a[4] = {1, 2, 3, 4};
  alignas(64) double b[4] = {5, 6, 7, 8};
  const V va = V::load(a), vb = V::load(b);
  const V sum = va + vb, dif = vb - va, prd = va * vb;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sum[i], a[i] + b[i]);
    EXPECT_EQ(dif[i], b[i] - a[i]);
    EXPECT_EQ(prd[i], a[i] * b[i]);
  }
}

TYPED_TEST(VecD4Like, FmaMatchesStdFma) {
  using V = TypeParam;
  alignas(64) double a[4] = {1.1, 2.2, 3.3, 4.4};
  alignas(64) double b[4] = {5.5, 6.6, 7.7, 8.8};
  alignas(64) double c[4] = {9.9, 0.1, -0.2, 0.3};
  const V r = fma(V::load(a), V::load(b), V::load(c));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], std::fma(a[i], b[i], c[i]));
}

TYPED_TEST(VecD4Like, MinMax) {
  using V = TypeParam;
  alignas(64) double a[4] = {1, 9, -3, 4};
  alignas(64) double b[4] = {2, 8, -4, 4};
  const V mn = min(V::load(a), V::load(b));
  const V mx = max(V::load(a), V::load(b));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mn[i], std::min(a[i], b[i]));
    EXPECT_EQ(mx[i], std::max(a[i], b[i]));
  }
}

TYPED_TEST(VecD4Like, CmpeqBlendv) {
  using V = TypeParam;
  alignas(64) double a[4] = {1, 2, 3, 4};
  alignas(64) double b[4] = {1, 5, 3, 7};
  alignas(64) double x[4] = {10, 20, 30, 40};
  alignas(64) double y[4] = {-1, -2, -3, -4};
  const V mask = cmpeq(V::load(a), V::load(b));
  const V r = blendv(V::load(x), V::load(y), mask);
  EXPECT_EQ(r[0], -1);  // equal -> y
  EXPECT_EQ(r[1], 20);  // not   -> x
  EXPECT_EQ(r[2], -3);
  EXPECT_EQ(r[3], 40);
}

TYPED_TEST(VecD4Like, Rotations) {
  using V = TypeParam;
  alignas(64) double a[4] = {0, 1, 2, 3};
  const V up = rotate_up(V::load(a));
  const V dn = rotate_down(V::load(a));
  const double eup[4] = {3, 0, 1, 2};
  const double edn[4] = {1, 2, 3, 0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(up[i], eup[i]);
    EXPECT_EQ(dn[i], edn[i]);
  }
}

TYPED_TEST(VecD4Like, ShiftInLow) {
  using V = TypeParam;
  alignas(64) double a[4] = {0, 1, 2, 3};
  const V r = shift_in_low(V::load(a), 42.0);
  EXPECT_EQ(r[0], 42.0);
  EXPECT_EQ(r[1], 0);
  EXPECT_EQ(r[2], 1);
  EXPECT_EQ(r[3], 2);  // old top lane (3) is discarded
  const V rv = tvs::simd::shift_in_low_v(V::load(a), V::set1(42.0));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rv[i], r[i]);
}

TYPED_TEST(VecD4Like, CollectTops) {
  using V = TypeParam;
  alignas(64) double a[4] = {0, 0, 0, 10};
  alignas(64) double b[4] = {0, 0, 0, 11};
  alignas(64) double c[4] = {0, 0, 0, 12};
  alignas(64) double d[4] = {0, 0, 0, 13};
  const V t =
      tvs::simd::collect_tops(V::load(a), V::load(b), V::load(c), V::load(d));
  EXPECT_EQ(t[0], 10);
  EXPECT_EQ(t[1], 11);
  EXPECT_EQ(t[2], 12);
  EXPECT_EQ(t[3], 13);
}

// ---- typed test over the int32 x 8 implementations ------------------------

template <class V>
class VecI8Like : public ::testing::Test {};

using I8Types = ::testing::Types<
#if defined(__AVX2__)
    tvs::simd::VecI8,
#endif
    ScalarVec<std::int32_t, 8>>;
TYPED_TEST_SUITE(VecI8Like, I8Types);

TYPED_TEST(VecI8Like, LoadStoreArithmetic) {
  using V = TypeParam;
  alignas(64) std::int32_t a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  alignas(64) std::int32_t b[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  const V s = V::load(a) + V::load(b);
  const V d = V::load(a) - V::load(b);
  const V p = V::load(a) * V::load(b);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(s[i], a[i] + b[i]);
    EXPECT_EQ(d[i], a[i] - b[i]);
    EXPECT_EQ(p[i], a[i] * b[i]);
  }
}

TYPED_TEST(VecI8Like, MinMaxCmpBlend) {
  using V = TypeParam;
  alignas(64) std::int32_t a[8] = {1, 5, 3, 9, -2, 0, 7, 7};
  alignas(64) std::int32_t b[8] = {2, 5, 1, 8, -3, 0, 9, 7};
  const V mn = min(V::load(a), V::load(b));
  const V mx = max(V::load(a), V::load(b));
  const V eq = cmpeq(V::load(a), V::load(b));
  const V bl = blendv(V::set1(100), V::set1(-100), eq);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mn[i], std::min(a[i], b[i]));
    EXPECT_EQ(mx[i], std::max(a[i], b[i]));
    EXPECT_EQ(bl[i], a[i] == b[i] ? -100 : 100);
  }
}

TYPED_TEST(VecI8Like, RotationsAndShift) {
  using V = TypeParam;
  alignas(64) std::int32_t a[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const V up = rotate_up(V::load(a));
  const V dn = rotate_down(V::load(a));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(up[i], a[(i + 7) % 8]);
    EXPECT_EQ(dn[i], a[(i + 1) % 8]);
  }
  const V sh = shift_in_low(V::load(a), 42);
  EXPECT_EQ(sh[0], 42);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(sh[i], a[i - 1]);
  EXPECT_EQ(tvs::simd::top_lane(V::load(a)), 7);
}

TYPED_TEST(VecI8Like, ExtractInsert) {
  using V = TypeParam;
  alignas(64) std::int32_t a[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  V v = V::load(a);
  EXPECT_EQ(v.template extract<5>(), 5);
  v = v.template insert<5>(55);
  EXPECT_EQ(v[5], 55);
  EXPECT_EQ(v[4], 4);
}

TYPED_TEST(VecI8Like, CollectTops8) {
  using V = TypeParam;
  std::array<V, 8> ws;
  for (int j = 0; j < 8; ++j) {
    alignas(64) std::int32_t tmp[8] = {};
    tmp[7] = 100 + j;
    ws[static_cast<std::size_t>(j)] = V::load(tmp);
  }
  const V t = tvs::simd::collect_tops(ws[0], ws[1], ws[2], ws[3], ws[4], ws[5],
                                      ws[6], ws[7]);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(t[i], 100 + i);
}

#if defined(__AVX2__)
// Randomized cross-check: intrinsic backends behave exactly like the scalar
// model on every operation.
TEST(SimdCrossCheck, D4RandomOps) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(-10, 10);
  for (int it = 0; it < 500; ++it) {
    alignas(64) double a[4], b[4], c[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = d(rng);
      b[i] = d(rng);
      c[i] = d(rng);
    }
    using I = tvs::simd::VecD4;
    using S = ScalarVec<double, 4>;
    const auto ia = I::load(a), ib = I::load(b), ic = I::load(c);
    const auto sa = S::load(a), sb = S::load(b), sc = S::load(c);
    const auto chk = [](auto vi, auto vs) {
      for (int i = 0; i < 4; ++i) ASSERT_EQ(vi[i], vs[i]);
    };
    chk(ia + ib, sa + sb);
    chk(ia - ib, sa - sb);
    chk(ia * ib, sa * sb);
    chk(fma(ia, ib, ic), fma(sa, sb, sc));
    chk(min(ia, ib), min(sa, sb));
    chk(max(ia, ib), max(sa, sb));
    chk(rotate_up(ia), rotate_up(sa));
    chk(rotate_down(ia), rotate_down(sa));
    chk(shift_in_low(ia, c[0]), shift_in_low(sa, c[0]));
    chk(blendv(ia, ib, cmpeq(ia, ic)), blendv(sa, sb, cmpeq(sa, sc)));
    chk(tvs::simd::collect_tops(ia, ib, ic, ia),
        tvs::simd::collect_tops(sa, sb, sc, sa));
  }
}

TEST(SimdCrossCheck, I8RandomOps) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::int32_t> d(-1000, 1000);
  for (int it = 0; it < 500; ++it) {
    alignas(64) std::int32_t a[8], b[8];
    for (int i = 0; i < 8; ++i) {
      a[i] = d(rng);
      b[i] = d(rng);
    }
    using I = tvs::simd::VecI8;
    using S = ScalarVec<std::int32_t, 8>;
    const auto ia = I::load(a), ib = I::load(b);
    const auto sa = S::load(a), sb = S::load(b);
    const auto chk = [](auto vi, auto vs) {
      for (int i = 0; i < 8; ++i) ASSERT_EQ(vi[i], vs[i]);
    };
    chk(ia + ib, sa + sb);
    chk(ia * ib, sa * sb);
    chk(min(ia, ib), min(sa, sb));
    chk(max(ia, ib), max(sa, sb));
    chk(rotate_up(ia), rotate_up(sa));
    chk(rotate_down(ia), rotate_down(sa));
    chk(shift_in_low(ia, b[0]), shift_in_low(sa, b[0]));
    chk(blendv(ia, ib, cmpeq(ia, ib)), blendv(sa, sb, cmpeq(sa, sb)));
  }
}

// Float x 8: the AVX2 single-precision type against the scalar model, ops
// + the Algorithm-3 reorganization helpers (collect_tops unpack tree,
// shift_in_low_v) — the building blocks of every f32 temporal engine.
TEST(SimdCrossCheck, F8RandomOps) {
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<float> d(-10.0f, 10.0f);
  for (int it = 0; it < 500; ++it) {
    alignas(64) float a[8], b[8], c[8];
    for (int i = 0; i < 8; ++i) {
      a[i] = d(rng);
      b[i] = d(rng);
      c[i] = d(rng);
    }
    a[it % 8] = b[it % 8];  // exercise both cmpeq arms
    using I = tvs::simd::VecF8;
    using S = ScalarVec<float, 8>;
    const auto ia = I::load(a), ib = I::load(b), ic = I::load(c);
    const auto sa = S::load(a), sb = S::load(b), sc = S::load(c);
    const auto chk = [](auto vi, auto vs) {
      for (int i = 0; i < 8; ++i) ASSERT_EQ(vi[i], vs[i]);
    };
    chk(ia + ib, sa + sb);
    chk(ia - ib, sa - sb);
    chk(ia * ib, sa * sb);
    chk(fma(ia, ib, ic), fma(sa, sb, sc));
    chk(min(ia, ib), min(sa, sb));
    chk(max(ia, ib), max(sa, sb));
    chk(rotate_up(ia), rotate_up(sa));
    chk(rotate_down(ia), rotate_down(sa));
    chk(shift_in_low(ia, c[0]), shift_in_low(sa, c[0]));
    chk(tvs::simd::shift_in_low_v(ia, ic), tvs::simd::shift_in_low_v(sa, sc));
    chk(blendv(ia, ib, cmpeq(ia, ib)), blendv(sa, sb, cmpeq(sa, sb)));
    ASSERT_EQ(ia.extract<5>(), a[5]);
    chk(ia.insert<6>(42.0f), sa.insert<6>(42.0f));
    ASSERT_EQ(tvs::simd::top_lane(ia), a[7]);
  }
}

TEST(SimdCrossCheck, F8CollectTops) {
  using I = tvs::simd::VecF8;
  I ws[8];
  for (int j = 0; j < 8; ++j) {
    alignas(32) float tmp[8] = {};
    tmp[7] = 100.0f + static_cast<float>(j);
    ws[j] = I::load(tmp);
  }
  const I t = tvs::simd::collect_tops_arr(ws);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(t[i], 100.0f + static_cast<float>(i));
}
#endif

}  // namespace
