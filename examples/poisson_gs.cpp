// Gauss-Seidel relaxation of a steady-state heat problem (Laplace equation
// with fixed boundary temperatures) through the Solver facade — the
// paper's headline "first vectorized Gauss-Seidel".  Compares
// time-to-tolerance with the scalar sweeps.
//
//   $ ./poisson_gs [N]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "solver/builder.hpp"
#include "solver/solver.hpp"
#include "stencil/reference2d.hpp"

int main(int argc, char** argv) {
  using namespace tvs;
  const int n = argc > 1 ? std::atoi(argv[1]) : 255;
  // Jacobi-weighted Gauss-Seidel update for the Laplace equation.
  const stencil::C2D5 c{0.0, 0.25, 0.25, 0.25, 0.25};

  const auto setup = [&](grid::Grid2D<double>& u) {
    u.fill(0.0);
    for (int y = 0; y <= n + 1; ++y) u.at(0, y) = 1.0;  // hot top edge
  };
  const auto residual = [&](grid::Grid2D<double>& u) {
    double r = 0;
    for (int x = 1; x <= n; ++x)
      for (int y = 1; y <= n; ++y)
        r = std::max(r, std::abs(0.25 * (u.at(x - 1, y) + u.at(x + 1, y) +
                                         u.at(x, y - 1) + u.at(x, y + 1)) -
                                 u.at(x, y)));
    return r;
  };

  grid::Grid2D<double> u(n, n);
  constexpr long kChunk = 64;
  constexpr double kTol = 1e-7;

  const auto solve = [&](auto&& sweeps_fn, const char* name) {
    setup(u);
    const auto t0 = std::chrono::steady_clock::now();
    long sweeps = 0;
    while (sweeps < 200000) {
      sweeps_fn();
      sweeps += kChunk;
      if (residual(u) < kTol) break;
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    std::printf("  %-16s: %6ld sweeps, residual %.2e, %7.3f s\n", name, sweeps,
                residual(u), dt.count());
    return dt.count();
  };

  // One Solver per residual-check chunk of kChunk sweeps.
  const solver::Solver gs(solver::ProblemBuilder(solver::Family::kGs2D5)
                              .extents(n, n)
                              .steps(kChunk)
                              .build());

  std::printf("Laplace equation on a %dx%d plate (tolerance %.0e):\n", n, n,
              kTol);
  const double t_sc =
      solve([&] { stencil::gs2d5_run(c, u, kChunk); }, "scalar GS");
  const double t_tv = solve([&] { gs.run(c, u); }, "temporal-vector GS");
  std::printf("speedup: %.2fx\n", t_sc / t_tv);
  return 0;
}
