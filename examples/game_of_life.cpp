// Conway's Game of Life (B3S23) through the Solver facade: the planned
// temporally vectorized int32 kernel advances eight generations per
// vector sweep.  Prints an ASCII animation of a glider gun area.
//
//   $ ./game_of_life [generations]
#include <cstdio>
#include <cstdlib>

#include "solver/builder.hpp"
#include "solver/solver.hpp"

int main(int argc, char** argv) {
  using namespace tvs;
  const long gens = argc > 1 ? std::atol(argv[1]) : 96;
  const int nx = 40, ny = 72;
  grid::Grid2D<std::int32_t> u(nx, ny);
  u.fill(0);

  // Gosper glider gun.
  const int gun[][2] = {{5, 1},  {5, 2},  {6, 1},  {6, 2},  {5, 11}, {6, 11},
                        {7, 11}, {4, 12}, {8, 12}, {3, 13}, {9, 13}, {3, 14},
                        {9, 14}, {6, 15}, {4, 16}, {8, 16}, {5, 17}, {6, 17},
                        {7, 17}, {6, 18}, {3, 21}, {4, 21}, {5, 21}, {3, 22},
                        {4, 22}, {5, 22}, {2, 23}, {6, 23}, {1, 25}, {2, 25},
                        {6, 25}, {7, 25}, {3, 35}, {4, 35}, {3, 36}, {4, 36}};
  for (const auto& g : gun) u.at(g[0] + 1, g[1] + 1) = 1;

  const stencil::LifeRule conway{3, 2, 3};
  // One Solver, eight generations per run() call (one vector tile depth).
  const solver::Solver solve(solver::ProblemBuilder(solver::Family::kLife)
                                 .extents(nx, ny)
                                 .steps(8)
                                 .build());
  long alive_total = 0;
  for (long g = 0; g < gens; g += 8) {
    solve.run(conway, u);
    alive_total = 0;
    for (int x = 1; x <= nx; ++x)
      for (int y = 1; y <= ny; ++y) alive_total += u.at(x, y);
  }
  std::printf("generation %ld, %ld live cells\n\n", gens, alive_total);
  for (int x = 1; x <= nx; ++x) {
    for (int y = 1; y <= ny; ++y) std::putchar(u.at(x, y) != 0 ? '#' : '.');
    std::putchar('\n');
  }
  return alive_total > 0 ? 0 : 1;
}
