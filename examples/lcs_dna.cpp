// Longest common subsequence of two random DNA fragments, computed three
// ways: scalar DP, temporally vectorized (8 rows per sweep), and the
// block-wavefront parallel version.  All three must agree.
//
//   $ ./lcs_dna [length]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "stencil/lcs_ref.hpp"
#include "tiling/lcs_wavefront.hpp"
#include "tv/tv_lcs.hpp"

int main(int argc, char** argv) {
  using namespace tvs;
  const int n = argc > 1 ? std::atoi(argv[1]) : 12000;
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::int32_t> d(0, 3);  // A C G T
  std::vector<std::int32_t> a(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n));
  for (auto& v : a) v = d(rng);
  for (auto& v : b) v = d(rng);

  const auto time = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::int32_t r = fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return std::pair<std::int32_t, double>(r, dt.count());
  };

  const auto [r_ref, t_ref] = time([&] { return stencil::lcs_ref(a, b); });
  const auto [r_tv, t_tv] = time([&] { return tv::tv_lcs(a, b); });
  tiling::LcsWavefrontOptions opt;
  opt.block = 2048;
  opt.band = 2048;
  const auto [r_wf, t_wf] =
      time([&] { return tiling::lcs_wavefront(a, b, opt); });

  std::printf("LCS of two %d-base DNA fragments: %d (%.1f%% of length)\n", n,
              r_ref, 100.0 * r_ref / n);
  std::printf("  scalar DP        : %7.3f s\n", t_ref);
  std::printf("  temporal vector  : %7.3f s  (%.2fx)\n", t_tv, t_ref / t_tv);
  std::printf("  + block wavefront: %7.3f s  (%.2fx)\n", t_wf, t_ref / t_wf);
  if (r_tv != r_ref || r_wf != r_ref) {
    std::printf("MISMATCH!\n");
    return 1;
  }
  std::printf("all three agree\n");
  return 0;
}
