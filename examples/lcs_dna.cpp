// Longest common subsequence of two random DNA fragments, computed three
// ways: scalar DP, the Solver's serial temporal-vector plan (8+ rows per
// sweep), and the Solver's block-wavefront parallel plan.  All three must
// agree.
//
//   $ ./lcs_dna [length]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "solver/builder.hpp"
#include "solver/solver.hpp"
#include "stencil/lcs_ref.hpp"

int main(int argc, char** argv) {
  using namespace tvs;
  const int n = argc > 1 ? std::atoi(argv[1]) : 12000;
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::int32_t> d(0, 3);  // A C G T
  std::vector<std::int32_t> a(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n));
  for (auto& v : a) v = d(rng);
  for (auto& v : b) v = d(rng);

  const auto time = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::int32_t r = fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return std::pair<std::int32_t, double>(r, dt.count());
  };

  const solver::StencilProblem p =
      solver::ProblemBuilder(solver::Family::kLcs).extents(n, n).build();
  const solver::Solver serial(p);  // planned: serial temporal vectorization

  // The wavefront-parallel plan, pinned to 2048x2048 blocks.
  solver::ExecutionPlan wf_plan = solver::plan_for(p);
  wf_plan.path = solver::Path::kTiledParallel;
  wf_plan.tile_w = 2048;
  wf_plan.tile_h = 2048;
  const solver::Solver wavefront(p, wf_plan);

  const auto [r_ref, t_ref] = time([&] { return stencil::lcs_ref(a, b); });
  const auto [r_tv, t_tv] = time([&] { return serial.lcs(a, b); });
  const auto [r_wf, t_wf] = time([&] { return wavefront.lcs(a, b); });

  std::printf("LCS of two %d-base DNA fragments: %d (%.1f%% of length)\n", n,
              r_ref, 100.0 * r_ref / n);
  std::printf("  scalar DP        : %7.3f s\n", t_ref);
  std::printf("  temporal vector  : %7.3f s  (%.2fx)\n", t_tv, t_ref / t_tv);
  std::printf("  + block wavefront: %7.3f s  (%.2fx)\n", t_wf, t_ref / t_wf);
  if (r_tv != r_ref || r_wf != r_ref) {
    std::printf("MISMATCH!\n");
    return 1;
  }
  std::printf("all three agree\n");
  return 0;
}
