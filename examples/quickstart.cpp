// Quickstart: solve the 1D heat equation through the Solver facade and
// compare against the scalar reference.
//
//   $ ./quickstart
//
// Demonstrates the three-line usage pattern:
//   1. describe the problem, 2. build a Solver (plans automatically),
//   3. run it.  The plan — backend, vector length, stride, tiling — is
// chosen per problem and machine; TVS_PLAN / TVS_TUNE / TVS_FORCE_BACKEND
// override it (see README "Solver API").
#include <cstdio>

#include "solver/builder.hpp"
#include "solver/solver.hpp"
#include "stencil/reference1d.hpp"

int main() {
  using namespace tvs;

  constexpr int nx = 1 << 16;
  constexpr long steps = 400;

  // A rod with a hot left boundary, cold right boundary.
  grid::Grid1D<double> u(nx);
  u.fill(0.0);
  u.at(0) = 100.0;
  u.at(nx + 1) = 0.0;

  const stencil::C1D3 heat = stencil::heat1d(0.25);

  // The facade: describe, plan, run.  The planner picks the temporal
  // stride (the paper's s = 7 for this family) and the execution path.
  const solver::StencilProblem problem =
      solver::ProblemBuilder(solver::Family::kJacobi1D3)
          .extents(nx)
          .steps(steps)
          .build();
  const solver::Solver solve(problem);
  solve.run(heat, u);

  // Scalar oracle for comparison — bit-identical by construction.
  grid::Grid1D<double> ref(nx);
  ref.fill(0.0);
  ref.at(0) = 100.0;
  ref.at(nx + 1) = 0.0;
  stencil::jacobi1d3_run(heat, ref, steps);

  const double diff = grid::max_abs_diff(u, ref);
  std::printf("execution plan            : %s\n",
              solve.plan().to_string().c_str());
  std::printf("temperature near hot end  : %8.4f %8.4f %8.4f ...\n", u.at(1),
              u.at(2), u.at(3));
  std::printf("max |temporal - scalar|   : %g\n", diff);
  std::printf("%s\n", diff == 0.0 ? "OK: results are bit-identical"
                                  : "FAIL: kernels disagree");
  return diff == 0.0 ? 0 : 1;
}
