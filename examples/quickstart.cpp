// Quickstart: solve the 1D heat equation with the temporally vectorized
// kernel and compare against the scalar reference.
//
//   $ ./quickstart
//
// Demonstrates the three-line usage pattern:
//   1. build a grid, 2. pick coefficients, 3. call tv_jacobi1d3_run.
#include <cstdio>

#include "stencil/reference1d.hpp"
#include "tv/tv1d.hpp"

int main() {
  using namespace tvs;

  constexpr int nx = 1 << 16;
  constexpr long steps = 400;

  // A rod with a hot left boundary, cold right boundary.
  grid::Grid1D<double> u(nx);
  u.fill(0.0);
  u.at(0) = 100.0;
  u.at(nx + 1) = 0.0;

  const stencil::C1D3 heat = stencil::heat1d(0.25);

  // Temporal vectorization: advances 4 time steps per sweep, one array,
  // stride s = 7 between lanes (the paper's default).
  tv::tv_jacobi1d3_run(heat, u, steps);

  // Scalar oracle for comparison — bit-identical by construction.
  grid::Grid1D<double> ref(nx);
  ref.fill(0.0);
  ref.at(0) = 100.0;
  ref.at(nx + 1) = 0.0;
  stencil::jacobi1d3_run(heat, ref, steps);

  const double diff = grid::max_abs_diff(u, ref);
  std::printf("temperature near hot end  : %8.4f %8.4f %8.4f ...\n", u.at(1),
              u.at(2), u.at(3));
  std::printf("max |temporal - scalar|   : %g\n", diff);
  std::printf("%s\n", diff == 0.0 ? "OK: results are bit-identical"
                                  : "FAIL: kernels disagree");
  return diff == 0.0 ? 0 : 1;
}
