// Heat diffusion on a 2D plate, solved through the Solver facade (which
// plans the temporally vectorized 2D5P kernel), rendered as a PPM heat
// map (heat2d.ppm).
//
//   $ ./heat2d_image [N] [steps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "solver/builder.hpp"
#include "solver/solver.hpp"

int main(int argc, char** argv) {
  using namespace tvs;
  const int n = argc > 1 ? std::atoi(argv[1]) : 384;
  const long steps = argc > 2 ? std::atol(argv[2]) : 2000;

  grid::Grid2D<double> u(n, n);
  u.fill(0.0);
  // Hot circular blob off-center plus a hot west boundary.
  const int cx = n / 3, cy = n / 2, r = n / 8;
  for (int x = 1; x <= n; ++x)
    for (int y = 1; y <= n; ++y)
      if ((x - cx) * (x - cx) + (y - cy) * (y - cy) < r * r) u.at(x, y) = 1.0;
  for (int x = 0; x <= n + 1; ++x) u.at(x, 0) = 0.6;

  const solver::Solver solve(
      solver::ProblemBuilder(solver::Family::kJacobi2D5)
          .extents(n, n)
          .steps(steps)
          .build());
  solve.run(stencil::heat2d(0.2), u);

  std::FILE* f = std::fopen("heat2d.ppm", "wb");
  if (f == nullptr) return 1;
  std::fprintf(f, "P6\n%d %d\n255\n", n, n);
  for (int x = 1; x <= n; ++x)
    for (int y = 1; y <= n; ++y) {
      const double v = std::clamp(u.at(x, y), 0.0, 1.0);
      const unsigned char rgb[3] = {
          static_cast<unsigned char>(255 * v),
          static_cast<unsigned char>(64 * v),
          static_cast<unsigned char>(255 * (1.0 - v))};
      std::fwrite(rgb, 1, 3, f);
    }
  std::fclose(f);
  std::printf("wrote heat2d.ppm (%dx%d after %ld steps); center T = %.4f\n", n,
              n, steps, u.at(cx, cy));
  return 0;
}
