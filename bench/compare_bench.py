#!/usr/bin/env python3
"""Gate a bench run against a committed baseline (tvs-bench-v1 JSON).

Compares the temporal-vectorization rate column ("our" by default) of
every table both documents share, row by row (matched on the first cell,
the size label), and computes the geometric mean of the current/baseline
ratios.  A geomean below 1 - threshold (default 0.20, i.e. a >20%
regression) fails with exit code 1 and a per-bench breakdown, so CI can
block perf regressions the way ctest blocks correctness ones.

Only rate columns are compared: tables without the requested column
(e.g. the ablation tables, whose "speedup" cells are ratios, not rates)
and benches with an "error" entry on either side are skipped with a
notice.  Rows present on only one side are skipped too — a baseline
recorded in full mode stays comparable with a quick-mode PR run over the
shared sizes.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold 0.20]
                   [--column our]
"""
import argparse
import json
import math
import sys


def rate_rows(doc, column):
    """-> {(bench, table title, row label): rate} for the given column."""
    rates = {}
    for bench in doc.get("benches", []):
        if "error" in bench:
            print("note: skipping %s (%s)" % (bench["name"], bench["error"]))
            continue
        for table in bench.get("tables", []):
            if column not in table.get("columns", []):
                continue
            col = table["columns"].index(column)
            for row in table.get("rows", []):
                if col >= len(row):
                    continue
                value = row[col]
                if isinstance(value, (int, float)) and value > 0:
                    key = (bench["name"], table["title"], str(row[0]))
                    rates[key] = float(value)
    return rates


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail on a geomean bench regression beyond the "
                    "threshold.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated geomean regression "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--column", default="our",
                        help="rate column to compare (default: our)")
    args = parser.parse_args(argv[1:])

    with open(args.baseline) as f:
        base_doc = json.load(f)
    with open(args.current) as f:
        cur_doc = json.load(f)
    for name, doc in (("baseline", base_doc), ("current", cur_doc)):
        if doc.get("schema") != "tvs-bench-v1":
            sys.stderr.write("compare_bench: %s is not a tvs-bench-v1 "
                             "document\n" % name)
            return 2

    base = rate_rows(base_doc, args.column)
    cur = rate_rows(cur_doc, args.column)
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.stderr.write("compare_bench: no comparable '%s' rows shared by "
                         "the two documents\n" % args.column)
        return 2

    log_sum = 0.0
    per_bench = {}
    for key in shared:
        ratio = cur[key] / base[key]
        log_sum += math.log(ratio)
        per_bench.setdefault(key[0], []).append(ratio)
    geomean = math.exp(log_sum / len(shared))

    print("compared %d '%s' rows across %d benches "
          "(baseline host %r, current host %r)"
          % (len(shared), args.column, len(per_bench),
             base_doc.get("host"), cur_doc.get("host")))
    for bench in sorted(per_bench):
        ratios = per_bench[bench]
        bench_geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print("  %-24s %6.3fx  (%d rows, worst %.3fx)"
              % (bench, bench_geo, len(ratios), min(ratios)))
    print("geomean current/baseline: %.3fx (gate: >= %.3fx)"
          % (geomean, 1.0 - args.threshold))

    if geomean < 1.0 - args.threshold:
        sys.stderr.write("compare_bench: FAIL - geomean regression beyond "
                         "%.0f%%\n" % (args.threshold * 100))
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
