// Ablation for §3.3 "Improving data parallelism": the space stride s sets
// the ILP distance between dependent output vectors.  Sweep s for the 1D3P
// Jacobi kernel at an in-L1 size and an out-of-cache size; the paper's
// default (s = 7, eight live input vectors) should win at both.
#include <string>

#include "bench_util/bench.hpp"
#include "tv/tv1d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const stencil::C1D3 c = stencil::heat1d(0.25);
  b::print_title("Ablation  1D3P stride sweep (Gstencils/s)");
  b::print_header({"stride", "nx=2^10", "nx=2^16", "nx=2^21"});
  for (const int s : {2, 3, 5, 7, 9, 11}) {
    std::vector<std::string> row{std::to_string(s)};
    for (const int e : {10, 16, 21}) {
      const int nx = 1 << e;
      const long steps = std::max<long>(8, (1L << 23) / nx);
      const double pts = static_cast<double>(nx) * steps;
      grid::Grid1D<double> u(nx);
      for (int x = 0; x <= nx + 1; ++x) u.at(x) = 0.001 * (x % 89);
      row.push_back(b::fmt(b::measure_gstencils(
          pts, [&] { tv::tv_jacobi1d3_run(c, u, steps, s); })));
    }
    b::print_row(row);
  }
  return 0;
}
