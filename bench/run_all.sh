#!/usr/bin/env bash
# Runs the figure benchmarks at their quick sizes and writes a
# machine-readable JSON summary, so every PR leaves a perf data point.
#
#   bench/run_all.sh [options]
#     -b DIR    build directory containing the bench binaries (default: build)
#     -o FILE   output JSON path (default: BENCH_PR<N>.json next to -b,
#               N taken from TVS_PR_NUMBER, default 1)
#     -a        run ALL benches, including the thread-sweep *_par figures
#               (default: the sequential/ablation set — the par sweeps are
#               meaningless on a 1-2 core box and dominate wall time)
#     -q        quick subset only (one bench per kernel family; fastest)
#
# Environment: TVS_BENCH_FULL=1 switches binaries to paper-scale sizes;
# TVS_BENCH_MAXTHREADS caps the thread sweep of the par figures.
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"
repo="$(dirname "$here")"
build_dir="$repo/build"
out_json=""
mode="seq"

while getopts "b:o:aq" opt; do
  case "$opt" in
    b) build_dir="$OPTARG" ;;
    o) out_json="$OPTARG" ;;
    a) mode="all" ;;
    q) mode="quick" ;;
    *) exit 2 ;;
  esac
done

pr="${TVS_PR_NUMBER:-1}"
[ -n "$out_json" ] || out_json="$repo/BENCH_PR${pr}.json"

bench_bin_dir="$build_dir/bench"
if [ ! -d "$bench_bin_dir" ]; then
  echo "error: $bench_bin_dir not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
bench_bin_dir="$(cd "$bench_bin_dir" && pwd)"

seq_benches=(
  fig4a_heat1d_seq fig4c_heat2d_seq fig4e_heat3d_seq fig4g_2d9p_seq
  fig4i_life_seq fig5a_gs1d_seq fig5c_gs2d_seq fig5e_gs3d_seq fig5g_lcs_seq
  ablation_dtype ablation_redundancy ablation_stride ablation_vl
  serve_throughput table1_blocking
)
# ablation_reorg emits google-benchmark console output, not the tvs table
# format, so it is run manually rather than through this driver.
par_benches=(
  fig4b_heat1d_par fig4d_heat2d_par fig4f_heat3d_par fig4h_2d9p_par
  fig4j_life_par fig5b_gs1d_par fig5d_gs2d_par fig5f_gs3d_par fig5h_lcs_par
)
quick_benches=(fig4a_heat1d_seq fig4c_heat2d_seq fig5a_gs1d_seq
               fig5g_lcs_seq ablation_vl ablation_redundancy
               serve_throughput)

case "$mode" in
  quick) benches=("${quick_benches[@]}") ;;
  seq)   benches=("${seq_benches[@]}") ;;
  all)   benches=("${seq_benches[@]}" "${par_benches[@]}") ;;
esac

capture_dir="$(mktemp -d)"
trap 'rm -rf "$capture_dir"' EXIT

# Stamp the resolved runtime backend + CPU capabilities into the JSON
# metadata (key=value lines from the backend_info helper), so numbers from
# different hosts / forced backends stay interpretable.  Missing helper
# (old build tree) degrades to an empty stamp, not a failed run.
backend_info=""
if [ -x "$bench_bin_dir/backend_info" ]; then
  backend_info="$("$bench_bin_dir/backend_info" 2>/dev/null || true)"
else
  echo "-- warning: backend_info not built; JSON will lack the backend stamp" >&2
fi
export TVS_BENCH_BACKEND_INFO="$backend_info"

# Per-bench failures (missing binary, non-zero exit) do not abort the run:
# they are recorded as "error" entries in the JSON so one crashed bench
# cannot throw away the whole run's data.  The script still fails fast on
# infrastructure errors (unbuilt tree, unparseable output) via set -e, and
# exits non-zero at the end if any bench errored.
specs=()
failed=0
for b in "${benches[@]}"; do
  bin="$bench_bin_dir/$b"
  if [ ! -x "$bin" ]; then
    echo "-- ERROR: $b not built" >&2
    specs+=("$b=0=error:not-built=/dev/null")
    failed=1
    continue
  fi
  echo "-- running $b"
  t0=$(date +%s.%N)
  rc=0
  # stderr goes to its own file: a stray diagnostic line inside a table
  # would otherwise be parsed as a malformed row.
  "$bin" 2>"$capture_dir/$b.stderr" | tee "$capture_dir/$b.txt" || rc=$?
  t1=$(date +%s.%N)
  secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", b - a }')
  if [ -s "$capture_dir/$b.stderr" ]; then
    sed "s/^/-- $b stderr: /" "$capture_dir/$b.stderr" >&2
  fi
  if [ "$rc" -ne 0 ]; then
    echo "-- ERROR: $b exited with status $rc" >&2
    specs+=("$b=$secs=error:exit-$rc=$capture_dir/$b.txt")
    failed=1
  else
    specs+=("$b=$secs=ok=$capture_dir/$b.txt")
  fi
done

if [ "${#specs[@]}" -eq 0 ]; then
  echo "error: no bench binaries found to run" >&2
  exit 1
fi

python3 "$here/parse_tables.py" "$out_json" "${specs[@]}"

if [ "$failed" -ne 0 ]; then
  echo "error: some benches failed; see the \"error\" entries in $out_json" >&2
  exit 1
fi
