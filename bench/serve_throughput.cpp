// Serving-layer throughput: problems/second through serve::Batch on a
// work-stealing ThreadPool, sweeping 1..P workers (TVS_BENCH_MAXTHREADS
// caps the sweep) over a mixed set of small problems — four instances each
// of jacobi1d3/f64, jacobi2d5/f64, gs1d3/f32 and LCS.  The serving layer
// schedules whole problems across workers; speedup is relative to the
// single-worker row.  A second table snapshots the serving counters
// (serve::Stats plus the last pool's executor stats) so a run records how
// much planning the cache amortized and whether the plan store fired.
#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "bench_util/bench.hpp"
#include "dispatch/dtype.hpp"
#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "serve/batch.hpp"
#include "serve/executor.hpp"
#include "serve/stats.hpp"
#include "solver/builder.hpp"
#include "solver/solver.hpp"
#include "stencil/coefficients.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;

  const int scale = b::full_mode() ? 4 : 1;
  const int n1 = 2048 * scale;   // 1D rods
  const int n2 = 64 * scale;     // 2D squares
  const int nl = 512 * scale;    // LCS sequence length
  const long steps1 = 32;
  const long steps2 = 16;
  constexpr int kCopies = 4;  // instances per problem kind

  const solver::StencilProblem p_j1 =
      solver::ProblemBuilder(solver::Family::kJacobi1D3)
          .extents(n1)
          .steps(steps1)
          .build();
  const solver::StencilProblem p_j2 =
      solver::ProblemBuilder(solver::Family::kJacobi2D5)
          .extents(n2, n2)
          .steps(steps2)
          .build();
  const solver::StencilProblem p_gs =
      solver::ProblemBuilder(solver::Family::kGs1D3)
          .extents(n1)
          .steps(steps1)
          .dtype(dispatch::DType::kF32)
          .build();
  const solver::StencilProblem p_lcs =
      solver::ProblemBuilder(solver::Family::kLcs).extents(nl, nl).build();

  const stencil::C1D3 c_j1 = stencil::heat1d(0.25);
  const stencil::C2D5 c_j2 = stencil::heat2d(0.2);
  const stencil::C1D3f c_gs = stencil::heat1d<float>(0.25);

  // One grid / sequence pair per instance; storage outlives every future.
  std::mt19937_64 rng(11);
  std::vector<grid::Grid1D<double>> g_j1;
  std::vector<grid::Grid2D<double>> g_j2;
  std::vector<grid::Grid1D<float>> g_gs;
  std::vector<std::vector<std::int32_t>> seq_a, seq_b;
  std::uniform_int_distribution<std::int32_t> d(0, 3);
  for (int i = 0; i < kCopies; ++i) {
    g_j1.emplace_back(n1).fill_random(rng, -1.0, 1.0);
    g_j2.emplace_back(n2, n2).fill_random(rng, -1.0, 1.0);
    g_gs.emplace_back(n1).fill_random(rng, -1.0f, 1.0f);
    auto& a = seq_a.emplace_back(static_cast<std::size_t>(nl));
    auto& s = seq_b.emplace_back(static_cast<std::size_t>(nl));
    for (auto& v : a) v = d(rng);
    for (auto& v : s) v = d(rng);
  }
  const int kProblems = 4 * kCopies;

  b::print_title("Serving throughput  mixed small-problem batch");
  b::print_header({"workers", "probs_per_sec", "speedup"});

  serve::ExecutorStats last_pool{};
  double base_rate = 0.0;
  for (const int w : b::thread_sweep()) {
    serve::ThreadPool pool(w);
    serve::Batch batch(&pool);
    const auto pass = [&] {
      for (int i = 0; i < kCopies; ++i) {
        batch.add(p_j1, solver::Workload(c_j1, g_j1[static_cast<size_t>(i)]));
        batch.add(p_j2, solver::Workload(c_j2, g_j2[static_cast<size_t>(i)]));
        batch.add(p_gs, solver::Workload(c_gs, g_gs[static_cast<size_t>(i)]));
        batch.add(p_lcs, solver::Workload(seq_a[static_cast<size_t>(i)],
                                          seq_b[static_cast<size_t>(i)]));
      }
      batch.run();
    };
    pass();  // warm: plans land in the process-wide cache
    double best = 0.0;
    for (double spent = 0.0; spent < 0.2;) {
      const double t0 = b::now_sec();
      pass();
      const double dt = b::now_sec() - t0;
      best = std::max(best, static_cast<double>(kProblems) / dt);
      spent += dt;
    }
    if (base_rate == 0.0) base_rate = best;
    last_pool = pool.stats();
    b::print_row({std::to_string(w), b::fmt(best), b::fmt(best / base_rate)});
  }

  const serve::Stats s = serve::stats();
  b::print_title("serve stats");
  b::print_header({"counter", "value"});
  b::print_row({"plan_cache_hits", std::to_string(s.plan_cache.hits)});
  b::print_row({"plan_cache_misses", std::to_string(s.plan_cache.misses)});
  b::print_row({"plan_store_loads", std::to_string(s.plan_store.loads)});
  b::print_row({"plan_store_saves", std::to_string(s.plan_store.saves)});
  b::print_row({"plan_store_rejects", std::to_string(s.plan_store.rejects)});
  b::print_row({"executor_tasks_run", std::to_string(last_pool.tasks_run)});
  b::print_row({"executor_steals", std::to_string(last_pool.steals)});
  b::print_row({"executor_workers", std::to_string(last_pool.workers)});
  return 0;
}
