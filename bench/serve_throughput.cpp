// Serving-layer throughput: problems/second through serve::Batch on a
// work-stealing ThreadPool, sweeping 1..P workers (TVS_BENCH_MAXTHREADS
// caps the sweep) over a mixed set of small problems — four instances each
// of jacobi1d3/f64, jacobi2d5/f64, gs1d3/f32 and LCS.  The serving layer
// schedules whole problems across workers; speedup is relative to the
// single-worker row.  A second sweep mixes large tiled problems with small
// interactive ones and reports small-problem latency with the priority
// hint off vs on — the number that used to degrade when a big job parked
// on every worker.  A final table snapshots the serving counters
// (serve::Stats plus the last pool's executor stats) so a run records how
// much planning the cache amortized, whether the plan store fired, where
// workers landed across NUMA nodes, and how many tile tasks the
// decomposed-run scheduler pushed through the shared pool.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util/bench.hpp"
#include "dispatch/dtype.hpp"
#include "grid/grid1d.hpp"
#include "grid/grid2d.hpp"
#include "serve/batch.hpp"
#include "serve/executor.hpp"
#include "serve/stats.hpp"
#include "solver/builder.hpp"
#include "solver/solver.hpp"
#include "stencil/coefficients.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;

  const int scale = b::full_mode() ? 4 : 1;
  const int n1 = 2048 * scale;   // 1D rods
  const int n2 = 64 * scale;     // 2D squares
  const int nl = 512 * scale;    // LCS sequence length
  const long steps1 = 32;
  const long steps2 = 16;
  constexpr int kCopies = 4;  // instances per problem kind

  const solver::StencilProblem p_j1 =
      solver::ProblemBuilder(solver::Family::kJacobi1D3)
          .extents(n1)
          .steps(steps1)
          .build();
  const solver::StencilProblem p_j2 =
      solver::ProblemBuilder(solver::Family::kJacobi2D5)
          .extents(n2, n2)
          .steps(steps2)
          .build();
  const solver::StencilProblem p_gs =
      solver::ProblemBuilder(solver::Family::kGs1D3)
          .extents(n1)
          .steps(steps1)
          .dtype(dispatch::DType::kF32)
          .build();
  const solver::StencilProblem p_lcs =
      solver::ProblemBuilder(solver::Family::kLcs).extents(nl, nl).build();

  const stencil::C1D3 c_j1 = stencil::heat1d(0.25);
  const stencil::C2D5 c_j2 = stencil::heat2d(0.2);
  const stencil::C1D3f c_gs = stencil::heat1d<float>(0.25);

  // One grid / sequence pair per instance; storage outlives every future.
  std::mt19937_64 rng(11);
  std::vector<grid::Grid1D<double>> g_j1;
  std::vector<grid::Grid2D<double>> g_j2;
  std::vector<grid::Grid1D<float>> g_gs;
  std::vector<std::vector<std::int32_t>> seq_a, seq_b;
  std::uniform_int_distribution<std::int32_t> d(0, 3);
  for (int i = 0; i < kCopies; ++i) {
    g_j1.emplace_back(n1).fill_random(rng, -1.0, 1.0);
    g_j2.emplace_back(n2, n2).fill_random(rng, -1.0, 1.0);
    g_gs.emplace_back(n1).fill_random(rng, -1.0f, 1.0f);
    auto& a = seq_a.emplace_back(static_cast<std::size_t>(nl));
    auto& s = seq_b.emplace_back(static_cast<std::size_t>(nl));
    for (auto& v : a) v = d(rng);
    for (auto& v : s) v = d(rng);
  }
  const int kProblems = 4 * kCopies;

  b::print_title("Serving throughput  mixed small-problem batch");
  b::print_header({"workers", "probs_per_sec", "speedup"});

  serve::ExecutorStats last_pool{};
  double base_rate = 0.0;
  for (const int w : b::thread_sweep()) {
    serve::ThreadPool pool(w);
    serve::Batch batch(&pool);
    const auto pass = [&] {
      for (int i = 0; i < kCopies; ++i) {
        batch.add(p_j1, solver::Workload(c_j1, g_j1[static_cast<size_t>(i)]));
        batch.add(p_j2, solver::Workload(c_j2, g_j2[static_cast<size_t>(i)]));
        batch.add(p_gs, solver::Workload(c_gs, g_gs[static_cast<size_t>(i)]));
        batch.add(p_lcs, solver::Workload(seq_a[static_cast<size_t>(i)],
                                          seq_b[static_cast<size_t>(i)]));
      }
      batch.run();
    };
    pass();  // warm: plans land in the process-wide cache
    double best = 0.0;
    for (double spent = 0.0; spent < 0.2;) {
      const double t0 = b::now_sec();
      pass();
      const double dt = b::now_sec() - t0;
      best = std::max(best, static_cast<double>(kProblems) / dt);
      spent += dt;
    }
    if (base_rate == 0.0) base_rate = best;
    last_pool = pool.stats();
    b::print_row({std::to_string(w), b::fmt(best), b::fmt(best / base_rate)});
  }

  // --- Mixed large+small latency: does a small problem still return fast
  // while large tiled jobs occupy the pool?  Large jacobi2d5/f64 runs take
  // the tiled-parallel path (decomposed into per-tile pool tasks when
  // TVS_SERVE_DECOMPOSE is on); the small probes are sub-millisecond
  // jacobi1d3 runs submitted one at a time while the big jobs are in
  // flight.  hint=off leaves the probes on the batch band, hint=on marks
  // them interactive so they bypass queued tile/batch work.
  const int nbig = 256 * scale;
  const solver::StencilProblem p_big =
      solver::ProblemBuilder(solver::Family::kJacobi2D5)
          .extents(nbig, nbig)
          .steps(64)
          .threads(4)
          .build();
  const solver::StencilProblem p_small =
      solver::ProblemBuilder(solver::Family::kJacobi1D3)
          .extents(256)
          .steps(8)
          .build();
  const stencil::C1D3 c_small = stencil::heat1d(0.25);
  constexpr int kBig = 6;
  constexpr int kProbes = 12;
  std::vector<grid::Grid2D<double>> g_big;
  for (int i = 0; i < kBig; ++i) {
    g_big.emplace_back(nbig, nbig).fill_random(rng, -1.0, 1.0);
  }
  std::vector<grid::Grid1D<double>> g_small;
  for (int i = 0; i < kProbes; ++i) {
    g_small.emplace_back(256).fill_random(rng, -1.0, 1.0);
  }

  b::print_title("Serving latency  small probes among large tiled jobs");
  b::print_header({"big_jobs", "hint", "probe_p50_ms", "probe_max_ms",
                   "elapsed_ms"});
  // whole/off replays the pre-decomposition serving layer: each big job is
  // one closure that parks on a worker until done, so probes queue behind
  // entire problems.  tiles/* submit through the serving funnel, which
  // decomposes the tiled plan into per-stage pool tasks.
  struct Config {
    const char* mode;
    bool interactive;
  };
  for (const Config cfg : {Config{"whole", false}, Config{"tiles", false},
                           Config{"tiles", true}}) {
    const bool whole = std::string_view(cfg.mode) == "whole";
    const bool interactive = cfg.interactive;
    serve::ThreadPool pool(4);
    const solver::Solver s_big(p_big);
    const solver::Solver s_small(p_small);
    const double t_all = b::now_sec();
    std::vector<solver::Future<solver::RunResult>> big;
    std::vector<std::future<void>> big_whole;
    big.reserve(kBig);
    big_whole.reserve(kBig);
    for (int i = 0; i < kBig; ++i) {
      solver::Workload w(c_j2, g_big[static_cast<size_t>(i)]);
      if (whole) {
        auto done = std::make_shared<std::promise<void>>();
        big_whole.push_back(done->get_future());
        pool.submit([&s_big, w, done] {
          s_big.run(w);
          done->set_value();
        });
      } else {
        big.push_back(serve::submit_on(pool, s_big, std::move(w)));
      }
    }
    // Pace the probes across the big jobs' whole in-flight window instead
    // of firing them all up front, so the percentile samples contention at
    // many points of the tiled runs rather than just the initial burst.
    std::vector<double> lat;
    lat.reserve(kProbes);
    for (int i = 0; i < kProbes; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      solver::Workload w(c_small, g_small[static_cast<size_t>(i)]);
      if (interactive) w.priority(solver::Priority::kInteractive);
      const double t0 = b::now_sec();
      serve::submit_on(pool, s_small, std::move(w)).get();
      lat.push_back((b::now_sec() - t0) * 1e3);
    }
    for (auto& f : big) f.get();
    for (auto& f : big_whole) f.get();
    const double elapsed = (b::now_sec() - t_all) * 1e3;
    std::sort(lat.begin(), lat.end());
    b::print_row({cfg.mode, interactive ? "on" : "off",
                  b::fmt(lat[lat.size() / 2]), b::fmt(lat.back()),
                  b::fmt(elapsed)});
    last_pool = pool.stats();
  }

  const serve::Stats s = serve::stats();
  std::string per_node;
  for (std::size_t i = 0; i < last_pool.workers_per_node.size(); ++i) {
    if (i > 0) per_node += ",";
    per_node += std::to_string(last_pool.workers_per_node[i]);
  }
  b::print_title("serve stats");
  b::print_header({"counter", "value"});
  b::print_row({"plan_cache_hits", std::to_string(s.plan_cache.hits)});
  b::print_row({"plan_cache_misses", std::to_string(s.plan_cache.misses)});
  b::print_row({"plan_store_loads", std::to_string(s.plan_store.loads)});
  b::print_row({"plan_store_saves", std::to_string(s.plan_store.saves)});
  b::print_row({"plan_store_rejects", std::to_string(s.plan_store.rejects)});
  b::print_row({"executor_tasks_run", std::to_string(last_pool.tasks_run)});
  b::print_row({"executor_steals", std::to_string(last_pool.steals)});
  b::print_row({"executor_workers", std::to_string(last_pool.workers)});
  b::print_row({"executor_nodes", std::to_string(last_pool.nodes)});
  b::print_row({"workers_per_node", per_node});
  b::print_row({"interactive_submitted",
                std::to_string(last_pool.interactive_submitted)});
  b::print_row({"interactive_run", std::to_string(last_pool.interactive_run)});
  b::print_row(
      {"sched_decomposed_runs", std::to_string(s.sched.decomposed_runs)});
  b::print_row({"sched_stages", std::to_string(s.sched.stages)});
  b::print_row({"sched_tile_tasks", std::to_string(s.sched.tile_tasks)});
  b::print_row({"sched_helper_tasks", std::to_string(s.sched.helper_tasks)});
  return 0;
}
