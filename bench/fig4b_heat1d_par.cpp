// Figure 4b: Heat-1D parallel scaling (1..N cores).
//
// Paper setup: 16000000 x 6000 problem, 16384 x 128 diamond blocking,
// curves our / auto / scalar.  `our` and `scalar` share the identical
// diamond tiling (use_vector toggles the tile kernel); `auto` is the
// conventional per-step OpenMP parallelization of the compiler-vectorized
// loop.
#include "baseline/autovec.hpp"
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/diamond.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;

  const int nx = b::full_mode() ? 16000000 : (1 << 21);
  const long steps = b::full_mode() ? 768 : 256;
  const stencil::C1D3 c = stencil::heat1d(0.25);
  const double pts = static_cast<double>(nx) * static_cast<double>(steps);

  grid::PingPong<grid::Grid1D<double>> pp(nx);
  for (int x = 0; x <= nx + 1; ++x) pp.even().at(x) = 1.0 + 0.001 * (x % 97);
  tiling::fix_boundaries(pp);

  // "our" goes through the Solver facade, pinned to the paper blocking.
  const solver::StencilProblem prob =
      solver::problem_1d(solver::Family::kJacobi1D3, nx, steps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 16384;
  plan.tile_h = 128;
  const solver::Solver solve(prob, plan);

  tiling::Diamond1DOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  grid::Grid1D<double> ua(nx);
  for (int x = 0; x <= nx + 1; ++x) ua.at(x) = pp.even().at(x);

  benchx::par_figure(
      "Fig 4b  Heat-1D parallel, diamond 16384x128 (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(c, pp); });
        }},
       {"auto",
        [&](int) {
          return b::measure_gstencils(pts, [&] {
            baseline::par_autovec_jacobi1d3_run(c, ua, steps);
          });
        }},
       {"tiled-auto", [&](int) {
          return b::measure_gstencils(
              pts, [&] { tiling::diamond_jacobi1d3_run(c, pp, steps, sc); });
        }}});
  return 0;
}
