// Ablation: redundancy-eliminated (re) temporal engines vs the baseline
// tv engines at matched (dtype, vl, stride).  The re variants share the
// lane reorganization across adjacent temporal updates (one retire+insert
// shuffle per steady-state output vector instead of ~3 - 2/VL) and reuse
// column-shared ring-vector operands in the 2D/3D functors, so any win
// here is pure redundancy elimination — the ring walk, the arithmetic and
// the results are bit-identical (tests/property_test.cpp enforces this).
//
// Two kinds of tables:
//   * Rate tables (Gstencils/s) pin both engines through the registry at
//     selected_backend() and the SAME width, over cache-resident and
//     DRAM-bound sizes.  The rate columns are named "tv" and "re" — not
//     "our" — so compare_bench.py's default gate skips them; CI diffs
//     them explicitly with --column tv / --column re once a baseline
//     containing these tables exists (BENCH_PR8.json onward).
//   * A shuffle-count table from the TVS_REORG_COUNT debug counter
//     (simd/reorg.hpp).  Defining the macro below instruments THIS TU's
//     local ScalarVec instantiations only; the registry engines in the
//     backend libraries stay uncounted release code (their
//     instantiations are localized, so the copies never collide).
#define TVS_REORG_COUNT 1

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util/bench.hpp"
#include "dispatch/kernels.hpp"
#include "dispatch/registry.hpp"
#include "tv/functors1d.hpp"
#include "tv/functors2d.hpp"
#include "tv/functors3d.hpp"
#include "tv/tv1d_re_impl.hpp"
#include "tv/tv2d_re_impl.hpp"
#include "tv/tv3d_re_impl.hpp"

namespace {

using namespace tvs;
namespace b = tvs::bench;

void rate_row(const std::string& size, double tv, double re) {
  b::print_row({size, b::fmt(tv), b::fmt(re),
                tv > 0.0 ? b::fmt(re / tv, 2) : "n/a"});
}

// ---- rate tables: registry engines at matched (dtype, vl, stride) --------

template <class Fn, class C, class T>
void sweep_1d(const dispatch::KernelRegistry& reg, std::string_view tv_id,
              std::string_view re_id, dispatch::DType dt, const C& c,
              const std::string& title) {
  const dispatch::Backend at = dispatch::selected_backend();
  const std::vector<int> widths = reg.registered_widths(tv_id, at, dt);
  const int vl = widths.empty() ? dispatch::kAnyVl : widths.back();
  auto* tv = reg.get_at<Fn>(tv_id, at, vl, dt);
  auto* re = reg.get_at<Fn>(re_id, at, vl, dt);
  b::print_title(title + " vl=" + std::to_string(vl) + " stride=7");
  b::print_header({"size", "tv", "re", "speedup"});
  // 1 << 13 and 1 << 16 stay cache-resident; 1 << 19 .. 1 << 22 stream
  // from DRAM, where both variants converge on the memory wall.
  for (int n = 1 << 13; n <= 1 << 22; n *= 8) {
    const long steps = std::max<long>(16, (1L << 26) / n);
    const double pts = static_cast<double>(n) * static_cast<double>(steps);
    grid::Grid1D<T> u(n);
    for (int x = 0; x <= n + 1; ++x)
      u.at(x) = static_cast<T>(0.001) * static_cast<T>(x % 83);
    const double rtv = b::measure_gstencils(pts, [&] { tv(c, u, steps, 7); });
    const double rre = b::measure_gstencils(pts, [&] { re(c, u, steps, 7); });
    rate_row(std::to_string(n), rtv, rre);
  }
}

template <class Fn, class C, class T>
void sweep_2d(const dispatch::KernelRegistry& reg, std::string_view tv_id,
              std::string_view re_id, dispatch::DType dt, const C& c,
              const std::string& title) {
  const dispatch::Backend at = dispatch::selected_backend();
  const std::vector<int> widths = reg.registered_widths(tv_id, at, dt);
  const int vl = widths.empty() ? dispatch::kAnyVl : widths.back();
  auto* tv = reg.get_at<Fn>(tv_id, at, vl, dt);
  auto* re = reg.get_at<Fn>(re_id, at, vl, dt);
  b::print_title(title + " vl=" + std::to_string(vl) + " stride=2");
  b::print_header({"size", "tv", "re", "speedup"});
  for (int n = 192; n <= 1536; n *= 8) {  // ~300 KiB then ~19 MiB (f64)
    const long steps =
        std::max<long>(16, (1L << 24) / (static_cast<long>(n) * n));
    const double pts = static_cast<double>(n) * n * static_cast<double>(steps);
    grid::Grid2D<T> u(n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y)
        u.at(x, y) = static_cast<T>(0.001) * static_cast<T>((x + y) % 83);
    const double rtv = b::measure_gstencils(pts, [&] { tv(c, u, steps, 2); });
    const double rre = b::measure_gstencils(pts, [&] { re(c, u, steps, 2); });
    rate_row(std::to_string(n), rtv, rre);
  }
}

void sweep_3d(const dispatch::KernelRegistry& reg) {
  const dispatch::Backend at = dispatch::selected_backend();
  auto* tv = reg.get_at<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7, at);
  auto* re = reg.get_at<dispatch::TvJacobi3D7Fn>(dispatch::kTvJacobi3D7Re, at);
  const stencil::C3D7 c = stencil::heat3d(0.15);
  b::print_title("Ablation  Heat-3D f64 tv vs re stride=2");
  b::print_header({"size", "tv", "re", "speedup"});
  for (int n = 48; n <= 192; n *= 4) {  // ~900 KiB then ~56 MiB
    const long nn = static_cast<long>(n) * n * n;
    const long steps = std::max<long>(8, (1L << 23) / nn);
    const double pts = static_cast<double>(nn) * static_cast<double>(steps);
    grid::Grid3D<double> u(n, n, n);
    for (int x = 0; x <= n + 1; ++x)
      for (int y = 0; y <= n + 1; ++y)
        for (int z = 0; z <= n + 1; ++z)
          u.at(x, y, z) = 0.001 * ((x + y + z) % 83);
    const double rtv = b::measure_gstencils(pts, [&] { tv(c, u, steps, 2); });
    const double rre = b::measure_gstencils(pts, [&] { re(c, u, steps, 2); });
    rate_row(std::to_string(n), rtv, rre);
  }
}

// ---- shuffle-count table: instrumented local instantiations --------------
//
// Reported as shuffles per output vector: total ticks divided by the
// vector-equivalent work (points * steps / VL).  Grid sizes are large
// enough that the prologue/epilogue triangles (which reorganize nothing)
// keep the steady-state figure within a few percent of the asymptote.

std::uint64_t& shuffles() { return simd::reorg_shuffle_count(); }

template <class RunTv, class RunRe>
void shuffle_row(const std::string& kernel, int vl, double vectors,
                 RunTv&& run_tv, RunRe&& run_re) {
  shuffles() = 0;
  run_tv();
  const double tv = static_cast<double>(shuffles()) / vectors;
  shuffles() = 0;
  run_re();
  const double re = static_cast<double>(shuffles()) / vectors;
  b::print_row({kernel, std::to_string(vl), b::fmt(tv, 3), b::fmt(re, 3),
                tv > 0.0 ? b::fmt(re / tv, 3) : "n/a"});
}

template <int VL>
void shuffle_rows_1d() {
  using V = simd::ScalarVec<double, VL>;
  const int nx = 1 << 15;
  const long steps = 4L * VL;
  const double vectors = static_cast<double>(nx) * steps / VL;
  const stencil::C1D3 c3 = stencil::heat1d(0.25);
  const stencil::C1D5 c5 = stencil::heat1d5(0.1);
  {
    grid::Grid1D<double> a(nx), r(nx);
    shuffle_row("heat1d", VL, vectors,
                [&] { tv::tv1d_run<V>(tv::J1D3F<V>(c3), a, steps, 5); },
                [&] { tv::tv1d_re_run<V>(tv::J1D3F<V>(c3), r, steps, 5); });
  }
  {
    grid::Grid1D<double> a(nx), r(nx);
    shuffle_row("heat1d5", VL, vectors,
                [&] { tv::tv1d_run<V>(tv::J1D5F<V>(c5), a, steps, 3); },
                [&] { tv::tv1d_re_run<V>(tv::J1D5F<V>(c5), r, steps, 3); });
  }
}

template <int VL>
void shuffle_rows_2d3d() {
  using V = simd::ScalarVec<double, VL>;
  const stencil::C2D5 c5 = stencil::heat2d(0.2);
  const stencil::C2D9 c9 = stencil::box2d9(0.1);
  const stencil::C3D7 c7 = stencil::heat3d(0.15);
  {
    const int n = 256;
    const long steps = 2L * VL;
    const double vectors = static_cast<double>(n) * n * steps / VL;
    grid::Grid2D<double> a(n, n), r(n, n);
    tv::Workspace2D<V, double> wa, wr;
    shuffle_row("heat2d", VL, vectors,
                [&] { tv::tv2d_run<V>(tv::J2D5F<V>(c5), a, steps, 2, wa); },
                [&] { tv::tv2d_re_run<V>(tv::J2D5F<V>(c5), r, steps, 2, wr); });
    shuffle_row("box2d9", VL, vectors,
                [&] { tv::tv2d_run<V>(tv::J2D9F<V>(c9), a, steps, 2, wa); },
                [&] { tv::tv2d_re_run<V>(tv::J2D9F<V>(c9), r, steps, 2, wr); });
  }
  {
    const int n = 64;
    const long steps = 2L * VL;
    const double vectors =
        static_cast<double>(n) * n * n * steps / VL;
    grid::Grid3D<double> a(n, n, n), r(n, n, n);
    tv::Workspace3D<V, double> wa, wr;
    shuffle_row("heat3d", VL, vectors,
                [&] { tv::tv3d_run<V>(tv::J3D7F<V>(c7), a, steps, 2, wa); },
                [&] { tv::tv3d_re_run<V>(tv::J3D7F<V>(c7), r, steps, 2, wr); });
  }
}

void shuffle_table() {
  b::print_title(
      "Ablation  reorg shuffles per output vector (debug counter)");
  b::print_header({"kernel", "vl", "tv/vec", "re/vec", "ratio"});
  shuffle_rows_1d<4>();
  shuffle_rows_1d<8>();
  shuffle_rows_2d3d<4>();
  shuffle_rows_2d3d<8>();
}

}  // namespace

int main() {
  const auto& reg = dispatch::KernelRegistry::instance();
  sweep_1d<dispatch::TvJacobi1D3Fn, stencil::C1D3, double>(
      reg, dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D3Re,
      dispatch::DType::kF64, stencil::heat1d(0.25),
      "Ablation  Heat-1D f64 tv vs re");
  sweep_1d<dispatch::TvJacobi1D3F32Fn, stencil::C1D3f, float>(
      reg, dispatch::kTvJacobi1D3, dispatch::kTvJacobi1D3Re,
      dispatch::DType::kF32, stencil::heat1d<float>(0.25),
      "Ablation  Heat-1D f32 tv vs re");
  sweep_1d<dispatch::TvJacobi1D5Fn, stencil::C1D5, double>(
      reg, dispatch::kTvJacobi1D5, dispatch::kTvJacobi1D5Re,
      dispatch::DType::kF64, stencil::heat1d5(0.1),
      "Ablation  Heat-1D(5pt) f64 tv vs re");
  sweep_2d<dispatch::TvJacobi2D5Fn, stencil::C2D5, double>(
      reg, dispatch::kTvJacobi2D5, dispatch::kTvJacobi2D5Re,
      dispatch::DType::kF64, stencil::heat2d(0.2),
      "Ablation  Heat-2D f64 tv vs re");
  sweep_2d<dispatch::TvJacobi2D9F32Fn, stencil::C2D9f, float>(
      reg, dispatch::kTvJacobi2D9, dispatch::kTvJacobi2D9Re,
      dispatch::DType::kF32, stencil::box2d9<float>(0.1),
      "Ablation  Box-2D9 f32 tv vs re");
  sweep_3d(reg);
  shuffle_table();
  return 0;
}
