// Figure 5f: GS-3D parallel scaling; parallelogram wavefront on x,
// Table 1: 32^3 x 32.
#include "bench_util/bench.hpp"
#include "common.hpp"
#include "solver/solver.hpp"
#include "tiling/parallelogram2d.hpp"

int main() {
  using namespace tvs;
  namespace b = tvs::bench;
  const int n = b::full_mode() ? 800 : 256;
  const long sweeps = b::full_mode() ? 256 : 128;
  const stencil::C3D7 c = stencil::heat3d(0.1);
  const double pts =
      static_cast<double>(n) * n * n * static_cast<double>(sweeps);

  grid::Grid3D<double> u(n, n, n);
  for (int x = 0; x <= n + 1; ++x)
    for (int y = 0; y <= n + 1; ++y)
      for (int z = 0; z <= n + 1; ++z)
        u.at(x, y, z) = 0.001 * ((x * 5 + y * 3 + z) % 97);

  // "our" through the Solver facade, pinned to Table 1's blocking.
  const solver::StencilProblem prob =
      solver::problem_3d(solver::Family::kGs3D7, n, n, n, sweeps);
  solver::ExecutionPlan plan = solver::heuristic_plan(prob);
  plan.path = solver::Path::kTiledParallel;
  plan.tile_w = 32;
  plan.tile_h = b::full_mode() ? 32 : 4;
  const solver::Solver solve(prob, plan);

  tiling::ParallelogramNDOptions sc;  // identical tiling, scalar tiles
  sc.width = plan.tile_w;
  sc.height = plan.tile_h;
  sc.use_vector = false;

  benchx::par_figure(
      "Fig 5f  GS-3D parallel, parallelogram 32x32 on x (Gstencils/s)",
      {{"our",
        [&](int) {
          return b::measure_gstencils(pts, [&] { solve.run(c, u); });
        }},
       {"scalar", [&](int) {
          return b::measure_gstencils(pts, [&] {
            tiling::parallelogram_gs3d7_run(c, u, sweeps, sc);
          });
        }}});
  return 0;
}
